// Command rumorbench regenerates Figure 2 of the paper: the number of
// rounds needed to spread a single rumor to all nodes, for the dating
// service and the five classical baselines (PUSH, PULL, PUSH&PULL, fair
// PULL, fair PUSH&PULL).
//
// Usage:
//
//	rumorbench [-scale quick|paper] [-seed N] [-par N] [-csv] [-json]
//
// -par fans the independent spreading repetitions across N goroutines
// (default GOMAXPROCS). Repetition seeds are derived from (seed, n,
// algorithm, repetition), so the table is byte-identical for every -par
// value — parallelism can never change published numbers.
//
// -json skips the figure table and instead runs every algorithm once at
// the scale's largest n through the unified repro.Run entrypoint, emitting
// the generic Report-derived bench points (rounds, messages, worst
// per-node loads, wall time) that all BENCH_*.json writers share.
//
// The paper's reading of the result: the ordering from fastest to slowest
// is PUSH&PULL, fair PUSH&PULL, PULL, fair PULL, PUSH, dating — but the
// PUSH&PULL variants use double communication per round and the unfair
// variants unbounded bandwidth, so the honest comparators are PUSH and fair
// PULL, and the dating service is less than 2x slower than those while
// never exceeding any node's bandwidth.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/gossip"
	"repro/internal/run"
	"repro/internal/sim"
)

func main() {
	scaleName := flag.String("scale", "quick", "experiment sizing: quick or paper")
	seed := flag.Uint64("seed", 42, "root random seed")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "harness workers (results identical for any value)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := flag.Bool("json", false, "emit one unified-runner bench point per algorithm as JSON")
	flag.Parse()

	scale, err := sim.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := emitPoints(scale, *seed, *par); err != nil {
			fmt.Fprintln(os.Stderr, "rumorbench:", err)
			os.Exit(1)
		}
		return
	}
	res, err := sim.RunFigure2Par(scale, *seed, *par)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rumorbench:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(res.Table().CSV())
		return
	}
	fmt.Print(res.Table().Render())
	if len(res.Rows) > 0 {
		last := res.Rows[len(res.Rows)-1]
		d := last.Cells[gossip.Dating].Mean
		p := last.Cells[gossip.Push].Mean
		fp := last.Cells[gossip.FairPull].Mean
		fmt.Printf("\nAt n=%d: dating/push = %.2f, dating/fair-pull = %.2f (paper: < 2).\n",
			last.N, d/p, d/fp)
	}
}

// emitPoints runs every algorithm once at the scale's largest n through
// the unified runner and writes the generic bench points, each annotated
// with the worst per-node loads the run observed (the dating service stays
// at the profile bound; the unfair baselines do not).
func emitPoints(scale sim.Scale, seed uint64, workers int) error {
	type algoPoint struct {
		Algorithm  string         `json:"algorithm"`
		MaxInLoad  int            `json:"max_in_load"`
		MaxOutLoad int            `json:"max_out_load"`
		Point      sim.BenchPoint `json:"point"`
	}
	n := 10_000
	if scale == sim.ScalePaper {
		n = 100_000
	}
	points := make([]algoPoint, 0, len(gossip.Algorithms()))
	for _, algo := range gossip.Algorithms() {
		rep, err := run.Run(gossip.Config{Algorithm: algo, N: n},
			run.WithSeed(seed), run.WithWorkers(workers))
		if err != nil {
			return err
		}
		if !rep.Completed {
			return fmt.Errorf("%v at n=%d did not complete in %d rounds", algo, n, rep.Rounds)
		}
		points = append(points, algoPoint{
			Algorithm:  algo.String(),
			MaxInLoad:  rep.MaxInLoad,
			MaxOutLoad: rep.MaxOutLoad,
			Point:      sim.PointFromReport(n, rep),
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"experiment": "rumor-algorithms",
		"seed":       seed,
		"result":     points,
	})
}
