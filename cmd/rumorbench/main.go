// Command rumorbench regenerates Figure 2 of the paper: the number of
// rounds needed to spread a single rumor to all nodes, for the dating
// service and the five classical baselines (PUSH, PULL, PUSH&PULL, fair
// PULL, fair PUSH&PULL).
//
// Usage:
//
//	rumorbench [-scale quick|paper] [-seed N] [-par N] [-csv]
//
// -par fans the independent spreading repetitions across N goroutines
// (default GOMAXPROCS). Repetition seeds are derived from (seed, n,
// algorithm, repetition), so the table is byte-identical for every -par
// value — parallelism can never change published numbers.
//
// The paper's reading of the result: the ordering from fastest to slowest
// is PUSH&PULL, fair PUSH&PULL, PULL, fair PULL, PUSH, dating — but the
// PUSH&PULL variants use double communication per round and the unfair
// variants unbounded bandwidth, so the honest comparators are PUSH and fair
// PULL, and the dating service is less than 2x slower than those while
// never exceeding any node's bandwidth.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/gossip"
	"repro/internal/sim"
)

func main() {
	scaleName := flag.String("scale", "quick", "experiment sizing: quick or paper")
	seed := flag.Uint64("seed", 42, "root random seed")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "harness workers (results identical for any value)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	scale, err := sim.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := sim.RunFigure2Par(scale, *seed, *par)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rumorbench:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(res.Table().CSV())
		return
	}
	fmt.Print(res.Table().Render())
	if len(res.Rows) > 0 {
		last := res.Rows[len(res.Rows)-1]
		d := last.Cells[gossip.Dating].Mean
		p := last.Cells[gossip.Push].Mean
		fp := last.Cells[gossip.FairPull].Mean
		fmt.Printf("\nAt n=%d: dating/push = %.2f, dating/fair-pull = %.2f (paper: < 2).\n",
			last.N, d/p, d/fp)
	}
}
