// Command datebench regenerates Figure 1 of the paper: the fraction of the
// centralized optimum that the dating service arranges per round, under
// uniform selection and under DHT-interval selection (worst and best overlay
// of a generated population).
//
// Usage:
//
//	datebench [-scale quick|paper] [-seed N] [-csv]
//
// The paper scale runs n up to 100000 with 10^3–10^4 rounds per point and
// 200 DHT overlays; expect minutes of runtime. The quick scale preserves
// every qualitative conclusion in seconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
)

func main() {
	scaleName := flag.String("scale", "quick", "experiment sizing: quick or paper")
	seed := flag.Uint64("seed", 42, "root random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	scale, err := sim.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := sim.RunFigure1(scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datebench:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(res.Table().CSV())
		return
	}
	fmt.Print(res.Table().Render())
	fmt.Println("\nPaper reference: uniform slightly above 0.47*n at all sizes;")
	fmt.Println("worst-of-200 DHTs above 0.52*n; best DHTs from 0.67*n (n=10)")
	fmt.Println("down to about 0.55*n at n=10^4.")
}
