// Command datebench regenerates Figure 1 of the paper — the fraction of the
// centralized optimum the dating service arranges per round — and profiles
// the round engine and the live message runtime.
//
// Usage:
//
//	datebench [-mode figure1|engine|live|async|topology|consensus] [-scale quick|paper] [-seed N]
//	          [-par N] [-workers N] [-n N] [-rounds N] [-shards N]
//	          [-baseline] [-csv] [-json] [-digest]
//	          [-trace FILE] [-metrics] [-pprof ADDR]
//
// figure1 mode (the default) reproduces the paper's Figure 1. The paper
// scale runs n up to 100000 with 10^3–10^4 rounds per point and 200 DHT
// overlays; expect minutes of runtime. The quick scale preserves every
// qualitative conclusion in seconds. -par fans the per-overlay repetitions
// across N goroutines (default GOMAXPROCS); overlay seeds are derived from
// (seed, n, overlay), so the table is byte-identical for every -par value.
//
// engine mode times one dating round at a fixed large n (default one
// million nodes) on the serial path and on the parallel engine at 2, 4,
// ..., -workers workers, reporting seconds per round, request throughput
// and speedup. It then times the seeded engine (worker-count-independent
// rounds) against the pipelined schedule (RunRoundsSeeded — round r+1's
// scatter overlapping round r's matching) at the same worker counts,
// verifying the two produce bit-identical dates; the pipelined row's
// speedup column is its gain over the same-worker seeded row. -json emits
// the result as machine-readable JSON — including the generic
// Report-derived "points" records shared by every BENCH_*.json writer — so
// perf trajectory points can be recorded across versions:
//
//	datebench -mode engine -n 1000000 -rounds 5 -workers 8 -json > BENCH_engine.json
//
// live mode runs full message-level rumor spreading (every offer, answer
// and payload an actual routed message) to completion through the unified
// repro.Run entrypoint, on the sharded internal/live runtime at 1 and
// -shards workers, the pipelined sharded schedule (WithPipeline, fusing
// delivery into the step phase), plus — with -baseline, the default — the
// legacy goroutine-per-peer engine. All runs derive per-peer randomness
// identically, so their informed-count trajectories must agree bit for
// bit; datebench exits non-zero if they do not, which makes every
// benchmark run a cross-engine correctness check (CI runs it at n=100k).
// -n defaults to 100000 in this mode; disable -baseline before raising n
// far beyond that, goroutine-per-peer does not scale.
//
//	datebench -mode live -n 100000 -shards 2 -json > BENCH_live.json
//
// async mode runs full asynchronous push&pull spreading — every peer firing
// on its own exponential clock, no global round barrier — on the clockless
// internal/async runtime at 1 and -shards workers. Randomness derives per
// (peer, firing-index), so the informed-count trajectories of every shard
// count must agree bit for bit; datebench exits non-zero if they do not.
// -n defaults to 100000 in this mode.
//
//	datebench -mode async -n 100000 -shards 2 -json > BENCH_async.json
//
// topology mode runs graph-constrained spreader/stifler spreading — a
// Barabási–Albert contact graph, stifling rate alpha=0.25 — on the sharded
// runtime at 1 and -shards workers. Transition randomness derives from
// per-peer streams consumed in canonical inbox order, so the trajectories of
// every shard count must agree bit for bit; datebench exits non-zero if they
// do not. -n defaults to 100000 in this mode.
//
//	datebench -mode topology -n 100000 -shards 2 -json > BENCH_topology.json
//
// consensus mode runs conflicting-rumor consensus — K=3 variants seeded at
// distinct random peers of a Barabási–Albert graph, merged under the
// latest-timestamp rule until 90% agreement — on the sharded runtime at 1
// and -shards workers. The identity check compares the full per-round
// variant-share history of every shard count; datebench exits non-zero on
// disagreement. -n defaults to 100000 in this mode.
//
//	datebench -mode consensus -n 100000 -shards 2 -json > BENCH_consensus.json
//
// # Observability
//
// -trace FILE attaches the deterministic instrumentation observer and
// writes a Chrome trace_event timeline — per-(round, shard, phase) spans
// plus gauge counter tracks — loadable in about:tracing or
// https://ui.perfetto.dev. -metrics prints the aggregated phase/gauge
// summary tables to stderr. -pprof ADDR serves net/http/pprof and expvar
// (including the live observer snapshot at /debug/vars) on ADDR for the
// duration of the run. Observation is read-only: results are bit-identical
// with and without these flags, a property -digest makes checkable — in
// live and async modes it prints only the run's trajectory digest, so CI
// compares instrumented and uninstrumented runs with a one-line cmp:
//
//	datebench -mode live -trace out.json -digest
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/sim"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	mode := flag.String("mode", "figure1", "what to run: figure1, engine, live, async, topology or consensus")
	scaleName := flag.String("scale", "quick", "experiment sizing: quick or paper (figure1 mode)")
	seed := flag.Uint64("seed", 42, "root random seed")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "harness workers (figure1 mode; results identical for any value)")
	workers := flag.Int("workers", 4, "max parallel workers (engine mode)")
	n := flag.Int("n", 1_000_000, "node count (engine mode; live mode defaults to 100000)")
	rounds := flag.Int("rounds", 5, "timed rounds per worker count (engine mode)")
	shards := flag.Int("shards", 4, "sharded runtime workers (live and async modes; any value is bit-identical)")
	baseline := flag.Bool("baseline", true, "include the goroutine-per-peer engine (live mode)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := flag.Bool("json", false, "emit JSON instead of a table")
	digest := flag.Bool("digest", false, "print only the trajectory digest (live and async modes)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event timeline to this file (about:tracing / ui.perfetto.dev)")
	metrics := flag.Bool("metrics", false, "print instrumentation summary tables to stderr after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	flag.Parse()

	// The bench harnesses construct their run options internally, so the
	// observer rides the process-wide default; that is sound because
	// observers are read-only and never alter a run.
	var observer *obs.Observer
	if *tracePath != "" || *metrics || *pprofAddr != "" {
		observer = obs.NewObserver()
		run.SetDefaultObserver(observer)
	}
	if *pprofAddr != "" {
		obs.Publish(observer)
		_, addr, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datebench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "datebench: pprof at http://%s/debug/pprof/, expvar at /debug/vars\n", addr)
	}
	// Export on every exit path — a trace of a failing run is the one you
	// want to look at.
	defer func() {
		if observer == nil {
			return
		}
		if *tracePath != "" {
			if err := observer.WriteTraceFile(*tracePath); err != nil {
				fmt.Fprintln(os.Stderr, "datebench:", err)
			}
		}
		if *metrics {
			fmt.Fprint(os.Stderr, observer.Summary())
		}
	}()

	switch *mode {
	case "figure1":
		scale, err := sim.ParseScale(*scaleName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		res, err := sim.RunFigure1Par(scale, *seed, *par)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datebench:", err)
			return 1
		}
		switch {
		case *jsonOut:
			emitJSON("figure1", *seed, res)
		case *csv:
			fmt.Print(res.Table().CSV())
		default:
			fmt.Print(res.Table().Render())
			fmt.Println("\nPaper reference: uniform slightly above 0.47*n at all sizes;")
			fmt.Println("worst-of-200 DHTs above 0.52*n; best DHTs from 0.67*n (n=10)")
			fmt.Println("down to about 0.55*n at n=10^4.")
		}

	case "engine":
		var counts []int
		for w := 2; w <= *workers; w *= 2 {
			counts = append(counts, w)
		}
		if len(counts) == 0 || counts[len(counts)-1] != *workers {
			counts = append(counts, *workers)
		}
		res, err := sim.RunEngineBench(*n, *rounds, counts, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datebench:", err)
			return 1
		}
		switch {
		case *jsonOut:
			emitJSON("engine", *seed, res)
		case *csv:
			fmt.Print(res.Table().CSV())
		default:
			fmt.Print(res.Table().Render())
		}

	case "async":
		asyncN := *n
		if !nFlagSet() {
			asyncN = 100_000
		}
		res, err := sim.RunAsyncBench(asyncN, *shards, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datebench:", err)
			return 1
		}
		switch {
		case *digest:
			fmt.Println(res.TrajectoryDigest)
		case *jsonOut:
			emitJSON("async", *seed, res)
		case *csv:
			fmt.Print(res.Table().CSV())
		default:
			fmt.Print(res.Table().Render())
		}
		if !res.Identical {
			fmt.Fprintln(os.Stderr, "datebench: shard counts disagree on the async spreading trajectory — determinism regression")
			return 1
		}

	case "topology":
		topoN := *n
		if !nFlagSet() {
			topoN = 100_000
		}
		res, err := sim.RunTopologyBench(topoN, *shards, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datebench:", err)
			return 1
		}
		switch {
		case *digest:
			fmt.Println(res.TrajectoryDigest)
		case *jsonOut:
			emitJSON("topology", *seed, res)
		case *csv:
			fmt.Print(res.Table().CSV())
		default:
			fmt.Print(res.Table().Render())
		}
		if !res.Identical {
			fmt.Fprintln(os.Stderr, "datebench: shard counts disagree on the topology spreading trajectory — determinism regression")
			return 1
		}

	case "consensus":
		consN := *n
		if !nFlagSet() {
			consN = 100_000
		}
		res, err := sim.RunConsensusBench(consN, *shards, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datebench:", err)
			return 1
		}
		switch {
		case *digest:
			fmt.Println(res.ShareDigest)
		case *jsonOut:
			emitJSON("consensus", *seed, res)
		case *csv:
			fmt.Print(res.Table().CSV())
		default:
			fmt.Print(res.Table().Render())
		}
		if !res.Identical {
			fmt.Fprintln(os.Stderr, "datebench: shard counts disagree on the consensus share history — determinism regression")
			return 1
		}

	case "live":
		liveN := *n
		if !nFlagSet() {
			liveN = 100_000
		}
		res, err := sim.RunLiveBench(liveN, *shards, *baseline, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datebench:", err)
			return 1
		}
		switch {
		case *digest:
			fmt.Println(res.TrajectoryDigest)
		case *jsonOut:
			emitJSON("live", *seed, res)
		case *csv:
			fmt.Print(res.Table().CSV())
		default:
			fmt.Print(res.Table().Render())
		}
		if !res.Identical {
			fmt.Fprintln(os.Stderr, "datebench: engines disagree on the spreading trajectory — determinism regression")
			return 1
		}

	default:
		fmt.Fprintf(os.Stderr, "datebench: unknown mode %q (want figure1, engine, live, async, topology or consensus)\n", *mode)
		return 2
	}
	return 0
}

// nFlagSet reports whether -n was given explicitly; the live and async
// modes default to a smaller n than engine mode when it was not.
func nFlagSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "n" {
			set = true
		}
	})
	return set
}

// emitJSON wraps a result in a stable envelope so collected BENCH_*.json
// files identify themselves.
func emitJSON(experiment string, seed uint64, result any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{
		"experiment": experiment,
		"seed":       seed,
		"result":     result,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "datebench:", err)
		os.Exit(1)
	}
}
