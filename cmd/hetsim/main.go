// Command hetsim is the full experiment driver: it regenerates every figure
// and extension experiment of DESIGN.md's per-experiment index.
//
// Usage:
//
//	hetsim [-experiment <name>|all] [-scale quick|paper] [-seed N] [-par N]
//	       [-csv] [-list]
//
// -par fans experiment repetitions across N goroutines (default
// GOMAXPROCS). Repetition seeds are derived from (seed, overlay,
// repetition), so tables are byte-identical for every -par value; the flag
// is purely a wall-clock knob for paper-scale sweeps.
//
// Run `hetsim -list` for the experiment names and descriptions.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/sim"
)

func main() {
	expName := flag.String("experiment", "all", "which experiment to run (or 'all')")
	scaleName := flag.String("scale", "quick", "experiment sizing: quick or paper")
	seed := flag.Uint64("seed", 42, "root random seed")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "harness workers for repetition-parallel experiments (results identical for any value)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range sim.Registry() {
			fmt.Printf("%-14s %s\n", e.Name, e.About)
		}
		return
	}

	scale, err := sim.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ran := 0
	for _, e := range sim.Registry() {
		if *expName != "all" && *expName != e.Name {
			continue
		}
		t, err := e.Run(scale, *seed, *par)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetsim: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "hetsim: unknown experiment %q; available:", *expName)
		for _, e := range sim.Registry() {
			fmt.Fprintf(os.Stderr, " %s", e.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
