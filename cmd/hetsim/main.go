// Command hetsim is the full experiment driver: it regenerates every figure
// and extension experiment of DESIGN.md's per-experiment index.
//
// Usage:
//
//	hetsim [-experiment <name>|all] [-scale quick|paper] [-seed N] [-par N]
//	       [-csv] [-list] [-trace FILE] [-metrics] [-pprof ADDR]
//
// -par fans experiment repetitions across N goroutines (default
// GOMAXPROCS). Repetition seeds are derived from (seed, overlay,
// repetition), so tables are byte-identical for every -par value; the flag
// is purely a wall-clock knob for paper-scale sweeps.
//
// -trace FILE attaches the read-only instrumentation observer to every run
// the experiments execute and writes a Chrome trace_event timeline on exit;
// -metrics prints the aggregated phase/gauge summary to stderr; -pprof ADDR
// serves net/http/pprof and expvar while the experiments run. None of the
// three changes any table: observation is deterministic-by-construction.
//
// Run `hetsim -list` for the experiment names and descriptions.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/sim"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	expName := flag.String("experiment", "all", "which experiment to run (or 'all')")
	scaleName := flag.String("scale", "quick", "experiment sizing: quick or paper")
	seed := flag.Uint64("seed", 42, "root random seed")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "harness workers for repetition-parallel experiments (results identical for any value)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list available experiments and exit")
	tracePath := flag.String("trace", "", "write a Chrome trace_event timeline to this file (about:tracing / ui.perfetto.dev)")
	metrics := flag.Bool("metrics", false, "print instrumentation summary tables to stderr after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	flag.Parse()

	if *list {
		for _, e := range sim.Registry() {
			fmt.Printf("%-14s %s\n", e.Name, e.About)
		}
		return 0
	}

	// Experiments build their run options internally, so the observer rides
	// the process-wide default; sound because observers are read-only.
	var observer *obs.Observer
	if *tracePath != "" || *metrics || *pprofAddr != "" {
		observer = obs.NewObserver()
		run.SetDefaultObserver(observer)
	}
	if *pprofAddr != "" {
		obs.Publish(observer)
		_, addr, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetsim:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "hetsim: pprof at http://%s/debug/pprof/, expvar at /debug/vars\n", addr)
	}
	defer func() {
		if observer == nil {
			return
		}
		if *tracePath != "" {
			if err := observer.WriteTraceFile(*tracePath); err != nil {
				fmt.Fprintln(os.Stderr, "hetsim:", err)
			}
		}
		if *metrics {
			fmt.Fprint(os.Stderr, observer.Summary())
		}
	}()

	scale, err := sim.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	ran := 0
	for _, e := range sim.Registry() {
		if *expName != "all" && *expName != e.Name {
			continue
		}
		t, err := e.Run(scale, *seed, *par)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetsim: %s: %v\n", e.Name, err)
			return 1
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Render())
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "hetsim: unknown experiment %q; available:", *expName)
		for _, e := range sim.Registry() {
			fmt.Fprintf(os.Stderr, " %s", e.Name)
		}
		fmt.Fprintln(os.Stderr)
		return 2
	}
	return 0
}
