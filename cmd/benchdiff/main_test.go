package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func pt(protocol string, n, workers int, sec float64) point {
	return point{Protocol: protocol, N: n, Workers: workers, Rounds: 3,
		Completed: true, SecondsPerRound: sec}
}

// findVerdict returns the first verdict for key produced from a current
// point (not a baseline-only leftover).
func findVerdict(t *testing.T, vs []verdict, key string) verdict {
	t.Helper()
	for _, v := range vs {
		if v.key == key && v.current.Protocol != "" {
			return v
		}
	}
	t.Fatalf("no verdict for %q in %+v", key, vs)
	return verdict{}
}

func TestDiffPointsGatesSyntheticRegression(t *testing.T) {
	// The acceptance criterion: a synthetic >2.5x slowdown must fail, a
	// within-tolerance wobble must not.
	baseline := []point{
		pt("engine-round", 200000, 1, 0.020),
		pt("engine-round", 200000, 2, 0.030),
	}
	current := []point{
		pt("engine-round", 200000, 1, 0.044), // 2.2x: runner noise, passes
		pt("engine-round", 200000, 2, 0.090), // 3.0x: regression, fails
	}
	vs := diffPoints(baseline, current, 2.5)
	if v := findVerdict(t, vs, "engine-round n=200000 workers=1"); v.regressed {
		t.Fatalf("2.2x slowdown gated at tolerance 2.5: %+v", v)
	}
	if v := findVerdict(t, vs, "engine-round n=200000 workers=2"); !v.regressed {
		t.Fatalf("3.0x slowdown not gated at tolerance 2.5: %+v", v)
	}
}

func TestDiffPointsIncompleteRunFails(t *testing.T) {
	baseline := []point{pt("live", 100000, 2, 0.03)}
	current := []point{pt("live", 100000, 2, 0.03)}
	current[0].Completed = false
	vs := diffPoints(baseline, current, 2.5)
	if v := findVerdict(t, vs, "live n=100000 workers=2"); !v.regressed {
		t.Fatalf("incomplete run not gated: %+v", v)
	}
}

func TestDiffPointsDuplicateKeysMatchInOrder(t *testing.T) {
	// The live bench emits two points with the same (protocol, n, workers)
	// key — sharded shards=1 and the goroutine baseline. They must pair in
	// occurrence order: a fast first point must not absorb the second's
	// regression.
	baseline := []point{
		pt("live", 100000, 1, 0.03), // sharded
		pt("live", 100000, 1, 0.80), // goroutine baseline
	}
	current := []point{
		pt("live", 100000, 1, 0.10), // sharded regressed >2.5x
		pt("live", 100000, 1, 0.85), // goroutine fine
	}
	vs := diffPoints(baseline, current, 2.5)
	var regressed int
	for _, v := range vs {
		if v.regressed {
			regressed++
		}
	}
	if regressed != 1 {
		t.Fatalf("want exactly the sharded point gated, got %d regressions: %+v", regressed, vs)
	}
}

func TestDiffPointsMalformedBaselineFailsLoudly(t *testing.T) {
	// A baseline point with zero s/round (or incomplete) must not silently
	// neuter the gate for its key — it fails until the committed BENCH file
	// is regenerated.
	zero := pt("engine-round", 200000, 1, 0)
	incomplete := pt("engine-round", 200000, 2, 0.02)
	incomplete.Completed = false
	baseline := []point{zero, incomplete}
	current := []point{pt("engine-round", 200000, 1, 9.99), pt("engine-round", 200000, 2, 0.02)}
	vs := diffPoints(baseline, current, 2.5)
	if v := findVerdict(t, vs, "engine-round n=200000 workers=1"); !v.regressed {
		t.Fatalf("zero-timing baseline did not gate: %+v", v)
	}
	if v := findVerdict(t, vs, "engine-round n=200000 workers=2"); !v.regressed {
		t.Fatalf("incomplete baseline did not gate: %+v", v)
	}
}

func TestDiffPointsUnmatchedPointsNeverGate(t *testing.T) {
	// A PR that resizes the benchmark (different n or worker set) must not
	// trip the gate on unpaired points in either direction.
	baseline := []point{pt("engine-round", 200000, 1, 0.02), pt("engine-round", 200000, 8, 0.01)}
	current := []point{pt("engine-round", 400000, 1, 9.99)}
	for _, v := range diffPoints(baseline, current, 2.5) {
		if v.regressed {
			t.Fatalf("unmatched point gated: %+v", v)
		}
		if !v.unmatched {
			t.Fatalf("expected every verdict unmatched, got %+v", v)
		}
	}
}

func TestReadBenchParsesWriterEnvelope(t *testing.T) {
	// readBench must consume exactly what cmd/datebench -json emits: the
	// {experiment, seed, result:{points:[...]}} envelope.
	env := map[string]any{
		"experiment": "engine",
		"seed":       42,
		"result": map[string]any{
			"points": []point{pt("engine-round", 1000, 1, 0.001)},
		},
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	points, exp, err := readBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if exp != "engine" {
		t.Fatalf("experiment %q, want engine", exp)
	}
	if len(points) != 1 || points[0].Protocol != "engine-round" || points[0].SecondsPerRound != 0.001 {
		t.Fatalf("parsed %+v", points)
	}
	if _, _, err := readBench(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestReadBenchToleratesEmptyPointLists(t *testing.T) {
	// A baseline from before a benchmark existed — empty or absent point
	// list — parses cleanly; main reports "no baseline ... nothing to gate"
	// and passes instead of gating. Only malformed files are errors.
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	for name, content := range map[string]string{
		"empty.json":  `{"experiment": "async", "result": {"points": []}}`,
		"absent.json": `{"experiment": "async", "result": {}}`,
		"bare.json":   `{"experiment": "async"}`,
	} {
		points, exp, err := readBench(write(name, content))
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(points) != 0 || exp != "async" {
			t.Errorf("%s: got %d points, experiment %q", name, len(points), exp)
		}
	}
	if _, _, err := readBench(write("broken.json", `{"experiment":`)); err == nil {
		t.Error("parsed malformed JSON without error")
	}
}
