// Command benchdiff compares a freshly generated BENCH_*.json file against
// a committed baseline and exits non-zero when any point regressed beyond a
// tolerance factor — the perf-regression gate of CI.
//
// Usage:
//
//	benchdiff -baseline BENCH_engine.json -current BENCH_engine.ci.json [-tolerance 2.5]
//
// Points are matched by (protocol, n, workers) key, in order of occurrence
// (a file may legitimately hold several points with the same key, e.g. the
// live benchmark's sharded and goroutine rows at the same worker count).
// A current point regresses when its seconds_per_round exceeds tolerance
// times the baseline's, or when it reports completed=false. Points present
// in only one file — a PR changed the benchmark's sizing — are reported but
// never gate: the gate exists to catch engine slowdowns, not bench
// reshapes. A baseline file whose point list is empty or absent gates
// nothing: benchdiff reports "no baseline" and exits zero, so the first run
// after a benchmark is introduced passes while its committed baseline is
// still a stub. The default tolerance of 2.5x is deliberately generous so
// noisy shared CI runners do not flap the gate; genuine algorithmic
// regressions are typically far larger.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// point mirrors the fields of sim.BenchPoint the gate reads. Memory
// columns are carried for the report but not gated: HeapSys is a process-
// global high-water mark, too machine-dependent to threshold.
type point struct {
	Protocol        string  `json:"protocol"`
	N               int     `json:"n"`
	Workers         int     `json:"workers"`
	Rounds          int     `json:"rounds"`
	Completed       bool    `json:"completed"`
	SecondsPerRound float64 `json:"seconds_per_round"`
	PeakHeapSysMB   float64 `json:"peak_heap_sys_mb"`
}

// benchFile is the stable envelope every BENCH_*.json writer emits.
type benchFile struct {
	Experiment string `json:"experiment"`
	Result     struct {
		Points []point `json:"points"`
	} `json:"result"`
}

// verdict is the comparison outcome for one current point.
type verdict struct {
	key       string
	base      point
	current   point
	ratio     float64
	regressed bool
	unmatched bool
	reason    string
}

func (p point) key() string {
	return fmt.Sprintf("%s n=%d workers=%d", p.Protocol, p.N, p.Workers)
}

// diffPoints pairs current points with baseline points key by key (in
// occurrence order within a key) and flags regressions: incomplete runs and
// s/round blowups beyond the tolerance factor.
func diffPoints(baseline, current []point, tolerance float64) []verdict {
	remaining := map[string][]point{}
	for _, p := range baseline {
		remaining[p.key()] = append(remaining[p.key()], p)
	}
	var out []verdict
	for _, cur := range current {
		v := verdict{key: cur.key(), current: cur}
		if q := remaining[cur.key()]; len(q) > 0 {
			v.base = q[0]
			remaining[cur.key()] = q[1:]
			if v.base.SecondsPerRound > 0 {
				v.ratio = cur.SecondsPerRound / v.base.SecondsPerRound
			}
			switch {
			case v.base.SecondsPerRound <= 0 || !v.base.Completed:
				// A zero-timing or incomplete baseline would silently
				// neuter the gate for this key; fail until the committed
				// baseline is regenerated.
				v.regressed = true
				v.reason = "baseline point has no valid timing — regenerate the committed BENCH file"
			case !cur.Completed:
				v.regressed = true
				v.reason = "run did not complete"
			case v.ratio > tolerance:
				v.regressed = true
				v.reason = fmt.Sprintf("%.2fx slower than baseline (tolerance %.2fx)", v.ratio, tolerance)
			}
		} else {
			v.unmatched = true
			v.reason = "no baseline point (benchmark reshaped?)"
		}
		out = append(out, v)
	}
	for key, q := range remaining {
		for _, b := range q {
			out = append(out, verdict{key: key, base: b, unmatched: true,
				reason: "baseline point missing from current run"})
		}
	}
	return out
}

// readBench parses a BENCH_*.json envelope. An empty or absent point list
// is not an error here — a baseline from before a benchmark existed is a
// legitimate state (the caller decides whether emptiness gates); only
// unreadable or malformed files fail.
func readBench(path string) ([]point, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return f.Result.Points, f.Experiment, nil
}

func main() {
	basePath := flag.String("baseline", "", "committed BENCH_*.json to compare against")
	curPath := flag.String("current", "", "freshly generated BENCH_*.json")
	tolerance := flag.Float64("tolerance", 2.5, "maximum allowed s/round slowdown factor")
	flag.Parse()
	if *basePath == "" || *curPath == "" || *tolerance <= 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: need -baseline and -current files and a positive -tolerance")
		os.Exit(2)
	}

	base, baseExp, err := readBench(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, curExp, err := readBench(*curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	// A fresh run with no points is a broken benchmark, not a reshape.
	if len(cur) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: no points (experiment %q)\n", *curPath, curExp)
		os.Exit(2)
	}
	// An empty baseline cannot gate anything: report and pass, so the first
	// CI run after a benchmark is introduced does not flap while its
	// baseline file is still a stub.
	if len(base) == 0 {
		fmt.Printf("benchdiff: no baseline points in %s (experiment %q) — nothing to gate\n", *basePath, baseExp)
		return
	}

	failed := false
	for _, v := range diffPoints(base, cur, *tolerance) {
		switch {
		case v.regressed:
			failed = true
			fmt.Printf("FAIL  %-40s %.4fs/round vs %.4fs/round baseline — %s\n",
				v.key, v.current.SecondsPerRound, v.base.SecondsPerRound, v.reason)
		case v.unmatched:
			fmt.Printf("skip  %-40s %s\n", v.key, v.reason)
		default:
			mem := ""
			if v.current.PeakHeapSysMB > 0 {
				mem = fmt.Sprintf("  heap %.0f MB", v.current.PeakHeapSysMB)
			}
			fmt.Printf("ok    %-40s %.2fx baseline%s\n", v.key, v.ratio, mem)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: %s regressed past %.2fx of %s\n", *curPath, *tolerance, *basePath)
		os.Exit(1)
	}
}
