package repro_test

// Integration tests crossing module boundaries: the DHT substrate feeding
// the dating service, the dating service feeding gossip/coding/storage, and
// whole-experiment determinism. These are the paths a deployment would
// exercise together.

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/storage"
)

func TestRumorOverRealDHT(t *testing.T) {
	// Full Section 4 stack: random ring -> interval-weight selection ->
	// dating service -> rumor spreading. Must complete in O(log n) without
	// uniform sampling anywhere.
	s := rng.New(1)
	const n = 1024
	ring, err := overlay.NewRing(n, s.Split())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.NewRingSelector(ring)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gossip.Run(gossip.Config{
		Algorithm: gossip.Dating,
		N:         n,
		Selector:  sel,
		Source:    ring.Owner(s.Uint64()), // an arbitrary DHT node
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("DHT-backed spread incomplete after %d rounds", res.Rounds)
	}
	if float64(res.Rounds) > 6*math.Log2(n) {
		t.Fatalf("%d rounds is not O(log n) at n=%d", res.Rounds, n)
	}
	if res.MaxInLoad > 1 || res.MaxOutLoad > 1 {
		t.Fatal("bandwidth exceeded over DHT selection")
	}
}

func TestDHTSpreadingBeatsUniformSlightly(t *testing.T) {
	// More dates arranged (Figure 1) should translate into no-slower
	// spreading over the DHT distribution than uniform.
	s := rng.New(2)
	const n, reps = 512, 12
	var dht, uni stats.Accumulator
	ring, err := overlay.NewRing(n, s.Split())
	if err != nil {
		t.Fatal(err)
	}
	ringSel, _ := core.NewRingSelector(ring)
	for rep := 0; rep < reps; rep++ {
		rd, err := gossip.Run(gossip.Config{Algorithm: gossip.Dating, N: n, Selector: ringSel}, s)
		if err != nil {
			t.Fatal(err)
		}
		dht.Add(float64(rd.Rounds))
		ru, err := gossip.Run(gossip.Config{Algorithm: gossip.Dating, N: n}, s)
		if err != nil {
			t.Fatal(err)
		}
		uni.Add(float64(ru.Rounds))
	}
	// The paper: "from the previous set of experiments it follows that they
	// [DHTs] will be at least as fast". Allow generous noise.
	if dht.Mean() > uni.Mean()*1.3 {
		t.Fatalf("DHT spreading %.1f rounds vs uniform %.1f: contradicts Figure 1's implication",
			dht.Mean(), uni.Mean())
	}
}

func TestMongeringOverDHT(t *testing.T) {
	// Section 5 extension on the Section 4 substrate.
	s := rng.New(3)
	const n = 64
	ring, err := overlay.NewRing(n, s.Split())
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := core.NewRingSelector(ring)
	res, err := coding.RunMonger(coding.MongerConfig{
		N: n, Blocks: 6, BlockSize: 32, Selector: sel, PayloadSeed: 9,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("mongering over DHT incomplete after %d rounds", res.Rounds)
	}
}

func TestStorageOverDHT(t *testing.T) {
	s := rng.New(4)
	const n = 40
	ring, err := overlay.NewRing(n, s.Split())
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := core.NewRingSelector(ring)
	res, err := storage.Run(storage.Config{
		N: n, ObjectsPerNode: 1, Replicas: 2, SlotsPerNode: 4, Selector: sel,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("replication over DHT incomplete after %d rounds", res.Rounds)
	}
}

func TestHandshakeOverDHTWithChurn(t *testing.T) {
	// Message-level dating over DHT selection while killing nodes between
	// rounds: dates must keep flowing among survivors and never touch the
	// dead.
	s := rng.New(5)
	const n = 80
	ring, err := overlay.NewRing(n, s.Split())
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := core.NewRingSelector(ring)
	h, err := core.NewHandshake(bandwidth.Homogeneous(n, 1), sel, 77)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := simnet.NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	deadSet := map[int]bool{}
	for round := 0; round < 8; round++ {
		if round%2 == 1 {
			killed := nw.Crash(s, 0.05)
			_ = killed
			for i := 0; i < n; i++ {
				if !nw.Alive(i) {
					deadSet[i] = true
				}
			}
		}
		dates, err := h.RunRound(nw)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dates {
			if deadSet[d.Sender] || deadSet[d.Receiver] {
				t.Fatalf("round %d: date %v touches a dead node", round, d)
			}
		}
		if nw.AliveCount() > 10 && len(dates) == 0 {
			t.Fatalf("round %d: no dates among %d live nodes", round, nw.AliveCount())
		}
	}
}

func TestPipelinedDatingOverChordLatency(t *testing.T) {
	// Glue E7 together end to end: measure real hop counts, feed them into
	// the pipeline, and confirm the k rounds complete in latency + k steps.
	s := rng.New(6)
	ring, err := overlay.NewRing(512, s.Split())
	if err != nil {
		t.Fatal(err)
	}
	latency := int(math.Ceil(ring.AvgLookupHops(s, 200, ring.Lookup)))
	if latency < 2 {
		t.Fatalf("latency %d too small for n=512", latency)
	}
	pl, err := core.NewPipeline(latency)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := core.NewRingSelector(ring)
	svc, err := core.NewService(bandwidth.Homogeneous(512, 1), sel)
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	steps, matured, totalDates := 0, 0, 0
	for matured < k {
		steps++
		res := svc.RunRound(s)
		if out, ok := pl.Tick(res.Dates); ok {
			matured++
			totalDates += len(out)
		}
	}
	if steps != latency+k {
		t.Fatalf("pipelined %d rounds took %d steps, want %d", k, steps, latency+k)
	}
	if totalDates < k*200 { // ~0.52 * 512 per round
		t.Fatalf("only %d dates matured over %d rounds", totalDates, k)
	}
}

func TestExperimentSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full quick-scale experiment passes")
	}
	// The whole harness is a pure function of its seed: identical tables
	// on identical seeds, different tables on different seeds.
	a1, err := sim.RunAlphaVsLoad(sim.ScaleQuick, 99)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sim.RunAlphaVsLoad(sim.ScaleQuick, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same seed produced different results")
	}
	a3, err := sim.RunAlphaVsLoad(sim.ScaleQuick, 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a1, a3) {
		t.Fatal("different seeds produced identical results")
	}
}

func TestFigureRunnersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs figure 2 twice")
	}
	f1, err := sim.RunFigure2(sim.ScaleQuick, 5)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := sim.RunFigure2(sim.ScaleQuick, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("figure 2 is not deterministic")
	}
}

func TestPoissonPredictionAgainstDHTSimulation(t *testing.T) {
	// PredictWeightedFraction fed with the measured DHT interval weights
	// must predict the simulated DHT fraction — analysis and simulation
	// agreeing through two module boundaries.
	s := rng.New(7)
	const n = 800
	ring, err := overlay.NewRing(n, s.Split())
	if err != nil {
		t.Fatal(err)
	}
	pred, err := core.PredictWeightedFraction(ring.IntervalWeights(), n)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := core.NewRingSelector(ring)
	svc, err := core.NewService(bandwidth.Homogeneous(n, 1), sel)
	if err != nil {
		t.Fatal(err)
	}
	var acc stats.Accumulator
	for r := 0; r < 150; r++ {
		acc.Add(svc.RunRound(s).Fraction(n))
	}
	if math.Abs(acc.Mean()-pred) > 0.02 {
		t.Fatalf("DHT: simulated %.4f vs Poisson prediction %.4f", acc.Mean(), pred)
	}
}
