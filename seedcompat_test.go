package repro

// Seed-compatibility golden tests for the unified runner: for every
// protocol, Run(spec, WithSeed(s)) must be bit-identical to the legacy
// *Stream-based entrypoint fed the stream Run derives internally
// (run.StreamFor(s, domain)), and bit-identical across worker budgets —
// the whole point of the seed-first API is that *no* option other than the
// seed can move a number. The tests run each protocol at n = 17 (degenerate
// small networks exercise every edge path) and n = 1000.

import (
	"reflect"
	"testing"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/run"
	"repro/internal/simnet"
	"repro/internal/storage"
)

const compatSeed = 0xC0FFEE

var compatSizes = []int{17, 1000}

// stripTiming clears the fields that legitimately vary between identical
// runs (wall clock, requested budget), so reports can be DeepEqual-ed.
func stripTiming(r Report) Report {
	r.Wall = 0
	r.Workers = 0
	return r
}

// runWorkersInvariant asserts that the report is bit-identical for worker
// budgets 1, 2 and 8, and returns the workers=1 report.
func runWorkersInvariant(t *testing.T, spec Spec, opts ...RunOption) Report {
	t.Helper()
	var ref Report
	for i, w := range []int{1, 2, 8} {
		rep, err := Run(spec, append(opts, WithSeed(compatSeed), WithWorkers(w))...)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if i == 0 {
			ref = rep
			continue
		}
		if !reflect.DeepEqual(stripTiming(rep), stripTiming(ref)) {
			t.Fatalf("%s: workers=%d report differs from workers=1", spec.Protocol(), w)
		}
	}
	return ref
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSeedCompatRumor(t *testing.T) {
	for _, n := range compatSizes {
		rep := runWorkersInvariant(t, RumorConfig{Algorithm: Dating, N: n})
		legacy, err := gossip.Run(gossip.Config{Algorithm: gossip.Dating, N: n, Workers: 1},
			run.StreamFor(compatSeed, run.DomainRumor))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Detail, legacy) {
			t.Fatalf("n=%d: Run result differs from legacy SpreadRumor path", n)
		}
		if rep.Rounds != legacy.Rounds || rep.Completed != legacy.Completed ||
			!intsEqual(rep.Trajectory, legacy.History) || !intsEqual(rep.Sent, legacy.SentHistory) ||
			rep.MaxInLoad != legacy.MaxInLoad || rep.MaxOutLoad != legacy.MaxOutLoad {
			t.Fatalf("n=%d: report fields disagree with the legacy result", n)
		}
	}
}

func TestSeedCompatRumorBaseline(t *testing.T) {
	// Baseline algorithms ignore the worker budget entirely but must still
	// reproduce the legacy stream path from the derived seed.
	for _, n := range compatSizes {
		rep := runWorkersInvariant(t, RumorConfig{Algorithm: Push, N: n})
		legacy, err := gossip.Run(gossip.Config{Algorithm: gossip.Push, N: n},
			run.StreamFor(compatSeed, run.DomainRumor))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Detail, legacy) {
			t.Fatalf("n=%d: push baseline differs from legacy path", n)
		}
	}
}

func TestSeedCompatMultiRumor(t *testing.T) {
	for _, n := range compatSizes {
		inj := []Injection{{Round: 1, Source: 0}, {Round: 3, Source: n / 2}, {Round: 4, Source: n - 1}}
		rep := runWorkersInvariant(t, MultiRumorConfig{N: n, Injections: inj})
		legacy, err := gossip.RunMultiRumor(gossip.MultiRumorConfig{N: n, Injections: inj, Workers: 1},
			run.StreamFor(compatSeed, run.DomainMulti))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Detail, legacy) {
			t.Fatalf("n=%d: Run result differs from legacy SpreadMultiRumor path", n)
		}
		if !intsEqual(rep.Trajectory, legacy.KnowledgeHist) {
			t.Fatalf("n=%d: trajectory disagrees with the legacy knowledge history", n)
		}
	}
}

func TestSeedCompatMonger(t *testing.T) {
	for _, n := range compatSizes {
		cfg := MongerConfig{N: n, Blocks: 4, BlockSize: 16, PayloadSeed: 9}
		rep := runWorkersInvariant(t, cfg)
		lcfg := coding.MongerConfig{N: n, Blocks: 4, BlockSize: 16, PayloadSeed: 9, Workers: 1}
		legacy, err := coding.RunMonger(lcfg, run.StreamFor(compatSeed, run.DomainMonger))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Detail, legacy) {
			t.Fatalf("n=%d: Run result differs from legacy Monger path", n)
		}
		if !rep.Completed {
			t.Fatalf("n=%d: mongering incomplete", n)
		}
	}
}

func TestSeedCompatStorage(t *testing.T) {
	for _, n := range compatSizes {
		cfg := StorageConfig{N: n, ObjectsPerNode: 1, Replicas: 2, SlotsPerNode: 4}
		rep := runWorkersInvariant(t, cfg)
		lcfg := cfg
		lcfg.Workers = 1
		legacy, err := storage.Run(lcfg, run.StreamFor(compatSeed, run.DomainStorage))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Detail, legacy) {
			t.Fatalf("n=%d: Run result differs from legacy Replicate path", n)
		}
		if !intsEqual(rep.Trajectory, legacy.PlacedHistory) {
			t.Fatalf("n=%d: trajectory disagrees with the legacy placed history", n)
		}
	}
}

func TestSeedCompatLive(t *testing.T) {
	for _, n := range compatSizes {
		spec := LiveConfig{Profile: UnitBandwidth(n)}
		rep := runWorkersInvariant(t, spec)
		legacy, err := gossip.RunLive(gossip.LiveConfig{
			Profile: UnitBandwidth(n),
			Seed:    run.SeedFor(compatSeed, run.DomainLive),
			Engine:  gossip.LiveSharded,
			Shards:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Detail, legacy) {
			t.Fatalf("n=%d: Run result differs from legacy SpreadRumorLive path", n)
		}

		// The engine axis must be invisible too: the goroutine-per-peer
		// substrate yields the identical report under perfect sync.
		goro, err := Run(spec, WithSeed(compatSeed), WithEngine(LiveGoroutine))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripTiming(goro), stripTiming(rep)) {
			t.Fatalf("n=%d: goroutine engine report differs from sharded", n)
		}
	}
}

func TestSeedCompatHandshake(t *testing.T) {
	for _, n := range compatSizes {
		const rounds = 6
		rep := runWorkersInvariant(t, HandshakeConfig{Profile: UnitBandwidth(n), Rounds: rounds})

		sel, err := core.NewUniformSelector(n)
		if err != nil {
			t.Fatal(err)
		}
		h, err := core.NewHandshake(UnitBandwidth(n), sel, run.SeedFor(compatSeed, run.DomainHandshake))
		if err != nil {
			t.Fatal(err)
		}
		nw, err := simnet.NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		var perRound []int
		for r := 0; r < rounds; r++ {
			dates, err := h.RunRound(nw)
			if err != nil {
				t.Fatal(err)
			}
			perRound = append(perRound, len(dates))
		}
		if !intsEqual(rep.Sent, perRound) {
			t.Fatalf("n=%d: per-round dates %v differ from the legacy handshake %v", n, rep.Sent, perRound)
		}
		if rep.Messages != nw.Stats().Sent {
			t.Fatalf("n=%d: traffic %d differs from the legacy handshake %d", n, rep.Messages, nw.Stats().Sent)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil); err == nil {
		t.Error("accepted a nil spec")
	}
	if _, err := Run(RumorConfig{N: 64, Algorithm: Dating}, WithWorkers(0)); err == nil {
		t.Error("accepted a zero worker budget")
	}
	if _, err := Run(RumorConfig{}); err == nil {
		t.Error("accepted an empty rumor config")
	}
}

func TestRunTraceReplaysTrajectory(t *testing.T) {
	var rounds []int
	var progress []int
	rep, err := Run(RumorConfig{N: 128, Algorithm: Dating},
		WithSeed(3), WithTrace(func(round, p int) {
			rounds = append(rounds, round)
			progress = append(progress, p)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != rep.Rounds {
		t.Fatalf("trace saw %d rounds, report has %d", len(rounds), rep.Rounds)
	}
	for i := range rounds {
		if rounds[i] != i+1 {
			t.Fatalf("trace rounds out of order: %v", rounds)
		}
	}
	if !intsEqual(progress, rep.Trajectory) {
		t.Fatalf("trace progress %v differs from trajectory %v", progress, rep.Trajectory)
	}
}
