package repro

// Seed-compatibility golden tests for the unified runner: for every
// protocol, Run(spec, WithSeed(s)) is pinned bit-for-bit by an FNV-1a hash
// over the unified report, and must be bit-identical across worker budgets,
// pipelining depths and (for live runs) execution substrates — the whole
// point of the seed-first API is that *no* option other than the seed can
// move a number. The hashes were captured from the pre-exch-kernel
// implementation, so they also pin the refactored engine, the Arranger and
// the live runtime against their historical output. The tests run each
// protocol at n = 17 (degenerate small networks exercise every edge path)
// and n = 1000.

import (
	"hash/fnv"
	"reflect"
	"testing"
)

const compatSeed = 0xC0FFEE

// hashReport digests the option-independent fields of a unified report:
// every int64 is folded little-endian, with -1 sentinels separating the
// variable-length histories.
func hashReport(r Report) uint64 {
	h := fnv.New64a()
	w := func(vs ...int64) {
		for _, v := range vs {
			var b [8]byte
			u := uint64(v)
			for i := 0; i < 8; i++ {
				b[i] = byte(u >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	w(int64(r.Rounds))
	if r.Completed {
		w(1)
	} else {
		w(0)
	}
	for _, v := range r.Trajectory {
		w(int64(v))
	}
	w(-1)
	for _, v := range r.Sent {
		w(int64(v))
	}
	w(-1)
	w(r.Messages, int64(r.MaxInLoad), int64(r.MaxOutLoad))
	return h.Sum64()
}

// compatCase pins one (spec, n) cell of the golden table.
type compatCase struct {
	name string
	spec func(n int) Spec
	want map[int]uint64 // n -> hash at seed compatSeed
}

var compatCases = []compatCase{
	{
		name: "rumor-dating",
		spec: func(n int) Spec { return RumorConfig{Algorithm: Dating, N: n} },
		want: map[int]uint64{17: 0x81a18fe81c453882, 1000: 0x0c18d17057c33cd1},
	},
	{
		name: "rumor-push",
		spec: func(n int) Spec { return RumorConfig{Algorithm: Push, N: n} },
		want: map[int]uint64{17: 0x7ffbbd51787521f7, 1000: 0x2cba44f09be18d5d},
	},
	{
		name: "multirumor",
		spec: func(n int) Spec {
			return MultiRumorConfig{N: n, Injections: []Injection{
				{Round: 1, Source: 0}, {Round: 3, Source: n / 2}, {Round: 4, Source: n - 1},
			}}
		},
		want: map[int]uint64{17: 0xe0265eec2480d7b9, 1000: 0xccaa468b226a831d},
	},
	{
		name: "monger",
		spec: func(n int) Spec { return MongerConfig{N: n, Blocks: 4, BlockSize: 16, PayloadSeed: 9} },
		want: map[int]uint64{17: 0x78c89cb84e8c8ad1, 1000: 0x99e234d3ba2e5a2e},
	},
	{
		name: "storage",
		spec: func(n int) Spec { return StorageConfig{N: n, ObjectsPerNode: 1, Replicas: 2, SlotsPerNode: 4} },
		want: map[int]uint64{17: 0xcfb34c8c73339eea, 1000: 0x917cb681c47bb1ba},
	},
	{
		name: "live",
		spec: func(n int) Spec { return LiveConfig{Profile: UnitBandwidth(n)} },
		want: map[int]uint64{17: 0xc56f61fda6de9cbd, 1000: 0x2bbea01938fc3740},
	},
	{
		name: "handshake",
		spec: func(n int) Spec { return HandshakeConfig{Profile: UnitBandwidth(n), Rounds: 6} },
		want: map[int]uint64{17: 0xe31905a7d005ce61, 1000: 0x6a01f39bbe200e3b},
	},
}

// stripTiming clears the fields that legitimately vary between identical
// runs (wall clock, requested budget), so reports can be DeepEqual-ed.
func stripTiming(r Report) Report {
	r.Wall = 0
	r.Workers = 0
	return r
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSeedCompatGoldens(t *testing.T) {
	// The golden table itself, plus the option-invariance sweep: worker
	// budgets 1/2/8 and pipelining depths 0/3 must all hash to the pinned
	// value — they are pure speed knobs.
	for _, tc := range compatCases {
		t.Run(tc.name, func(t *testing.T) {
			for n, want := range tc.want {
				var ref Report
				first := true
				for _, w := range []int{1, 2, 8} {
					for _, depth := range []int{0, 3} {
						rep, err := Run(tc.spec(n), WithSeed(compatSeed), WithWorkers(w), WithPipeline(depth))
						if err != nil {
							t.Fatalf("n=%d workers=%d pipeline=%d: %v", n, w, depth, err)
						}
						if got := hashReport(rep); got != want {
							t.Fatalf("n=%d workers=%d pipeline=%d: report hash %#016x, pinned %#016x",
								n, w, depth, got, want)
						}
						if first {
							ref, first = rep, false
							continue
						}
						if !reflect.DeepEqual(stripTiming(rep), stripTiming(ref)) {
							t.Fatalf("n=%d workers=%d pipeline=%d: report differs beyond the hashed fields", n, w, depth)
						}
					}
				}
			}
		})
	}
}

func TestSeedCompatLiveEngines(t *testing.T) {
	// The engine axis must be invisible too: the goroutine-per-peer
	// substrate yields the identical report under perfect sync, matching
	// the same pinned hash as the sharded default.
	for _, n := range []int{17, 1000} {
		spec := LiveConfig{Profile: UnitBandwidth(n)}
		sharded, err := Run(spec, WithSeed(compatSeed))
		if err != nil {
			t.Fatal(err)
		}
		goro, err := Run(spec, WithSeed(compatSeed), WithEngine(LiveGoroutine))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripTiming(goro), stripTiming(sharded)) {
			t.Fatalf("n=%d: goroutine engine report differs from sharded", n)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil); err == nil {
		t.Error("accepted a nil spec")
	}
	if _, err := Run(RumorConfig{N: 64, Algorithm: Dating}, WithWorkers(0)); err == nil {
		t.Error("accepted a zero worker budget")
	}
	if _, err := Run(RumorConfig{N: 64, Algorithm: Dating}, WithPipeline(-1)); err == nil {
		t.Error("accepted a negative pipeline depth")
	}
	if _, err := Run(RumorConfig{}); err == nil {
		t.Error("accepted an empty rumor config")
	}
}

func TestRunTraceReplaysTrajectory(t *testing.T) {
	var rounds []int
	var progress []int
	rep, err := Run(RumorConfig{N: 128, Algorithm: Dating},
		WithSeed(3), WithTrace(func(round, p int) {
			rounds = append(rounds, round)
			progress = append(progress, p)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != rep.Rounds {
		t.Fatalf("trace saw %d rounds, report has %d", len(rounds), rep.Rounds)
	}
	for i := range rounds {
		if rounds[i] != i+1 {
			t.Fatalf("trace rounds out of order: %v", rounds)
		}
	}
	if !intsEqual(progress, rep.Trajectory) {
		t.Fatalf("trace progress %v differs from trajectory %v", progress, rep.Trajectory)
	}
}
