package repro

import (
	"repro/internal/bandwidth"
	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/run"
	"repro/internal/simnet"
	"repro/internal/storage"
)

// Re-exported core types. The facade uses type aliases so that values flow
// freely between the public API and the implementation packages.
type (
	// Stream is a deterministic random stream; all APIs take one
	// explicitly so that every simulation is reproducible from its seed.
	Stream = rng.Stream

	// Profile holds per-node incoming/outgoing bandwidths (bin, bout).
	Profile = bandwidth.Profile

	// Selector is the common selection distribution for dating requests.
	Selector = core.Selector

	// Date is one arranged unit communication (Sender -> Receiver).
	Date = core.Date

	// RoundResult reports one dating-service round.
	RoundResult = core.RoundResult

	// DatingService runs rounds of Algorithm 1.
	DatingService = core.Service

	// Ring is the DHT substrate of Section 4.
	Ring = overlay.Ring

	// RumorConfig parameterizes a rumor-spreading run.
	RumorConfig = gossip.Config

	// RumorResult reports a rumor-spreading run.
	RumorResult = gossip.Result

	// Algorithm selects a spreading protocol (Dating or a baseline).
	Algorithm = gossip.Algorithm

	// MongerConfig parameterizes network-coded multi-block broadcast.
	MongerConfig = coding.MongerConfig

	// MongerResult reports a mongering run.
	MongerResult = coding.MongerResult

	// StorageConfig parameterizes dating-organized replication.
	StorageConfig = storage.Config

	// StorageResult reports a replication run.
	StorageResult = storage.Result

	// Arranger matches supply and demand vectors round after round with
	// reusable scratch; its output is independent of its worker count.
	Arranger = core.Arranger

	// LiveConfig parameterizes fully message-level spreading; the engine,
	// shard count and network model come from the run options (WithEngine,
	// WithWorkers, WithNet).
	LiveConfig = gossip.LiveConfig

	// LiveResult reports a message-level spreading run.
	LiveResult = gossip.LiveResult

	// LiveEngine selects the message-level execution substrate.
	LiveEngine = gossip.LiveEngine

	// NetModel decides message latency and loss in sharded live runs.
	NetModel = live.NetModel

	// NetSync is the paper's synchronous reliable network (the default).
	NetSync = live.Sync

	// NetFixedLatency delivers every message after a fixed number of rounds.
	NetFixedLatency = live.FixedLatency

	// NetGeomLatency gives each message an independent geometric delay.
	NetGeomLatency = live.GeomLatency

	// NetLoss drops each message independently with fixed probability.
	NetLoss = live.Loss

	// NetEpochChurn takes whole peers down for whole epochs (correlated loss).
	NetEpochChurn = live.EpochChurn

	// AsyncConfig parameterizes asynchronous push&pull spreading on the
	// clockless event-driven runtime: each peer fires on its own
	// exponential clock (rate drawn from its heterogeneity profile) instead
	// of in globally synchronous rounds. The shard count comes from the run
	// options (WithWorkers) and is a pure speed knob — every count replays
	// the identical event history bit for bit.
	AsyncConfig = gossip.AsyncConfig

	// AsyncResult reports an asynchronous spreading run (buckets executed,
	// simulated clock time, informed-count history, firings).
	AsyncResult = gossip.AsyncResult

	// Graph is a compressed-sparse-row undirected topology: the contact
	// structure of graph-constrained spreading. Build one with
	// CompleteGraph, RingLatticeGraph, ErdosRenyiGraph, BarabasiAlbertGraph
	// or PowerLawGraph — all deterministic functions of their parameters and
	// seed.
	Graph = graph.CSR

	// TopologyConfig parameterizes graph-constrained spreader/stifler
	// spreading (ignorant → spreader → stifler, stifling rate Alpha): every
	// contact is drawn over the initiating peer's neighbor row instead of
	// the any-to-any rendezvous assumption. The engine, shard count and
	// network model come from the run options.
	TopologyConfig = gossip.TopologyConfig

	// TopologyResult reports a graph-constrained spreading run, including
	// the per-round spreader/stifler split and the final spread fraction.
	TopologyResult = gossip.TopologyResult

	// ConsensusConfig parameterizes conflicting-rumor consensus: K
	// conflicting variants of one rumor seeded by geometry (ConsensusSeed*)
	// over a Graph and merged per peer under a Rule (ConsensusRule*) until
	// the leading variant holds a Threshold share of the population. The
	// engine, shard count and network model come from the run options;
	// attach an Observer to get per-round variant-share gauges in
	// Report.Metrics.
	ConsensusConfig = gossip.ConsensusConfig

	// ConsensusResult reports a consensus run: winner, agreement level and
	// the full per-round variant-share history (Report.Detail).
	ConsensusResult = gossip.ConsensusResult

	// ConsensusSeeding selects the initial variant placement geometry; see
	// the ConsensusSeed* constants.
	ConsensusSeeding = gossip.ConsensusSeeding

	// ConsensusRule selects the merge rule peers revise their variant
	// under; see the ConsensusRule* constants.
	ConsensusRule = gossip.MergeRule

	// MultiRumorConfig parameterizes spreading of several rumors injected
	// over time.
	MultiRumorConfig = gossip.MultiRumorConfig

	// MultiRumorResult reports a multi-rumor run.
	MultiRumorResult = gossip.MultiRumorResult

	// Injection introduces one rumor at a given round and source.
	Injection = gossip.Injection

	// Network is the deterministic round-synchronous message engine.
	Network = simnet.Network

	// NetworkStats aggregates an engine's traffic counters (messages sent,
	// dropped, per kind); HandshakeConfig runs report it as Report.Detail.
	NetworkStats = simnet.Stats

	// Handshake runs the dating service as an explicit three-step message
	// protocol on a Network, exposing the real control-message overhead.
	Handshake = core.Handshake

	// HandshakeConfig runs the explicit three-step handshake through the
	// unified runner: repro.Run(HandshakeConfig{...}).
	HandshakeConfig = core.HandshakeConfig

	// NetRingLatency is the asymmetric network model: per-pair latency
	// proportional to ring distance in a DHT-style embedding, so which
	// rendezvous a request lands on decides how fast its handshake runs.
	NetRingLatency = live.RingLatency

	// Spec is a runnable protocol configuration; every protocol config of
	// this package implements it, and Run is its single entrypoint.
	Spec = run.Spec

	// Report is the unified outcome every protocol emits under Run.
	Report = run.Report

	// RunOption is a functional option of Run; see WithSeed, WithWorkers,
	// WithEngine, WithNet and WithTrace.
	RunOption = run.Option

	// Observer is the deterministic instrumentation sink of WithObserver:
	// phase spans, per-round gauges, Chrome-trace export and the Metrics
	// aggregate. Observers are read-only — attaching one never changes a
	// run's results.
	Observer = obs.Observer

	// Metrics is the aggregated instrumentation attached to Report.Metrics
	// when an observer was attached.
	Metrics = obs.Metrics
)

// Spreading algorithms, in the display order of the paper's Figure 2.
const (
	PushPull     = gossip.PushPull
	FairPushPull = gossip.FairPushPull
	Pull         = gossip.Pull
	FairPull     = gossip.FairPull
	Push         = gossip.Push
	Dating       = gossip.Dating
)

// Seeding geometries of ConsensusConfig: where the K conflicting variants
// start.
const (
	// ConsensusSeedDistinct seeds each variant at distinct uniform-random
	// peers.
	ConsensusSeedDistinct = gossip.SeedDistinct
	// ConsensusSeedHubLeaf alternates variants between the highest-degree
	// hubs and the lowest-degree leaves of the graph.
	ConsensusSeedHubLeaf = gossip.SeedHubLeaf
	// ConsensusSeedClustered gives each variant a contiguous ring range —
	// spatially clustered initial opinions.
	ConsensusSeedClustered = gossip.SeedClustered
)

// Merge rules of ConsensusConfig: how a peer revises its variant from what
// it hears. All rules are deterministic in canonical inbox order.
const (
	// ConsensusRuleMajority adopts the variant heard most often (ties to
	// the lowest variant id).
	ConsensusRuleMajority = gossip.RuleMajority
	// ConsensusRuleLatest adopts the variant with the newest logical
	// timestamp; it floods to full consensus on any connected graph.
	ConsensusRuleLatest = gossip.RuleLatest
	// ConsensusRuleWeighted is majority with each message weighted by the
	// sender's mean profile bandwidth.
	ConsensusRuleWeighted = gossip.RuleWeighted
)

// Message-level execution substrates for live runs (WithEngine).
const (
	// LiveGoroutine runs one goroutine per peer (the zero value).
	LiveGoroutine = gossip.LiveGoroutine
	// LiveSharded runs the sharded internal/live runtime: scales to
	// millions of peers, bit-identical for every shard count, and accepts
	// a NetModel for latency, loss and churn.
	LiveSharded = gossip.LiveSharded
)

// Run executes any protocol of this package — rumor spreading
// (RumorConfig), multi-rumor (MultiRumorConfig), message-level live
// spreading (LiveConfig), asynchronous clockless spreading (AsyncConfig),
// graph-constrained spreader/stifler spreading (TopologyConfig),
// conflicting-rumor consensus (ConsensusConfig),
// network-coded mongering (MongerConfig), replicated storage
// (StorageConfig), the explicit dating handshake (HandshakeConfig) — from
// its config spec plus the orthogonal axes carried by options:
//
//	rep, err := repro.Run(repro.RumorConfig{N: 1000, Algorithm: repro.Dating},
//	    repro.WithSeed(42), repro.WithWorkers(8))
//	fmt.Println(rep.Rounds, rep.Completed)
//
// Seeds replace streams: Run derives every random stream internally from
// the root seed with the repository's SplitMix64 domain scheme, one domain
// per protocol, so protocols sharing a seed draw from disjoint stream
// families and a report is a pure function of (spec, seed). The worker
// budget (WithWorkers), the execution substrate (WithEngine, under the
// perfect-sync network), the pipelining depth (WithPipeline) and shared
// budgets are pure speed knobs — the seed-compatibility tests pin Run's
// output bit-for-bit across all of them.
func Run(spec Spec, opts ...RunOption) (Report, error) { return run.Run(spec, opts...) }

// WithSeed sets the run's root seed (default 0); two runs of one spec and
// seed are bit-identical whatever the other options say.
func WithSeed(seed uint64) RunOption { return run.WithSeed(seed) }

// WithWorkers sets the run's total worker budget (default 1): dating
// rounds draw spare workers from one shared pool, and the sharded live
// runtime uses it as its shard count. Results never depend on it.
func WithWorkers(k int) RunOption { return run.WithWorkers(k) }

// WithEngine selects the execution substrate for live runs: LiveSharded
// (the default under Run) or LiveGoroutine. Under the perfect-sync network
// both substrates produce the identical report.
func WithEngine(e LiveEngine) RunOption {
	if e == LiveGoroutine {
		return run.WithEngine(run.EngineGoroutine)
	}
	return run.WithEngine(run.EngineSharded)
}

// WithNet plugs a network model — latency, loss, churn, ring-distance
// asymmetry — into a live run; nil is the paper's perfect-sync model.
func WithNet(m NetModel) RunOption { return run.WithNet(m) }

// WithPipeline sets the round-pipelining depth (default 1, sequential).
// Protocols with fusable rounds execute batches of up to k rounds with the
// next round's request scatter overlapping the current round's matching
// (rumor spreading on the dating service) or with the delivery sort fused
// into the step phase (the sharded live runtime). Pipelining is a pure
// scheduling change: every depth produces the same report bit for bit.
func WithPipeline(k int) RunOption { return run.WithPipeline(k) }

// WithTrace registers a per-round observer: fn is called once per protocol
// round, in round order, with the 1-based round number and that round's
// trajectory value (informed nodes, placed replicas, ...). For clockless
// AsyncConfig runs the granularity is the calendar bucket: fn receives the
// 1-based bucket index and the informed count at that bucket's boundary.
// The calls replay the recorded trajectory after the run completes —
// uniform for every protocol — so use fn to render progress histories; to
// watch a long run live, attach a protocol-level hook such as
// RumorConfig.OnRound.
func WithTrace(fn func(round, progress int)) RunOption { return run.WithTrace(fn) }

// NewObserver returns an empty instrumentation observer for WithObserver.
// After the run, export with Observer.WriteTraceFile (Chrome trace_event
// JSON for about:tracing / Perfetto), print Observer.Summary, or read the
// aggregate from Report.Metrics.
func NewObserver() *Observer { return obs.NewObserver() }

// WithObserver attaches an instrumentation observer to the run: the
// runtimes record per-(round, shard, phase) wall-clock spans and per-round
// gauges (messages routed and dropped, clamped delays, calendar-queue
// depth, scratch bytes, budget tokens in flight) into it, and Run fills
// Report.Metrics with the aggregate. Observation is read-only and touches
// no random stream: an instrumented run is bit-identical to an
// uninstrumented one, at every worker count.
func WithObserver(o *Observer) RunOption { return run.WithObserver(o) }

// UniformRingEmbedding places n peers at uniform positions on the unit
// ring, derived from seed — the standard embedding for NetRingLatency when
// no real overlay coordinates exist.
func UniformRingEmbedding(n int, seed uint64) []float64 { return live.UniformRing(n, seed) }

// CompleteGraph returns the complete graph on n nodes — the any-to-any
// rendezvous assumption expressed as a topology (O(n²) storage; keep n
// modest).
func CompleteGraph(n int) (*Graph, error) { return graph.Complete(n) }

// RingLatticeGraph returns the ring lattice where each node is adjacent to
// its k nearest neighbors per side (degree 2k); fully determined by (n, k).
func RingLatticeGraph(n, k int) (*Graph, error) { return graph.RingLattice(n, k) }

// ErdosRenyiGraph returns a G(n, p) random graph, generated in O(n + edges)
// with the Batagelj–Brandes skip; a pure function of (n, p, seed).
func ErdosRenyiGraph(n int, p float64, seed uint64) (*Graph, error) {
	return graph.ErdosRenyi(n, p, seed)
}

// BarabasiAlbertGraph returns a preferential-attachment scale-free graph
// (m edges per arriving node); a pure function of (n, m, seed).
func BarabasiAlbertGraph(n, m int, seed uint64) (*Graph, error) {
	return graph.BarabasiAlbert(n, m, seed)
}

// PowerLawGraph returns an erased-configuration-model graph whose degrees
// follow P(d) ∝ d^-exponent on [minDeg, maxDeg]; a pure function of its
// parameters and seed.
func PowerLawGraph(n int, exponent float64, minDeg, maxDeg int, seed uint64) (*Graph, error) {
	return graph.PowerLaw(n, exponent, minDeg, maxDeg, seed)
}

// NewStream returns a deterministic random stream seeded with seed.
func NewStream(seed uint64) *Stream { return rng.New(seed) }

// NewStreams derives n independent per-node streams from one seed.
func NewStreams(seed uint64, n int) []*Stream { return rng.NewStreams(seed, n) }

// UnitBandwidth returns the homogeneous profile of the paper's figures:
// every node sends and receives one unit message per round.
func UnitBandwidth(n int) Profile { return bandwidth.Homogeneous(n, 1) }

// Homogeneous returns a profile with bin = bout = b for every node.
func Homogeneous(n, b int) Profile { return bandwidth.Homogeneous(n, b) }

// Bimodal returns a two-class rich/poor profile (Theorem 10 workloads).
func Bimodal(n, rich, richB, poorB int) (Profile, error) {
	return bandwidth.Bimodal(n, rich, richB, poorB)
}

// ZipfBandwidth draws per-node bandwidths from a Zipf law, skewing in/out
// within the paper's C-ratio bound.
func ZipfBandwidth(n int, exponent float64, maxB int, c float64, s *Stream) (Profile, error) {
	return bandwidth.Zipf(n, exponent, maxB, c, s)
}

// Uniform returns the uniform selection distribution over n nodes.
func Uniform(n int) (Selector, error) { return core.NewUniformSelector(n) }

// Weighted returns a selection distribution proportional to weights.
func Weighted(weights []float64) (Selector, error) { return core.NewWeightedSelector(weights) }

// RingSelection wraps a DHT ring as a selection distribution: each node is
// chosen with probability equal to its arc length (Section 4).
func RingSelection(r *Ring) (Selector, error) { return core.NewRingSelector(r) }

// NewRing places n DHT nodes uniformly at random on the ring.
func NewRing(n int, s *Stream) (*Ring, error) { return overlay.NewRing(n, s) }

// NewDatingService builds a dating service for a bandwidth profile and a
// selection distribution.
func NewDatingService(p Profile, sel Selector) (*DatingService, error) {
	return core.NewService(p, sel)
}

// ArrangeDates runs a single dating round directly from per-node supply and
// demand vectors (the abstract resource-matching interface of the paper's
// introduction; zeros are allowed). It is the one-shot form of Arranger;
// protocols that arrange every round should hold an Arranger instead.
func ArrangeDates(out, in []int, sel Selector, s *Stream) ([]Date, error) {
	return core.ArrangeDates(out, in, sel, s)
}

// NewArranger builds a reusable supply/demand matcher over a selection
// distribution. Arrange(out, in, seed, workers) draws its randomness from
// per-node and per-rendezvous streams derived from seed with SplitMix64,
// so the arranged dates are bit-for-bit identical for every workers count —
// parallelism is purely a speed knob:
//
//	arr, _ := repro.NewArranger(sel)
//	for round := 0; round < rounds; round++ {
//		dates, _ := arr.Arrange(supply, demand, s.Uint64(), 8)
//		...
//	}
func NewArranger(sel Selector) (*Arranger, error) { return core.NewArranger(sel) }

// NewNetwork creates a round-synchronous message engine with n live nodes.
func NewNetwork(n int) (*Network, error) { return simnet.NewNetwork(n) }

// NewHandshake builds the message-level dating service: each round costs
// three network rounds (scatter, answer, payload) and every control message
// carries about one address, the paper's overhead model.
func NewHandshake(p Profile, sel Selector, seed uint64) (*Handshake, error) {
	return core.NewHandshake(p, sel, seed)
}
