// Hierarchical content distribution (Theorem 10): when the average
// bandwidth is large (m = Omega(n log n)), nodes of at least average
// bandwidth receive the rumor in O(log n / log(m/n)) rounds — much earlier
// than the weak tail. This is the paper's opening for serving different
// content tiers according to communication capabilities.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n     = 3000
		rich  = n / 10 // 10% well-provisioned nodes
		richB = 16
	)
	// Bimodal profile: rich nodes at 16 units, the rest at 1. The source
	// (node 0) is rich, as the theorem requires.
	profile, err := repro.Bimodal(n, rich, richB, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The per-round protocol hook (OnRound) still works under repro.Run:
	// it is part of the protocol config, not an orthogonal axis.
	richDone := 0
	rep, err := repro.Run(repro.RumorConfig{
		Algorithm: repro.Dating,
		Profile:   profile,
		Source:    0,
		OnRound: func(round int, informed []bool) {
			if richDone > 0 {
				return
			}
			for i := 0; i < rich; i++ {
				if !informed[i] {
					return
				}
			}
			richDone = round
		},
	}, repro.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n = %d (%d rich nodes at bandwidth %d, %d weak at 1)\n\n", n, rich, richB, n-rich)
	fmt.Printf("all rich nodes informed by round %d\n", richDone)
	fmt.Printf("entire network informed by round %d\n", rep.Rounds)
	fmt.Printf("\nrich tier finished %.1fx earlier — the hierarchical distribution effect\n",
		float64(rep.Rounds)/float64(richDone))
}
