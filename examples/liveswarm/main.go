// Liveswarm: rumor spreading as a real concurrent system — one goroutine
// per peer, channels for messages, no shared state beyond each peer's own
// rumor flag. The protocol is the paper's three-step dating handshake,
// selected with WithEngine(LiveGoroutine); the run is bit-identical to the
// sharded runtime for the same seed, which the test suite verifies. This
// is the "goroutines map naturally to peer processes" demonstration.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	const n = 1000
	rep, err := repro.Run(repro.LiveConfig{
		Profile: repro.UnitBandwidth(n),
		Source:  0,
	},
		repro.WithSeed(31),
		repro.WithEngine(repro.LiveGoroutine), // n goroutines, barrier-synchronized rounds
	)
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Detail.(repro.LiveResult)

	fmt.Printf("%d peers, each a goroutine, dating handshake over channels\n\n", n)
	for round, count := range rep.Trajectory {
		bar := strings.Repeat("#", count*50/n)
		fmt.Printf("dating round %2d: %4d informed |%-50s|\n", round+1, count, bar)
	}
	fmt.Printf("\ncompleted: %v in %d dating rounds (%d network rounds)\n",
		rep.Completed, rep.Rounds, res.Traffic.Rounds)
	fmt.Printf("traffic: %d messages total, max payloads into one node per round: %d\n",
		rep.Messages, rep.MaxInLoad)
}
