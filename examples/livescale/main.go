// Livescale: one million peers running the dating handshake as real
// messages — every offer, answer and payload individually routed — on the
// sharded internal/live runtime. Goroutine-per-peer execution stops being
// viable around 10^5 peers; the sharded runtime replaces it with a fixed
// worker pool over flat message buffers and reaches 10^6 comfortably,
// while staying bit-identical for every shard count (run it with -shards 1
// and -shards 8: same curve, different wall-clock).
//
// A second run repeats the spread on a lossy, laggy network (10% iid loss
// on top of geometric latency) to show the same protocol code degrading
// gracefully under realistic conditions.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"repro"
)

func main() {
	n := flag.Int("n", 1_000_000, "peer count")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "shard workers (any value: same result)")
	lossy := flag.Bool("lossy", true, "repeat the run under 10% loss + geometric latency")
	flag.Parse()

	fmt.Printf("%d peers, %d shard workers, perfect-sync network\n\n", *n, *shards)
	sync := run(repro.LiveConfig{
		Profile: repro.UnitBandwidth(*n),
		Seed:    31,
		Engine:  repro.LiveSharded,
		Shards:  *shards,
	}, *n)

	if !*lossy {
		return
	}
	fmt.Printf("\nsame protocol, hostile network (10%% loss, geometric latency p=0.5):\n\n")
	hostile := run(repro.LiveConfig{
		Profile: repro.UnitBandwidth(*n),
		Seed:    31,
		Engine:  repro.LiveSharded,
		Shards:  *shards,
		Net:     repro.NetLoss{P: 0.10, Under: repro.NetGeomLatency{P: 0.5, Cap: 6}},
	}, *n)
	fmt.Printf("\ndegradation: %d -> %d dating rounds — slower, never stuck; no message is load-bearing\n",
		sync, hostile)
}

// run executes one spread and prints its trajectory, returning the dating
// round count.
func run(cfg repro.LiveConfig, n int) int {
	start := time.Now()
	res, err := repro.SpreadRumorLive(cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	step := len(res.History)/12 + 1
	for round := 0; round < len(res.History); round += step {
		printRound(round, res.History[round], n)
	}
	if (len(res.History)-1)%step != 0 {
		printRound(len(res.History)-1, res.History[len(res.History)-1], n)
	}
	fmt.Printf("\ncompleted: %v in %d dating rounds (%d network rounds), %.1fs wall\n",
		res.Completed, res.DatingRounds, res.Traffic.Rounds, elapsed.Seconds())
	fmt.Printf("traffic: %d messages routed (%.1fM msg/s), max payloads into one peer per round: %d\n",
		res.Traffic.Sent, float64(res.Traffic.Sent)/elapsed.Seconds()/1e6, res.MaxInPayloads)
	return res.DatingRounds
}

func printRound(round, count, n int) {
	bar := strings.Repeat("#", count*50/n)
	fmt.Printf("dating round %3d: %8d informed |%-50s|\n", round+1, count, bar)
}
