// Livescale: one million peers running the dating handshake as real
// messages — every offer, answer and payload individually routed — on the
// sharded internal/live runtime. Goroutine-per-peer execution stops being
// viable around 10^5 peers; the sharded runtime replaces it with a fixed
// worker pool over flat message buffers and reaches 10^6 comfortably,
// while staying bit-identical for every worker budget (run it with
// -workers 1 and -workers 8: same curve, different wall-clock).
//
// A second run repeats the spread on a lossy, laggy network (10% iid loss
// on top of geometric latency), and a third under ring-distance latency —
// every pair's flight time proportional to their distance in a DHT-style
// embedding, the asymmetric network model — to show the same protocol code
// degrading gracefully under realistic conditions.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"repro"
)

func main() {
	n := flag.Int("n", 1_000_000, "peer count")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker budget / shard count (any value: same result)")
	hostile := flag.Bool("hostile", true, "repeat the run under lossy and ring-latency networks")
	flag.Parse()

	spec := repro.LiveConfig{Profile: repro.UnitBandwidth(*n)}

	fmt.Printf("%d peers, %d shard workers, perfect-sync network\n\n", *n, *workers)
	sync := run(spec, *n, *workers, nil)

	if !*hostile {
		return
	}
	fmt.Printf("\nsame protocol, hostile network (10%% loss, geometric latency p=0.5):\n\n")
	lossy := run(spec, *n, *workers,
		repro.NetLoss{P: 0.10, Under: repro.NetGeomLatency{P: 0.5, Cap: 6}})

	fmt.Printf("\nsame protocol, asymmetric network (latency ~ ring distance in the DHT embedding):\n\n")
	ring := run(spec, *n, *workers,
		repro.NetRingLatency{Pos: repro.UniformRingEmbedding(*n, 31), Scale: 8, Max: 5})

	fmt.Printf("\ndegradation: %d -> %d (lossy) / %d (ring) dating rounds — slower, never stuck; no message is load-bearing\n",
		sync, lossy, ring)
}

// run executes one spread through the unified runner and prints its
// trajectory, returning the dating round count.
func run(spec repro.LiveConfig, n, workers int, net repro.NetModel) int {
	start := time.Now()
	rep, err := repro.Run(spec,
		repro.WithSeed(31), repro.WithWorkers(workers), repro.WithNet(net))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	res := rep.Detail.(repro.LiveResult)

	step := len(rep.Trajectory)/12 + 1
	for round := 0; round < len(rep.Trajectory); round += step {
		printRound(round, rep.Trajectory[round], n)
	}
	if (len(rep.Trajectory)-1)%step != 0 {
		printRound(len(rep.Trajectory)-1, rep.Trajectory[len(rep.Trajectory)-1], n)
	}
	fmt.Printf("\ncompleted: %v in %d dating rounds (%d network rounds), %.1fs wall\n",
		rep.Completed, rep.Rounds, res.Traffic.Rounds, elapsed.Seconds())
	fmt.Printf("traffic: %d messages routed (%.1fM msg/s), max payloads into one peer per round: %d\n",
		rep.Messages, float64(rep.Messages)/elapsed.Seconds()/1e6, rep.MaxInLoad)
	return rep.Rounds
}

func printRound(round, count, n int) {
	bar := strings.Repeat("#", count*50/n)
	fmt.Printf("dating round %3d: %8d informed |%-50s|\n", round+1, count, bar)
}
