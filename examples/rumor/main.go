// Rumor spreading on a heterogeneous network: a Zipf bandwidth profile with
// nodes from 1 to 32 units, spreading one rumor with the dating service and
// printing the informed count round by round. Demonstrates the paper's
// Theorem 4: completion in O(log n) rounds while never exceeding anyone's
// bandwidth.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	const n = 2000
	s := repro.NewStream(7)

	// Heterogeneous capabilities: Zipf-distributed bandwidths, with each
	// node's in/out ratio bounded by C = 2 as the paper's model requires.
	profile, err := repro.ZipfBandwidth(n, 1.0, 32, 2, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n = %d nodes, Bout = %d, Bin = %d, m = %d\n\n",
		n, profile.TotalOut(), profile.TotalIn(), profile.M())

	var trace []int
	res, err := repro.SpreadRumor(repro.RumorConfig{
		Algorithm: repro.Dating,
		Profile:   profile,
		Source:    0,
		OnRound: func(round int, informed []bool) {
			count := 0
			for _, b := range informed {
				if b {
					count++
				}
			}
			trace = append(trace, count)
		},
	}, s)
	if err != nil {
		log.Fatal(err)
	}

	for round, count := range trace {
		bar := strings.Repeat("#", count*50/n)
		fmt.Printf("round %2d: %5d informed |%-50s|\n", round+1, count, bar)
	}
	fmt.Printf("\ncompleted: %v in %d rounds (log2 n = 11)\n", res.Completed, res.Rounds)
	fmt.Printf("worst per-round loads: in %d, out %d — never above the profile\n",
		res.MaxInLoad, res.MaxOutLoad)
}
