// Rumor spreading on a heterogeneous network: a Zipf bandwidth profile with
// nodes from 1 to 32 units, spread through the unified repro.Run entrypoint
// with a per-round trace printing the informed count. Demonstrates the
// paper's Theorem 4: completion in O(log n) rounds while never exceeding
// anyone's bandwidth.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	const n = 2000
	const seed = 7

	// Heterogeneous capabilities: Zipf-distributed bandwidths, with each
	// node's in/out ratio bounded by C = 2 as the paper's model requires.
	profile, err := repro.ZipfBandwidth(n, 1.0, 32, 2, repro.NewStream(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n = %d nodes, Bout = %d, Bin = %d, m = %d\n\n",
		n, profile.TotalOut(), profile.TotalIn(), profile.M())

	rep, err := repro.Run(repro.RumorConfig{
		Algorithm: repro.Dating,
		Profile:   profile,
		Source:    0,
	},
		repro.WithSeed(seed),
		repro.WithWorkers(4),
		repro.WithTrace(func(round, informed int) {
			bar := strings.Repeat("#", informed*50/n)
			fmt.Printf("round %2d: %5d informed |%-50s|\n", round, informed, bar)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted: %v in %d rounds (log2 n = 11)\n", rep.Completed, rep.Rounds)
	fmt.Printf("worst per-round loads: in %d, out %d — never above the profile\n",
		rep.MaxInLoad, rep.MaxOutLoad)
}
