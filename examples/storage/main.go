// Replicated storage via block exchanges (Section 5): every node must place
// three replicas of each of its objects on distinct remote nodes; free
// hosting slots and outstanding replication needs are paired by the dating
// service each round with no coordinator.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.StorageConfig{
		N:              150,
		ObjectsPerNode: 2,
		Replicas:       3,
		SlotsPerNode:   10,
		RoundCap:       2, // each node ships/absorbs at most 2 blocks per round
	}
	rep, err := repro.Run(cfg, repro.WithSeed(5), repro.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Detail.(repro.StorageResult)

	total := cfg.N * cfg.ObjectsPerNode * cfg.Replicas
	fmt.Printf("replicating %d objects x %d replicas across %d nodes (%d placements)\n\n",
		cfg.N*cfg.ObjectsPerNode, cfg.Replicas, cfg.N, total)
	step := len(rep.Trajectory)/10 + 1
	for i := 0; i < len(rep.Trajectory); i += step {
		fmt.Printf("round %3d: %4d/%d replicas placed\n", i+1, rep.Trajectory[i], total)
	}
	fmt.Printf("\ncompleted: %v in %d rounds\n", rep.Completed, rep.Rounds)
	fmt.Printf("final occupancy: min %d, max %d blocks per node (avg %.1f)\n",
		res.MinOccupancy, res.MaxOccupancy, float64(total)/float64(cfg.N))
	fmt.Printf("transfers: %d useful, %d wasted dates\n", res.Transfers, res.WastedDates)
}
