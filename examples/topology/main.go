// Topology: one million peers spreading a rumor over a Barabási–Albert
// scale-free contact graph with spreader/stifler dynamics — every contact a
// routed message to a *neighbor*, not to a uniformly random peer. The graph
// is a pure function of (n, m, seed); the run is a pure function of the
// graph and the run seed. The example executes the identical configuration
// at shard counts {1, 2, 4} and cross-checks the trajectory digests: the
// shard count is a pure speed knob, and a digest mismatch is a determinism
// regression, reported with a non-zero exit.
//
// With stifling rate alpha > 0 the rumor dies out before reaching everyone
// (the final spread fraction printed is < 1) — the qualitative departure
// from the paper's any-to-any setting, where push&pull always completes.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	n := flag.Int("n", 1_000_000, "peer count")
	m := flag.Int("m", 3, "edges per arriving node (BA attachment)")
	alpha := flag.Float64("alpha", 0.25, "stifling probability")
	flag.Parse()

	start := time.Now()
	g, err := repro.BarabasiAlbertGraph(*n, *m, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BA graph: %d peers, %d edges, hub degree %d, digest %s (built in %v)\n\n",
		g.N(), g.Edges(), g.Degree(g.Hub()), g.Digest(), time.Since(start).Round(time.Millisecond))

	spec := repro.TopologyConfig{Graph: g, Source: 0, Alpha: *alpha}
	var ref string
	for _, shards := range []int{1, 2, 4} {
		t0 := time.Now()
		rep, err := repro.Run(spec, repro.WithSeed(42), repro.WithWorkers(shards))
		if err != nil {
			log.Fatal(err)
		}
		det := rep.Detail.(repro.TopologyResult)
		digest := trajectoryDigest(rep.Trajectory)
		fmt.Printf("shards=%d: %3d rounds, final spread %.4f, %d messages, digest %s  (%v)\n",
			shards, rep.Rounds, det.FinalSpread, rep.Messages, digest,
			time.Since(t0).Round(time.Millisecond))
		if ref == "" {
			ref = digest
		} else if digest != ref {
			log.Fatalf("shards=%d diverged: digest %s, want %s — determinism regression", shards, digest, ref)
		}
	}
	fmt.Println("\nall shard counts bit-identical")
}

// trajectoryDigest folds the informed-count history into an FNV-1a 64 hex
// digest, the repository's compact bit-identity witness.
func trajectoryDigest(traj []int) string {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range traj {
		x := uint64(int64(v))
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= prime
		}
	}
	return fmt.Sprintf("%016x", h)
}
