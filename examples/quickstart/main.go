// Quickstart: run a few rounds of the dating service on a homogeneous
// network and watch the arranged fraction hover around the paper's 0.47,
// then spread a rumor through the unified repro.Run entrypoint.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 1000

	// Every node can send one and receive one unit-size message per round.
	profile := repro.UnitBandwidth(n)

	// Nodes address their requests uniformly at random; swap this for
	// repro.RingSelection to run over a DHT instead.
	sel, err := repro.Uniform(n)
	if err != nil {
		log.Fatal(err)
	}

	svc, err := repro.NewDatingService(profile, sel)
	if err != nil {
		log.Fatal(err)
	}

	s := repro.NewStream(2024)
	fmt.Printf("dating service, n = %d nodes, m = %d possible communications/round\n\n", n, svc.M())
	for round := 1; round <= 5; round++ {
		res := svc.RunRound(s)
		fmt.Printf("round %d: %4d dates arranged (%.1f%% of the centralized optimum)\n",
			round, len(res.Dates), 100*res.Fraction(svc.M()))
	}
	fmt.Println("\nthe paper proves a constant fraction whp; uniform selection gives ~47%")

	// Whole protocols run through one entrypoint: a config spec, a seed,
	// and a worker budget that is a pure speed knob.
	rep, err := repro.Run(repro.RumorConfig{N: n, Algorithm: repro.Dating},
		repro.WithSeed(2024), repro.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepro.Run(rumor): informed all %d nodes in %d rounds, %d messages\n",
		n, rep.Rounds, rep.Messages)
}
