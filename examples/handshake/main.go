// Handshake: the dating service as an explicit message protocol. Each
// dating round costs three network rounds — scatter tiny offer/request
// messages, rendezvous answers carrying one address each, then the actual
// payloads — which is exactly the overhead model of the paper ("these will
// be only small messages — typically one IP address in each message").
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 500
	profile := repro.UnitBandwidth(n)
	sel, err := repro.Uniform(n)
	if err != nil {
		log.Fatal(err)
	}
	h, err := repro.NewHandshake(profile, sel, 17)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := repro.NewNetwork(n)
	if err != nil {
		log.Fatal(err)
	}

	totalDates := 0
	const rounds = 10
	for r := 1; r <= rounds; r++ {
		dates, err := h.RunRound(nw)
		if err != nil {
			log.Fatal(err)
		}
		totalDates += len(dates)
		fmt.Printf("dating round %2d: %3d dates\n", r, len(dates))
	}

	st := nw.Stats()
	control := st.Sent - int64(totalDates)
	fmt.Printf("\nover %d dating rounds (%d network rounds):\n", rounds, st.Rounds)
	fmt.Printf("  payload messages: %d\n", totalDates)
	fmt.Printf("  control messages: %d (%.1f per payload, all address-sized)\n",
		control, float64(control)/float64(totalDates))
	fmt.Println("\nwhen the payload is a movie chunk, this overhead is negligible")
}
