// Handshake: the dating service as an explicit message protocol. Each
// dating round costs three network rounds — scatter tiny offer/request
// messages, rendezvous answers carrying one address each, then the actual
// payloads — which is exactly the overhead model of the paper ("these will
// be only small messages — typically one IP address in each message").
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 500
	const rounds = 10

	rep, err := repro.Run(repro.HandshakeConfig{
		Profile: repro.UnitBandwidth(n),
		Rounds:  rounds,
	}, repro.WithSeed(17))
	if err != nil {
		log.Fatal(err)
	}

	totalDates := 0
	for r, dates := range rep.Sent {
		totalDates += dates
		fmt.Printf("dating round %2d: %3d dates\n", r+1, dates)
	}

	st := rep.Detail.(repro.NetworkStats)
	control := st.Sent - int64(totalDates)
	fmt.Printf("\nover %d dating rounds (%d network rounds):\n", rounds, st.Rounds)
	fmt.Printf("  payload messages: %d\n", totalDates)
	fmt.Printf("  control messages: %d (%.1f per payload, all address-sized)\n",
		control, float64(control)/float64(totalDates))
	fmt.Println("\nwhen the payload is a movie chunk, this overhead is negligible")
}
