// Consensus: K conflicting variants of one rumor competing on a
// Barabási–Albert scale-free contact graph until one of them holds 90% of
// the population. The example runs all three merge rules from the same
// seeding and prints each rule's winner, agreement level and rounds —
// showing the qualitative split this subsystem measures: the
// latest-timestamp rule always floods to consensus, while majority-of-heard
// on a sparse scale-free graph can lock in local pluralities and stall
// below the threshold (its row then reports the capped round count and the
// agreement it did reach).
//
// Every run executes at shard counts {1, 2, 4} and cross-checks the full
// variant-share history digests: the shard count is a pure speed knob, and
// a mismatch is a determinism regression, reported with a non-zero exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	n := flag.Int("n", 200_000, "peer count")
	m := flag.Int("m", 3, "edges per arriving node (BA attachment)")
	k := flag.Int("k", 3, "number of conflicting variants")
	flag.Parse()

	start := time.Now()
	g, err := repro.BarabasiAlbertGraph(*n, *m, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BA graph: %d peers, %d edges, hub degree %d, digest %s (built in %v)\n\n",
		g.N(), g.Edges(), g.Degree(g.Hub()), g.Digest(), time.Since(start).Round(time.Millisecond))

	for _, rule := range []repro.ConsensusRule{repro.ConsensusRuleLatest, repro.ConsensusRuleMajority} {
		spec := repro.ConsensusConfig{
			Variants:  *k,
			Graph:     g,
			Seeding:   repro.ConsensusSeedDistinct,
			Rule:      rule,
			MaxRounds: 200,
		}
		fmt.Printf("rule=%v:\n", rule)
		var ref string
		for _, shards := range []int{1, 2, 4} {
			t0 := time.Now()
			rep, err := repro.Run(spec, repro.WithSeed(42), repro.WithWorkers(shards))
			if err != nil {
				log.Fatal(err)
			}
			det := rep.Detail.(repro.ConsensusResult)
			digest := sharesDigest(det.ShareHist)
			status := "consensus"
			if !rep.Completed {
				status = "stalled  "
			}
			fmt.Printf("  shards=%d: %s after %3d rounds, winner variant %d at %.4f agreement, digest %s  (%v)\n",
				shards, status, rep.Rounds, det.Winner, det.Agreement, digest,
				time.Since(t0).Round(time.Millisecond))
			if ref == "" {
				ref = digest
			} else if digest != ref {
				log.Fatalf("shards=%d diverged: digest %s, want %s — determinism regression", shards, digest, ref)
			}
		}
		fmt.Println()
	}
	fmt.Println("all shard counts bit-identical")
}

// sharesDigest folds the per-round variant-share history into an FNV-1a 64
// hex digest, the repository's compact bit-identity witness.
func sharesDigest(hist [][]int) string {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, shares := range hist {
		for _, v := range shares {
			x := uint64(int64(v))
			for s := 0; s < 64; s += 8 {
				h ^= (x >> s) & 0xff
				h *= prime
			}
		}
	}
	return fmt.Sprintf("%016x", h)
}
