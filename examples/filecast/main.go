// Filecast: broadcast a multi-block "movie" to every node using randomized
// linear network coding over the dating service — the rumor mongering
// extension of Section 5. The dating service only decides who talks to
// whom; coding guarantees that almost every received packet is useful, so
// the broadcast finishes close to the information-theoretic bound of B
// rounds at unit bandwidth.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n         = 200
		blocks    = 16
		blockSize = 256 // bytes; a 4 KiB "movie" split into 16 blocks
	)

	rep, err := repro.Run(repro.MongerConfig{
		N:           n,
		Blocks:      blocks,
		BlockSize:   blockSize,
		Source:      0,
		PayloadSeed: 1234,
	}, repro.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	res := rep.Detail.(repro.MongerResult)

	fmt.Printf("broadcasting %d blocks x %d bytes to %d nodes\n\n", blocks, blockSize, n)
	for round, decoded := range rep.Trajectory {
		if decoded > 0 || round%5 == 4 {
			fmt.Printf("round %3d: %3d/%d nodes fully decoded\n", round+1, decoded, n)
		}
	}
	fmt.Printf("\ncompleted: %v in %d rounds (lower bound: %d rounds)\n",
		rep.Completed, rep.Rounds, blocks)
	fmt.Printf("packets sent: %d, innovative: %d (%.1f%% useful)\n",
		res.PacketsSent, res.Innovative, 100*float64(res.Innovative)/float64(res.PacketsSent))
	fmt.Println("\nevery node's decoded content was verified against the source")
}
