package repro_test

// One benchmark per figure and experiment of the evaluation (see DESIGN.md's
// per-experiment index), plus micro-benchmarks of the core primitives.
//
// The figure benches regenerate the paper's rows at quick scale, report the
// headline numbers via b.ReportMetric (so they appear on the benchmark line),
// and log the full table (visible with `go test -bench . -v`). Use
// cmd/datebench, cmd/rumorbench and cmd/hetsim for paper-scale runs and CSV.

import (
	"fmt"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// --- Figure 1: fraction of dates arranged ---------------------------------

func BenchmarkFigure1_DatesFraction(b *testing.B) {
	var last sim.Figure1Result
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFigure1(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	row := last.Rows[len(last.Rows)-1]
	b.ReportMetric(row.UniformMean, "uniform_frac")
	b.ReportMetric(row.DHTWorst, "dht_worst_frac")
	b.ReportMetric(row.DHTBest, "dht_best_frac")
}

// --- Figure 2: rounds to spread a single rumor ----------------------------

func BenchmarkFigure2_RumorRounds(b *testing.B) {
	var last sim.Figure2Result
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFigure2(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	row := last.Rows[len(last.Rows)-1]
	b.ReportMetric(row.Cells[gossip.PushPull].Mean, "pushpull_rounds")
	b.ReportMetric(row.Cells[gossip.Push].Mean, "push_rounds")
	b.ReportMetric(row.Cells[gossip.Dating].Mean, "dating_rounds")
}

// --- E3: fraction versus load ---------------------------------------------

func BenchmarkAlphaVsLoad(b *testing.B) {
	var last sim.AlphaResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunAlphaVsLoad(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	b.ReportMetric(last.Rows[0].Fraction, "frac_at_load1")
	b.ReportMetric(last.Rows[len(last.Rows)-1].Fraction, "frac_at_load8")
}

// --- E4: selection-distribution ablation ----------------------------------

func BenchmarkDistributionAblation(b *testing.B) {
	var last sim.DistResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunDistributionAblation(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	for _, row := range last.Rows {
		switch row.Name {
		case "uniform":
			b.ReportMetric(row.Fraction, "uniform_frac")
		case "dht-intervals":
			b.ReportMetric(row.Fraction, "dht_frac")
		case "hub-half":
			b.ReportMetric(row.Fraction, "hub_frac")
		}
	}
}

// --- E5: Theorem 4 phase structure ----------------------------------------

func BenchmarkPhases(b *testing.B) {
	var last sim.PhasesResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunPhases(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	b.ReportMetric(last.EndPhase1, "phase1_end_round")
	b.ReportMetric(last.EndPhase2, "phase2_end_round")
	b.ReportMetric(last.EndPhase3, "phase3_end_round")
}

// --- E6: hierarchical content distribution (Theorem 10) -------------------

func BenchmarkHierarchical(b *testing.B) {
	var last sim.HierResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunHierarchical(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	row := last.Rows[len(last.Rows)-1]
	b.ReportMetric(row.RichRounds, "rich_rounds")
	b.ReportMetric(row.TotalRounds, "total_rounds")
}

// --- E7: pipelining over the DHT ------------------------------------------

func BenchmarkPipelining(b *testing.B) {
	var last sim.PipelineResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunPipelining(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	lastRow := last.Rows[len(last.Rows)-1]
	b.ReportMetric(last.ChordHops, "chord_hops")
	b.ReportMetric(last.CDHops, "cd_hops")
	b.ReportMetric(float64(lastRow.Naive)/float64(lastRow.Pipelined), "k64_speedup")
}

// --- E8: network-coded rumor mongering -------------------------------------

func BenchmarkMongering(b *testing.B) {
	var last sim.MongerResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunMongering(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	for _, row := range last.Rows {
		if row.Blocks == 32 {
			b.ReportMetric(row.Rounds, "rounds_B32")
			b.ReportMetric(row.Rounds/float64(row.LowerBound), "overhead_vs_bound")
		}
	}
}

// --- E9: spreading under churn ---------------------------------------------

func BenchmarkChurn(b *testing.B) {
	var last sim.ChurnResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunChurn(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	for _, row := range last.Rows {
		if row.CrashProb == 0.05 {
			b.ReportMetric(row.Rounds, "rounds_p05")
			b.ReportMetric(float64(row.Completed)/float64(row.Reps), "completion_rate_p05")
		}
	}
}

// --- E10: replicated storage -----------------------------------------------

func BenchmarkStorage(b *testing.B) {
	var last sim.StorageResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunStorage(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	b.ReportMetric(last.Rounds, "rounds")
	b.ReportMetric(last.MaxOccupancy-last.MinOccupancy, "occupancy_spread")
}

// --- E11: concurrent rumors -------------------------------------------------

func BenchmarkMultiRumor(b *testing.B) {
	var last sim.MultiRumorSimResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunMultiRumorExperiment(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	row := last.Rows[len(last.Rows)-1]
	b.ReportMetric(row.Rounds, "rounds_R8")
	b.ReportMetric(last.SingleRounds*float64(row.Rumors)/row.Rounds, "speedup_vs_sequential")
}

// --- E12: bandwidth honesty --------------------------------------------------

func BenchmarkLoadViolation(b *testing.B) {
	var last sim.LoadResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunLoadViolation(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	for _, row := range last.Rows {
		switch row.Algorithm {
		case gossip.Dating:
			b.ReportMetric(row.MaxInLoad, "dating_max_in")
		case gossip.Push:
			b.ReportMetric(row.MaxInLoad, "push_max_in")
		case gossip.Pull:
			b.ReportMetric(row.MaxOutLoad, "pull_max_out")
		}
	}
}

// --- E13: churning DHT --------------------------------------------------------

func BenchmarkDynamicDHT(b *testing.B) {
	var last sim.DynamicResult
	for i := 0; i < b.N; i++ {
		res, err := sim.RunDynamicDHT(sim.ScaleQuick, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.Log("\n" + last.Table().Render())
	for _, row := range last.Rows {
		if row.ReplaceProb == 0.02 {
			b.ReportMetric(row.SteadyState, "steady_coverage_p02")
			b.ReportMetric(row.RoundsTo95, "rounds_to_95_p02")
		}
	}
}

// --- Micro-benchmarks of the primitives ------------------------------------

func benchDatingRound(b *testing.B, n int, sel core.Selector) {
	b.Helper()
	svc, err := core.NewService(bandwidth.Homogeneous(n, 1), sel)
	if err != nil {
		b.Fatal(err)
	}
	s := rng.New(1)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += len(svc.RunRound(s).Dates)
	}
	b.ReportMetric(float64(total)/float64(b.N)/float64(n), "frac")
}

func BenchmarkDatingRoundUniform1k(b *testing.B) {
	sel, _ := core.NewUniformSelector(1000)
	benchDatingRound(b, 1000, sel)
}

func BenchmarkDatingRoundUniform100k(b *testing.B) {
	sel, _ := core.NewUniformSelector(100000)
	benchDatingRound(b, 100000, sel)
}

// BenchmarkParallelRound times one dating round on the flat engine at
// rumor-scale node counts, serial (workers=1) versus the parallel path.
// The n=1M cases are the ISSUE's million-node profile benchmark:
//
//	go test -bench 'ParallelRound/n=1000000' -benchtime 3x
func BenchmarkParallelRound(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		sel, err := core.NewUniformSelector(n)
		if err != nil {
			b.Fatal(err)
		}
		svc, err := core.NewService(bandwidth.Homogeneous(n, 1), sel)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				streams := rng.NewStreams(21, workers)
				dates := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := svc.RunRoundParallel(streams, workers)
					if err != nil {
						b.Fatal(err)
					}
					dates += len(res.Dates)
				}
				b.ReportMetric(float64(dates)/float64(b.N)/float64(n), "frac")
				b.ReportMetric(float64(2*n)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
			})
		}
	}
}

func BenchmarkDatingRoundDHT1k(b *testing.B) {
	ring, err := overlay.NewRing(1000, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	sel, _ := core.NewRingSelector(ring)
	benchDatingRound(b, 1000, sel)
}

func BenchmarkChordLookup(b *testing.B) {
	ring, err := overlay.NewRing(4096, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	s := rng.New(4)
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		_, h := ring.Lookup(s.Intn(4096), s.Uint64())
		hops += h
	}
	b.ReportMetric(float64(hops)/float64(b.N), "hops")
}

func BenchmarkCDLookup(b *testing.B) {
	ring, err := overlay.NewRing(4096, rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	s := rng.New(6)
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		_, h := ring.LookupCD(s.Intn(4096), s.Uint64())
		hops += h
	}
	b.ReportMetric(float64(hops)/float64(b.N), "hops")
}

func BenchmarkGossipRound(b *testing.B) {
	// Cost of one full spreading run at n=1024, per algorithm.
	for _, a := range gossip.Algorithms() {
		b.Run(a.String(), func(b *testing.B) {
			s := rng.New(7)
			rounds := 0
			for i := 0; i < b.N; i++ {
				res, err := gossip.Run(gossip.Config{Algorithm: a, N: 1024, Source: 0}, s)
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds")
		})
	}
}

func BenchmarkMatchRendezvous(b *testing.B) {
	// The rendezvous inner loop: match 8 offers against 8 requests.
	s := rng.New(10)
	offers := make([]int32, 8)
	requests := make([]int32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range offers {
			offers[j] = int32(j)
			requests[j] = int32(100 + j)
		}
		core.MatchRendezvous(offers, requests, s, func(_, _ int32) {})
	}
}

func BenchmarkSelectorPick(b *testing.B) {
	// Ablation: cost of one destination draw per selection distribution.
	// Uniform is one bounded draw; alias is two draws + a table lookup;
	// the ring does a binary search over positions.
	const n = 4096
	uni, _ := core.NewUniformSelector(n)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	wsel, _ := core.NewWeightedSelector(weights)
	ring, err := overlay.NewRing(n, rng.New(11))
	if err != nil {
		b.Fatal(err)
	}
	rsel, _ := core.NewRingSelector(ring)
	for _, tc := range []struct {
		name string
		sel  core.Selector
	}{
		{"uniform", uni}, {"alias", wsel}, {"ring", rsel},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := rng.New(12)
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += tc.sel.Pick(s)
			}
			if sink == -1 {
				b.Log(sink)
			}
		})
	}
}

func BenchmarkArrangeDates(b *testing.B) {
	// The zero-allocation-profile-free path used by storage and the
	// churning-DHT experiments.
	const n = 1000
	sel, _ := core.NewUniformSelector(n)
	out := make([]int, n)
	in := make([]int, n)
	for i := range out {
		out[i] = 1
		in[i] = 1
	}
	s := rng.New(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ArrangeDates(out, in, sel, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArranger(b *testing.B) {
	// The scratch-reusing engine path behind ArrangeDates; output is
	// bit-identical for every worker count, so the sub-benchmarks measure
	// pure coordination cost (speedup needs real cores).
	const n = 100000
	sel, _ := core.NewUniformSelector(n)
	out := make([]int, n)
	in := make([]int, n)
	for i := range out {
		out[i] = 1
		in[i] = 1
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
			arr, err := core.NewArranger(sel)
			if err != nil {
				b.Fatal(err)
			}
			s := rng.New(14)
			dates := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds, err := arr.Arrange(out, in, s.Uint64(), workers)
				if err != nil {
					b.Fatal(err)
				}
				dates += len(ds)
			}
			b.ReportMetric(float64(dates)/float64(b.N)/float64(n), "fraction")
			b.ReportMetric(float64(2*n)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

func BenchmarkGF256Mul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= coding.Mul(byte(i), byte(i>>8))
	}
	if acc == 1 {
		b.Log(acc) // defeat dead-code elimination
	}
}

func BenchmarkDecoderAddPacket(b *testing.B) {
	s := rng.New(8)
	const blocks, size = 32, 1024
	blocksData := make([][]byte, blocks)
	for i := range blocksData {
		blocksData[i] = make([]byte, size)
		for j := range blocksData[i] {
			blocksData[i][j] = byte(s.Intn(256))
		}
	}
	src, err := coding.Source(blocksData)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ := coding.NewDecoder(blocks, size)
		for !dst.Decoded() {
			pkt, _ := src.Emit(s)
			if _, err := dst.AddPacket(pkt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkHandshakeRound(b *testing.B) {
	const n = 1000
	p := bandwidth.Homogeneous(n, 1)
	sel, _ := core.NewUniformSelector(n)
	h, err := core.NewHandshake(p, sel, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, err := simnet.NewNetwork(n)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.RunRound(nw); err != nil {
			b.Fatal(err)
		}
	}
}
