package repro_test

import (
	"testing"

	"repro"
)

// These tests exercise the public facade end to end, the way a downstream
// user would.

func TestQuickstartFlow(t *testing.T) {
	const n = 500
	profile := repro.UnitBandwidth(n)
	sel, err := repro.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := repro.NewDatingService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	s := repro.NewStream(42)
	res := svc.RunRound(s)
	frac := res.Fraction(n)
	if frac < 0.40 || frac > 0.55 {
		t.Fatalf("fraction %.3f outside sane band", frac)
	}
}

func TestRumorRunFacade(t *testing.T) {
	rep, err := repro.Run(repro.RumorConfig{N: 256, Algorithm: repro.Dating}, repro.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("incomplete after %d rounds", rep.Rounds)
	}
}

func TestDHTFlow(t *testing.T) {
	s := repro.NewStream(2)
	ring, err := repro.NewRing(128, s)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := repro.RingSelection(ring)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := repro.NewDatingService(repro.UnitBandwidth(128), sel)
	if err != nil {
		t.Fatal(err)
	}
	res := svc.RunRound(s)
	if len(res.Dates) == 0 {
		t.Fatal("no dates over DHT selection")
	}
}

func TestBimodalAndZipfFacade(t *testing.T) {
	if _, err := repro.Bimodal(10, 2, 8, 1); err != nil {
		t.Fatal(err)
	}
	s := repro.NewStream(3)
	if _, err := repro.ZipfBandwidth(50, 1.0, 16, 2, s); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.Weighted([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestArrangeDatesFacade(t *testing.T) {
	sel, _ := repro.Uniform(4)
	s := repro.NewStream(4)
	dates, err := repro.ArrangeDates([]int{1, 0, 2, 0}, []int{0, 1, 0, 2}, sel, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dates {
		if d.Sender == 1 || d.Sender == 3 || d.Receiver == 0 || d.Receiver == 2 {
			t.Fatalf("date %v violates the supply/demand vectors", d)
		}
	}
}

func TestMongerFacade(t *testing.T) {
	rep, err := repro.Run(repro.MongerConfig{N: 20, Blocks: 4, BlockSize: 8}, repro.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("mongering incomplete after %d rounds", rep.Rounds)
	}
}

func TestReplicateFacade(t *testing.T) {
	rep, err := repro.Run(repro.StorageConfig{
		N: 20, ObjectsPerNode: 1, Replicas: 2, SlotsPerNode: 4,
	}, repro.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("replication incomplete after %d rounds", rep.Rounds)
	}
}

func TestNewStreamsFacade(t *testing.T) {
	streams := repro.NewStreams(7, 3)
	if len(streams) != 3 {
		t.Fatalf("got %d streams", len(streams))
	}
	if streams[0].Uint64() == streams[1].Uint64() {
		t.Fatal("streams not independent")
	}
}

func TestArrangerFacade(t *testing.T) {
	sel, _ := repro.Uniform(100)
	arr, err := repro.NewArranger(sel)
	if err != nil {
		t.Fatal(err)
	}
	supply := make([]int, 100)
	demand := make([]int, 100)
	for i := range supply {
		supply[i] = 1
		demand[i] = 1
	}
	serial, err := arr.Arrange(supply, demand, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := arr.Arrange(supply, demand, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("serial %d dates, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("date %d differs: %v vs %v", i, serial[i], parallel[i])
		}
	}
}
