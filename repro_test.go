package repro_test

import (
	"reflect"
	"testing"

	"repro"
)

// These tests exercise the public facade end to end, the way a downstream
// user would.

func TestQuickstartFlow(t *testing.T) {
	const n = 500
	profile := repro.UnitBandwidth(n)
	sel, err := repro.Uniform(n)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := repro.NewDatingService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	s := repro.NewStream(42)
	res := svc.RunRound(s)
	frac := res.Fraction(n)
	if frac < 0.40 || frac > 0.55 {
		t.Fatalf("fraction %.3f outside sane band", frac)
	}
}

func TestRumorRunFacade(t *testing.T) {
	rep, err := repro.Run(repro.RumorConfig{N: 256, Algorithm: repro.Dating}, repro.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("incomplete after %d rounds", rep.Rounds)
	}
}

func TestDHTFlow(t *testing.T) {
	s := repro.NewStream(2)
	ring, err := repro.NewRing(128, s)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := repro.RingSelection(ring)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := repro.NewDatingService(repro.UnitBandwidth(128), sel)
	if err != nil {
		t.Fatal(err)
	}
	res := svc.RunRound(s)
	if len(res.Dates) == 0 {
		t.Fatal("no dates over DHT selection")
	}
}

func TestBimodalAndZipfFacade(t *testing.T) {
	if _, err := repro.Bimodal(10, 2, 8, 1); err != nil {
		t.Fatal(err)
	}
	s := repro.NewStream(3)
	if _, err := repro.ZipfBandwidth(50, 1.0, 16, 2, s); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.Weighted([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestArrangeDatesFacade(t *testing.T) {
	sel, _ := repro.Uniform(4)
	s := repro.NewStream(4)
	dates, err := repro.ArrangeDates([]int{1, 0, 2, 0}, []int{0, 1, 0, 2}, sel, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dates {
		if d.Sender == 1 || d.Sender == 3 || d.Receiver == 0 || d.Receiver == 2 {
			t.Fatalf("date %v violates the supply/demand vectors", d)
		}
	}
}

func TestMongerFacade(t *testing.T) {
	rep, err := repro.Run(repro.MongerConfig{N: 20, Blocks: 4, BlockSize: 8}, repro.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("mongering incomplete after %d rounds", rep.Rounds)
	}
}

func TestReplicateFacade(t *testing.T) {
	rep, err := repro.Run(repro.StorageConfig{
		N: 20, ObjectsPerNode: 1, Replicas: 2, SlotsPerNode: 4,
	}, repro.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("replication incomplete after %d rounds", rep.Rounds)
	}
}

func TestNewStreamsFacade(t *testing.T) {
	streams := repro.NewStreams(7, 3)
	if len(streams) != 3 {
		t.Fatalf("got %d streams", len(streams))
	}
	if streams[0].Uint64() == streams[1].Uint64() {
		t.Fatal("streams not independent")
	}
}

func TestArrangerFacade(t *testing.T) {
	sel, _ := repro.Uniform(100)
	arr, err := repro.NewArranger(sel)
	if err != nil {
		t.Fatal(err)
	}
	supply := make([]int, 100)
	demand := make([]int, 100)
	for i := range supply {
		supply[i] = 1
		demand[i] = 1
	}
	serial, err := arr.Arrange(supply, demand, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := arr.Arrange(supply, demand, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("serial %d dates, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("date %d differs: %v vs %v", i, serial[i], parallel[i])
		}
	}
}

// TestAsyncTraceIsBucketLevel pins the WithTrace contract for clockless
// AsyncConfig runs: the callback fires once per calendar bucket, in bucket
// order, with the informed count at that bucket's boundary — exactly the
// run's History. The alternative (rejecting WithTrace for async runs) was
// considered and rejected; buckets are the async runtime's rounds.
func TestAsyncTraceIsBucketLevel(t *testing.T) {
	const n = 400
	var buckets, progress []int
	rep, err := repro.Run(repro.AsyncConfig{Profile: repro.UnitBandwidth(n)},
		repro.WithSeed(5), repro.WithTrace(func(bucket, p int) {
			buckets = append(buckets, bucket)
			progress = append(progress, p)
		}))
	if err != nil {
		t.Fatal(err)
	}
	detail := rep.Detail.(repro.AsyncResult)
	if len(buckets) != detail.Buckets {
		t.Fatalf("trace saw %d buckets, run executed %d", len(buckets), detail.Buckets)
	}
	for i, b := range buckets {
		if b != i+1 {
			t.Fatalf("trace buckets out of order: %v", buckets)
		}
		if progress[i] != detail.History[i] {
			t.Fatalf("bucket %d: trace progress %d, history %d", b, progress[i], detail.History[i])
		}
	}
	if progress[len(progress)-1] != n {
		t.Fatalf("final trace progress %d, want %d", progress[len(progress)-1], n)
	}
}

// TestWithObserverFillsMetricsAndChangesNothing is the facade-level
// determinism contract: WithObserver fills Report.Metrics with phase and
// gauge aggregates, and the rest of the report is bit-identical to an
// unobserved run — at more than one worker count.
func TestWithObserverFillsMetricsAndChangesNothing(t *testing.T) {
	cfg := repro.LiveConfig{Profile: repro.UnitBandwidth(500)}
	for _, workers := range []int{1, 4} {
		plain, err := repro.Run(cfg, repro.WithSeed(9), repro.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if plain.Metrics != nil {
			t.Fatal("unobserved run carries metrics")
		}
		o := repro.NewObserver()
		observed, err := repro.Run(cfg, repro.WithSeed(9), repro.WithWorkers(workers),
			repro.WithObserver(o))
		if err != nil {
			t.Fatal(err)
		}
		if observed.Metrics == nil || len(observed.Metrics.Phases) == 0 || len(observed.Metrics.Gauges) == 0 {
			t.Fatalf("workers=%d: observed run has no metrics: %+v", workers, observed.Metrics)
		}
		observed.Metrics = nil
		plain.Wall, observed.Wall = 0, 0 // wall time never reproduces
		if !reflect.DeepEqual(plain, observed) {
			t.Fatalf("workers=%d: observer changed the report:\nplain    %+v\nobserved %+v",
				workers, plain, observed)
		}
	}
}

// TestObserverSharedAcrossRunsAttributesPerRun checks Mark-based
// attribution: two runs sharing one observer each get only their own
// tracks in Report.Metrics, while the observer's own aggregate sees both.
func TestObserverSharedAcrossRunsAttributesPerRun(t *testing.T) {
	o := repro.NewObserver()
	a, err := repro.Run(repro.RumorConfig{N: 256, Algorithm: repro.Dating},
		repro.WithSeed(1), repro.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	b, err := repro.Run(repro.AsyncConfig{Profile: repro.UnitBandwidth(256)},
		repro.WithSeed(1), repro.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Metrics.Phases {
		if p.Track != "rumor" {
			t.Fatalf("rumor run reported foreign track %q", p.Track)
		}
	}
	for _, p := range b.Metrics.Phases {
		if p.Track != "async" {
			t.Fatalf("async run reported foreign track %q", p.Track)
		}
	}
	tracks := map[string]bool{}
	for _, p := range o.Metrics().Phases {
		tracks[p.Track] = true
	}
	if !tracks["rumor"] || !tracks["async"] {
		t.Fatalf("observer aggregate missing tracks: %v", tracks)
	}
}

// TestReportSurfacesDrops pins satellite coverage of the traffic counters:
// a lossy live run reports its drops in Report.Dropped, and a perfect-sync
// run reports zero.
func TestReportSurfacesDrops(t *testing.T) {
	cfg := repro.LiveConfig{Profile: repro.UnitBandwidth(400)}
	lossy, err := repro.Run(cfg, repro.WithSeed(3), repro.WithNet(repro.NetLoss{P: 0.10}))
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Dropped == 0 {
		t.Fatal("10% loss dropped no messages")
	}
	clean, err := repro.Run(cfg, repro.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Dropped != 0 || clean.Clamped != 0 {
		t.Fatalf("perfect sync reported dropped=%d clamped=%d", clean.Dropped, clean.Clamped)
	}
}

// TestTopologyFacade drives graph-constrained spreading end to end through
// the public surface: a generated scale-free graph, repro.Run on the
// TopologyConfig spec, the per-round spreader/stifler gauges riding
// Report.Metrics, and Report.Sent carrying the per-round message history.
func TestTopologyFacade(t *testing.T) {
	g, err := repro.BarabasiAlbertGraph(2_000, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	o := repro.NewObserver()
	rep, err := repro.Run(repro.TopologyConfig{Graph: g, Source: 0, Alpha: 0.5},
		repro.WithSeed(11), repro.WithWorkers(2), repro.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Protocol != "topology" || !rep.Completed {
		t.Fatalf("unexpected report: protocol=%q completed=%v", rep.Protocol, rep.Completed)
	}
	if len(rep.Sent) != rep.Rounds || len(rep.Trajectory) != rep.Rounds {
		t.Fatalf("history lengths %d/%d, want %d", len(rep.Sent), len(rep.Trajectory), rep.Rounds)
	}
	if rep.Metrics == nil {
		t.Fatal("observed run carries no metrics")
	}
	gauges := map[string]bool{}
	for _, gg := range rep.Metrics.Gauges {
		if gg.Track == "topology" {
			gauges[gg.Name] = true
		}
	}
	if !gauges["spreaders"] || !gauges["stiflers"] {
		t.Fatalf("topology gauges missing from metrics: %v", gauges)
	}
	det, ok := rep.Detail.(repro.TopologyResult)
	if !ok {
		t.Fatalf("Detail is %T, want TopologyResult", rep.Detail)
	}
	if det.FinalSpread <= 0 || det.FinalSpread > 1 {
		t.Fatalf("final spread %v outside (0,1]", det.FinalSpread)
	}
	// The other generators are reachable through the facade too.
	if _, err := repro.CompleteGraph(8); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RingLatticeGraph(10, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.ErdosRenyiGraph(100, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.PowerLawGraph(100, 2.5, 2, 20, 1); err != nil {
		t.Fatal(err)
	}
}
