// Package repro is a Go implementation of the heterogeneous dating service
// and its rumor-spreading application from:
//
//	Olivier Beaumont, Philippe Duchon, Miroslaw Korzeniowski.
//	"Heterogenous dating service with application to rumor spreading."
//	IEEE IPDPS 2008 (INRIA research report RR-6168).
//
// The dating service is a fully decentralized mechanism that pairs offers of
// outgoing bandwidth with requests for incoming bandwidth, never exceeding
// any node's declared capabilities. With high probability it arranges a
// constant fraction of everything a centralized matchmaker could, for *any*
// common selection distribution — including the highly non-uniform one a DHT
// induces — which is what makes it practical: unlike classical PUSH/PULL
// gossip, it never needs the ability to pick a peer uniformly at random.
//
// This package is the public facade over the implementation packages:
//
//   - the dating service itself (Algorithm 1), flat and message-level;
//   - rumor spreading on top of it, plus the five classical baselines
//     (PUSH, PULL, PUSH&PULL, fair PULL, fair PUSH&PULL) of Figure 2;
//   - the DHT substrate of Section 4 (Chord-style and continuous–discrete
//     routing, interval-weight selection, pipelined lookups);
//   - the Section 5 extensions: multi-block rumor mongering with GF(2^8)
//     random linear network coding, and replicated storage organized by
//     block exchanges;
//   - the experiment harness regenerating both figures of the paper's
//     evaluation and the extension experiments listed in DESIGN.md.
//
// # Quick start
//
//	profile := repro.UnitBandwidth(1000)          // n nodes, bin = bout = 1
//	sel, _ := repro.Uniform(1000)                 // selection distribution
//	svc, _ := repro.NewDatingService(profile, sel)
//	s := repro.NewStream(42)                      // deterministic randomness
//	res := svc.RunRound(s)                        // one round of Algorithm 1
//	fmt.Println(len(res.Dates), "dates arranged") // ≈ 0.47 * n
//
// To spread a rumor:
//
//	out, _ := repro.SpreadRumor(repro.RumorConfig{N: 1000, Algorithm: repro.Dating}, s)
//	fmt.Println(out.Rounds, "rounds")             // O(log n)
//
// # Parallel rounds
//
// At large n a round is embarrassingly parallel: the scatter step is
// independent per sender and the match step independent per rendezvous.
// DatingService.RunRoundParallel shards both steps across worker
// goroutines, each drawing from its own SplitMix64-derived stream, and is
// exactly reproducible for a fixed (seed, workers) pair — same dates, same
// order, under any goroutine schedule:
//
//	streams := repro.NewStreams(42, 8)            // one stream per worker
//	res, err := svc.RunRoundParallel(streams, 8)  // deterministic given (42, 8)
//
// RunParallelRound wraps the stream derivation for one-shot rounds, and
// RumorConfig.Workers runs the dating-based spreader on the parallel
// engine. cmd/datebench's engine mode benchmarks serial versus parallel
// rounds at million-node scale.
//
// # Worker-count-independent arranging
//
// The supply/demand interface goes one step further. An Arranger
// (NewArranger) draws its randomness not from one stream per worker but
// from streams derived per unit of work — SplitMix64(seed, scatterDomain,
// node) for each node's request scatter and SplitMix64(seed, matchDomain,
// rendezvous) for each rendezvous's matching, with two fixed domain tags
// keeping the streams disjoint even when a node id equals a rendezvous id
// — so whichever worker processes a node or bucket draws exactly the same
// values. Arrange(out, in, seed, workers) is
// therefore bit-for-bit identical for every workers count: parallelism is
// purely a speed knob. StorageConfig.Workers and the churning-DHT
// experiment ride on this.
//
// The same derivation scheme is ported to the profile round path as
// DatingService.RunRoundSeeded(seed, workers), which arranges exactly the
// dates of Arranger.Arrange(profile.Out, profile.In, seed, ·) and makes
// RumorConfig.Workers a pure speed knob as well: a spreading run is
// bit-identical for every Workers >= 1. The reseeding (a Derive chain plus
// a SplitMix64 state expansion per node and per non-empty rendezvous,
// about six extra SplitMix64 steps per node per round) costs about 25% of
// a serial unit-bandwidth round at n=100k — measured by
// BenchmarkSeededRound in internal/core.
//
// # The sharded live-message runtime
//
// SpreadRumorLive executes the dating handshake as a real message
// protocol: every offer, answer and payload is an individually routed
// message and each peer's only state is its rumor bit. Two substrates run
// the same step code. LiveGoroutine is the demonstrational engine — one
// goroutine per peer, barrier-synchronized rounds. LiveSharded is the
// production-scale runtime (internal/live): a fixed pool of shard workers
// owning contiguous peer ranges, messages counting-sorted between rounds
// through flat reusable buffers, per-peer streams seeded
// SplitMix64(seed, peerDomain, peer). Runs are bit-identical for every
// shard count, and — because both substrates share the per-peer stream
// derivation — across engines too. A 10^6-peer spread completes in tens of
// seconds (examples/livescale); at n=100k the sharded runtime is ~25x
// faster than goroutine-per-peer (BENCH_live.json).
//
// LiveConfig.Net plugs a network model into the sharded runtime:
// NetFixedLatency and NetGeomLatency keep messages in flight for several
// rounds, NetLoss drops them iid, NetEpochChurn takes whole peers down for
// whole epochs (correlated loss). Model randomness derives from
// SplitMix64(seed, netDomain, round, sender), preserving shard-count
// independence. The handshake absorbs all of it — payloads and answers
// act on arrival, control messages that miss their matching round wait
// for the rendezvous's next one — so hostile networks slow spreading
// gracefully rather than wedging it; the hetsim "live" experiment tables
// the sensitivity.
//
// # The repetition-parallel experiment harness
//
// Above single rounds, the experiment harness behind cmd/hetsim,
// cmd/datebench and cmd/rumorbench parallelizes at the repetition grain:
// every (overlay, repetition) cell of a figure sweep is an independent
// simulation, run as one job with its own Service on its own goroutine.
// Job streams are seeded
//
//	SplitMix64(rootSeed, domainTag, coordinates...)
//
// where the coordinates are the job's position in the sweep — (n index,
// overlay index) for Figure 1, (n index, algorithm, repetition) for
// Figure 2 — never "the next value of a shared generator". Combined with
// fixed-order aggregation after the fan-in barrier, published tables are
// byte-identical for every worker count; the -par flag of the CLIs only
// changes wall-clock time. Golden tests pin the quick-scale tables by hash
// so harness parallelism can never silently change published numbers.
//
// See the runnable programs under examples/ and the reproduction CLIs under
// cmd/.
package repro
