// Package repro is a Go implementation of the heterogeneous dating service
// and its rumor-spreading application from:
//
//	Olivier Beaumont, Philippe Duchon, Miroslaw Korzeniowski.
//	"Heterogenous dating service with application to rumor spreading."
//	IEEE IPDPS 2008 (INRIA research report RR-6168).
//
// The dating service is a fully decentralized mechanism that pairs offers of
// outgoing bandwidth with requests for incoming bandwidth, never exceeding
// any node's declared capabilities. With high probability it arranges a
// constant fraction of everything a centralized matchmaker could, for *any*
// common selection distribution — including the highly non-uniform one a DHT
// induces — which is what makes it practical: unlike classical PUSH/PULL
// gossip, it never needs the ability to pick a peer uniformly at random.
//
// # The unified Run API
//
// Every protocol of the repository runs through one seed-first entrypoint:
//
//	rep, err := repro.Run(repro.RumorConfig{N: 1000, Algorithm: repro.Dating},
//	    repro.WithSeed(42), repro.WithWorkers(8))
//	fmt.Println(rep.Rounds, rep.Completed, rep.Messages)
//
// A protocol config — RumorConfig, MultiRumorConfig, LiveConfig,
// AsyncConfig, TopologyConfig, ConsensusConfig, MongerConfig, StorageConfig,
// HandshakeConfig — is a Spec,
// and the axes orthogonal to the protocol ride as functional options:
//
//   - WithSeed roots every random stream of the run. Streams are derived
//     internally with the repository's one SplitMix64 scheme, one domain
//     tag per protocol, so protocols sharing a seed draw from disjoint
//     stream families and a Report is a pure function of (spec, seed).
//   - WithWorkers sizes the run's worker budget — a shared token pool
//     (internal/par.Budget) that the dating rounds draw spare workers from
//     and that the sharded live runtime uses as its shard count. Because
//     every budget-fed engine derives randomness per unit of work rather
//     than per worker, the budget is a pure speed knob: bit-identical
//     reports at every value.
//   - WithPipeline batches k rounds at a time through the double-buffered
//     engine: dating-based rumor runs feed k round seeds to
//     DatingService.RunRoundsSeeded (round r+1's scatter overlapping round
//     r's matching; sequential under churn, which needs a per-round alive
//     barrier), and sharded live runs take the fused delivery+step loop.
//     Like the worker budget it is a pure speed knob — bit-identical
//     reports at every depth.
//   - WithEngine picks the execution substrate for live runs (sharded by
//     default, goroutine-per-peer on request); under the perfect-sync
//     network both substrates produce the identical report.
//   - WithNet plugs a network model into live runs: NetFixedLatency,
//     NetGeomLatency, NetLoss, NetEpochChurn, and NetRingLatency — the
//     asymmetric model whose per-pair latency is the ring distance in a
//     DHT-style embedding (UniformRingEmbedding builds one).
//   - WithTrace replays the per-round trajectory to an observer once the
//     run completes — once per calendar bucket for clockless AsyncConfig
//     runs (for live observation, use a protocol-level hook such as
//     RumorConfig.OnRound).
//   - WithObserver attaches the instrumentation layer (see Observability
//     below): Report.Metrics is filled with phase-timing and gauge
//     aggregates, and the observer can export a Chrome trace timeline.
//
// All protocols emit the same Report (rounds, per-round trajectory and
// message counts, totals, worst per-node loads, wall time), with the
// protocol-native result preserved in Report.Detail. The experiment
// registry's "protocols" entry, the CLIs and the BENCH_*.json writers all
// consume reports generically.
//
// Configs carry only the protocol: the orthogonal axes travel exclusively
// as options. The legacy per-protocol entrypoints and the config fields
// that duplicated the axes are gone; the seed-compatibility golden tests
// pin Run's output bit-for-bit against the pre-refactor implementation.
//
// # Below the runner
//
// The package is the facade over the implementation layers, which remain
// available for round-level work:
//
//   - the dating service itself (Algorithm 1), flat and message-level;
//   - rumor spreading on top of it, plus the five classical baselines
//     (PUSH, PULL, PUSH&PULL, fair PULL, fair PUSH&PULL) of Figure 2;
//   - the DHT substrate of Section 4 (Chord-style and continuous–discrete
//     routing, interval-weight selection, pipelined lookups);
//   - the Section 5 extensions: multi-block rumor mongering with GF(2^8)
//     random linear network coding, and replicated storage organized by
//     block exchanges;
//   - the experiment harness regenerating both figures of the paper's
//     evaluation and the extension experiments listed in DESIGN.md.
//
// Single rounds:
//
//	profile := repro.UnitBandwidth(1000)          // n nodes, bin = bout = 1
//	sel, _ := repro.Uniform(1000)                 // selection distribution
//	svc, _ := repro.NewDatingService(profile, sel)
//	s := repro.NewStream(42)                      // deterministic randomness
//	res := svc.RunRound(s)                        // one round of Algorithm 1
//	fmt.Println(len(res.Dates), "dates arranged") // ≈ 0.47 * n
//
// # Parallelism: the owner-range exchange kernel
//
// Every flat engine parallelizes a round as a radix-partitioned counting
// sort, and the mechanism is implemented once, in internal/exch: a
// Partition of [0, n) into uniform owner ranges plus a generic chunked
// Exchange[T]. Workers own two kinds of contiguous ranges — a sender shard
// (balanced by request weight) and a destination range (uniform id cuts).
// During the scatter each worker records every emitted (destination,
// sender) pair into the chunk buffer of the destination's owner; a tiny
// serial exchange (O(workers²), no length-n scan) prefixes the owners'
// incoming totals into base offsets; then each owner counting-sorts its
// own destination range with a count array covering only that range,
// replaying the chunks in worker order so every rendezvous bucket holds
// its requests in global sender order. Round scratch is O(n + requests)
// regardless of the worker count — the owners' count arrays partition
// [0, n) rather than every worker holding a length-n array — and the
// layout is a pure function of the round's inputs, so results never depend
// on scheduling. Golden tests pin the engine's output bit-for-bit at
// workers {1, 2, 4, 8}, and an allocation regression test asserts that
// first-round bytes do not scale with the worker count.
//
// The Exchange double-buffers: Swap flips a front/back pair of chunk
// buffers, which is what lets consecutive rounds overlap.
// DatingService.RunRoundsSeeded(seeds, workers) scatters round r+1 into
// the back buffers while the owners still match round r from the front,
// and the live runtime's pipelined loop fuses delivery into the step phase
// (an owner's destination range is its peer range). Both schedules are
// bit-identical to their sequential counterparts; WithPipeline selects
// them under Run.
//
// # Worker-count-independent engines
//
// The engines underneath Run all share one property: their randomness is
// derived per *unit of work*, not per worker. An Arranger (NewArranger)
// seeds one stream per requesting node in the scatter pass
// (SplitMix64(seed, scatterDomain, node)) and one per rendezvous bucket in
// the match pass (SplitMix64(seed, matchDomain, rendezvous)), so whichever
// worker processes a node or bucket draws exactly the same values:
// Arrange(out, in, seed, workers) is bit-for-bit identical for every
// workers count. The same scheme is ported to the profile round path as
// DatingService.RunRoundSeeded(seed, workers), and ArrangeShared /
// RunRoundShared draw the worker count from a shared par.Budget instead of
// a fixed knob — which is how a Run's rounds, and the experiment harness's
// tail jobs, soak up idle cores without being able to change a number.
// (The older DatingService.RunRoundParallel, whose output depends on
// (seed, workers), remains for engine benchmarking.)
//
// # The sharded live-message runtime
//
// LiveConfig runs the dating handshake as a real message protocol: every
// offer, answer and payload is an individually routed message and each
// peer's only state is its rumor bit. Two substrates run the same step
// code. The goroutine engine (WithEngine(LiveGoroutine)) is the
// demonstrational one — one goroutine per peer, barrier-synchronized
// rounds. The sharded runtime (internal/live, the default under Run) is
// the production-scale one: a fixed pool of shard workers owning
// contiguous peer ranges, messages counting-sorted between rounds with the
// internal/exch kernel (shards exchange per-owner index chunks and each
// owner sorts its own peer range — delivery scratch is O(n + messages)),
// outgoing buffers prefix-summed into disjoint delivery-ring ranges so the
// route phase copies in parallel, per-peer streams seeded SplitMix64(seed,
// peerDomain, peer). Runs are bit-identical for every shard count and
// across engines. A 10^6-peer spread completes in tens of seconds
// (examples/livescale); at n=100k the sharded runtime is ~25x faster than
// goroutine-per-peer (BENCH_live.json).
//
// WithNet plugs a network model into the sharded runtime: NetFixedLatency
// and NetGeomLatency keep messages in flight for several rounds, NetLoss
// drops them iid, NetEpochChurn takes whole peers down for whole epochs
// (correlated loss), and NetRingLatency delays each pair by its ring
// distance in a DHT-style embedding — the asymmetric model, under which
// *which* rendezvous a request lands on decides how fast its handshake
// completes. Model randomness derives from SplitMix64(seed, netDomain,
// round, sender), preserving shard-count independence. The handshake
// absorbs all of it — payloads and answers act on arrival, control
// messages that miss their matching round wait for the rendezvous's next
// one — so hostile networks slow spreading gracefully rather than wedging
// it; the hetsim "live" experiment tables the sensitivity.
//
// # The clockless asynchronous runtime
//
// AsyncConfig drops the global round barrier: each peer contacts partners
// at the points of its own Poisson process, the rate drawn from its
// heterogeneity profile ((bin+bout)/2 — bandwidth heterogeneity becomes
// firing-frequency heterogeneity), pushing the rumor when it knows it and
// pulling a reply when the contact does. With a unit profile the mean
// inter-firing gap is one expected synchronous round, so sync and async
// spread curves share a time axis; the hetsim "async" experiment tables
// the comparison on homogeneous and Zipf profiles.
//
// The runtime underneath (internal/async) is a sharded calendar queue on
// the same internal/exch kernel as the live runtime. Continuous time is
// cut into buckets of width AsyncConfig.BucketWidth; a bucket executes as
// deliver (counting-sort the bucket's arrivals by destination), step (each
// shard replays its peers' arrivals, then their firings in time order) and
// route (hand emissions to future calendar slots) — and because peers
// interact only through messages that land in later buckets, the bucket
// boundary is the runtime's sole synchronization point. It is also the
// latency quantum: arrivals are absorbed at the boundary of their arrival
// bucket, so flight time is effectively max(Latency, time to the next
// boundary).
//
// Determinism holds without a clock to anchor rounds: peer i's k-th firing
// draws its inter-firing gap and its protocol randomness from a stream
// seeded SplitMix64(seed, asyncFireDomain, i, k), receive handlers are
// pure (no stream), and the exchange kernel reassembles emissions in
// global (peer, firing) scan order — so a run is a pure function of
// (spec, seed) and bit-identical for every WithWorkers shard count.
// WithNet is rejected for async runs: flight time is the protocol's own
// Latency axis, not a pluggable round-grain model.
//
// # Topology-constrained spreading
//
// TopologyConfig drops the any-to-any rendezvous assumption: contacts are
// constrained to the edges of an explicit graph (internal/graph), stored in
// compressed-sparse-row form — two flat int32 arrays, offsets and
// neighbors, cache-friendly at millions of nodes. Four deterministic
// generators build topologies as pure functions of their parameters and a
// seed (streams derive under the dedicated DomainGraph tag, so a graph is
// bit-identical wherever it is built, at every worker count — golden tests
// pin each generator's digest): CompleteGraph (the paper's setting as a
// topology), RingLatticeGraph (the regular high-clustering baseline),
// ErdosRenyiGraph (G(n,p) via the Batagelj–Brandes geometric skip, O(n +
// edges)), BarabasiAlbertGraph (preferential attachment) and PowerLawGraph
// (erased configuration model with a free degree exponent).
//
// On top runs the Maki–Thompson spreader/stifler protocol: peers are
// ignorant, spreaders or stiflers. Each round every spreader contacts one
// neighbor — uniformly, or weighted by the neighbor's bandwidth profile
// (TopologyConfig.Weighted). An ignorant contact accepts the rumor with
// probability Lambda; a contact that already knew replies "known", which
// stifles the initiating spreader with probability Alpha; and a spreader
// ceases spontaneously with probability Delta. Unlike push&pull, the rumor
// can die out before reaching everyone — the final spread fraction
// (TopologyResult.FinalSpread) is the epidemic-size observable, and the
// hetsim "topology" experiment tables it against Alpha on scale-free,
// random and complete graphs, from random and hub sources.
//
// The protocol runs on both live substrates (goroutine and sharded), with
// per-peer SIR state held in shard-owned contiguous blocks sized by
// live.EffectiveShards — no slice is written by two workers. All transition
// randomness comes from the acting peer's stream, consumed in canonical
// inbox order, so trajectories are bit-identical at every shard count and
// across engines; examples/topology cross-checks a 10^6-peer BA spread at
// shards {1, 2, 4} by digest, and datebench -mode topology gates the same
// identity in CI.
//
// # Conflicting-rumor consensus
//
// ConsensusConfig spreads K conflicting variants of one rumor over a graph
// and measures convergence to agreement: each peer holds a current variant,
// revises it under a pluggable merge rule whenever it hears variants from
// its contacts, and the run completes when the leading variant is held by a
// Threshold share of the population (90% by default — the convergence-time
// observable). Seeding geometry is configurable: ConsensusSeedDistinct
// places each variant at distinct uniform-random peers,
// ConsensusSeedHubLeaf alternates variants between the degree extremes of
// the graph (the seeding-advantage experiment on scale-free topologies),
// and ConsensusSeedClustered gives each variant a contiguous ring range.
//
// Three merge rules, all deterministic in canonical inbox order:
// ConsensusRuleMajority adopts the variant heard most often over the peer's
// lifetime (exact ties to the lowest variant id); ConsensusRuleLatest
// adopts the newest logical timestamp, so the last-stamped seed's variant
// floods monotonically and consensus is guaranteed on any connected graph;
// ConsensusRuleWeighted is majority with each message weighted by the
// sender's mean profile bandwidth. The qualitative split the hetsim
// "consensus" experiment tables: on the complete graph every rule converges
// in O(log n) rounds, while on sparse scale-free graphs the lifetime-tally
// rules can lock in local pluralities and stall below the threshold — only
// the latest rule always floods to full agreement.
//
// The subsystem shares the topology machinery: per-peer variant state in
// shard-owned contiguous blocks sized by live.EffectiveShards, contact
// randomness from the acting peer's stream, merge rules that consume no
// randomness — so runs are bit-identical at every shard count and across
// engines (examples/consensus cross-checks by digest; datebench -mode
// consensus gates the identity in CI). With an Observer attached,
// per-round variant-share gauges land in Report.Metrics on the "consensus"
// track.
//
// # Observability: read-only by contract
//
// WithObserver threads a passive instrumentation sink (internal/obs)
// through all three execution runtimes. Each runtime registers a track;
// its shards record per-(round, shard, phase) wall-clock spans into
// lock-free per-shard arenas that the coordinator merges at the round
// barrier, and the coordinator samples per-round gauges — messages routed
// and dropped, clamped delays, calendar-queue depth, scratch bytes, budget
// tokens in flight. Run aggregates everything into Report.Metrics; the
// observer also writes the full timeline as Chrome trace_event JSON
// (about:tracing / ui.perfetto.dev) and renders plain-text summary tables.
// The CLIs expose all of it as -trace, -metrics and -pprof flags.
//
// The determinism contract: observers are read-only. They never touch a
// random stream, never reorder message exchanges, and never feed anything
// back into protocol state — so an instrumented run is bit-identical to an
// uninstrumented one, at every worker count, with the trajectory-digest
// identity pinned by tests and by a CI smoke comparing datebench digests
// with and without -trace. A disabled observer (the nil default) costs the
// runtimes one nil check per phase: every recording method is
// nil-receiver-safe and the time.Now calls are gated on the observer being
// attached.
//
// # The repetition-parallel experiment harness
//
// Above single runs, the experiment harness behind cmd/hetsim,
// cmd/datebench and cmd/rumorbench parallelizes at the repetition grain:
// every (overlay, repetition) cell of a figure sweep is an independent
// simulation, run as one job with its own Service on its own goroutine.
// Job streams are seeded
//
//	SplitMix64(rootSeed, domainTag, coordinates...)
//
// where the coordinates are the job's position in the sweep — (n index,
// overlay index) for Figure 1, (n index, algorithm, repetition) for
// Figure 2 — never "the next value of a shared generator". Combined with
// fixed-order aggregation after the fan-in barrier, published tables are
// byte-identical for every worker count; the -par flag of the CLIs only
// changes wall-clock time. The harness workers and the engines inside
// jobs share one par.Budget, so when a sweep's tail leaves cores idle the
// remaining jobs' rounds parallelize inside — still without moving a
// number. Golden tests pin the quick-scale tables by hash so harness
// parallelism can never silently change published results.
//
// See the runnable programs under examples/ and the reproduction CLIs under
// cmd/. The docs/ directory carries the repository-level contracts:
// docs/ARCHITECTURE.md (package map and round data flow),
// docs/DETERMINISM.md (the bit-identity contract and the full seed-domain
// registry) and docs/BENCHMARKS.md (what each BENCH_*.json measures and how
// the CI benchdiff gate works).
package repro
