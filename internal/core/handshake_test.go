package core

import (
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/rng"
	"repro/internal/simnet"
)

func TestHandshakeValidation(t *testing.T) {
	sel, _ := NewUniformSelector(4)
	if _, err := NewHandshake(bandwidth.Homogeneous(5, 1), sel, 1); err == nil {
		t.Error("accepted node-count mismatch")
	}
	if _, err := NewHandshake(bandwidth.Homogeneous(4, 1), nil, 1); err == nil {
		t.Error("accepted nil selector")
	}
	h, err := NewHandshake(bandwidth.Homogeneous(4, 1), sel, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := simnet.NewNetwork(3)
	if _, err := h.RunRound(nw); err == nil {
		t.Error("accepted network-size mismatch")
	}
}

func TestHandshakeCapacityAndValidity(t *testing.T) {
	const n = 40
	p := bandwidth.Homogeneous(n, 2)
	sel, _ := NewUniformSelector(n)
	h, err := NewHandshake(p, sel, 7)
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := simnet.NewNetwork(n)
	for round := 0; round < 5; round++ {
		dates, err := h.RunRound(nw)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, n)
		in := make([]int, n)
		for _, d := range dates {
			out[d.Sender]++
			in[d.Receiver]++
		}
		for i := 0; i < n; i++ {
			if out[i] > p.Out[i] || in[i] > p.In[i] {
				t.Fatalf("round %d: node %d over capacity (out %d, in %d)", round, i, out[i], in[i])
			}
		}
	}
}

func TestHandshakeMessageAccounting(t *testing.T) {
	// One dating round = scatter (Bout + Bin tiny messages) + answers (one
	// per offer) + payloads (one per date): the protocol's total overhead is
	// Bout + Bin + Bout control messages, each payload-free.
	const n, b = 30, 1
	p := bandwidth.Homogeneous(n, b)
	sel, _ := NewUniformSelector(n)
	h, _ := NewHandshake(p, sel, 11)
	nw, _ := simnet.NewNetwork(n)
	dates, err := h.RunRound(nw)
	if err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.ByKind[KindOffer] != int64(n*b) {
		t.Fatalf("offers sent %d, want %d", st.ByKind[KindOffer], n*b)
	}
	if st.ByKind[KindRequest] != int64(n*b) {
		t.Fatalf("requests sent %d, want %d", st.ByKind[KindRequest], n*b)
	}
	if st.ByKind[KindAnswer] != int64(n*b) {
		t.Fatalf("answers sent %d, want %d (every offer must be answered)", st.ByKind[KindAnswer], n*b)
	}
	if st.ByKind[KindPayload] != int64(len(dates)) {
		t.Fatalf("payloads %d but dates %d", st.ByKind[KindPayload], len(dates))
	}
	if st.Rounds != 3 {
		t.Fatalf("network rounds %d, want 3 per dating round", st.Rounds)
	}
}

func TestHandshakeWithCrashedNodes(t *testing.T) {
	const n = 50
	p := bandwidth.Homogeneous(n, 1)
	sel, _ := NewUniformSelector(n)
	h, _ := NewHandshake(p, sel, 13)
	nw, _ := simnet.NewNetwork(n)
	for i := 0; i < 10; i++ {
		nw.Kill(i)
	}
	dates, err := h.RunRound(nw)
	if err != nil {
		t.Fatal(err)
	}
	if len(dates) == 0 {
		t.Fatal("no dates despite 40 live nodes")
	}
	for _, d := range dates {
		if d.Sender < 10 || d.Receiver < 10 {
			t.Fatalf("date %v involves crashed node", d)
		}
	}
}

func TestHandshakeFractionMatchesFlat(t *testing.T) {
	// The message-level protocol must realize statistically the same number
	// of dates as the flat RunRound implementation.
	const n, rounds = 200, 30
	p := bandwidth.Homogeneous(n, 1)
	sel, _ := NewUniformSelector(n)

	h, _ := NewHandshake(p, sel, 17)
	nw, _ := simnet.NewNetwork(n)
	hsTotal := 0
	for r := 0; r < rounds; r++ {
		dates, err := h.RunRound(nw)
		if err != nil {
			t.Fatal(err)
		}
		hsTotal += len(dates)
	}

	sv, _ := NewService(p, sel)
	s := rng.New(17)
	flatTotal := 0
	for r := 0; r < rounds; r++ {
		flatTotal += len(sv.RunRound(s).Dates)
	}

	hsFrac := float64(hsTotal) / float64(rounds*n)
	flatFrac := float64(flatTotal) / float64(rounds*n)
	if hsFrac < flatFrac-0.05 || hsFrac > flatFrac+0.05 {
		t.Fatalf("handshake fraction %.4f vs flat %.4f", hsFrac, flatFrac)
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(-1); err == nil {
		t.Error("accepted negative latency")
	}
}

func TestPipelineWarmupAndFlow(t *testing.T) {
	pl, err := NewPipeline(3)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Date{
		{{0, 1}}, {{1, 2}}, {{2, 3}}, {{3, 4}}, {{4, 5}},
	}
	var matured [][]Date
	for _, b := range batches {
		if out, ok := pl.Tick(b); ok {
			matured = append(matured, out)
		}
	}
	// With latency 3, ticks 1-3 are warm-up; ticks 4 and 5 mature batches
	// 1 and 2.
	if len(matured) != 2 {
		t.Fatalf("matured %d batches, want 2", len(matured))
	}
	if matured[0][0].Sender != 0 || matured[1][0].Sender != 1 {
		t.Fatalf("batches matured out of order: %v", matured)
	}
	rest := pl.Drain()
	if len(rest) != 3 {
		t.Fatalf("drained %d batches, want 3", len(rest))
	}
	if pl.Matured() != 5 {
		t.Fatalf("total matured %d", pl.Matured())
	}
}

func TestPipelineZeroLatency(t *testing.T) {
	pl, _ := NewPipeline(0)
	out, ok := pl.Tick([]Date{{7, 8}})
	if !ok || len(out) != 1 || out[0].Sender != 7 {
		t.Fatalf("zero-latency pipeline delayed the batch: %v %v", out, ok)
	}
}

func TestTimeForClosedForm(t *testing.T) {
	// Section 4: k rounds cost Theta(log n + k) pipelined, k*log n naive.
	if got := TimeFor(10, 7, true); got != 17 {
		t.Fatalf("pipelined = %d, want 17", got)
	}
	if got := TimeFor(10, 7, false); got != 70 {
		t.Fatalf("naive = %d, want 70", got)
	}
	if got := TimeFor(0, 7, true); got != 0 {
		t.Fatalf("zero rounds = %d", got)
	}
	if got := TimeFor(5, 0, false); got != 5 {
		t.Fatalf("latency-0 naive = %d, want 5", got)
	}
}

func TestPipelineMatchesClosedForm(t *testing.T) {
	// Simulated pipeline: time steps to mature k batches == latency + k.
	const k, latency = 12, 5
	pl, _ := NewPipeline(latency)
	steps := 0
	maturedBatches := 0
	for maturedBatches < k {
		steps++
		var issued []Date
		if _, ok := pl.Tick(issued); ok {
			maturedBatches++
		}
	}
	if steps != TimeFor(k, latency, true) {
		t.Fatalf("simulated %d steps, closed form %d", steps, TimeFor(k, latency, true))
	}
}
