package core

import (
	"math"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Tests of the symmetry structure of Lemma 3: conditionally on the number
// of arranged dates, the date set is a uniform random k-matching of the
// complete bipartite graph over bandwidth units. Two measurable
// consequences are checked: exchangeability of units within a node and the
// hypergeometric second moment of per-node date counts.

func TestLemma3PairwiseUniformity(t *testing.T) {
	// In a 3-node unit-bandwidth network, conditioned on any fixed number
	// of dates, every (sender, receiver) pair with sender != receiver must
	// be equally likely to appear. (Self-dates sender == receiver are
	// possible too — a node's own offer and request can meet at the same
	// rendezvous — but they have a different marginal, so we compare only
	// the off-diagonal pairs.)
	const n = 3
	sel, _ := NewUniformSelector(n)
	sv, err := NewService(bandwidth.Homogeneous(n, 1), sel)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(1)
	counts := map[[2]int]int{}
	total := 0
	const rounds = 120000
	for r := 0; r < rounds; r++ {
		for _, d := range sv.RunRound(s).Dates {
			if d.Sender != d.Receiver {
				counts[[2]int{d.Sender, d.Receiver}]++
				total++
			}
		}
	}
	pairs := n * (n - 1)
	want := float64(total) / float64(pairs)
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("pair %v: count %d, want %.0f ± 5%%", pair, c, want)
		}
	}
	if len(counts) != pairs {
		t.Errorf("only %d of %d pairs ever dated", len(counts), pairs)
	}
}

func TestLemma3UnitExchangeability(t *testing.T) {
	// A node with bout = 3 has three exchangeable outgoing units; its
	// per-round matched count averaged over rounds must equal 3x the
	// per-unit rate of a bout = 1 node in the same network.
	const n = 60
	profile := bandwidth.Homogeneous(n, 1)
	profile.Out[0] = 3
	profile.In[0] = 3 // keep the C-ratio at 1
	sel, _ := NewUniformSelector(n)
	sv, err := NewService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(2)
	var big, small stats.Accumulator
	const rounds = 30000
	for r := 0; r < rounds; r++ {
		res := sv.RunRound(s)
		big.Add(float64(res.PerNodeOut[0]))
		small.Add(float64(res.PerNodeOut[1]))
	}
	ratio := big.Mean() / small.Mean()
	if math.Abs(ratio-3) > 0.15 {
		t.Fatalf("3-unit node matched %.3f vs 1-unit node %.3f: ratio %.2f, want 3",
			big.Mean(), small.Mean(), ratio)
	}
}

func TestLemma3HypergeometricVariance(t *testing.T) {
	// Conditional on k total dates, a fixed node's matched outgoing units
	// follow Hypergeometric(Bout, bout_i, k). Unconditionally,
	// Var(X_i) = E[Var(X_i | K)] + Var(E[X_i | K]); we verify the
	// conditional part by binning rounds on K and comparing the empirical
	// within-bin variance to the hypergeometric formula.
	const n = 40
	sel, _ := NewUniformSelector(n)
	sv, err := NewService(bandwidth.Homogeneous(n, 1), sel)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(3)
	perK := map[int]*stats.Accumulator{}
	const rounds = 60000
	for r := 0; r < rounds; r++ {
		res := sv.RunRound(s)
		k := len(res.Dates)
		acc, ok := perK[k]
		if !ok {
			acc = &stats.Accumulator{}
			perK[k] = acc
		}
		acc.Add(float64(res.PerNodeOut[7])) // an arbitrary fixed node
	}
	checked := 0
	for k, acc := range perK {
		if acc.N() < 3000 {
			continue // not enough mass in this bin for a variance check
		}
		// Hypergeometric(N=Bout=n, K=bout_i=1, draws=k):
		// mean = k/n, var = (k/n)(1-k/n)(n-k)/(n-1)... with K=1 the count
		// is Bernoulli(k/n), so var = (k/n)(1 - k/n).
		p := float64(k) / float64(n)
		wantMean, wantVar := p, p*(1-p)
		if math.Abs(acc.Mean()-wantMean) > 0.03 {
			t.Errorf("k=%d: mean %.4f, want %.4f", k, acc.Mean(), wantMean)
		}
		if math.Abs(acc.Var()-wantVar) > 0.03 {
			t.Errorf("k=%d: var %.4f, want %.4f", k, acc.Var(), wantVar)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no K-bin accumulated enough rounds; widen the experiment")
	}
}

func TestHandshakeDeterministic(t *testing.T) {
	// Two handshakes with equal seeds over fresh networks must arrange the
	// exact same dates round for round.
	const n = 50
	p := bandwidth.Homogeneous(n, 1)
	sel, _ := NewUniformSelector(n)
	run := func() [][]Date {
		h, err := NewHandshake(p, sel, 99)
		if err != nil {
			t.Fatal(err)
		}
		nw, _ := simnet.NewNetwork(n)
		var all [][]Date
		for r := 0; r < 5; r++ {
			dates, err := h.RunRound(nw)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, dates)
		}
		return all
	}
	a, b := run(), run()
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("round %d: %d vs %d dates", r, len(a[r]), len(b[r]))
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("round %d date %d differs: %v vs %v", r, i, a[r][i], b[r][i])
			}
		}
	}
}

func TestDynamicRingSelectorContract(t *testing.T) {
	// The Selector implementation over a churning ring keeps satisfying
	// the interface contract as membership changes.
	s := rng.New(5)
	d, err := overlay.NewDynamicRing(16, s)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewDynamicRingSelector(d)
	if err != nil {
		t.Fatal(err)
	}
	if sel.N() != 16 {
		t.Fatalf("N = %d", sel.N())
	}
	for i := 0; i < 2000; i++ {
		if v := sel.Pick(s); v < 0 || v >= 16 {
			t.Fatalf("pick %d out of range", v)
		}
	}
	if _, err := NewDynamicRingSelector(nil); err == nil {
		t.Fatal("accepted nil ring")
	}
}

func TestDatingOverDynamicSelectorCapacity(t *testing.T) {
	// Full dating rounds over a churning distribution keep the capacity
	// invariant.
	s := rng.New(6)
	d, err := overlay.NewDynamicRing(50, s)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := NewDynamicRingSelector(d)
	sv, err := NewService(bandwidth.Homogeneous(50, 2), sel)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		if round%2 == 1 {
			// Churn half-way through: replace three members.
			for j := 0; j < 3; j++ {
				id := 1 + s.Intn(49)
				if d.Present(id) {
					if err := d.Replace(id, s); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		res := sv.RunRound(s)
		if err := ValidateCapacities(res, sv.Profile()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
