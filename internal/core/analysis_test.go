package core

import (
	"math"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestPoissonPMFBasics(t *testing.T) {
	// Po(1): P(0) = P(1) = 1/e.
	e := math.Exp(-1)
	if got := PoissonPMF(1, 0); math.Abs(got-e) > 1e-12 {
		t.Fatalf("P(Po(1)=0) = %v", got)
	}
	if got := PoissonPMF(1, 1); math.Abs(got-e) > 1e-12 {
		t.Fatalf("P(Po(1)=1) = %v", got)
	}
	if got := PoissonPMF(1, -1); got != 0 {
		t.Fatalf("negative k: %v", got)
	}
	if got := PoissonPMF(0, 0); got != 1 {
		t.Fatalf("lambda=0, k=0: %v", got)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.25, 1, 4, 30} {
		var sum float64
		for k := 0; k < 300; k++ {
			sum += PoissonPMF(lambda, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("lambda=%v: pmf sums to %v", lambda, sum)
		}
	}
}

func TestPoissonSF(t *testing.T) {
	if got := PoissonSF(1, 0); got != 1 {
		t.Fatalf("SF(>=0) = %v", got)
	}
	want := 1 - math.Exp(-1)
	if got := PoissonSF(1, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("SF(>=1) = %v, want %v", got, want)
	}
	// SF decreasing in k.
	prev := 1.0
	for k := 1; k < 20; k++ {
		sf := PoissonSF(2, k)
		if sf > prev {
			t.Fatalf("SF not decreasing at k=%d", k)
		}
		prev = sf
	}
}

func TestExpectedMinPoissonKnownValue(t *testing.T) {
	// E[min(P,Q)] for iid Po(1) = sum_k P(>=k)^2 = 0.4761... (computed
	// independently); this is the exact constant behind the paper's
	// "slightly more than 0.47*n".
	got := ExpectedMinPoisson(1)
	if math.Abs(got-0.476) > 0.002 {
		t.Fatalf("E[min(Po(1),Po(1))] = %v, want ~0.476", got)
	}
	// E[min] <= lambda, and grows with lambda.
	prev := 0.0
	for _, lambda := range []float64{0.5, 1, 2, 4, 8} {
		v := ExpectedMinPoisson(lambda)
		if v <= prev || v > lambda {
			t.Fatalf("E[min] at lambda=%v is %v (prev %v)", lambda, v, prev)
		}
		prev = v
	}
	if ExpectedMinPoisson(0) != 0 {
		t.Fatal("lambda=0 must give 0")
	}
}

func TestExpectedMinPoissonMonteCarlo(t *testing.T) {
	// Cross-validate the series against direct Monte Carlo sampling.
	s := rng.New(42)
	for _, lambda := range []float64{0.5, 1, 3} {
		const reps = 200000
		var sum float64
		for i := 0; i < reps; i++ {
			a, b := s.Poisson(lambda), s.Poisson(lambda)
			if b < a {
				a = b
			}
			sum += float64(a)
		}
		mc := sum / reps
		series := ExpectedMinPoisson(lambda)
		if math.Abs(mc-series) > 0.01*lambda+0.005 {
			t.Errorf("lambda=%v: series %v vs monte carlo %v", lambda, series, mc)
		}
	}
}

func TestPredictUniformFractionValidation(t *testing.T) {
	if _, err := PredictUniformFraction(0); err == nil {
		t.Error("accepted lambda = 0")
	}
	if _, err := PredictUniformFraction(-1); err == nil {
		t.Error("accepted negative lambda")
	}
}

func TestPoissonPredictionMatchesSimulation(t *testing.T) {
	// The headline validation: the Poisson-limit prediction matches the
	// simulated fraction across loads, far more precisely than the paper's
	// 0.44 estimate or its 0.064 proven bound.
	const n = 2000
	s := rng.New(7)
	for _, b := range []int{1, 2, 4} {
		sel, _ := NewUniformSelector(n)
		sv, err := NewService(bandwidth.Homogeneous(n, b), sel)
		if err != nil {
			t.Fatal(err)
		}
		var acc stats.Accumulator
		for r := 0; r < 100; r++ {
			acc.Add(sv.RunRound(s).Fraction(sv.M()))
		}
		pred, err := PredictUniformFraction(float64(b))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(acc.Mean()-pred) > 0.01 {
			t.Errorf("load %d: simulated %.4f vs predicted %.4f", b, acc.Mean(), pred)
		}
		// Sanity against the paper's constants.
		if pred < PaperUniformEstimate || pred < LowerBoundBeta {
			t.Errorf("prediction %.4f below the paper's own bounds", pred)
		}
	}
}

func TestPredictWeightedFraction(t *testing.T) {
	// Uniform weights must agree with the uniform prediction.
	n := 500
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	got, err := PredictWeightedFraction(w, n)
	if err != nil {
		t.Fatal(err)
	}
	uni, _ := PredictUniformFraction(1)
	if math.Abs(got-uni) > 1e-9 {
		t.Fatalf("weighted(uniform) %v != uniform %v", got, uni)
	}
}

func TestPredictWeightedFractionSkewBeatsUniform(t *testing.T) {
	// The conjecture at the level of the Poisson model: a skewed
	// distribution predicts a higher fraction than uniform.
	n := 500
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	w[0] = float64(n) // hub attracts half the requests
	skew, err := PredictWeightedFraction(w, n)
	if err != nil {
		t.Fatal(err)
	}
	uni, _ := PredictUniformFraction(1)
	if skew <= uni {
		t.Fatalf("skewed prediction %v not above uniform %v", skew, uni)
	}
}

func TestPredictWeightedFractionMatchesSimulation(t *testing.T) {
	// End-to-end: prediction vs simulation for a lumpy distribution.
	const n = 1000
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 + float64(i%10)
	}
	pred, err := PredictWeightedFraction(w, n)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewWeightedSelector(w)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewService(bandwidth.Homogeneous(n, 1), sel)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(8)
	var acc stats.Accumulator
	for r := 0; r < 150; r++ {
		acc.Add(sv.RunRound(s).Fraction(n))
	}
	if math.Abs(acc.Mean()-pred) > 0.015 {
		t.Fatalf("simulated %.4f vs predicted %.4f", acc.Mean(), pred)
	}
}

func TestPredictWeightedFractionValidation(t *testing.T) {
	if _, err := PredictWeightedFraction([]float64{1}, 0); err == nil {
		t.Error("accepted m = 0")
	}
	if _, err := PredictWeightedFraction([]float64{-1, 2}, 5); err == nil {
		t.Error("accepted negative weight")
	}
	if _, err := PredictWeightedFraction([]float64{0, 0}, 5); err == nil {
		t.Error("accepted zero-sum weights")
	}
	// Zero weights among positive ones are fine.
	if _, err := PredictWeightedFraction([]float64{0, 1, 0}, 5); err != nil {
		t.Errorf("rejected sparse weights: %v", err)
	}
}
