package core

import (
	"reflect"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// referenceArrange is the seed algorithm ArrangeDates replaced: a per-node
// append scatter into one heap slice per rendezvous, followed by a bucket
// walk in rendezvous order. It is kept here — fed the same per-node and
// per-bucket derived streams as the Arranger — as the executable
// specification the flat counting-sort layout must reproduce exactly.
func referenceArrange(t *testing.T, out, in []int, sel Selector, seed uint64) []Date {
	t.Helper()
	n := sel.N()
	offersAt := make([][]int32, n)
	requestsAt := make([][]int32, n)
	gen := rng.NewXoshiro256(0)
	s := rng.NewWithSource(gen)
	for i := 0; i < n; i++ {
		if out[i] == 0 && in[i] == 0 {
			continue
		}
		gen.Seed(rng.Derive(seed, domainScatter, uint64(i)))
		for k := 0; k < out[i]; k++ {
			dest := sel.Pick(s)
			offersAt[dest] = append(offersAt[dest], int32(i))
		}
		for k := 0; k < in[i]; k++ {
			dest := sel.Pick(s)
			requestsAt[dest] = append(requestsAt[dest], int32(i))
		}
	}
	var dates []Date
	for v := 0; v < n; v++ {
		if len(offersAt[v]) == 0 || len(requestsAt[v]) == 0 {
			continue
		}
		gen.Seed(rng.Derive(seed, domainMatch, uint64(v)))
		MatchRendezvous(offersAt[v], requestsAt[v], s, func(sender, receiver int32) {
			dates = append(dates, Date{Sender: int(sender), Receiver: int(receiver)})
		})
	}
	return dates
}

// emptySelector is the degenerate n = 0 distribution (no node ever requests
// anything, so Pick must never be called).
type emptySelector struct{}

func (emptySelector) Pick(*rng.Stream) int { panic("pick on an empty selector") }
func (emptySelector) N() int               { return 0 }

// arrangeCase builds a randomized (requests, selector) input at size n.
func arrangeCase(t *testing.T, n int, maxB int, s *rng.Stream) (out, in []int, sel Selector) {
	t.Helper()
	out = make([]int, n)
	in = make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = s.Intn(maxB + 1) // zeros included: fluctuating demand
		in[i] = s.Intn(maxB + 1)
	}
	if n == 0 {
		return out, in, emptySelector{}
	}
	if s.Bool() {
		u, err := NewUniformSelector(n)
		if err != nil {
			t.Fatal(err)
		}
		return out, in, u
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(s.Intn(9) + 1)
	}
	ws, err := NewWeightedSelector(w)
	if err != nil {
		t.Fatal(err)
	}
	return out, in, ws
}

// validateArrangement checks the paper's safety property directly on an
// ArrangeDates result: no node exceeds its declared supply or demand.
func validateArrangement(t *testing.T, dates []Date, out, in []int) {
	t.Helper()
	res := RoundResult{Dates: dates, PerNodeOut: make([]int, len(out)), PerNodeIn: make([]int, len(in))}
	for _, d := range dates {
		if d.Sender < 0 || d.Sender >= len(out) || d.Receiver < 0 || d.Receiver >= len(in) {
			t.Fatalf("date %v references invalid node", d)
		}
		res.PerNodeOut[d.Sender]++
		res.PerNodeIn[d.Receiver]++
	}
	if err := ValidateCapacities(res, bandwidth.Profile{Out: out, In: in}); err != nil {
		t.Fatal(err)
	}
}

func TestArrangeMatchesReference(t *testing.T) {
	// The equivalence property: on randomized (requests, selector, capacity)
	// inputs the flat-engine Arranger produces the exact date sequence of
	// the seed's append-scatter algorithm (a fortiori the same multiset),
	// serially and at every worker count, and both pass the capacity check.
	caseRng := rng.New(17)
	for _, n := range []int{0, 1, 17, 1000} {
		for trial := 0; trial < 6; trial++ {
			out, in, sel := arrangeCase(t, n, 4, caseRng)
			seed := caseRng.Uint64()
			want := referenceArrange(t, out, in, sel, seed)
			validateArrangement(t, want, out, in)
			for _, workers := range []int{1, 2, 4, 7, 8} {
				a, err := NewArranger(sel)
				if err != nil {
					t.Fatal(err)
				}
				got, err := a.Arrange(out, in, seed, workers)
				if err != nil {
					t.Fatalf("n=%d workers=%d: %v", n, workers, err)
				}
				if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
					t.Fatalf("n=%d trial=%d workers=%d: %d dates diverge from the reference (%d)",
						n, trial, workers, len(got), len(want))
				}
				validateArrangement(t, got, out, in)
			}
		}
	}
}

func TestArrangeWorkersBitIdentical10k(t *testing.T) {
	// The acceptance bar: at n = 10k, Workers=k yields bit-identical dates
	// to Workers=1 for a fixed seed, on fresh and on reused scratch alike.
	const n, seed = 10000, 4242
	sel, err := NewUniformSelector(n)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, n)
	in := make([]int, n)
	prof := rng.New(1)
	for i := 0; i < n; i++ {
		out[i] = prof.Intn(3)
		in[i] = prof.Intn(3)
	}
	base, err := NewArranger(sel)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Arrange(out, in, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("degenerate round: no dates arranged")
	}
	for _, workers := range []int{2, 3, 4, 8} {
		a, err := NewArranger(sel)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ { // rep 1 exercises reused scratch
			got, err := a.Arrange(out, in, seed, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d rep=%d: dates differ from serial", workers, rep)
			}
		}
	}
}

func TestArrangeMixedSerialParallelScratchReset(t *testing.T) {
	// Regression: one Arranger cycling through worker counts and changing
	// supply/demand every round must behave exactly like a fresh Arranger —
	// any scratch not fully reset between mixed serial/parallel calls would
	// surface as a divergence.
	const n = 400
	sel, err := NewUniformSelector(n)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := NewArranger(sel)
	if err != nil {
		t.Fatal(err)
	}
	roundRng := rng.New(99)
	workerCycle := []int{1, 4, 2, 8, 1, 3}
	for round := 0; round < 18; round++ {
		out := make([]int, n)
		in := make([]int, n)
		for i := 0; i < n; i++ {
			out[i] = roundRng.Intn(4)
			in[i] = roundRng.Intn(4)
		}
		seed := roundRng.Uint64()
		workers := workerCycle[round%len(workerCycle)]
		got, err := reused.Arrange(out, in, seed, workers)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewArranger(sel)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Arrange(out, in, seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d (workers=%d): reused scratch diverged from a fresh arranger", round, workers)
		}
		validateArrangement(t, got, out, in)
	}
}

func TestArrangeValidation(t *testing.T) {
	if _, err := NewArranger(nil); err == nil {
		t.Error("accepted a nil selector")
	}
	sel, err := NewUniformSelector(4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArranger(sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Arrange([]int{1, 1, 1, 1}, []int{1, 1, 1, 1}, 1, 0); err == nil {
		t.Error("accepted workers = 0")
	}
	if _, err := a.Arrange([]int{1, 1}, []int{1, 1, 1, 1}, 1, 1); err == nil {
		t.Error("accepted a short supply vector")
	}
	if _, err := a.Arrange([]int{1, -1, 1, 1}, []int{1, 1, 1, 1}, 1, 1); err == nil {
		t.Error("accepted negative supply")
	}
	if _, err := ArrangeDates([]int{1}, []int{1}, nil, rng.New(1)); err == nil {
		t.Error("ArrangeDates accepted a nil selector")
	}
}

func TestArrangeDatesConsumesOneDraw(t *testing.T) {
	// The compat wrapper draws the round seed from the caller's stream and
	// nothing else, so caller-side determinism is independent of any future
	// internal parallelism.
	sel, err := NewUniformSelector(50)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, 50)
	in := make([]int, 50)
	for i := range out {
		out[i] = 1
		in[i] = 1
	}
	used, probe := rng.New(31), rng.New(31)
	if _, err := ArrangeDates(out, in, sel, used); err != nil {
		t.Fatal(err)
	}
	probe.Uint64() // the one draw the wrapper is allowed
	if used.Uint64() != probe.Uint64() {
		t.Fatal("ArrangeDates consumed more than one draw from the caller's stream")
	}
}

func TestArrangeDynamicRingSelectorParallel(t *testing.T) {
	// The churning-DHT path: DynamicRingSelector's lazy snapshot rebuild
	// must be forced by Prepare before the fanout, after which parallel
	// rounds are race-free and bit-identical to serial ones.
	const n = 300
	ring, err := overlay.NewDynamicRing(n, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewDynamicRingSelector(ring)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArranger(sel)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, n)
	in := make([]int, n)
	for i := range out {
		out[i] = 1
		in[i] = 1
	}
	churn := rng.New(6)
	for round := 0; round < 10; round++ {
		// Churn between rounds dirties the snapshot, so every round
		// re-exercises the Prepare-before-fanout path.
		for id := 0; id < n; id++ {
			if churn.Bernoulli(0.05) {
				if err := ring.Replace(id, churn); err != nil {
					t.Fatal(err)
				}
			}
		}
		seed := churn.Uint64()
		want, err := a.Arrange(out, in, seed, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Arrange(out, in, seed, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: parallel dates diverge from serial over a churning ring", round)
		}
		validateArrangement(t, got, out, in)
	}
}
