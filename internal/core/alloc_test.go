package core

// The radix scatter's memory claim, as a regression test: a round's scratch
// is O(n + requests), so the bytes a fresh Service allocates to run its
// first round must not scale with the worker count at fixed n. The pre-
// radix engine held two length-n count arrays per worker (O(workers·n)) and
// fails this test by a wide margin.
//
// testing.AllocsPerRun counts allocations, not bytes, and the worker-count
// scaling lives in bytes (two big arrays per extra worker) — so the test
// samples runtime.ReadMemStats around the round instead. TotalAlloc is
// cumulative across all goroutines, which also covers the allocations the
// phase workers make off the calling goroutine.

import (
	"runtime"
	"testing"

	"repro/internal/bandwidth"
)

// allocFirstRound returns the bytes allocated by constructing a Service at
// n nodes and running one seeded round at the given worker count — i.e. the
// full scratch footprint a round of that shape needs.
func allocFirstRound(t *testing.T, n, workers int) uint64 {
	t.Helper()
	sel, err := NewUniformSelector(n)
	if err != nil {
		t.Fatal(err)
	}
	profile := bandwidth.Homogeneous(n, 1)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	svc, err := NewService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RunRoundSeeded(1, workers); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(svc)
	return after.TotalAlloc - before.TotalAlloc
}

func TestRoundAllocBytesIndependentOfWorkers(t *testing.T) {
	// At n=50k, each extra worker used to cost 2·4·n = 400 KB of count
	// arrays: 16 workers allocated ~6 MB more than 1 worker, about 3x the
	// serial footprint. Under the radix scatter the owners' count arrays
	// partition [0, n) and the chunks hold exactly the round's requests, so
	// the 16-worker round must stay within a modest constant of the serial
	// one (goroutine stacks, chunk headers, fan-out bookkeeping).
	const n = 50_000
	serial := allocFirstRound(t, n, 1)
	wide := allocFirstRound(t, n, 16)
	if serial == 0 {
		t.Fatal("serial round reported zero allocation — measurement broken")
	}
	if limit := serial + serial/2; wide > limit {
		t.Fatalf("16-worker first round allocated %d bytes vs %d serial (limit %d): scratch scales with workers again",
			wide, serial, limit)
	}
}

func TestSteadyStateRoundAllocsFlat(t *testing.T) {
	// After the first round the scratch is warm: subsequent rounds must not
	// re-allocate worker-count-scaled buffers either. (Per-round result
	// slices — Dates, PerNode counters — are O(n) and identical for every
	// worker count, since the seeded path is worker-count independent.)
	const n, rounds = 20_000, 4
	measure := func(workers int) uint64 {
		sel, err := NewUniformSelector(n)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(bandwidth.Homogeneous(n, 1), sel)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.RunRoundSeeded(1, workers); err != nil { // warm-up
			t.Fatal(err)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for r := 0; r < rounds; r++ {
			if _, err := svc.RunRoundSeeded(uint64(r+2), workers); err != nil {
				t.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		runtime.KeepAlive(svc)
		return after.TotalAlloc - before.TotalAlloc
	}
	serial := measure(1)
	wide := measure(8)
	if serial == 0 {
		t.Fatal("steady-state serial rounds reported zero allocation — measurement broken")
	}
	if limit := serial + serial/2; wide > limit {
		t.Fatalf("8-worker steady-state rounds allocated %d bytes vs %d serial (limit %d)",
			wide, serial, limit)
	}
}
