package core

import "fmt"

// Pipeline models the Section 4 latency-hiding technique: when the dating
// service runs over a DHT, every request needs Theta(log n) routing hops, so
// a naive implementation pays that latency every round. Instead, nodes keep
// issuing a new round of requests every time step without waiting for the
// previous answers; after a warm-up of `latency` steps, one batch of dates
// matures per step, so k dating rounds complete in latency + k time steps
// instead of k * latency.
//
// Tick is called once per time step with the dates arranged by the round
// *issued* at that step; it returns the batch that *matures* at that step,
// or ok == false during warm-up.
type Pipeline struct {
	latency int
	queue   [][]Date
	steps   int
	matured int
}

// NewPipeline creates a pipeline with the given routing latency in time
// steps (use the overlay's measured average hop count, rounded up).
func NewPipeline(latency int) (*Pipeline, error) {
	if latency < 0 {
		return nil, fmt.Errorf("core: pipeline latency must be >= 0, got %d", latency)
	}
	return &Pipeline{latency: latency}, nil
}

// Latency returns the configured routing latency.
func (p *Pipeline) Latency() int { return p.latency }

// Tick advances one time step: the given freshly issued batch enters the
// pipe, and the batch issued `latency` steps ago (if any) matures.
func (p *Pipeline) Tick(issued []Date) (matured []Date, ok bool) {
	p.queue = append(p.queue, issued)
	p.steps++
	if len(p.queue) > p.latency {
		matured = p.queue[0]
		p.queue = p.queue[1:]
		p.matured++
		return matured, true
	}
	return nil, false
}

// Drain returns the remaining in-flight batches in issue order, emptying
// the pipeline; used at the end of a run when no new rounds are issued but
// outstanding answers still arrive.
func (p *Pipeline) Drain() [][]Date {
	out := p.queue
	p.queue = nil
	p.matured += len(out)
	p.steps += len(out)
	return out
}

// Steps returns the number of time steps elapsed (Ticks plus drained
// batches).
func (p *Pipeline) Steps() int { return p.steps }

// Matured returns the number of batches that have matured so far.
func (p *Pipeline) Matured() int { return p.matured }

// TimeFor returns the total time steps needed to complete k dating rounds:
// latency + k with pipelining versus k * max(latency, 1) without. It is the
// closed-form the pipelining experiment validates against simulation.
func TimeFor(k, latency int, pipelined bool) int {
	if k <= 0 {
		return 0
	}
	if pipelined {
		return latency + k
	}
	perRound := latency
	if perRound < 1 {
		perRound = 1
	}
	return k * perRound
}
