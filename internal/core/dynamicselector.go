package core

import (
	"fmt"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// DynamicRingSelector adapts a churning DHT as a selection distribution:
// requests are addressed to whichever *current* member owns a uniform
// random point, so departed ids are never selected and fresh joiners take
// over their arcs immediately. The distribution changes between rounds,
// which Algorithm 1 permits — it only needs all nodes to share the same
// distribution within a round.
type DynamicRingSelector struct{ ring *overlay.DynamicRing }

// NewDynamicRingSelector wraps a dynamic ring.
func NewDynamicRingSelector(r *overlay.DynamicRing) (DynamicRingSelector, error) {
	if r == nil {
		return DynamicRingSelector{}, fmt.Errorf("core: dynamic ring selector needs a ring")
	}
	return DynamicRingSelector{ring: r}, nil
}

// Pick implements Selector. A rebuild failure is impossible for a ring with
// at least one member, which DynamicRing guarantees; the impossible branch
// panics rather than silently mis-selecting.
func (ds DynamicRingSelector) Pick(s *rng.Stream) int {
	id, err := ds.ring.PickOwnerID(s)
	if err != nil {
		panic(fmt.Sprintf("core: dynamic ring pick failed: %v", err))
	}
	return id
}

// N implements Selector: the id space size, matching the profile width.
func (ds DynamicRingSelector) N() int { return ds.ring.N() }

// Prepare implements Preparer: it forces the lazy ring rebuild that Pick
// would otherwise trigger, so that the parallel engine's workers only ever
// read the snapshot concurrently. Membership must not change during a
// round, which the round-synchronous simulations guarantee.
func (ds DynamicRingSelector) Prepare() error {
	_, _, err := ds.ring.Snapshot()
	return err
}
