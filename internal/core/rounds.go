package core

// This file implements pipelined multi-round execution on the seeded path:
// RunRoundsSeeded runs k rounds back to back, double-buffering the request
// exchange so workers record round r+1's requests in the same fanout that
// matches round r's.
//
// A sequential seeded round pays three barriers: scatter, sort, match. The
// scatter of round r+1 is oblivious to round r's dates — request emission
// depends only on (profile, selector, seed) — so it can ride in the match
// fanout: each worker matches its rendezvous shard of round r from the
// *front* exchange pair, then immediately scatters its sender shard of
// round r+1 into the *back* pair; an O(1) Swap makes the back pair the next
// round's front. Steady-state rounds therefore pay two barriers instead of
// three, and the scatter's random-access chunk writes overlap the match's
// shuffle work instead of each sitting on its own barrier.
//
// Bit-identity with the sequential path is structural, not incidental:
// every draw comes from a stream derived per unit of work
// (rng.Derive(seed_r, domainScatter, node) / (seed_r, domainMatch,
// rendezvous)), so fusing match(r) with scatter(r+1) reorders *when* draws
// happen but never *what* is drawn. TestRunRoundsSeededPipelined pins
// RunRoundsSeeded(seeds, w) == [RunRoundSeeded(seed, w) for seed in seeds]
// bit for bit at workers {1, 2, 4, 8}.
//
// The pipelined path has no liveness predicate on purpose: under churn the
// alive set changes between rounds, so round r+1's scatter may not be
// emitted before round r's deaths are known — exactly the round barrier
// the paper's synchronous model imposes. Filtered rounds stay sequential.

import "fmt"

// RunRoundsSeeded executes len(seeds) seeded rounds pipelined: round r is
// matched while round r+1's requests are already being recorded into a
// second exchange buffer (see the file comment for the fusion argument).
// Results are bit-for-bit identical to calling RunRoundSeeded(seeds[r],
// workers) in sequence, for every workers >= 1. The Service's scratch is
// reused, so a Service still runs one batch at a time.
func (sv *Service) RunRoundsSeeded(seeds []uint64, workers int) ([]RoundResult, error) {
	if workers < 1 {
		return nil, fmt.Errorf("core: pipelined rounds need workers >= 1, got %d", workers)
	}
	if len(seeds) == 0 {
		return nil, nil
	}
	if p, ok := sv.sel.(Preparer); ok {
		if err := p.Prepare(); err != nil {
			return nil, fmt.Errorf("core: selector prepare failed: %w", err)
		}
	}

	n := sv.profile.N()
	eng := &sv.eng
	eng.ensure(n, workers)
	eng.ensureSeeded(workers)
	eng.offersBack.Reset(workers, eng.offers.Part())
	eng.reqsBack.Reset(workers, eng.reqs.Part())
	scratch := func(w int) *workerScratch { return &eng.ws[w] }

	// Prologue: scatter round 0 into the front pair — the only round whose
	// scatter has no previous match to hide behind.
	runPhase(workers, func(w int) {
		eng.ws[w].reset()
		eng.offers.ClearWorker(w)
		eng.reqs.ClearWorker(w)
		eng.scatterSeeded(sv, w, eng.senderCut, seeds[0], nil, &eng.offers, &eng.reqs)
	})

	results := make([]RoundResult, len(seeds))
	for r := range seeds {
		// Round r's control-message counters must be read before the fused
		// fanout resets them for round r+1's scatter.
		offersSent, requestsSent := 0, 0
		for w := 0; w < workers; w++ {
			offersSent += eng.ws[w].offersSent
			requestsSent += eng.ws[w].requestsSent
		}

		eng.sortRound(n, workers)
		eng.rdvCut = balancedCuts(eng.rdvCut, n, workers, func(v int) int {
			return int(eng.offerOff[v+1]-eng.offerOff[v]) + int(eng.reqOff[v+1]-eng.reqOff[v])
		})

		last := r+1 == len(seeds)
		runPhase(workers, func(w int) {
			eng.ws[w].dates = eng.ws[w].dates[:0]
			eng.matchSeeded(w, seeds[r])
			if !last {
				// Fused: record round r+1 into the back pair while other
				// workers are still matching round r.
				eng.ws[w].offersSent = 0
				eng.ws[w].requestsSent = 0
				eng.offersBack.ClearWorker(w)
				eng.reqsBack.ClearWorker(w)
				eng.scatterSeeded(sv, w, eng.senderCut, seeds[r+1], nil, &eng.offersBack, &eng.reqsBack)
			}
		})

		res := mergeDates(n, workers, scratch)
		res.OffersSent = offersSent
		res.RequestsSent = requestsSent
		results[r] = res
		if !last {
			eng.offers.Swap(&eng.offersBack)
			eng.reqs.Swap(&eng.reqsBack)
		}
	}
	return results, nil
}
