package core

import (
	"reflect"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/rng"
)

func TestRunRoundsSeededPipelined(t *testing.T) {
	// Pipelined RunRoundsSeeded(seeds, w) must be bit-identical to running
	// RunRoundSeeded(seed, w) sequentially for every seed — at every worker
	// count, so the fusion of match(r) with scatter(r+1) is provably a pure
	// scheduling change.
	profile, err := bandwidth.Geometric(3000, 8)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewUniformSelector(3000)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(0xBEEF)
	seeds := make([]uint64, 6)
	for i := range seeds {
		seeds[i] = s.Uint64()
	}

	ref := make([]RoundResult, len(seeds))
	{
		svc, err := NewService(profile, sel)
		if err != nil {
			t.Fatal(err)
		}
		for r, seed := range seeds {
			res, err := svc.RunRoundSeeded(seed, 1)
			if err != nil {
				t.Fatal(err)
			}
			ref[r] = res
		}
	}
	if len(ref[0].Dates) == 0 {
		t.Fatal("no dates arranged")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		svc, err := NewService(profile, sel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.RunRoundsSeeded(seeds, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(ref))
		}
		for r := range got {
			if err := ValidateCapacities(got[r], profile); err != nil {
				t.Fatalf("workers=%d round %d: %v", workers, r, err)
			}
			if !reflect.DeepEqual(got[r], ref[r]) {
				t.Fatalf("workers=%d: pipelined round %d diverged from sequential (%d vs %d dates)",
					workers, r, len(got[r].Dates), len(ref[r].Dates))
			}
		}
	}
}

func TestRunRoundsSeededScratchReuse(t *testing.T) {
	// A Service must give the same batch after interleaving every other
	// round path — the back buffers may hold stale chunks from a previous
	// batch and must be cleared per round, not trusted.
	profile := bandwidth.Homogeneous(500, 2)
	sel, _ := NewUniformSelector(500)
	svc, err := NewService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{3, 1, 4, 1, 5}
	first, err := svc.RunRoundsSeeded(seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc.RunRound(rng.New(9))
	if _, err := svc.RunRoundSeeded(77, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RunRoundParallel(rng.NewStreams(5, 2), 2); err != nil {
		t.Fatal(err)
	}
	again, err := svc.RunRoundsSeeded(seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("interleaving other round paths changed a pipelined batch")
	}
	if _, err := svc.RunRoundsSeeded(nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RunRoundsSeeded(seeds, 0); err == nil {
		t.Error("accepted workers = 0")
	}
}
