package core

// This file implements the unified-runner spec for the explicit dating
// handshake: repro.Run(HandshakeConfig{...}) drives the three-step message
// protocol of handshake.go for a fixed number of dating rounds and reports
// the dates it completed, making the handshake runnable through the same
// entrypoint — and the same seed scheme — as every other protocol.

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/run"
	"repro/internal/simnet"
)

// HandshakeConfig parameterizes a message-level dating-service run for the
// unified runner: Rounds dating rounds of the explicit three-step protocol
// (scatter, answer, payload) on a fresh round-synchronous network, with
// per-node streams derived from the run's root seed.
type HandshakeConfig struct {
	// Profile holds the per-node bandwidths; required.
	Profile bandwidth.Profile
	// Selector defaults to uniform over the profile's nodes.
	Selector Selector
	// Rounds is the number of dating rounds to run (each costing three
	// network rounds); 0 means 10.
	Rounds int
}

// Protocol implements run.Spec.
func (c HandshakeConfig) Protocol() string { return "handshake" }

// Execute implements run.Spec: Trajectory is the cumulative completed-date
// count, Sent the dates completed per dating round, and Messages the total
// network traffic including the address-sized control messages — the
// paper's overhead model made measurable. Detail is the simnet.Stats.
// The handshake's network rounds are inherently serial, so the worker
// budget is accepted and unused.
func (c HandshakeConfig) Execute(o *run.Options) (run.Report, error) {
	n := c.Profile.N()
	if n == 0 {
		return run.Report{}, fmt.Errorf("core: handshake run needs a profile")
	}
	sel := c.Selector
	if sel == nil {
		u, err := NewUniformSelector(n)
		if err != nil {
			return run.Report{}, err
		}
		sel = u
	}
	rounds := c.Rounds
	if rounds <= 0 {
		rounds = 10
	}
	h, err := NewHandshake(c.Profile, sel, run.SeedFor(o.Seed, run.DomainHandshake))
	if err != nil {
		return run.Report{}, err
	}
	nw, err := simnet.NewNetwork(n)
	if err != nil {
		return run.Report{}, err
	}

	var rep run.Report
	total := 0
	for r := 1; r <= rounds; r++ {
		dates, err := h.RunRound(nw)
		if err != nil {
			return run.Report{}, err
		}
		total += len(dates)
		rep.Sent = append(rep.Sent, len(dates))
		rep.Trajectory = append(rep.Trajectory, total)
	}
	st := nw.Stats()
	rep.Rounds = rounds
	rep.Completed = true // fixed-length run: finishing is completing
	rep.Messages = st.Sent
	rep.Dropped = st.Dropped
	rep.Clamped = st.Clamped
	rep.Detail = st
	return rep, nil
}
