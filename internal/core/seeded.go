package core

// This file implements the seeded round path: Algorithm 1 on the flat
// engine of engine.go, with the Arranger's worker-count-independent
// randomness scheme ported to the profile round path.
//
// Where RunRoundParallel draws from one stream per worker — making its
// output a function of (seed, workers) — a seeded round derives a
// short-lived stream per *unit of work*: rng.Derive(seed, domainScatter,
// node) for a node's request scatter and rng.Derive(seed, domainMatch,
// rendezvous) for a rendezvous's matching, the exact scheme of
// Arranger.Arrange (same domain tags, same derivation). Whichever worker
// happens to process a node or bucket therefore draws the same values, and
// the round is a pure function of (profile, selector, seed, alive):
// workers is a pure speed knob. In particular, an unfiltered seeded round
// arranges exactly the dates of Arranger.Arrange(profile.Out, profile.In,
// seed, ·) — the test suite pins that equivalence.
//
// The price is reseeding a xoshiro generator once per participating node
// and once per non-empty rendezvous bucket: a two-step Derive chain plus a
// four-step SplitMix64 state expansion each, roughly six extra SplitMix64
// steps per node per round in total. Measured cost: about 25% on a
// unit-bandwidth uniform round at n=100k with one worker (12.3ms vs 8.0ms
// serial-stream); BenchmarkSeededRound tracks it.

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/rng"
)

// RunRoundShared is RunRoundSeeded drawing its worker count from a shared
// budget: the round runs with the caller's worker plus whatever spare
// tokens b has at this moment, released when the round is done. Since the
// seeded path is worker-count independent, whatever the pool hands out is
// a pure speed knob. A nil budget runs serially.
func (sv *Service) RunRoundShared(seed uint64, b *par.Budget) (RoundResult, error) {
	return sv.RunRoundSharedFiltered(seed, b, nil)
}

// RunRoundSharedFiltered is RunRoundShared with the liveness predicate of
// RunRoundSeededFiltered.
func (sv *Service) RunRoundSharedFiltered(seed uint64, b *par.Budget, alive func(i int) bool) (res RoundResult, err error) {
	b.Use(0, func(workers int) {
		res, err = sv.RunRoundSeededFiltered(seed, workers, alive)
	})
	return res, err
}

// RunRoundSeeded executes Algorithm 1 once with per-node/per-rendezvous
// derived randomness: the result is bit-for-bit identical for every
// workers >= 1, so parallelism never changes published numbers. seed alone
// selects the round's randomness (use a fresh seed per round, e.g. drawn
// off a run stream). The Service's scratch is reused, so a Service still
// runs one round at a time.
func (sv *Service) RunRoundSeeded(seed uint64, workers int) (RoundResult, error) {
	return sv.RunRoundSeededFiltered(seed, workers, nil)
}

// RunRoundSeededFiltered is RunRoundSeeded with the liveness predicate of
// RunRoundFiltered. alive is called concurrently from all workers and must
// be safe for concurrent use. Dead nodes neither scatter nor match, and
// requests addressed to them are lost; because every node draws from its
// own derived stream, the surviving nodes' randomness is unaffected by who
// crashed — and still independent of the worker count.
func (sv *Service) RunRoundSeededFiltered(seed uint64, workers int, alive func(i int) bool) (RoundResult, error) {
	if workers < 1 {
		return RoundResult{}, fmt.Errorf("core: seeded round needs workers >= 1, got %d", workers)
	}
	if p, ok := sv.sel.(Preparer); ok {
		if err := p.Prepare(); err != nil {
			return RoundResult{}, fmt.Errorf("core: selector prepare failed: %w", err)
		}
	}

	n := sv.profile.N()
	eng := &sv.eng
	eng.ensure(n, workers)
	eng.ensureSeeded(workers)
	scratch := func(w int) *workerScratch { return &eng.ws[w] }
	cut := eng.senderShards(n, workers, alive)

	// Scatter: worker w draws destinations for its sender shard, reseeding
	// its generator once per live node and recording each pair into the
	// chunk of the destination's owner. The shard cuts only affect which
	// worker does the work, never the draws.
	runPhase(workers, func(w int) {
		eng.ws[w].reset()
		eng.offers.ClearWorker(w)
		eng.reqs.ClearWorker(w)
		eng.scatterSeeded(sv, w, cut, seed, alive, &eng.offers, &eng.reqs)
	})

	// Exchange + sort: identical to the worker-stream path.
	eng.sortRound(n, workers)

	// Match: one derived stream per rendezvous bucket. Buckets with either
	// side empty arrange nothing and consume no randomness, so they are
	// skipped without reseeding — exactly as in Arranger.Arrange.
	eng.rdvCut = balancedCuts(eng.rdvCut, n, workers, func(v int) int {
		return int(eng.offerOff[v+1]-eng.offerOff[v]) + int(eng.reqOff[v+1]-eng.reqOff[v])
	})
	runPhase(workers, func(w int) {
		eng.ws[w].dates = eng.ws[w].dates[:0]
		eng.matchSeeded(w, seed)
	})

	return mergeRound(n, workers, scratch), nil
}

// scatterSeeded runs worker w's share of a seeded scatter pass over the
// sender shard cut[w]..cut[w+1], recording into the given exchange pair
// (the pipelined path points it at the back buffers). The caller resets the
// counters and clears the exchange rows; this only appends.
func (eng *engineScratch) scatterSeeded(sv *Service, w int, cut []int, seed uint64, alive func(i int) bool, offers, reqs *exchInt32) {
	ws := &eng.ws[w]
	out, in := sv.profile.Out, sv.profile.In
	gen, s := eng.seedGens[w], eng.seedStreams[w]
	for i := cut[w]; i < cut[w+1]; i++ {
		if alive != nil && !alive(i) {
			continue
		}
		gen.Seed(rng.Derive(seed, domainScatter, uint64(i)))
		for k := 0; k < out[i]; k++ {
			dest := sv.sel.Pick(s)
			if alive != nil && !alive(dest) {
				continue // lost: rendezvous is down
			}
			offers.Record(w, int32(dest), int32(i))
			ws.offersSent++
		}
		for k := 0; k < in[i]; k++ {
			dest := sv.sel.Pick(s)
			if alive != nil && !alive(dest) {
				continue
			}
			reqs.Record(w, int32(dest), int32(i))
			ws.requestsSent++
		}
	}
}

// matchSeeded runs worker w's share of a seeded match pass over the sorted
// front buffers, appending to the worker's date buffer.
func (eng *engineScratch) matchSeeded(w int, seed uint64) {
	ws := &eng.ws[w]
	gen, s := eng.seedGens[w], eng.seedStreams[w]
	emit := func(sender, receiver int32) {
		ws.dates = append(ws.dates, Date{Sender: int(sender), Receiver: int(receiver)})
	}
	for v := eng.rdvCut[w]; v < eng.rdvCut[w+1]; v++ {
		offers := eng.offersFlat[eng.offerOff[v]:eng.offerOff[v+1]]
		requests := eng.reqFlat[eng.reqOff[v]:eng.reqOff[v+1]]
		if len(offers) == 0 || len(requests) == 0 {
			continue
		}
		gen.Seed(rng.Derive(seed, domainMatch, uint64(v)))
		MatchRendezvous(offers, requests, s, emit)
	}
}

// senderShards returns the sender cuts of a seeded round. Unfiltered rounds
// use the static profile-weight cuts of ensure. Under churn the static cuts
// skew — when crashes concentrate in one id region its workers idle while
// the rest carry the round — so filtered rounds rebalance by *live* weight:
// a dead node weighs zero. Rebalancing only moves work between workers; the
// seeded randomness scheme makes the result independent of the cuts, so the
// output is unchanged (the churn tests pin this bit-for-bit).
func (eng *engineScratch) senderShards(n, workers int, alive func(i int) bool) []int {
	if alive == nil {
		return eng.senderCut
	}
	eng.liveCut = balancedCuts(eng.liveCut, n, workers, func(i int) int {
		if !alive(i) {
			return 0
		}
		return eng.weight(i)
	})
	return eng.liveCut
}

// ensureSeeded sizes the reseedable generators of the seeded round path.
func (eng *engineScratch) ensureSeeded(workers int) {
	for len(eng.seedGens) < workers {
		gen := rng.NewXoshiro256(0)
		eng.seedGens = append(eng.seedGens, gen)
		eng.seedStreams = append(eng.seedStreams, rng.NewWithSource(gen))
	}
}
