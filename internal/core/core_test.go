package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bandwidth"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/stats"
)

func mustService(t *testing.T, p bandwidth.Profile, sel Selector) *Service {
	t.Helper()
	sv, err := NewService(p, sel)
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

func uniformService(t *testing.T, n, b int) *Service {
	t.Helper()
	sel, err := NewUniformSelector(n)
	if err != nil {
		t.Fatal(err)
	}
	return mustService(t, bandwidth.Homogeneous(n, b), sel)
}

func TestSelectorValidation(t *testing.T) {
	if _, err := NewUniformSelector(0); err == nil {
		t.Error("accepted n = 0")
	}
	if _, err := NewWeightedSelector(nil); err == nil {
		t.Error("accepted empty weights")
	}
	if _, err := NewRingSelector(nil); err == nil {
		t.Error("accepted nil ring")
	}
}

func TestNewServiceValidation(t *testing.T) {
	sel, _ := NewUniformSelector(4)
	if _, err := NewService(bandwidth.Homogeneous(5, 1), sel); err == nil {
		t.Error("accepted node-count mismatch")
	}
	if _, err := NewService(bandwidth.Profile{In: []int{0, 1}, Out: []int{1, 1}}, sel); err == nil {
		t.Error("accepted zero bandwidth")
	}
	if _, err := NewService(bandwidth.Homogeneous(4, 1), nil); err == nil {
		t.Error("accepted nil selector")
	}
}

func TestUniformSelectorRange(t *testing.T) {
	sel, _ := NewUniformSelector(7)
	s := rng.New(1)
	for i := 0; i < 1000; i++ {
		if v := sel.Pick(s); v < 0 || v >= 7 {
			t.Fatalf("pick %d out of range", v)
		}
	}
	if sel.N() != 7 {
		t.Fatalf("N = %d", sel.N())
	}
}

func TestWeightedSelectorSkew(t *testing.T) {
	sel, err := NewWeightedSelector([]float64{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(2)
	counts := make([]int, 3)
	for i := 0; i < 100000; i++ {
		counts[sel.Pick(s)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight node picked %d times", counts[1])
	}
	if ratio := float64(counts[2]) / float64(counts[0]); math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio %.2f, want 3", ratio)
	}
}

func TestRingSelectorMatchesIntervals(t *testing.T) {
	ring, err := overlay.NewRing(16, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewRingSelector(ring)
	if err != nil {
		t.Fatal(err)
	}
	if sel.N() != 16 {
		t.Fatalf("N = %d", sel.N())
	}
	w := ring.IntervalWeights()
	s := rng.New(4)
	counts := make([]int, 16)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[sel.Pick(s)]++
	}
	for i := range w {
		got := float64(counts[i]) / draws
		if math.Abs(got-w[i]) > 0.05*w[i]+0.003 {
			t.Errorf("node %d: frequency %v vs weight %v", i, got, w[i])
		}
	}
}

func TestRunRoundCapacityInvariant(t *testing.T) {
	// The paper's core safety claim: communication capabilities are never
	// exceeded, for any profile and distribution.
	s := rng.New(5)
	profiles := []bandwidth.Profile{
		bandwidth.Homogeneous(50, 1),
		bandwidth.Homogeneous(50, 4),
	}
	if p, err := bandwidth.Zipf(50, 1.1, 16, 2, s); err == nil {
		profiles = append(profiles, p)
	} else {
		t.Fatal(err)
	}
	if p, err := bandwidth.Bimodal(50, 5, 10, 1); err == nil {
		profiles = append(profiles, p)
	} else {
		t.Fatal(err)
	}
	for _, p := range profiles {
		sel, _ := NewUniformSelector(p.N())
		sv := mustService(t, p, sel)
		for round := 0; round < 20; round++ {
			res := sv.RunRound(s)
			if err := ValidateCapacities(res, p); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
}

func TestRunRoundCapacityProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, bRaw uint8) bool {
		n := int(nRaw%40) + 2
		b := int(bRaw%4) + 1
		s := rng.New(seed)
		sv := &Service{}
		sel, err := NewUniformSelector(n)
		if err != nil {
			return false
		}
		sv, err = NewService(bandwidth.Homogeneous(n, b), sel)
		if err != nil {
			return false
		}
		res := sv.RunRound(s)
		return ValidateCapacities(res, sv.Profile()) == nil
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRoundRequestCounts(t *testing.T) {
	sv := uniformService(t, 20, 3)
	res := sv.RunRound(rng.New(6))
	if res.OffersSent != 60 || res.RequestsSent != 60 {
		t.Fatalf("sent %d offers / %d requests, want 60/60", res.OffersSent, res.RequestsSent)
	}
}

func TestUniformFractionNearPaper(t *testing.T) {
	// Paper, Section 4: with uniform selection and n requests of each type
	// the average number of dates is "always slightly more than 0.47 n".
	// The exact asymptotic for this process is E[X]/n -> sum over nodes of
	// E[min(Po(1), ...)] — empirically 0.47–0.48. Require [0.45, 0.50] at
	// n = 1000 over 200 rounds.
	const n = 1000
	sv := uniformService(t, n, 1)
	s := rng.New(7)
	var acc stats.Accumulator
	for r := 0; r < 200; r++ {
		res := sv.RunRound(s)
		acc.Add(res.Fraction(n))
	}
	if acc.Mean() < 0.45 || acc.Mean() > 0.50 {
		t.Fatalf("uniform fraction %.4f, want ~0.47", acc.Mean())
	}
	// Concentration (Lemma 2): stddev across rounds should be small.
	if acc.Std() > 0.03 {
		t.Fatalf("fraction stddev %.4f, expected tight concentration", acc.Std())
	}
}

func TestDHTFractionBeatsUniform(t *testing.T) {
	// Paper conjecture (Section 2) + Figure 1: non-uniform distributions
	// arrange MORE dates; DHT interval selection gives >= 0.52 n.
	const n = 500
	s := rng.New(8)
	ring, err := overlay.NewRing(n, s.Split())
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := NewRingSelector(ring)
	sv := mustService(t, bandwidth.Homogeneous(n, 1), sel)
	var acc stats.Accumulator
	for r := 0; r < 200; r++ {
		acc.Add(sv.RunRound(s).Fraction(n))
	}
	if acc.Mean() < 0.50 {
		t.Fatalf("DHT fraction %.4f, paper reports >= 0.52", acc.Mean())
	}
}

func TestPointMassDistribution(t *testing.T) {
	// Extreme case from the paper's load-balancing remark: sending all
	// requests to a single node centralizes the scheme — every offer and
	// demand meet at one rendezvous, so q = min(Bout, Bin) = m dates are
	// arranged (fraction 1.0).
	const n = 100
	sel, err := NewWeightedSelector(append([]float64{1}, make([]float64, n-1)...))
	if err != nil {
		t.Fatal(err)
	}
	sv := mustService(t, bandwidth.Homogeneous(n, 1), sel)
	res := sv.RunRound(rng.New(9))
	if len(res.Dates) != n {
		t.Fatalf("centralized rendezvous arranged %d dates, want %d", len(res.Dates), n)
	}
	if err := ValidateCapacities(res, sv.Profile()); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousProfileFraction(t *testing.T) {
	// Lemma 1 holds for any profile: fraction stays bounded away from 0.
	s := rng.New(10)
	p, err := bandwidth.Zipf(800, 1.0, 32, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := NewUniformSelector(p.N())
	sv := mustService(t, p, sel)
	var acc stats.Accumulator
	for r := 0; r < 50; r++ {
		acc.Add(sv.RunRound(s).Fraction(p.M()))
	}
	if acc.Mean() < 0.30 {
		t.Fatalf("heterogeneous fraction %.4f too low", acc.Mean())
	}
	if acc.Mean() > 1 {
		t.Fatalf("fraction %.4f exceeds the centralized optimum", acc.Mean())
	}
}

func TestFractionGrowsWithLoad(t *testing.T) {
	// Paper: "the ratio E[X]/m is an increasing function of m/n".
	const n = 400
	s := rng.New(11)
	var prev float64
	for _, b := range []int{1, 2, 4, 8} {
		sv := uniformService(t, n, b)
		var acc stats.Accumulator
		for r := 0; r < 60; r++ {
			acc.Add(sv.RunRound(s).Fraction(sv.M()))
		}
		if acc.Mean() <= prev {
			t.Fatalf("fraction did not grow with load: b=%d gives %.4f after %.4f", b, acc.Mean(), prev)
		}
		prev = acc.Mean()
	}
	if prev < 0.8 {
		t.Fatalf("fraction at m/n=8 is %.4f, expected near saturation", prev)
	}
}

func TestRunRoundFilteredExcludesDead(t *testing.T) {
	const n = 60
	sv := uniformService(t, n, 2)
	s := rng.New(12)
	dead := map[int]bool{3: true, 7: true, 20: true}
	alive := func(i int) bool { return !dead[i] }
	for round := 0; round < 10; round++ {
		res := sv.RunRoundFiltered(s, alive)
		for _, d := range res.Dates {
			if dead[d.Sender] || dead[d.Receiver] {
				t.Fatalf("date %v involves a dead node", d)
			}
		}
		if err := ValidateCapacities(res, sv.Profile()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunRoundFilteredAllDead(t *testing.T) {
	sv := uniformService(t, 10, 1)
	res := sv.RunRoundFiltered(rng.New(13), func(int) bool { return false })
	if len(res.Dates) != 0 || res.OffersSent != 0 {
		t.Fatalf("dead network arranged %d dates", len(res.Dates))
	}
}

func TestMatchRendezvousSizes(t *testing.T) {
	s := rng.New(14)
	cases := []struct{ offers, requests, want int }{
		{0, 0, 0}, {3, 0, 0}, {0, 5, 0}, {3, 3, 3}, {5, 2, 2}, {1, 9, 1},
	}
	for _, c := range cases {
		offers := make([]int32, c.offers)
		requests := make([]int32, c.requests)
		for i := range offers {
			offers[i] = int32(i)
		}
		for i := range requests {
			requests[i] = int32(100 + i)
		}
		got := 0
		MatchRendezvous(offers, requests, s, func(_, _ int32) { got++ })
		if got != c.want {
			t.Errorf("(%d offers, %d requests): %d dates, want %d", c.offers, c.requests, got, c.want)
		}
	}
}

func TestMatchRendezvousNoDuplicates(t *testing.T) {
	prop := func(seed uint64, so, sr uint8) bool {
		str := rng.New(seed)
		nOffers := int(so % 20)
		nReqs := int(sr % 20)
		offers := make([]int32, nOffers)
		requests := make([]int32, nReqs)
		for i := range offers {
			offers[i] = int32(i)
		}
		for i := range requests {
			requests[i] = int32(1000 + i)
		}
		usedS := map[int32]bool{}
		usedR := map[int32]bool{}
		okAll := true
		MatchRendezvous(offers, requests, str, func(sender, receiver int32) {
			if usedS[sender] || usedR[receiver] {
				okAll = false
			}
			usedS[sender] = true
			usedR[receiver] = true
			if sender < 0 || sender >= int32(nOffers) || receiver < 1000 || receiver >= int32(1000+nReqs) {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingUniformity(t *testing.T) {
	// Lemma 3 ingredient: with 2 offers {0,1} and 2 requests {10,11}, the
	// two perfect matchings must be equally likely.
	s := rng.New(16)
	counts := map[[2]int32]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		offers := []int32{0, 1}
		requests := []int32{10, 11}
		var first [2]int32
		got := 0
		MatchRendezvous(offers, requests, s, func(sender, receiver int32) {
			if got == 0 {
				first = [2]int32{sender, receiver}
			}
			got++
		})
		if got != 2 {
			t.Fatalf("expected 2 dates, got %d", got)
		}
		counts[first]++
	}
	// Four equally likely (sender, receiver) first-pairs.
	want := float64(draws) / 4
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Errorf("pair %v count %d, want %.0f +/- 6%%", pair, c, want)
		}
	}
}

func TestSubsetSelectionUniform(t *testing.T) {
	// With 3 offers and 1 request, each offer must be matched with
	// probability 1/3 ("choose uniformly at random q requests of each type").
	s := rng.New(17)
	counts := make([]int, 3)
	const draws = 60000
	for i := 0; i < draws; i++ {
		offers := []int32{0, 1, 2}
		requests := []int32{9}
		MatchRendezvous(offers, requests, s, func(sender, _ int32) {
			counts[sender]++
		})
	}
	want := float64(draws) / 3
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("offer %d matched %d times, want %.0f", i, c, want)
		}
	}
}

func TestValidateCapacitiesDetectsViolations(t *testing.T) {
	p := bandwidth.Homogeneous(3, 1)
	res := RoundResult{
		Dates:      []Date{{Sender: 0, Receiver: 1}, {Sender: 0, Receiver: 2}},
		PerNodeOut: []int{2, 0, 0},
		PerNodeIn:  []int{0, 1, 1},
	}
	if err := ValidateCapacities(res, p); err == nil {
		t.Fatal("over-capacity sender accepted")
	}
	res2 := RoundResult{
		Dates:      []Date{{Sender: 5, Receiver: 0}},
		PerNodeOut: []int{0, 0, 0},
		PerNodeIn:  []int{1, 0, 0},
	}
	if err := ValidateCapacities(res2, p); err == nil {
		t.Fatal("invalid node accepted")
	}
}

func TestServiceReuseAcrossRounds(t *testing.T) {
	// Scratch reuse must not leak state: total dates over rounds with a
	// fresh service each round equals (statistically) reusing one service.
	s1, s2 := rng.New(18), rng.New(18)
	svReused := uniformService(t, 200, 1)
	var reused, fresh int
	for r := 0; r < 30; r++ {
		reused += len(svReused.RunRound(s1).Dates)
		svFresh := uniformService(t, 200, 1)
		fresh += len(svFresh.RunRound(s2).Dates)
	}
	if reused != fresh {
		t.Fatalf("reused service diverged: %d vs %d dates (same seed)", reused, fresh)
	}
}

func TestPerNodeHypergeometricShape(t *testing.T) {
	// Consequence of Lemma 3: conditional on k total dates, a fixed node's
	// matched outgoing units follow a hypergeometric law; unconditionally
	// each outgoing unit is matched with the same probability p ~ E[X]/Bout.
	// Check the unconditional marginal: every node's long-run matched-out
	// rate should be (nearly) identical.
	const n, rounds = 50, 4000
	sv := uniformService(t, n, 1)
	s := rng.New(19)
	matched := make([]int, n)
	total := 0
	for r := 0; r < rounds; r++ {
		res := sv.RunRound(s)
		for i := 0; i < n; i++ {
			matched[i] += res.PerNodeOut[i]
		}
		total += len(res.Dates)
	}
	mean := float64(total) / float64(n)
	for i, c := range matched {
		if math.Abs(float64(c)-mean) > 0.08*mean {
			t.Errorf("node %d matched %d times, mean %.0f (symmetry violated)", i, c, mean)
		}
	}
}
