package core

// Golden pins for the radix-partitioned engine: the FNV-1a hashes below
// were produced by the pre-radix engine (per-worker length-n count arrays,
// commit 35adb4e) on the exact configurations replayed here. They freeze
// the engine's output bit-for-bit — Date order included — at every worker
// count, so any rewrite of the scatter/exchange/sort pipeline that changes
// a single bucket's layout fails loudly.

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/rng"
)

// hashRound folds a RoundResult — counters, the full date sequence, and the
// per-node load vectors — into one order-sensitive hash.
func hashRound(res RoundResult) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wr := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wr(res.OffersSent)
	wr(res.RequestsSent)
	wr(len(res.Dates))
	for _, d := range res.Dates {
		wr(d.Sender)
		wr(d.Receiver)
	}
	for _, c := range res.PerNodeOut {
		wr(c)
	}
	for _, c := range res.PerNodeIn {
		wr(c)
	}
	return h.Sum64()
}

func TestEngineGoldenSerial(t *testing.T) {
	// Three consecutive serial-stream rounds at n=1000, b=2.
	want := []uint64{0x6420e5323018ee4d, 0x33c6b6739a16387, 0x54e282f165b8cd37}
	const n, seed = 1000, 12345
	sel, err := NewUniformSelector(n)
	if err != nil {
		t.Fatal(err)
	}
	svc := mustService(t, bandwidth.Homogeneous(n, 2), sel)
	s := rng.New(seed)
	for r, w := range want {
		if got := hashRound(svc.RunRound(s)); got != w {
			t.Fatalf("serial round %d: hash %#x, want %#x (pre-radix engine output changed)", r, got, w)
		}
	}
}

func TestEngineGoldenParallel(t *testing.T) {
	// Three worker-stream rounds at each of workers {1, 2, 4, 8}: the
	// parallel path's output depends on (seed, workers) by design, so every
	// worker count is pinned separately.
	want := map[int][]uint64{
		1: {0xdf560a1ee17fbc10, 0xd49327b9c7ba8250, 0xf9110a9c8568b5be},
		2: {0xd982ed2b95752d3, 0x46df575c72615b5d, 0x1af4e9055e6f0855},
		4: {0xd6de7596887085a8, 0x1821e36f06b2f91e, 0xaf492d406bed3b06},
		8: {0x8113d536ba2c38aa, 0xbe8784a464f1c658, 0xea9388ddbfe54ee9},
	}
	const n, seed = 1000, 12345
	sel, err := NewUniformSelector(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		svc := mustService(t, bandwidth.Homogeneous(n, 2), sel)
		streams := rng.NewStreams(seed, workers)
		for r, w := range want[workers] {
			res, err := svc.RunRoundParallel(streams, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got := hashRound(res); got != w {
				t.Fatalf("workers=%d round %d: hash %#x, want %#x (pre-radix engine output changed)",
					workers, r, got, w)
			}
		}
	}
}

func TestEngineGoldenFiltered(t *testing.T) {
	// One filtered round (every fifth node dead) at workers 1 and 4.
	want := map[int]uint64{1: 0x840c66fe7df68179, 4: 0x946b48af6e94507c}
	const n, seed = 1000, 12346
	sel, err := NewUniformSelector(n)
	if err != nil {
		t.Fatal(err)
	}
	alive := func(i int) bool { return i%5 != 0 }
	for _, workers := range []int{1, 4} {
		svc := mustService(t, bandwidth.Homogeneous(n, 2), sel)
		streams := rng.NewStreams(seed, workers)
		res, err := svc.RunRoundParallelFiltered(streams, workers, alive)
		if err != nil {
			t.Fatal(err)
		}
		if got := hashRound(res); got != want[workers] {
			t.Fatalf("filtered workers=%d: hash %#x, want %#x (pre-radix engine output changed)",
				workers, got, want[workers])
		}
	}
}

func TestEngineGoldenSkewed(t *testing.T) {
	// A Zipf profile under a weighted selector at workers {1, 2, 4, 8}:
	// skewed sender shards and non-uniform destination load exercise the
	// radix exchange's unbalanced chunks.
	want := map[int]uint64{
		1: 0x5f01256cc85857e2,
		2: 0xdfcbdbf499ac1b1f,
		4: 0x4adb5e9996aa5629,
		8: 0xe53ae3872081a326,
	}
	s := rng.New(7)
	p, err := bandwidth.Zipf(700, 1.1, 8, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, p.N())
	for i := range weights {
		weights[i] = float64(i%5 + 1)
	}
	sel, err := NewWeightedSelector(weights)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		svc := mustService(t, p, sel)
		streams := rng.NewStreams(12347, workers)
		res, err := svc.RunRoundParallel(streams, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := hashRound(res); got != want[workers] {
			t.Fatalf("zipf workers=%d: hash %#x, want %#x (pre-radix engine output changed)",
				workers, got, want[workers])
		}
	}
}
