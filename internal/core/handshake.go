package core

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// Message kinds of the decentralized dating handshake. The paper's overhead
// claim — control messages carry about one IP address — corresponds to the
// single int64 address word these messages use.
const (
	KindOffer   uint8 = 1 // sending request: "I can send one unit"
	KindRequest uint8 = 2 // receiving request: "I can receive one unit"
	KindAnswer  uint8 = 3 // rendezvous answer to an offer; A = receiver or -1
	KindPayload uint8 = 4 // the actual unit-size message
)

// Handshake executes dating-service rounds as an explicit message protocol
// on a simnet.Network, one goroutine-free state machine per node. Each
// dating round costs three network rounds (scatter, answer, payload),
// exposing the real control-message overhead that the flat RunRound hides.
type Handshake struct {
	profile bandwidth.Profile
	sel     Selector
	streams []*rng.Stream
}

// NewHandshake builds a message-level dating service. The per-node streams
// are derived from seed, so a Handshake run is reproducible.
func NewHandshake(p bandwidth.Profile, sel Selector, seed uint64) (*Handshake, error) {
	if sel == nil {
		return nil, fmt.Errorf("core: handshake needs a selector")
	}
	if _, err := p.Ratio(); err != nil {
		return nil, err
	}
	if p.N() != sel.N() {
		return nil, fmt.Errorf("core: profile has %d nodes but selector addresses %d", p.N(), sel.N())
	}
	return &Handshake{
		profile: p,
		sel:     sel,
		streams: rng.NewStreams(seed, p.N()),
	}, nil
}

// RunRound performs one full dating round (three network rounds) on nw and
// returns the dates realized by delivered payload messages. Crashed nodes
// drop out naturally: the network discards their traffic.
func (h *Handshake) RunRound(nw *simnet.Network) ([]Date, error) {
	n := h.profile.N()
	if nw.N() != n {
		return nil, fmt.Errorf("core: network has %d nodes, profile has %d", nw.N(), n)
	}

	// Network round 1: scatter offers and demands.
	for i := 0; i < n; i++ {
		if !nw.Alive(i) {
			continue
		}
		s := h.streams[i]
		for k := 0; k < h.profile.Out[i]; k++ {
			nw.Send(simnet.Message{From: i, To: h.sel.Pick(s), Kind: KindOffer})
		}
		for k := 0; k < h.profile.In[i]; k++ {
			nw.Send(simnet.Message{From: i, To: h.sel.Pick(s), Kind: KindRequest})
		}
	}
	nw.Deliver()

	// Network round 2: every rendezvous matches and answers the offers.
	for v := 0; v < n; v++ {
		if !nw.Alive(v) {
			continue
		}
		var offers, requests []int32
		for _, m := range nw.Inbox(v) {
			switch m.Kind {
			case KindOffer:
				offers = append(offers, int32(m.From))
			case KindRequest:
				requests = append(requests, int32(m.From))
			}
		}
		q := len(offers)
		if len(requests) < q {
			q = len(requests)
		}
		MatchRendezvous(offers, requests, h.streams[v], func(sender, receiver int32) {
			nw.Send(simnet.Message{From: v, To: int(sender), Kind: KindAnswer, A: int64(receiver)})
		})
		// Algorithm 1 answers every offer, matched or not; unmatched offers
		// learn that sending is not possible this round.
		for _, o := range offers[q:] {
			nw.Send(simnet.Message{From: v, To: int(o), Kind: KindAnswer, A: -1})
		}
	}
	nw.Deliver()

	// Network round 3: matched senders transfer the payload.
	for i := 0; i < n; i++ {
		if !nw.Alive(i) {
			continue
		}
		for _, m := range nw.Inbox(i) {
			if m.Kind == KindAnswer && m.A >= 0 {
				nw.Send(simnet.Message{From: i, To: int(m.A), Kind: KindPayload})
			}
		}
	}
	nw.Deliver()

	// Collect the dates that actually completed.
	var dates []Date
	for v := 0; v < n; v++ {
		for _, m := range nw.Inbox(v) {
			if m.Kind == KindPayload {
				dates = append(dates, Date{Sender: m.From, Receiver: v})
			}
		}
	}
	return dates, nil
}
