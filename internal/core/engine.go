package core

// This file implements the flat round engine shared by the serial and
// parallel execution paths of Algorithm 1.
//
// Instead of appending each request to a per-rendezvous slice (one heap
// object per node, pointer-chasing in the match pass), the engine lays the
// round out as a counting sort keyed by rendezvous:
//
//	scatter  each worker draws destinations for a contiguous shard of
//	         senders and records (dest, sender) pairs plus a per-worker
//	         per-destination count;
//	offsets  one serial scan turns the counts into a global offset table
//	         (bucket v of each kind is the contiguous region
//	         flat[off[v]:off[v+1]]) and into per-worker write cursors;
//	fill     each worker replays its recorded pairs, writing sender ids
//	         into its own disjoint cursor ranges;
//	match    each worker runs MatchRendezvous over a contiguous shard of
//	         rendezvous buckets, appending to a private date buffer;
//	merge    date buffers are concatenated in worker order and the
//	         per-node counters are rebuilt from the merged dates.
//
// Bucket v always holds its requests in global sender order (worker shards
// are contiguous sender ranges, visited in order within a worker), so the
// layout — and therefore the whole round — is a pure function of
// (profile, selector, worker streams, workers, alive). Results are exactly
// reproducible for a fixed (seed, workers) pair, on any GOMAXPROCS, under
// any goroutine schedule.
//
// The engine assumes fewer than 2^31 requests of each kind per round
// (offsets are int32); each recorded request already costs 8 bytes of
// scratch, so this bound is far beyond any round that fits in memory.

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/rng"
)

// Preparer is an optional Selector extension: selectors whose Pick would
// lazily mutate shared state (e.g. DynamicRingSelector rebuilding its ring
// snapshot) implement Prepare so the parallel engine can force that work to
// happen once, before workers fan out. Selectors without Prepare must be
// read-only under Pick.
type Preparer interface {
	// Prepare brings the selector to a state where concurrent Pick calls
	// with distinct streams are safe.
	Prepare() error
}

// workerScratch is the per-worker slice of the engine state. Workers only
// ever touch their own scratch (plus disjoint regions of the shared flat
// arrays), so no locking is needed.
type workerScratch struct {
	// Recorded scatter output, in sender order: request k of the shard was
	// addressed to dest[k] by sender[k]. Requests lost to a dead rendezvous
	// are never recorded.
	offerDest   []int32
	offerSender []int32
	reqDest     []int32
	reqSender   []int32

	// Per-destination counts of this worker's recorded requests; the offset
	// pass rewrites them in place into absolute write cursors for the fill
	// pass.
	offerCount []int32
	reqCount   []int32

	dates        []Date
	offersSent   int
	requestsSent int

	// blockOff/blockReq carry worker w's destination-block totals (then
	// block start offsets) through the two-level scan of
	// countingOffsetsParallel; dead on the serial path.
	blockOff int32
	blockReq int32
}

func (ws *workerScratch) reset(n int) {
	ws.offerDest = ws.offerDest[:0]
	ws.offerSender = ws.offerSender[:0]
	ws.reqDest = ws.reqDest[:0]
	ws.reqSender = ws.reqSender[:0]
	ws.dates = ws.dates[:0]
	ws.offersSent = 0
	ws.requestsSent = 0
	if len(ws.offerCount) != n {
		ws.offerCount = make([]int32, n)
		ws.reqCount = make([]int32, n)
		return
	}
	for i := range ws.offerCount {
		ws.offerCount[i] = 0
		ws.reqCount[i] = 0
	}
}

// engineScratch is the round state a Service reuses across rounds. It grows
// to the largest (n, workers) seen and is never shared between Services.
type engineScratch struct {
	ws         []workerScratch
	offerOff   []int32 // len n+1: offers bucket v is offersFlat[offerOff[v]:offerOff[v+1]]
	reqOff     []int32
	offersFlat []int32
	reqFlat    []int32
	senderCut  []int // len workers+1: worker w scatters senders [cut[w], cut[w+1])
	rdvCut     []int // len workers+1: worker w matches rendezvous [cut[w], cut[w+1])
	one        [1]*rng.Stream

	// Reseedable per-worker generators for the per-node/per-bucket derived
	// streams of the seeded round path (see seeded.go); sized lazily.
	seedGens    []*rng.Xoshiro256
	seedStreams []*rng.Stream

	// weight is the sender-shard balance weight bout(i)+bin(i); set by
	// NewService (engineScratch does not hold the profile).
	weight     func(i int) int
	cutWorkers int // workers count senderCut was computed for, 0 if stale
}

// RunRoundParallel executes Algorithm 1 once across workers goroutines,
// using streams[w] as worker w's private randomness for both the scatter
// and the match pass. len(streams) must be at least workers; derive the
// streams once with rng.NewStreams(seed, workers) and reuse them across
// rounds — their evolution stays deterministic.
//
// The result is exactly reproducible for a fixed (stream seeds, workers)
// pair and satisfies the same capacity invariants as RunRound; different
// worker counts give different (equally distributed) rounds. The Service's
// scratch is reused, so a Service still runs one round at a time.
func (sv *Service) RunRoundParallel(streams []*rng.Stream, workers int) (RoundResult, error) {
	return sv.RunRoundParallelFiltered(streams, workers, nil)
}

// RunRoundParallelFiltered is RunRoundParallel with the liveness predicate
// of RunRoundFiltered. alive is called concurrently from all workers and
// must be safe for concurrent use (in practice: a pure read of state that
// does not change during the round).
func (sv *Service) RunRoundParallelFiltered(streams []*rng.Stream, workers int, alive func(i int) bool) (RoundResult, error) {
	if workers < 1 {
		return RoundResult{}, fmt.Errorf("core: parallel round needs workers >= 1, got %d", workers)
	}
	if len(streams) < workers {
		return RoundResult{}, fmt.Errorf("core: parallel round needs one stream per worker: %d streams < %d workers", len(streams), workers)
	}
	for w, s := range streams[:workers] {
		if s == nil {
			return RoundResult{}, fmt.Errorf("core: worker %d has a nil stream", w)
		}
	}
	if p, ok := sv.sel.(Preparer); ok {
		if err := p.Prepare(); err != nil {
			return RoundResult{}, fmt.Errorf("core: selector prepare failed: %w", err)
		}
	}
	return sv.runEngine(streams[:workers], workers, alive), nil
}

// runPhase fans one phase of a round out across workers goroutines;
// phases are separated by barriers. Shared by the Service round engine and
// the Arranger (and, via par.Do, the live message runtime).
func runPhase(workers int, f func(w int)) {
	par.Do(workers, f)
}

// countingOffsets is the serial offset pass shared by the Service engine
// and the Arranger: one scan builds the global bucket offsets and turns
// each worker's per-destination counts into its absolute write cursors,
// partitioning every bucket as (worker 0's senders, worker 1's senders,
// ...) — i.e. global sender order, since worker shards are contiguous
// ascending sender ranges. scratch(w) yields worker w's scratch; offerOff
// and reqOff must have length n+1. Parallel rounds use
// countingOffsetsParallel, which computes the same function without the
// serial O(workers*n) bottleneck.
func countingOffsets(n, workers int, scratch func(w int) *workerScratch, offerOff, reqOff []int32) (offTotal, reqTotal int32) {
	for v := 0; v < n; v++ {
		offerOff[v] = offTotal
		reqOff[v] = reqTotal
		for w := 0; w < workers; w++ {
			ws := scratch(w)
			c := ws.offerCount[v]
			ws.offerCount[v] = offTotal
			offTotal += c
			c = ws.reqCount[v]
			ws.reqCount[v] = reqTotal
			reqTotal += c
		}
	}
	offerOff[n] = offTotal
	reqOff[n] = reqTotal
	return offTotal, reqTotal
}

// countingOffsetsParallel computes exactly the same offsets and cursors as
// countingOffsets with a two-level prefix sum, removing the round's only
// serial O(workers*n) pass. The destination space is cut into one block per
// worker; level 1 sums each block's counts in parallel, a (tiny) serial
// scan prefixes the per-block totals, and level 2 resolves each block's
// per-destination cursors in parallel from its block offset. Both levels
// visit the same (destination, worker) cells in the same order as the
// serial scan, so the result is bit-identical.
func countingOffsetsParallel(n, workers int, scratch func(w int) *workerScratch, offerOff, reqOff []int32) (offTotal, reqTotal int32) {
	bcut := func(p int) int { return n * p / workers }
	runPhase(workers, func(p int) {
		var ot, rt int32
		for v := bcut(p); v < bcut(p+1); v++ {
			for w := 0; w < workers; w++ {
				ws := scratch(w)
				ot += ws.offerCount[v]
				rt += ws.reqCount[v]
			}
		}
		ps := scratch(p)
		ps.blockOff = ot
		ps.blockReq = rt
	})
	// Serial prefix over the per-block totals, rewritten in place into each
	// block's start offset (worker p's scratch carries block p's values).
	for p := 0; p < workers; p++ {
		ps := scratch(p)
		ps.blockOff, offTotal = offTotal, offTotal+ps.blockOff
		ps.blockReq, reqTotal = reqTotal, reqTotal+ps.blockReq
	}
	runPhase(workers, func(p int) {
		ps := scratch(p)
		ot, rt := ps.blockOff, ps.blockReq
		for v := bcut(p); v < bcut(p+1); v++ {
			offerOff[v] = ot
			reqOff[v] = rt
			for w := 0; w < workers; w++ {
				ws := scratch(w)
				c := ws.offerCount[v]
				ws.offerCount[v] = ot
				ot += c
				c = ws.reqCount[v]
				ws.reqCount[v] = rt
				rt += c
			}
		}
	})
	offerOff[n] = offTotal
	reqOff[n] = reqTotal
	return offTotal, reqTotal
}

// buildOffsets picks the offset pass for the round's worker count: the
// two-level parallel scan when workers can share the work, the plain serial
// scan otherwise. Both compute identical bits.
func buildOffsets(n, workers int, scratch func(w int) *workerScratch, offerOff, reqOff []int32) (int32, int32) {
	if workers > 1 {
		return countingOffsetsParallel(n, workers, scratch, offerOff, reqOff)
	}
	return countingOffsets(n, workers, scratch, offerOff, reqOff)
}

// replayFill is the fill pass shared by the Service engine and the
// Arranger: each worker replays its recorded (dest, sender) pairs into its
// disjoint cursor ranges of the flat arrays.
func replayFill(workers int, scratch func(w int) *workerScratch, offersFlat, reqFlat []int32) {
	runPhase(workers, func(w int) {
		ws := scratch(w)
		for idx, d := range ws.offerDest {
			offersFlat[ws.offerCount[d]] = ws.offerSender[idx]
			ws.offerCount[d]++
		}
		for idx, d := range ws.reqDest {
			reqFlat[ws.reqCount[d]] = ws.reqSender[idx]
			ws.reqCount[d]++
		}
	})
}

// runEngine is the shared round body.
func (sv *Service) runEngine(streams []*rng.Stream, workers int, alive func(i int) bool) RoundResult {
	n := sv.profile.N()
	eng := &sv.eng
	eng.ensure(n, workers)
	scratch := func(w int) *workerScratch { return &eng.ws[w] }

	// Scatter: worker w draws destinations for its sender shard.
	out, in := sv.profile.Out, sv.profile.In
	runPhase(workers, func(w int) {
		ws := &eng.ws[w]
		ws.reset(n)
		s := streams[w]
		for i := eng.senderCut[w]; i < eng.senderCut[w+1]; i++ {
			if alive != nil && !alive(i) {
				continue
			}
			for k := 0; k < out[i]; k++ {
				dest := sv.sel.Pick(s)
				if alive != nil && !alive(dest) {
					continue // lost: rendezvous is down
				}
				ws.offerDest = append(ws.offerDest, int32(dest))
				ws.offerSender = append(ws.offerSender, int32(i))
				ws.offerCount[dest]++
				ws.offersSent++
			}
			for k := 0; k < in[i]; k++ {
				dest := sv.sel.Pick(s)
				if alive != nil && !alive(dest) {
					continue
				}
				ws.reqDest = append(ws.reqDest, int32(dest))
				ws.reqSender = append(ws.reqSender, int32(i))
				ws.reqCount[dest]++
				ws.requestsSent++
			}
		}
	})

	// Offsets and fill: counting-sort the recorded requests into one
	// contiguous buffer per kind (see countingOffsets for the layout).
	offTotal, reqTotal := buildOffsets(n, workers, scratch, eng.offerOff, eng.reqOff)
	eng.offersFlat = grow(eng.offersFlat, int(offTotal))
	eng.reqFlat = grow(eng.reqFlat, int(reqTotal))
	replayFill(workers, scratch, eng.offersFlat, eng.reqFlat)

	// Match: shard rendezvous nodes across workers, balanced by bucket
	// size (the shuffle cost of MatchRendezvous is linear in it).
	eng.rdvCut = balancedCuts(eng.rdvCut, n, workers, func(v int) int {
		return int(eng.offerOff[v+1]-eng.offerOff[v]) + int(eng.reqOff[v+1]-eng.reqOff[v])
	})
	runPhase(workers, func(w int) {
		ws := &eng.ws[w]
		s := streams[w]
		emit := func(sender, receiver int32) {
			ws.dates = append(ws.dates, Date{Sender: int(sender), Receiver: int(receiver)})
		}
		for v := eng.rdvCut[w]; v < eng.rdvCut[w+1]; v++ {
			offers := eng.offersFlat[eng.offerOff[v]:eng.offerOff[v+1]]
			requests := eng.reqFlat[eng.reqOff[v]:eng.reqOff[v+1]]
			MatchRendezvous(offers, requests, s, emit)
		}
	})

	return mergeRound(n, workers, scratch)
}

// mergeRound concatenates per-worker dates in worker order and rebuilds the
// per-node counters from the merged list; shared by the worker-stream and
// the seeded round paths.
func mergeRound(n, workers int, scratch func(w int) *workerScratch) RoundResult {
	res := RoundResult{
		PerNodeOut: make([]int, n),
		PerNodeIn:  make([]int, n),
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += len(scratch(w).dates)
	}
	res.Dates = make([]Date, 0, total)
	for w := 0; w < workers; w++ {
		ws := scratch(w)
		res.Dates = append(res.Dates, ws.dates...)
		res.OffersSent += ws.offersSent
		res.RequestsSent += ws.requestsSent
	}
	for _, d := range res.Dates {
		res.PerNodeOut[d.Sender]++
		res.PerNodeIn[d.Receiver]++
	}
	return res
}

// ensure sizes the scratch for an (n, workers) round and recomputes the
// sender shard boundaries when the worker count changes. Sender shards are
// balanced by per-node request weight bout(i)+bin(i), so skewed profiles
// still split evenly.
func (eng *engineScratch) ensure(n, workers int) {
	if len(eng.ws) < workers {
		eng.ws = append(eng.ws, make([]workerScratch, workers-len(eng.ws))...)
	}
	if len(eng.offerOff) != n+1 {
		eng.offerOff = make([]int32, n+1)
		eng.reqOff = make([]int32, n+1)
		eng.cutWorkers = 0
	}
	if eng.cutWorkers != workers {
		// The profile is fixed for the Service's lifetime, so the cuts only
		// depend on the worker count; eng.weight is set by NewService.
		eng.senderCut = balancedCuts(eng.senderCut, n, workers, eng.weight)
		eng.cutWorkers = workers
	}
}

// grow returns s resliced to length size, reallocating only when needed.
func grow(s []int32, size int) []int32 {
	if cap(s) >= size {
		return s[:size]
	}
	return make([]int32, size)
}

// balancedCuts splits [0, n) into parts contiguous ranges of roughly equal
// total weight, returning the parts+1 boundaries (reusing cuts). Empty
// ranges are possible when parts > n or the weight is concentrated; they
// are valid (the worker simply does nothing). The result is a pure
// function of its inputs, keeping shard assignment deterministic.
func balancedCuts(cuts []int, n, parts int, weight func(i int) int) []int {
	cuts = append(cuts[:0], 0)
	var total int64
	for i := 0; i < n; i++ {
		total += int64(weight(i))
	}
	var acc int64
	i := 0
	for p := 1; p < parts; p++ {
		target := total * int64(p) / int64(parts)
		for i < n && acc < target {
			acc += int64(weight(i))
			i++
		}
		cuts = append(cuts, i)
	}
	return append(cuts, n)
}
