package core

// This file implements the flat round engine shared by the serial and
// parallel execution paths of Algorithm 1.
//
// Instead of appending each request to a per-rendezvous slice (one heap
// object per node, pointer-chasing in the match pass), the engine lays the
// round out on the owner-range exchange kernel of internal/exch: a
// radix-partitioned counting sort keyed by rendezvous. Workers own two
// kinds of contiguous ranges: a *sender* shard (which nodes they scatter
// for) and a *destination* range (which rendezvous buckets they build,
// exch.Partition's uniform id cuts). A round runs as:
//
//	scatter   each worker draws destinations for a contiguous shard of
//	          senders and records every emitted (dest, sender) pair into the
//	          exchange chunk of the destination's owner — one small buffer
//	          per (worker, owner) pair, filled in scan order;
//	exchange  exch.Prefix — a tiny serial pass over each owner's incoming
//	          chunk lengths (O(workers²), no length-n scan) prefixed into
//	          per-owner base offsets in the flat output arrays;
//	sort      exch.Fill per owner — each owner counting-sorts its own
//	          destination range (count array covering only that range,
//	          bucket v of each kind ends up as flat[off[v]:off[v+1]]),
//	          replaying the chunks in worker order;
//	match     each worker runs MatchRendezvous over a contiguous shard of
//	          rendezvous buckets, appending to a private date buffer;
//	merge     date buffers are concatenated in worker order and the
//	          per-node counters are rebuilt from the merged dates.
//
// Because chunks are recorded in scan order within a worker, worker sender
// shards are contiguous ascending ranges, and each owner replays chunks in
// worker order, bucket v always holds its requests in global sender order —
// exactly the layout of the pre-radix engine. The layout — and therefore
// the whole round — is a pure function of (profile, selector, worker
// streams, workers, alive): results are exactly reproducible for a fixed
// (seed, workers) pair, on any GOMAXPROCS, under any goroutine schedule.
//
// Memory is O(n + requests) regardless of the worker count: the owners'
// count arrays partition [0, n) (one length-(n/workers) array each, not one
// length-n array per worker), and the chunk buffers together hold exactly
// the round's recorded requests.
//
// The engine assumes fewer than 2^31 requests of each kind per round
// (offsets are int32); each recorded request already costs 8 bytes of
// scratch, so this bound is far beyond any round that fits in memory.

import (
	"fmt"

	"repro/internal/exch"
	"repro/internal/par"
	"repro/internal/rng"
)

// Preparer is an optional Selector extension: selectors whose Pick would
// lazily mutate shared state (e.g. DynamicRingSelector rebuilding its ring
// snapshot) implement Prepare so the parallel engine can force that work to
// happen once, before workers fan out. Selectors without Prepare must be
// read-only under Pick.
type Preparer interface {
	// Prepare brings the selector to a state where concurrent Pick calls
	// with distinct streams are safe.
	Prepare() error
}

// exchInt32 shortens the request-exchange type: keys are rendezvous ids,
// values sender ids.
type exchInt32 = exch.Exchange[int32]

// workerScratch is the per-worker slice of the engine state that is not
// part of the request exchange: the private date buffer of the match pass
// and the control-message counters of the scatter pass.
type workerScratch struct {
	dates        []Date
	offersSent   int
	requestsSent int
}

// reset readies the scratch for a round.
func (ws *workerScratch) reset() {
	ws.dates = ws.dates[:0]
	ws.offersSent = 0
	ws.requestsSent = 0
}

// engineScratch is the round state a Service reuses across rounds. It grows
// to the largest (n, workers) seen and is never shared between Services.
type engineScratch struct {
	ws []workerScratch

	// offers/reqs are the owner-range exchanges of the round's two request
	// kinds: keys are rendezvous ids, values sender ids.
	offers exch.Exchange[int32]
	reqs   exch.Exchange[int32]
	// offersBack/reqsBack are the ping-pong twins used by the pipelined
	// multi-round path (rounds.go): while offers/reqs hold round r being
	// matched, workers record round r+1 into the back pair, then Swap.
	offersBack exch.Exchange[int32]
	reqsBack   exch.Exchange[int32]

	offerOff   []int32 // len n+1: offers bucket v is offersFlat[offerOff[v]:offerOff[v+1]]
	reqOff     []int32
	offersFlat []int32
	reqFlat    []int32
	senderCut  []int // len workers+1: worker w scatters senders [cut[w], cut[w+1])
	liveCut    []int // churn-rebalanced sender cuts of the filtered seeded path
	rdvCut     []int // len workers+1: worker w matches rendezvous [cut[w], cut[w+1])
	one        [1]*rng.Stream

	// Reseedable per-worker generators for the per-node/per-bucket derived
	// streams of the seeded round path (see seeded.go); sized lazily.
	seedGens    []*rng.Xoshiro256
	seedStreams []*rng.Stream

	// weight is the sender-shard balance weight bout(i)+bin(i); set by
	// NewService (engineScratch does not hold the profile).
	weight     func(i int) int
	cutWorkers int // workers count senderCut was computed for, 0 if stale
}

// RunRoundParallel executes Algorithm 1 once across workers goroutines,
// using streams[w] as worker w's private randomness for both the scatter
// and the match pass. len(streams) must be at least workers; derive the
// streams once with rng.NewStreams(seed, workers) and reuse them across
// rounds — their evolution stays deterministic.
//
// The result is exactly reproducible for a fixed (stream seeds, workers)
// pair and satisfies the same capacity invariants as RunRound; different
// worker counts give different (equally distributed) rounds. The Service's
// scratch is reused, so a Service still runs one round at a time.
func (sv *Service) RunRoundParallel(streams []*rng.Stream, workers int) (RoundResult, error) {
	return sv.RunRoundParallelFiltered(streams, workers, nil)
}

// RunRoundParallelFiltered is RunRoundParallel with the liveness predicate
// of RunRoundFiltered. alive is called concurrently from all workers and
// must be safe for concurrent use (in practice: a pure read of state that
// does not change during the round).
func (sv *Service) RunRoundParallelFiltered(streams []*rng.Stream, workers int, alive func(i int) bool) (RoundResult, error) {
	if workers < 1 {
		return RoundResult{}, fmt.Errorf("core: parallel round needs workers >= 1, got %d", workers)
	}
	if len(streams) < workers {
		return RoundResult{}, fmt.Errorf("core: parallel round needs one stream per worker: %d streams < %d workers", len(streams), workers)
	}
	for w, s := range streams[:workers] {
		if s == nil {
			return RoundResult{}, fmt.Errorf("core: worker %d has a nil stream", w)
		}
	}
	if p, ok := sv.sel.(Preparer); ok {
		if err := p.Prepare(); err != nil {
			return RoundResult{}, fmt.Errorf("core: selector prepare failed: %w", err)
		}
	}
	return sv.runEngine(streams[:workers], workers, alive), nil
}

// runPhase fans one phase of a round out across workers goroutines;
// phases are separated by barriers. Shared by the Service round engine and
// the Arranger (and, via par.Do, the live message runtime).
func runPhase(workers int, f func(w int)) {
	par.Do(workers, f)
}

// sortPairs is the exchange + sort pass shared by the Service round paths
// and the Arranger: Prefix both exchanges serially, grow the flat arrays,
// then fan the owners out to Fill their destination ranges (see
// internal/exch for the kernel's layout guarantees). The flat arrays are
// grown as needed and returned; offerOff and reqOff must have length n+1.
func sortPairs(n, workers int, offers, reqs *exch.Exchange[int32], offerOff, reqOff []int32, offersFlat, reqFlat []int32) ([]int32, []int32) {
	offTotal := offers.Prefix()
	reqTotal := reqs.Prefix()
	offersFlat = grow(offersFlat, int(offTotal))
	reqFlat = grow(reqFlat, int(reqTotal))
	runPhase(workers, func(o int) {
		offers.Fill(o, offerOff, offersFlat)
		reqs.Fill(o, reqOff, reqFlat)
	})
	offerOff[n] = offTotal
	reqOff[n] = reqTotal
	return offersFlat, reqFlat
}

// sortRound runs sortPairs on the engine's front exchanges.
func (eng *engineScratch) sortRound(n, workers int) {
	eng.offersFlat, eng.reqFlat = sortPairs(n, workers, &eng.offers, &eng.reqs,
		eng.offerOff, eng.reqOff, eng.offersFlat, eng.reqFlat)
}

// runEngine is the shared round body.
func (sv *Service) runEngine(streams []*rng.Stream, workers int, alive func(i int) bool) RoundResult {
	n := sv.profile.N()
	eng := &sv.eng
	eng.ensure(n, workers)
	scratch := func(w int) *workerScratch { return &eng.ws[w] }

	// Scatter: worker w draws destinations for its sender shard, recording
	// each pair into the chunk of the destination's owner.
	out, in := sv.profile.Out, sv.profile.In
	runPhase(workers, func(w int) {
		ws := &eng.ws[w]
		ws.reset()
		eng.offers.ClearWorker(w)
		eng.reqs.ClearWorker(w)
		s := streams[w]
		for i := eng.senderCut[w]; i < eng.senderCut[w+1]; i++ {
			if alive != nil && !alive(i) {
				continue
			}
			for k := 0; k < out[i]; k++ {
				dest := sv.sel.Pick(s)
				if alive != nil && !alive(dest) {
					continue // lost: rendezvous is down
				}
				eng.offers.Record(w, int32(dest), int32(i))
				ws.offersSent++
			}
			for k := 0; k < in[i]; k++ {
				dest := sv.sel.Pick(s)
				if alive != nil && !alive(dest) {
					continue
				}
				eng.reqs.Record(w, int32(dest), int32(i))
				ws.requestsSent++
			}
		}
	})

	// Exchange + sort: counting-sort the recorded requests into one
	// contiguous buffer per kind (see sortPairs for the layout).
	eng.sortRound(n, workers)

	// Match: shard rendezvous nodes across workers, balanced by bucket
	// size (the shuffle cost of MatchRendezvous is linear in it).
	eng.rdvCut = balancedCuts(eng.rdvCut, n, workers, func(v int) int {
		return int(eng.offerOff[v+1]-eng.offerOff[v]) + int(eng.reqOff[v+1]-eng.reqOff[v])
	})
	runPhase(workers, func(w int) {
		ws := &eng.ws[w]
		s := streams[w]
		emit := func(sender, receiver int32) {
			ws.dates = append(ws.dates, Date{Sender: int(sender), Receiver: int(receiver)})
		}
		for v := eng.rdvCut[w]; v < eng.rdvCut[w+1]; v++ {
			offers := eng.offersFlat[eng.offerOff[v]:eng.offerOff[v+1]]
			requests := eng.reqFlat[eng.reqOff[v]:eng.reqOff[v+1]]
			MatchRendezvous(offers, requests, s, emit)
		}
	})

	return mergeRound(n, workers, scratch)
}

// mergeDates concatenates per-worker dates in worker order and rebuilds the
// per-node counters from the merged list, leaving the control-message
// counters to the caller (the pipelined path captures them a fanout
// earlier, before the fused scatter of the next round overwrites them).
func mergeDates(n, workers int, scratch func(w int) *workerScratch) RoundResult {
	res := RoundResult{
		PerNodeOut: make([]int, n),
		PerNodeIn:  make([]int, n),
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += len(scratch(w).dates)
	}
	res.Dates = make([]Date, 0, total)
	for w := 0; w < workers; w++ {
		res.Dates = append(res.Dates, scratch(w).dates...)
	}
	for _, d := range res.Dates {
		res.PerNodeOut[d.Sender]++
		res.PerNodeIn[d.Receiver]++
	}
	return res
}

// mergeRound is mergeDates plus the control-message counters, for the
// single-round paths where the scratch still holds this round's counts.
func mergeRound(n, workers int, scratch func(w int) *workerScratch) RoundResult {
	res := mergeDates(n, workers, scratch)
	for w := 0; w < workers; w++ {
		ws := scratch(w)
		res.OffersSent += ws.offersSent
		res.RequestsSent += ws.requestsSent
	}
	return res
}

// ensure sizes the scratch for an (n, workers) round and recomputes the
// sender shard boundaries when the worker count changes. Sender shards are
// balanced by per-node request weight bout(i)+bin(i), so skewed profiles
// still split evenly. The request exchanges are re-partitioned every round
// (a no-op while (n, workers) is stable).
func (eng *engineScratch) ensure(n, workers int) {
	if len(eng.ws) < workers {
		eng.ws = append(eng.ws, make([]workerScratch, workers-len(eng.ws))...)
	}
	if len(eng.offerOff) != n+1 {
		eng.offerOff = make([]int32, n+1)
		eng.reqOff = make([]int32, n+1)
		eng.cutWorkers = 0
	}
	part := exch.Partition{N: n, Parts: workers}
	eng.offers.Reset(workers, part)
	eng.reqs.Reset(workers, part)
	if eng.cutWorkers != workers {
		// The profile is fixed for the Service's lifetime, so the cuts only
		// depend on the worker count; eng.weight is set by NewService.
		eng.senderCut = balancedCuts(eng.senderCut, n, workers, eng.weight)
		eng.cutWorkers = workers
	}
}

// grow returns s resliced to length size, reallocating only when needed.
func grow(s []int32, size int) []int32 {
	if cap(s) >= size {
		return s[:size]
	}
	return make([]int32, size)
}

// balancedCuts splits [0, n) into parts contiguous ranges of roughly equal
// total weight, returning the parts+1 boundaries (reusing cuts). Empty
// ranges are possible when parts > n or the weight is concentrated; they
// are valid (the worker simply does nothing). The result is a pure
// function of its inputs, keeping shard assignment deterministic.
func balancedCuts(cuts []int, n, parts int, weight func(i int) int) []int {
	cuts = append(cuts[:0], 0)
	var total int64
	for i := 0; i < n; i++ {
		total += int64(weight(i))
	}
	var acc int64
	i := 0
	for p := 1; p < parts; p++ {
		target := total * int64(p) / int64(parts)
		for i < n && acc < target {
			acc += int64(weight(i))
			i++
		}
		cuts = append(cuts, i)
	}
	return append(cuts, n)
}
