package core

// This file implements the flat round engine shared by the serial and
// parallel execution paths of Algorithm 1.
//
// Instead of appending each request to a per-rendezvous slice (one heap
// object per node, pointer-chasing in the match pass), the engine lays the
// round out as a radix-partitioned counting sort keyed by rendezvous.
// Workers own two kinds of contiguous ranges: a *sender* shard (which nodes
// they scatter for) and a *destination* range (which rendezvous buckets they
// build). A round runs as:
//
//	scatter   each worker draws destinations for a contiguous shard of
//	          senders and records every emitted (dest, sender) pair into the
//	          chunk buffer of the destination's owner — one small buffer per
//	          (worker, owner) pair, filled in scan order;
//	exchange  a tiny serial pass sums each owner's incoming chunk lengths
//	          (O(workers²), no length-n scan) and prefixes them into per-
//	          owner base offsets in the flat output arrays;
//	sort      each owner counting-sorts its own destination range: it counts
//	          its incoming pairs into a count array covering only its range,
//	          prefixes counts into the global bucket offsets (bucket v of
//	          each kind is the contiguous region flat[off[v]:off[v+1]]), and
//	          replays the chunks — in worker order — into the cursors;
//	match     each worker runs MatchRendezvous over a contiguous shard of
//	          rendezvous buckets, appending to a private date buffer;
//	merge     date buffers are concatenated in worker order and the
//	          per-node counters are rebuilt from the merged dates.
//
// Because chunks are recorded in scan order within a worker, worker sender
// shards are contiguous ascending ranges, and each owner replays chunks in
// worker order, bucket v always holds its requests in global sender order —
// exactly the layout of the pre-radix engine, whose per-worker length-n
// count arrays this scheme replaces. The layout — and therefore the whole
// round — is a pure function of (profile, selector, worker streams,
// workers, alive): results are exactly reproducible for a fixed
// (seed, workers) pair, on any GOMAXPROCS, under any goroutine schedule.
//
// Memory is O(n + requests) regardless of the worker count: the owners'
// count arrays partition [0, n) (one length-(n/workers) array each, not one
// length-n array per worker), and the chunk buffers together hold exactly
// the round's recorded requests.
//
// The engine assumes fewer than 2^31 requests of each kind per round
// (offsets are int32); each recorded request already costs 8 bytes of
// scratch, so this bound is far beyond any round that fits in memory.

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/rng"
)

// Preparer is an optional Selector extension: selectors whose Pick would
// lazily mutate shared state (e.g. DynamicRingSelector rebuilding its ring
// snapshot) implement Prepare so the parallel engine can force that work to
// happen once, before workers fan out. Selectors without Prepare must be
// read-only under Pick.
type Preparer interface {
	// Prepare brings the selector to a state where concurrent Pick calls
	// with distinct streams are safe.
	Prepare() error
}

// pairChunk records the (dest, sender) pairs one worker emitted into one
// destination owner's range, in scan (sender) order.
type pairChunk struct {
	dest   []int32
	sender []int32
}

func (ch *pairChunk) push(dest, sender int) {
	ch.dest = append(ch.dest, int32(dest))
	ch.sender = append(ch.sender, int32(sender))
}

// workerScratch is the per-worker slice of the engine state. During the
// scatter a worker only appends to its own chunks; during the sort it owns
// one destination range and reads every worker's chunks addressed to it —
// the phases are separated by a barrier, so no locking is needed.
type workerScratch struct {
	// offerChunk[o] / reqChunk[o] hold the pairs this worker emitted into
	// owner o's destination range. Requests lost to a dead rendezvous are
	// never recorded.
	offerChunk []pairChunk
	reqChunk   []pairChunk

	// Owner-side scratch: per-destination counts over this worker's own
	// destination range [destCut(w), destCut(w+1)), rewritten in place into
	// absolute write cursors during the sort pass.
	offerCount []int32
	reqCount   []int32

	// baseOff/baseReq are this owner's first slots in the flat arrays, set
	// by the serial exchange prefix.
	baseOff int32
	baseReq int32

	dates        []Date
	offersSent   int
	requestsSent int
}

// reset readies the scratch for a round at the given worker count. Chunks
// beyond workers are left untouched: they are never read by a round of this
// width.
func (ws *workerScratch) reset(workers int) {
	for len(ws.offerChunk) < workers {
		ws.offerChunk = append(ws.offerChunk, pairChunk{})
		ws.reqChunk = append(ws.reqChunk, pairChunk{})
	}
	for o := 0; o < workers; o++ {
		ws.offerChunk[o].dest = ws.offerChunk[o].dest[:0]
		ws.offerChunk[o].sender = ws.offerChunk[o].sender[:0]
		ws.reqChunk[o].dest = ws.reqChunk[o].dest[:0]
		ws.reqChunk[o].sender = ws.reqChunk[o].sender[:0]
	}
	ws.dates = ws.dates[:0]
	ws.offersSent = 0
	ws.requestsSent = 0
}

// sizeCounts sizes the owner-side count arrays to this owner's range and
// zeroes them.
func (ws *workerScratch) sizeCounts(size int) {
	if cap(ws.offerCount) < size || cap(ws.reqCount) < size {
		ws.offerCount = make([]int32, size)
		ws.reqCount = make([]int32, size)
		return
	}
	ws.offerCount = ws.offerCount[:size]
	ws.reqCount = ws.reqCount[:size]
	for i := range ws.offerCount {
		ws.offerCount[i] = 0
		ws.reqCount[i] = 0
	}
}

// engineScratch is the round state a Service reuses across rounds. It grows
// to the largest (n, workers) seen and is never shared between Services.
type engineScratch struct {
	ws         []workerScratch
	offerOff   []int32 // len n+1: offers bucket v is offersFlat[offerOff[v]:offerOff[v+1]]
	reqOff     []int32
	offersFlat []int32
	reqFlat    []int32
	senderCut  []int // len workers+1: worker w scatters senders [cut[w], cut[w+1])
	rdvCut     []int // len workers+1: worker w matches rendezvous [cut[w], cut[w+1])
	one        [1]*rng.Stream

	// Reseedable per-worker generators for the per-node/per-bucket derived
	// streams of the seeded round path (see seeded.go); sized lazily.
	seedGens    []*rng.Xoshiro256
	seedStreams []*rng.Stream

	// weight is the sender-shard balance weight bout(i)+bin(i); set by
	// NewService (engineScratch does not hold the profile).
	weight     func(i int) int
	cutWorkers int // workers count senderCut was computed for, 0 if stale
}

// RunRoundParallel executes Algorithm 1 once across workers goroutines,
// using streams[w] as worker w's private randomness for both the scatter
// and the match pass. len(streams) must be at least workers; derive the
// streams once with rng.NewStreams(seed, workers) and reuse them across
// rounds — their evolution stays deterministic.
//
// The result is exactly reproducible for a fixed (stream seeds, workers)
// pair and satisfies the same capacity invariants as RunRound; different
// worker counts give different (equally distributed) rounds. The Service's
// scratch is reused, so a Service still runs one round at a time.
func (sv *Service) RunRoundParallel(streams []*rng.Stream, workers int) (RoundResult, error) {
	return sv.RunRoundParallelFiltered(streams, workers, nil)
}

// RunRoundParallelFiltered is RunRoundParallel with the liveness predicate
// of RunRoundFiltered. alive is called concurrently from all workers and
// must be safe for concurrent use (in practice: a pure read of state that
// does not change during the round).
func (sv *Service) RunRoundParallelFiltered(streams []*rng.Stream, workers int, alive func(i int) bool) (RoundResult, error) {
	if workers < 1 {
		return RoundResult{}, fmt.Errorf("core: parallel round needs workers >= 1, got %d", workers)
	}
	if len(streams) < workers {
		return RoundResult{}, fmt.Errorf("core: parallel round needs one stream per worker: %d streams < %d workers", len(streams), workers)
	}
	for w, s := range streams[:workers] {
		if s == nil {
			return RoundResult{}, fmt.Errorf("core: worker %d has a nil stream", w)
		}
	}
	if p, ok := sv.sel.(Preparer); ok {
		if err := p.Prepare(); err != nil {
			return RoundResult{}, fmt.Errorf("core: selector prepare failed: %w", err)
		}
	}
	return sv.runEngine(streams[:workers], workers, alive), nil
}

// runPhase fans one phase of a round out across workers goroutines;
// phases are separated by barriers. Shared by the Service round engine and
// the Arranger (and, via par.Do, the live message runtime).
func runPhase(workers int, f func(w int)) {
	par.Do(workers, f)
}

// destCut returns the start of owner p's destination range: the destination
// space [0, n) is partitioned into the uniform id ranges
// [destCut(p), destCut(p+1)). The cuts are a pure function of (n, workers),
// and — unlike the sender shards — never affect the output, only which
// worker builds which buckets.
func destCut(n, workers, p int) int { return n * p / workers }

// destOwner returns the owner of destination d under destCut's partition:
// the largest p with destCut(p) <= d. Owners with empty ranges are never
// returned.
func destOwner(n, workers, d int) int { return ((d+1)*workers - 1) / n }

// radixSort is the exchange + sort pass shared by the Service round paths
// and the Arranger: after the scatter barrier it prefixes each owner's
// incoming chunk totals into base offsets (a serial O(workers²) pass — the
// only serial work, with no length-n scan), then each owner counting-sorts
// its own destination range in parallel: count incoming pairs into a
// range-local count array, prefix the counts into the global bucket offset
// tables, and replay every worker's chunks — in worker order — through the
// cursors. Bucket v of each kind ends up as the contiguous region
// flat[off[v]:off[v+1]] holding its senders in global sender order.
//
// The flat arrays are grown as needed and returned; offerOff and reqOff
// must have length n+1.
func radixSort(n, workers int, scratch func(w int) *workerScratch, offerOff, reqOff []int32, offersFlat, reqFlat []int32) ([]int32, []int32) {
	var offTotal, reqTotal int32
	for o := 0; o < workers; o++ {
		var ot, rt int32
		for w := 0; w < workers; w++ {
			ws := scratch(w)
			ot += int32(len(ws.offerChunk[o].dest))
			rt += int32(len(ws.reqChunk[o].dest))
		}
		os := scratch(o)
		os.baseOff, offTotal = offTotal, offTotal+ot
		os.baseReq, reqTotal = reqTotal, reqTotal+rt
	}
	offersFlat = grow(offersFlat, int(offTotal))
	reqFlat = grow(reqFlat, int(reqTotal))

	runPhase(workers, func(o int) {
		ws := scratch(o)
		lo, hi := destCut(n, workers, o), destCut(n, workers, o+1)
		ws.sizeCounts(hi - lo)
		for w := 0; w < workers; w++ {
			src := scratch(w)
			for _, d := range src.offerChunk[o].dest {
				ws.offerCount[int(d)-lo]++
			}
			for _, d := range src.reqChunk[o].dest {
				ws.reqCount[int(d)-lo]++
			}
		}
		ot, rt := ws.baseOff, ws.baseReq
		for v := lo; v < hi; v++ {
			offerOff[v] = ot
			c := ws.offerCount[v-lo]
			ws.offerCount[v-lo] = ot
			ot += c
			reqOff[v] = rt
			c = ws.reqCount[v-lo]
			ws.reqCount[v-lo] = rt
			rt += c
		}
		for w := 0; w < workers; w++ {
			src := scratch(w)
			ch := &src.offerChunk[o]
			for k, d := range ch.dest {
				offersFlat[ws.offerCount[int(d)-lo]] = ch.sender[k]
				ws.offerCount[int(d)-lo]++
			}
			ch = &src.reqChunk[o]
			for k, d := range ch.dest {
				reqFlat[ws.reqCount[int(d)-lo]] = ch.sender[k]
				ws.reqCount[int(d)-lo]++
			}
		}
	})
	offerOff[n] = offTotal
	reqOff[n] = reqTotal
	return offersFlat, reqFlat
}

// runEngine is the shared round body.
func (sv *Service) runEngine(streams []*rng.Stream, workers int, alive func(i int) bool) RoundResult {
	n := sv.profile.N()
	eng := &sv.eng
	eng.ensure(n, workers)
	scratch := func(w int) *workerScratch { return &eng.ws[w] }

	// Scatter: worker w draws destinations for its sender shard, recording
	// each pair into the chunk of the destination's owner.
	out, in := sv.profile.Out, sv.profile.In
	runPhase(workers, func(w int) {
		ws := &eng.ws[w]
		ws.reset(workers)
		s := streams[w]
		for i := eng.senderCut[w]; i < eng.senderCut[w+1]; i++ {
			if alive != nil && !alive(i) {
				continue
			}
			for k := 0; k < out[i]; k++ {
				dest := sv.sel.Pick(s)
				if alive != nil && !alive(dest) {
					continue // lost: rendezvous is down
				}
				ws.offerChunk[destOwner(n, workers, dest)].push(dest, i)
				ws.offersSent++
			}
			for k := 0; k < in[i]; k++ {
				dest := sv.sel.Pick(s)
				if alive != nil && !alive(dest) {
					continue
				}
				ws.reqChunk[destOwner(n, workers, dest)].push(dest, i)
				ws.requestsSent++
			}
		}
	})

	// Exchange + sort: counting-sort the recorded requests into one
	// contiguous buffer per kind (see radixSort for the layout).
	eng.offersFlat, eng.reqFlat = radixSort(n, workers, scratch, eng.offerOff, eng.reqOff, eng.offersFlat, eng.reqFlat)

	// Match: shard rendezvous nodes across workers, balanced by bucket
	// size (the shuffle cost of MatchRendezvous is linear in it).
	eng.rdvCut = balancedCuts(eng.rdvCut, n, workers, func(v int) int {
		return int(eng.offerOff[v+1]-eng.offerOff[v]) + int(eng.reqOff[v+1]-eng.reqOff[v])
	})
	runPhase(workers, func(w int) {
		ws := &eng.ws[w]
		s := streams[w]
		emit := func(sender, receiver int32) {
			ws.dates = append(ws.dates, Date{Sender: int(sender), Receiver: int(receiver)})
		}
		for v := eng.rdvCut[w]; v < eng.rdvCut[w+1]; v++ {
			offers := eng.offersFlat[eng.offerOff[v]:eng.offerOff[v+1]]
			requests := eng.reqFlat[eng.reqOff[v]:eng.reqOff[v+1]]
			MatchRendezvous(offers, requests, s, emit)
		}
	})

	return mergeRound(n, workers, scratch)
}

// mergeRound concatenates per-worker dates in worker order and rebuilds the
// per-node counters from the merged list; shared by the worker-stream and
// the seeded round paths.
func mergeRound(n, workers int, scratch func(w int) *workerScratch) RoundResult {
	res := RoundResult{
		PerNodeOut: make([]int, n),
		PerNodeIn:  make([]int, n),
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += len(scratch(w).dates)
	}
	res.Dates = make([]Date, 0, total)
	for w := 0; w < workers; w++ {
		ws := scratch(w)
		res.Dates = append(res.Dates, ws.dates...)
		res.OffersSent += ws.offersSent
		res.RequestsSent += ws.requestsSent
	}
	for _, d := range res.Dates {
		res.PerNodeOut[d.Sender]++
		res.PerNodeIn[d.Receiver]++
	}
	return res
}

// ensure sizes the scratch for an (n, workers) round and recomputes the
// sender shard boundaries when the worker count changes. Sender shards are
// balanced by per-node request weight bout(i)+bin(i), so skewed profiles
// still split evenly.
func (eng *engineScratch) ensure(n, workers int) {
	if len(eng.ws) < workers {
		eng.ws = append(eng.ws, make([]workerScratch, workers-len(eng.ws))...)
	}
	if len(eng.offerOff) != n+1 {
		eng.offerOff = make([]int32, n+1)
		eng.reqOff = make([]int32, n+1)
		eng.cutWorkers = 0
	}
	if eng.cutWorkers != workers {
		// The profile is fixed for the Service's lifetime, so the cuts only
		// depend on the worker count; eng.weight is set by NewService.
		eng.senderCut = balancedCuts(eng.senderCut, n, workers, eng.weight)
		eng.cutWorkers = workers
	}
}

// grow returns s resliced to length size, reallocating only when needed.
func grow(s []int32, size int) []int32 {
	if cap(s) >= size {
		return s[:size]
	}
	return make([]int32, size)
}

// balancedCuts splits [0, n) into parts contiguous ranges of roughly equal
// total weight, returning the parts+1 boundaries (reusing cuts). Empty
// ranges are possible when parts > n or the weight is concentrated; they
// are valid (the worker simply does nothing). The result is a pure
// function of its inputs, keeping shard assignment deterministic.
func balancedCuts(cuts []int, n, parts int, weight func(i int) int) []int {
	cuts = append(cuts[:0], 0)
	var total int64
	for i := 0; i < n; i++ {
		total += int64(weight(i))
	}
	var acc int64
	i := 0
	for p := 1; p < parts; p++ {
		target := total * int64(p) / int64(parts)
		for i < n && acc < target {
			acc += int64(weight(i))
			i++
		}
		cuts = append(cuts, i)
	}
	return append(cuts, n)
}
