package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/rng"
	"repro/internal/stats"
)

func parallelService(t *testing.T, n, b int) *Service {
	t.Helper()
	sel, err := NewUniformSelector(n)
	if err != nil {
		t.Fatal(err)
	}
	return mustService(t, bandwidth.Homogeneous(n, b), sel)
}

func TestRunRoundParallelValidation(t *testing.T) {
	sv := parallelService(t, 10, 1)
	streams := rng.NewStreams(1, 2)
	if _, err := sv.RunRoundParallel(streams, 0); err == nil {
		t.Error("accepted workers = 0")
	}
	if _, err := sv.RunRoundParallel(streams, 3); err == nil {
		t.Error("accepted more workers than streams")
	}
	if _, err := sv.RunRoundParallel([]*rng.Stream{streams[0], nil}, 2); err == nil {
		t.Error("accepted a nil stream")
	}
	if _, err := sv.RunRoundParallel(streams, 2); err != nil {
		t.Errorf("rejected a valid configuration: %v", err)
	}
}

func TestRunRoundParallelDeterministic(t *testing.T) {
	// The acceptance bar: for a fixed (seed, workers) the parallel round is
	// bit-for-bit reproducible, including Date order, regardless of how the
	// goroutines were actually scheduled.
	const n, seed = 3000, 99
	for _, workers := range []int{1, 2, 3, 4, 7, 8} {
		run := func() []RoundResult {
			sv := parallelService(t, n, 2)
			streams := rng.NewStreams(seed, workers)
			var out []RoundResult
			for r := 0; r < 5; r++ {
				res, err := sv.RunRoundParallel(streams, workers)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, res)
			}
			return out
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("workers=%d: two runs with the same seed diverged", workers)
		}
	}
}

func TestRunRoundParallelCapacities(t *testing.T) {
	// The paper's safety property must hold on the parallel path for skewed
	// profiles and selection distributions alike.
	s := rng.New(100)
	p, err := bandwidth.Zipf(400, 1.2, 16, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, p.N())
	for i := range weights {
		weights[i] = float64(i%7 + 1)
	}
	sel, err := NewWeightedSelector(weights)
	if err != nil {
		t.Fatal(err)
	}
	sv := mustService(t, p, sel)
	streams := rng.NewStreams(101, 4)
	for round := 0; round < 20; round++ {
		res, err := sv.RunRoundParallel(streams, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateCapacities(res, p); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestRunRoundParallelFilteredChurn(t *testing.T) {
	// RunRoundFiltered-style churn on the parallel path: the dead set
	// changes every round; dead nodes never appear in dates, capacities
	// hold, and accounting only counts delivered requests.
	const n = 500
	sv := parallelService(t, n, 2)
	streams := rng.NewStreams(7, 3)
	churn := rng.New(8)
	alive := make([]bool, n)
	for round := 0; round < 15; round++ {
		liveOut := 0
		for i := range alive {
			alive[i] = !churn.Bernoulli(0.2)
			if alive[i] {
				liveOut += sv.profile.Out[i]
			}
		}
		res, err := sv.RunRoundParallelFiltered(streams, 3, func(i int) bool { return alive[i] })
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Dates {
			if !alive[d.Sender] || !alive[d.Receiver] {
				t.Fatalf("round %d: date %v involves a dead node", round, d)
			}
		}
		if err := ValidateCapacities(res, sv.Profile()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.OffersSent > liveOut {
			t.Fatalf("round %d: %d offers delivered by senders with %d live capacity", round, res.OffersSent, liveOut)
		}
	}
}

func TestRunRoundParallelMatchesSerialFraction(t *testing.T) {
	// Statistical equivalence at n = 10k: the parallel engine must arrange
	// the same fraction of the centralized optimum as the serial path,
	// within 1% relative tolerance (the acceptance criterion).
	const n, rounds = 10000, 40
	serial := parallelService(t, n, 1)
	s := rng.New(200)
	var serialAcc stats.Accumulator
	for r := 0; r < rounds; r++ {
		serialAcc.Add(serial.RunRound(s).Fraction(n))
	}

	for _, workers := range []int{2, 4} {
		par := parallelService(t, n, 1)
		streams := rng.NewStreams(201, workers)
		var parAcc stats.Accumulator
		for r := 0; r < rounds; r++ {
			res, err := par.RunRoundParallel(streams, workers)
			if err != nil {
				t.Fatal(err)
			}
			parAcc.Add(res.Fraction(n))
		}
		rel := math.Abs(parAcc.Mean()-serialAcc.Mean()) / serialAcc.Mean()
		if rel > 0.01 {
			t.Fatalf("workers=%d: parallel fraction %.5f vs serial %.5f (relative gap %.4f > 1%%)",
				workers, parAcc.Mean(), serialAcc.Mean(), rel)
		}
	}
}

func TestRunRoundParallelControlMessageCounts(t *testing.T) {
	// With everyone alive, every request is delivered: OffersSent == Bout
	// and RequestsSent == Bin, exactly, on every worker count.
	s := rng.New(300)
	p, err := bandwidth.Zipf(300, 1.0, 8, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := NewUniformSelector(p.N())
	sv := mustService(t, p, sel)
	for _, workers := range []int{1, 2, 5} {
		streams := rng.NewStreams(301, workers)
		res, err := sv.RunRoundParallel(streams, workers)
		if err != nil {
			t.Fatal(err)
		}
		if res.OffersSent != p.TotalOut() || res.RequestsSent != p.TotalIn() {
			t.Fatalf("workers=%d: sent %d/%d, want %d/%d",
				workers, res.OffersSent, res.RequestsSent, p.TotalOut(), p.TotalIn())
		}
	}
}

func TestServiceMixedSerialParallelReuse(t *testing.T) {
	// One Service must survive interleaved serial, parallel, and filtered
	// rounds with different worker counts: the scratch is shared, and a
	// leak from any round shape would corrupt the next.
	const n = 250
	sv := parallelService(t, n, 2)
	s := rng.New(400)
	streams := rng.NewStreams(401, 4)
	dead := func(i int) bool { return i%10 != 0 }
	for round := 0; round < 30; round++ {
		var res RoundResult
		var err error
		switch round % 4 {
		case 0:
			res = sv.RunRound(s)
		case 1:
			res, err = sv.RunRoundParallel(streams, 4)
		case 2:
			res = sv.RunRoundFiltered(s, dead)
		case 3:
			res, err = sv.RunRoundParallelFiltered(streams, 2, dead)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateCapacities(res, sv.Profile()); err != nil {
			t.Fatalf("round %d (shape %d): %v", round, round%4, err)
		}
		if round%4 == 0 || round%4 == 1 {
			if res.OffersSent != sv.Profile().TotalOut() {
				t.Fatalf("round %d: OffersSent %d, want %d — scratch leaked across rounds",
					round, res.OffersSent, sv.Profile().TotalOut())
			}
		}
	}
}

// TestServiceManyRoundsAccounting is the scratch-reuse regression test: a
// long sequence of rounds on one Service must keep exact control-message
// accounting and the capacity invariant on every single round (the old
// per-rendezvous slice implementation relied on subtle reset invariants;
// the flat engine must not regress them).
func TestServiceManyRoundsAccounting(t *testing.T) {
	const n, b, rounds = 120, 3, 300
	sv := parallelService(t, n, b)
	s := rng.New(500)
	for round := 0; round < rounds; round++ {
		res := sv.RunRound(s)
		if res.OffersSent != n*b || res.RequestsSent != n*b {
			t.Fatalf("round %d: sent %d/%d, want %d/%d",
				round, res.OffersSent, res.RequestsSent, n*b, n*b)
		}
		if err := ValidateCapacities(res, sv.Profile()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestBalancedCuts(t *testing.T) {
	cases := []struct {
		n, parts int
		weight   func(i int) int
	}{
		{10, 3, func(i int) int { return 1 }},
		{1, 4, func(i int) int { return 2 }},
		{0, 2, func(i int) int { return 1 }},
		{100, 7, func(i int) int { return i }},
		{5, 5, func(i int) int { return 0 }},
	}
	for _, c := range cases {
		cuts := balancedCuts(nil, c.n, c.parts, c.weight)
		if len(cuts) != c.parts+1 {
			t.Fatalf("n=%d parts=%d: %d boundaries", c.n, c.parts, len(cuts))
		}
		if cuts[0] != 0 || cuts[c.parts] != c.n {
			t.Fatalf("n=%d parts=%d: cuts %v do not cover [0,n)", c.n, c.parts, cuts)
		}
		for p := 0; p < c.parts; p++ {
			if cuts[p] > cuts[p+1] {
				t.Fatalf("n=%d parts=%d: cuts %v not monotone", c.n, c.parts, cuts)
			}
		}
	}
	// Uniform weights split evenly.
	cuts := balancedCuts(nil, 1000, 4, func(i int) int { return 1 })
	for p := 0; p < 4; p++ {
		if size := cuts[p+1] - cuts[p]; size < 240 || size > 260 {
			t.Fatalf("uniform cuts %v badly unbalanced", cuts)
		}
	}
}
