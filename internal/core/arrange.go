package core

import (
	"fmt"

	"repro/internal/rng"
)

// ArrangeDates runs one dating-service round directly from per-node supply
// and demand vectors: out[i] offers (units node i wants to send) and in[i]
// requests (units node i can absorb). Unlike Service, it permits zeros —
// protocols such as replicated storage have fluctuating per-round demand,
// and a node with nothing to offer simply stays silent that round. The
// paper's abstract description covers this directly: the service "randomly
// joins demands and supplies of some resource into couples".
//
// Entries must be non-negative and both slices must have the selector's
// length. Dates never exceed out[i]/in[i] for any node.
func ArrangeDates(out, in []int, sel Selector, s *rng.Stream) ([]Date, error) {
	if sel == nil {
		return nil, fmt.Errorf("core: ArrangeDates needs a selector")
	}
	n := sel.N()
	if len(out) != n || len(in) != n {
		return nil, fmt.Errorf("core: supply/demand vectors (%d/%d) must match selector size %d", len(out), len(in), n)
	}
	offersAt := make([][]int32, n)
	requestsAt := make([][]int32, n)
	for i := 0; i < n; i++ {
		if out[i] < 0 || in[i] < 0 {
			return nil, fmt.Errorf("core: negative supply/demand at node %d", i)
		}
		for k := 0; k < out[i]; k++ {
			dest := sel.Pick(s)
			offersAt[dest] = append(offersAt[dest], int32(i))
		}
		for k := 0; k < in[i]; k++ {
			dest := sel.Pick(s)
			requestsAt[dest] = append(requestsAt[dest], int32(i))
		}
	}
	var dates []Date
	for v := 0; v < n; v++ {
		MatchRendezvous(offersAt[v], requestsAt[v], s, func(sender, receiver int32) {
			dates = append(dates, Date{Sender: int(sender), Receiver: int(receiver)})
		})
	}
	return dates, nil
}
