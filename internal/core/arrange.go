package core

// This file implements the supply/demand entry point of the dating service
// (ArrangeDates) on the flat counting-sort engine of engine.go. It replaces
// the seed's per-node append scatter — one heap-allocated slice per
// rendezvous, rebuilt every round — which survived here after the Service
// round path moved to the engine.
//
// Unlike Service.RunRoundParallel, whose output is a function of
// (seed, workers), an Arranger's output is a pure function of
// (supply, demand, selector, seed) alone: randomness is not drawn from one
// stream per worker but from short-lived streams derived with SplitMix64
// per *unit of work* — one stream per requesting node in the scatter pass
// (rng.Derive(seed, domainScatter, node)) and one per rendezvous bucket in
// the match pass (rng.Derive(seed, domainMatch, rendezvous)). Whichever
// worker happens to process a node or bucket therefore draws exactly the
// same values, so Workers=k is bit-for-bit identical to Workers=1 under any
// goroutine schedule. Storage and churn experiments rely on this: they can
// turn the Workers knob without changing a single published number.

import (
	"fmt"

	"repro/internal/exch"
	"repro/internal/par"
	"repro/internal/rng"
)

// Derivation domains keep the scatter and match randomness of one round
// disjoint even when a node id equals a rendezvous id.
const (
	domainScatter uint64 = 1
	domainMatch   uint64 = 2
)

// arrangeWorker extends the engine's per-worker scratch with a reseedable
// generator: the worker reseeds it for every node (scatter) or bucket
// (match) it processes, which costs four SplitMix64 steps — far cheaper
// than allocating a stream per unit of work.
type arrangeWorker struct {
	workerScratch
	gen    *rng.Xoshiro256
	stream *rng.Stream
}

// Arranger runs dating rounds directly from per-node supply and demand
// vectors, reusing scratch buffers across rounds. Like Service, an Arranger
// runs one round at a time — do not call Arrange concurrently; parallelism
// happens *inside* a round via the workers argument.
type Arranger struct {
	sel Selector

	ws         []arrangeWorker
	offers     exchInt32
	reqs       exchInt32
	offerOff   []int32 // len n+1: offers bucket v is offersFlat[offerOff[v]:offerOff[v+1]]
	reqOff     []int32
	offersFlat []int32
	reqFlat    []int32
	senderCut  []int // recomputed every round: supply/demand change between rounds
	rdvCut     []int
}

// NewArranger returns an Arranger over the given selection distribution.
func NewArranger(sel Selector) (*Arranger, error) {
	if sel == nil {
		return nil, fmt.Errorf("core: arranger needs a selector")
	}
	return &Arranger{sel: sel}, nil
}

// N returns the number of addressable nodes.
func (a *Arranger) N() int { return a.sel.N() }

// ArrangeShared is Arrange drawing its worker count from a shared budget:
// the round runs with the caller's worker plus whatever spare tokens b has
// at this moment, released when the round is done. Because Arrange is
// worker-count independent, whatever the pool hands out is a pure speed
// knob. A nil budget arranges serially.
func (a *Arranger) ArrangeShared(out, in []int, seed uint64, b *par.Budget) (dates []Date, err error) {
	b.Use(0, func(workers int) {
		dates, err = a.Arrange(out, in, seed, workers)
	})
	return dates, err
}

// Arrange runs one dating-service round: out[i] offers (units node i wants
// to send) and in[i] requests (units node i can absorb), both of which may
// be zero — protocols such as replicated storage have fluctuating per-round
// demand, and a node with nothing to offer simply stays silent that round.
// The paper's abstract description covers this directly: the service
// "randomly joins demands and supplies of some resource into couples".
//
// Entries must be non-negative and both slices must have the selector's
// length. Dates never exceed out[i]/in[i] for any node, and are returned in
// rendezvous order. The result is bit-for-bit identical for every workers
// count >= 1; seed alone selects the round's randomness.
func (a *Arranger) Arrange(out, in []int, seed uint64, workers int) ([]Date, error) {
	n := a.sel.N()
	if workers < 1 {
		return nil, fmt.Errorf("core: arrange needs workers >= 1, got %d", workers)
	}
	if len(out) != n || len(in) != n {
		return nil, fmt.Errorf("core: supply/demand vectors (%d/%d) must match selector size %d", len(out), len(in), n)
	}
	for i := 0; i < n; i++ {
		if out[i] < 0 || in[i] < 0 {
			return nil, fmt.Errorf("core: negative supply/demand at node %d", i)
		}
	}
	// Force lazily-built selector state (e.g. a churned ring snapshot) into
	// place before any fanout, so Pick is a pure read on every worker.
	if p, ok := a.sel.(Preparer); ok {
		if err := p.Prepare(); err != nil {
			return nil, fmt.Errorf("core: selector prepare failed: %w", err)
		}
	}
	a.ensure(n, workers)

	// Scatter: worker w draws destinations for its node shard, one derived
	// stream per node, recording each pair into the chunk of the
	// destination's owner. Shards are balanced by the round's request
	// weight; the cuts only affect which worker does the work, never the
	// draws.
	a.senderCut = balancedCuts(a.senderCut, n, workers, func(i int) int { return out[i] + in[i] })
	runPhase(workers, func(w int) {
		ws := &a.ws[w]
		ws.reset()
		a.offers.ClearWorker(w)
		a.reqs.ClearWorker(w)
		for i := a.senderCut[w]; i < a.senderCut[w+1]; i++ {
			if out[i] == 0 && in[i] == 0 {
				continue
			}
			ws.gen.Seed(rng.Derive(seed, domainScatter, uint64(i)))
			for k := 0; k < out[i]; k++ {
				dest := a.sel.Pick(ws.stream)
				a.offers.Record(w, int32(dest), int32(i))
			}
			for k := 0; k < in[i]; k++ {
				dest := a.sel.Pick(ws.stream)
				a.reqs.Record(w, int32(dest), int32(i))
			}
		}
	})

	// Exchange + sort: counting-sort the recorded requests into one
	// contiguous buffer per kind, every bucket in global sender order (see
	// sortPairs in engine.go).
	a.offersFlat, a.reqFlat = sortPairs(n, workers, &a.offers, &a.reqs,
		a.offerOff, a.reqOff, a.offersFlat, a.reqFlat)

	// Match: shard rendezvous nodes by bucket size, one derived stream per
	// bucket. Buckets where either side is empty arrange nothing and consume
	// no randomness, so they are skipped outright.
	a.rdvCut = balancedCuts(a.rdvCut, n, workers, func(v int) int {
		return int(a.offerOff[v+1]-a.offerOff[v]) + int(a.reqOff[v+1]-a.reqOff[v])
	})
	runPhase(workers, func(w int) {
		ws := &a.ws[w]
		emit := func(sender, receiver int32) {
			ws.dates = append(ws.dates, Date{Sender: int(sender), Receiver: int(receiver)})
		}
		for v := a.rdvCut[w]; v < a.rdvCut[w+1]; v++ {
			offers := a.offersFlat[a.offerOff[v]:a.offerOff[v+1]]
			requests := a.reqFlat[a.reqOff[v]:a.reqOff[v+1]]
			if len(offers) == 0 || len(requests) == 0 {
				continue
			}
			ws.gen.Seed(rng.Derive(seed, domainMatch, uint64(v)))
			MatchRendezvous(offers, requests, ws.stream, emit)
		}
	})

	// Merge: per-worker buffers hold contiguous ascending rendezvous ranges,
	// so concatenating in worker order yields rendezvous order — the same
	// sequence for every worker count.
	total := 0
	for w := 0; w < workers; w++ {
		total += len(a.ws[w].dates)
	}
	dates := make([]Date, 0, total)
	for w := 0; w < workers; w++ {
		dates = append(dates, a.ws[w].dates...)
	}
	return dates, nil
}

// ensure sizes the scratch for an (n, workers) round.
func (a *Arranger) ensure(n, workers int) {
	for len(a.ws) < workers {
		gen := rng.NewXoshiro256(0)
		a.ws = append(a.ws, arrangeWorker{gen: gen, stream: rng.NewWithSource(gen)})
	}
	if len(a.offerOff) != n+1 {
		a.offerOff = make([]int32, n+1)
		a.reqOff = make([]int32, n+1)
	}
	part := exch.Partition{N: n, Parts: workers}
	a.offers.Reset(workers, part)
	a.reqs.Reset(workers, part)
}

// ArrangeDates is the one-shot convenience form of Arranger.Arrange: it
// draws the round seed from s (advancing it by exactly one value) and runs
// serially without scratch reuse. Hot paths that arrange every round —
// storage, churning-DHT spreading — should hold an Arranger instead.
func ArrangeDates(out, in []int, sel Selector, s *rng.Stream) ([]Date, error) {
	a, err := NewArranger(sel)
	if err != nil {
		return nil, err
	}
	return a.Arrange(out, in, s.Uint64(), 1)
}
