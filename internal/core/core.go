// Package core implements the paper's primary contribution: the
// heterogeneous dating service (Algorithm 1).
//
// In every round, each node i sends bout(i) "sending requests" (offers of a
// unit of outgoing bandwidth) and bin(i) "receiving requests" (demands for a
// unit of incoming bandwidth) to nodes drawn from a common selection
// distribution. Each node then acts as a rendezvous point for the requests
// it received: with s offers and r demands it keeps q = min(s, r) of each,
// chosen uniformly at random, produces a uniform random perfect matching
// between them, and answers each matched offer with the address of its
// partner. Matched pairs are "dates": sender/receiver pairs along which one
// unit-size message may flow without ever exceeding any node's bandwidth.
//
// The paper proves that with high probability a constant fraction of
// m = min(Bin, Bout) — everything a centralized matchmaker could arrange —
// is organized this way, for any common selection distribution (uniform:
// fraction ≈ 0.47; DHT-interval: ≥ 0.52 empirically).
package core

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// Selector is the common selection distribution with which nodes address
// their requests. The paper's only requirement is that every node uses the
// same distribution for both request kinds.
type Selector interface {
	// Pick returns the index of the node a request is addressed to.
	Pick(s *rng.Stream) int
	// N returns the number of addressable nodes.
	N() int
}

// UniformSelector picks nodes uniformly at random — the classical rumor
// spreading assumption the paper relaxes.
type UniformSelector struct{ n int }

// NewUniformSelector returns a uniform selector over n nodes.
func NewUniformSelector(n int) (UniformSelector, error) {
	if n <= 0 {
		return UniformSelector{}, fmt.Errorf("core: uniform selector needs n > 0, got %d", n)
	}
	return UniformSelector{n: n}, nil
}

// Pick implements Selector.
func (u UniformSelector) Pick(s *rng.Stream) int { return s.Intn(u.n) }

// N implements Selector.
func (u UniformSelector) N() int { return u.n }

// WeightedSelector picks node i with probability proportional to an
// arbitrary weight vector, via an O(1) alias table. It models any skewed
// selection distribution (Zipf popularity, two-point masses, measured DHT
// interval weights).
type WeightedSelector struct{ table *rng.Alias }

// NewWeightedSelector builds a selector from non-negative weights.
func NewWeightedSelector(weights []float64) (WeightedSelector, error) {
	t, err := rng.NewAlias(weights)
	if err != nil {
		return WeightedSelector{}, err
	}
	return WeightedSelector{table: t}, nil
}

// Pick implements Selector.
func (w WeightedSelector) Pick(s *rng.Stream) int { return w.table.Sample(s) }

// N implements Selector.
func (w WeightedSelector) N() int { return w.table.N() }

// RingSelector selects the DHT node responsible for a uniformly random
// point — the exact distribution of Section 4 of the paper: each node is
// chosen with probability equal to its arc length.
type RingSelector struct{ ring *overlay.Ring }

// NewRingSelector wraps a DHT ring as a selection distribution.
func NewRingSelector(r *overlay.Ring) (RingSelector, error) {
	if r == nil {
		return RingSelector{}, fmt.Errorf("core: ring selector needs a ring")
	}
	return RingSelector{ring: r}, nil
}

// Pick implements Selector.
func (rs RingSelector) Pick(s *rng.Stream) int { return rs.ring.PickOwner(s) }

// N implements Selector.
func (rs RingSelector) N() int { return rs.ring.N() }

// Date is one arranged communication: Sender may transfer one unit-size
// message to Receiver this round.
type Date struct {
	Sender   int
	Receiver int
}

// RoundResult reports one dating-service round.
type RoundResult struct {
	Dates []Date // the arranged communications
	// OffersSent and RequestsSent count the control messages of the round
	// (Bout and Bin respectively when all nodes participate).
	OffersSent   int
	RequestsSent int
	// PerNodeOut[i] and PerNodeIn[i] count node i's matched outgoing and
	// incoming units; the capacity invariant is PerNodeOut[i] <= bout(i)
	// and PerNodeIn[i] <= bin(i), always.
	PerNodeOut []int
	PerNodeIn  []int
}

// Fraction returns len(Dates)/m, the figure-of-merit of Figure 1.
func (r RoundResult) Fraction(m int) float64 {
	if m <= 0 {
		return 0
	}
	return float64(len(r.Dates)) / float64(m)
}

// Service runs dating-service rounds for a fixed bandwidth profile and
// selection distribution. A Service reuses internal scratch buffers between
// rounds and therefore runs one round at a time: do not call its methods
// concurrently. RunRoundParallel parallelizes *inside* a round with worker
// goroutines the Service manages itself.
type Service struct {
	profile bandwidth.Profile
	sel     Selector

	// round scratch, reused across rounds (see engine.go)
	eng engineScratch
}

// NewService validates the configuration and returns a Service. The profile
// must have positive bandwidths and match the selector's node count.
func NewService(p bandwidth.Profile, sel Selector) (*Service, error) {
	if sel == nil {
		return nil, fmt.Errorf("core: service needs a selector")
	}
	if _, err := p.Ratio(); err != nil {
		return nil, err
	}
	if p.N() != sel.N() {
		return nil, fmt.Errorf("core: profile has %d nodes but selector addresses %d", p.N(), sel.N())
	}
	sv := &Service{profile: p, sel: sel}
	sv.eng.weight = func(i int) int { return p.Out[i] + p.In[i] }
	return sv, nil
}

// Profile returns the service's bandwidth profile.
func (sv *Service) Profile() bandwidth.Profile { return sv.profile }

// N returns the number of nodes.
func (sv *Service) N() int { return sv.profile.N() }

// M returns m = min(Bin, Bout), the centralized optimum per round.
func (sv *Service) M() int { return sv.profile.M() }

// RunRound executes Algorithm 1 once and returns the arranged dates.
// Participate(i) == false nodes are skipped entirely (crashed peers);
// pass nil to include everyone.
func (sv *Service) RunRound(s *rng.Stream) RoundResult {
	return sv.RunRoundFiltered(s, nil)
}

// RunRoundFiltered is RunRound with an optional liveness predicate. Crashed
// nodes neither emit requests nor act as rendezvous points, and requests
// addressed to them are lost — matching the behavior of a real overlay
// where a dead rendezvous simply never answers.
//
// The round runs on the flat engine of engine.go with a single worker: the
// scatter pass records (rendezvous, sender) pairs and counting-sorts them
// into one contiguous buffer per request kind, and the match pass walks the
// buckets in rendezvous order.
func (sv *Service) RunRoundFiltered(s *rng.Stream, alive func(i int) bool) RoundResult {
	sv.eng.one[0] = s
	return sv.runEngine(sv.eng.one[:], 1, alive)
}

// MatchRendezvous implements the rendezvous step of Algorithm 1 for one
// node: keep q = min(len(offers), len(requests)) requests of each kind
// chosen uniformly at random and emit a uniform random perfect matching
// between them. Both input slices are shuffled in place.
//
// Shuffling each list fully and pairing the first q elements is equivalent
// to (uniform q-subset of offers) x (uniform q-subset of requests) x
// (uniform bijection), which is the distribution the paper's Lemma 3
// requires.
func MatchRendezvous(offers, requests []int32, s *rng.Stream, emit func(sender, receiver int32)) {
	q := len(offers)
	if len(requests) < q {
		q = len(requests)
	}
	if q == 0 {
		return
	}
	shuffleInt32(offers, s)
	shuffleInt32(requests, s)
	for j := 0; j < q; j++ {
		emit(offers[j], requests[j])
	}
}

func shuffleInt32(p []int32, s *rng.Stream) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ValidateCapacities checks the paper's core safety property on a round
// result: no node exceeds its incoming or outgoing bandwidth, and every
// date endpoint is a valid node.
func ValidateCapacities(res RoundResult, p bandwidth.Profile) error {
	n := p.N()
	out := make([]int, n)
	in := make([]int, n)
	for _, d := range res.Dates {
		if d.Sender < 0 || d.Sender >= n || d.Receiver < 0 || d.Receiver >= n {
			return fmt.Errorf("core: date %v references invalid node", d)
		}
		out[d.Sender]++
		in[d.Receiver]++
	}
	for i := 0; i < n; i++ {
		if out[i] > p.Out[i] {
			return fmt.Errorf("core: node %d sends %d > bout %d", i, out[i], p.Out[i])
		}
		if in[i] > p.In[i] {
			return fmt.Errorf("core: node %d receives %d > bin %d", i, in[i], p.In[i])
		}
		if out[i] != res.PerNodeOut[i] || in[i] != res.PerNodeIn[i] {
			return fmt.Errorf("core: per-node counters disagree with dates at node %d", i)
		}
	}
	return nil
}
