package core

import (
	"sync"
	"testing"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// TestSelectorsConcurrentPick locks in the engine's fanout contract for
// every selector the storage and dynamic experiments use: after Prepare
// (when implemented), concurrent Pick calls with distinct streams must not
// mutate any shared state. The race detector turns a violation into a
// failure; the in-range check guards the returned values themselves.
func TestSelectorsConcurrentPick(t *testing.T) {
	const n = 256

	uni, err := NewUniformSelector(n)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(i%5 + 1)
	}
	wsel, err := NewWeightedSelector(weights)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := overlay.NewRing(n, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	rsel, err := NewRingSelector(ring)
	if err != nil {
		t.Fatal(err)
	}
	dring, err := overlay.NewDynamicRing(n, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the dynamic ring so only Prepare stands between the lazy
	// rebuild and the concurrent Pick calls.
	if err := dring.Replace(3, rng.New(13)); err != nil {
		t.Fatal(err)
	}
	dsel, err := NewDynamicRingSelector(dring)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		sel  Selector
	}{
		{"uniform", uni},
		{"weighted", wsel},
		{"ring", rsel},
		{"dynamic-ring", dsel},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if p, ok := tc.sel.(Preparer); ok {
				if err := p.Prepare(); err != nil {
					t.Fatal(err)
				}
			}
			const goroutines, picks = 8, 2000
			streams := rng.NewStreams(77, goroutines)
			var wg sync.WaitGroup
			errs := make([]int, goroutines) // out-of-range picks per goroutine
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for k := 0; k < picks; k++ {
						if v := tc.sel.Pick(streams[g]); v < 0 || v >= tc.sel.N() {
							errs[g]++
						}
					}
				}(g)
			}
			wg.Wait()
			for g, e := range errs {
				if e > 0 {
					t.Fatalf("goroutine %d: %d out-of-range picks", g, e)
				}
			}
		})
	}
}
