package core

import (
	"reflect"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/rng"
)

func TestSeededRoundWorkerIndependence(t *testing.T) {
	// The seeded profile round is a pure function of (profile, selector,
	// seed): every worker count gives the same bits.
	profile, err := bandwidth.Geometric(5000, 16)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewUniformSelector(5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		var ref RoundResult
		for _, workers := range []int{1, 2, 4, 8} {
			svc, err := NewService(profile, sel)
			if err != nil {
				t.Fatal(err)
			}
			res, err := svc.RunRoundSeeded(seed, workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateCapacities(res, profile); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if workers == 1 {
				ref = res
				if len(ref.Dates) == 0 {
					t.Fatal("no dates arranged")
				}
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Fatalf("seed %d: workers=%d diverged from workers=1 (%d vs %d dates)",
					seed, workers, len(res.Dates), len(ref.Dates))
			}
		}
	}
}

func TestSeededRoundScratchReuse(t *testing.T) {
	// Reusing one Service across seeded, worker-stream and serial rounds
	// must not leak state between the paths.
	profile := bandwidth.Homogeneous(800, 2)
	sel, _ := NewUniformSelector(800)
	svc, err := NewService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	first, err := svc.RunRoundSeeded(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc.RunRound(rng.New(99))
	if _, err := svc.RunRoundParallel(rng.NewStreams(5, 3), 3); err != nil {
		t.Fatal(err)
	}
	again, err := svc.RunRoundSeeded(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("interleaving other round paths changed a seeded round's result")
	}
}

func TestSeededRoundMatchesArranger(t *testing.T) {
	// An unfiltered seeded round uses the Arranger's exact derivation
	// scheme, so it must arrange the very same dates as
	// Arranger.Arrange(profile.Out, profile.In, seed, ·).
	profile, err := bandwidth.Geometric(2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewUniformSelector(2000)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewArranger(sel)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 1234
	res, err := svc.RunRoundSeeded(seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	dates, err := arr.Arrange(profile.Out, profile.In, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Dates, dates) {
		t.Fatalf("seeded round and Arranger disagree: %d vs %d dates", len(res.Dates), len(dates))
	}
}

func TestSeededRoundFilteredWorkerIndependence(t *testing.T) {
	profile := bandwidth.Homogeneous(3000, 1)
	sel, _ := NewUniformSelector(3000)
	alive := func(i int) bool { return i%7 != 0 }
	var ref RoundResult
	for _, workers := range []int{1, 4} {
		svc, err := NewService(profile, sel)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.RunRoundSeededFiltered(99, workers, alive)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Dates {
			if !alive(d.Sender) || !alive(d.Receiver) {
				t.Fatalf("date %v involves a dead node", d)
			}
		}
		if workers == 1 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("filtered seeded round: workers=%d diverged", workers)
		}
	}
}

func TestSeededRoundValidation(t *testing.T) {
	profile := bandwidth.Homogeneous(10, 1)
	sel, _ := NewUniformSelector(10)
	svc, _ := NewService(profile, sel)
	if _, err := svc.RunRoundSeeded(1, 0); err == nil {
		t.Error("accepted workers = 0")
	}
}

func TestDestOwnerPartition(t *testing.T) {
	// destOwner(d) must return exactly the owner whose destCut range holds
	// d, for every destination and worker count — owners with empty ranges
	// are never returned.
	for _, tc := range []struct{ n, workers int }{
		{1, 1}, {17, 2}, {100, 3}, {1000, 8}, {1000, 16}, {3, 16}, {10, 4},
	} {
		for d := 0; d < tc.n; d++ {
			o := destOwner(tc.n, tc.workers, d)
			if o < 0 || o >= tc.workers {
				t.Fatalf("n=%d workers=%d: owner(%d) = %d out of range", tc.n, tc.workers, d, o)
			}
			if lo, hi := destCut(tc.n, tc.workers, o), destCut(tc.n, tc.workers, o+1); d < lo || d >= hi {
				t.Fatalf("n=%d workers=%d: owner(%d) = %d but range is [%d, %d)", tc.n, tc.workers, d, o, lo, hi)
			}
		}
	}
}

// fillChunks populates per-(worker, owner) chunk buffers with a
// deterministic pseudo-random request pattern (in scan order per worker),
// returning the scratch plus the reference flat layout: buckets in
// rendezvous order, each holding its senders in (worker, scan) order.
func fillChunks(n, workers, perWorker int, seed uint64) (ws []workerScratch, wantOffers, wantReqs [][]int32) {
	ws = make([]workerScratch, workers)
	wantOffers = make([][]int32, n)
	wantReqs = make([][]int32, n)
	s := rng.New(seed)
	for w := range ws {
		ws[w].reset(workers)
	}
	for w := 0; w < workers; w++ {
		for k := 0; k < perWorker; k++ {
			d, sender := s.Intn(n), s.Intn(n)
			ws[w].offerChunk[destOwner(n, workers, d)].push(d, sender)
			d, sender = s.Intn(n), s.Intn(n)
			ws[w].reqChunk[destOwner(n, workers, d)].push(d, sender)
		}
	}
	// Reference layout: visit workers in order, replaying each worker's
	// chunks in owner order preserves per-destination scan order because a
	// destination maps to exactly one owner.
	for w := 0; w < workers; w++ {
		for o := 0; o < workers; o++ {
			ch := ws[w].offerChunk[o]
			for k, d := range ch.dest {
				wantOffers[d] = append(wantOffers[d], ch.sender[k])
			}
			ch = ws[w].reqChunk[o]
			for k, d := range ch.dest {
				wantReqs[d] = append(wantReqs[d], ch.sender[k])
			}
		}
	}
	return ws, wantOffers, wantReqs
}

func TestRadixSortLayout(t *testing.T) {
	// The exchange + owner counting sort must produce buckets in rendezvous
	// order, each holding its requests in (worker, scan) order — the exact
	// layout of the pre-radix per-worker-counts engine — at every worker
	// count, including workers > n.
	for _, tc := range []struct{ n, workers, perWorker int }{
		{1, 1, 3}, {17, 2, 10}, {100, 3, 40}, {1000, 8, 200}, {1000, 16, 50}, {5, 9, 4},
	} {
		ws, wantOffers, wantReqs := fillChunks(tc.n, tc.workers, tc.perWorker, 5)
		offerOff := make([]int32, tc.n+1)
		reqOff := make([]int32, tc.n+1)
		offersFlat, reqFlat := radixSort(tc.n, tc.workers, func(w int) *workerScratch { return &ws[w] },
			offerOff, reqOff, nil, nil)
		for v := 0; v < tc.n; v++ {
			gotO := offersFlat[offerOff[v]:offerOff[v+1]]
			gotR := reqFlat[reqOff[v]:reqOff[v+1]]
			if len(gotO) != len(wantOffers[v]) || (len(gotO) > 0 && !reflect.DeepEqual(gotO, wantOffers[v])) {
				t.Fatalf("n=%d workers=%d: offers bucket %d = %v, want %v", tc.n, tc.workers, v, gotO, wantOffers[v])
			}
			if len(gotR) != len(wantReqs[v]) || (len(gotR) > 0 && !reflect.DeepEqual(gotR, wantReqs[v])) {
				t.Fatalf("n=%d workers=%d: requests bucket %d = %v, want %v", tc.n, tc.workers, v, gotR, wantReqs[v])
			}
		}
		if int(offerOff[tc.n]) != len(offersFlat) || int(reqOff[tc.n]) != len(reqFlat) {
			t.Fatalf("n=%d workers=%d: totals do not close the offset tables", tc.n, tc.workers)
		}
	}
}

// BenchmarkRadixSort times the exchange + owner counting sort at engine
// scale (the pass that replaced the O(workers·n) offset scan and fill).
// The chunks are rebuilt outside the timed sections.
func BenchmarkRadixSort(b *testing.B) {
	const n, workers, perWorker = 1_000_000, 8, 250_000
	ws, _, _ := fillChunks(n, workers, perWorker, 11)
	offerOff := make([]int32, n+1)
	reqOff := make([]int32, n+1)
	var offersFlat, reqFlat []int32
	scratch := func(w int) *workerScratch { return &ws[w] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offersFlat, reqFlat = radixSort(n, workers, scratch, offerOff, reqOff, offersFlat, reqFlat)
	}
}

// BenchmarkSeededRound quantifies the derivation overhead of the
// worker-count-independent round against the worker-stream and serial
// paths at n=100k (the cost quoted in doc.go).
func BenchmarkSeededRound(b *testing.B) {
	const n = 100_000
	profile := bandwidth.Homogeneous(n, 1)
	sel, _ := NewUniformSelector(n)
	b.Run("serial-stream", func(b *testing.B) {
		svc, _ := NewService(profile, sel)
		s := rng.New(1)
		for i := 0; i < b.N; i++ {
			svc.RunRound(s)
		}
	})
	b.Run("worker-stream-1", func(b *testing.B) {
		svc, _ := NewService(profile, sel)
		streams := rng.NewStreams(1, 1)
		for i := 0; i < b.N; i++ {
			if _, err := svc.RunRoundParallel(streams, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seeded-1", func(b *testing.B) {
		svc, _ := NewService(profile, sel)
		for i := 0; i < b.N; i++ {
			if _, err := svc.RunRoundSeeded(uint64(i), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
