package core

import (
	"reflect"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/rng"
)

func TestSeededRoundWorkerIndependence(t *testing.T) {
	// The seeded profile round is a pure function of (profile, selector,
	// seed): every worker count gives the same bits.
	profile, err := bandwidth.Geometric(5000, 16)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewUniformSelector(5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		var ref RoundResult
		for _, workers := range []int{1, 2, 8} {
			svc, err := NewService(profile, sel)
			if err != nil {
				t.Fatal(err)
			}
			res, err := svc.RunRoundSeeded(seed, workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateCapacities(res, profile); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if workers == 1 {
				ref = res
				if len(ref.Dates) == 0 {
					t.Fatal("no dates arranged")
				}
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Fatalf("seed %d: workers=%d diverged from workers=1 (%d vs %d dates)",
					seed, workers, len(res.Dates), len(ref.Dates))
			}
		}
	}
}

func TestSeededRoundScratchReuse(t *testing.T) {
	// Reusing one Service across seeded, worker-stream and serial rounds
	// must not leak state between the paths.
	profile := bandwidth.Homogeneous(800, 2)
	sel, _ := NewUniformSelector(800)
	svc, err := NewService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	first, err := svc.RunRoundSeeded(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc.RunRound(rng.New(99))
	if _, err := svc.RunRoundParallel(rng.NewStreams(5, 3), 3); err != nil {
		t.Fatal(err)
	}
	again, err := svc.RunRoundSeeded(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("interleaving other round paths changed a seeded round's result")
	}
}

func TestSeededRoundMatchesArranger(t *testing.T) {
	// An unfiltered seeded round uses the Arranger's exact derivation
	// scheme, so it must arrange the very same dates as
	// Arranger.Arrange(profile.Out, profile.In, seed, ·).
	profile, err := bandwidth.Geometric(2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewUniformSelector(2000)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewArranger(sel)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 1234
	res, err := svc.RunRoundSeeded(seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	dates, err := arr.Arrange(profile.Out, profile.In, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Dates, dates) {
		t.Fatalf("seeded round and Arranger disagree: %d vs %d dates", len(res.Dates), len(dates))
	}
}

func TestSeededRoundFilteredWorkerIndependence(t *testing.T) {
	profile := bandwidth.Homogeneous(3000, 1)
	sel, _ := NewUniformSelector(3000)
	alive := func(i int) bool { return i%7 != 0 }
	var ref RoundResult
	for _, workers := range []int{1, 4} {
		svc, err := NewService(profile, sel)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.RunRoundSeededFiltered(99, workers, alive)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Dates {
			if !alive(d.Sender) || !alive(d.Receiver) {
				t.Fatalf("date %v involves a dead node", d)
			}
		}
		if workers == 1 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("filtered seeded round: workers=%d diverged", workers)
		}
	}
}

func TestSeededRoundValidation(t *testing.T) {
	profile := bandwidth.Homogeneous(10, 1)
	sel, _ := NewUniformSelector(10)
	svc, _ := NewService(profile, sel)
	if _, err := svc.RunRoundSeeded(1, 0); err == nil {
		t.Error("accepted workers = 0")
	}
}

// fillScratch populates workers count vectors with a deterministic pseudo-
// random pattern for the offset-scan tests and benchmarks.
func fillScratch(n, workers int, seed uint64) []workerScratch {
	ws := make([]workerScratch, workers)
	s := rng.New(seed)
	for w := range ws {
		ws[w].offerCount = make([]int32, n)
		ws[w].reqCount = make([]int32, n)
		for v := 0; v < n; v++ {
			ws[w].offerCount[v] = int32(s.Intn(3))
			ws[w].reqCount[v] = int32(s.Intn(3))
		}
	}
	return ws
}

func TestCountingOffsetsParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{1, 1}, {17, 2}, {100, 3}, {1000, 8}, {1000, 16},
	} {
		serial := fillScratch(tc.n, tc.workers, 5)
		par := fillScratch(tc.n, tc.workers, 5)
		so, sr := make([]int32, tc.n+1), make([]int32, tc.n+1)
		po, pr := make([]int32, tc.n+1), make([]int32, tc.n+1)
		st, srt := countingOffsets(tc.n, tc.workers, func(w int) *workerScratch { return &serial[w] }, so, sr)
		pt, prt := countingOffsetsParallel(tc.n, tc.workers, func(w int) *workerScratch { return &par[w] }, po, pr)
		if st != pt || srt != prt {
			t.Fatalf("n=%d workers=%d: totals diverge (%d/%d vs %d/%d)", tc.n, tc.workers, st, srt, pt, prt)
		}
		if !reflect.DeepEqual(so, po) || !reflect.DeepEqual(sr, pr) {
			t.Fatalf("n=%d workers=%d: offset tables diverge", tc.n, tc.workers)
		}
		for w := 0; w < tc.workers; w++ {
			if !reflect.DeepEqual(serial[w].offerCount, par[w].offerCount) ||
				!reflect.DeepEqual(serial[w].reqCount, par[w].reqCount) {
				t.Fatalf("n=%d workers=%d: worker %d cursors diverge", tc.n, tc.workers, w)
			}
		}
	}
}

// BenchmarkOffsetScan compares the serial O(workers*n) bucket-offset scan
// with the two-level parallel prefix sum at engine scale. The pristine
// counts are restored outside the timed sections (the pass rewrites them
// into cursors in place).
func BenchmarkOffsetScan(b *testing.B) {
	const n, workers = 1_000_000, 8
	pristine := fillScratch(n, workers, 11)
	work := fillScratch(n, workers, 11)
	offerOff := make([]int32, n+1)
	reqOff := make([]int32, n+1)
	restore := func() {
		for w := range work {
			copy(work[w].offerCount, pristine[w].offerCount)
			copy(work[w].reqCount, pristine[w].reqCount)
		}
	}
	scratch := func(w int) *workerScratch { return &work[w] }
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			restore()
			b.StartTimer()
			countingOffsets(n, workers, scratch, offerOff, reqOff)
		}
	})
	b.Run("two-level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			restore()
			b.StartTimer()
			countingOffsetsParallel(n, workers, scratch, offerOff, reqOff)
		}
	})
}

// BenchmarkSeededRound quantifies the derivation overhead of the
// worker-count-independent round against the worker-stream and serial
// paths at n=100k (the cost quoted in doc.go).
func BenchmarkSeededRound(b *testing.B) {
	const n = 100_000
	profile := bandwidth.Homogeneous(n, 1)
	sel, _ := NewUniformSelector(n)
	b.Run("serial-stream", func(b *testing.B) {
		svc, _ := NewService(profile, sel)
		s := rng.New(1)
		for i := 0; i < b.N; i++ {
			svc.RunRound(s)
		}
	})
	b.Run("worker-stream-1", func(b *testing.B) {
		svc, _ := NewService(profile, sel)
		streams := rng.NewStreams(1, 1)
		for i := 0; i < b.N; i++ {
			if _, err := svc.RunRoundParallel(streams, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seeded-1", func(b *testing.B) {
		svc, _ := NewService(profile, sel)
		for i := 0; i < b.N; i++ {
			if _, err := svc.RunRoundSeeded(uint64(i), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
