package core

import (
	"reflect"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/rng"
)

func TestSeededRoundWorkerIndependence(t *testing.T) {
	// The seeded profile round is a pure function of (profile, selector,
	// seed): every worker count gives the same bits.
	profile, err := bandwidth.Geometric(5000, 16)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewUniformSelector(5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		var ref RoundResult
		for _, workers := range []int{1, 2, 4, 8} {
			svc, err := NewService(profile, sel)
			if err != nil {
				t.Fatal(err)
			}
			res, err := svc.RunRoundSeeded(seed, workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateCapacities(res, profile); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if workers == 1 {
				ref = res
				if len(ref.Dates) == 0 {
					t.Fatal("no dates arranged")
				}
				continue
			}
			if !reflect.DeepEqual(res, ref) {
				t.Fatalf("seed %d: workers=%d diverged from workers=1 (%d vs %d dates)",
					seed, workers, len(res.Dates), len(ref.Dates))
			}
		}
	}
}

func TestSeededRoundScratchReuse(t *testing.T) {
	// Reusing one Service across seeded, worker-stream and serial rounds
	// must not leak state between the paths.
	profile := bandwidth.Homogeneous(800, 2)
	sel, _ := NewUniformSelector(800)
	svc, err := NewService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	first, err := svc.RunRoundSeeded(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc.RunRound(rng.New(99))
	if _, err := svc.RunRoundParallel(rng.NewStreams(5, 3), 3); err != nil {
		t.Fatal(err)
	}
	again, err := svc.RunRoundSeeded(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("interleaving other round paths changed a seeded round's result")
	}
}

func TestSeededRoundMatchesArranger(t *testing.T) {
	// An unfiltered seeded round uses the Arranger's exact derivation
	// scheme, so it must arrange the very same dates as
	// Arranger.Arrange(profile.Out, profile.In, seed, ·).
	profile, err := bandwidth.Geometric(2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewUniformSelector(2000)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewArranger(sel)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 1234
	res, err := svc.RunRoundSeeded(seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	dates, err := arr.Arrange(profile.Out, profile.In, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Dates, dates) {
		t.Fatalf("seeded round and Arranger disagree: %d vs %d dates", len(res.Dates), len(dates))
	}
}

func TestSeededRoundFilteredWorkerIndependence(t *testing.T) {
	profile := bandwidth.Homogeneous(3000, 1)
	sel, _ := NewUniformSelector(3000)
	alive := func(i int) bool { return i%7 != 0 }
	var ref RoundResult
	for _, workers := range []int{1, 4} {
		svc, err := NewService(profile, sel)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.RunRoundSeededFiltered(99, workers, alive)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Dates {
			if !alive(d.Sender) || !alive(d.Receiver) {
				t.Fatalf("date %v involves a dead node", d)
			}
		}
		if workers == 1 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("filtered seeded round: workers=%d diverged", workers)
		}
	}
}

func TestSeededRoundValidation(t *testing.T) {
	profile := bandwidth.Homogeneous(10, 1)
	sel, _ := NewUniformSelector(10)
	svc, _ := NewService(profile, sel)
	if _, err := svc.RunRoundSeeded(1, 0); err == nil {
		t.Error("accepted workers = 0")
	}
}

func TestSeededFilteredChurnRebalance(t *testing.T) {
	// Under skewed churn — every crash concentrated in the low id half — the
	// static profile-weight cuts would leave the low-half workers idle. The
	// filtered seeded path rebalances sender shards by live weight; the
	// rebalanced cuts must split the surviving weight evenly, and (because
	// seeded randomness derives per node, not per worker) the round's output
	// must stay bit-identical to the static-cut workers=1 round.
	const n = 4000
	profile := bandwidth.Homogeneous(n, 2)
	sel, _ := NewUniformSelector(n)
	alive := func(i int) bool { return i >= n/2 } // low half crashed
	svc, err := NewService(profile, sel)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	res, err := svc.RunRoundSeededFiltered(31, workers, alive)
	if err != nil {
		t.Fatal(err)
	}

	// The live cuts were rebuilt for this round: no shard may hold more
	// than its fair share of the surviving nodes (plus one boundary node).
	// Copy: the slice is reused by later rounds' balancedCuts calls.
	cut := append([]int(nil), svc.eng.liveCut...)
	if len(cut) != workers+1 {
		t.Fatalf("live cuts not computed: %v", cut)
	}
	fair := (n / 2) / workers
	for w := 0; w < workers; w++ {
		live := 0
		for i := cut[w]; i < cut[w+1]; i++ {
			if alive(i) {
				live++
			}
		}
		if live > fair+1 {
			t.Fatalf("worker %d shard [%d,%d) holds %d live nodes, fair share is %d",
				w, cut[w], cut[w+1], live, fair)
		}
	}
	// The static cuts would give workers 0 and 1 zero live nodes; the
	// rebalanced ones must not.
	for w := 0; w < workers; w++ {
		live := 0
		for i := cut[w]; i < cut[w+1]; i++ {
			if alive(i) {
				live++
			}
		}
		if live == 0 {
			t.Fatalf("worker %d still idle after rebalancing: shard [%d,%d)", w, cut[w], cut[w+1])
		}
	}

	// Rebalancing moves work, never bits.
	ref, err := svc.RunRoundSeededFiltered(31, 1, alive)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatal("churn-rebalanced round diverged from the serial round")
	}
}

// BenchmarkSeededRound quantifies the derivation overhead of the
// worker-count-independent round against the worker-stream and serial
// paths at n=100k (the cost quoted in doc.go).
func BenchmarkSeededRound(b *testing.B) {
	const n = 100_000
	profile := bandwidth.Homogeneous(n, 1)
	sel, _ := NewUniformSelector(n)
	b.Run("serial-stream", func(b *testing.B) {
		svc, _ := NewService(profile, sel)
		s := rng.New(1)
		for i := 0; i < b.N; i++ {
			svc.RunRound(s)
		}
	})
	b.Run("worker-stream-1", func(b *testing.B) {
		svc, _ := NewService(profile, sel)
		streams := rng.NewStreams(1, 1)
		for i := 0; i < b.N; i++ {
			if _, err := svc.RunRoundParallel(streams, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seeded-1", func(b *testing.B) {
		svc, _ := NewService(profile, sel)
		for i := 0; i < b.N; i++ {
			if _, err := svc.RunRoundSeeded(uint64(i), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
