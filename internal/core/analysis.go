package core

import (
	"fmt"
	"math"
)

// This file contains the analytical companions to the paper's Lemma 1: the
// exact Poisson-limit prediction of the arranged fraction, against which the
// simulations are validated.
//
// Under uniform selection with n nodes and m = lambda*n requests of each
// type, the offers and requests landing on one node are asymptotically
// independent Poisson(lambda) variables S and R, and the node arranges
// min(S, R) dates. The expected fraction of the optimum is therefore
//
//	alpha(lambda) = E[min(S, R)] / lambda,  S, R ~ Poisson(lambda) iid.
//
// For lambda = 1 this evaluates to 0.4761..., matching the "slightly more
// than 0.47" the paper reports from its own simulations (Section 4). The
// paper's proven lower bound is much cruder: its sub-bucket argument yields
// 0.064, and its Poisson estimate in the uniform case yields 0.44.

// LowerBoundBeta is the universal constant beta the paper proves in
// Lemma 1/2: with high probability at least beta*m dates are arranged, for
// any selection distribution.
const LowerBoundBeta = 0.064

// PaperUniformEstimate is the uniform-case estimate quoted in the paper
// ("we get an estimate of 0.44*n when m = n").
const PaperUniformEstimate = 0.44

// PoissonPMF returns P(Poisson(lambda) = k), computed in log space for
// stability at large lambda.
func PoissonPMF(lambda float64, k int) float64 {
	if lambda <= 0 || k < 0 {
		if k == 0 && lambda <= 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(lambda) - lambda - lg)
}

// PoissonSF returns P(Poisson(lambda) >= k).
func PoissonSF(lambda float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	// Sum the lower tail and subtract; the PMF terms are computed stably.
	var cdf float64
	for i := 0; i < k; i++ {
		cdf += PoissonPMF(lambda, i)
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf
}

// ExpectedMinPoisson returns E[min(S, R)] for iid S, R ~ Poisson(lambda),
// using E[min] = sum_{k>=1} P(S >= k)^2. The series is truncated when the
// tail is below 1e-12, which for the lambdas used here (<= 64) converges in
// a few hundred terms.
func ExpectedMinPoisson(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	var sum float64
	for k := 1; ; k++ {
		sf := PoissonSF(lambda, k)
		term := sf * sf
		sum += term
		if term < 1e-12 && float64(k) > lambda {
			return sum
		}
		if k > 100000 {
			return sum
		}
	}
}

// PredictUniformFraction returns the Poisson-limit prediction of the
// arranged fraction alpha(lambda) = E[min(S,R)]/lambda for uniform
// selection with lambda = m/n requests of each type per node. Simulations
// in this repository match it to three decimals (see TestPoissonPrediction).
func PredictUniformFraction(lambda float64) (float64, error) {
	if lambda <= 0 {
		return 0, fmt.Errorf("core: load ratio must be positive, got %v", lambda)
	}
	return ExpectedMinPoisson(lambda) / lambda, nil
}

// PredictWeightedFraction generalizes the prediction to an arbitrary
// selection distribution p_1..p_n with m requests of each type: node i
// receives Poisson(m*p_i) of each kind, so
//
//	E[X] = sum_i E[min(Poisson(m*p_i), Poisson(m*p_i))]
//
// and the fraction is E[X]/m. This is the quantity behind the paper's
// conjecture that uniform is the worst case.
func PredictWeightedFraction(weights []float64, m int) (float64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("core: m must be positive, got %d", m)
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return 0, fmt.Errorf("core: invalid weight %v at %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return 0, fmt.Errorf("core: weights sum to zero")
	}
	var ex float64
	for _, w := range weights {
		if w == 0 {
			continue
		}
		ex += ExpectedMinPoisson(float64(m) * w / sum)
	}
	return ex / float64(m), nil
}
