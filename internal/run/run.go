// Package run is the seed-first unified runner behind repro.Run: one
// entrypoint that executes any protocol of the repository — rumor spreading,
// multi-rumor, message-level live spreading, network-coded mongering,
// replicated storage, the explicit dating handshake — from a Spec plus a set
// of orthogonal axes carried by functional options.
//
// # Why a single runner
//
// The facade used to grow one entrypoint per subsystem, each with its own
// signature (some took a *rng.Stream, some buried the seed in the config)
// and with Workers/Engine/Net duplicated across four config structs. The
// runner collapses that N×M surface: a protocol config implements Spec, and
// the axes that are orthogonal to the protocol — seed, worker budget,
// execution substrate, network model, tracing — are options:
//
//	rep, err := run.Run(cfg,
//	    run.WithSeed(42),
//	    run.WithWorkers(8),
//	    run.WithNet(live.Loss{P: 0.01}),
//	)
//
// # Seed derivation
//
// *rng.Stream disappears from the public surface; Run derives every stream
// internally with the repository's one derivation scheme. Each protocol owns
// a domain tag and its effective seed is
//
//	rng.Derive(rootSeed, domain)
//
// so protocols sharing a root seed draw from disjoint stream families, and
// feeding the legacy entrypoints a stream built with StreamFor reproduces a
// Run bit for bit — the seed-compatibility golden tests pin exactly that.
//
// # The worker budget
//
// WithWorkers(k) sizes a par.Budget of k tokens that the whole run draws
// from: the protocol's dating rounds grab spare tokens per round (via
// Arranger.ArrangeShared / Service.RunRoundSeeded) instead of pinning a
// fixed inner worker count. Every budget-fed engine derives its randomness
// per unit of work, so the worker count a round happens to get is a pure
// speed knob — reports are bit-identical for every k >= 1.
package run

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
)

// Protocol seed-derivation domains. Every Spec derives its effective seed
// as rng.Derive(rootSeed, domain), keeping the stream families of protocols
// that share a root seed disjoint. The tags live in the 0xA_ range; the
// full allocation map — every family of every package — is the registry in
// internal/rng/domains.go, mirrored in docs/DETERMINISM.md.
const (
	DomainRumor     uint64 = 0xA1
	DomainMulti     uint64 = 0xA2
	DomainLive      uint64 = 0xA3
	DomainMonger    uint64 = 0xA4
	DomainStorage   uint64 = 0xA5
	DomainHandshake uint64 = 0xA6
	DomainAsync     uint64 = 0xA7
	DomainTopology  uint64 = 0xA8
	DomainConsensus uint64 = 0xA9
)

// SeedFor returns the effective seed a protocol with the given domain tag
// derives from a root seed.
func SeedFor(seed, domain uint64) uint64 { return rng.Derive(seed, domain) }

// StreamFor returns the run stream a protocol with the given domain tag
// derives from a root seed. Feeding this stream to a legacy *Stream-based
// entrypoint reproduces Run(spec, WithSeed(seed)) bit for bit.
func StreamFor(seed, domain uint64) *rng.Stream { return rng.New(SeedFor(seed, domain)) }

// Engine selects the execution substrate for protocols that have more than
// one (today: the live message-level runs).
type Engine int

const (
	// EngineDefault lets the protocol pick its production substrate (for
	// live runs, the sharded runtime).
	EngineDefault Engine = iota
	// EngineGoroutine is the goroutine-per-peer demonstration engine.
	EngineGoroutine
	// EngineSharded is the sharded flat-buffer runtime; it scales to
	// millions of peers and accepts a NetModel.
	EngineSharded
)

// Options carries the orthogonal axes of a run. Specs read it in Execute;
// construct it through Run's functional options, never literally.
type Options struct {
	// Seed is the root seed; each protocol derives its own streams from it
	// (see the Domain tags).
	Seed uint64
	// Workers is the run's total worker budget, >= 1.
	Workers int
	// Budget is the shared token pool the protocol's rounds draw from;
	// Run sizes it from Workers when the caller did not share one.
	Budget *par.Budget
	// Engine picks the execution substrate where the protocol has several.
	Engine Engine
	// Net plugs a network model into message-level substrates; nil is the
	// paper's perfect-sync network.
	Net live.NetModel
	// Pipeline is the round-pipelining depth: protocols whose rounds can be
	// fused run batches of up to Pipeline rounds with the scatter of round
	// r+1 overlapping the match of round r (core.RunRoundsSeeded) or with
	// the delivery sort fused into the step phase (live's RunPipelined).
	// 0 or 1 means sequential rounds; results are bit-identical either way.
	Pipeline int
	// Trace receives the run's per-round progress, one call per protocol
	// round in round order with the trajectory value of that round. Calls
	// are a replay of the recorded trajectory after the protocol finishes
	// (identical semantics for every protocol), not a live feed. For
	// bucketed protocols (AsyncConfig) the round number is the 1-based
	// calendar bucket index.
	Trace func(round, progress int)
	// Obs, when non-nil, receives the run's instrumentation: phase spans
	// and per-round gauges from every runtime the protocol constructs.
	// Observers are read-only — attaching one never changes any result —
	// and Run fills Report.Metrics from the tracks the run registered.
	Obs *obs.Observer
}

// Option mutates Options; the With* constructors are the public vocabulary.
type Option func(*Options)

// WithSeed sets the root seed of the run (default 0). Two runs of the same
// spec and seed are bit-identical whatever the other options say.
func WithSeed(seed uint64) Option { return func(o *Options) { o.Seed = seed } }

// WithWorkers sets the run's worker budget (default 1). Parallelism is a
// pure speed knob: every worker count produces the same report.
func WithWorkers(k int) Option { return func(o *Options) { o.Workers = k } }

// WithEngine selects the execution substrate for protocols that have more
// than one; protocols with a single substrate ignore it.
func WithEngine(e Engine) Option { return func(o *Options) { o.Engine = e } }

// WithNet plugs a network model — latency, loss, churn — into the run.
// Only message-level protocols (live spreading) consult it.
func WithNet(m live.NetModel) Option { return func(o *Options) { o.Net = m } }

// WithPipeline sets the round-pipelining depth (default 1, sequential):
// protocols with fusable rounds execute batches of up to k rounds with the
// next round's request scatter overlapping the current round's matching
// (and, on the live runtime, the delivery sort fused into the step phase).
// Pipelining is a pure scheduling change — every depth produces the same
// report bit for bit; protocols whose rounds cannot be fused (e.g. crashing
// nodes, where round r+1 may not start before round r's deaths are known)
// ignore it.
func WithPipeline(k int) Option { return func(o *Options) { o.Pipeline = k } }

// WithTrace registers a per-round observer: fn is called once per protocol
// round, in round order, with the round number (1-based) and that round's
// trajectory value. The calls replay the recorded trajectory after the run
// completes — the same semantics for every protocol — so fn is for
// rendering progress histories, not for watching a long run live (attach a
// protocol-level hook such as RumorConfig.OnRound for that).
func WithTrace(fn func(round, progress int)) Option { return func(o *Options) { o.Trace = fn } }

// WithBudget shares an existing worker pool with the run instead of sizing
// a fresh one from WithWorkers — this is how the experiment harness lets a
// run's inner rounds soak up cores its other jobs are done with.
func WithBudget(b *par.Budget) Option { return func(o *Options) { o.Budget = b } }

// WithObserver attaches an instrumentation observer: every runtime the
// protocol constructs registers phase-span tracks and per-round gauges on
// it, and the run's Report carries their aggregate in Metrics. Observers
// are strictly read-only — they never touch a random stream or reorder an
// exchange — so an instrumented run is bit-identical to an uninstrumented
// one (the CI instrumentation-identity smoke pins this at several shard
// counts).
func WithObserver(o *obs.Observer) Option { return func(opts *Options) { opts.Obs = o } }

// defaultObserver is the process-wide fallback observer consulted when a
// run carries no explicit WithObserver. It exists for the CLIs: hetsim and
// datebench drive runs through harness code whose signatures do not thread
// an observer, and -trace/-metrics attach one here instead. Because
// observers are read-only, the global can never change a result.
var defaultObserver atomic.Pointer[obs.Observer]

// SetDefaultObserver installs (or, with nil, removes) the process-wide
// fallback observer.
func SetDefaultObserver(o *obs.Observer) { defaultObserver.Store(o) }

// DefaultObserver returns the process-wide fallback observer, or nil.
func DefaultObserver() *obs.Observer { return defaultObserver.Load() }

// Report is the unified outcome every protocol emits: enough for the sim
// registry, the CLIs and the BENCH_*.json writers to consume any run
// generically, with the protocol-native result preserved in Detail.
type Report struct {
	// Protocol is the spec's short name ("rumor", "live", "storage", ...).
	Protocol string `json:"protocol"`
	// Rounds is the number of protocol rounds executed.
	Rounds int `json:"rounds"`
	// Completed reports whether the protocol reached its goal within its
	// round cap (fixed-length protocols always complete).
	Completed bool `json:"completed"`
	// Trajectory is the per-round progress counter: informed nodes,
	// (node, rumor) pairs known, fully decoded nodes, cumulative replicas
	// placed, cumulative dates completed.
	Trajectory []int `json:"trajectory,omitempty"`
	// Sent is the per-round count of dates arranged / messages moved.
	Sent []int `json:"sent,omitempty"`
	// Messages is the run's total message (or date) count.
	Messages int64 `json:"messages"`
	// Dropped / Clamped surface the message-engine traffic counters for
	// protocols that run on one (live, async, handshake): messages lost to
	// the network model or invalid destinations, and messages whose
	// planned delay exceeded the engine's schedulable horizon (a NetModel
	// whose Plan and MaxDelay disagree). Zero for round-abstract protocols.
	Dropped int64 `json:"dropped,omitempty"`
	Clamped int64 `json:"clamped,omitempty"`
	// MaxInLoad / MaxOutLoad are the worst per-round per-node loads, for
	// protocols that track bandwidth honesty (0 where untracked).
	MaxInLoad  int `json:"max_in_load,omitempty"`
	MaxOutLoad int `json:"max_out_load,omitempty"`
	// Wall is the run's wall-clock time, stamped by Run.
	Wall time.Duration `json:"wall_ns"`
	// Seed and Workers echo the options for reproducibility records.
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	// Metrics is the aggregated instrumentation of the run — phase
	// wall-clock totals and per-round gauge summaries — when an observer
	// was attached (WithObserver or the CLI default); nil otherwise.
	Metrics *obs.Metrics `json:"metrics,omitempty"`
	// Detail is the protocol-native result (gossip.Result, storage.Result,
	// ...) for callers that need fields the unified shape does not carry.
	Detail any `json:"-"`
}

// Spec is a runnable protocol configuration. Every protocol config of the
// repository implements it; Run is the only caller of Execute.
type Spec interface {
	// Protocol returns the spec's short name, used as Report.Protocol and
	// as the protocol column of generic tables.
	Protocol() string
	// Execute runs the protocol under the given options and returns the
	// unified report. Run stamps Protocol, Seed, Workers and Wall; Execute
	// fills everything else.
	Execute(o *Options) (Report, error)
}

// Run executes a protocol spec under the given options and returns its
// unified report. The report is a pure function of (spec, seed): the worker
// budget, the engine choice (under the perfect-sync network) and shared
// budgets only change wall-clock time.
func Run(spec Spec, opts ...Option) (Report, error) {
	if spec == nil {
		return Report{}, fmt.Errorf("run: nil spec")
	}
	o := &Options{Workers: 1}
	for _, opt := range opts {
		opt(o)
	}
	if o.Workers < 1 {
		return Report{}, fmt.Errorf("run: workers %d must be at least 1", o.Workers)
	}
	if o.Pipeline < 0 {
		return Report{}, fmt.Errorf("run: pipeline depth %d must be non-negative", o.Pipeline)
	}
	if o.Budget == nil {
		b, err := par.NewBudget(o.Workers)
		if err != nil {
			return Report{}, err
		}
		o.Budget = b
	}
	if o.Obs == nil {
		o.Obs = defaultObserver.Load()
	}
	mark := o.Obs.Mark()
	start := time.Now()
	rep, err := spec.Execute(o)
	if err != nil {
		return Report{}, err
	}
	rep.Protocol = spec.Protocol()
	rep.Seed = o.Seed
	rep.Workers = o.Workers
	rep.Wall = time.Since(start)
	if rep.Rounds == 0 {
		rep.Rounds = len(rep.Trajectory)
	}
	if o.Obs != nil {
		rep.Metrics = o.Obs.MetricsSince(mark)
	}
	if o.Trace != nil {
		for i, v := range rep.Trajectory {
			o.Trace(i+1, v)
		}
	}
	return rep, nil
}

// SumSent totals a per-round message history; protocols use it to fill
// Report.Messages when the engine does not count traffic itself.
func SumSent(sent []int) int64 {
	var total int64
	for _, v := range sent {
		total += int64(v)
	}
	return total
}
