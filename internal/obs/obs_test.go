package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilObserverIsInert(t *testing.T) {
	var o *Observer
	tr := o.Track("x", 4)
	if tr != nil {
		t.Fatal("nil observer handed out a non-nil track")
	}
	// Every recording call on the nil chain must be a no-op, not a panic:
	// this is the disabled path the runtimes thread unconditionally.
	tr.Arena(2).Record(1, PhaseStep, time.Now())
	tr.Gauge("g").Sample(1, 42)
	tr.Barrier()
	if tr.Spans() != nil {
		t.Fatal("nil track returned spans")
	}
	if tr.Name() != "" {
		t.Fatal("nil track has a name")
	}
	if o.Mark() != 0 {
		t.Fatal("nil observer Mark != 0")
	}
	if o.Metrics() != nil {
		t.Fatal("nil observer produced metrics")
	}
	if o.Summary() != "" {
		t.Fatal("nil observer produced a summary")
	}
}

func TestSpansMergeAtBarrier(t *testing.T) {
	o := NewObserver()
	tr := o.Track("rt", 2)
	start := time.Now()
	tr.Arena(0).Record(1, PhaseDeliver, start)
	tr.Arena(1).Record(1, PhaseStep, start)
	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("spans visible before barrier: %d", got)
	}
	tr.Barrier()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("after barrier: %d spans, want 2", len(spans))
	}
	if spans[0].Shard != 0 || spans[0].Phase != PhaseDeliver || spans[0].Round != 1 {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[1].Shard != 1 || spans[1].Phase != PhaseStep {
		t.Fatalf("span 1 = %+v", spans[1])
	}
	// Arenas were handed off, not duplicated: a second barrier adds nothing.
	tr.Barrier()
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("double barrier duplicated spans: %d", got)
	}
}

func TestMetricsAggregation(t *testing.T) {
	o := NewObserver()
	tr := o.Track("rt", 2)
	base := time.Now().Add(-time.Second)
	tr.Arena(0).Record(1, PhaseStep, base)
	tr.Arena(1).Record(1, PhaseStep, base)
	tr.Arena(0).Record(1, PhaseRoute, base)
	tr.Barrier()
	g := tr.Gauge("sent")
	g.Sample(1, 10)
	g.Sample(2, 30)
	g.Sample(3, 20)

	m := o.Metrics()
	if m == nil || len(m.Phases) != 2 || len(m.Gauges) != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	step := m.Phases[0]
	if step.Phase != "step" || step.Track != "rt" || step.Spans != 2 || step.Shards != 2 {
		t.Fatalf("step metric = %+v", step)
	}
	if step.TotalSec <= 0 || step.MeanSec <= 0 || step.MaxSec < step.MeanSec {
		t.Fatalf("step timing not aggregated: %+v", step)
	}
	if route := m.Phases[1]; route.Phase != "route" || route.Spans != 1 {
		t.Fatalf("route metric = %+v", route)
	}
	gm := m.Gauges[0]
	if gm.Name != "sent" || gm.Samples != 3 || gm.Last != 20 || gm.Min != 10 || gm.Max != 30 {
		t.Fatalf("gauge metric = %+v", gm)
	}
	if s := o.Summary(); !strings.Contains(s, "step") || !strings.Contains(s, "sent") {
		t.Fatalf("summary missing rows:\n%s", s)
	}
}

func TestMetricsSinceMark(t *testing.T) {
	o := NewObserver()
	first := o.Track("a", 1)
	first.Arena(0).Record(1, PhaseRound, time.Now())
	first.Barrier()
	mark := o.Mark()
	second := o.Track("b", 1)
	second.Arena(0).Record(1, PhaseRound, time.Now())
	second.Barrier()

	m := o.MetricsSince(mark)
	if len(m.Phases) != 1 || m.Phases[0].Track != "b" {
		t.Fatalf("MetricsSince(mark) = %+v, want track b only", m)
	}
	if all := o.Metrics(); len(all.Phases) != 2 {
		t.Fatalf("Metrics() = %+v, want both tracks", all)
	}
}

func TestGaugeRegistryReuses(t *testing.T) {
	o := NewObserver()
	tr := o.Track("rt", 1)
	if tr.Gauge("x") != tr.Gauge("x") {
		t.Fatal("same name produced distinct gauges")
	}
	if tr.Gauge("x") == tr.Gauge("y") {
		t.Fatal("distinct names share a gauge")
	}
}

func TestWriteTraceIsValidChromeJSON(t *testing.T) {
	o := NewObserver()
	tr := o.Track("rt", 2)
	base := time.Now() // after the epoch, so Ts >= 0
	time.Sleep(time.Millisecond)
	tr.Arena(0).Record(1, PhaseDeliver, base)
	tr.Arena(1).Record(1, PhaseStep, base)
	tr.Barrier()
	tr.Gauge("depth").Sample(1, 7)

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var phases = map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
	}
	// One process_name + two thread_name metadata, two spans, one counter.
	if phases["M"] != 3 || phases["X"] != 2 || phases["C"] != 1 {
		t.Fatalf("event mix = %v, want M:3 X:2 C:1", phases)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && (ev.Ts < 0 || ev.Dur <= 0) {
			t.Fatalf("span with non-positive timing: %+v", ev)
		}
		if ev.Ph == "C" && ev.Args["depth"] != float64(7) {
			t.Fatalf("counter args = %v", ev.Args)
		}
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseDeliver: "deliver", PhaseStep: "step",
		PhaseRoute: "route", PhaseRound: "round",
	}
	for p, name := range want {
		if p.String() != name {
			t.Fatalf("Phase(%d).String() = %q, want %q", p, p.String(), name)
		}
	}
	if Phase(250).String() != "phase?" {
		t.Fatalf("out-of-range phase = %q", Phase(250).String())
	}
}
