package obs

// Chrome trace_event export: the observer's spans and gauges written as a
// trace_event JSON file loadable in about:tracing or https://ui.perfetto.dev.
// Each track becomes one process (pid = registration order), each shard one
// thread, each span a complete ("X") event and each gauge a counter ("C")
// series. Events are emitted one per line inside the traceEvents array, so
// the file doubles as a greppable JSONL timeline.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// traceEvent is one trace_event record; timestamps and durations are in
// microseconds since the observer epoch, per the trace_event spec.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usec converts a duration to trace_event microseconds.
func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteTrace writes every barrier-merged span and gauge sample of the
// observer as a Chrome trace_event JSON document.
func (o *Observer) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	enc := func(first *bool, ev traceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !*first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		*first = false
		_, err = bw.Write(b)
		return err
	}
	first := true
	for _, t := range o.snapshotTracks(0) {
		if err := enc(&first, traceEvent{
			Name: "process_name", Ph: "M", Pid: t.pid,
			Args: map[string]any{"name": t.name},
		}); err != nil {
			return err
		}
		for w := range t.arenas {
			if err := enc(&first, traceEvent{
				Name: "thread_name", Ph: "M", Pid: t.pid, Tid: w,
				Args: map[string]any{"name": fmt.Sprintf("shard %d", w)},
			}); err != nil {
				return err
			}
		}
		for _, sp := range t.Spans() {
			if err := enc(&first, traceEvent{
				Name: sp.Phase.String(), Ph: "X", Pid: t.pid, Tid: int(sp.Shard),
				Ts: usec(sp.Start), Dur: usec(sp.Dur),
				Args: map[string]any{"round": sp.Round},
			}); err != nil {
				return err
			}
		}
		t.mu.Lock()
		gauges := append([]*Gauge(nil), t.gauges...)
		t.mu.Unlock()
		for _, g := range gauges {
			for _, s := range g.snapshot() {
				if err := enc(&first, traceEvent{
					Name: g.name, Ph: "C", Pid: t.pid,
					Ts:   usec(s.TS),
					Args: map[string]any{g.name: s.Value},
				}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTraceFile writes the observer's timeline to path (see WriteTrace).
func (o *Observer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
