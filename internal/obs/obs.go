// Package obs is the deterministic instrumentation layer: phase spans,
// runtime metrics, trace export and profiling hooks for the three execution
// runtimes (core engine rounds, the sharded live runtime, the clockless
// async runtime).
//
// # Shape
//
// An Observer is a passive sink a run records into. Each runtime instance
// registers a Track (one "process" in the exported timeline); a track owns
// one span Arena per shard plus any number of named Gauges:
//
//   - spans are per-(round|bucket, shard, phase) wall-clock timings. Each
//     shard appends into its own arena with no synchronization while the
//     round executes; the runtime's coordinator merges the arenas into the
//     track at the round barrier (Track.Barrier), where the runtime already
//     synchronizes to fold traffic counters.
//   - gauges are per-round sampled values (messages sent, queue depth,
//     scratch bytes, budget tokens in flight, ...), recorded by the
//     coordinator once per round.
//
// Exporters — the Chrome trace_event writer (WriteTrace), the Metrics
// aggregate and the plain-text Summary table — read only barrier-merged
// state under the track locks, so they may run while a run is in progress
// (they simply do not see the round currently executing).
//
// # Determinism contract
//
// Observers are read-only with respect to the simulation: they never touch
// a random stream, never reorder message exchanges, and never feed anything
// back into protocol state. Attaching an observer therefore cannot change
// any result — an instrumented run is bit-identical to an uninstrumented
// one, a property the runtime test suites and the CI instrumentation-
// identity smoke pin at multiple shard counts. The only cost of a disabled
// observer (nil *Observer, nil *Track) is a nil check on the hot path:
// every recording method is nil-receiver-safe and runtimes skip the
// time.Now calls entirely when no observer is attached.
package obs

import (
	"sync"
	"time"
)

// Phase labels one timed section of a runtime's round (or bucket) loop.
type Phase uint8

// The instrumented phases. Deliver/Step/Route are the three phases of the
// sharded runtimes' round loop (in the live runtime's pipelined schedule
// the delivery fill is fused into Step); Round is the whole-round span of
// the core engine's dating rounds, which parallelize inside the engine
// rather than across long-lived shards.
const (
	PhaseDeliver Phase = iota
	PhaseStep
	PhaseRoute
	PhaseRound
	phaseCount
)

var phaseNames = [...]string{"deliver", "step", "route", "round"}

// String returns the phase's name as used in trace events and tables.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase?"
}

// Span is one recorded phase timing: shard Shard spent Dur on Phase of
// round Round, starting Start after the observer's epoch.
type Span struct {
	Round int32
	Shard int32
	Phase Phase
	Start time.Duration
	Dur   time.Duration
}

// Arena is one shard's private span sink. Record appends with no
// synchronization — only the owning shard writes between barriers, and
// Track.Barrier hands the spans to the track. A nil arena ignores records,
// but runtimes should gate the surrounding time.Now calls on the observer
// being attached rather than rely on that.
type Arena struct {
	epoch time.Time
	shard int32
	spans []Span
}

// Record appends one span: the phase ran from start until now.
func (a *Arena) Record(round int, p Phase, start time.Time) {
	if a == nil {
		return
	}
	a.spans = append(a.spans, Span{
		Round: int32(round),
		Shard: a.shard,
		Phase: p,
		Start: start.Sub(a.epoch),
		Dur:   time.Since(start),
	})
}

// Sample is one gauge observation: Value at round Round, TS after the
// observer's epoch.
type Sample struct {
	Round int32
	TS    time.Duration
	Value int64
}

// Gauge is a named per-round sampled series. Sample is called by the
// runtime's coordinator (one goroutine), once per round; a nil gauge
// ignores samples.
type Gauge struct {
	name    string
	epoch   time.Time
	mu      sync.Mutex
	samples []Sample
}

// Sample records the gauge's value at the given round.
func (g *Gauge) Sample(round int, v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.samples = append(g.samples, Sample{Round: int32(round), TS: time.Since(g.epoch), Value: v})
	g.mu.Unlock()
}

// snapshot copies the sample series for an exporter.
func (g *Gauge) snapshot() []Sample {
	g.mu.Lock()
	out := append([]Sample(nil), g.samples...)
	g.mu.Unlock()
	return out
}

// Track is one runtime instance's instrumentation: a name (the process
// label of the exported timeline), per-shard span arenas and named gauges.
// A nil track hands out nil arenas and gauges, so a runtime threads it
// unconditionally and pays nothing when observation is off.
type Track struct {
	name   string
	pid    int
	epoch  time.Time
	arenas []Arena

	mu     sync.Mutex
	spans  []Span // barrier-merged spans
	gauges []*Gauge
}

// Name returns the track's label.
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Arena returns shard w's span arena.
func (t *Track) Arena(w int) *Arena {
	if t == nil {
		return nil
	}
	return &t.arenas[w]
}

// Gauge returns the named gauge, creating it on first use. Gauges are
// registered at runtime construction (one goroutine); Sample and the
// exporters are then safe concurrently.
func (t *Track) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, g := range t.gauges {
		if g.name == name {
			return g
		}
	}
	g := &Gauge{name: name, epoch: t.epoch}
	t.gauges = append(t.gauges, g)
	return g
}

// Barrier merges every arena's spans into the track. Runtimes call it from
// the coordinator at the round barrier — the point where the shards are
// already quiescent — so arena appends never race with the merge, and
// exporters reading the track see whole rounds only.
func (t *Track) Barrier() {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.arenas {
		a := &t.arenas[i]
		t.spans = append(t.spans, a.spans...)
		a.spans = a.spans[:0]
	}
	t.mu.Unlock()
}

// Spans returns a copy of the barrier-merged spans.
func (t *Track) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	return out
}

// Observer collects instrumentation tracks. The zero value is not useful;
// construct with NewObserver. A nil *Observer is the disabled state: it
// hands out nil tracks and every recording call on those is a no-op.
type Observer struct {
	epoch  time.Time
	mu     sync.Mutex
	tracks []*Track
}

// NewObserver returns an empty observer; its epoch (trace time zero) is the
// moment of creation.
func NewObserver() *Observer {
	return &Observer{epoch: time.Now()}
}

// Track registers a new instrumentation track with one span arena per
// shard. Safe for concurrent callers (parallel harness runs sharing one
// observer each register their own tracks). On a nil observer it returns a
// nil track.
func (o *Observer) Track(name string, shards int) *Track {
	if o == nil {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	t := &Track{name: name, epoch: o.epoch, arenas: make([]Arena, shards)}
	for w := range t.arenas {
		t.arenas[w] = Arena{epoch: o.epoch, shard: int32(w)}
	}
	o.mu.Lock()
	t.pid = len(o.tracks)
	o.tracks = append(o.tracks, t)
	o.mu.Unlock()
	return t
}

// Mark returns the number of tracks registered so far; MetricsSince(mark)
// aggregates only tracks registered after it, which is how run.Run
// attributes a shared observer's tracks to the run that created them.
func (o *Observer) Mark() int {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.tracks)
}

// snapshotTracks returns the track list from the given mark onward.
func (o *Observer) snapshotTracks(mark int) []*Track {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if mark < 0 || mark > len(o.tracks) {
		mark = 0
	}
	return append([]*Track(nil), o.tracks[mark:]...)
}
