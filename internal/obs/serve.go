package obs

// Opt-in live profiling for the CLIs: an HTTP server exposing net/http/pprof
// (CPU, heap, goroutine, block profiles of a long run while it executes) and
// expvar (process memstats plus the observer's aggregated metrics). Nothing
// here runs unless a CLI passes -pprof; the simulation never touches it.

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
	"sync/atomic"
)

var (
	expObserver atomic.Pointer[Observer]
	expOnce     sync.Once
)

// Publish exposes the observer's aggregated metrics as the expvar variable
// "obs" (served at /debug/vars by StartDebugServer). Metrics reads only
// barrier-merged state, so sampling mid-run is safe and shows whole rounds.
// Calling Publish again swaps the published observer.
func Publish(o *Observer) {
	expObserver.Store(o)
	expOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			return expObserver.Load().Metrics()
		}))
	})
}

// StartDebugServer binds addr (e.g. "localhost:6060") and serves the
// default mux — /debug/pprof/* and /debug/vars — in a background goroutine.
// It returns the bound address (useful with a ":0" addr) or the bind error;
// serving errors after a successful bind are ignored, profiling is best
// effort. The caller owns the returned server (Close on shutdown, or simply
// exit).
func StartDebugServer(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
