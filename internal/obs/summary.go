package obs

// Aggregated views of an observer: the portable Metrics structure attached
// to run.Report (and serialized by datebench -json), and the plain-text
// summary table the CLIs print under -metrics.

import (
	"fmt"

	"repro/internal/stats"
)

// PhaseMetric aggregates every span of one (track, phase) pair.
type PhaseMetric struct {
	Track string `json:"track"`
	Phase string `json:"phase"`
	// Shards is the track's shard count; Spans the number of recorded
	// spans (≈ rounds × shards for a phase every shard runs each round).
	Shards int `json:"shards"`
	Spans  int `json:"spans"`
	// TotalSec sums the spans' wall-clock durations across all shards;
	// MeanSec and MaxSec are per-span.
	TotalSec float64 `json:"total_seconds"`
	MeanSec  float64 `json:"mean_seconds"`
	MaxSec   float64 `json:"max_seconds"`
}

// GaugeMetric summarizes one gauge's sampled series.
type GaugeMetric struct {
	Track   string `json:"track"`
	Name    string `json:"name"`
	Samples int    `json:"samples"`
	Last    int64  `json:"last"`
	Min     int64  `json:"min"`
	Max     int64  `json:"max"`
}

// Metrics is the aggregate instrumentation of one or more tracks: the
// Metrics section of run.Report. Phases appear in (track, phase) order,
// gauges in registration order, so the structure is stable for goldens.
type Metrics struct {
	Phases []PhaseMetric `json:"phases,omitempty"`
	Gauges []GaugeMetric `json:"gauges,omitempty"`
}

// Metrics aggregates every track of the observer. Nil-safe: a nil observer
// returns nil.
func (o *Observer) Metrics() *Metrics { return o.MetricsSince(0) }

// MetricsSince aggregates the tracks registered at or after the given Mark,
// which is how a shared observer's tracks are attributed to one run.
func (o *Observer) MetricsSince(mark int) *Metrics {
	tracks := o.snapshotTracks(mark)
	if tracks == nil {
		return nil
	}
	m := &Metrics{}
	for _, t := range tracks {
		var agg [phaseCount]struct {
			n          int
			total, max float64
		}
		for _, sp := range t.Spans() {
			a := &agg[sp.Phase]
			a.n++
			d := sp.Dur.Seconds()
			a.total += d
			if d > a.max {
				a.max = d
			}
		}
		for p := Phase(0); p < phaseCount; p++ {
			a := agg[p]
			if a.n == 0 {
				continue
			}
			m.Phases = append(m.Phases, PhaseMetric{
				Track:    t.name,
				Phase:    p.String(),
				Shards:   len(t.arenas),
				Spans:    a.n,
				TotalSec: a.total,
				MeanSec:  a.total / float64(a.n),
				MaxSec:   a.max,
			})
		}
		t.mu.Lock()
		gauges := append([]*Gauge(nil), t.gauges...)
		t.mu.Unlock()
		for _, g := range gauges {
			samples := g.snapshot()
			if len(samples) == 0 {
				continue
			}
			gm := GaugeMetric{
				Track:   t.name,
				Name:    g.name,
				Samples: len(samples),
				Last:    samples[len(samples)-1].Value,
				Min:     samples[0].Value,
				Max:     samples[0].Value,
			}
			for _, s := range samples[1:] {
				if s.Value < gm.Min {
					gm.Min = s.Value
				}
				if s.Value > gm.Max {
					gm.Max = s.Value
				}
			}
			m.Gauges = append(m.Gauges, gm)
		}
	}
	return m
}

// Summary renders the observer's metrics as the repository's plain-text
// table shape: one phase-timing table and one gauge table, concatenated.
func (o *Observer) Summary() string {
	m := o.Metrics()
	if m == nil {
		return ""
	}
	pt := stats.NewTable("Instrumentation — phase wall-clock totals (all shards)",
		"track", "phase", "shards", "spans", "total s", "mean s", "max s")
	for _, p := range m.Phases {
		pt.AddRow(p.Track, p.Phase, fmt.Sprint(p.Shards), fmt.Sprint(p.Spans),
			fmt.Sprintf("%.4f", p.TotalSec), fmt.Sprintf("%.6f", p.MeanSec),
			fmt.Sprintf("%.6f", p.MaxSec))
	}
	gt := stats.NewTable("Instrumentation — per-round gauges",
		"track", "gauge", "samples", "last", "min", "max")
	for _, g := range m.Gauges {
		gt.AddRow(g.Track, g.Name, fmt.Sprint(g.Samples),
			fmt.Sprint(g.Last), fmt.Sprint(g.Min), fmt.Sprint(g.Max))
	}
	return pt.Render() + "\n" + gt.Render()
}
