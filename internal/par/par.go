// Package par holds the one concurrency primitive the engines share: a
// deterministic fork-join fan-out over a fixed worker count.
package par

import "sync"

// Do runs f(w) for w in [0, workers); w == 0 runs inline on the calling
// goroutine, so workers == 1 spawns nothing (the serial paths stay free of
// scheduling). Do returns after every worker finishes — the barriers on
// both sides are the only synchronization the flat engines rely on: each
// worker touches only its own scratch plus disjoint regions of shared
// arrays, and the barrier publishes the writes.
func Do(workers int, f func(w int)) {
	if workers == 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f(w)
		}(w)
	}
	f(0)
	wg.Wait()
}
