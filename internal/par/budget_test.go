package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBudgetAccounting(t *testing.T) {
	if _, err := NewBudget(0); err == nil {
		t.Error("accepted a zero-worker budget")
	}
	b, err := NewBudget(4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() != 4 {
		t.Fatalf("Total = %d, want 4", b.Total())
	}
	if got := b.TryAcquire(10); got != 3 {
		t.Fatalf("TryAcquire(10) on a fresh budget of 4 = %d, want 3 spares", got)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on a drained budget = %d, want 0", got)
	}
	b.Release(3)
	if got := b.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) after full release = %d, want 2", got)
	}
	b.Release(2)
}

func TestBudgetNilIsSerial(t *testing.T) {
	var b *Budget
	if b.Total() != 1 {
		t.Fatalf("nil Total = %d, want 1", b.Total())
	}
	if b.TryAcquire(8) != 0 {
		t.Fatal("nil budget handed out tokens")
	}
	b.Release(0) // must not panic
	ran := false
	b.Use(8, func(w int) {
		ran = true
		if w != 1 {
			t.Fatalf("nil budget Use gave %d workers, want 1", w)
		}
	})
	if !ran {
		t.Fatal("Use did not run f")
	}
}

func TestBudgetUseBounds(t *testing.T) {
	b, _ := NewBudget(6)
	b.Use(3, func(w int) {
		if w != 3 {
			t.Fatalf("Use(3) on an idle budget of 6 = %d workers", w)
		}
		// Nested use sees the remaining spares only.
		b.Use(0, func(inner int) {
			if inner != 1+3 { // 5 spares minus the 2 held above
				t.Fatalf("nested Use = %d workers, want 4", inner)
			}
		})
	})
	// Everything returned: a full-width Use gets all 6.
	b.Use(0, func(w int) {
		if w != 6 {
			t.Fatalf("Use(0) = %d workers, want 6", w)
		}
	})
}

func TestBudgetOverReleasePanics(t *testing.T) {
	b, _ := NewBudget(2)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	b.Release(2)
}

func TestBudgetInFlight(t *testing.T) {
	var nilB *Budget
	if nilB.InFlight() != 0 {
		t.Fatalf("nil InFlight = %d, want 0", nilB.InFlight())
	}
	b, _ := NewBudget(4)
	if got := b.InFlight(); got != 0 {
		t.Fatalf("idle InFlight = %d, want 0", got)
	}
	got := b.TryAcquire(2)
	if got != 2 || b.InFlight() != 2 {
		t.Fatalf("after TryAcquire(2): got %d tokens, InFlight = %d", got, b.InFlight())
	}
	b.Release(2)
	if b.InFlight() != 0 {
		t.Fatalf("after release: InFlight = %d, want 0", b.InFlight())
	}
}

// TestBudgetInFlightStorm hammers TryAcquire/Release from many goroutines —
// far more than the budget is wide — while a sampler watches InFlight, the
// value the instrumentation layer exports as the budget_in_flight gauge.
// The invariants: InFlight never leaves [0, Total()-1] (tokens in flight
// never exceed the pool width), and the storm drains back to exactly 0.
// Run under -race this also proves the counter involves no torn reads.
func TestBudgetInFlightStorm(t *testing.T) {
	const total = 4
	const goroutines = 16
	b, _ := NewBudget(total)
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if f := b.InFlight(); f < 0 || f > total-1 {
				t.Errorf("InFlight = %d outside [0, %d]", f, total-1)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := b.TryAcquire(1 + (g+i)%total)
				if f := b.InFlight(); f < k || f > total-1 {
					t.Errorf("holding %d tokens, InFlight = %d", k, f)
					b.Release(k)
					return
				}
				b.Release(k)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	if f := b.InFlight(); f != 0 {
		t.Fatalf("storm drained, InFlight = %d, want 0", f)
	}
	if got := b.TryAcquire(total); got != total-1 {
		t.Fatalf("storm leaked tokens: TryAcquire(%d) = %d, want %d", total, got, total-1)
	}
	b.Release(total - 1)
}

func TestBudgetConcurrentNeverOversubscribes(t *testing.T) {
	const total = 4
	b, _ := NewBudget(total)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	// Each goroutine models a harness worker: goroutine 0 is the budget
	// owner's implicit worker, the rest hold one token each for their
	// lifetime; all of them repeatedly grab extras for "inner" work.
	workers := 1 + b.TryAcquire(total-1)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(holdsToken bool) {
			defer wg.Done()
			if holdsToken {
				defer b.Release(1)
			}
			for i := 0; i < 200; i++ {
				b.Use(0, func(w int) {
					c := cur.Add(int64(w))
					for {
						p := peak.Load()
						if c <= p || peak.CompareAndSwap(p, c) {
							break
						}
					}
					cur.Add(int64(-w))
				})
			}
		}(g > 0)
	}
	wg.Wait()
	if p := peak.Load(); p > total {
		t.Fatalf("peak concurrent workers %d exceeds the budget of %d", p, total)
	}
	b.Use(0, func(w int) {
		if w != total {
			t.Fatalf("budget leaked tokens: idle Use = %d workers, want %d", w, total)
		}
	})
}
