package par

import (
	"fmt"
	"sync/atomic"
)

// Budget is a shared pool of worker tokens: the one mechanism by which the
// experiment harness, the unified runner and the round engines agree on how
// many goroutines may compute at once. A Budget of Total() == k stands for
// k workers in the whole tree of computations that share it.
//
// The accounting convention is implicit-plus-spares: every goroutine that
// runs work on behalf of the budget counts as one worker without holding a
// token, and NewBudget(k) therefore starts with k-1 spare tokens. A context
// that wants inner parallelism grabs extra tokens with TryAcquire (never
// blocking, so nested acquisition cannot deadlock), runs with 1 + extra
// workers, and releases the extras when done — the Use helper packages that
// pattern. A harness that fans out holds one token per additional worker
// goroutine for as long as that goroutine lives, so tokens freed by workers
// that ran out of jobs flow to the inner engines of the jobs still running:
// small-repetition sweeps use the leftover cores instead of pinning inner
// workers to 1.
//
// Because every engine fed from a Budget draws its randomness per unit of
// work (rng.Derive streams, not per-worker streams), the fluctuating worker
// counts a Budget hands out are a pure speed knob: results are bit-identical
// whatever the pool decides.
//
// A nil *Budget is valid everywhere and means "no shared pool": TryAcquire
// returns 0, Use runs its function with exactly one worker.
type Budget struct {
	total int
	spare atomic.Int64
}

// NewBudget returns a budget of total worker tokens; the owning context
// counts as the first worker, so total-1 spare tokens are available for
// fan-out. total must be at least 1.
func NewBudget(total int) (*Budget, error) {
	if total < 1 {
		return nil, fmt.Errorf("par: budget needs at least one worker, got %d", total)
	}
	b := &Budget{total: total}
	b.spare.Store(int64(total - 1))
	return b, nil
}

// Total returns the budget's worker count; 1 for a nil budget.
func (b *Budget) Total() int {
	if b == nil {
		return 1
	}
	return b.total
}

// InFlight returns how many of the budget's spare tokens are currently
// acquired — worker tokens in flight beyond the implicit per-context ones.
// Always within [0, Total()-1]; 0 for a nil budget. This is the value the
// instrumentation layer samples as the budget_in_flight gauge.
func (b *Budget) InFlight() int {
	if b == nil {
		return 0
	}
	return b.total - 1 - int(b.spare.Load())
}

// TryAcquire takes up to want spare tokens without blocking and returns how
// many it got (possibly 0). The grab is atomic: concurrent callers never
// split a request, so whoever wins the race gets everything available up to
// its want.
func (b *Budget) TryAcquire(want int) int {
	if b == nil || want <= 0 {
		return 0
	}
	for {
		avail := b.spare.Load()
		if avail <= 0 {
			return 0
		}
		take := int64(want)
		if take > avail {
			take = avail
		}
		if b.spare.CompareAndSwap(avail, avail-take) {
			return int(take)
		}
	}
}

// Release returns k tokens to the pool. Releasing more than was acquired is
// a programming error and panics, so leaks are caught in tests rather than
// silently inflating the pool.
func (b *Budget) Release(k int) {
	if b == nil || k == 0 {
		return
	}
	if k < 0 {
		panic("par: negative release")
	}
	if b.spare.Add(int64(k)) > int64(b.total-1) {
		panic("par: budget over-released")
	}
}

// Use runs f with between 1 and want workers: the caller's implicit worker
// plus whatever spare tokens the pool has at this moment, released when f
// returns. want <= 0 means "as many as the budget allows" (Total()). On a
// nil budget f runs with exactly one worker.
func (b *Budget) Use(want int, f func(workers int)) {
	if b == nil {
		f(1)
		return
	}
	if want <= 0 || want > b.total {
		want = b.total
	}
	extra := b.TryAcquire(want - 1)
	defer b.Release(extra)
	f(1 + extra)
}
