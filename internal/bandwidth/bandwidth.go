// Package bandwidth models the paper's heterogeneous communication
// capabilities. Each node i has an incoming bandwidth bin(i) and an outgoing
// bandwidth bout(i): the number of unit-size messages it can receive and send
// per round. Cross-node ratios are unbounded, but each node's own in/out
// ratio is bounded by a constant C (paper, Section 1):
//
//	1/C <= bin(i)/bout(i) <= C  for all i.
//
// The package provides the profile generators used by the experiments:
// homogeneous (the Figure 1/2 setting, bin = bout = 1), bimodal
// (rich/poor populations for Theorem 10), Zipf/power-law, and geometric.
package bandwidth

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Profile holds per-node incoming and outgoing bandwidths.
type Profile struct {
	In  []int // bin(i): unit messages node i can receive per round
	Out []int // bout(i): unit messages node i can send per round
}

// N returns the number of nodes.
func (p Profile) N() int { return len(p.In) }

// TotalIn returns Bin = sum of bin(i).
func (p Profile) TotalIn() int {
	t := 0
	for _, b := range p.In {
		t += b
	}
	return t
}

// TotalOut returns Bout = sum of bout(i).
func (p Profile) TotalOut() int {
	t := 0
	for _, b := range p.Out {
		t += b
	}
	return t
}

// M returns m = min(Bin, Bout): the number of dates a centralized matchmaker
// could organize per round, the yardstick for the dating service's fraction.
func (p Profile) M() int {
	in, out := p.TotalIn(), p.TotalOut()
	if in < out {
		return in
	}
	return out
}

// Ratio returns the smallest constant C such that
// 1/C <= bin(i)/bout(i) <= C holds for every node, or an error if any node
// has a non-positive bandwidth (the model requires at least one unit each
// way so that every node can take part in the protocol).
func (p Profile) Ratio() (float64, error) {
	if len(p.In) != len(p.Out) {
		return 0, fmt.Errorf("bandwidth: in/out length mismatch %d vs %d", len(p.In), len(p.Out))
	}
	c := 1.0
	for i := range p.In {
		if p.In[i] <= 0 || p.Out[i] <= 0 {
			return 0, fmt.Errorf("bandwidth: node %d has non-positive bandwidth (in=%d out=%d)", i, p.In[i], p.Out[i])
		}
		r := float64(p.In[i]) / float64(p.Out[i])
		if r < 1 {
			r = 1 / r
		}
		if r > c {
			c = r
		}
	}
	return c, nil
}

// Validate checks structural sanity and that the node-local ratio constraint
// holds for the given C.
func (p Profile) Validate(c float64) error {
	if c < 1 {
		return fmt.Errorf("bandwidth: C must be >= 1, got %v", c)
	}
	got, err := p.Ratio()
	if err != nil {
		return err
	}
	// Allow a hair of float slack so C computed from the profile validates.
	if got > c*(1+1e-12) {
		return fmt.Errorf("bandwidth: ratio constraint violated: observed C = %v > %v", got, c)
	}
	return nil
}

// Clone returns a deep copy of the profile.
func (p Profile) Clone() Profile {
	return Profile{
		In:  append([]int(nil), p.In...),
		Out: append([]int(nil), p.Out...),
	}
}

// Homogeneous returns the unit-bandwidth profile used by both of the paper's
// figures: every node has bin = bout = b.
func Homogeneous(n, b int) Profile {
	in := make([]int, n)
	out := make([]int, n)
	for i := range in {
		in[i] = b
		out[i] = b
	}
	return Profile{In: in, Out: out}
}

// Bimodal returns a two-class profile: the first rich nodes have bandwidth
// richB in and out, the rest have poorB. It is the natural workload for the
// Theorem 10 experiment (nodes of at least average bandwidth vs weak nodes).
func Bimodal(n, rich, richB, poorB int) (Profile, error) {
	if rich < 0 || rich > n {
		return Profile{}, fmt.Errorf("bandwidth: rich count %d out of [0,%d]", rich, n)
	}
	if richB <= 0 || poorB <= 0 {
		return Profile{}, fmt.Errorf("bandwidth: class bandwidths must be positive (rich=%d poor=%d)", richB, poorB)
	}
	in := make([]int, n)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		b := poorB
		if i < rich {
			b = richB
		}
		in[i] = b
		out[i] = b
	}
	return Profile{In: in, Out: out}, nil
}

// Zipf draws per-node base bandwidths from a Zipf law over {1..maxB} with
// the given exponent (popular low ranks get high bandwidth: a node drawing
// rank k receives base bandwidth max(1, maxB/k)), then independently skews
// in vs out within the C bound: bout = base, bin = base scaled by a uniform
// factor in [1/C, C], rounded and clamped to keep the constraint exact.
func Zipf(n int, exponent float64, maxB int, c float64, s *rng.Stream) (Profile, error) {
	if n <= 0 {
		return Profile{}, fmt.Errorf("bandwidth: Zipf needs n > 0")
	}
	if maxB <= 0 {
		return Profile{}, fmt.Errorf("bandwidth: Zipf needs maxB > 0")
	}
	if c < 1 {
		return Profile{}, fmt.Errorf("bandwidth: Zipf needs C >= 1, got %v", c)
	}
	z, err := rng.NewZipf(maxB, exponent)
	if err != nil {
		return Profile{}, err
	}
	in := make([]int, n)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		rank := z.Sample(s)
		base := maxB / rank
		if base < 1 {
			base = 1
		}
		out[i] = base
		in[i] = skew(base, c, s)
	}
	return Profile{In: in, Out: out}, nil
}

// Geometric assigns bandwidth 2^k to a 2^-(k+1) fraction of nodes
// (half the nodes get 1, a quarter get 2, an eighth get 4, ...), capped at
// maxB. This produces the "very different capabilities" regime the paper
// allows: the max/min cross-node ratio grows with n while every node keeps
// bin = bout (C = 1).
func Geometric(n, maxB int) (Profile, error) {
	if n <= 0 || maxB <= 0 {
		return Profile{}, fmt.Errorf("bandwidth: Geometric needs positive n and maxB")
	}
	in := make([]int, n)
	out := make([]int, n)
	idx := 0
	b := 1
	remaining := n
	for remaining > 0 {
		count := (remaining + 1) / 2
		if b >= maxB {
			b = maxB
			count = remaining
		}
		for j := 0; j < count; j++ {
			in[idx] = b
			out[idx] = b
			idx++
		}
		remaining -= count
		b *= 2
	}
	return Profile{In: in, Out: out}, nil
}

// skew returns base scaled by a uniform factor in [1/C, C], rounded to an
// int and clamped so that the node-local ratio constraint holds exactly.
func skew(base int, c float64, s *rng.Stream) int {
	if c == 1 {
		return base
	}
	// Sample the log of the factor uniformly so 1/C and C are symmetric.
	logC := math.Log(c)
	f := math.Exp((2*s.Float64() - 1) * logC)
	v := int(math.Round(float64(base) * f))
	lo := int(math.Ceil(float64(base) / c))
	hi := int(math.Floor(float64(base) * c))
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}
