package bandwidth

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHomogeneous(t *testing.T) {
	p := Homogeneous(5, 3)
	if p.N() != 5 {
		t.Fatalf("N = %d", p.N())
	}
	if p.TotalIn() != 15 || p.TotalOut() != 15 || p.M() != 15 {
		t.Fatalf("totals = %d/%d, m = %d", p.TotalIn(), p.TotalOut(), p.M())
	}
	c, err := p.Ratio()
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Fatalf("ratio = %v", c)
	}
}

func TestMUsesMinimum(t *testing.T) {
	p := Profile{In: []int{1, 2}, Out: []int{4, 4}}
	if p.M() != 3 {
		t.Fatalf("M = %d, want min(3, 8) = 3", p.M())
	}
	q := Profile{In: []int{5, 5}, Out: []int{1, 2}}
	if q.M() != 3 {
		t.Fatalf("M = %d, want min(10, 3) = 3", q.M())
	}
}

func TestRatioErrors(t *testing.T) {
	if _, err := (Profile{In: []int{1}, Out: []int{1, 2}}).Ratio(); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := (Profile{In: []int{0}, Out: []int{1}}).Ratio(); err == nil {
		t.Error("accepted zero bandwidth")
	}
	if _, err := (Profile{In: []int{1}, Out: []int{-2}}).Ratio(); err == nil {
		t.Error("accepted negative bandwidth")
	}
}

func TestRatioComputation(t *testing.T) {
	p := Profile{In: []int{2, 6}, Out: []int{4, 2}} // ratios 0.5 and 3
	c, err := p.Ratio()
	if err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Fatalf("C = %v, want 3", c)
	}
}

func TestValidate(t *testing.T) {
	p := Profile{In: []int{2, 6}, Out: []int{4, 2}}
	if err := p.Validate(3); err != nil {
		t.Fatalf("Validate(3): %v", err)
	}
	if err := p.Validate(2); err == nil {
		t.Fatal("Validate(2) accepted C=3 profile")
	}
	if err := p.Validate(0.5); err == nil {
		t.Fatal("accepted C < 1")
	}
}

func TestClone(t *testing.T) {
	p := Homogeneous(3, 1)
	q := p.Clone()
	q.In[0] = 99
	if p.In[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestBimodal(t *testing.T) {
	p, err := Bimodal(10, 3, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.In[0] != 8 || p.In[2] != 8 || p.In[3] != 1 || p.In[9] != 1 {
		t.Fatalf("class layout wrong: %v", p.In)
	}
	if p.TotalOut() != 3*8+7 {
		t.Fatalf("TotalOut = %d", p.TotalOut())
	}
	c, err := p.Ratio()
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Fatalf("bimodal should have C = 1, got %v", c)
	}
}

func TestBimodalValidation(t *testing.T) {
	if _, err := Bimodal(5, 6, 2, 1); err == nil {
		t.Error("accepted rich > n")
	}
	if _, err := Bimodal(5, -1, 2, 1); err == nil {
		t.Error("accepted rich < 0")
	}
	if _, err := Bimodal(5, 2, 0, 1); err == nil {
		t.Error("accepted richB = 0")
	}
	if _, err := Bimodal(5, 2, 2, 0); err == nil {
		t.Error("accepted poorB = 0")
	}
}

func TestZipfRespectsC(t *testing.T) {
	s := rng.New(42)
	for _, c := range []float64{1, 1.5, 2, 4} {
		p, err := Zipf(500, 1.0, 64, c, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(c); err != nil {
			t.Fatalf("C=%v: %v", c, err)
		}
		if p.N() != 500 {
			t.Fatalf("N = %d", p.N())
		}
	}
}

func TestZipfHeterogeneous(t *testing.T) {
	s := rng.New(7)
	p, err := Zipf(2000, 1.0, 64, 1, s)
	if err != nil {
		t.Fatal(err)
	}
	minB, maxB := p.Out[0], p.Out[0]
	for _, b := range p.Out {
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	if minB != 1 {
		t.Fatalf("min bandwidth %d, want 1", minB)
	}
	if maxB < 16 {
		t.Fatalf("max bandwidth %d; Zipf should produce some rich nodes", maxB)
	}
}

func TestZipfValidation(t *testing.T) {
	s := rng.New(1)
	if _, err := Zipf(0, 1, 4, 1, s); err == nil {
		t.Error("accepted n = 0")
	}
	if _, err := Zipf(4, 1, 0, 1, s); err == nil {
		t.Error("accepted maxB = 0")
	}
	if _, err := Zipf(4, 1, 4, 0.5, s); err == nil {
		t.Error("accepted C < 1")
	}
	if _, err := Zipf(4, -1, 4, 1, s); err == nil {
		t.Error("accepted bad exponent")
	}
}

func TestGeometricShape(t *testing.T) {
	p, err := Geometric(16, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// 8 nodes at 1, 4 at 2, 2 at 4, 1 at 8, final 1 at 16.
	counts := map[int]int{}
	for _, b := range p.Out {
		counts[b]++
	}
	if counts[1] != 8 || counts[2] != 4 || counts[4] != 2 || counts[8] != 1 || counts[16] != 1 {
		t.Fatalf("geometric layout: %v", counts)
	}
	c, err := p.Ratio()
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Fatalf("geometric C = %v, want 1", c)
	}
}

func TestGeometricCap(t *testing.T) {
	p, err := Geometric(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range p.Out {
		if b > 4 {
			t.Fatalf("node %d bandwidth %d exceeds cap", i, b)
		}
	}
}

func TestGeometricValidation(t *testing.T) {
	if _, err := Geometric(0, 4); err == nil {
		t.Error("accepted n = 0")
	}
	if _, err := Geometric(4, 0); err == nil {
		t.Error("accepted maxB = 0")
	}
}

func TestProfilesAlwaysValidProperty(t *testing.T) {
	// Property: every generator yields profiles whose observed C validates
	// against itself and whose bandwidths are all positive.
	err := quick.Check(func(seed uint64, nRaw uint8, cRaw uint8) bool {
		n := int(nRaw%200) + 1
		c := 1 + float64(cRaw%40)/10 // 1.0 .. 4.9
		s := rng.New(seed)
		profiles := []Profile{Homogeneous(n, 2)}
		if p, err := Zipf(n, 1.2, 32, c, s); err == nil {
			profiles = append(profiles, p)
		} else {
			return false
		}
		if p, err := Geometric(n, 64); err == nil {
			profiles = append(profiles, p)
		} else {
			return false
		}
		for _, p := range profiles {
			obs, err := p.Ratio()
			if err != nil {
				return false
			}
			if err := p.Validate(obs); err != nil {
				return false
			}
			if p.M() <= 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}
