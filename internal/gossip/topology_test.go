package gossip

import (
	"fmt"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/run"
)

func mustBA(t *testing.T, n, m int, seed uint64) *graph.CSR {
	t.Helper()
	g, err := graph.BarabasiAlbert(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func topoTrajectory(t *testing.T, cfg TopologyConfig, o TopologyOptions) TopologyResult {
	t.Helper()
	res, err := RunTopology(cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTopologyShardIdentity pins the headline determinism claim: the shard
// count of the sharded engine is a pure speed knob — trajectories, message
// counts and the spreader/stifler split are bit-identical at every count.
func TestTopologyShardIdentity(t *testing.T) {
	g := mustBA(t, 3000, 3, 7)
	cfg := TopologyConfig{Graph: g, Source: 0, Alpha: 0.4, Delta: 0.02}
	base := topoTrajectory(t, cfg, TopologyOptions{Seed: 42, Engine: LiveSharded, Shards: 1})
	if base.Rounds == 0 || base.History[0] == 0 {
		t.Fatalf("degenerate base run: %+v", base)
	}
	for _, shards := range []int{2, 4, 8} {
		res := topoTrajectory(t, cfg, TopologyOptions{Seed: 42, Engine: LiveSharded, Shards: shards})
		if fmt.Sprint(res) != fmt.Sprint(base) {
			t.Errorf("shards=%d diverged:\n got %+v\nwant %+v", shards, res, base)
		}
	}
	// Pipelining is a pure scheduling change too.
	pl := topoTrajectory(t, cfg, TopologyOptions{Seed: 42, Engine: LiveSharded, Shards: 4, Pipeline: 4})
	if fmt.Sprint(pl) != fmt.Sprint(base) {
		t.Errorf("pipelined run diverged:\n got %+v\nwant %+v", pl, base)
	}
}

// TestTopologyEngineIdentity pins that the goroutine engine (sequential and
// concurrent) reproduces the sharded runtime bit for bit — all engines share
// the per-peer stream derivation.
func TestTopologyEngineIdentity(t *testing.T) {
	g := mustBA(t, 800, 2, 3)
	cfg := TopologyConfig{Graph: g, Source: 5, Alpha: 0.3, Delta: 0.01}
	sharded := topoTrajectory(t, cfg, TopologyOptions{Seed: 9, Engine: LiveSharded, Shards: 3})
	seq := topoTrajectory(t, cfg, TopologyOptions{Seed: 9, Engine: LiveGoroutine})
	conc := topoTrajectory(t, cfg, TopologyOptions{Seed: 9, Engine: LiveGoroutine, Concurrent: true})
	if fmt.Sprint(seq) != fmt.Sprint(sharded) {
		t.Errorf("sequential engine diverged:\n got %+v\nwant %+v", seq, sharded)
	}
	if fmt.Sprint(conc) != fmt.Sprint(sharded) {
		t.Errorf("concurrent engine diverged:\n got %+v\nwant %+v", conc, sharded)
	}
}

// TestTopologyShardLocalState drives the sharded engine at several shard
// counts under -race: the shard-owned state blocks mean no two workers ever
// write the same slice, and the race detector pins it.
func TestTopologyShardLocalState(t *testing.T) {
	g := mustBA(t, 1200, 3, 11)
	for _, shards := range []int{1, 4} {
		res := topoTrajectory(t, TopologyConfig{Graph: g, Source: 0, Alpha: 0.2},
			TopologyOptions{Seed: 4, Engine: LiveSharded, Shards: shards})
		if !res.Completed {
			t.Errorf("shards=%d: run did not complete", shards)
		}
	}
}

// TestTopologyCompleteGraphMatchesPush pins the bridge to the paper's
// any-to-any setting: on the complete graph with alpha = delta = 0 the
// protocol is plain push, and its final spread fraction equals the round-
// abstract push baseline's (both 1: nothing ever stifles).
func TestTopologyCompleteGraphMatchesPush(t *testing.T) {
	n := 300
	g, err := graph.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	res := topoTrajectory(t, TopologyConfig{Graph: g, Source: 0},
		TopologyOptions{Seed: 21, Engine: LiveSharded, Shards: 2})
	if !res.Completed {
		t.Fatal("complete-graph run did not complete")
	}
	push, err := Run(Config{Algorithm: Push, N: n, Source: 0}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	pushFrac := float64(push.History[len(push.History)-1]) / float64(n)
	if res.FinalSpread != pushFrac {
		t.Errorf("complete-graph final spread %v, push baseline %v", res.FinalSpread, pushFrac)
	}
	if res.FinalSpread != 1 {
		t.Errorf("alpha=0 complete-graph spread %v, want 1", res.FinalSpread)
	}
}

// TestTopologyStiflingLimitsSpread pins the epidemiology: with alpha > 0 the
// rumor dies out before reaching everyone on a scale-free graph, and the
// stifler count is monotone non-decreasing.
func TestTopologyStiflingLimitsSpread(t *testing.T) {
	g := mustBA(t, 5000, 3, 13)
	res := topoTrajectory(t, TopologyConfig{Graph: g, Source: 0, Alpha: 0.9, Delta: 0.1},
		TopologyOptions{Seed: 17, Engine: LiveSharded, Shards: 4})
	if !res.Completed {
		t.Fatal("stifled run did not terminate")
	}
	if res.FinalSpread >= 1 {
		t.Errorf("alpha=0.9 spread %v, want < 1", res.FinalSpread)
	}
	if res.FinalSpread <= 0 {
		t.Error("rumor never spread at all")
	}
	for i := 1; i < len(res.StiflerHist); i++ {
		if res.StiflerHist[i] < res.StiflerHist[i-1] {
			t.Fatalf("stifler count decreased at round %d: %v", i+1, res.StiflerHist)
		}
	}
	last := len(res.SpreaderHist) - 1
	if res.SpreaderHist[last] != 0 {
		t.Errorf("terminated run still has %d spreaders", res.SpreaderHist[last])
	}
	if res.History[last] != res.StiflerHist[last] {
		t.Errorf("informed %d != stiflers %d at termination", res.History[last], res.StiflerHist[last])
	}
}

// TestTopologyWeightedSampler runs the profile-weighted neighbor choice and
// pins its validation.
func TestTopologyWeightedSampler(t *testing.T) {
	g := mustBA(t, 500, 2, 5)
	p := bandwidth.Homogeneous(500, 2)
	res := topoTrajectory(t, TopologyConfig{Graph: g, Profile: p, Weighted: true, Source: 0, Alpha: 0.5},
		TopologyOptions{Seed: 2, Engine: LiveSharded, Shards: 2})
	if !res.Completed {
		t.Error("weighted run did not complete")
	}
	if _, err := RunTopology(TopologyConfig{Graph: g, Weighted: true, Source: 0}, TopologyOptions{}); err == nil {
		t.Error("weighted run without a matching profile should be rejected")
	}
}

// TestTopologyValidation pins the config error paths.
func TestTopologyValidation(t *testing.T) {
	g := mustBA(t, 50, 2, 1)
	if _, err := RunTopology(TopologyConfig{}, TopologyOptions{}); err == nil {
		t.Error("nil graph should be rejected")
	}
	if _, err := RunTopology(TopologyConfig{Graph: g, Source: 50}, TopologyOptions{}); err == nil {
		t.Error("out-of-range source should be rejected")
	}
	if _, err := RunTopology(TopologyConfig{Graph: g, Alpha: 1.5}, TopologyOptions{}); err == nil {
		t.Error("alpha > 1 should be rejected")
	}
	if _, err := RunTopology(TopologyConfig{Graph: g, Delta: -0.1}, TopologyOptions{}); err == nil {
		t.Error("negative delta should be rejected")
	}
}

// TestTopologySpec pins the run.Spec plumbing: repro-level Run executes the
// config, the trajectory rides the report, and worker counts stay
// bit-identical through the unified runner.
func TestTopologySpec(t *testing.T) {
	g := mustBA(t, 1000, 2, 19)
	cfg := TopologyConfig{Graph: g, Source: 0, Alpha: 0.5, Delta: 0.05}
	rep1, err := run.Run(cfg, run.WithSeed(8), run.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := run.Run(cfg, run.WithSeed(8), run.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Protocol != "topology" {
		t.Errorf("protocol %q, want topology", rep1.Protocol)
	}
	if fmt.Sprint(rep1.Trajectory) != fmt.Sprint(rep4.Trajectory) || rep1.Messages != rep4.Messages {
		t.Errorf("worker counts diverged: %v/%d vs %v/%d",
			rep1.Trajectory, rep1.Messages, rep4.Trajectory, rep4.Messages)
	}
	det, ok := rep1.Detail.(TopologyResult)
	if !ok {
		t.Fatalf("Detail is %T, want TopologyResult", rep1.Detail)
	}
	if det.Rounds != rep1.Rounds || len(rep1.Sent) != rep1.Rounds {
		t.Errorf("report shape mismatch: rounds %d/%d, sent len %d", det.Rounds, rep1.Rounds, len(rep1.Sent))
	}
	// The goroutine engine agrees through the spec layer too.
	repG, err := run.Run(cfg, run.WithSeed(8), run.WithEngine(run.EngineGoroutine))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(repG.Trajectory) != fmt.Sprint(rep1.Trajectory) {
		t.Errorf("goroutine engine diverged through spec: %v vs %v", repG.Trajectory, rep1.Trajectory)
	}
}
