package gossip

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

func TestDatingParallelWorkers(t *testing.T) {
	// The parallel engine behind the spreader: completes in O(log n)
	// rounds, never exceeds unit bandwidth, and is reproducible for a
	// fixed (seed, Workers).
	run := func() Result {
		res, err := Run(Config{Algorithm: Dating, N: 2048, Workers: 4}, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if !a.Completed {
		t.Fatalf("incomplete after %d rounds", a.Rounds)
	}
	if a.Rounds < 10 || a.Rounds > 80 {
		t.Fatalf("%d rounds is not O(log n) at n=2048", a.Rounds)
	}
	if a.MaxInLoad > 1 || a.MaxOutLoad > 1 {
		t.Fatalf("parallel dating exceeded unit bandwidth: in %d out %d", a.MaxInLoad, a.MaxOutLoad)
	}
	if b := run(); !reflect.DeepEqual(a, b) {
		t.Fatal("two runs with the same (seed, Workers) diverged")
	}
}

func TestDatingParallelWithChurn(t *testing.T) {
	res, err := Run(Config{Algorithm: Dating, N: 800, Workers: 3, CrashProb: 0.01}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete after %d rounds (%d crashed)", res.Rounds, res.Crashed)
	}
	if res.MaxInLoad > 1 || res.MaxOutLoad > 1 {
		t.Fatalf("churny parallel dating exceeded unit bandwidth: in %d out %d", res.MaxInLoad, res.MaxOutLoad)
	}
}

func TestWorkersValidation(t *testing.T) {
	if _, err := Run(Config{Algorithm: Dating, N: 10, Workers: -1}, rng.New(1)); err == nil {
		t.Error("accepted negative Workers")
	}
}

func TestDatingWorkersPureSpeedKnob(t *testing.T) {
	// Workers >= 1 rides the seeded engine: the whole run — rounds,
	// history, loads — is bit-identical for every worker count, including
	// under churn (crash sampling shares the run stream with the per-round
	// seed draws).
	for _, crash := range []float64{0, 0.01} {
		run := func(workers int) Result {
			res, err := Run(Config{Algorithm: Dating, N: 3000, Workers: workers, CrashProb: crash}, rng.New(11))
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ref := run(1)
		if !ref.Completed {
			t.Fatalf("crash=%v: incomplete after %d rounds", crash, ref.Rounds)
		}
		for _, workers := range []int{2, 8} {
			if got := run(workers); !reflect.DeepEqual(got, ref) {
				t.Fatalf("crash=%v: Workers=%d diverged from Workers=1 (%d vs %d rounds)",
					crash, workers, got.Rounds, ref.Rounds)
			}
		}
	}
}
