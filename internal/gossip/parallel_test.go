package gossip

import (
	"reflect"
	"testing"

	"repro/internal/par"
	"repro/internal/rng"
)

// runWith executes a spreading run with a worker budget of the given size
// and a pipelining depth, the two knobs runBudgeted exposes above Run.
func runWith(t *testing.T, cfg Config, seed uint64, workers, pipeline int) Result {
	t.Helper()
	var b *par.Budget
	if workers > 1 {
		var err error
		b, err = par.NewBudget(workers)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := runBudgeted(cfg, rng.New(seed), b, pipeline, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDatingParallelWorkers(t *testing.T) {
	// The seeded engine behind the spreader: completes in O(log n) rounds,
	// never exceeds unit bandwidth, and is reproducible for a fixed seed
	// whatever the budget size.
	run := func() Result {
		return runWith(t, Config{Algorithm: Dating, N: 2048}, 42, 4, 0)
	}
	a := run()
	if !a.Completed {
		t.Fatalf("incomplete after %d rounds", a.Rounds)
	}
	if a.Rounds < 10 || a.Rounds > 80 {
		t.Fatalf("%d rounds is not O(log n) at n=2048", a.Rounds)
	}
	if a.MaxInLoad > 1 || a.MaxOutLoad > 1 {
		t.Fatalf("parallel dating exceeded unit bandwidth: in %d out %d", a.MaxInLoad, a.MaxOutLoad)
	}
	if b := run(); !reflect.DeepEqual(a, b) {
		t.Fatal("two runs with the same seed diverged")
	}
}

func TestDatingParallelWithChurn(t *testing.T) {
	res := runWith(t, Config{Algorithm: Dating, N: 800, CrashProb: 0.01}, 7, 3, 0)
	if !res.Completed {
		t.Fatalf("incomplete after %d rounds (%d crashed)", res.Rounds, res.Crashed)
	}
	if res.MaxInLoad > 1 || res.MaxOutLoad > 1 {
		t.Fatalf("churny parallel dating exceeded unit bandwidth: in %d out %d", res.MaxInLoad, res.MaxOutLoad)
	}
}

func TestDatingWorkersPureSpeedKnob(t *testing.T) {
	// The budget size is a pure speed knob: the whole run — rounds, history,
	// loads — is bit-identical for every worker count, including under churn
	// (crash sampling shares the run stream with the per-round seed draws).
	for _, crash := range []float64{0, 0.01} {
		run := func(workers int) Result {
			return runWith(t, Config{Algorithm: Dating, N: 3000, CrashProb: crash}, 11, workers, 0)
		}
		ref := run(1)
		if !ref.Completed {
			t.Fatalf("crash=%v: incomplete after %d rounds", crash, ref.Rounds)
		}
		for _, workers := range []int{2, 8} {
			if got := run(workers); !reflect.DeepEqual(got, ref) {
				t.Fatalf("crash=%v: workers=%d diverged from workers=1 (%d vs %d rounds)",
					crash, workers, got.Rounds, ref.Rounds)
			}
		}
	}
}

func TestDatingPipelinedBitIdentity(t *testing.T) {
	// Pipelining is a pure scheduling change: batching rounds through
	// core.RunRoundsSeeded must reproduce the sequential run bit for bit at
	// every depth and every budget size.
	cfg := Config{Algorithm: Dating, N: 2500}
	ref := runWith(t, cfg, 13, 1, 0)
	if !ref.Completed {
		t.Fatalf("incomplete after %d rounds", ref.Rounds)
	}
	for _, workers := range []int{1, 4} {
		for _, depth := range []int{2, 3, 8} {
			if got := runWith(t, cfg, 13, workers, depth); !reflect.DeepEqual(got, ref) {
				t.Fatalf("workers=%d depth=%d diverged from sequential (%d vs %d rounds, history %v vs %v)",
					workers, depth, got.Rounds, ref.Rounds, got.History, ref.History)
			}
		}
	}
}

func TestDatingPipelinedCrashFallsBack(t *testing.T) {
	// Crashing runs cannot be pipelined (round r+1 must not scatter before
	// round r's deaths are known); the depth must be silently ignored and
	// the run stay identical to the sequential schedule.
	cfg := Config{Algorithm: Dating, N: 600, CrashProb: 0.01}
	ref := runWith(t, cfg, 17, 1, 0)
	if got := runWith(t, cfg, 17, 1, 4); !reflect.DeepEqual(got, ref) {
		t.Fatal("pipelining changed a crashing run")
	}
}
