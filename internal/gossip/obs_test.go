package gossip

// Instrumentation-identity tests: attaching an observer is read-only, so an
// instrumented run must be bit-identical to an uninstrumented one — for the
// sharded live runtime, the clockless async runtime and the dating round
// loop, at multiple shard counts. These are the in-process counterparts of
// the CI smoke that compares datebench digests with and without -trace.

import (
	"reflect"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
)

func TestLiveObserverIdentity(t *testing.T) {
	cfg := LiveConfig{Profile: bandwidth.Homogeneous(600, 1)}
	for _, shards := range []int{1, 4} {
		plain, err := RunLive(cfg, LiveOptions{Seed: 7, Engine: LiveSharded, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		o := obs.NewObserver()
		traced, err := RunLive(cfg, LiveOptions{Seed: 7, Engine: LiveSharded, Shards: shards, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("shards=%d: instrumented run differs:\nplain  %+v\ntraced %+v", shards, plain, traced)
		}
		m := o.Metrics()
		if m == nil || len(m.Phases) == 0 || len(m.Gauges) == 0 {
			t.Fatalf("shards=%d: observer recorded nothing: %+v", shards, m)
		}
		assertPhases(t, m, "live", "deliver", "step", "route")
		assertGaugeShards(t, m, shards)
	}
}

func TestAsyncObserverIdentity(t *testing.T) {
	cfg := AsyncConfig{Profile: bandwidth.Homogeneous(600, 1)}
	for _, shards := range []int{1, 4} {
		plain, err := RunAsync(cfg, AsyncOptions{Seed: 7, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		o := obs.NewObserver()
		traced, err := RunAsync(cfg, AsyncOptions{Seed: 7, Shards: shards, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("shards=%d: instrumented run differs:\nplain  %+v\ntraced %+v", shards, plain, traced)
		}
		m := o.Metrics()
		if m == nil || len(m.Phases) == 0 || len(m.Gauges) == 0 {
			t.Fatalf("shards=%d: observer recorded nothing: %+v", shards, m)
		}
		assertPhases(t, m, "async", "deliver", "step", "route")
		if !hasGauge(m, "fired") || !hasGauge(m, "calendar_depth") {
			t.Fatalf("shards=%d: async gauges missing: %+v", shards, m.Gauges)
		}
	}
}

func TestDatingObserverIdentity(t *testing.T) {
	cfg := Config{Algorithm: Dating, N: 1024}
	for _, pipeline := range []int{0, 4} {
		b, err := par.NewBudget(4)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := runBudgeted(cfg, rng.New(11), b, pipeline, nil)
		if err != nil {
			t.Fatal(err)
		}
		o := obs.NewObserver()
		b2, _ := par.NewBudget(4)
		traced, err := runBudgeted(cfg, rng.New(11), b2, pipeline, o.Track("rumor", 1))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("pipeline=%d: instrumented run differs:\nplain  %+v\ntraced %+v", pipeline, plain, traced)
		}
		m := o.Metrics()
		if m == nil {
			t.Fatal("observer recorded nothing")
		}
		assertPhases(t, m, "rumor", "round")
		if !hasGauge(m, "budget_in_flight") || !hasGauge(m, "sent") {
			t.Fatalf("pipeline=%d: dating gauges missing: %+v", pipeline, m.Gauges)
		}
		// One sent sample per round, and the samples sum to the traffic the
		// result reports — the gauge mirrors the run, it does not resample it.
		for _, g := range m.Gauges {
			if g.Name == "sent" && g.Samples != plain.Rounds {
				t.Fatalf("pipeline=%d: %d sent samples for %d rounds", pipeline, g.Samples, plain.Rounds)
			}
		}
	}
}

// assertPhases checks the metrics carry exactly the given phases for track.
func assertPhases(t *testing.T, m *obs.Metrics, track string, phases ...string) {
	t.Helper()
	got := map[string]bool{}
	for _, p := range m.Phases {
		if p.Track == track {
			got[p.Phase] = true
		}
	}
	for _, want := range phases {
		if !got[want] {
			t.Fatalf("track %s missing phase %s (have %v)", track, want, got)
		}
	}
	if len(got) != len(phases) {
		t.Fatalf("track %s has extra phases: %v, want %v", track, got, phases)
	}
}

func hasGauge(m *obs.Metrics, name string) bool {
	for _, g := range m.Gauges {
		if g.Name == name {
			return true
		}
	}
	return false
}

// assertGaugeShards checks the traffic gauges exist and that every gauge
// sampled at least one round.
func assertGaugeShards(t *testing.T, m *obs.Metrics, shards int) {
	t.Helper()
	for _, want := range []string{"sent", "dropped", "clamped", "queue_depth", "scratch_bytes"} {
		if !hasGauge(m, want) {
			t.Fatalf("missing gauge %s (shards=%d): %+v", want, shards, m.Gauges)
		}
	}
	for _, g := range m.Gauges {
		if g.Samples == 0 {
			t.Fatalf("gauge %s has no samples", g.Name)
		}
	}
}
