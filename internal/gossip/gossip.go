// Package gossip implements rumor spreading on top of the dating service
// (paper, Section 3) together with the five classical baselines the paper
// compares against in Figure 2: PUSH, PULL, PUSH&PULL, fair PULL, and fair
// PUSH&PULL [KSSV00].
//
// A single node starts with the rumor; rounds are synchronous, and in each
// round the algorithm decides who communicates with whom. The dating-based
// spreader follows the paper exactly: nodes never stop sending requests
// once informed, nor stop sending offers while uninformed — the protocol
// stays oblivious to who knows what, which is what makes it robust to
// dynamics. A date transmits the rumor iff its sender was informed at the
// start of the round.
//
// Unlike the baselines, the dating spreader never exceeds any node's
// bandwidth; the Result records the worst per-round loads so experiments
// can quantify how badly each baseline overdrives nodes.
package gossip

import (
	"fmt"
	"time"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
)

// Algorithm selects a rumor spreading protocol.
type Algorithm int

// The algorithms of Figure 2, plus the paper's dating-service spreader.
const (
	Push Algorithm = iota
	Pull
	PushPull
	FairPull
	FairPushPull
	Dating
)

var algoNames = [...]string{"push", "pull", "push-pull", "fair-pull", "fair-push-pull", "dating"}

// String returns the algorithm's name as used in CLI flags and tables.
func (a Algorithm) String() string {
	if a < 0 || int(a) >= len(algoNames) {
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
	return algoNames[a]
}

// ParseAlgorithm maps a name back to an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	for i, n := range algoNames {
		if n == name {
			return Algorithm(i), nil
		}
	}
	return 0, fmt.Errorf("gossip: unknown algorithm %q", name)
}

// Algorithms lists every implemented algorithm in Figure 2 display order.
func Algorithms() []Algorithm {
	return []Algorithm{PushPull, FairPushPull, Pull, FairPull, Push, Dating}
}

// Config parameterizes a spreading run.
type Config struct {
	Algorithm Algorithm
	// Profile is required for Dating; baselines ignore it (they implicitly
	// assume unit bandwidth, as in the paper's comparison).
	Profile bandwidth.Profile
	// Selector is the dating service's selection distribution; baselines
	// always choose uniformly (they fundamentally require that ability,
	// which is the paper's point). Defaults to uniform when nil.
	Selector core.Selector
	// N is the node count; required when Profile is unset.
	N int
	// Source is the initially informed node.
	Source int
	// MaxRounds caps the simulation (0 means 64*log2(n)+64, far beyond any
	// plausible completion time).
	MaxRounds int
	// CrashProb, if positive, crashes each live non-source node with this
	// probability at the start of every round (experiment E9).
	CrashProb float64
	// OnRound, if non-nil, observes the informed set after each round; the
	// slice must not be retained or modified.
	OnRound func(round int, informed []bool)
}

func (c *Config) n() int {
	if c.Profile.N() > 0 {
		return c.Profile.N()
	}
	return c.N
}

// Result reports one spreading run.
type Result struct {
	Rounds    int   // rounds executed until completion (or the cap)
	Completed bool  // whether every live node was informed
	History   []int // informed node count after each round
	ItHistory []int // total outgoing bandwidth of informed nodes per round
	// SentHistory is the number of messages moved per round: all arranged
	// dates for the dating spreader (every date consumes bandwidth whether
	// or not it carries the rumor), rumor transmissions for the baselines.
	SentHistory []int
	// MaxInLoad / MaxOutLoad record the largest number of rumor messages a
	// single node received / served in one round; the dating spreader keeps
	// these within the profile bounds by construction, the baselines do not.
	MaxInLoad  int
	MaxOutLoad int
	Crashed    int // nodes crashed during the run
}

// state is the per-run mutable state shared by all algorithm steppers.
type state struct {
	informed []bool
	next     []bool
	alive    []bool
	out      []int // per-round rumor messages served, reset every round
	in       []int // per-round rumor messages received, reset every round
	profile  bandwidth.Profile
}

func (st *state) reset() {
	for i := range st.out {
		st.out[i] = 0
		st.in[i] = 0
	}
	copy(st.next, st.informed)
}

// stepFunc advances one synchronous round: reads st.informed, writes
// st.next, and accounts loads in st.out / st.in.
type stepFunc func(st *state, s *rng.Stream)

// Run executes one spreading run and returns its result. Every dating
// round runs on the seeded engine: randomness derives per node and per
// rendezvous from a per-round seed drawn off s, so the run stream advances
// by exactly one value per dating round regardless of how the round is
// parallelized.
func Run(cfg Config, s *rng.Stream) (Result, error) {
	return runBudgeted(cfg, s, nil, 0, nil)
}

// roundObs is the dating loop's instrumentation: a whole-round span per
// dating round plus the per-round gauges (messages moved, budget tokens in
// flight beyond the implicit ones). A nil roundObs (observation off) makes
// every method a no-op without any time.Now call on the round path.
type roundObs struct {
	tr      *obs.Track
	arena   *obs.Arena
	gSent   *obs.Gauge
	gBudget *obs.Gauge
}

func newRoundObs(tr *obs.Track) *roundObs {
	if tr == nil {
		return nil
	}
	return &roundObs{
		tr:      tr,
		arena:   tr.Arena(0),
		gSent:   tr.Gauge("sent"),
		gBudget: tr.Gauge("budget_in_flight"),
	}
}

// span times f as the given round's whole-round phase.
func (ro *roundObs) span(round int, f func()) {
	if ro == nil {
		f()
		return
	}
	t0 := time.Now()
	f()
	ro.arena.Record(round, obs.PhaseRound, t0)
}

// sample records the round's gauges and publishes the round's spans.
func (ro *roundObs) sample(round, sent int, b *par.Budget) {
	if ro == nil {
		return
	}
	ro.gSent.Sample(round, int64(sent))
	ro.gBudget.Sample(round, int64(b.InFlight()))
	ro.tr.Barrier()
}

// runBudgeted is Run with an optional shared worker budget and pipelining
// depth. When b is non-nil every dating round runs with the caller's worker
// plus whatever spare tokens the pool has that round; the seeded path is
// worker-count independent, so the fluctuating counts are a pure speed
// knob. pipeline > 1 batches that many dating rounds through the
// double-buffered engine (core.RunRoundsSeeded) when the algorithm allows
// it — Dating without crashes; crashing runs need round r's deaths before
// round r+1's scatter, exactly the barrier pipelining removes — and is
// bit-identical to the sequential schedule either way. tr, when non-nil,
// receives a whole-round span and the per-round gauges of every dating
// round; observation is read-only and never touches the run stream.
func runBudgeted(cfg Config, s *rng.Stream, b *par.Budget, pipeline int, tr *obs.Track) (Result, error) {
	n := cfg.n()
	if n <= 0 {
		return Result{}, fmt.Errorf("gossip: config needs N or a Profile")
	}
	if cfg.Source < 0 || cfg.Source >= n {
		return Result{}, fmt.Errorf("gossip: source %d out of range [0,%d)", cfg.Source, n)
	}
	if cfg.CrashProb < 0 || cfg.CrashProb >= 1 {
		if cfg.CrashProb != 0 {
			return Result{}, fmt.Errorf("gossip: crash probability %v out of [0,1)", cfg.CrashProb)
		}
	}
	profile := cfg.Profile
	if profile.N() == 0 {
		profile = bandwidth.Homogeneous(n, 1)
	}

	var step stepFunc
	var svc *core.Service
	switch cfg.Algorithm {
	case Push:
		step = stepPush
	case Pull:
		step = stepPull
	case PushPull:
		step = stepPushPull
	case FairPull:
		step = stepFairPull
	case FairPushPull:
		step = stepFairPushPull
	case Dating:
		sel := cfg.Selector
		if sel == nil {
			u, err := core.NewUniformSelector(n)
			if err != nil {
				return Result{}, err
			}
			sel = u
		}
		var err error
		svc, err = core.NewService(profile, sel)
		if err != nil {
			return Result{}, err
		}
		step = datingStep(svc, b)
	default:
		return Result{}, fmt.Errorf("gossip: unknown algorithm %v", cfg.Algorithm)
	}

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
		for v := 1; v < n; v <<= 1 {
			maxRounds += 64
		}
	}

	st := &state{
		informed: make([]bool, n),
		next:     make([]bool, n),
		alive:    make([]bool, n),
		out:      make([]int, n),
		in:       make([]int, n),
		profile:  profile,
	}
	st.informed[cfg.Source] = true
	for i := range st.alive {
		st.alive[i] = true
	}

	ro := newRoundObs(tr)
	if svc != nil && pipeline > 1 && cfg.CrashProb == 0 {
		return runDatingPipelined(cfg, svc, s, b, pipeline, maxRounds, st, ro)
	}

	var res Result
	for round := 1; round <= maxRounds; round++ {
		if cfg.CrashProb > 0 {
			for i := 0; i < n; i++ {
				if i != cfg.Source && st.alive[i] && s.Bernoulli(cfg.CrashProb) {
					st.alive[i] = false
					res.Crashed++
				}
			}
		}
		st.reset()
		ro.span(round, func() { step(st, s) })
		st.informed, st.next = st.next, st.informed
		done := roundEpilogue(&cfg, st, &res, round)
		ro.sample(round, res.SentHistory[len(res.SentHistory)-1], b)
		if done {
			res.Completed = true
			break
		}
	}
	return res, nil
}

// runDatingPipelined is the Dating round loop on the pipelined engine: the
// per-round seeds of a batch are drawn off the run stream up front — the
// same values, in the same order, as the sequential loop's one draw per
// round — and the batch runs through core.RunRoundsSeeded, which overlaps
// round r+1's scatter with round r's matching. Completion mid-batch simply
// discards the remaining results; nothing after the loop reads the stream,
// so the histories are bit-identical to the sequential schedule.
func runDatingPipelined(cfg Config, svc *core.Service, s *rng.Stream, b *par.Budget, depth, maxRounds int, st *state, ro *roundObs) (Result, error) {
	var res Result
	seeds := make([]uint64, 0, depth)
	round := 1
	for round <= maxRounds {
		k := depth
		if rem := maxRounds - round + 1; k > rem {
			k = rem
		}
		seeds = seeds[:0]
		for j := 0; j < k; j++ {
			seeds = append(seeds, s.Uint64())
		}
		var batch []core.RoundResult
		runBatch := func(workers int) {
			var err error
			batch, err = svc.RunRoundsSeeded(seeds, workers)
			if err != nil {
				panic(fmt.Sprintf("gossip: pipelined dating rounds failed: %v", err))
			}
		}
		// The batch span covers all k pipelined rounds; it is attributed to
		// the batch's first round so trace viewers line it up with the gauge
		// samples of the rounds it produced.
		ro.span(round, func() {
			if b != nil {
				b.Use(0, runBatch)
			} else {
				runBatch(1)
			}
		})
		for _, rr := range batch {
			st.reset()
			applyDates(st, rr.Dates)
			st.informed, st.next = st.next, st.informed
			done := roundEpilogue(&cfg, st, &res, round)
			ro.sample(round, res.SentHistory[len(res.SentHistory)-1], b)
			if done {
				res.Completed = true
				return res, nil
			}
			round++
		}
	}
	return res, nil
}

// roundEpilogue folds one completed round into the result — informed and
// I_t histories, per-node load maxima, the OnRound hook — and reports
// whether every live node is informed. Shared by the sequential and the
// pipelined loops so both account rounds identically.
func roundEpilogue(cfg *Config, st *state, res *Result, round int) bool {
	count, it, done := tally(st)
	res.Rounds = round
	res.History = append(res.History, count)
	res.ItHistory = append(res.ItHistory, it)
	sent := 0
	for i := range st.out {
		sent += st.out[i]
		if st.out[i] > res.MaxOutLoad {
			res.MaxOutLoad = st.out[i]
		}
		if st.in[i] > res.MaxInLoad {
			res.MaxInLoad = st.in[i]
		}
	}
	res.SentHistory = append(res.SentHistory, sent)
	if cfg.OnRound != nil {
		cfg.OnRound(round, st.informed)
	}
	return done
}

// tally counts informed nodes, the informed outgoing bandwidth I_t, and
// whether every live node is informed.
func tally(st *state) (count, it int, done bool) {
	done = true
	for i, inf := range st.informed {
		if !st.alive[i] {
			continue
		}
		if inf {
			count++
			it += st.profile.Out[i]
		} else {
			done = false
		}
	}
	return count, it, done
}
