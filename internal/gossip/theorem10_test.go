package gossip

import (
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestTheorem10RichRoundsShrinkWithBandwidth(t *testing.T) {
	// Theorem 10: rich nodes are informed within O(log n / log(m/n))
	// rounds, so raising the rich bandwidth must shrink their completion
	// time — the denominator grows with m/n.
	if testing.Short() {
		t.Skip("runs many hierarchical spreads")
	}
	s := rng.New(42)
	const n, reps = 1024, 8
	var prev float64 = 1e9
	for _, richB := range []int{4, 16, 64} {
		var acc stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			hr, err := RunHierarchical(n, n/10, richB, s)
			if err != nil {
				t.Fatal(err)
			}
			if !hr.Completed {
				t.Fatalf("richB=%d incomplete", richB)
			}
			acc.Add(float64(hr.RichRounds))
		}
		// Strict decrease is noisy at 8 reps; allow a small tolerance but
		// demand the overall trend.
		if acc.Mean() > prev+0.5 {
			t.Errorf("richB=%d: rich rounds %.2f did not shrink from %.2f", richB, acc.Mean(), prev)
		}
		prev = acc.Mean()
	}
	if prev > 5 {
		t.Errorf("at richB=64 rich completion takes %.1f rounds; expected near-constant", prev)
	}
}

func TestCorollary11WeakSource(t *testing.T) {
	// Corollary 11: even when the rumor starts at a WEAK node, average-
	// bandwidth nodes are informed after an O(1) expected handoff plus the
	// Theorem 10 time. Verify completion and that rich completion still
	// precedes total completion when the source is poor.
	if testing.Short() {
		t.Skip("runs several spreads")
	}
	s := rng.New(43)
	const n, rich, richB = 800, 80, 16
	profile, err := bandwidth.Bimodal(n, rich, richB, 1)
	if err != nil {
		t.Fatal(err)
	}
	var richRounds, totalRounds stats.Accumulator
	const reps = 8
	for rep := 0; rep < reps; rep++ {
		var richDone int
		cfg := Config{
			Algorithm: Dating,
			Profile:   profile,
			Source:    n - 1, // a weak node
			OnRound: func(round int, informed []bool) {
				if richDone > 0 {
					return
				}
				for i := 0; i < rich; i++ {
					if !informed[i] {
						return
					}
				}
				richDone = round
			},
		}
		res, err := Run(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("weak-source run incomplete")
		}
		if richDone == 0 {
			richDone = res.Rounds
		}
		richRounds.Add(float64(richDone))
		totalRounds.Add(float64(res.Rounds))
	}
	if richRounds.Mean() >= totalRounds.Mean() {
		t.Fatalf("rich tier (%.1f) not ahead of network (%.1f) from a weak source",
			richRounds.Mean(), totalRounds.Mean())
	}
}
