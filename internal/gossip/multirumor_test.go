package gossip

import (
	"reflect"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/par"
	"repro/internal/rng"
)

func TestMultiRumorValidation(t *testing.T) {
	s := rng.New(1)
	if _, err := RunMultiRumor(MultiRumorConfig{}, s); err == nil {
		t.Error("accepted empty config")
	}
	if _, err := RunMultiRumor(MultiRumorConfig{N: 10}, s); err == nil {
		t.Error("accepted zero injections")
	}
	if _, err := RunMultiRumor(MultiRumorConfig{
		N: 10, Injections: []Injection{{Round: 1, Source: 10}},
	}, s); err == nil {
		t.Error("accepted out-of-range source")
	}
	if _, err := RunMultiRumor(MultiRumorConfig{
		N: 10, Injections: []Injection{{Round: 0, Source: 0}},
	}, s); err == nil {
		t.Error("accepted round 0 injection")
	}
}

func TestSingleRumorMatchesRun(t *testing.T) {
	// One rumor injected at round 1 is exactly the Theorem 4 setting; the
	// round counts should be statistically comparable to Run(Dating).
	s := rng.New(2)
	var multi, single float64
	const reps = 8
	for rep := 0; rep < reps; rep++ {
		mr, err := RunMultiRumor(MultiRumorConfig{
			N:          300,
			Injections: []Injection{{Round: 1, Source: 0}},
		}, s)
		if err != nil {
			t.Fatal(err)
		}
		if !mr.Completed {
			t.Fatal("incomplete")
		}
		multi += float64(mr.Rounds)

		sr, err := Run(Config{Algorithm: Dating, N: 300, Source: 0}, s)
		if err != nil {
			t.Fatal(err)
		}
		single += float64(sr.Rounds)
	}
	if multi > 1.5*single || single > 1.5*multi {
		t.Fatalf("single-rumor multi run (%.1f) diverges from Run (%.1f)", multi/reps, single/reps)
	}
}

func TestMultiRumorAllDelivered(t *testing.T) {
	s := rng.New(3)
	const n = 200
	cfg := MultiRumorConfig{
		N: n,
		Injections: []Injection{
			{Round: 1, Source: 0},
			{Round: 1, Source: 50},
			{Round: 5, Source: 100},
			{Round: 10, Source: 150},
		},
	}
	res, err := RunMultiRumor(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete after %d rounds", res.Rounds)
	}
	for r, done := range res.PerRumorDone {
		if done == 0 {
			t.Fatalf("rumor %d never completed", r)
		}
		if done < cfg.Injections[r].Round {
			t.Fatalf("rumor %d completed at %d before injection at %d", r, done, cfg.Injections[r].Round)
		}
	}
	last := res.KnowledgeHist[len(res.KnowledgeHist)-1]
	if last != n*len(cfg.Injections) {
		t.Fatalf("final knowledge %d, want %d", last, n*len(cfg.Injections))
	}
}

func TestMultiRumorKnowledgeMonotone(t *testing.T) {
	s := rng.New(4)
	res, err := RunMultiRumor(MultiRumorConfig{
		N:          150,
		Injections: []Injection{{Round: 1, Source: 0}, {Round: 3, Source: 1}},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i, k := range res.KnowledgeHist {
		if k < prev {
			t.Fatalf("knowledge dropped at round %d", i+1)
		}
		prev = k
	}
}

func TestMultiRumorLateInjection(t *testing.T) {
	// A rumor injected late must still complete; its completion round is
	// at least its injection round plus a spreading period.
	s := rng.New(5)
	res, err := RunMultiRumor(MultiRumorConfig{
		N: 200,
		Injections: []Injection{
			{Round: 1, Source: 0},
			{Round: 30, Source: 7},
		},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.PerRumorDone[1] <= 30 {
		t.Fatalf("late rumor done at %d, injected at 30", res.PerRumorDone[1])
	}
}

func TestForwardingPolicies(t *testing.T) {
	// Both policies are live: every injected rumor reaches every node.
	for _, policy := range []Forwarding{ForwardRandom, ForwardRoundRobin} {
		s := rng.New(6)
		res, err := RunMultiRumor(MultiRumorConfig{
			N: 150,
			Injections: []Injection{
				{Round: 1, Source: 0}, {Round: 2, Source: 1}, {Round: 3, Source: 2},
			},
			Forwarding: policy,
		}, s)
		if err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		if !res.Completed {
			t.Fatalf("policy %v incomplete after %d rounds", policy, res.Rounds)
		}
	}
}

func TestMultiRumorHeterogeneous(t *testing.T) {
	s := rng.New(7)
	p, err := bandwidth.Zipf(200, 1.0, 8, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMultiRumor(MultiRumorConfig{
		Profile:    p,
		Injections: []Injection{{Round: 1, Source: 0}, {Round: 1, Source: 100}},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("heterogeneous multi-rumor incomplete after %d rounds", res.Rounds)
	}
}

func TestMultiRumorMaxRounds(t *testing.T) {
	s := rng.New(8)
	res, err := RunMultiRumor(MultiRumorConfig{
		N:          5000,
		Injections: []Injection{{Round: 1, Source: 0}},
		MaxRounds:  2,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Rounds > 2 {
		t.Fatalf("round cap violated: %+v", res.Rounds)
	}
}

func TestMultiRumorReproducible(t *testing.T) {
	// Multi-rumor rounds ride the seeded engine: runs are reproducible for
	// a fixed seed and complete.
	cfg := MultiRumorConfig{
		N:          600,
		Injections: []Injection{{Round: 1, Source: 0}, {Round: 3, Source: 99}},
		Forwarding: ForwardRoundRobin,
	}
	run := func() MultiRumorResult {
		res, err := RunMultiRumor(cfg, rng.New(21))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("multi-rumor run incomplete")
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs with the same seed diverged")
	}
}

func TestMultiRumorBudgetPureSpeedKnob(t *testing.T) {
	// Like single-rumor spreading, multirumor rounds draw their workers
	// from the shared budget: bit-identical for every budget size.
	run := func(workers int) MultiRumorResult {
		var b *par.Budget
		if workers > 1 {
			var err error
			b, err = par.NewBudget(workers)
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := runMultiRumorBudgeted(MultiRumorConfig{
			N: 600,
			Injections: []Injection{
				{Round: 1, Source: 0},
				{Round: 4, Source: 17},
			},
		}, rng.New(13), b)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if !ref.Completed {
		t.Fatalf("incomplete after %d rounds", ref.Rounds)
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverged from workers=1", workers)
		}
	}
}
