package gossip

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/rng"
)

// HierarchicalResult reports the Theorem 10 experiment: on a network with
// m = Omega(n log n) and a well-provisioned source, nodes of at least
// average bandwidth are informed much earlier than the weak tail —
// O(log n / log(m/n)) rounds versus O(log n).
type HierarchicalResult struct {
	RichRounds  int  // first round after which every rich node is informed
	TotalRounds int  // round at which everyone (rich and poor) is informed
	Completed   bool // whether the run completed within the cap
}

// RunHierarchical spreads a rumor with the dating service on a bimodal
// profile: `rich` nodes with bandwidth richB (the "at least average" class)
// and the rest with bandwidth 1. The source is node 0, which is rich, as
// Theorem 10 requires (source bandwidth Omega(m/n)).
func RunHierarchical(n, rich, richB int, s *rng.Stream) (HierarchicalResult, error) {
	if rich < 1 || rich > n {
		return HierarchicalResult{}, fmt.Errorf("gossip: rich count %d out of [1,%d]", rich, n)
	}
	profile, err := bandwidth.Bimodal(n, rich, richB, 1)
	if err != nil {
		return HierarchicalResult{}, err
	}
	sel, err := core.NewUniformSelector(n)
	if err != nil {
		return HierarchicalResult{}, err
	}
	var hres HierarchicalResult
	cfg := Config{
		Algorithm: Dating,
		Profile:   profile,
		Selector:  sel,
		Source:    0,
		OnRound: func(round int, informed []bool) {
			if hres.RichRounds == 0 {
				for i := 0; i < rich; i++ {
					if !informed[i] {
						return
					}
				}
				hres.RichRounds = round
			}
		},
	}
	res, err := Run(cfg, s)
	if err != nil {
		return HierarchicalResult{}, err
	}
	hres.TotalRounds = res.Rounds
	hres.Completed = res.Completed
	if hres.RichRounds == 0 {
		hres.RichRounds = res.Rounds
	}
	return hres, nil
}
