package gossip

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// LiveConfig parameterizes a fully message-level spreading run: the dating
// service's three-step handshake (scatter, answer, payload) executed by one
// goroutine per peer on the simnet.Live engine. Nothing is shared between
// peers except messages; each peer's only state is whether it knows the
// rumor. This is the protocol exactly as a real deployment would run it.
type LiveConfig struct {
	Profile bandwidth.Profile
	// Selector defaults to uniform over the profile's nodes.
	Selector core.Selector
	Source   int
	// MaxDatingRounds caps the run (0 = generous log-based default).
	MaxDatingRounds int
	Seed            uint64
	// Concurrent selects the Live engine (true) or its sequential twin
	// (false); both produce identical results for the same seed.
	Concurrent bool
}

// LiveResult reports a message-level spreading run.
type LiveResult struct {
	DatingRounds int
	Completed    bool
	History      []int // informed count after each dating round
	// MaxInPayloads is the largest number of payload messages any node
	// received in one dating round; the dating service guarantees it never
	// exceeds that node's bin.
	MaxInPayloads int
	Traffic       simnet.Stats
}

// livePeerState is the per-peer protocol state. Peer i writes only index i
// of each slice, so the goroutines never race; the engine's round barrier
// publishes the writes to the coordinator.
type livePeerState struct {
	informed   []bool
	inPayloads []int // payloads received in the current dating round
}

// RunLive executes rumor spreading with the dating-service handshake on the
// live engine.
func RunLive(cfg LiveConfig) (LiveResult, error) {
	n := cfg.Profile.N()
	if n == 0 {
		return LiveResult{}, fmt.Errorf("gossip: live run needs a profile")
	}
	if _, err := cfg.Profile.Ratio(); err != nil {
		return LiveResult{}, err
	}
	if cfg.Source < 0 || cfg.Source >= n {
		return LiveResult{}, fmt.Errorf("gossip: source %d out of range [0,%d)", cfg.Source, n)
	}
	sel := cfg.Selector
	if sel == nil {
		u, err := core.NewUniformSelector(n)
		if err != nil {
			return LiveResult{}, err
		}
		sel = u
	}
	if sel.N() != n {
		return LiveResult{}, fmt.Errorf("gossip: selector addresses %d nodes, profile has %d", sel.N(), n)
	}
	maxDating := cfg.MaxDatingRounds
	if maxDating <= 0 {
		maxDating = 64
		for v := 1; v < n; v <<= 1 {
			maxDating += 64
		}
	}

	st := &livePeerState{
		informed:   make([]bool, n),
		inPayloads: make([]int, n),
	}
	st.informed[cfg.Source] = true

	step := liveStep(cfg.Profile, sel, st)
	eng, err := simnet.NewLive(n, cfg.Seed, step)
	if err != nil {
		return LiveResult{}, err
	}

	run := func(steps int) simnet.Stats {
		if cfg.Concurrent {
			return eng.Run(steps)
		}
		return eng.RunSequential(steps)
	}

	var res LiveResult
	// Prologue: the first scatter (phase 0 of dating round 1, no payloads
	// in flight yet). After it, every loop iteration runs phases 1 and 2 of
	// the current dating round plus phase 0 of the next, which absorbs the
	// payloads — so the informed count inspected after each iteration is
	// exact for that round.
	run(1)
	for round := 1; round <= maxDating; round++ {
		for i := range st.inPayloads {
			st.inPayloads[i] = 0
		}
		res.Traffic = run(3)
		count := 0
		for i := 0; i < n; i++ {
			if st.informed[i] {
				count++
			}
			if st.inPayloads[i] > res.MaxInPayloads {
				res.MaxInPayloads = st.inPayloads[i]
			}
		}
		res.DatingRounds = round
		res.History = append(res.History, count)
		if count == n {
			res.Completed = true
			break
		}
	}
	return res, nil
}

// liveStep builds the per-peer state machine. Network round r is phase
// r % 3 of a dating round:
//
//	phase 0: absorb payloads from the previous round, scatter offers and
//	         receiving requests;
//	phase 1: act as rendezvous — match, answer offers with partner address;
//	phase 2: senders with a partner transmit the payload, carrying the
//	         rumor bit.
func liveStep(profile bandwidth.Profile, sel core.Selector, st *livePeerState) simnet.StepFunc {
	return func(node, round int, inbox []simnet.Message, s *rng.Stream) []simnet.Message {
		switch round % 3 {
		case 0:
			var out []simnet.Message
			for _, m := range inbox {
				if m.Kind == core.KindPayload {
					st.inPayloads[node]++
					if m.A == 1 {
						st.informed[node] = true
					}
				}
			}
			for k := 0; k < profile.Out[node]; k++ {
				out = append(out, simnet.Message{To: sel.Pick(s), Kind: core.KindOffer})
			}
			for k := 0; k < profile.In[node]; k++ {
				out = append(out, simnet.Message{To: sel.Pick(s), Kind: core.KindRequest})
			}
			return out

		case 1:
			var offers, requests []int32
			for _, m := range inbox {
				switch m.Kind {
				case core.KindOffer:
					offers = append(offers, int32(m.From))
				case core.KindRequest:
					requests = append(requests, int32(m.From))
				}
			}
			q := len(offers)
			if len(requests) < q {
				q = len(requests)
			}
			var out []simnet.Message
			core.MatchRendezvous(offers, requests, s, func(sender, receiver int32) {
				out = append(out, simnet.Message{To: int(sender), Kind: core.KindAnswer, A: int64(receiver)})
			})
			for _, o := range offers[q:] {
				out = append(out, simnet.Message{To: int(o), Kind: core.KindAnswer, A: -1})
			}
			return out

		default: // phase 2
			var out []simnet.Message
			rumor := int64(0)
			if st.informed[node] {
				rumor = 1
			}
			for _, m := range inbox {
				if m.Kind == core.KindAnswer && m.A >= 0 {
					out = append(out, simnet.Message{To: int(m.A), Kind: core.KindPayload, A: rumor})
				}
			}
			return out
		}
	}
}
