package gossip

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// LiveEngine selects the execution substrate for a message-level run.
type LiveEngine int

const (
	// LiveGoroutine is the legacy engine: one goroutine per peer (or its
	// sequential twin, per LiveConfig.Concurrent). Perfect-sync only.
	LiveGoroutine LiveEngine = iota
	// LiveSharded is the internal/live runtime: a fixed pool of shard
	// workers over flat message buffers. It scales to millions of peers,
	// is bit-identical for every shard count, and accepts a NetModel.
	LiveSharded
)

// LiveConfig parameterizes a fully message-level spreading run: the dating
// service's three-step handshake (scatter, answer, payload) executed peer
// by peer on a message engine. Nothing is shared between peers except
// messages; each peer's only state is whether it knows the rumor. This is
// the protocol exactly as a real deployment would run it.
type LiveConfig struct {
	Profile bandwidth.Profile
	// Selector defaults to uniform over the profile's nodes.
	Selector core.Selector
	Source   int
	// MaxDatingRounds caps the run (0 = generous log-based default).
	MaxDatingRounds int
}

// LiveOptions carries the axes of a live run that are orthogonal to the
// protocol: the seed, the execution substrate, its worker count, the
// network model and the pipelining depth. Under repro.Run these come from
// the run options; RunLive takes them explicitly so direct callers state
// the same separation.
type LiveOptions struct {
	Seed uint64
	// Engine picks the substrate; the zero value is the goroutine engine.
	// (All engines share the sharded runtime's per-peer stream derivation,
	// so the engine choice never changes trajectories.)
	Engine LiveEngine
	// Concurrent selects the goroutine engine's concurrent mode (true) or
	// its sequential twin (false); both produce identical results for the
	// same seed. Ignored by the sharded engine, which always runs its
	// shard workers.
	Concurrent bool
	// Shards is the sharded engine's worker count (0 = GOMAXPROCS). The
	// run's results are bit-identical for every value: shards are a pure
	// speed knob.
	Shards int
	// Net plugs a network model — latency, loss, churn — into the sharded
	// engine; nil is the paper's perfect-sync model. The goroutine engine
	// rejects non-nil models.
	Net live.NetModel
	// Pipeline > 1 runs the sharded engine's fused round loop
	// (live.Runtime.RunPipelined), which folds the delivery sort of each
	// network round into the step phase. Bit-identical to the sequential
	// schedule; ignored by the goroutine engine.
	Pipeline int
	// Obs, when non-nil, receives phase spans and per-round gauges from the
	// sharded engine. Observers are read-only: attaching one never changes
	// results. Ignored by the goroutine engine.
	Obs *obs.Observer
}

// LiveResult reports a message-level spreading run.
type LiveResult struct {
	DatingRounds int
	Completed    bool
	History      []int // informed count after each dating round
	// SentHistory is the number of messages routed per dating round (the
	// three network rounds of the handshake; the first entry also counts
	// the prologue scatter).
	SentHistory []int
	// MaxInPayloads is the largest number of payload messages any node
	// received in one dating round; the dating service guarantees it never
	// exceeds that node's bin under the perfect-sync model (latency models
	// may bunch deliveries of adjacent rounds).
	MaxInPayloads int
	Traffic       simnet.Stats
}

// livePeerState is the per-peer protocol state. Peer i writes only index i
// of each slice, so concurrent peers never race; the engine's round barrier
// publishes the writes to the coordinator.
type livePeerState struct {
	informed   []bool
	inPayloads []int // payloads received in the current dating round
	// pendOffers/pendRequests buffer control messages that arrive outside
	// their handshake phase — possible only under latency models, so both
	// stay nil (and cost nothing) under perfect sync.
	pendOffers   [][]int32
	pendRequests [][]int32
}

// RunLive executes rumor spreading with the dating-service handshake on a
// live message engine.
func RunLive(cfg LiveConfig, o LiveOptions) (LiveResult, error) {
	n := cfg.Profile.N()
	if n == 0 {
		return LiveResult{}, fmt.Errorf("gossip: live run needs a profile")
	}
	if _, err := cfg.Profile.Ratio(); err != nil {
		return LiveResult{}, err
	}
	if cfg.Source < 0 || cfg.Source >= n {
		return LiveResult{}, fmt.Errorf("gossip: source %d out of range [0,%d)", cfg.Source, n)
	}
	if o.Engine == LiveGoroutine && o.Net != nil {
		return LiveResult{}, fmt.Errorf("gossip: network models require the sharded engine")
	}
	sel := cfg.Selector
	if sel == nil {
		u, err := core.NewUniformSelector(n)
		if err != nil {
			return LiveResult{}, err
		}
		sel = u
	}
	if sel.N() != n {
		return LiveResult{}, fmt.Errorf("gossip: selector addresses %d nodes, profile has %d", sel.N(), n)
	}
	maxDating := cfg.MaxDatingRounds
	if maxDating <= 0 {
		maxDating = 64
		for v := 1; v < n; v <<= 1 {
			maxDating += 64
		}
	}

	st := &livePeerState{
		informed:   make([]bool, n),
		inPayloads: make([]int, n),
	}
	if o.Net != nil && o.Net.MaxDelay() > 1 {
		// Latency can deliver offers and demands outside their phase; give
		// every rendezvous a holding buffer until its next matching round.
		st.pendOffers = make([][]int32, n)
		st.pendRequests = make([][]int32, n)
	}
	st.informed[cfg.Source] = true

	step := liveEmitStep(cfg.Profile, sel, st)
	var run func(steps int) simnet.Stats
	switch o.Engine {
	case LiveGoroutine:
		// Derive the per-peer streams exactly as the sharded runtime does,
		// so the engine choice never changes results: goroutine, sequential
		// and sharded runs of one seed are bit-identical under perfect sync.
		streams := make([]*rng.Stream, n)
		for i := range streams {
			streams[i] = rng.New(live.PeerSeed(o.Seed, i))
		}
		eng, err := simnet.NewLiveWithStreams(streams, adaptStep(step))
		if err != nil {
			return LiveResult{}, err
		}
		if o.Concurrent {
			run = eng.Run
		} else {
			run = eng.RunSequential
		}
	case LiveSharded:
		rt, err := live.New(live.Config{
			N:      n,
			Seed:   o.Seed,
			Step:   step,
			Shards: o.Shards,
			Net:    o.Net,
			Obs:    o.Obs,
		})
		if err != nil {
			return LiveResult{}, err
		}
		if o.Pipeline > 1 {
			run = rt.RunPipelined
		} else {
			run = rt.Run
		}
	default:
		return LiveResult{}, fmt.Errorf("gossip: unknown live engine %d", o.Engine)
	}

	var res LiveResult
	// Prologue: the first scatter (phase 0 of dating round 1, no payloads
	// in flight yet). After it, every loop iteration runs phases 1 and 2 of
	// the current dating round plus phase 0 of the next, which absorbs the
	// payloads — so the informed count inspected after each iteration is
	// exact for that round.
	run(1)
	var prevSent int64
	for round := 1; round <= maxDating; round++ {
		for i := range st.inPayloads {
			st.inPayloads[i] = 0
		}
		res.Traffic = run(3)
		res.SentHistory = append(res.SentHistory, int(res.Traffic.Sent-prevSent))
		prevSent = res.Traffic.Sent
		count := 0
		for i := 0; i < n; i++ {
			if st.informed[i] {
				count++
			}
			if st.inPayloads[i] > res.MaxInPayloads {
				res.MaxInPayloads = st.inPayloads[i]
			}
		}
		res.DatingRounds = round
		res.History = append(res.History, count)
		if count == n {
			res.Completed = true
			break
		}
	}
	return res, nil
}

// liveEmitStep builds the per-peer handshake state machine, in the sharded
// runtime's emit form. Network round r is phase r % 3 of a dating round:
//
//	phase 0: scatter offers and receiving requests;
//	phase 1: act as rendezvous — match, answer offers with partner address;
//	phase 2: senders with a partner transmit the payload, carrying the
//	         rumor bit.
//
// Unlike the phase-switched legacy version, arrivals are handled by kind,
// whenever they come in: payloads are absorbed immediately, answers are
// acted on immediately, and offers/demands that miss their matching round
// (possible only under latency models) wait in the peer's pending buffers
// for the next one. Under the perfect-sync model every message arrives in
// its natural phase, so this reduces bit-for-bit to the legacy behavior.
func liveEmitStep(profile bandwidth.Profile, sel core.Selector, st *livePeerState) live.StepFunc {
	return func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
		var offers, requests []int32
		for _, m := range inbox {
			switch m.Kind {
			case core.KindPayload:
				st.inPayloads[node]++
				if m.A == 1 {
					st.informed[node] = true
				}
			case core.KindAnswer:
				if m.A >= 0 {
					rumor := int64(0)
					if st.informed[node] {
						rumor = 1
					}
					emit(simnet.Message{To: int(m.A), Kind: core.KindPayload, A: rumor})
				}
			case core.KindOffer:
				offers = append(offers, int32(m.From))
			case core.KindRequest:
				requests = append(requests, int32(m.From))
			}
		}

		switch round % 3 {
		case 0: // scatter
			for k := 0; k < profile.Out[node]; k++ {
				emit(simnet.Message{To: sel.Pick(s), Kind: core.KindOffer})
			}
			for k := 0; k < profile.In[node]; k++ {
				emit(simnet.Message{To: sel.Pick(s), Kind: core.KindRequest})
			}

		case 1: // rendezvous: match everything that made it here in time
			if st.pendOffers != nil {
				// Earlier arrivals first, then this round's, so the match
				// sees requests in arrival order. The merged slices alias
				// the pending backing arrays, which are cleared below and
				// not touched again until this call returns.
				offers = append(st.pendOffers[node], offers...)
				requests = append(st.pendRequests[node], requests...)
				st.pendOffers[node] = st.pendOffers[node][:0]
				st.pendRequests[node] = st.pendRequests[node][:0]
			}
			q := len(offers)
			if len(requests) < q {
				q = len(requests)
			}
			core.MatchRendezvous(offers, requests, s, func(sender, receiver int32) {
				emit(simnet.Message{To: int(sender), Kind: core.KindAnswer, A: int64(receiver)})
			})
			for _, o := range offers[q:] {
				emit(simnet.Message{To: int(o), Kind: core.KindAnswer, A: -1})
			}
			return
		}

		// Off-phase control arrivals (latency models only) wait for the
		// peer's next matching round.
		if len(offers) > 0 {
			st.pendOffers[node] = append(st.pendOffers[node], offers...)
		}
		if len(requests) > 0 {
			st.pendRequests[node] = append(st.pendRequests[node], requests...)
		}
	}
}

// adaptStep converts the emit-style step back to the slice-returning shape
// of the goroutine engine, so both substrates run the same protocol code.
func adaptStep(step live.StepFunc) simnet.StepFunc {
	return func(node, round int, inbox []simnet.Message, s *rng.Stream) []simnet.Message {
		var out []simnet.Message
		step(node, round, inbox, s, func(m simnet.Message) { out = append(out, m) })
		return out
	}
}
