package gossip

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rng"
)

// datingStep adapts the dating service as a rumor spreading round: run
// Algorithm 1, then transfer the rumor along every date whose sender was
// informed at the start of the round.
//
// Per the paper, the protocol is oblivious: informed nodes keep issuing
// receiving requests and uninformed nodes keep issuing offers (a date from
// an uninformed sender simply carries nothing useful). This wastes some
// bandwidth but keeps the protocol simple and churn-tolerant, and the
// O(log n) bound holds regardless (Theorem 4).
//
// When b is non-nil each round runs on the seeded engine with the caller's
// worker plus whatever spare tokens the shared budget has that round; when
// workers >= 1 it runs on the seeded engine with that fixed worker count.
// Either way the per-round seed is one draw off the run stream and the
// seeded path is worker-count independent, so the spreading run is
// bit-identical for every budget size and every workers value: both are
// pure speed knobs. b == nil with workers == 0 keeps the legacy serial
// path driven directly by the run stream.
func datingStep(svc *core.Service, workers int, b *par.Budget) stepFunc {
	return func(st *state, s *rng.Stream) {
		var alive func(i int) bool
		if anyDead(st.alive) {
			// st.alive is fixed for the duration of the round, so the
			// closure is safe for the engine's concurrent workers.
			alive = func(i int) bool { return st.alive[i] }
		}
		var res core.RoundResult
		if b != nil || workers >= 1 {
			// One draw per round whatever the worker count, so the run
			// stream evolves identically for every workers value.
			seed := s.Uint64()
			var err error
			if b != nil {
				res, err = svc.RunRoundSharedFiltered(seed, b, alive)
			} else {
				res, err = svc.RunRoundSeededFiltered(seed, workers, alive)
			}
			if err != nil {
				// Run validated the worker configuration; a failure here is
				// a programming error, not a runtime condition.
				panic(fmt.Sprintf("gossip: seeded dating round failed: %v", err))
			}
		} else {
			res = svc.RunRoundFiltered(s, alive)
		}
		for _, d := range res.Dates {
			// Every date consumes bandwidth on both sides whether or not it
			// carries the rumor; loads therefore count all dates, which by
			// construction remain within the profile.
			st.out[d.Sender]++
			st.in[d.Receiver]++
			if st.informed[d.Sender] {
				st.next[d.Receiver] = true
			}
		}
	}
}

func anyDead(alive []bool) bool {
	for _, a := range alive {
		if !a {
			return true
		}
	}
	return false
}

// PhaseBoundaries analyzes an I_t history against the three-phase structure
// of Theorem 4's proof: phase 1 ends when I_t reaches max(m/n, log n);
// phase 2 ends when I_t reaches m/2; phase 3 ends at completion. It returns
// the 1-based round at which each phase ended (0 if never reached).
func PhaseBoundaries(itHistory []int, m, n int) (endPhase1, endPhase2, endPhase3 int) {
	if n <= 0 {
		return 0, 0, 0
	}
	log2n := 0
	for v := 1; v < n; v <<= 1 {
		log2n++
	}
	threshold1 := m / n
	if log2n > threshold1 {
		threshold1 = log2n
	}
	if threshold1 < 1 {
		threshold1 = 1
	}
	threshold2 := m / 2
	for i, it := range itHistory {
		round := i + 1
		if endPhase1 == 0 && it >= threshold1 {
			endPhase1 = round
		}
		if endPhase2 == 0 && it >= threshold2 {
			endPhase2 = round
		}
	}
	if len(itHistory) > 0 {
		endPhase3 = len(itHistory)
	}
	return endPhase1, endPhase2, endPhase3
}
