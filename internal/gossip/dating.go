package gossip

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rng"
)

// datingStep adapts the dating service as a rumor spreading round: run
// Algorithm 1, then transfer the rumor along every date whose sender was
// informed at the start of the round.
//
// Per the paper, the protocol is oblivious: informed nodes keep issuing
// receiving requests and uninformed nodes keep issuing offers (a date from
// an uninformed sender simply carries nothing useful). This wastes some
// bandwidth but keeps the protocol simple and churn-tolerant, and the
// O(log n) bound holds regardless (Theorem 4).
//
// Every round runs on the seeded engine: the per-round seed is one draw
// off the run stream, and the seeded path derives its randomness per node
// and per rendezvous, so the spreading run is bit-identical for every
// budget size — the worker count is a pure speed knob. When b is non-nil
// the round grabs the caller's worker plus whatever spare tokens the
// shared budget has that round; a nil budget runs serially.
func datingStep(svc *core.Service, b *par.Budget) stepFunc {
	return func(st *state, s *rng.Stream) {
		var alive func(i int) bool
		if anyDead(st.alive) {
			// st.alive is fixed for the duration of the round, so the
			// closure is safe for the engine's concurrent workers.
			alive = func(i int) bool { return st.alive[i] }
		}
		// One draw per round whatever the worker count, so the run stream
		// evolves identically for every budget size.
		seed := s.Uint64()
		var res core.RoundResult
		var err error
		if b != nil {
			res, err = svc.RunRoundSharedFiltered(seed, b, alive)
		} else {
			res, err = svc.RunRoundSeededFiltered(seed, 1, alive)
		}
		if err != nil {
			// Run validated the configuration; a failure here is a
			// programming error, not a runtime condition.
			panic(fmt.Sprintf("gossip: seeded dating round failed: %v", err))
		}
		applyDates(st, res.Dates)
	}
}

// applyDates folds one round's dates into the spreading state: every date
// consumes bandwidth on both sides whether or not it carries the rumor
// (loads therefore count all dates, which by construction remain within
// the profile), and the rumor crosses a date iff the sender was informed
// at the start of the round.
func applyDates(st *state, dates []core.Date) {
	for _, d := range dates {
		st.out[d.Sender]++
		st.in[d.Receiver]++
		if st.informed[d.Sender] {
			st.next[d.Receiver] = true
		}
	}
}

func anyDead(alive []bool) bool {
	for _, a := range alive {
		if !a {
			return true
		}
	}
	return false
}

// PhaseBoundaries analyzes an I_t history against the three-phase structure
// of Theorem 4's proof: phase 1 ends when I_t reaches max(m/n, log n);
// phase 2 ends when I_t reaches m/2; phase 3 ends at completion. It returns
// the 1-based round at which each phase ended (0 if never reached).
func PhaseBoundaries(itHistory []int, m, n int) (endPhase1, endPhase2, endPhase3 int) {
	if n <= 0 {
		return 0, 0, 0
	}
	log2n := 0
	for v := 1; v < n; v <<= 1 {
		log2n++
	}
	threshold1 := m / n
	if log2n > threshold1 {
		threshold1 = log2n
	}
	if threshold1 < 1 {
		threshold1 = 1
	}
	threshold2 := m / 2
	for i, it := range itHistory {
		round := i + 1
		if endPhase1 == 0 && it >= threshold1 {
			endPhase1 = round
		}
		if endPhase2 == 0 && it >= threshold2 {
			endPhase2 = round
		}
	}
	if len(itHistory) > 0 {
		endPhase3 = len(itHistory)
	}
	return endPhase1, endPhase2, endPhase3
}
