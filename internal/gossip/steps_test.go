package gossip

import (
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/rng"
)

// Direct unit tests of the baseline step functions: each algorithm's
// one-round semantics, independent of full runs.

func newState(n int, informed ...int) *state {
	st := &state{
		informed: make([]bool, n),
		next:     make([]bool, n),
		alive:    make([]bool, n),
		out:      make([]int, n),
		in:       make([]int, n),
		profile:  bandwidth.Homogeneous(n, 1),
	}
	for i := range st.alive {
		st.alive[i] = true
	}
	for _, i := range informed {
		st.informed[i] = true
	}
	st.reset()
	return st
}

func countTrue(bs []bool) int {
	c := 0
	for _, b := range bs {
		if b {
			c++
		}
	}
	return c
}

func TestStepPushInformsOneTargetPerInformed(t *testing.T) {
	st := newState(10, 0, 1)
	stepPush(st, rng.New(1))
	// Exactly two pushes happened; at most 2 new nodes (collisions allowed).
	newCount := countTrue(st.next) - countTrue(st.informed)
	if newCount < 0 || newCount > 2 {
		t.Fatalf("push informed %d new nodes from 2 senders", newCount)
	}
	if st.out[0] != 1 || st.out[1] != 1 {
		t.Fatalf("push out-loads %v", st.out[:2])
	}
	// Informed senders stay informed.
	if !st.next[0] || !st.next[1] {
		t.Fatal("push made a sender forget")
	}
}

func TestStepPushNoSelfTarget(t *testing.T) {
	// With 2 nodes, an informed node must always push to the other one.
	st := newState(2, 0)
	stepPush(st, rng.New(2))
	if !st.next[1] {
		t.Fatal("push with n=2 did not inform the other node")
	}
}

func TestStepPullOnlyFromInformed(t *testing.T) {
	st := newState(2, 0)
	stepPull(st, rng.New(3))
	// Node 1 pulls from node 0 (the only other node), which is informed.
	if !st.next[1] {
		t.Fatal("pull from the unique informed neighbor failed")
	}
	if st.out[0] != 1 {
		t.Fatalf("server load %d, want 1", st.out[0])
	}
}

func TestStepPullNothingWhenNooneInformed(t *testing.T) {
	st := newState(8) // nobody informed
	stepPull(st, rng.New(4))
	if countTrue(st.next) != 0 {
		t.Fatal("pull informed someone out of thin air")
	}
}

func TestStepPushPullBothDirections(t *testing.T) {
	// n=2: whichever direction the contacts go, both end up informed.
	st := newState(2, 0)
	stepPushPull(st, rng.New(5))
	if !st.next[0] || !st.next[1] {
		t.Fatalf("push-pull with n=2 did not converge in one round: %v", st.next)
	}
}

func TestStepFairPullServesExactlyOne(t *testing.T) {
	// 1 informed node, 9 uninformed: every requester targets node 0 (the
	// only informed one it can profit from), but only one is served.
	const n = 10
	st := newState(n, 0)
	stepFairPull(st, rng.New(6))
	newCount := countTrue(st.next) - 1
	if newCount > 1 {
		t.Fatalf("fair pull served %d requesters from one informed node", newCount)
	}
	if st.out[0] > 1 {
		t.Fatalf("fair pull out-load %d", st.out[0])
	}
}

func TestStepFairPullUniformAmongRequesters(t *testing.T) {
	// The single served requester must be uniform among those who asked.
	// With n=3, nodes 1 and 2 always ask node 0 or each other; count who
	// gets informed over many trials when both asked node 0.
	counts := [3]int{}
	s := rng.New(7)
	const trials = 60000
	for i := 0; i < trials; i++ {
		st := newState(3, 0)
		stepFairPull(st, s)
		for j := 1; j < 3; j++ {
			if st.next[j] {
				counts[j]++
			}
		}
	}
	// By symmetry nodes 1 and 2 must be informed equally often.
	diff := float64(counts[1]-counts[2]) / float64(counts[1]+counts[2])
	if diff < -0.03 || diff > 0.03 {
		t.Fatalf("asymmetric fair pull: %v", counts)
	}
}

func TestStepFairPushPullPushStillUnbounded(t *testing.T) {
	// The push direction delivers regardless of fairness: with everyone
	// informed except one, that node is pushed to by possibly many callers
	// but pulled answers stay single.
	const n = 16
	informed := make([]int, n-1)
	for i := range informed {
		informed[i] = i
	}
	st := newState(n, informed...)
	stepFairPushPull(st, rng.New(8))
	if !st.next[n-1] {
		// The lone uninformed node contacted an informed node (pull) and
		// possibly got pushed to; with n-1 informed of n the chance of
		// neither is (tiny but) nonzero, so only assert when loads show
		// contact happened.
		contacted := st.in[n-1] > 0
		if contacted {
			t.Fatal("contacted node stayed uninformed")
		}
	}
}

func TestStepsRespectAliveMask(t *testing.T) {
	for name, step := range map[string]stepFunc{
		"push": stepPush, "pull": stepPull, "push-pull": stepPushPull,
		"fair-pull": stepFairPull, "fair-push-pull": stepFairPushPull,
	} {
		st := newState(12, 0)
		for i := 6; i < 12; i++ {
			st.alive[i] = false
		}
		step(st, rng.New(9))
		for i := 6; i < 12; i++ {
			if st.next[i] {
				t.Errorf("%s informed dead node %d", name, i)
			}
		}
	}
}

func TestStateResetClearsLoads(t *testing.T) {
	st := newState(4, 0)
	st.out[2] = 5
	st.in[3] = 7
	st.next[1] = true
	st.reset()
	if st.out[2] != 0 || st.in[3] != 0 {
		t.Fatal("reset kept loads")
	}
	if st.next[1] {
		t.Fatal("reset kept next-informed flags not present in informed")
	}
	if !st.next[0] {
		t.Fatal("reset dropped the informed source")
	}
}

func TestTallyCountsOnlyAlive(t *testing.T) {
	st := newState(5, 0, 1, 2)
	st.alive[2] = false
	count, it, done := tally(st)
	if count != 2 {
		t.Fatalf("count = %d, want 2 (dead informed excluded)", count)
	}
	if it != 2 {
		t.Fatalf("I_t = %d with unit bandwidths", it)
	}
	if done {
		t.Fatal("not done: nodes 3 and 4 are alive and uninformed")
	}
	st.informed[3] = true
	st.informed[4] = true
	if _, _, done := tally(st); !done {
		t.Fatal("done flag wrong with all alive informed")
	}
}

func TestPickOtherNeverSelf(t *testing.T) {
	s := rng.New(10)
	for n := 2; n <= 5; n++ {
		for i := 0; i < n; i++ {
			for trial := 0; trial < 200; trial++ {
				if j := pickOther(n, i, s); j == i || j < 0 || j >= n {
					t.Fatalf("pickOther(%d, %d) = %d", n, i, j)
				}
			}
		}
	}
}

func TestPickOtherUniform(t *testing.T) {
	s := rng.New(11)
	counts := make([]int, 4)
	const draws = 80000
	for i := 0; i < draws; i++ {
		counts[pickOther(4, 1, s)]++
	}
	if counts[1] != 0 {
		t.Fatal("self picked")
	}
	for _, j := range []int{0, 2, 3} {
		want := float64(draws) / 3
		if float64(counts[j]) < 0.95*want || float64(counts[j]) > 1.05*want {
			t.Fatalf("pickOther skewed: %v", counts)
		}
	}
}
