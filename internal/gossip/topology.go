package gossip

// This file is graph-constrained spreading: the Maki–Thompson spreader/
// stifler protocol (ignorant → spreader → stifler) running on a CSR topology
// from internal/graph instead of the any-to-any rendezvous assumption. Each
// round every spreader contacts one *neighbor*; contacting a peer that
// already knows the rumor stifles the initiator with probability Alpha, and
// a spreader may also cease spontaneously with probability Delta — so unlike
// the push/pull protocols the epidemic can die out before reaching everyone,
// and the final spread fraction becomes the quantity of interest.

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/exch"
	"repro/internal/graph"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/run"
	"repro/internal/simnet"
)

// Message kinds of the topology protocol, disjoint from the dating handshake
// (1–4) and the async exchange (8–9) so ByKind traffic stays legible.
const (
	// kindTopoContact is a spreader's contact carrying the rumor.
	kindTopoContact uint8 = 10
	// kindTopoKnown is the "already knew it" reply that may stifle the
	// contacting spreader.
	kindTopoKnown uint8 = 11
)

// SIR peer states. Informed means spreader or stifler: a stifler knows the
// rumor, it just no longer forwards it.
const (
	topoIgnorant uint8 = iota
	topoSpreader
	topoStifler
)

// TopologyConfig parameterizes graph-constrained spreader/stifler spreading.
// The zero Lambda means 1 (the classic Maki–Thompson acceptance); Alpha and
// Delta default to 0, under which the protocol degenerates to plain push
// over the graph and — on the complete graph — to the any-to-any push
// protocol's final spread.
type TopologyConfig struct {
	// Graph is the contact topology; every contact is drawn over the
	// initiating peer's neighbor row.
	Graph *graph.CSR
	// Profile, with Weighted set, biases each neighbor draw proportional to
	// the neighbor's mean bandwidth (bin+bout)/2 — the dating service's
	// heterogeneity knob transplanted to the graph setting. Empty profile or
	// Weighted false means uniform neighbor choice.
	Profile  bandwidth.Profile
	Weighted bool
	// Source is the initially spreading peer.
	Source int
	// Alpha is the stifling probability: a spreader told "already knew" by
	// its contact turns stifler with this probability.
	Alpha float64
	// Lambda is the acceptance probability: an ignorant contacted by a
	// spreader turns spreader with this probability (0 means 1).
	Lambda float64
	// Delta is the spontaneous per-round cessation probability of a
	// spreader.
	Delta float64
	// MaxRounds caps the run (0 = generous log-based default).
	MaxRounds int
}

// TopologyOptions carries the axes of a topology run that are orthogonal to
// the protocol; under repro.Run they come from the run options.
type TopologyOptions struct {
	Seed uint64
	// Engine picks the substrate; the zero value is the goroutine engine.
	// All engines share the sharded runtime's per-peer stream derivation, so
	// the engine choice never changes trajectories.
	Engine LiveEngine
	// Concurrent selects the goroutine engine's concurrent mode; ignored by
	// the sharded engine.
	Concurrent bool
	// Shards is the sharded engine's worker count (0 = GOMAXPROCS); every
	// value is bit-identical.
	Shards int
	// Net plugs a network model into the sharded engine; nil is perfect
	// sync. The goroutine engine rejects non-nil models.
	Net live.NetModel
	// Pipeline > 1 runs the sharded engine's fused round loop; bit-identical
	// to the sequential schedule.
	Pipeline int
	// Obs, when non-nil, receives the runtime's phase spans plus the
	// protocol's per-round spreader/stifler gauges on a "topology" track.
	Obs *obs.Observer
}

// TopologyResult reports a graph-constrained spreading run.
type TopologyResult struct {
	Rounds    int
	Completed bool
	// History is the informed count (spreaders + stiflers) after each round.
	History []int
	// SpreaderHist / StiflerHist split the informed count by state.
	SpreaderHist []int
	StiflerHist  []int
	// SentHistory is the number of messages routed per round.
	SentHistory []int
	// FinalSpread is the informed fraction when the run stopped — the
	// epidemic-size observable of the rumor literature (< 1 when stifling
	// killed the rumor early).
	FinalSpread float64
	Traffic     simnet.Stats
}

// topoState is the per-peer SIR state, laid out as one contiguous cell block
// per shard — the owning shard is the only writer of its block, so blocks of
// different shards never share a slice (the -race suite pins this layout).
// The partition mirrors the runtime's exactly via live.EffectiveShards.
type topoState struct {
	part  exch.Partition
	cells [][]uint8
}

func newTopoState(n, parts int) *topoState {
	st := &topoState{part: exch.Partition{N: n, Parts: parts}}
	st.cells = make([][]uint8, parts)
	for o := range st.cells {
		lo, hi := st.part.Range(o)
		st.cells[o] = make([]uint8, hi-lo)
	}
	return st
}

func (st *topoState) get(i int) uint8 {
	o := st.part.Owner(i)
	return st.cells[o][i-st.part.Start(o)]
}

func (st *topoState) set(i int, v uint8) {
	o := st.part.Owner(i)
	st.cells[o][i-st.part.Start(o)] = v
}

// counts tallies the states; called by the coordinator between rounds, when
// the shards are quiescent.
func (st *topoState) counts() (spreaders, stiflers int) {
	for _, cell := range st.cells {
		for _, v := range cell {
			switch v {
			case topoSpreader:
				spreaders++
			case topoStifler:
				stiflers++
			}
		}
	}
	return
}

// topoStep builds the per-peer spreader/stifler state machine. All
// transition randomness is drawn from the acting peer's own stream while its
// inbox is processed in canonical order, so trajectories are bit-identical
// for every shard count. Draw order per round is fixed: inbox decisions
// first (acceptance for contacts, stifling for replies), then the cessation
// draw, then the contact draw — and Bernoulli consumes no randomness at its
// degenerate probabilities, so Alpha = 0 and Lambda = 1 runs stay aligned
// with runs that never consult those knobs.
func topoStep(sampler graph.Sampler, st *topoState, alpha, lambda, delta float64) live.StepFunc {
	return func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
		state := st.get(node)
		for _, m := range inbox {
			switch m.Kind {
			case kindTopoContact:
				switch state {
				case topoIgnorant:
					if s.Bernoulli(lambda) {
						state = topoSpreader
					}
				default: // spreader or stifler: already knew
					emit(simnet.Message{To: m.From, Kind: kindTopoKnown})
				}
			case kindTopoKnown:
				if state == topoSpreader && s.Bernoulli(alpha) {
					state = topoStifler
				}
			}
		}
		if state == topoSpreader {
			if s.Bernoulli(delta) {
				state = topoStifler
			} else if nb := sampler.Pick(node, s); nb >= 0 {
				emit(simnet.Message{To: nb, Kind: kindTopoContact, A: 1})
			}
		}
		st.set(node, state)
	}
}

// topoSampler builds the neighbor sampler the config asks for.
func topoSampler(cfg TopologyConfig) (graph.Sampler, error) {
	if !cfg.Weighted {
		return graph.NewUniformNeighbors(cfg.Graph)
	}
	n := cfg.Graph.N()
	if cfg.Profile.N() != n {
		return nil, fmt.Errorf("gossip: weighted topology needs a profile over %d nodes, got %d", n, cfg.Profile.N())
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(cfg.Profile.In[i]+cfg.Profile.Out[i]) / 2
	}
	return graph.NewWeightedNeighbors(cfg.Graph, w)
}

// RunTopology executes graph-constrained spreader/stifler spreading on a
// live message engine.
func RunTopology(cfg TopologyConfig, o TopologyOptions) (TopologyResult, error) {
	if cfg.Graph == nil || cfg.Graph.N() == 0 {
		return TopologyResult{}, fmt.Errorf("gossip: topology run needs a graph")
	}
	n := cfg.Graph.N()
	if cfg.Source < 0 || cfg.Source >= n {
		return TopologyResult{}, fmt.Errorf("gossip: source %d out of range [0,%d)", cfg.Source, n)
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 || cfg.Lambda < 0 || cfg.Lambda > 1 || cfg.Delta < 0 || cfg.Delta > 1 {
		return TopologyResult{}, fmt.Errorf("gossip: topology rates must lie in [0,1], got alpha=%v lambda=%v delta=%v",
			cfg.Alpha, cfg.Lambda, cfg.Delta)
	}
	if o.Engine == LiveGoroutine && o.Net != nil {
		return TopologyResult{}, fmt.Errorf("gossip: network models require the sharded engine")
	}
	lambda := cfg.Lambda
	if lambda == 0 {
		lambda = 1
	}
	sampler, err := topoSampler(cfg)
	if err != nil {
		return TopologyResult{}, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
		for v := 1; v < n; v <<= 1 {
			maxRounds += 64
		}
	}

	// State blocks match the runtime's shard partition, so each block has
	// exactly one writing worker; the goroutine engine steps sequentially
	// per peer and uses a single block.
	parts := 1
	if o.Engine == LiveSharded {
		parts = live.EffectiveShards(n, o.Shards)
	}
	st := newTopoState(n, parts)
	st.set(cfg.Source, topoSpreader)

	step := topoStep(sampler, st, cfg.Alpha, lambda, cfg.Delta)
	var runRounds func(rounds int) simnet.Stats
	maxDelay := 1
	switch o.Engine {
	case LiveGoroutine:
		streams := make([]*rng.Stream, n)
		for i := range streams {
			streams[i] = rng.New(live.PeerSeed(o.Seed, i))
		}
		eng, err := simnet.NewLiveWithStreams(streams, adaptStep(step))
		if err != nil {
			return TopologyResult{}, err
		}
		if o.Concurrent {
			runRounds = eng.Run
		} else {
			runRounds = eng.RunSequential
		}
	case LiveSharded:
		rt, err := live.New(live.Config{
			N:      n,
			Seed:   o.Seed,
			Step:   step,
			Shards: o.Shards,
			Net:    o.Net,
			Obs:    o.Obs,
		})
		if err != nil {
			return TopologyResult{}, err
		}
		if o.Pipeline > 1 {
			runRounds = rt.RunPipelined
		} else {
			runRounds = rt.Run
		}
		if o.Net != nil {
			maxDelay = o.Net.MaxDelay()
		}
	default:
		return TopologyResult{}, fmt.Errorf("gossip: unknown live engine %d", o.Engine)
	}

	tr := o.Obs.Track("topology", 1)
	gSpread := tr.Gauge("spreaders")
	gStifle := tr.Gauge("stiflers")

	var res TopologyResult
	var prevSent int64
	informed := 0
	quiet := 0
	for round := 1; round <= maxRounds; round++ {
		res.Traffic = runRounds(1)
		res.SentHistory = append(res.SentHistory, int(res.Traffic.Sent-prevSent))
		prevSent = res.Traffic.Sent
		spreaders, stiflers := st.counts()
		informed = spreaders + stiflers
		res.Rounds = round
		res.History = append(res.History, informed)
		res.SpreaderHist = append(res.SpreaderHist, spreaders)
		res.StiflerHist = append(res.StiflerHist, stiflers)
		gSpread.Sample(round, int64(spreaders))
		gStifle.Sample(round, int64(stiflers))
		tr.Barrier()
		if spreaders == 0 {
			// No spreader emitted a contact this round; once that holds for
			// maxDelay consecutive rounds no stale contact from an earlier
			// round is in flight either, so the epidemic is over. (Informed
			// peers still answer contacts, so full spread alone does not
			// quiesce traffic — stop there too.)
			quiet++
			if quiet >= maxDelay {
				res.Completed = true
				break
			}
		} else {
			quiet = 0
			if informed == n {
				res.Completed = true
				break
			}
		}
	}
	res.FinalSpread = float64(informed) / float64(n)
	return res, nil
}

// Protocol implements run.Spec.
func (c TopologyConfig) Protocol() string { return "topology" }

// Execute implements run.Spec: the runtime seed derives from the root seed
// under DomainTopology, WithEngine picks the substrate (default: the sharded
// runtime), WithWorkers sets the shard count, WithNet the network model and
// WithPipeline the fused round loop — all pure speed knobs under perfect
// sync. Trajectory is the informed-peer history; Detail the full
// TopologyResult (spreader/stifler split, final spread fraction).
func (c TopologyConfig) Execute(o *run.Options) (run.Report, error) {
	topts := TopologyOptions{
		Seed:     run.SeedFor(o.Seed, run.DomainTopology),
		Net:      o.Net,
		Pipeline: o.Pipeline,
		Obs:      o.Obs,
	}
	switch o.Engine {
	case run.EngineGoroutine:
		topts.Engine = LiveGoroutine
		topts.Concurrent = true
	default: // EngineDefault, EngineSharded
		topts.Engine = LiveSharded
		topts.Shards = o.Workers
	}
	res, err := RunTopology(c, topts)
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Trajectory: res.History,
		Sent:       res.SentHistory,
		Messages:   res.Traffic.Sent,
		Dropped:    res.Traffic.Dropped,
		Clamped:    res.Traffic.Clamped,
		Detail:     res,
	}, nil
}
