package gossip

import (
	"reflect"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/rng"
	"repro/internal/run"
)

func TestAsyncValidation(t *testing.T) {
	unit := bandwidth.Homogeneous(16, 1)
	if _, err := RunAsync(AsyncConfig{}, AsyncOptions{}); err == nil {
		t.Error("accepted empty profile")
	}
	if _, err := RunAsync(AsyncConfig{Profile: unit, Source: -1}, AsyncOptions{}); err == nil {
		t.Error("accepted negative source")
	}
	if _, err := RunAsync(AsyncConfig{Profile: unit, Source: 16}, AsyncOptions{}); err == nil {
		t.Error("accepted out-of-range source")
	}
	sel, err := core.NewUniformSelector(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAsync(AsyncConfig{Profile: unit, Selector: sel}, AsyncOptions{}); err == nil {
		t.Error("accepted selector/profile size mismatch")
	}
}

func TestAsyncSpreadCompletes(t *testing.T) {
	const n = 500
	res, err := RunAsync(AsyncConfig{Profile: bandwidth.Homogeneous(n, 1)}, AsyncOptions{Seed: 11, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("spread incomplete after %d buckets", res.Buckets)
	}
	if len(res.History) != res.Buckets || len(res.SentHistory) != res.Buckets {
		t.Fatalf("history lengths %d/%d, want %d", len(res.History), len(res.SentHistory), res.Buckets)
	}
	prev := 1 // the source
	for b, count := range res.History {
		if count < prev {
			t.Fatalf("informed count shrank at bucket %d: %d -> %d", b, prev, count)
		}
		prev = count
	}
	if res.History[res.Buckets-1] != n {
		t.Fatalf("final informed count %d, want %d", res.History[res.Buckets-1], n)
	}
	if res.Fired == 0 || res.Traffic.Sent == 0 {
		t.Fatalf("no activity recorded: %+v", res)
	}
	if res.Time != float64(res.Buckets) {
		t.Fatalf("time %v at default width, want %d", res.Time, res.Buckets)
	}
}

func TestAsyncShardBitIdentity(t *testing.T) {
	// The protocol-level determinism contract of the ISSUE: the full result —
	// spread curve, per-bucket traffic, firing count, completion time — is
	// bit-identical across shard counts {1, 2, 8}, on a genuinely
	// heterogeneous profile where firing rates differ per peer.
	const n = 2000
	prof, err := bandwidth.Zipf(n, 1.2, 8, 2.0, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	var ref AsyncResult
	for _, shards := range []int{1, 2, 8} {
		res, err := RunAsync(AsyncConfig{Profile: prof}, AsyncOptions{Seed: 42, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("shards=%d: incomplete after %d buckets", shards, res.Buckets)
		}
		if shards == 1 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("shards=%d diverged from shards=1:\n  %+v\nvs %+v", shards, res, ref)
		}
	}
}

func TestAsyncRejectsWithNet(t *testing.T) {
	// The async runtime carries its own latency model (AsyncConfig.Latency);
	// a WithNet option would be silently dead, so Execute rejects it.
	cfg := AsyncConfig{Profile: bandwidth.Homogeneous(64, 1)}
	if _, err := run.Run(cfg, run.WithNet(live.FixedLatency{Rounds: 2})); err == nil {
		t.Error("accepted WithNet on the async protocol")
	}
	if _, err := run.Run(cfg, run.WithSeed(1), run.WithWorkers(2)); err != nil {
		t.Errorf("rejected a plain async run: %v", err)
	}
}

func TestAsyncViaRun(t *testing.T) {
	// The run.Spec plumbing: Report mirrors the AsyncResult, and the worker
	// knob is the shard count — a pure speed knob.
	const n = 800
	cfg := AsyncConfig{Profile: bandwidth.Homogeneous(n, 1)}
	rep1, err := run.Run(cfg, run.WithSeed(7), run.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := run.Run(cfg, run.WithSeed(7), run.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	// Wall and Workers echo run conditions; everything else must match.
	rep1.Wall, rep4.Wall = 0, 0
	rep1.Workers, rep4.Workers = 0, 0
	if !reflect.DeepEqual(rep1, rep4) {
		t.Fatal("worker count changed the async report")
	}
	if cfg.Protocol() != "async" {
		t.Fatalf("protocol name %q", cfg.Protocol())
	}
	detail, ok := rep1.Detail.(AsyncResult)
	if !ok {
		t.Fatalf("detail is %T, want AsyncResult", rep1.Detail)
	}
	if rep1.Rounds != detail.Buckets || !rep1.Completed || rep1.Messages != detail.Traffic.Sent {
		t.Fatalf("report fields diverge from detail:\n%+v\nvs %+v", rep1, detail)
	}
	if len(rep1.Trajectory) != detail.Buckets || rep1.Trajectory[len(rep1.Trajectory)-1] != n {
		t.Fatalf("trajectory %v does not end informed", rep1.Trajectory)
	}
}

func TestAsyncLatencySlowsSpread(t *testing.T) {
	// Physics check: tripling the message flight time (at fixed bucket
	// width) can only slow the spread down.
	const n = 1000
	fast, err := RunAsync(AsyncConfig{Profile: bandwidth.Homogeneous(n, 1)}, AsyncOptions{Seed: 5, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunAsync(AsyncConfig{Profile: bandwidth.Homogeneous(n, 1), Latency: 3}, AsyncOptions{Seed: 5, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Completed || !slow.Completed {
		t.Fatalf("incomplete: fast=%v slow=%v", fast.Completed, slow.Completed)
	}
	if slow.Time <= fast.Time {
		t.Fatalf("latency 3 completed in %v, latency 1 in %v — latency sped the spread up", slow.Time, fast.Time)
	}
}
