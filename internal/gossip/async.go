package gossip

// This file is the asynchronous rumor-spreading protocol on the clockless
// runtime of internal/async: push&pull gossip where each peer contacts a
// partner at the ticks of its own exponential clock, instead of in globally
// synchronous rounds. The clock rate comes from the peer's heterogeneity
// profile — the regime the source paper's profile machinery models — so a
// high-bandwidth peer gossips proportionally more often, not just with more
// fan-out per round.

import (
	"fmt"
	"math"

	"repro/internal/async"
	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/run"
	"repro/internal/simnet"
)

// Message kinds of the asynchronous push&pull exchange, disjoint from the
// dating handshake's kinds so ByKind traffic stays legible.
const (
	// kindContact is a clock-firing contact; A carries the sender's
	// informed bit (1 = the contact pushes the rumor).
	kindContact uint8 = 8
	// kindReply is the pull half: an informed peer answering an uninformed
	// contact with the rumor.
	kindReply uint8 = 9
)

// AsyncConfig parameterizes asynchronous push&pull spreading — the
// clockless counterpart of LiveConfig. Each peer fires at the points of a
// Poisson process whose rate is the mean of its profile bandwidths,
// (bin+bout)/2; at each firing it contacts one partner drawn from the
// selection distribution, pushing the rumor if it knows it and pulling a
// reply if the partner does. With a unit profile the mean inter-firing gap
// is one time unit — the expected synchronous round — so the spread curve
// is directly comparable to the round-synchronous protocols'.
type AsyncConfig struct {
	Profile bandwidth.Profile
	// Selector defaults to uniform over the profile's nodes.
	Selector core.Selector
	// Source is the initially informed peer.
	Source int
	// BucketWidth is the calendar bucket width in clock-time units (0 = 1):
	// the granularity at which shards synchronize, and the quantum message
	// arrivals are rounded up to.
	BucketWidth float64
	// Latency is each message's flight time in clock-time units (0 =
	// BucketWidth).
	Latency float64
	// MaxTime caps the run in clock-time units (0 = a generous log-based
	// default, far beyond any plausible completion time).
	MaxTime float64
}

// AsyncResult reports an asynchronous spreading run.
type AsyncResult struct {
	// Buckets is the number of calendar buckets executed; Time is the
	// simulated clock time they span (Buckets * BucketWidth).
	Buckets   int
	Time      float64
	Completed bool
	// History is the informed-peer count at each bucket boundary.
	History []int
	// SentHistory is the number of messages emitted per bucket.
	SentHistory []int
	// Fired is the total number of clock firings executed.
	Fired   int64
	Traffic simnet.Stats
}

// AsyncOptions carries the axes of an async run that are orthogonal to the
// protocol; under repro.Run they come from the run options.
type AsyncOptions struct {
	Seed uint64
	// Shards is the runtime's worker count (0 = GOMAXPROCS); every value is
	// bit-identical.
	Shards int
	// Obs, when non-nil, receives phase spans and per-bucket gauges from the
	// runtime. Observers are read-only: attaching one never changes results.
	Obs *obs.Observer
}

// asyncRates maps a heterogeneity profile to per-peer clock rates: peer i
// fires at rate (bin(i)+bout(i))/2, so bandwidth heterogeneity becomes
// firing-frequency heterogeneity.
func asyncRates(p bandwidth.Profile) []float64 {
	rates := make([]float64, p.N())
	for i := range rates {
		rates[i] = float64(p.In[i]+p.Out[i]) / 2
	}
	return rates
}

// RunAsync executes asynchronous push&pull rumor spreading on the clockless
// runtime.
func RunAsync(cfg AsyncConfig, o AsyncOptions) (AsyncResult, error) {
	n := cfg.Profile.N()
	if n == 0 {
		return AsyncResult{}, fmt.Errorf("gossip: async run needs a profile")
	}
	if _, err := cfg.Profile.Ratio(); err != nil {
		return AsyncResult{}, err
	}
	if cfg.Source < 0 || cfg.Source >= n {
		return AsyncResult{}, fmt.Errorf("gossip: source %d out of range [0,%d)", cfg.Source, n)
	}
	sel := cfg.Selector
	if sel == nil {
		u, err := core.NewUniformSelector(n)
		if err != nil {
			return AsyncResult{}, err
		}
		sel = u
	}
	if sel.N() != n {
		return AsyncResult{}, fmt.Errorf("gossip: selector addresses %d nodes, profile has %d", sel.N(), n)
	}
	width := cfg.BucketWidth
	if width == 0 {
		width = 1
	}
	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		maxTime = 64
		for v := 1; v < n; v <<= 1 {
			maxTime += 64
		}
	}
	maxBuckets := int(math.Ceil(maxTime / width))

	// Per-peer protocol state: peer i writes only informed[i] (its owner
	// shard), so concurrent shards never race; the bucket barrier publishes
	// the writes to the coordinator loop below.
	informed := make([]bool, n)
	informed[cfg.Source] = true

	rt, err := async.New(async.Config{
		N:           n,
		Seed:        o.Seed,
		Rates:       asyncRates(cfg.Profile),
		BucketWidth: width,
		Latency:     cfg.Latency,
		Shards:      o.Shards,
		Obs:         o.Obs,
		Fire: func(peer, fire int, t float64, s *rng.Stream, emit func(simnet.Message)) {
			bit := int64(0)
			if informed[peer] {
				bit = 1
			}
			emit(simnet.Message{To: sel.Pick(s), Kind: kindContact, A: bit})
		},
		Recv: func(peer int, m simnet.Message, emit func(simnet.Message)) {
			switch m.Kind {
			case kindContact:
				if m.A == 1 {
					informed[peer] = true // push
				} else if informed[peer] {
					emit(simnet.Message{To: m.From, Kind: kindReply, A: 1}) // pull
				}
			case kindReply:
				informed[peer] = true
			}
		},
	})
	if err != nil {
		return AsyncResult{}, err
	}

	var res AsyncResult
	var prevSent int64
	for b := 0; b < maxBuckets; b++ {
		res.Traffic = rt.RunBuckets(1)
		res.SentHistory = append(res.SentHistory, int(res.Traffic.Sent-prevSent))
		prevSent = res.Traffic.Sent
		count := 0
		for i := 0; i < n; i++ {
			if informed[i] {
				count++
			}
		}
		res.Buckets = b + 1
		res.History = append(res.History, count)
		if count == n {
			// Replies already in flight no longer matter: every peer knows
			// the rumor, so the run can stop at this boundary.
			res.Completed = true
			break
		}
	}
	res.Time = float64(res.Buckets) * width
	res.Fired = rt.Fired()
	return res, nil
}

// Protocol implements run.Spec.
func (c AsyncConfig) Protocol() string { return "async" }

// Execute implements run.Spec: the runtime seed derives from the root seed
// under DomainAsync and WithWorkers sets the shard count (a pure speed
// knob — every count is bit-identical). The async runtime carries its own
// latency model in AsyncConfig.Latency, so WithNet is rejected rather than
// silently ignored; WithEngine and WithPipeline do not apply and are
// ignored. Trajectory is the informed-peer count per bucket; Detail the
// full AsyncResult.
func (c AsyncConfig) Execute(o *run.Options) (run.Report, error) {
	if o.Net != nil {
		return run.Report{}, fmt.Errorf("gossip: async runs model latency via AsyncConfig.Latency, not WithNet")
	}
	res, err := RunAsync(c, AsyncOptions{
		Seed:   run.SeedFor(o.Seed, run.DomainAsync),
		Shards: o.Workers,
		Obs:    o.Obs,
	})
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.Buckets,
		Completed:  res.Completed,
		Trajectory: res.History,
		Sent:       res.SentHistory,
		Messages:   res.Traffic.Sent,
		Dropped:    res.Traffic.Dropped,
		Clamped:    res.Traffic.Clamped,
		Detail:     res,
	}, nil
}
