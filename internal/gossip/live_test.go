package gossip

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/rng"
	"repro/internal/simnet"
)

func TestRunLiveValidation(t *testing.T) {
	if _, err := RunLive(LiveConfig{}, LiveOptions{}); err == nil {
		t.Error("accepted empty profile")
	}
	if _, err := RunLive(LiveConfig{Profile: bandwidth.Homogeneous(4, 1), Source: 9}, LiveOptions{}); err == nil {
		t.Error("accepted bad source")
	}
	sel, _ := core.NewUniformSelector(3)
	if _, err := RunLive(LiveConfig{Profile: bandwidth.Homogeneous(4, 1), Selector: sel}, LiveOptions{}); err == nil {
		t.Error("accepted selector size mismatch")
	}
	badProfile := bandwidth.Profile{In: []int{0, 1}, Out: []int{1, 1}}
	if _, err := RunLive(LiveConfig{Profile: badProfile}, LiveOptions{}); err == nil {
		t.Error("accepted zero-bandwidth profile")
	}
}

func TestRunLiveCompletes(t *testing.T) {
	res, err := RunLive(
		LiveConfig{Profile: bandwidth.Homogeneous(256, 1)},
		LiveOptions{Seed: 1, Concurrent: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("live spread incomplete after %d dating rounds", res.DatingRounds)
	}
	last := res.History[len(res.History)-1]
	if last != 256 {
		t.Fatalf("final informed %d", last)
	}
}

func TestRunLiveConcurrentEqualsSequential(t *testing.T) {
	// The goroutine engine and the single-threaded engine must produce the
	// exact same spreading trace for the same seed — the protocol has no
	// hidden scheduling dependence.
	mk := func(concurrent bool) LiveResult {
		res, err := RunLive(
			LiveConfig{Profile: bandwidth.Homogeneous(200, 1)},
			LiveOptions{Seed: 7, Concurrent: concurrent},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(true), mk(false)
	if a.DatingRounds != b.DatingRounds || a.Completed != b.Completed {
		t.Fatalf("rounds differ: %d vs %d", a.DatingRounds, b.DatingRounds)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("history diverges at round %d: %d vs %d", i+1, a.History[i], b.History[i])
		}
	}
	if a.Traffic.Sent != b.Traffic.Sent {
		t.Fatalf("traffic differs: %d vs %d", a.Traffic.Sent, b.Traffic.Sent)
	}
}

func TestRunLiveRespectsBandwidth(t *testing.T) {
	// The handshake guarantees no node receives more payloads per round
	// than its incoming bandwidth.
	for _, b := range []int{1, 3} {
		res, err := RunLive(
			LiveConfig{Profile: bandwidth.Homogeneous(128, b)},
			LiveOptions{Seed: 3, Concurrent: true},
		)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxInPayloads > b {
			t.Fatalf("bandwidth %d: a node received %d payloads in one round", b, res.MaxInPayloads)
		}
		if res.MaxInPayloads == 0 {
			t.Fatal("no payloads at all")
		}
	}
}

func TestRunLiveHistoryMonotone(t *testing.T) {
	res, err := RunLive(LiveConfig{Profile: bandwidth.Homogeneous(150, 1)}, LiveOptions{Seed: 5, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i, c := range res.History {
		if c < prev {
			t.Fatalf("informed count dropped at dating round %d", i+1)
		}
		prev = c
	}
}

func TestRunLiveMatchesFlatSimulatorStatistically(t *testing.T) {
	// The message-level run should take about as many rounds as the flat
	// simulator (same protocol, different execution substrate).
	var liveSum, flatSum float64
	const reps = 5
	for rep := 0; rep < reps; rep++ {
		lr, err := RunLive(
			LiveConfig{Profile: bandwidth.Homogeneous(300, 1)},
			LiveOptions{Seed: uint64(100 + rep), Concurrent: true},
		)
		if err != nil {
			t.Fatal(err)
		}
		if !lr.Completed {
			t.Fatal("live incomplete")
		}
		liveSum += float64(lr.DatingRounds)

		fr, err := Run(Config{Algorithm: Dating, N: 300, Source: 0}, rng.New(uint64(100+rep)))
		if err != nil {
			t.Fatal(err)
		}
		flatSum += float64(fr.Rounds)
	}
	liveMean, flatMean := liveSum/reps, flatSum/reps
	if liveMean > 1.5*flatMean || flatMean > 1.5*liveMean {
		t.Fatalf("live %.1f rounds vs flat %.1f: substrates disagree", liveMean, flatMean)
	}
}

func TestRunLiveOverheadShape(t *testing.T) {
	// Per dating round, control traffic is 2 scatter messages per unit of
	// bandwidth plus one answer per offer; payloads are at most min-side
	// bandwidth. Verify the traffic mix.
	res, err := RunLive(LiveConfig{Profile: bandwidth.Homogeneous(100, 1)}, LiveOptions{Seed: 9, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Traffic
	offers := st.ByKind[core.KindOffer]
	answers := st.ByKind[core.KindAnswer]
	payloads := st.ByKind[core.KindPayload]
	if offers == 0 || answers == 0 || payloads == 0 {
		t.Fatalf("missing traffic classes: %d/%d/%d", offers, answers, payloads)
	}
	if answers > offers {
		t.Fatalf("more answers (%d) than offers (%d)", answers, offers)
	}
	if payloads > answers {
		t.Fatalf("more payloads (%d) than answers (%d)", payloads, answers)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d messages with no dead nodes", st.Dropped)
	}
}

func TestLiveStepPhases(t *testing.T) {
	// Unit-test the state machine directly: a rendezvous holding one offer
	// and one request must emit exactly one positive answer.
	profile := bandwidth.Homogeneous(4, 1)
	sel, _ := core.NewUniformSelector(4)
	st := &livePeerState{informed: make([]bool, 4), inPayloads: make([]int, 4)}
	step := liveStep(profile, sel, st)
	inbox := []simnet.Message{
		{From: 1, To: 0, Kind: core.KindOffer},
		{From: 2, To: 0, Kind: core.KindRequest},
	}
	out := step(0, 1, inbox, rng.New(1)) // round 1 = phase 1 (rendezvous)
	if len(out) != 1 {
		t.Fatalf("rendezvous emitted %d messages, want 1", len(out))
	}
	if out[0].Kind != core.KindAnswer || out[0].To != 1 || out[0].A != 2 {
		t.Fatalf("bad answer: %+v", out[0])
	}

	// Phase 2: an informed node with a positive answer sends the rumor.
	st.informed[1] = true
	out = step(1, 2, []simnet.Message{{From: 0, To: 1, Kind: core.KindAnswer, A: 2}}, rng.New(2))
	if len(out) != 1 || out[0].Kind != core.KindPayload || out[0].A != 1 || out[0].To != 2 {
		t.Fatalf("bad payload: %+v", out)
	}

	// Phase 0: the receiver absorbs the payload and becomes informed.
	out = step(2, 3, []simnet.Message{{From: 1, To: 2, Kind: core.KindPayload, A: 1}}, rng.New(3))
	if !st.informed[2] {
		t.Fatal("payload did not inform the receiver")
	}
	if len(out) != 2 { // one offer + one request scattered
		t.Fatalf("scatter emitted %d messages, want 2", len(out))
	}
}

func TestRunLiveShardedBitIdentity(t *testing.T) {
	// The sharded engine's headline property, at spread scale: 10k peers,
	// full handshake protocol, identical results for every shard count.
	run := func(shards int) LiveResult {
		res, err := RunLive(
			LiveConfig{Profile: bandwidth.Homogeneous(10_000, 1)},
			LiveOptions{Seed: 17, Engine: LiveSharded, Shards: shards},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if !ref.Completed {
		t.Fatalf("sharded spread incomplete after %d dating rounds", ref.DatingRounds)
	}
	for _, shards := range []int{2, 8} {
		if got := run(shards); !reflect.DeepEqual(got, ref) {
			t.Fatalf("shards=%d diverged from shards=1: %d vs %d dating rounds, history %v vs %v",
				shards, got.DatingRounds, ref.DatingRounds, got.History, ref.History)
		}
	}
}

func TestRunLiveEnginesAgree(t *testing.T) {
	// All three substrates — goroutine-per-peer, its sequential twin, and
	// the sharded runtime — share per-peer stream derivation and must give
	// exactly the same spreading trajectory under the perfect-sync model.
	cfg := LiveConfig{Profile: bandwidth.Homogeneous(1500, 1)}
	base := LiveOptions{Seed: 23}
	variants := []LiveOptions{}
	for _, concurrent := range []bool{false, true} {
		o := base
		o.Engine, o.Concurrent = LiveGoroutine, concurrent
		variants = append(variants, o)
	}
	for _, shards := range []int{1, 4} {
		o := base
		o.Engine, o.Shards = LiveSharded, shards
		variants = append(variants, o)
	}
	var ref LiveResult
	for i, o := range variants {
		res, err := RunLive(cfg, o)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			if !ref.Completed {
				t.Fatalf("spread incomplete after %d dating rounds", ref.DatingRounds)
			}
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("engine variant %d diverged: history %v vs %v", i, res.History, ref.History)
		}
	}
}

func TestRunLiveNetModelSensitivity(t *testing.T) {
	// Latency and loss must slow spreading down, never speed it up, and the
	// protocol must still complete under moderate degradation.
	run := func(net live.NetModel) LiveResult {
		res, err := RunLive(
			LiveConfig{Profile: bandwidth.Homogeneous(2000, 1)},
			LiveOptions{Seed: 29, Engine: LiveSharded, Shards: 2, Net: net},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sync := run(nil)
	if !sync.Completed {
		t.Fatal("sync run incomplete")
	}
	for name, net := range map[string]live.NetModel{
		"latency2": live.FixedLatency{Rounds: 2},
		"geom":     live.GeomLatency{P: 0.5, Cap: 6},
		"loss20":   live.Loss{P: 0.2},
		"churn":    live.EpochChurn{Seed: 3, Epoch: 6, DownFrac: 0.2},
	} {
		res := run(net)
		if !res.Completed {
			t.Fatalf("%s: incomplete after %d dating rounds", name, res.DatingRounds)
		}
		if res.DatingRounds < sync.DatingRounds {
			t.Fatalf("%s: degraded network spread FASTER (%d vs %d dating rounds)",
				name, res.DatingRounds, sync.DatingRounds)
		}
	}
}

func TestRunLiveGoroutineRejectsNetModel(t *testing.T) {
	_, err := RunLive(
		LiveConfig{Profile: bandwidth.Homogeneous(16, 1)},
		LiveOptions{Net: live.Loss{P: 0.1}},
	)
	if err == nil {
		t.Fatal("goroutine engine accepted a network model")
	}
}

func TestRunLiveShardedOverlap(t *testing.T) {
	// Overlapping sharded spreading runs must not interfere (each runtime
	// and peer-state is private); -race builds make this a real check.
	var wg sync.WaitGroup
	results := make([]LiveResult, 3)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := RunLive(
				LiveConfig{Profile: bandwidth.Homogeneous(800, 1)},
				LiveOptions{Seed: 37, Engine: LiveSharded, Shards: 3},
			)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("overlapping run %d diverged", i)
		}
	}
}

// liveStep is the slice-returning form of the handshake step, used by the
// single-phase unit tests above.
func liveStep(profile bandwidth.Profile, sel core.Selector, st *livePeerState) simnet.StepFunc {
	return adaptStep(liveEmitStep(profile, sel, st))
}
