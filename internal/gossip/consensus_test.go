package gossip

import (
	"fmt"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/run"
)

func consRun(t *testing.T, cfg ConsensusConfig, o ConsensusOptions) ConsensusResult {
	t.Helper()
	res, err := RunConsensus(cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestConsensusShardIdentity pins the headline determinism claim for the
// consensus spec: shard count and pipelining are pure speed knobs — the full
// result (share histories, winner, traffic) is bit-identical at every count.
func TestConsensusShardIdentity(t *testing.T) {
	g := mustBA(t, 2000, 3, 7)
	cfg := ConsensusConfig{Variants: 3, Graph: g, Seeding: SeedDistinct, Rule: RuleMajority, MaxRounds: 150}
	base := consRun(t, cfg, ConsensusOptions{Seed: 42, Engine: LiveSharded, Shards: 1})
	if base.Rounds == 0 || len(base.ShareHist) != base.Rounds {
		t.Fatalf("degenerate base run: %+v", base)
	}
	for _, shards := range []int{2, 4, 8} {
		res := consRun(t, cfg, ConsensusOptions{Seed: 42, Engine: LiveSharded, Shards: shards})
		if fmt.Sprint(res) != fmt.Sprint(base) {
			t.Errorf("shards=%d diverged:\n got %+v\nwant %+v", shards, res, base)
		}
	}
	pl := consRun(t, cfg, ConsensusOptions{Seed: 42, Engine: LiveSharded, Shards: 4, Pipeline: 4})
	if fmt.Sprint(pl) != fmt.Sprint(base) {
		t.Errorf("pipelined run diverged:\n got %+v\nwant %+v", pl, base)
	}
}

// TestConsensusEngineIdentity pins that the goroutine engine (sequential and
// concurrent) reproduces the sharded runtime bit for bit under every merge
// rule — all engines share the per-peer stream derivation, and the rules
// themselves consume no randomness.
func TestConsensusEngineIdentity(t *testing.T) {
	g := mustBA(t, 800, 2, 3)
	for _, rule := range []MergeRule{RuleMajority, RuleLatest, RuleWeighted} {
		cfg := ConsensusConfig{Variants: 2, Graph: g, Seeding: SeedHubLeaf, Rule: rule, MaxRounds: 120}
		if rule == RuleWeighted {
			p, err := bandwidth.Zipf(800, 1.2, 8, 2.0, rng.New(5))
			if err != nil {
				t.Fatal(err)
			}
			cfg.Profile = p
		}
		sharded := consRun(t, cfg, ConsensusOptions{Seed: 9, Engine: LiveSharded, Shards: 3})
		seq := consRun(t, cfg, ConsensusOptions{Seed: 9, Engine: LiveGoroutine})
		conc := consRun(t, cfg, ConsensusOptions{Seed: 9, Engine: LiveGoroutine, Concurrent: true})
		if fmt.Sprint(seq) != fmt.Sprint(sharded) {
			t.Errorf("%v: sequential engine diverged:\n got %+v\nwant %+v", rule, seq, sharded)
		}
		if fmt.Sprint(conc) != fmt.Sprint(sharded) {
			t.Errorf("%v: concurrent engine diverged:\n got %+v\nwant %+v", rule, conc, sharded)
		}
	}
}

// TestConsensusShardLocalState drives the sharded engine at several shard
// counts under -race: the shard-owned variant/stamp/heard blocks mean no two
// workers ever write the same slice, and the race detector pins it. The
// latest rule floods to consensus; the majority rule on a sparse scale-free
// graph locks in local pluralities below the threshold (the capped run is
// the expected outcome there), but every peer still ends up decided.
func TestConsensusShardLocalState(t *testing.T) {
	g := mustBA(t, 1200, 3, 11)
	for _, rule := range []MergeRule{RuleMajority, RuleLatest} {
		for _, shards := range []int{1, 4} {
			res := consRun(t, ConsensusConfig{Variants: 3, Graph: g, Rule: rule, MaxRounds: 200},
				ConsensusOptions{Seed: 4, Engine: LiveSharded, Shards: shards})
			if rule == RuleLatest && !res.Completed {
				t.Errorf("rule=%v shards=%d: run did not complete", rule, shards)
			}
			if last := res.DecidedHist[len(res.DecidedHist)-1]; rule == RuleMajority && last != 1200 {
				t.Errorf("rule=%v shards=%d: %d of 1200 peers decided", rule, shards, last)
			}
		}
	}
}

// TestConsensusSingleVariantMatchesPush pins the K=1 degeneration: with one
// variant there is nothing to disagree about, consensus is plain single-
// rumor push spread over the graph, and on the complete graph at
// Threshold=1 the final agreement equals the round-abstract push baseline's
// final spread fraction (both 1).
func TestConsensusSingleVariantMatchesPush(t *testing.T) {
	n := 300
	g, err := graph.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	res := consRun(t, ConsensusConfig{Variants: 1, Graph: g, Rule: RuleMajority, Threshold: 1},
		ConsensusOptions{Seed: 21, Engine: LiveSharded, Shards: 2})
	if !res.Completed {
		t.Fatal("K=1 complete-graph run did not complete")
	}
	if res.Winner != 1 {
		t.Errorf("K=1 winner %d, want 1", res.Winner)
	}
	push, err := Run(Config{Algorithm: Push, N: n, Source: 0}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	pushFrac := float64(push.History[len(push.History)-1]) / float64(n)
	if res.Agreement != pushFrac {
		t.Errorf("K=1 final agreement %v, push baseline %v", res.Agreement, pushFrac)
	}
	if res.Agreement != 1 {
		t.Errorf("K=1 complete-graph agreement %v, want 1", res.Agreement)
	}
	// The decided-peer trajectory is monotone like any rumor history.
	for i := 1; i < len(res.DecidedHist); i++ {
		if res.DecidedHist[i] < res.DecidedHist[i-1] {
			t.Fatalf("decided count decreased at round %d: %v", i+1, res.DecidedHist)
		}
	}
}

// TestConsensusTieResolution pins the deterministic tie rule of the
// majority merge: only a strictly greater tally displaces the running best,
// so exact ties resolve to the lowest variant id — and therefore identical
// runs are byte-identical, with no hidden iteration-order dependence.
func TestConsensusTieResolution(t *testing.T) {
	cases := []struct {
		heard []float64
		want  int
	}{
		{[]float64{0, 0, 0}, 0},          // heard nothing: stay undecided
		{[]float64{2, 2}, 1},             // exact tie: lowest id wins
		{[]float64{1, 3, 3}, 2},          // tie among later variants
		{[]float64{0.5, 0.5, 0.5, 1}, 4}, // strict winner beats ties
	}
	for _, c := range cases {
		if got := argmaxVariant(c.heard); got != c.want {
			t.Errorf("argmaxVariant(%v) = %d, want %d", c.heard, got, c.want)
		}
	}
	// A run built entirely from tie-prone integer tallies replays exactly.
	g := mustBA(t, 600, 2, 29)
	cfg := ConsensusConfig{Variants: 5, Graph: g, Seeding: SeedClustered, Rule: RuleMajority, MaxRounds: 150}
	a := consRun(t, cfg, ConsensusOptions{Seed: 3, Engine: LiveSharded, Shards: 4})
	b := consRun(t, cfg, ConsensusOptions{Seed: 3, Engine: LiveSharded, Shards: 4})
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("identical majority runs diverged:\n got %+v\nwant %+v", b, a)
	}
}

// TestConsensusWeightedUniformEqualsMajority pins the weighted rule's
// degeneration: with a homogeneous profile every message weighs the same
// constant, so weighted-by-profile is exactly majority-of-heard — full
// result equality, not just the same winner (the tallies are scaled
// integers, so float arithmetic stays exact).
func TestConsensusWeightedUniformEqualsMajority(t *testing.T) {
	g := mustBA(t, 1000, 2, 17)
	base := ConsensusConfig{Variants: 3, Graph: g, Seeding: SeedDistinct, MaxRounds: 150}
	maj := base
	maj.Rule = RuleMajority
	wtd := base
	wtd.Rule = RuleWeighted
	wtd.Profile = bandwidth.Homogeneous(1000, 4)
	mres := consRun(t, maj, ConsensusOptions{Seed: 13, Engine: LiveSharded, Shards: 2})
	wres := consRun(t, wtd, ConsensusOptions{Seed: 13, Engine: LiveSharded, Shards: 2})
	if fmt.Sprint(mres.ShareHist) != fmt.Sprint(wres.ShareHist) ||
		mres.Winner != wres.Winner || mres.Rounds != wres.Rounds {
		t.Errorf("uniform weighted diverged from majority:\n got %+v\nwant %+v", wres, mres)
	}
}

// TestConsensusLatestRuleFloods pins the latest-timestamp semantics: the
// highest-stamped seed's variant (the last in canonical order, variant K)
// floods monotonically and wins on any connected graph.
func TestConsensusLatestRuleFloods(t *testing.T) {
	g := mustBA(t, 1500, 3, 23)
	res := consRun(t, ConsensusConfig{Variants: 4, Graph: g, Seeding: SeedDistinct, Rule: RuleLatest},
		ConsensusOptions{Seed: 11, Engine: LiveSharded, Shards: 4})
	if !res.Completed {
		t.Fatal("latest-rule run did not converge")
	}
	if res.Winner != 4 {
		t.Errorf("latest-rule winner %d, want the last-stamped variant 4", res.Winner)
	}
	last := res.ShareHist[len(res.ShareHist)-1]
	for i := 1; i < len(res.ShareHist); i++ {
		if res.ShareHist[i][3] < res.ShareHist[i-1][3] {
			t.Fatalf("winning variant's share decreased at round %d", i+1)
		}
	}
	if float64(last[3]) != res.Agreement*float64(g.N()) {
		t.Errorf("agreement %v inconsistent with final share %d", res.Agreement, last[3])
	}
}

// TestConsensusSeedingGeometries pins the three placement geometries.
func TestConsensusSeedingGeometries(t *testing.T) {
	g := mustBA(t, 400, 3, 31)

	// Distinct: all seeds distinct, count = K * SeedsPerVariant.
	dres := consRun(t, ConsensusConfig{Variants: 3, Graph: g, Seeding: SeedDistinct, SeedsPerVariant: 2, Rule: RuleMajority},
		ConsensusOptions{Seed: 7, Engine: LiveSharded, Shards: 2})
	if len(dres.Seeds) != 6 {
		t.Fatalf("distinct seeding placed %d seeds, want 6", len(dres.Seeds))
	}
	seen := map[int]bool{}
	for _, p := range dres.Seeds {
		if seen[p] {
			t.Errorf("distinct seeding repeated peer %d", p)
		}
		seen[p] = true
	}

	// Hub/leaf: variant 1 takes the top hub, variant 2 the bottom leaf.
	hres := consRun(t, ConsensusConfig{Variants: 2, Graph: g, Seeding: SeedHubLeaf, Rule: RuleMajority},
		ConsensusOptions{Seed: 7, Engine: LiveSharded, Shards: 2})
	hub := g.Hub()
	if hres.Seeds[0] != hub {
		t.Errorf("hub seeding placed variant 1 at %d (degree %d), want hub %d (degree %d)",
			hres.Seeds[0], g.Degree(hres.Seeds[0]), hub, g.Degree(hub))
	}
	minDeg := g.Degree(hres.Seeds[1])
	for i := 0; i < g.N(); i++ {
		if g.Degree(i) < minDeg {
			t.Errorf("leaf seed %d has degree %d, but peer %d has degree %d",
				hres.Seeds[1], minDeg, i, g.Degree(i))
			break
		}
	}

	// Clustered: variant v starts its ring range at (v-1)*n/K.
	cres := consRun(t, ConsensusConfig{Variants: 4, Graph: g, Seeding: SeedClustered, SeedsPerVariant: 2, Rule: RuleMajority},
		ConsensusOptions{Seed: 7, Engine: LiveSharded, Shards: 2})
	want := []int{0, 1, 100, 101, 200, 201, 300, 301}
	if fmt.Sprint(cres.Seeds) != fmt.Sprint(want) {
		t.Errorf("clustered seeds %v, want %v", cres.Seeds, want)
	}
}

// TestConsensusNameParsing pins the string round-trips used by CLI flags.
func TestConsensusNameParsing(t *testing.T) {
	for _, gm := range []ConsensusSeeding{SeedDistinct, SeedHubLeaf, SeedClustered} {
		got, err := ParseConsensusSeeding(gm.String())
		if err != nil || got != gm {
			t.Errorf("seeding %v did not round-trip: %v, %v", gm, got, err)
		}
	}
	for _, r := range []MergeRule{RuleMajority, RuleLatest, RuleWeighted} {
		got, err := ParseMergeRule(r.String())
		if err != nil || got != r {
			t.Errorf("rule %v did not round-trip: %v, %v", r, got, err)
		}
	}
	if _, err := ParseConsensusSeeding("nope"); err == nil {
		t.Error("unknown seeding name should be rejected")
	}
	if _, err := ParseMergeRule("nope"); err == nil {
		t.Error("unknown rule name should be rejected")
	}
}

// TestConsensusValidation pins the config error paths.
func TestConsensusValidation(t *testing.T) {
	g := mustBA(t, 50, 2, 1)
	if _, err := RunConsensus(ConsensusConfig{Variants: 2}, ConsensusOptions{}); err == nil {
		t.Error("nil graph should be rejected")
	}
	if _, err := RunConsensus(ConsensusConfig{Variants: 0, Graph: g}, ConsensusOptions{}); err == nil {
		t.Error("zero variants should be rejected")
	}
	if _, err := RunConsensus(ConsensusConfig{Variants: 256, Graph: g}, ConsensusOptions{}); err == nil {
		t.Error("variant count > 255 should be rejected")
	}
	if _, err := RunConsensus(ConsensusConfig{Variants: 2, Graph: g, Threshold: 1.5}, ConsensusOptions{}); err == nil {
		t.Error("threshold > 1 should be rejected")
	}
	if _, err := RunConsensus(ConsensusConfig{Variants: 2, Graph: g, Rule: RuleWeighted}, ConsensusOptions{}); err == nil {
		t.Error("weighted rule without a matching profile should be rejected")
	}
	if _, err := RunConsensus(ConsensusConfig{Variants: 2, Graph: g, SeedsPerVariant: 30}, ConsensusOptions{}); err == nil {
		t.Error("seeds exceeding the population should be rejected")
	}
	if _, err := RunConsensus(ConsensusConfig{Variants: 2, Graph: g, Seeding: ConsensusSeeding(9)}, ConsensusOptions{}); err == nil {
		t.Error("unknown seeding should be rejected")
	}
	if _, err := RunConsensus(ConsensusConfig{Variants: 2, Graph: g, Rule: MergeRule(9)}, ConsensusOptions{}); err == nil {
		t.Error("unknown merge rule should be rejected")
	}
}

// TestConsensusSpec pins the run.Spec plumbing: repro-level Run executes the
// config under DomainConsensus, the decided-peer trajectory rides the
// report, and worker counts stay bit-identical through the unified runner.
func TestConsensusSpec(t *testing.T) {
	g := mustBA(t, 1000, 2, 19)
	cfg := ConsensusConfig{Variants: 3, Graph: g, Seeding: SeedDistinct, Rule: RuleMajority, MaxRounds: 120}
	rep1, err := run.Run(cfg, run.WithSeed(8), run.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := run.Run(cfg, run.WithSeed(8), run.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Protocol != "consensus" {
		t.Errorf("protocol %q, want consensus", rep1.Protocol)
	}
	if fmt.Sprint(rep1.Trajectory) != fmt.Sprint(rep4.Trajectory) || rep1.Messages != rep4.Messages {
		t.Errorf("worker counts diverged: %v/%d vs %v/%d",
			rep1.Trajectory, rep1.Messages, rep4.Trajectory, rep4.Messages)
	}
	det, ok := rep1.Detail.(ConsensusResult)
	if !ok {
		t.Fatalf("Detail is %T, want ConsensusResult", rep1.Detail)
	}
	if det.Rounds != rep1.Rounds || len(rep1.Sent) != rep1.Rounds {
		t.Errorf("report shape mismatch: rounds %d/%d, sent len %d", det.Rounds, rep1.Rounds, len(rep1.Sent))
	}
	repG, err := run.Run(cfg, run.WithSeed(8), run.WithEngine(run.EngineGoroutine))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(repG.Trajectory) != fmt.Sprint(rep1.Trajectory) {
		t.Errorf("goroutine engine diverged through spec: %v vs %v", repG.Trajectory, rep1.Trajectory)
	}
}
