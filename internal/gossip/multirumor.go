package gossip

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rng"
)

// The paper's model explicitly "allows for extensions such as rumors
// appearing in the network in course of time" (Section 1). MultiRumor
// implements that extension over the dating service: several rumors are
// injected at different rounds on different sources, every arranged date
// carries exactly one rumor (unit-size messages!), and the sender picks
// which of its known rumors to forward — uniformly at random, or the one it
// learned most recently, per Forwarding.

// Forwarding selects the sender-side forwarding policy. (A strict
// newest-first policy is deliberately absent: once every node prefers the
// freshest rumor, older rumors can starve forever — round-robin gives
// recency a boost while remaining live.)
type Forwarding int

const (
	// ForwardRandom sends a uniformly random known rumor.
	ForwardRandom Forwarding = iota
	// ForwardRoundRobin cycles through the sender's known rumors in
	// learning order, guaranteeing every rumor it knows is forwarded
	// regularly regardless of how many newer ones arrive.
	ForwardRoundRobin
)

// Injection introduces one rumor into the network.
type Injection struct {
	Round  int // 1-based round at which the rumor appears
	Source int
}

// MultiRumorConfig parameterizes a multi-rumor run.
type MultiRumorConfig struct {
	Profile    bandwidth.Profile
	Selector   core.Selector // nil = uniform
	N          int           // required when Profile is unset
	Injections []Injection
	Forwarding Forwarding
	MaxRounds  int
}

// MultiRumorResult reports a multi-rumor run.
type MultiRumorResult struct {
	Rounds        int
	Completed     bool
	PerRumorDone  []int // round at which each rumor reached everyone (0 = never)
	KnowledgeHist []int // total (node, rumor) pairs known per round
	SentHistory   []int // dates arranged per round (each carries one rumor)
}

// RunMultiRumor spreads all injected rumors until every node knows every
// rumor or MaxRounds elapses.
func RunMultiRumor(cfg MultiRumorConfig, s *rng.Stream) (MultiRumorResult, error) {
	return runMultiRumorBudgeted(cfg, s, nil)
}

// runMultiRumorBudgeted is RunMultiRumor with an optional shared worker
// budget. Every dating round runs on the seeded engine with one seed drawn
// off the run stream; a non-nil b lets each round soak up spare tokens,
// and as in runBudgeted the worker count is a pure speed knob.
func runMultiRumorBudgeted(cfg MultiRumorConfig, s *rng.Stream, b *par.Budget) (MultiRumorResult, error) {
	n := cfg.N
	profile := cfg.Profile
	if profile.N() > 0 {
		n = profile.N()
	} else if n > 0 {
		profile = bandwidth.Homogeneous(n, 1)
	} else {
		return MultiRumorResult{}, fmt.Errorf("gossip: multi-rumor config needs N or a Profile")
	}
	if len(cfg.Injections) == 0 {
		return MultiRumorResult{}, fmt.Errorf("gossip: no rumors to inject")
	}
	for i, inj := range cfg.Injections {
		if inj.Source < 0 || inj.Source >= n {
			return MultiRumorResult{}, fmt.Errorf("gossip: injection %d source %d out of range", i, inj.Source)
		}
		if inj.Round < 1 {
			return MultiRumorResult{}, fmt.Errorf("gossip: injection %d round %d must be >= 1", i, inj.Round)
		}
	}
	sel := cfg.Selector
	if sel == nil {
		u, err := core.NewUniformSelector(n)
		if err != nil {
			return MultiRumorResult{}, err
		}
		sel = u
	}
	svc, err := core.NewService(profile, sel)
	if err != nil {
		return MultiRumorResult{}, err
	}
	nRumors := len(cfg.Injections)
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64 * (nRumors + 1)
		for v := 1; v < n; v <<= 1 {
			maxRounds += 64
		}
	}

	// knows[i] is a slice of rumor ids node i knows, in learning order
	// (most recent last); known[i][r] indexes it for O(1) lookups; cursor[i]
	// drives the round-robin policy.
	knows := make([][]int16, n)
	cursor := make([]int, n)
	known := make([][]bool, n)
	for i := range known {
		known[i] = make([]bool, nRumors)
	}
	learn := func(node, rumor int) {
		if !known[node][rumor] {
			known[node][rumor] = true
			knows[node] = append(knows[node], int16(rumor))
		}
	}

	counts := make([]int, nRumors) // nodes knowing each rumor
	countKnown := 0                // total (node, rumor) pairs

	var res MultiRumorResult
	res.PerRumorDone = make([]int, nRumors)

	for round := 1; round <= maxRounds; round++ {
		for r, inj := range cfg.Injections {
			if inj.Round == round && !known[inj.Source][r] {
				learn(inj.Source, r)
				counts[r]++
				countKnown++
			}
		}

		// One draw per round whatever the worker count, so the run stream
		// evolves identically for every budget size.
		seed := s.Uint64()
		var pres core.RoundResult
		var err error
		if b != nil {
			pres, err = svc.RunRoundShared(seed, b)
		} else {
			pres, err = svc.RunRoundSeeded(seed, 1)
		}
		if err != nil {
			return MultiRumorResult{}, err
		}
		dates := pres.Dates
		res.SentHistory = append(res.SentHistory, len(dates))
		// Synchronous semantics: forwarding decisions use start-of-round
		// knowledge, so collect transfers first and apply afterwards.
		type transfer struct {
			to    int
			rumor int
		}
		var mail []transfer
		for _, d := range dates {
			ks := knows[d.Sender]
			if len(ks) == 0 {
				continue
			}
			var rumor int
			if cfg.Forwarding == ForwardRoundRobin {
				rumor = int(ks[cursor[d.Sender]%len(ks)])
				cursor[d.Sender]++
			} else {
				rumor = int(ks[s.Intn(len(ks))])
			}
			mail = append(mail, transfer{to: d.Receiver, rumor: rumor})
		}
		for _, m := range mail {
			if !known[m.to][m.rumor] {
				learn(m.to, m.rumor)
				counts[m.rumor]++
				countKnown++
			}
		}

		for r := range counts {
			if counts[r] == n && res.PerRumorDone[r] == 0 {
				res.PerRumorDone[r] = round
			}
		}
		res.Rounds = round
		res.KnowledgeHist = append(res.KnowledgeHist, countKnown)
		if countKnown == n*nRumors {
			res.Completed = true
			break
		}
	}
	return res, nil
}
