package gossip

import "repro/internal/rng"

// The baseline spreading algorithms of [KSSV00] as simulated in Figure 2.
// All of them assume the ability to choose another node uniformly at random
// — the capability the dating service dispenses with. Decisions read the
// start-of-round informed set (st.informed) and write st.next, so rounds
// are synchronous.

// pickOther returns a uniform node other than i (a node gains nothing from
// contacting itself).
func pickOther(n, i int, s *rng.Stream) int {
	j := s.Intn(n - 1)
	if j >= i {
		j++
	}
	return j
}

// stepPush: every informed node sends the rumor to a uniformly random node.
// Receivers accept any number of simultaneous pushes (the "much higher
// bandwidth" benefit the paper notes for unfair schemes).
func stepPush(st *state, s *rng.Stream) {
	n := len(st.informed)
	for i := 0; i < n; i++ {
		if !st.alive[i] || !st.informed[i] {
			continue
		}
		t := pickOther(n, i, s)
		st.out[i]++
		st.in[t]++
		if st.alive[t] {
			st.next[t] = true
		}
	}
}

// stepPull: every uninformed node asks a uniformly random node; it becomes
// informed if the asked node was informed. The asked node serves every
// request addressed to it ("unfair": its outgoing load is unbounded).
func stepPull(st *state, s *rng.Stream) {
	n := len(st.informed)
	for i := 0; i < n; i++ {
		if !st.alive[i] || st.informed[i] {
			continue
		}
		t := pickOther(n, i, s)
		if st.alive[t] && st.informed[t] {
			st.out[t]++
			st.in[i]++
			st.next[i] = true
		}
	}
}

// stepPushPull: every node contacts a uniformly random node and the pair
// exchange the rumor in both directions ("double communication in each
// round", as the paper remarks).
func stepPushPull(st *state, s *rng.Stream) {
	n := len(st.informed)
	for i := 0; i < n; i++ {
		if !st.alive[i] {
			continue
		}
		t := pickOther(n, i, s)
		if !st.alive[t] {
			continue
		}
		if st.informed[i] && !st.informed[t] {
			st.out[i]++
			st.in[t]++
			st.next[t] = true
		}
		if st.informed[t] && !st.informed[i] {
			st.out[t]++
			st.in[i]++
			st.next[i] = true
		}
	}
}

// stepFairPull: like PULL, but an informed node satisfies only ONE of the
// requests it received this round, chosen uniformly (the paper's fairness
// notion: bounded outgoing bandwidth).
func stepFairPull(st *state, s *rng.Stream) {
	n := len(st.informed)
	// winner[t] is the reservoir-sampled single requester node t will serve.
	winner := make([]int, n)
	seen := make([]int, n)
	for i := range winner {
		winner[i] = -1
	}
	for i := 0; i < n; i++ {
		if !st.alive[i] || st.informed[i] {
			continue
		}
		t := pickOther(n, i, s)
		if !st.alive[t] || !st.informed[t] {
			continue
		}
		seen[t]++
		if s.Intn(seen[t]) == 0 { // keep each requester with prob 1/seen
			winner[t] = i
		}
	}
	for t := 0; t < n; t++ {
		if w := winner[t]; w >= 0 {
			st.out[t]++
			st.in[w]++
			st.next[w] = true
		}
	}
}

// stepFairPushPull: every node contacts a uniformly random node; pushes are
// delivered as usual, but the pull direction is fair — a contacted informed
// node answers only one of its callers.
func stepFairPushPull(st *state, s *rng.Stream) {
	n := len(st.informed)
	winner := make([]int, n)
	seen := make([]int, n)
	for i := range winner {
		winner[i] = -1
	}
	for i := 0; i < n; i++ {
		if !st.alive[i] {
			continue
		}
		t := pickOther(n, i, s)
		if !st.alive[t] {
			continue
		}
		// Push direction: caller delivers the rumor with its own bandwidth.
		if st.informed[i] && !st.informed[t] {
			st.out[i]++
			st.in[t]++
			st.next[t] = true
		}
		// Pull direction: t will answer exactly one caller.
		if st.informed[t] && !st.informed[i] {
			seen[t]++
			if s.Intn(seen[t]) == 0 {
				winner[t] = i
			}
		}
	}
	for t := 0; t < n; t++ {
		if w := winner[t]; w >= 0 {
			st.out[t]++
			st.in[w]++
			st.next[w] = true
		}
	}
}
