package gossip

// This file implements the unified-runner specs (run.Spec) for the three
// gossip protocols: single-rumor spreading, multi-rumor spreading, and the
// fully message-level live run. The configs carry only the protocol; the
// orthogonal axes — seed, worker budget, execution substrate, network
// model, pipelining depth — come exclusively from the run options, which
// is what keeps the axes orthogonal to the protocol choice.

import (
	"repro/internal/run"
)

// Protocol implements run.Spec.
func (c Config) Protocol() string { return "rumor" }

// Execute implements run.Spec: the run stream derives from the root seed
// under DomainRumor, every dating round draws its workers from the shared
// budget, and WithPipeline batches crash-free dating rounds through the
// double-buffered engine. Trajectory is the informed-node history; Detail
// the full Result.
func (c Config) Execute(o *run.Options) (run.Report, error) {
	res, err := runBudgeted(c, run.StreamFor(o.Seed, run.DomainRumor), o.Budget, o.Pipeline,
		o.Obs.Track("rumor", 1))
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Trajectory: res.History,
		Sent:       res.SentHistory,
		Messages:   run.SumSent(res.SentHistory),
		MaxInLoad:  res.MaxInLoad,
		MaxOutLoad: res.MaxOutLoad,
		Detail:     res,
	}, nil
}

// Protocol implements run.Spec.
func (c MultiRumorConfig) Protocol() string { return "multirumor" }

// Execute implements run.Spec: the run stream derives from the root seed
// under DomainMulti and dating rounds draw workers from the shared budget.
// Trajectory is the cumulative (node, rumor) knowledge count; Detail the
// full MultiRumorResult.
func (c MultiRumorConfig) Execute(o *run.Options) (run.Report, error) {
	res, err := runMultiRumorBudgeted(c, run.StreamFor(o.Seed, run.DomainMulti), o.Budget)
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Trajectory: res.KnowledgeHist,
		Sent:       res.SentHistory,
		Messages:   run.SumSent(res.SentHistory),
		Detail:     res,
	}, nil
}

// Protocol implements run.Spec.
func (c LiveConfig) Protocol() string { return "live" }

// Execute implements run.Spec: the runtime seed derives from the root seed
// under DomainLive, WithEngine picks the substrate (default: the sharded
// runtime), WithWorkers sets the shard count, WithNet the network model
// and WithPipeline the fused round loop. Under the perfect-sync model
// every engine, every worker count and every pipelining depth yields the
// identical report. Trajectory is the informed-peer history; Detail the
// full LiveResult.
func (c LiveConfig) Execute(o *run.Options) (run.Report, error) {
	lo := LiveOptions{
		Seed:     run.SeedFor(o.Seed, run.DomainLive),
		Net:      o.Net,
		Pipeline: o.Pipeline,
		Obs:      o.Obs,
	}
	switch o.Engine {
	case run.EngineGoroutine:
		lo.Engine = LiveGoroutine
		lo.Concurrent = true
	default: // EngineDefault, EngineSharded
		lo.Engine = LiveSharded
		lo.Shards = o.Workers
	}
	res, err := RunLive(c, lo)
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.DatingRounds,
		Completed:  res.Completed,
		Trajectory: res.History,
		Sent:       res.SentHistory,
		Messages:   res.Traffic.Sent,
		Dropped:    res.Traffic.Dropped,
		Clamped:    res.Traffic.Clamped,
		MaxInLoad:  res.MaxInPayloads,
		Detail:     res,
	}, nil
}
