package gossip

// This file implements the unified-runner specs (run.Spec) for the three
// gossip protocols: single-rumor spreading, multi-rumor spreading, and the
// fully message-level live run. Under repro.Run the orthogonal axes — seed,
// worker budget, execution substrate, network model — come exclusively from
// the run options; the config fields that used to carry them (Workers,
// Seed, Engine, Shards, Net, Concurrent) are ignored, which is what keeps
// the axes orthogonal to the protocol choice.

import (
	"repro/internal/run"
)

// Protocol implements run.Spec.
func (c Config) Protocol() string { return "rumor" }

// Execute implements run.Spec: the run stream derives from the root seed
// under DomainRumor, and every dating round draws its workers from the
// shared budget (cfg.Workers is ignored). Trajectory is the informed-node
// history; Detail the full Result.
func (c Config) Execute(o *run.Options) (run.Report, error) {
	cfg := c
	cfg.Workers = 0 // the budget drives the engine
	res, err := runBudgeted(cfg, run.StreamFor(o.Seed, run.DomainRumor), o.Budget)
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Trajectory: res.History,
		Sent:       res.SentHistory,
		Messages:   run.SumSent(res.SentHistory),
		MaxInLoad:  res.MaxInLoad,
		MaxOutLoad: res.MaxOutLoad,
		Detail:     res,
	}, nil
}

// Protocol implements run.Spec.
func (c MultiRumorConfig) Protocol() string { return "multirumor" }

// Execute implements run.Spec: the run stream derives from the root seed
// under DomainMulti and dating rounds draw workers from the shared budget
// (cfg.Workers is ignored). Trajectory is the cumulative (node, rumor)
// knowledge count; Detail the full MultiRumorResult.
func (c MultiRumorConfig) Execute(o *run.Options) (run.Report, error) {
	cfg := c
	cfg.Workers = 0
	res, err := runMultiRumorBudgeted(cfg, run.StreamFor(o.Seed, run.DomainMulti), o.Budget)
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Trajectory: res.KnowledgeHist,
		Sent:       res.SentHistory,
		Messages:   run.SumSent(res.SentHistory),
		Detail:     res,
	}, nil
}

// Protocol implements run.Spec.
func (c LiveConfig) Protocol() string { return "live" }

// Execute implements run.Spec: the runtime seed derives from the root seed
// under DomainLive, WithEngine picks the substrate (default: the sharded
// runtime), WithWorkers sets the shard count and WithNet the network model.
// The config's own Seed/Engine/Shards/Net/Concurrent fields are ignored —
// those axes belong to the options. Under the perfect-sync model every
// engine and every worker count yields the identical report. Trajectory is
// the informed-peer history; Detail the full LiveResult.
func (c LiveConfig) Execute(o *run.Options) (run.Report, error) {
	cfg := c
	cfg.Seed = run.SeedFor(o.Seed, run.DomainLive)
	cfg.Net = o.Net
	switch o.Engine {
	case run.EngineGoroutine:
		cfg.Engine = LiveGoroutine
		cfg.Concurrent = true
		cfg.Shards = 0
	default: // EngineDefault, EngineSharded
		cfg.Engine = LiveSharded
		cfg.Shards = o.Workers
	}
	res, err := RunLive(cfg)
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.DatingRounds,
		Completed:  res.Completed,
		Trajectory: res.History,
		Sent:       res.SentHistory,
		Messages:   res.Traffic.Sent,
		MaxInLoad:  res.MaxInPayloads,
		Detail:     res,
	}, nil
}
