package gossip

import (
	"math"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestAlgorithmNames(t *testing.T) {
	for _, a := range Algorithms() {
		parsed, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Fatalf("round-trip of %v: %v", a, err)
		}
		if parsed != a {
			t.Fatalf("round-trip of %v gave %v", a, parsed)
		}
	}
	if _, err := ParseAlgorithm("smoke-signals"); err == nil {
		t.Error("accepted unknown algorithm name")
	}
	if got := Algorithm(99).String(); got != "algorithm(99)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

func TestRunValidation(t *testing.T) {
	s := rng.New(1)
	if _, err := Run(Config{Algorithm: Push}, s); err == nil {
		t.Error("accepted missing N")
	}
	if _, err := Run(Config{Algorithm: Push, N: 5, Source: 5}, s); err == nil {
		t.Error("accepted out-of-range source")
	}
	if _, err := Run(Config{Algorithm: Push, N: 5, CrashProb: 1.5}, s); err == nil {
		t.Error("accepted crash probability > 1")
	}
	if _, err := Run(Config{Algorithm: Algorithm(42), N: 5}, s); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestAllAlgorithmsComplete(t *testing.T) {
	s := rng.New(2)
	const n = 300
	for _, a := range Algorithms() {
		res, err := Run(Config{Algorithm: a, N: n, Source: 0}, s)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !res.Completed {
			t.Fatalf("%v did not complete in %d rounds", a, res.Rounds)
		}
		if res.History[len(res.History)-1] != n {
			t.Fatalf("%v: final informed count %d", a, res.History[len(res.History)-1])
		}
	}
}

func TestHistoryMonotone(t *testing.T) {
	// Informed nodes never forget the rumor.
	s := rng.New(3)
	for _, a := range Algorithms() {
		res, err := Run(Config{Algorithm: a, N: 200, Source: 0}, s)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		for r, c := range res.History {
			if c < prev {
				t.Fatalf("%v: informed count dropped at round %d: %v", a, r+1, res.History)
			}
			prev = c
		}
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	// Theorem 4: O(log n) rounds. Fit rounds against log2(n) and require a
	// good linear fit with a sane slope; also check the absolute ratio.
	s := rng.New(4)
	ns := []int{64, 256, 1024, 4096}
	var means []float64
	for _, n := range ns {
		var acc stats.Accumulator
		for rep := 0; rep < 12; rep++ {
			res, err := Run(Config{Algorithm: Dating, N: n, Source: 0}, s)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("n=%d did not complete", n)
			}
			acc.Add(float64(res.Rounds))
		}
		means = append(means, acc.Mean())
		ratio := acc.Mean() / math.Log2(float64(n))
		if ratio > 6 {
			t.Errorf("n=%d: rounds/log2(n) = %.2f, too high for O(log n)", n, ratio)
		}
	}
	fit, err := stats.FitLogN(ns, means)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.95 {
		t.Errorf("rounds vs log n fit R2 = %.3f (means %v)", fit.R2, means)
	}
	if fit.Slope <= 0 {
		t.Errorf("rounds do not grow with log n: slope %.3f", fit.Slope)
	}
}

func TestFigure2Ordering(t *testing.T) {
	// Paper, Figure 2: best-to-worst order is PUSH&PULL, fair PUSH&PULL,
	// PULL, fair PULL, PUSH, dating. Verify the aggregate ordering at a
	// moderate n; adjacent pairs can be close, so compare with a small
	// slack but require the global trend (push-pull fastest, dating
	// slowest, dating < 2x fair push-pull).
	s := rng.New(5)
	const n, reps = 1024, 20
	mean := map[Algorithm]float64{}
	for _, a := range Algorithms() {
		var acc stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			res, err := Run(Config{Algorithm: a, N: n, Source: 0}, s)
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(float64(res.Rounds))
		}
		mean[a] = acc.Mean()
	}
	if !(mean[PushPull] < mean[Pull] && mean[Pull] < mean[Push] && mean[Push] < mean[Dating]) {
		t.Errorf("ordering violated: %v", mean)
	}
	if mean[FairPushPull] < mean[PushPull] {
		t.Errorf("fair push-pull (%v) beat push-pull (%v)", mean[FairPushPull], mean[PushPull])
	}
	if mean[FairPull] < mean[Pull] {
		t.Errorf("fair pull (%v) beat pull (%v)", mean[FairPull], mean[Pull])
	}
	// The paper's headline comparison: PUSH&PULL variants benefit from
	// double communication per round and unfair variants from unbounded
	// bandwidth, so the fair comparators are the PUSH and fair PULL
	// methods; dating must be less than 2x slower than each.
	if mean[Dating] >= 2*mean[Push] {
		t.Errorf("dating %.2f not within 2x of push %.2f", mean[Dating], mean[Push])
	}
	if mean[Dating] >= 2*mean[FairPull] {
		t.Errorf("dating %.2f not within 2x of fair pull %.2f", mean[Dating], mean[FairPull])
	}
}

func TestDatingRespectsBandwidthBaselinesDoNot(t *testing.T) {
	s := rng.New(6)
	const n = 2000
	resD, err := Run(Config{Algorithm: Dating, N: n, Source: 0}, s)
	if err != nil {
		t.Fatal(err)
	}
	if resD.MaxInLoad > 1 || resD.MaxOutLoad > 1 {
		t.Fatalf("dating exceeded unit bandwidth: in %d out %d", resD.MaxInLoad, resD.MaxOutLoad)
	}
	resP, err := Run(Config{Algorithm: Push, N: n, Source: 0}, s)
	if err != nil {
		t.Fatal(err)
	}
	if resP.MaxInLoad <= 1 {
		t.Errorf("push never overloaded a receiver at n=%d, which is implausible", n)
	}
	resL, err := Run(Config{Algorithm: Pull, N: n, Source: 0}, s)
	if err != nil {
		t.Fatal(err)
	}
	if resL.MaxOutLoad <= 1 {
		t.Errorf("pull never overloaded a server at n=%d, which is implausible", n)
	}
	resF, err := Run(Config{Algorithm: FairPull, N: n, Source: 0}, s)
	if err != nil {
		t.Fatal(err)
	}
	if resF.MaxOutLoad > 1 {
		t.Errorf("fair pull served %d requests from one node in a round", resF.MaxOutLoad)
	}
}

func TestDatingWithDHTSelector(t *testing.T) {
	// The headline property: spreading works without uniform selection.
	s := rng.New(7)
	weights := make([]float64, 500)
	for i := range weights {
		weights[i] = 1 + float64(i%7) // lumpy but everywhere-positive
	}
	sel, err := core.NewWeightedSelector(weights)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Algorithm: Dating, N: 500, Selector: sel, Source: 3}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("DHT-like dating spread did not complete in %d rounds", res.Rounds)
	}
}

func TestDatingHeterogeneousProfile(t *testing.T) {
	s := rng.New(8)
	p, err := bandwidth.Zipf(400, 1.0, 16, 2, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Algorithm: Dating, Profile: p, Source: 0}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("heterogeneous spread incomplete after %d rounds", res.Rounds)
	}
	// Load bounds must match the profile.
	maxIn, maxOut := 0, 0
	for i := 0; i < p.N(); i++ {
		if p.In[i] > maxIn {
			maxIn = p.In[i]
		}
		if p.Out[i] > maxOut {
			maxOut = p.Out[i]
		}
	}
	if res.MaxInLoad > maxIn || res.MaxOutLoad > maxOut {
		t.Fatalf("loads (%d,%d) exceed profile maxima (%d,%d)", res.MaxInLoad, res.MaxOutLoad, maxIn, maxOut)
	}
}

func TestCrashToleranceDating(t *testing.T) {
	s := rng.New(9)
	res, err := Run(Config{Algorithm: Dating, N: 500, Source: 0, CrashProb: 0.02}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("dating with churn incomplete after %d rounds", res.Rounds)
	}
	if res.Crashed == 0 {
		t.Fatal("no node crashed at p=0.02 over a whole run; suspicious")
	}
}

func TestCrashedNodesNeverInformed(t *testing.T) {
	s := rng.New(10)
	var sawDeadInformed bool
	crashed := make(map[int]bool)
	cfg := Config{
		Algorithm: Dating, N: 300, Source: 0, CrashProb: 0.05,
		OnRound: func(round int, informed []bool) {
			// Completion ignores dead nodes; this hook only verifies the
			// count bookkeeping stays in range.
			c := 0
			for _, b := range informed {
				if b {
					c++
				}
			}
			if c < 1 || c > 300 {
				sawDeadInformed = true
			}
		},
	}
	if _, err := Run(cfg, s); err != nil {
		t.Fatal(err)
	}
	if sawDeadInformed {
		t.Fatal("informed count out of range during churn")
	}
	_ = crashed
}

func TestMaxRoundsCapRespected(t *testing.T) {
	s := rng.New(11)
	res, err := Run(Config{Algorithm: Dating, N: 5000, Source: 0, MaxRounds: 2}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 2 {
		t.Fatalf("exceeded round cap: %d", res.Rounds)
	}
	if res.Completed {
		t.Fatal("cannot inform 5000 nodes in 2 rounds from bandwidth 1")
	}
}

func TestOnRoundObserverCalledEveryRound(t *testing.T) {
	s := rng.New(12)
	calls := 0
	res, err := Run(Config{
		Algorithm: PushPull, N: 128, Source: 0,
		OnRound: func(round int, informed []bool) {
			calls++
			if round != calls {
				t.Fatalf("round numbering broken: got %d at call %d", round, calls)
			}
			if len(informed) != 128 {
				t.Fatalf("informed slice has %d entries", len(informed))
			}
		},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Rounds {
		t.Fatalf("observer called %d times over %d rounds", calls, res.Rounds)
	}
}

func TestItHistoryTracksOutBandwidth(t *testing.T) {
	s := rng.New(13)
	p, _ := bandwidth.Bimodal(100, 10, 5, 1)
	res, err := Run(Config{Algorithm: Dating, Profile: p, Source: 0}, s)
	if err != nil {
		t.Fatal(err)
	}
	// I_t starts at least at the source's bandwidth and ends at Bout.
	if res.ItHistory[0] < 5 {
		t.Fatalf("I_1 = %d, source has bandwidth 5", res.ItHistory[0])
	}
	if res.Completed {
		last := res.ItHistory[len(res.ItHistory)-1]
		if last != p.TotalOut() {
			t.Fatalf("final I_t = %d, want Bout = %d", last, p.TotalOut())
		}
	}
}

func TestPhaseBoundaries(t *testing.T) {
	it := []int{1, 2, 5, 12, 30, 70, 100, 100}
	p1, p2, p3 := PhaseBoundaries(it, 100, 16)
	// threshold1 = max(100/16, log2 16) = max(6, 4) = 6 -> round 4 (it=12).
	if p1 != 4 {
		t.Fatalf("phase 1 end = %d, want 4", p1)
	}
	// threshold2 = 50 -> round 6 (it=70).
	if p2 != 6 {
		t.Fatalf("phase 2 end = %d, want 6", p2)
	}
	if p3 != 8 {
		t.Fatalf("phase 3 end = %d, want 8", p3)
	}
	if a, b, c := PhaseBoundaries(nil, 10, 0); a != 0 || b != 0 || c != 0 {
		t.Fatal("degenerate input should give zeros")
	}
}

func TestHierarchicalRichBeforePoor(t *testing.T) {
	// Theorem 10: rich nodes complete earlier than the whole network.
	s := rng.New(14)
	var richSum, totalSum float64
	const reps = 10
	for rep := 0; rep < reps; rep++ {
		hres, err := RunHierarchical(600, 60, 16, s)
		if err != nil {
			t.Fatal(err)
		}
		if !hres.Completed {
			t.Fatal("hierarchical run incomplete")
		}
		if hres.RichRounds > hres.TotalRounds {
			t.Fatalf("rich completed after total: %d > %d", hres.RichRounds, hres.TotalRounds)
		}
		richSum += float64(hres.RichRounds)
		totalSum += float64(hres.TotalRounds)
	}
	if richSum/reps >= totalSum/reps {
		t.Fatalf("rich nodes (%.1f rounds) not faster than network (%.1f rounds)", richSum/reps, totalSum/reps)
	}
}

func TestHierarchicalValidation(t *testing.T) {
	s := rng.New(15)
	if _, err := RunHierarchical(10, 0, 4, s); err == nil {
		t.Error("accepted zero rich nodes")
	}
	if _, err := RunHierarchical(10, 11, 4, s); err == nil {
		t.Error("accepted rich > n")
	}
}

func TestSourceChoiceIrrelevantToCompletion(t *testing.T) {
	s := rng.New(16)
	for _, src := range []int{0, 17, 99} {
		res, err := Run(Config{Algorithm: Dating, N: 100, Source: src}, s)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("source %d: incomplete", src)
		}
	}
}

func TestTwoNodeNetwork(t *testing.T) {
	s := rng.New(17)
	for _, a := range Algorithms() {
		res, err := Run(Config{Algorithm: a, N: 2, Source: 0}, s)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !res.Completed {
			t.Fatalf("%v cannot inform 2 nodes in %d rounds", a, res.Rounds)
		}
	}
}
