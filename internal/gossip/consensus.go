package gossip

// This file is conflicting-rumor consensus: K conflicting variants of one
// rumor are seeded into the population and spread over a contact graph, and
// each peer keeps a current opinion that it revises under a pluggable merge
// rule whenever it hears variants from its contacts (Elouafiq & Semma,
// "Consensus Over Conflicting Rumors"). Where the spreading protocols ask
// "how fast does everyone learn the rumor?", consensus asks "how fast does
// everyone come to agree on the SAME version of it?" — the observable is the
// round at which the leading variant's share of the population crosses a
// threshold (90% by default), and the interesting axes are the number of
// variants, where they are seeded, and how peers merge what they hear.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bandwidth"
	"repro/internal/exch"
	"repro/internal/graph"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/run"
	"repro/internal/simnet"
)

// kindConsVariant carries a peer's current variant (A) and its logical
// timestamp (B); disjoint from the dating handshake (1–4), the async
// exchange (8–9) and the topology protocol (10–11).
const kindConsVariant uint8 = 12

// consensusSeedDomain derives the seed-placement stream of SeedDistinct
// (registry tag 0xD1 in internal/rng/domains.go / docs/DETERMINISM.md).
// Placement randomness comes from the run seed, never from a peer stream,
// so where the variants start is decided before the first round and is
// identical for every engine and shard count.
const consensusSeedDomain uint64 = 0xD1

// ConsensusSeeding selects the geometry of the initial variant placement.
type ConsensusSeeding int

const (
	// SeedDistinct places each variant's seeds at distinct peers drawn
	// uniformly at random from the placement stream.
	SeedDistinct ConsensusSeeding = iota
	// SeedHubLeaf alternates variants between the degree extremes of the
	// graph: variant 1 takes the highest-degree hubs, variant 2 the
	// lowest-degree leaves, variant 3 the next hubs, and so on — the
	// seeding-advantage experiment of scale-free consensus.
	SeedHubLeaf
	// SeedClustered gives variant v a contiguous block of peers at the
	// start of the v-th of K equal ring ranges of [0, n) — spatially
	// clustered opinions, the hardest geometry for global agreement on
	// ring-like topologies.
	SeedClustered
)

var seedingNames = [...]string{"random", "hub", "clustered"}

// String names the seeding geometry as used in CLI flags and tables.
func (g ConsensusSeeding) String() string {
	if g < 0 || int(g) >= len(seedingNames) {
		return fmt.Sprintf("seeding(%d)", int(g))
	}
	return seedingNames[g]
}

// ParseConsensusSeeding maps a name back to a ConsensusSeeding.
func ParseConsensusSeeding(name string) (ConsensusSeeding, error) {
	for i, n := range seedingNames {
		if n == name {
			return ConsensusSeeding(i), nil
		}
	}
	return 0, fmt.Errorf("gossip: unknown consensus seeding %q", name)
}

// MergeRule selects how a peer revises its variant from what it hears.
// Every rule is applied in canonical inbox order with no randomness of its
// own, which is what keeps trajectories bit-identical across engines and
// shard counts.
type MergeRule int

const (
	// RuleMajority adopts the variant the peer has heard most often over
	// its lifetime (each message counts 1); exact ties resolve to the
	// lowest variant id, deterministically.
	RuleMajority MergeRule = iota
	// RuleLatest adopts the variant with the newest logical timestamp.
	// Seed j of the canonical seeding order carries timestamp j+1, and
	// adopting a variant adopts its timestamp, so the last-stamped seed's
	// variant floods monotonically — consensus is guaranteed on a
	// connected graph and the convergence time is the flood time.
	RuleLatest
	// RuleWeighted is RuleMajority with each heard message weighted by the
	// sender's mean profile bandwidth (bin+bout)/2 — influential peers
	// count for more. With a uniform profile it is exactly RuleMajority.
	RuleWeighted
)

var ruleNames = [...]string{"majority", "latest", "weighted"}

// String names the merge rule as used in CLI flags and tables.
func (r MergeRule) String() string {
	if r < 0 || int(r) >= len(ruleNames) {
		return fmt.Sprintf("rule(%d)", int(r))
	}
	return ruleNames[r]
}

// ParseMergeRule maps a name back to a MergeRule.
func ParseMergeRule(name string) (MergeRule, error) {
	for i, n := range ruleNames {
		if n == name {
			return MergeRule(i), nil
		}
	}
	return 0, fmt.Errorf("gossip: unknown merge rule %q", name)
}

// ConsensusConfig parameterizes conflicting-rumor consensus: K variants of
// one rumor spread over a contact graph, merged per peer under Rule until
// the leading variant holds a Threshold share of the population.
type ConsensusConfig struct {
	// Variants is K, the number of conflicting variants (>= 1). K = 1
	// degenerates to plain single-rumor push spread over the graph.
	Variants int
	// Graph is the contact topology; every contact is drawn uniformly over
	// the speaking peer's neighbor row (graph.Complete recovers the
	// paper's any-to-any assumption).
	Graph *graph.CSR
	// Seeding picks the initial placement geometry of the variants.
	Seeding ConsensusSeeding
	// SeedsPerVariant is the number of peers initially holding each
	// variant (0 = 1).
	SeedsPerVariant int
	// Rule is the merge rule peers revise their opinion under.
	Rule MergeRule
	// Profile supplies the per-peer influence weights of RuleWeighted
	// ((bin+bout)/2); required for that rule, ignored by the others.
	Profile bandwidth.Profile
	// Threshold is the agreement fraction that counts as consensus: the
	// run completes when the leading variant is held by at least
	// ceil(Threshold*n) peers (0 = 0.9, the convergence-time tables'
	// "rounds to 90% agreement").
	Threshold float64
	// MaxRounds caps the run (0 = generous log-based default).
	MaxRounds int
}

// ConsensusOptions carries the axes of a consensus run that are orthogonal
// to the protocol; under repro.Run they come from the run options.
type ConsensusOptions struct {
	Seed uint64
	// Engine picks the substrate; the zero value is the goroutine engine.
	// All engines share the sharded runtime's per-peer stream derivation,
	// so the engine choice never changes trajectories.
	Engine LiveEngine
	// Concurrent selects the goroutine engine's concurrent mode; ignored
	// by the sharded engine.
	Concurrent bool
	// Shards is the sharded engine's worker count (0 = GOMAXPROCS); every
	// value is bit-identical.
	Shards int
	// Net plugs a network model into the sharded engine; nil is perfect
	// sync. The goroutine engine rejects non-nil models.
	Net live.NetModel
	// Pipeline > 1 runs the sharded engine's fused round loop;
	// bit-identical to the sequential schedule.
	Pipeline int
	// Obs, when non-nil, receives the runtime's phase spans plus the
	// protocol's per-round variant-share gauges on a "consensus" track.
	Obs *obs.Observer
}

// ConsensusResult reports a conflicting-rumor consensus run.
type ConsensusResult struct {
	Rounds int
	// Completed reports whether the leading variant reached the threshold
	// share within the round cap.
	Completed bool
	// Winner is the leading variant (1-based) when the run stopped.
	Winner int
	// Agreement is the leading variant's share of the whole population
	// when the run stopped.
	Agreement float64
	// Seeds lists the initially seeded peers in canonical order; seed j
	// holds variant j/SeedsPerVariant + 1.
	Seeds []int
	// DecidedHist is the count of peers holding any variant after each
	// round — the spread component of the dynamics.
	DecidedHist []int
	// ShareHist[r][v] is the count of peers holding variant v+1 after
	// round r+1 — the consensus component.
	ShareHist [][]int
	// SentHistory is the number of messages routed per round.
	SentHistory []int
	Traffic     simnet.Stats
}

// consState is the per-peer variant state, laid out as contiguous cell
// blocks per shard — the owning shard is the only writer of its blocks, so
// blocks of different shards never share a slice (the -race suite pins this
// layout, the shard-local-arena idiom of the topology SIR state). The
// partition mirrors the runtime's exactly via live.EffectiveShards.
//
// variant holds each peer's current opinion (0 = undecided, 1..K).
// stamp (RuleLatest only) holds the logical timestamp of the held variant.
// heard (RuleMajority / RuleWeighted only) holds K accumulated weights per
// peer, the peer's lifetime tally of what it has been told.
type consState struct {
	part    exch.Partition
	k       int
	variant [][]uint8
	stamp   [][]int32
	heard   [][]float64
}

func newConsState(n, parts, k int, rule MergeRule) *consState {
	st := &consState{part: exch.Partition{N: n, Parts: parts}, k: k}
	st.variant = make([][]uint8, parts)
	if rule == RuleLatest {
		st.stamp = make([][]int32, parts)
	} else {
		st.heard = make([][]float64, parts)
	}
	for o := range st.variant {
		lo, hi := st.part.Range(o)
		st.variant[o] = make([]uint8, hi-lo)
		if st.stamp != nil {
			st.stamp[o] = make([]int32, hi-lo)
		}
		if st.heard != nil {
			st.heard[o] = make([]float64, (hi-lo)*k)
		}
	}
	return st
}

func (st *consState) getVariant(i int) uint8 {
	o := st.part.Owner(i)
	return st.variant[o][i-st.part.Start(o)]
}

func (st *consState) setVariant(i int, v uint8) {
	o := st.part.Owner(i)
	st.variant[o][i-st.part.Start(o)] = v
}

func (st *consState) getStamp(i int) int32 {
	o := st.part.Owner(i)
	return st.stamp[o][i-st.part.Start(o)]
}

func (st *consState) setStamp(i int, v int32) {
	o := st.part.Owner(i)
	st.stamp[o][i-st.part.Start(o)] = v
}

// heardRow returns peer i's K-cell tally slice.
func (st *consState) heardRow(i int) []float64 {
	o := st.part.Owner(i)
	base := (i - st.part.Start(o)) * st.k
	return st.heard[o][base : base+st.k]
}

// counts tallies decided peers and the per-variant shares; called by the
// coordinator between rounds, when the shards are quiescent.
func (st *consState) counts(shares []int) (decided int) {
	for i := range shares {
		shares[i] = 0
	}
	for _, cell := range st.variant {
		for _, v := range cell {
			if v != 0 {
				decided++
				shares[v-1]++
			}
		}
	}
	return decided
}

// argmaxVariant returns the 1-based variant with the largest accumulated
// weight, resolving exact ties to the lowest variant id (only a strictly
// greater weight displaces the running best), or 0 when nothing was heard.
func argmaxVariant(heard []float64) int {
	best, bw := 0, 0.0
	for i, w := range heard {
		if w > bw {
			best, bw = i+1, w
		}
	}
	return best
}

// consStep builds the per-peer merge state machine. All contact randomness
// is drawn from the acting peer's own stream while its inbox is processed
// in canonical order — the merge rules themselves consume no randomness —
// so trajectories are bit-identical for every shard count and engine.
// weight is nil except under RuleWeighted, where weight[sender] scales each
// heard message; tallies accumulate in inbox order (float addition is not
// associative, so the canonical order is load-bearing for bit identity).
func consStep(sampler graph.Sampler, st *consState, weight []float64) live.StepFunc {
	return func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
		v := st.getVariant(node)
		var stamp int32
		if st.stamp != nil {
			stamp = st.getStamp(node)
			for _, m := range inbox {
				if m.Kind != kindConsVariant {
					continue
				}
				mv, ms := uint8(m.A), int32(m.B)
				// Strictly newer stamps win; an equal stamp with a lower
				// variant id wins too, so the rule is total and
				// deterministic even if two seeds ever shared a stamp.
				if ms > stamp || (ms == stamp && v != 0 && mv < v) || v == 0 {
					v, stamp = mv, ms
				}
			}
			st.setStamp(node, stamp)
		} else {
			heard := st.heardRow(node)
			revised := false
			for _, m := range inbox {
				if m.Kind != kindConsVariant {
					continue
				}
				w := 1.0
				if weight != nil {
					w = weight[m.From]
				}
				heard[int(m.A)-1] += w
				revised = true
			}
			if revised {
				v = uint8(argmaxVariant(heard))
			}
		}
		st.setVariant(node, v)
		if v != 0 {
			if nb := sampler.Pick(node, s); nb >= 0 {
				emit(simnet.Message{To: nb, Kind: kindConsVariant, A: int64(v), B: int64(stamp)})
			}
		}
	}
}

// consensusSeeds computes the canonical seeding order: SeedsPerVariant
// peers per variant, variant-major, placed by the configured geometry.
func consensusSeeds(cfg ConsensusConfig, seed uint64) ([]int, error) {
	n := cfg.Graph.N()
	spv := cfg.SeedsPerVariant
	if spv <= 0 {
		spv = 1
	}
	total := cfg.Variants * spv
	if total > n {
		return nil, fmt.Errorf("gossip: %d variants x %d seeds exceed %d peers", cfg.Variants, spv, n)
	}
	seeds := make([]int, 0, total)
	switch cfg.Seeding {
	case SeedDistinct:
		s := rng.New(rng.Derive(seed, consensusSeedDomain))
		taken := make(map[int]bool, total)
		for len(seeds) < total {
			p := s.Intn(n)
			if taken[p] {
				continue
			}
			taken[p] = true
			seeds = append(seeds, p)
		}
	case SeedHubLeaf:
		// Degree order, stable by id: odd variants draw from the hub end,
		// even variants from the leaf end, never overlapping.
		byDeg := make([]int, n)
		for i := range byDeg {
			byDeg[i] = i
		}
		sort.SliceStable(byDeg, func(a, b int) bool {
			da, db := cfg.Graph.Degree(byDeg[a]), cfg.Graph.Degree(byDeg[b])
			if da != db {
				return da > db
			}
			return byDeg[a] < byDeg[b]
		})
		hub, leaf := 0, n-1
		for v := 0; v < cfg.Variants; v++ {
			for c := 0; c < spv; c++ {
				if v%2 == 0 {
					seeds = append(seeds, byDeg[hub])
					hub++
				} else {
					seeds = append(seeds, byDeg[leaf])
					leaf--
				}
			}
		}
	case SeedClustered:
		if spv > n/cfg.Variants {
			return nil, fmt.Errorf("gossip: clustered seeding needs %d seeds within a ring range of %d", spv, n/cfg.Variants)
		}
		for v := 0; v < cfg.Variants; v++ {
			start := v * n / cfg.Variants
			for c := 0; c < spv; c++ {
				seeds = append(seeds, start+c)
			}
		}
	default:
		return nil, fmt.Errorf("gossip: unknown consensus seeding %d", cfg.Seeding)
	}
	return seeds, nil
}

// RunConsensus executes conflicting-rumor consensus on a live message
// engine.
func RunConsensus(cfg ConsensusConfig, o ConsensusOptions) (ConsensusResult, error) {
	if cfg.Graph == nil || cfg.Graph.N() == 0 {
		return ConsensusResult{}, fmt.Errorf("gossip: consensus run needs a graph")
	}
	n := cfg.Graph.N()
	if cfg.Variants < 1 || cfg.Variants > 255 {
		return ConsensusResult{}, fmt.Errorf("gossip: variant count %d out of [1,255]", cfg.Variants)
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return ConsensusResult{}, fmt.Errorf("gossip: threshold %v out of [0,1]", cfg.Threshold)
	}
	if cfg.Rule < RuleMajority || cfg.Rule > RuleWeighted {
		return ConsensusResult{}, fmt.Errorf("gossip: unknown merge rule %d", cfg.Rule)
	}
	var weight []float64
	if cfg.Rule == RuleWeighted {
		if cfg.Profile.N() != n {
			return ConsensusResult{}, fmt.Errorf("gossip: weighted merge needs a profile over %d nodes, got %d", n, cfg.Profile.N())
		}
		weight = make([]float64, n)
		for i := range weight {
			weight[i] = float64(cfg.Profile.In[i]+cfg.Profile.Out[i]) / 2
		}
	}
	if o.Engine == LiveGoroutine && o.Net != nil {
		return ConsensusResult{}, fmt.Errorf("gossip: network models require the sharded engine")
	}
	threshold := cfg.Threshold
	if threshold == 0 {
		threshold = 0.9
	}
	target := int(math.Ceil(threshold * float64(n)))
	sampler, err := graph.NewUniformNeighbors(cfg.Graph)
	if err != nil {
		return ConsensusResult{}, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
		for v := 1; v < n; v <<= 1 {
			maxRounds += 64
		}
	}
	seeds, err := consensusSeeds(cfg, o.Seed)
	if err != nil {
		return ConsensusResult{}, err
	}
	spv := len(seeds) / cfg.Variants

	// State blocks match the runtime's shard partition, so each block has
	// exactly one writing worker; the goroutine engine steps sequentially
	// per peer and uses a single block.
	parts := 1
	if o.Engine == LiveSharded {
		parts = live.EffectiveShards(n, o.Shards)
	}
	st := newConsState(n, parts, cfg.Variants, cfg.Rule)
	for j, p := range seeds {
		v := uint8(j/spv + 1)
		st.setVariant(p, v)
		if st.stamp != nil {
			st.setStamp(p, int32(j+1))
		} else {
			// The seed credits its own variant once (at its own influence
			// weight under RuleWeighted), so a freshly contacted seed does
			// not flip on the first thing it hears.
			w := 1.0
			if weight != nil {
				w = weight[p]
			}
			st.heardRow(p)[v-1] += w
		}
	}

	step := consStep(sampler, st, weight)
	var runRounds func(rounds int) simnet.Stats
	switch o.Engine {
	case LiveGoroutine:
		streams := make([]*rng.Stream, n)
		for i := range streams {
			streams[i] = rng.New(live.PeerSeed(o.Seed, i))
		}
		eng, err := simnet.NewLiveWithStreams(streams, adaptStep(step))
		if err != nil {
			return ConsensusResult{}, err
		}
		if o.Concurrent {
			runRounds = eng.Run
		} else {
			runRounds = eng.RunSequential
		}
	case LiveSharded:
		rt, err := live.New(live.Config{
			N:      n,
			Seed:   o.Seed,
			Step:   step,
			Shards: o.Shards,
			Net:    o.Net,
			Obs:    o.Obs,
		})
		if err != nil {
			return ConsensusResult{}, err
		}
		if o.Pipeline > 1 {
			runRounds = rt.RunPipelined
		} else {
			runRounds = rt.Run
		}
	default:
		return ConsensusResult{}, fmt.Errorf("gossip: unknown live engine %d", o.Engine)
	}

	tr := o.Obs.Track("consensus", 1)
	gauges := make([]*obs.Gauge, cfg.Variants)
	for v := range gauges {
		gauges[v] = tr.Gauge(fmt.Sprintf("variant_%d", v+1))
	}

	res := ConsensusResult{Seeds: seeds}
	shares := make([]int, cfg.Variants)
	var prevSent int64
	for round := 1; round <= maxRounds; round++ {
		res.Traffic = runRounds(1)
		res.SentHistory = append(res.SentHistory, int(res.Traffic.Sent-prevSent))
		prevSent = res.Traffic.Sent
		decided := st.counts(shares)
		res.Rounds = round
		res.DecidedHist = append(res.DecidedHist, decided)
		res.ShareHist = append(res.ShareHist, append([]int(nil), shares...))
		lead, leadCount := 1, shares[0]
		for v := 1; v < cfg.Variants; v++ {
			if shares[v] > leadCount {
				lead, leadCount = v+1, shares[v]
			}
		}
		for v, g := range gauges {
			g.Sample(round, int64(shares[v]))
		}
		tr.Barrier()
		res.Winner = lead
		res.Agreement = float64(leadCount) / float64(n)
		if leadCount >= target {
			res.Completed = true
			break
		}
	}
	return res, nil
}

// Protocol implements run.Spec.
func (c ConsensusConfig) Protocol() string { return "consensus" }

// Execute implements run.Spec: the runtime seed derives from the root seed
// under DomainConsensus, WithEngine picks the substrate (default: the
// sharded runtime), WithWorkers sets the shard count, WithNet the network
// model and WithPipeline the fused round loop — all pure speed knobs under
// perfect sync. Trajectory is the decided-peer history; Detail the full
// ConsensusResult (per-round variant shares, winner, agreement).
func (c ConsensusConfig) Execute(o *run.Options) (run.Report, error) {
	copts := ConsensusOptions{
		Seed:     run.SeedFor(o.Seed, run.DomainConsensus),
		Net:      o.Net,
		Pipeline: o.Pipeline,
		Obs:      o.Obs,
	}
	switch o.Engine {
	case run.EngineGoroutine:
		copts.Engine = LiveGoroutine
		copts.Concurrent = true
	default: // EngineDefault, EngineSharded
		copts.Engine = LiveSharded
		copts.Shards = o.Workers
	}
	res, err := RunConsensus(c, copts)
	if err != nil {
		return run.Report{}, err
	}
	return run.Report{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Trajectory: res.DecidedHist,
		Sent:       res.SentHistory,
		Messages:   res.Traffic.Sent,
		Dropped:    res.Traffic.Dropped,
		Clamped:    res.Traffic.Clamped,
		Detail:     res,
	}, nil
}
