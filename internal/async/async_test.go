package async

import (
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/simnet"
)

// apingState is a synthetic protocol for runtime tests: every firing folds
// its (index, timestamp) into a per-peer digest and emits fan messages to
// random destinations; every arrival folds (From, A) into the receiver's
// digest and occasionally replies, so any difference in event timing,
// delivery content or delivery order changes the final digest.
type apingState struct {
	n      int
	fan    int
	digest []uint64
	recv   []int
}

func newAping(n, fan int) *apingState {
	return &apingState{n: n, fan: fan, digest: make([]uint64, n), recv: make([]int, n)}
}

func (c *apingState) fire(peer, fire int, t float64, s *rng.Stream, emit func(simnet.Message)) {
	h := c.digest[peer]
	h = h*1099511628211 + uint64(fire)
	h = h*1099511628211 + math.Float64bits(t)
	c.digest[peer] = h
	for k := 0; k < c.fan; k++ {
		emit(simnet.Message{To: s.Intn(c.n), Kind: 1, A: int64(fire)})
	}
}

func (c *apingState) recvFn(peer int, m simnet.Message, emit func(simnet.Message)) {
	c.recv[peer]++
	h := c.digest[peer]
	h = h*1099511628211 + uint64(m.From)
	h = h*1099511628211 + uint64(m.A)
	c.digest[peer] = h
	if m.Kind == 1 && m.A%5 == 0 {
		emit(simnet.Message{To: m.From, Kind: 2, A: m.A})
	}
}

func (c *apingState) combined() uint64 {
	h := uint64(14695981039346656037)
	for _, d := range c.digest {
		h = h*1099511628211 + d
	}
	return h
}

// hetRates builds a deterministic heterogeneous rate vector.
func hetRates(n int) []float64 {
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = 0.5 + 0.3*float64(i%7)
	}
	return rates
}

func TestAsyncNewValidation(t *testing.T) {
	fire := func(int, int, float64, *rng.Stream, func(simnet.Message)) {}
	bad := []Config{
		{N: 0, Fire: fire},
		{N: 4},
		{N: 4, Fire: fire, Shards: -1},
		{N: 4, Fire: fire, BucketWidth: -1},
		{N: 4, Fire: fire, BucketWidth: math.NaN()},
		{N: 4, Fire: fire, BucketWidth: math.Inf(1)},
		{N: 4, Fire: fire, Latency: -0.5},
		{N: 4, Fire: fire, Latency: math.NaN()},
		{N: 4, Fire: fire, Latency: math.Inf(1)},
		{N: 4, Fire: fire, Rates: []float64{1, 1, 1}},     // too short
		{N: 4, Fire: fire, Rates: []float64{1, 0, 1, 1}},  // zero rate
		{N: 4, Fire: fire, Rates: []float64{1, -2, 1, 1}}, // negative rate
		{N: 4, Fire: fire, Rates: []float64{1, math.NaN(), 1, 1}},
		{N: 4, Fire: fire, Rates: []float64{1, math.Inf(1), 1, 1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := New(Config{N: 4, Fire: fire}); err != nil {
		t.Errorf("rejected minimal valid config: %v", err)
	}
}

func TestAsyncShardCountBitIdentity(t *testing.T) {
	// The runtime's headline property: (n, seed, rates, widths, handlers)
	// fully determine the run; the shard count is invisible. Heterogeneous
	// rates make the per-peer event schedules genuinely different, and the
	// reply traffic in recvFn exercises the boundary-timed emission path.
	const n, buckets = 2000, 12
	type outcome struct {
		digest uint64
		stats  simnet.Stats
		fired  int64
	}
	var ref outcome
	for _, shards := range []int{1, 2, 4, 8} {
		st := newAping(n, 2)
		rt, err := New(Config{
			N: n, Seed: 42, Fire: st.fire, Recv: st.recvFn,
			Rates: hetRates(n), Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats := rt.RunBuckets(buckets)
		got := outcome{digest: st.combined(), stats: stats, fired: rt.Fired()}
		if shards == 1 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("shards=%d diverged from shards=1:\n  %+v\nvs %+v", shards, got, ref)
		}
	}
	if ref.stats.Sent == 0 || ref.fired == 0 {
		t.Fatalf("no traffic at all: %+v", ref)
	}
	if ref.stats.Clamped != 0 {
		t.Fatalf("normal run clamped %d arrival buckets", ref.stats.Clamped)
	}
}

func TestAsyncBucketWidthChangesOnlyQuantization(t *testing.T) {
	// Firing times do not depend on the bucket width: the k-th firing of
	// peer i draws its gap from the (peer, firing)-derived stream, so the
	// total number of firings over a fixed time horizon is identical for
	// any width that divides the horizon.
	const n = 500
	var fireCounts []int64
	for _, width := range []float64{1, 0.5, 0.25} {
		st := newAping(n, 1)
		rt, err := New(Config{N: n, Seed: 7, Fire: st.fire, Rates: hetRates(n), BucketWidth: width, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		rt.RunBuckets(int(8 / width))
		if rt.Time() != 8 {
			t.Fatalf("width=%v: advanced to time %v, want 8", width, rt.Time())
		}
		fireCounts = append(fireCounts, rt.Fired())
	}
	for i := 1; i < len(fireCounts); i++ {
		if fireCounts[i] != fireCounts[0] {
			t.Fatalf("firing counts over the same horizon differ across widths: %v", fireCounts)
		}
	}
}

func TestAsyncLatencyQuantization(t *testing.T) {
	// An emission at time t with flight latency L arrives at the boundary of
	// bucket floor((t+L)/W) — and never in the emitting bucket: with L ~ 0
	// every arrival is rounded up to the next boundary, the documented
	// "bucket width is the latency quantum" rule, without touching the
	// Stats.Clamped counter (that counts only the maxDelta float guard).
	for _, tc := range []struct {
		latency float64
		arrival func(t float64) int // expected arrival bucket for emission at t
	}{
		{2.5, func(t float64) int { return int(t + 2.5) }},
		{1e-9, func(t float64) int { return int(t) + 1 }},
	} {
		var sentTimes []float64
		var arrivals []int
		var rt *Runtime
		fire := func(peer, fire int, t float64, s *rng.Stream, emit func(simnet.Message)) {
			if peer == 0 {
				sentTimes = append(sentTimes, t)
				emit(simnet.Message{To: 1, Kind: 1})
			}
		}
		recv := func(peer int, m simnet.Message, emit func(simnet.Message)) {
			arrivals = append(arrivals, rt.Bucket())
		}
		var err error
		rt, err = New(Config{
			N: 2, Seed: 3, Fire: fire, Recv: recv,
			Rates:   []float64{1, 1e-9}, // peer 1 never fires in this horizon
			Latency: tc.latency, Shards: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats := rt.RunBuckets(40)
		if len(sentTimes) == 0 {
			t.Fatal("peer 0 never fired")
		}
		if len(arrivals) == 0 {
			t.Fatal("nothing arrived")
		}
		for i, b := range arrivals {
			want := tc.arrival(sentTimes[i])
			if b != want {
				t.Fatalf("latency=%v: emission at t=%v arrived in bucket %d, want %d",
					tc.latency, sentTimes[i], b, want)
			}
			if b <= int(sentTimes[i]) {
				t.Fatalf("latency=%v: arrival bucket %d not after emission bucket %d",
					tc.latency, b, int(sentTimes[i]))
			}
		}
		if stats.Clamped != 0 {
			t.Fatalf("latency=%v: quantization counted as clamp: %+v", tc.latency, stats)
		}
	}
}

func TestAsyncRatesDriveFiringFrequency(t *testing.T) {
	// A peer with clock rate r fires r times per unit time in expectation.
	fires := make([]int64, 2)
	fire := func(peer, k int, t float64, s *rng.Stream, emit func(simnet.Message)) {
		fires[peer]++
	}
	rt, err := New(Config{N: 2, Seed: 9, Fire: fire, Rates: []float64{1, 8}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2000
	rt.RunBuckets(horizon)
	if fires[0] < horizon*8/10 || fires[0] > horizon*12/10 {
		t.Fatalf("unit-rate peer fired %d times in %d units", fires[0], horizon)
	}
	ratio := float64(fires[1]) / float64(fires[0])
	if ratio < 6.5 || ratio > 9.5 {
		t.Fatalf("rate-8 peer fired %.2fx the unit peer, want about 8x", ratio)
	}
	if rt.Fired() != fires[0]+fires[1] {
		t.Fatalf("Fired() = %d, want %d", rt.Fired(), fires[0]+fires[1])
	}
}

func TestAsyncDroppedAndNilRecv(t *testing.T) {
	// Out-of-range destinations count as drops; with Recv == nil, arrivals
	// fall on the floor without crashing and the inbox view stays readable.
	fire := func(peer, k int, t float64, s *rng.Stream, emit func(simnet.Message)) {
		emit(simnet.Message{To: -1, Kind: 1})
		emit(simnet.Message{To: peer, Kind: 1})
	}
	rt, err := New(Config{N: 8, Seed: 5, Fire: fire, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats := rt.RunBuckets(6)
	if stats.Dropped == 0 || stats.Dropped != stats.Sent {
		t.Fatalf("want equal sent and dropped counts, got %+v", stats)
	}
	total := 0
	for i := 0; i < rt.N(); i++ {
		total += len(rt.Inbox(i))
	}
	if total == 0 {
		t.Fatal("last bucket delivered nothing despite self-sends")
	}
}

func TestAsyncAccessorsAndShardClamp(t *testing.T) {
	st := newAping(3, 1)
	rt, err := New(Config{N: 3, Seed: 1, Fire: st.fire, Recv: st.recvFn, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rt.N() != 3 || rt.Shards() != 3 {
		t.Fatalf("accessors: n=%d shards=%d (shards should clamp to n)", rt.N(), rt.Shards())
	}
	if rt.Bucket() != 0 || rt.Time() != 0 || rt.Fired() != 0 {
		t.Fatalf("fresh runtime: bucket=%d time=%v fired=%d", rt.Bucket(), rt.Time(), rt.Fired())
	}
	stats := rt.RunBuckets(4)
	if rt.Bucket() != 4 || rt.Time() != 4 || stats.Rounds != 4 {
		t.Fatalf("after 4 buckets: bucket=%d time=%v rounds=%d", rt.Bucket(), rt.Time(), stats.Rounds)
	}
	// RunBuckets accumulates: two more buckets extend the same run.
	stats = rt.RunBuckets(2)
	if rt.Bucket() != 6 || stats.Rounds != 6 {
		t.Fatalf("after 4+2 buckets: bucket=%d rounds=%d", rt.Bucket(), stats.Rounds)
	}
}

func TestAsyncOverlappingRuntimes(t *testing.T) {
	// Two runtimes running concurrently must not interfere — the -race build
	// of this test is the async-runtime race check.
	run := func() uint64 {
		st := newAping(600, 2)
		rt, err := New(Config{N: 600, Seed: 21, Fire: st.fire, Recv: st.recvFn, Rates: hetRates(600), Shards: 4})
		if err != nil {
			t.Error(err)
			return 0
		}
		rt.RunBuckets(8)
		return st.combined()
	}
	var wg sync.WaitGroup
	digests := make([]uint64, 4)
	for i := range digests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			digests[i] = run()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(digests); i++ {
		if digests[i] != digests[0] {
			t.Fatalf("concurrent runtime %d diverged", i)
		}
	}
}
