// Package async is the clockless event-driven runtime: the same sharded,
// flat-buffer execution style as internal/live, but with no global round
// barrier. Each peer fires on its own exponential clock — the rate drawn
// from its heterogeneity profile — and the runtime drains a sharded,
// timestamp-ordered calendar queue whose time axis is cut into buckets.
// Shards only synchronize at bucket boundaries.
//
// # Clock model
//
// Peer i fires at the points of a Poisson process with rate Rates[i]: the
// gap between firing k-1 and firing k is an Exp(Rates[i]) draw. Real gossip
// is asynchronous push&pull on exactly such clocks (Patsonakis &
// Roussopoulos, "Asynchronous Rumour Spreading"); with unit rates the mean
// inter-firing gap is 1, so time unit = expected synchronous round, which is
// what makes sync-vs-async spread curves directly comparable.
//
// # The calendar queue
//
// Continuous time is partitioned into buckets of width BucketWidth; the
// runtime executes bucket b = [b·W, (b+1)·W) as one parallel step:
//
//	deliver  messages whose arrival falls in this bucket are counting-sorted
//	         by destination on the owner-range exchange kernel of
//	         internal/exch — the per-(shard, owner) record/Prefix/Fill idiom
//	         shared with the live runtime — so peer i's arrivals are one
//	         contiguous slice;
//	step     each shard walks its own peer range: a peer first absorbs its
//	         arrivals (in canonical order), then replays its firings with
//	         timestamps inside the bucket, in time order; emitted messages
//	         are stamped with arrival time = emission time + Latency and
//	         recorded in the per-(shard, Δbucket) chunks of a concat-form
//	         exchange;
//	route    exch.SetBase/Flush hand the chunks off to the future calendar
//	         slots in parallel, preserving shard-order concatenation.
//
// Within a bucket, peers interact only through messages that land in later
// buckets, so shards never read each other's state between the boundary
// barriers — the bucket boundary is the only synchronization point, where
// the round-synchronous runtime pays three barriers per round.
//
// # Determinism
//
// A run is a pure function of (n, seed, rates, widths, handlers) — the
// shard count is invisible. Peer i's k-th firing draws its inter-firing gap
// and its protocol randomness from a private stream seeded
// rng.Derive(seed, rng.DomainAsyncFire, i, k); since only the shard owning
// peer i ever advances that state, and since the exchange kernel reassembles
// messages in global (peer, firing-index) scan order regardless of which
// shard recorded them, every shard count replays the identical event
// history bit for bit. Arrival times are quantized to bucket boundaries
// (an arrival inside bucket b is absorbed when bucket b opens, before any
// firing of bucket b), so the effective latency of a message is
// max(Latency, time to the next boundary) — the bucket width is the
// latency quantum of the model.
package async

import (
	"fmt"
	"math"
	"runtime"
	"time"
	"unsafe"

	"repro/internal/exch"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// FireFunc is one peer's behavior at one firing of its clock: peer fires
// for the k-th time at absolute time t, draws whatever randomness it needs
// from s (its private per-(peer, firing) stream — the same stream the gap
// before this firing came from), and emits messages. From is stamped by the
// runtime; emitted messages arrive Latency later, quantized to the bucket
// boundary. A FireFunc may keep per-peer state indexed by peer id but must
// not touch shared state: peers of different shards run concurrently.
type FireFunc func(peer, fire int, t float64, s *rng.Stream, emit func(simnet.Message))

// RecvFunc handles one arrived message at its destination peer. It runs at
// the boundary of the bucket containing the arrival time, before any of the
// peer's firings in that bucket. RecvFunc gets no stream — handlers must be
// pure functions of the peer state and the message, which keeps all
// randomness accounted to (peer, firing-index) coordinates. Replies emitted
// here are timed from the bucket boundary.
type RecvFunc func(peer int, m simnet.Message, emit func(simnet.Message))

// Config parameterizes a runtime.
type Config struct {
	// N is the peer count.
	N int
	// Seed roots every stream of the run.
	Seed uint64
	// Fire is the per-firing protocol behavior.
	Fire FireFunc
	// Recv handles arrivals; nil means arrivals are dropped on the floor
	// (pure-push protocols that encode everything in Fire).
	Recv RecvFunc
	// Rates holds each peer's clock rate (> 0, finite); nil means unit
	// rates. Protocols derive these from their heterogeneity profile.
	Rates []float64
	// BucketWidth is the calendar bucket width W in clock-time units; 0
	// selects 1.0 (one bucket per expected unit-rate firing).
	BucketWidth float64
	// Latency is each message's flight time in clock-time units; 0 selects
	// BucketWidth. Arrivals are quantized to the boundary of the bucket the
	// arrival time falls in, and never land in the bucket that sent them.
	Latency float64
	// Shards is the worker count; any value produces bit-identical results.
	// 0 selects GOMAXPROCS; negative is an error.
	Shards int
	// Obs, when non-nil, receives per-(bucket, shard, phase) spans and
	// per-bucket gauges. Observers are read-only: attaching one never
	// changes any result (the determinism suites pin this).
	Obs *obs.Observer
}

// cursorSource adapts the flat per-peer xoshiro state array as an
// rng.Source, exactly as the live runtime does: the owning shard points
// node at the peer being fired, so one Stream per shard serves every peer
// of the shard without allocation.
type cursorSource struct {
	states []rng.Xoshiro256
	node   int
}

func (c *cursorSource) Uint64() uint64   { return c.states[c.node].Uint64() }
func (c *cursorSource) Seed(seed uint64) { c.states[c.node].Seed(seed) }

// shard is one worker's private state.
type shard struct {
	w      int
	src    cursorSource
	stream *rng.Stream

	sender int
	now    float64
	emit   func(simnet.Message)

	sent    int64
	dropped int64
	clamped int64
	fired   int64
	byKind  [256]int64
}

// Runtime executes an asynchronous protocol over n peers with shard
// workers. Construct with New; RunBuckets advances the calendar one bucket
// at a time and must not be called concurrently — parallelism happens
// inside the bucket.
type Runtime struct {
	n        int
	shards   int
	fire     FireFunc
	recv     RecvFunc
	rates    []float64
	width    float64
	latency  float64
	maxDelta int // largest Δbucket a message can span; ring size - 1
	seed     uint64
	bucket   int

	// Per-peer clock state: the xoshiro state of the pending firing (gap
	// already drawn from it; the firing's protocol draws continue it), the
	// pending firing's absolute time, and its index.
	states   []rng.Xoshiro256
	nextFire []float64
	fireIdx  []uint64

	part exch.Partition
	sh   []shard

	// inbox is the delivery exchange: per-(shard, owner) chunks of
	// (destination, slot index) records, Fill-sorted by each owner.
	inbox exch.Exchange[int32]
	// outbox is the calendar handoff: per-(shard, Δbucket) concat chunks of
	// emitted messages, flushed into the calendar slots with SetBase/Flush.
	outbox exch.Exchange[simnet.Message]

	// slots is the calendar: messages arriving in bucket b sit in
	// slots[b % (maxDelta+1)], in canonical (sender, firing) order.
	slots [][]simnet.Message
	// sorted/inOff are the delivered view of the current bucket: peer i's
	// arrivals are sorted[inOff[i]:inOff[i+1]].
	sorted    []simnet.Message
	sortedIdx []int32
	inOff     []int32

	stats simnet.Stats
	fired int64

	// Instrumentation (nil when no observer is attached; the hot path then
	// pays a nil check and nothing else). arenas[w] is shard w's span sink,
	// merged into tr at the bucket barrier; the gauges sample the calendar
	// once per bucket from the coordinator.
	tr              *obs.Track
	arenas          []*obs.Arena
	gSent, gDropped *obs.Gauge
	gClamped        *obs.Gauge
	gFired, gQueue  *obs.Gauge
	gScratch        *obs.Gauge
}

// New builds a runtime. Peer clocks are seeded (and their first gaps drawn)
// in parallel across the shard workers.
func New(cfg Config) (*Runtime, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("async: runtime needs n > 0, got %d", cfg.N)
	}
	if cfg.Fire == nil {
		return nil, fmt.Errorf("async: runtime needs a fire function")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("async: shards %d must be non-negative (0 selects GOMAXPROCS)", cfg.Shards)
	}
	width := cfg.BucketWidth
	if width == 0 {
		width = 1
	}
	if width < 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		return nil, fmt.Errorf("async: bucket width %v must be positive and finite", cfg.BucketWidth)
	}
	latency := cfg.Latency
	if latency == 0 {
		latency = width
	}
	if latency < 0 || math.IsNaN(latency) || math.IsInf(latency, 0) {
		return nil, fmt.Errorf("async: latency %v must be positive and finite", cfg.Latency)
	}
	rates := cfg.Rates
	if rates == nil {
		rates = make([]float64, cfg.N)
		for i := range rates {
			rates[i] = 1
		}
	}
	if len(rates) < cfg.N {
		return nil, fmt.Errorf("async: %d rates for %d peers", len(rates), cfg.N)
	}
	for i := 0; i < cfg.N; i++ {
		if !(rates[i] > 0) || math.IsInf(rates[i], 0) {
			return nil, fmt.Errorf("async: peer %d clock rate %v must be positive and finite", i, rates[i])
		}
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > cfg.N {
		shards = cfg.N
	}

	rt := &Runtime{
		n:        cfg.N,
		shards:   shards,
		fire:     cfg.Fire,
		recv:     cfg.Recv,
		rates:    rates,
		width:    width,
		latency:  latency,
		maxDelta: int(latency/width) + 2,
		seed:     cfg.Seed,
		states:   make([]rng.Xoshiro256, cfg.N),
		nextFire: make([]float64, cfg.N),
		fireIdx:  make([]uint64, cfg.N),
		part:     exch.Partition{N: cfg.N, Parts: shards},
		sh:       make([]shard, shards),
		inOff:    make([]int32, cfg.N+1),
	}
	ring := rt.maxDelta + 1
	rt.slots = make([][]simnet.Message, ring)
	rt.inbox.Reset(shards, rt.part)
	rt.outbox.Reset(shards, exch.Partition{N: ring, Parts: ring})
	for w := range rt.sh {
		sh := &rt.sh[w]
		sh.w = w
		sh.src.states = rt.states
		sh.stream = rng.NewWithSource(&sh.src)
		sh.emit = rt.makeEmit(sh)
	}
	if cfg.Obs != nil {
		rt.tr = cfg.Obs.Track("async", shards)
		rt.arenas = make([]*obs.Arena, shards)
		for w := range rt.arenas {
			rt.arenas[w] = rt.tr.Arena(w)
		}
		rt.gSent = rt.tr.Gauge("sent")
		rt.gDropped = rt.tr.Gauge("dropped")
		rt.gClamped = rt.tr.Gauge("clamped")
		rt.gFired = rt.tr.Gauge("fired")
		rt.gQueue = rt.tr.Gauge("calendar_depth")
		rt.gScratch = rt.tr.Gauge("scratch_bytes")
	}
	rt.fanOut(func(w int) {
		sh := &rt.sh[w]
		lo, hi := rt.part.Range(w)
		for i := lo; i < hi; i++ {
			rt.states[i].Seed(rng.Derive(cfg.Seed, rng.DomainAsyncFire, uint64(i), 0))
			sh.src.node = i
			rt.nextFire[i] = sh.stream.ExpFloat64() / rt.rates[i]
		}
	})
	return rt, nil
}

// N returns the peer count.
func (rt *Runtime) N() int { return rt.n }

// Shards returns the effective worker count.
func (rt *Runtime) Shards() int { return rt.shards }

// Bucket returns the next bucket index RunBuckets will execute.
func (rt *Runtime) Bucket() int { return rt.bucket }

// Time returns the simulated time the calendar has advanced to: the start
// of the next bucket.
func (rt *Runtime) Time() float64 { return float64(rt.bucket) * rt.width }

// Fired returns the total number of clock firings executed so far.
func (rt *Runtime) Fired() int64 { return rt.fired }

// Stats returns a copy of the traffic counters; Rounds counts buckets.
func (rt *Runtime) Stats() simnet.Stats { return rt.stats }

// makeEmit builds shard sh's emission callback: stamp the sender, compute
// the arrival bucket from the current event time plus the flight latency,
// and record the message in the matching per-(shard, Δbucket) chunk.
// Arrivals always land at least one bucket ahead (the bucket boundary is
// the latency quantum); the upper clamp only guards float boundary noise
// and is counted in Stats.Clamped.
func (rt *Runtime) makeEmit(sh *shard) func(simnet.Message) {
	return func(m simnet.Message) {
		m.From = sh.sender
		if m.To < 0 || m.To >= rt.n {
			sh.dropped++
			return
		}
		db := int((sh.now+rt.latency)/rt.width) - rt.bucket
		if db < 1 {
			db = 1
		}
		if db > rt.maxDelta {
			db = rt.maxDelta
			sh.clamped++
		}
		sh.sent++
		sh.byKind[m.Kind]++
		rt.outbox.RecordTo(sh.w, db, m)
	}
}

// fanOut runs f(w) for every shard; the barriers on both sides are the only
// synchronization in the runtime.
func (rt *Runtime) fanOut(f func(w int)) {
	par.Do(rt.shards, f)
}

// fanOutSpan is fanOut with each shard's work recorded as a phase span in
// the shard's private arena. With no observer it is exactly fanOut — the
// disabled path costs one nil check per phase.
func (rt *Runtime) fanOutSpan(p obs.Phase, f func(w int)) {
	if rt.arenas == nil {
		rt.fanOut(f)
		return
	}
	bucket := rt.bucket
	rt.fanOut(func(w int) {
		t0 := time.Now()
		f(w)
		rt.arenas[w].Record(bucket, p, t0)
	})
}

// bucketSample feeds the per-bucket gauges and merges the shard arenas into
// the track; called by the coordinator at the end of route, where the
// shards are quiescent. No-op without an observer.
func (rt *Runtime) bucketSample() {
	if rt.tr == nil {
		return
	}
	rt.gSent.Sample(rt.bucket, rt.stats.Sent)
	rt.gDropped.Sample(rt.bucket, rt.stats.Dropped)
	rt.gClamped.Sample(rt.bucket, rt.stats.Clamped)
	rt.gFired.Sample(rt.bucket, rt.fired)
	depth := 0
	for _, s := range rt.slots {
		depth += len(s)
	}
	rt.gQueue.Sample(rt.bucket, int64(depth))
	rt.gScratch.Sample(rt.bucket, rt.scratchBytes())
	rt.tr.Barrier()
}

// scratchBytes estimates the runtime's reusable buffer footprint: the
// calendar ring, the delivered view and the offset table.
func (rt *Runtime) scratchBytes() int64 {
	const msgBytes = int64(unsafe.Sizeof(simnet.Message{}))
	b := int64(cap(rt.sorted))*msgBytes + int64(cap(rt.sortedIdx))*4 + int64(cap(rt.inOff))*4
	for _, s := range rt.slots {
		b += int64(cap(s)) * msgBytes
	}
	return b
}

// RunBuckets executes the given number of calendar buckets and returns the
// cumulative traffic statistics. It may be called repeatedly; in-flight
// messages and pending firings carry over between calls.
func (rt *Runtime) RunBuckets(buckets int) simnet.Stats {
	for b := 0; b < buckets; b++ {
		rt.deliver()
		rt.stepAll()
		rt.route()
		rt.bucket++
		rt.stats.Rounds++
	}
	return rt.stats
}

// Inbox returns the messages delivered to peer i in the bucket RunBuckets
// executed last, for post-run inspection. Valid until the next RunBuckets.
func (rt *Runtime) Inbox(i int) []simnet.Message {
	return rt.sorted[rt.inOff[i]:rt.inOff[i+1]]
}

// deliver counting-sorts the calendar slot opening this bucket by
// destination on the owner-range exchange: record per-owner chunks, serial
// prefix, per-owner Fill + gather — the exact delivery kernel of the live
// runtime, with buckets in place of rounds.
func (rt *Runtime) deliver() {
	slot := rt.bucket % (rt.maxDelta + 1)
	buf := rt.slots[slot]
	if len(buf) == 0 {
		rt.sorted = rt.sorted[:0]
		for i := range rt.inOff {
			rt.inOff[i] = 0
		}
		return
	}

	bufPart := exch.Partition{N: len(buf), Parts: rt.shards}
	rt.fanOutSpan(obs.PhaseDeliver, func(w int) {
		rt.inbox.ClearWorker(w)
		lo, hi := bufPart.Range(w)
		for k := lo; k < hi; k++ {
			rt.inbox.Record(w, int32(buf[k].To), int32(k))
		}
	})
	rt.inbox.Prefix()

	if cap(rt.sorted) < len(buf) {
		rt.sorted = make([]simnet.Message, len(buf))
		rt.sortedIdx = make([]int32, len(buf))
	}
	rt.sorted = rt.sorted[:len(buf)]
	rt.sortedIdx = rt.sortedIdx[:len(buf)]
	rt.fanOutSpan(obs.PhaseDeliver, func(o int) {
		end := rt.inbox.Fill(o, rt.inOff, rt.sortedIdx)
		for j := rt.inbox.Base(o); j < end; j++ {
			rt.sorted[j] = buf[rt.sortedIdx[j]]
		}
	})
	rt.inOff[rt.n] = int32(len(buf))
	rt.slots[slot] = buf[:0]
}

// stepAll advances every peer through the current bucket: shard w walks its
// peer range in ascending order; each peer absorbs its arrivals (canonical
// order, timed from the bucket boundary), then replays its clock firings
// that fall inside the bucket in time order, drawing each firing's
// randomness — and the gap to the next firing — from the firing's private
// derived stream. Concatenating the shards' emissions in shard order
// therefore yields global (peer, firing) scan order, the canonical order
// the delivery sort preserves.
func (rt *Runtime) stepAll() {
	bStart := float64(rt.bucket) * rt.width
	bEnd := bStart + rt.width
	rt.fanOutSpan(obs.PhaseStep, func(w int) {
		sh := &rt.sh[w]
		lo, hi := rt.part.Range(w)
		for i := lo; i < hi; i++ {
			sh.sender = i
			if rt.recv != nil {
				sh.now = bStart
				for _, m := range rt.sorted[rt.inOff[i]:rt.inOff[i+1]] {
					rt.recv(i, m, sh.emit)
				}
			}
			for rt.nextFire[i] < bEnd {
				t := rt.nextFire[i]
				k := rt.fireIdx[i]
				sh.now = t
				sh.src.node = i
				rt.fire(i, int(k), t, sh.stream, sh.emit)
				sh.fired++
				rt.fireIdx[i] = k + 1
				rt.states[i].Seed(rng.Derive(rt.seed, rng.DomainAsyncFire, uint64(i), k+1))
				rt.nextFire[i] = t + sh.stream.ExpFloat64()/rt.rates[i]
			}
		}
	})
}

// route hands the shards' per-Δbucket chunks off to the future calendar
// slots in parallel: SetBase assigns every shard a disjoint range of each
// slot, Flush copies concurrently, preserving the shard-order concatenation
// the determinism contract rests on; then the traffic counters merge.
func (rt *Runtime) route() {
	ring := rt.maxDelta + 1
	work := false
	for d := 1; d <= rt.maxDelta; d++ {
		slot := (rt.bucket + d) % ring
		base := len(rt.slots[slot])
		acc := rt.outbox.SetBase(d, base)
		if acc == base {
			continue
		}
		work = true
		rt.slots[slot] = growMessages(rt.slots[slot], acc)
	}
	if work {
		rt.fanOutSpan(obs.PhaseRoute, func(w int) {
			for d := 1; d <= rt.maxDelta; d++ {
				slot := (rt.bucket + d) % ring
				rt.outbox.Flush(w, d, rt.slots[slot])
			}
		})
	}
	for w := range rt.sh {
		sh := &rt.sh[w]
		rt.stats.Sent += sh.sent
		rt.stats.Dropped += sh.dropped
		rt.stats.Clamped += sh.clamped
		rt.fired += sh.fired
		sh.sent, sh.dropped, sh.clamped, sh.fired = 0, 0, 0, 0
		for k, c := range sh.byKind {
			if c != 0 {
				rt.stats.ByKind[k] += c
				sh.byKind[k] = 0
			}
		}
	}
	rt.bucketSample()
}

// growMessages returns s resliced to length size, preserving its contents
// and reallocating (with append-style headroom) only when needed.
func growMessages(s []simnet.Message, size int) []simnet.Message {
	if cap(s) >= size {
		return s[:size]
	}
	ns := make([]simnet.Message, size, max(size, 2*cap(s)))
	copy(ns, s)
	return ns
}
