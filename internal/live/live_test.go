package live

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/simnet"
)

// chatterState is a synthetic protocol for engine tests: every peer sends
// fan messages to random destinations each round and folds every received
// message — order-sensitively — into a per-peer digest, so any difference
// in delivery content or order changes the final digest.
type chatterState struct {
	n      int
	fan    int
	digest []uint64
	recv   []int
}

func newChatter(n, fan int) *chatterState {
	return &chatterState{n: n, fan: fan, digest: make([]uint64, n), recv: make([]int, n)}
}

func (c *chatterState) step(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
	for _, m := range inbox {
		c.recv[node]++
		h := c.digest[node]
		h = h*1099511628211 + uint64(m.From)
		h = h*1099511628211 + uint64(m.A)
		c.digest[node] = h
	}
	for k := 0; k < c.fan; k++ {
		emit(simnet.Message{To: s.Intn(c.n), Kind: 1, A: int64(round)})
	}
}

func (c *chatterState) combined() uint64 {
	h := uint64(14695981039346656037)
	for _, d := range c.digest {
		h = h*1099511628211 + d
	}
	return h
}

func TestNewValidation(t *testing.T) {
	step := func(int, int, []simnet.Message, *rng.Stream, func(simnet.Message)) {}
	if _, err := New(Config{N: 0, Step: step}); err == nil {
		t.Error("accepted n = 0")
	}
	if _, err := New(Config{N: 4}); err == nil {
		t.Error("accepted nil step")
	}
	if _, err := New(Config{N: 4, Step: step, Shards: -1}); err == nil {
		t.Error("accepted negative shards")
	}
	for _, net := range []NetModel{
		FixedLatency{Rounds: 0},
		GeomLatency{P: 0, Cap: 4},
		GeomLatency{P: 0.5, Cap: 0},
		Loss{P: 1},
		Loss{P: -0.1},
		EpochChurn{Epoch: 0, DownFrac: 0.1},
		EpochChurn{Epoch: 3, DownFrac: 1},
		Loss{P: 0.1, Under: FixedLatency{Rounds: 0}},
		RingLatency{Pos: UniformRing(4, 1), Scale: 2, Max: 0},
		RingLatency{Pos: UniformRing(4, 1), Scale: -1, Max: 3},
		RingLatency{Pos: UniformRing(2, 1), Scale: 2, Max: 3}, // embedding smaller than n
	} {
		if _, err := New(Config{N: 4, Step: step, Net: net}); err == nil {
			t.Errorf("accepted invalid net model %#v", net)
		}
	}
}

func TestShardCountBitIdentity(t *testing.T) {
	// The runtime's headline property: (n, seed, step, net) fully determine
	// the run; the shard count is invisible. Exercised across every model
	// family, including the randomized ones whose decisions ride on the
	// per-(round, sender) derived streams.
	const n, rounds = 3000, 12
	models := map[string]NetModel{
		"sync":    nil,
		"fixed":   FixedLatency{Rounds: 3},
		"geom":    GeomLatency{P: 0.6, Cap: 5},
		"loss":    Loss{P: 0.2},
		"churn":   EpochChurn{Seed: 9, Epoch: 4, DownFrac: 0.3},
		"composn": Loss{P: 0.1, Under: GeomLatency{P: 0.5, Cap: 3}},
		"ring":    RingLatency{Pos: UniformRing(n, 13), Scale: 6, Max: 4},
	}
	for name, net := range models {
		t.Run(name, func(t *testing.T) {
			type outcome struct {
				digest uint64
				stats  simnet.Stats
			}
			var ref outcome
			for _, shards := range []int{1, 2, 4, 8} {
				st := newChatter(n, 2)
				rt, err := New(Config{N: n, Seed: 42, Step: st.step, Shards: shards, Net: net})
				if err != nil {
					t.Fatal(err)
				}
				stats := rt.Run(rounds)
				got := outcome{digest: st.combined(), stats: stats}
				if shards == 1 {
					ref = got
					continue
				}
				if got != ref {
					t.Fatalf("shards=%d diverged from shards=1:\n  %+v\nvs %+v", shards, got, ref)
				}
			}
			if ref.stats.Sent == 0 {
				t.Fatal("no traffic at all")
			}
		})
	}
}

func TestMatchesGoroutineEngine(t *testing.T) {
	// Under the perfect-sync model, the sharded runtime is bit-identical to
	// the goroutine-per-peer simnet.Live engine when both draw from the
	// same per-peer streams: same digests, same traffic counters.
	const n, rounds, seed = 500, 10, 7

	shardSt := newChatter(n, 2)
	rt, err := New(Config{N: n, Seed: seed, Step: shardSt.step, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	shardStats := rt.Run(rounds)

	legacySt := newChatter(n, 2)
	streams := make([]*rng.Stream, n)
	for i := range streams {
		streams[i] = rng.New(PeerSeed(seed, i))
	}
	eng, err := simnet.NewLiveWithStreams(streams, func(node, round int, inbox []simnet.Message, s *rng.Stream) []simnet.Message {
		var out []simnet.Message
		legacySt.step(node, round, inbox, s, func(m simnet.Message) { out = append(out, m) })
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	legacyStats := eng.Run(rounds)
	// The sharded runtime has one round of messages still in flight that
	// simnet.Live also leaves in its mailboxes; counters must agree exactly.
	if shardStats != legacyStats {
		t.Fatalf("stats diverge:\nsharded %+v\nlegacy  %+v", shardStats, legacyStats)
	}
	if shardSt.combined() != legacySt.combined() {
		t.Fatal("delivery digests diverge between sharded runtime and goroutine engine")
	}
}

func TestFixedLatencyDelaysDelivery(t *testing.T) {
	// A message emitted in round r under FixedLatency{D} arrives at the
	// start of round r+D, and not before.
	const d = 3
	arrived := -1
	step := func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
		if node == 1 && len(inbox) > 0 && arrived == -1 {
			arrived = round
		}
		if node == 0 && round == 0 {
			emit(simnet.Message{To: 1, Kind: 1})
		}
	}
	rt, err := New(Config{N: 2, Seed: 1, Step: step, Net: FixedLatency{Rounds: d}})
	if err != nil {
		t.Fatal(err)
	}
	stats := rt.Run(d + 2)
	if arrived != d {
		t.Fatalf("message sent in round 0 arrived in round %d, want %d", arrived, d)
	}
	if stats.Sent != 1 || stats.Dropped != 0 {
		t.Fatalf("unexpected traffic: %+v", stats)
	}
}

func TestLossDropsExpectedFraction(t *testing.T) {
	const n, rounds, fan = 200, 30, 5
	st := newChatter(n, fan)
	rt, err := New(Config{N: n, Seed: 3, Step: st.step, Shards: 2, Net: Loss{P: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	stats := rt.Run(rounds)
	emitted := stats.Sent + stats.Dropped
	if emitted != int64(n*rounds*fan) {
		t.Fatalf("emitted %d, want %d", emitted, n*rounds*fan)
	}
	frac := float64(stats.Dropped) / float64(emitted)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("dropped fraction %.3f far from 0.3", frac)
	}
}

func TestEpochChurnIsCorrelated(t *testing.T) {
	churn := EpochChurn{Seed: 5, Epoch: 8, DownFrac: 0.4}
	const n = 400
	// Down-ness is constant within an epoch and roughly DownFrac on average.
	down := 0
	for p := 0; p < n; p++ {
		for r := 1; r < churn.Epoch; r++ {
			if churn.Down(r, p) != churn.Down(0, p) {
				t.Fatalf("peer %d flipped down-ness mid-epoch", p)
			}
		}
		if churn.Down(0, p) {
			down++
		}
	}
	if down < n/4 || down > 11*n/20 {
		t.Fatalf("%d/%d peers down, want about %.0f", down, n, churn.DownFrac*float64(n))
	}

	// On the runtime: within the first epoch, a peer receives messages iff
	// neither it nor its (fixed) sender is down — all-or-nothing, the
	// signature of correlated loss.
	st := newChatter(n, 0)
	ring := func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
		st.step(node, round, inbox, s, emit)
		emit(simnet.Message{To: (node + 1) % n, Kind: 1})
	}
	rt, err := New(Config{N: n, Seed: 6, Step: ring, Shards: 2, Net: churn})
	if err != nil {
		t.Fatal(err)
	}
	rounds := churn.Epoch - 1 // stay within epoch 0; last sends undelivered
	rt.Run(rounds)
	for p := 0; p < n; p++ {
		sender := (p - 1 + n) % n
		want := 0
		if !churn.Down(0, p) && !churn.Down(0, sender) {
			want = rounds - 1
		}
		if st.recv[p] != want {
			t.Fatalf("peer %d received %d messages, want %d (down=%v, sender down=%v)",
				p, st.recv[p], want, churn.Down(0, p), churn.Down(0, sender))
		}
	}
}

func TestGeomLatencyTailIsCapped(t *testing.T) {
	// All mass beyond Cap lands on Cap: nothing is lost, everything arrives
	// within Cap rounds of being sent.
	const n, rounds = 100, 20
	st := newChatter(n, 3)
	rt, err := New(Config{N: n, Seed: 11, Step: st.step, Shards: 2, Net: GeomLatency{P: 0.4, Cap: 4}})
	if err != nil {
		t.Fatal(err)
	}
	stats := rt.Run(rounds)
	if stats.Dropped != 0 {
		t.Fatalf("geometric latency dropped %d messages", stats.Dropped)
	}
	if stats.Sent != int64(n*rounds*3) {
		t.Fatalf("sent %d, want %d", stats.Sent, n*rounds*3)
	}
}

func TestOverlappingRuntimes(t *testing.T) {
	// Two sharded runtimes running concurrently must not interfere — the
	// -race build of this test is the live-runtime race check.
	run := func() uint64 {
		st := newChatter(600, 2)
		rt, err := New(Config{N: 600, Seed: 21, Step: st.step, Shards: 4})
		if err != nil {
			t.Error(err)
			return 0
		}
		rt.Run(8)
		return st.combined()
	}
	var wg sync.WaitGroup
	digests := make([]uint64, 4)
	for i := range digests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			digests[i] = run()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(digests); i++ {
		if digests[i] != digests[0] {
			t.Fatalf("concurrent runtime %d diverged", i)
		}
	}
}

func TestRuntimeAccessors(t *testing.T) {
	st := newChatter(10, 1)
	rt, err := New(Config{N: 10, Seed: 1, Step: st.step, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rt.N() != 10 || rt.Shards() != 3 || rt.Round() != 0 {
		t.Fatalf("accessors: n=%d shards=%d round=%d", rt.N(), rt.Shards(), rt.Round())
	}
	rt.Run(2)
	if rt.Round() != 2 {
		t.Fatalf("round after Run(2): %d", rt.Round())
	}
	total := 0
	for i := 0; i < 10; i++ {
		total += len(rt.Inbox(i))
	}
	if total != 10 {
		t.Fatalf("inboxes of the last round hold %d messages, want 10", total)
	}
}

func TestDeliveryScratchPartitionsPeerRange(t *testing.T) {
	// The delivery sort's memory claim: the owner ranges of the inbox
	// exchange must partition [0, n) — so the per-owner count scratch
	// (allocated by exch.Fill to cover exactly its owner's range) totals
	// O(n), rather than every shard holding a length-n array (the
	// pre-kernel O(shards·n) layout).
	st := newChatter(1000, 1)
	for _, shards := range []int{1, 2, 4, 8} {
		rt, err := New(Config{N: 1000, Seed: 1, Step: st.step, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for w := 0; w < rt.shards; w++ {
			lo, hi := rt.part.Range(w)
			if lo != total {
				t.Fatalf("shards=%d: owner %d range starts at %d, want %d", shards, w, lo, total)
			}
			total = hi
		}
		if total != rt.n {
			t.Fatalf("shards=%d: owner ranges cover %d ids, want exactly n=%d", shards, total, rt.n)
		}
	}
}

func TestShardsClampedToN(t *testing.T) {
	st := newChatter(3, 1)
	rt, err := New(Config{N: 3, Seed: 1, Step: st.step, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Shards() != 3 {
		t.Fatalf("shards not clamped: %d", rt.Shards())
	}
	rt.Run(3)
}

func ExampleRuntime() {
	// Three peers flood-fill a token: whoever holds it forwards it to the
	// next peer. Six rounds pass it all the way around twice.
	holder := []bool{true, false, false}
	step := func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
		for range inbox {
			holder[node] = true
		}
		if holder[node] {
			holder[node] = false
			emit(simnet.Message{To: (node + 1) % 3, Kind: 1})
		}
	}
	rt, _ := New(Config{N: 3, Seed: 1, Step: step})
	stats := rt.Run(6)
	fmt.Println(stats.Sent, "messages")
	// Output: 6 messages
}

func TestShardValidation(t *testing.T) {
	// Shards semantics at the edges: negative is an error (0 is the
	// GOMAXPROCS default, so "less than one worker" is never what a negative
	// value means), zero selects GOMAXPROCS capped at n, and counts beyond n
	// clamp to n.
	step := func(int, int, []simnet.Message, *rng.Stream, func(simnet.Message)) {}
	for _, shards := range []int{-1, -8} {
		_, err := New(Config{N: 4, Step: step, Shards: shards})
		if err == nil {
			t.Fatalf("accepted shards=%d", shards)
		}
		if !strings.Contains(err.Error(), "non-negative") {
			t.Fatalf("shards=%d error does not state the constraint: %v", shards, err)
		}
	}
	rt, err := New(Config{N: 2, Step: step, Shards: 0})
	if err != nil {
		t.Fatal(err)
	}
	if want := min(runtime.GOMAXPROCS(0), 2); rt.Shards() != want {
		t.Fatalf("shards=0 selected %d workers, want min(GOMAXPROCS, n) = %d", rt.Shards(), want)
	}
	rt, err = New(Config{N: 3, Step: step, Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Shards() != 3 {
		t.Fatalf("shards=64 on n=3 kept %d workers, want 3", rt.Shards())
	}
}

// overpromise is a deliberately buggy NetModel: Plan returns a delay beyond
// its own MaxDelay. The runtime must deliver at MaxDelay and count each
// rewrite in Stats.Clamped rather than silently rewriting.
type overpromise struct{ cap, plan int }

func (o overpromise) Plan(int, simnet.Message, *rng.Stream) int { return o.plan }
func (o overpromise) MaxDelay() int                             { return o.cap }
func (overpromise) Random() bool                                { return false }

func TestPlanBeyondMaxDelayCountsClamps(t *testing.T) {
	// A model promising MaxDelay=2 but planning 7 behaves exactly like
	// FixedLatency{2} — same digests, same delivery schedule — except every
	// delivery is counted in Stats.Clamped, so the bug is observable.
	const n, rounds, fan = 300, 10, 2
	buggy := newChatter(n, fan)
	rt, err := New(Config{N: n, Seed: 8, Step: buggy.step, Shards: 2, Net: overpromise{cap: 2, plan: 7}})
	if err != nil {
		t.Fatal(err)
	}
	buggyStats := rt.Run(rounds)

	honest := newChatter(n, fan)
	rt2, err := New(Config{N: n, Seed: 8, Step: honest.step, Shards: 2, Net: FixedLatency{Rounds: 2}})
	if err != nil {
		t.Fatal(err)
	}
	honestStats := rt2.Run(rounds)

	if buggy.combined() != honest.combined() {
		t.Fatal("clamped over-promise model diverged from FixedLatency at the clamp value")
	}
	if buggyStats.Clamped != buggyStats.Sent || buggyStats.Sent == 0 {
		t.Fatalf("want every sent message counted as clamped, got %+v", buggyStats)
	}
	if honestStats.Clamped != 0 {
		t.Fatalf("well-formed model clamped %d messages", honestStats.Clamped)
	}
	buggyStats.Clamped = 0
	if buggyStats != honestStats {
		t.Fatalf("traffic diverged beyond the clamp counter:\nbuggy  %+v\nhonest %+v", buggyStats, honestStats)
	}
}

func TestInboxAfterPipelinedEmptyRounds(t *testing.T) {
	// The delivered view after rounds in which nothing was sent: Inbox must
	// report every peer empty — under both schedules, including immediately
	// after RunPipelined's fused delivery path — and a Run/RunPipelined
	// interleave on one runtime must expose the same view as a pure-Run twin.
	const n = 50
	quietAfter := func(st *chatterState) func(int, int, []simnet.Message, *rng.Stream, func(simnet.Message)) {
		return func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
			if round == 0 {
				st.step(node, round, inbox, s, emit)
			} else {
				st.step(node, round, inbox, s, func(simnet.Message) {})
			}
		}
	}

	check := func(name string, rt *Runtime) {
		total := 0
		for i := 0; i < n; i++ {
			total += len(rt.Inbox(i))
		}
		if total != 0 {
			t.Fatalf("%s: %d messages visible after an empty round", name, total)
		}
	}

	st1 := newChatter(n, 3)
	rt1, err := New(Config{N: n, Seed: 4, Step: quietAfter(st1), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt1.Run(5)
	check("Run", rt1)

	st2 := newChatter(n, 3)
	rt2, err := New(Config{N: n, Seed: 4, Step: quietAfter(st2), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt2.RunPipelined(5)
	check("RunPipelined", rt2)

	// Interleaving the schedules must not change state or view: compare
	// digests, stats and the final inboxes against the pure-Run runtime.
	st3 := newChatter(n, 3)
	rt3, err := New(Config{N: n, Seed: 4, Step: quietAfter(st3), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt3.Run(1)
	rt3.RunPipelined(3)
	stats := rt3.Run(1)
	check("interleaved", rt3)
	if st3.combined() != st1.combined() || stats != rt1.Stats() {
		t.Fatal("Run/RunPipelined interleave diverged from pure Run")
	}
	for i := 0; i < n; i++ {
		if len(rt3.Inbox(i)) != len(rt1.Inbox(i)) {
			t.Fatalf("inbox %d view differs between interleaved and pure Run", i)
		}
	}
}

func TestRunPipelinedBitIdentity(t *testing.T) {
	// RunPipelined fuses the delivery sort with the step phase; the fusion
	// must be a pure scheduling change — bit-identical digests, stats and
	// last-round inboxes at every shard count, across every model family,
	// and stable under interleaving with the unfused Run.
	const n, rounds = 2000, 12
	models := map[string]NetModel{
		"sync":  nil,
		"fixed": FixedLatency{Rounds: 3},
		"geom":  GeomLatency{P: 0.6, Cap: 5},
		"loss":  Loss{P: 0.2, Under: GeomLatency{P: 0.5, Cap: 3}},
		"churn": EpochChurn{Seed: 9, Epoch: 4, DownFrac: 0.3},
	}
	for name, net := range models {
		t.Run(name, func(t *testing.T) {
			refSt := newChatter(n, 2)
			ref, err := New(Config{N: n, Seed: 42, Step: refSt.step, Shards: 4, Net: net})
			if err != nil {
				t.Fatal(err)
			}
			refStats := ref.Run(rounds)
			for _, shards := range []int{1, 3, 8} {
				st := newChatter(n, 2)
				rt, err := New(Config{N: n, Seed: 42, Step: st.step, Shards: shards, Net: net})
				if err != nil {
					t.Fatal(err)
				}
				// Interleave the two schedules to prove they share state
				// cleanly: unfused prefix, pipelined middle, unfused tail.
				stats := rt.Run(2)
				stats = rt.RunPipelined(rounds - 4)
				stats = rt.Run(2)
				if st.combined() != refSt.combined() || stats != refStats {
					t.Fatalf("shards=%d: pipelined run diverged from Run (digest %x vs %x)",
						shards, st.combined(), refSt.combined())
				}
				for i := 0; i < n; i++ {
					a, b := ref.Inbox(i), rt.Inbox(i)
					if len(a) != len(b) {
						t.Fatalf("shards=%d: inbox %d length %d vs %d", shards, i, len(b), len(a))
					}
					for k := range a {
						if a[k] != b[k] {
							t.Fatalf("shards=%d: inbox %d message %d differs", shards, i, k)
						}
					}
				}
			}
			if refStats.Sent == 0 {
				t.Fatal("no traffic at all")
			}
		})
	}
}
