package live

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/simnet"
)

// Drop is the Plan return value for a message the network loses.
const Drop = -1

// NetModel decides the fate of every message the runtime routes: how many
// rounds it is in flight, or whether the network loses it. Plugging a model
// into Config.Net runs the *same* protocol step code under paper-faithful
// or realistic network conditions.
//
// Determinism contract: Plan is called once per message, in emission order,
// with From/To already set. When Random() is true, s is a private stream
// seeded rng.Derive(runtime seed, netDomain, round, sender) — whichever
// shard owns the sender derives the same stream, so delivery decisions are
// bit-identical for every shard count. When Random() is false, s is nil and
// Plan must be a pure function of (round, m).
type NetModel interface {
	// Plan returns the number of rounds the message is in flight (>= 1;
	// 1 reproduces the synchronous model: sent in round r, delivered at the
	// start of round r+1), or Drop if the network loses it. Values above
	// MaxDelay mean Plan and MaxDelay disagree — a model bug: the runtime
	// delivers such messages at MaxDelay and counts each rewrite in
	// Stats.Clamped, so a well-formed model always runs with Clamped == 0.
	Plan(round int, m simnet.Message, s *rng.Stream) int
	// MaxDelay bounds Plan's return value; the runtime sizes its delivery
	// ring with it. Must be >= 1.
	MaxDelay() int
	// Random reports whether Plan draws from s. Models that return false
	// skip the per-sender stream derivation entirely (the perfect-sync hot
	// path pays nothing for the pluggable interface).
	Random() bool
}

// Sync is the paper's model: every message sent in round r is delivered at
// the start of round r+1, nothing is lost. The zero NetModel (Config.Net ==
// nil) is Sync.
type Sync struct{}

// Plan implements NetModel.
func (Sync) Plan(int, simnet.Message, *rng.Stream) int { return 1 }

// MaxDelay implements NetModel.
func (Sync) MaxDelay() int { return 1 }

// Random implements NetModel.
func (Sync) Random() bool { return false }

// FixedLatency delivers every message after exactly Rounds rounds: the
// network is reliable but each hop takes a constant multiple of the round
// length. Rounds == 1 is Sync.
type FixedLatency struct {
	Rounds int // in-flight rounds per message, >= 1
}

// Plan implements NetModel.
func (f FixedLatency) Plan(int, simnet.Message, *rng.Stream) int { return f.Rounds }

// MaxDelay implements NetModel.
func (f FixedLatency) MaxDelay() int { return f.Rounds }

// Random implements NetModel.
func (FixedLatency) Random() bool { return false }

// GeomLatency gives each message an independent geometric flight time: it
// arrives after round k with probability P*(1-P)^(k-1), modeling memoryless
// per-message jitter (the asynchronous-gossip latency model). Cap bounds the
// tail so the delivery ring stays small; the lost probability mass goes to
// delay Cap, not to drops.
type GeomLatency struct {
	P   float64 // per-round arrival probability, in (0, 1]
	Cap int     // largest delay, >= 1
}

// Plan implements NetModel.
func (g GeomLatency) Plan(_ int, _ simnet.Message, s *rng.Stream) int {
	d := 1
	for d < g.Cap && !s.Bernoulli(g.P) {
		d++
	}
	return d
}

// MaxDelay implements NetModel.
func (g GeomLatency) MaxDelay() int { return g.Cap }

// Random implements NetModel.
func (GeomLatency) Random() bool { return true }

// Loss drops each message independently with probability P and otherwise
// defers to Under (nil = Sync). Composing Loss{P, GeomLatency{...}} yields
// the classical lossy asynchronous network.
type Loss struct {
	P     float64 // iid drop probability, in [0, 1)
	Under NetModel
}

func (l Loss) under() NetModel {
	if l.Under == nil {
		return Sync{}
	}
	return l.Under
}

// Plan implements NetModel.
func (l Loss) Plan(round int, m simnet.Message, s *rng.Stream) int {
	if s.Bernoulli(l.P) {
		return Drop
	}
	return l.under().Plan(round, m, s)
}

// MaxDelay implements NetModel.
func (l Loss) MaxDelay() int { return l.under().MaxDelay() }

// Random implements NetModel.
func (Loss) Random() bool { return true }

// EpochChurn models correlated failures, the overlay-churn regime of the
// dynamic-DHT experiments: time is cut into epochs of Epoch rounds, and in
// each epoch every peer is independently down with probability DownFrac —
// for the *whole* epoch. Every message to or from a down peer is lost, so
// losses cluster per peer (a down rendezvous loses all its offers at once),
// unlike the iid Loss model. Down-ness is decided by hashing (Seed, epoch,
// peer) with the repository's Derive scheme: no state, no randomness drawn
// from the sender stream, identical on every shard layout.
type EpochChurn struct {
	Seed     uint64  // churn process seed, independent of the runtime seed
	Epoch    int     // rounds per epoch, >= 1
	DownFrac float64 // probability a peer is down for a given epoch, in [0, 1)
	Under    NetModel
}

func (c EpochChurn) under() NetModel {
	if c.Under == nil {
		return Sync{}
	}
	return c.Under
}

// Down reports whether peer is down during the epoch containing round.
func (c EpochChurn) Down(round, peer int) bool {
	if c.DownFrac <= 0 {
		return false
	}
	epoch := uint64(round / c.Epoch)
	threshold := uint64(c.DownFrac * float64(1<<63) * 2)
	return rng.Derive(c.Seed, churnDomain, epoch, uint64(peer)) < threshold
}

// Plan implements NetModel.
func (c EpochChurn) Plan(round int, m simnet.Message, s *rng.Stream) int {
	if c.Down(round, m.From) || c.Down(round, m.To) {
		return Drop
	}
	return c.under().Plan(round, m, s)
}

// MaxDelay implements NetModel.
func (c EpochChurn) MaxDelay() int { return c.under().MaxDelay() }

// Random implements NetModel.
func (c EpochChurn) Random() bool { return c.under().Random() }

// RingLatency is the worked NetModel-asymmetry example: per-pair message
// latency proportional to ring distance in a DHT-style embedding. Peer i
// sits at position Pos[i] on the unit ring (the Section 4 overlay's
// coordinate space, or any embedding of the physical topology), and a
// message from i to j is in flight for
//
//	1 + floor(arc(i, j) * Scale)
//
// rounds, where arc is the shorter arc between the two positions (in
// [0, 1/2]), clamped to Max. Nearby peers talk at the synchronous round
// rate; antipodal peers pay up to Max rounds — so unlike the symmetric
// models above, *which* rendezvous a request lands on decides how fast the
// handshake completes. Plan is a pure function of (From, To): no randomness
// is drawn, and runs stay bit-identical for every shard count.
type RingLatency struct {
	// Pos holds every peer's ring position in [0, 1); len(Pos) must cover
	// the runtime's peer count.
	Pos []float64
	// Scale converts arc distance to rounds of flight time: a message
	// travelling the maximal arc of 1/2 takes 1 + floor(Scale/2) rounds
	// before clamping.
	Scale float64
	// Max caps the delay (and sizes the runtime's delivery ring), >= 1.
	Max int
}

// Plan implements NetModel.
func (r RingLatency) Plan(_ int, m simnet.Message, _ *rng.Stream) int {
	arc := r.Pos[m.From] - r.Pos[m.To]
	if arc < 0 {
		arc = -arc
	}
	if arc > 0.5 {
		arc = 1 - arc
	}
	d := 1 + int(arc*r.Scale)
	if d > r.Max {
		d = r.Max
	}
	return d
}

// MaxDelay implements NetModel.
func (r RingLatency) MaxDelay() int { return r.Max }

// Random implements NetModel.
func (RingLatency) Random() bool { return false }

// UniformRing embeds n peers at independent uniform positions on the unit
// ring, derived from seed with the repository's scheme — the standard
// embedding for RingLatency when no real overlay coordinates exist.
func UniformRing(n int, seed uint64) []float64 {
	s := rng.New(rng.Derive(seed, ringDomain))
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = s.Float64()
	}
	return pos
}

// validateNet rejects models the runtime cannot schedule; n is the peer
// count, for models whose parameters are per-peer.
func validateNet(net NetModel, n int) error {
	if net.MaxDelay() < 1 {
		return fmt.Errorf("live: net model MaxDelay %d < 1", net.MaxDelay())
	}
	switch m := net.(type) {
	case FixedLatency:
		if m.Rounds < 1 {
			return fmt.Errorf("live: FixedLatency.Rounds %d < 1", m.Rounds)
		}
	case GeomLatency:
		if m.P <= 0 || m.P > 1 {
			return fmt.Errorf("live: GeomLatency.P %v outside (0, 1]", m.P)
		}
		if m.Cap < 1 {
			return fmt.Errorf("live: GeomLatency.Cap %d < 1", m.Cap)
		}
	case Loss:
		if m.P < 0 || m.P >= 1 {
			return fmt.Errorf("live: Loss.P %v outside [0, 1)", m.P)
		}
		if m.Under != nil {
			return validateNet(m.Under, n)
		}
	case EpochChurn:
		if m.Epoch < 1 {
			return fmt.Errorf("live: EpochChurn.Epoch %d < 1", m.Epoch)
		}
		if m.DownFrac < 0 || m.DownFrac >= 1 {
			return fmt.Errorf("live: EpochChurn.DownFrac %v outside [0, 1)", m.DownFrac)
		}
		if m.Under != nil {
			return validateNet(m.Under, n)
		}
	case RingLatency:
		if m.Max < 1 {
			return fmt.Errorf("live: RingLatency.Max %d < 1", m.Max)
		}
		if m.Scale < 0 {
			return fmt.Errorf("live: RingLatency.Scale %v negative", m.Scale)
		}
		if len(m.Pos) < n {
			return fmt.Errorf("live: RingLatency embeds %d peers, runtime has %d", len(m.Pos), n)
		}
	}
	return nil
}
