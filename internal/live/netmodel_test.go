package live

import (
	"testing"

	"repro/internal/simnet"
)

func TestRingLatencyDistanceAsymmetry(t *testing.T) {
	// Four peers pinned on the ring: 0 and 1 adjacent, 2 near the far side,
	// 3 just past the antipode of 0 (arc measured the short way around).
	pos := []float64{0.00, 0.05, 0.45, 0.60}
	m := RingLatency{Pos: pos, Scale: 8, Max: 4}

	msg := func(from, to int) simnet.Message { return simnet.Message{From: from, To: to} }
	if d := m.Plan(0, msg(0, 1), nil); d != 1 {
		t.Fatalf("adjacent peers: delay %d, want 1 (sync rate)", d)
	}
	if near, far := m.Plan(0, msg(0, 1), nil), m.Plan(0, msg(0, 2), nil); far <= near {
		t.Fatalf("far pair (%d) not slower than near pair (%d)", far, near)
	}
	// Clamping: arc 0.45 * scale 8 = 3.6 -> 1+3 = 4; arc 0.40 (0->3 short
	// way) * 8 = 3.2 -> 1+3 = 4, both at the cap.
	if d := m.Plan(0, msg(0, 2), nil); d != m.Max {
		t.Fatalf("near-antipodal delay %d, want the cap %d", d, m.Max)
	}
	// Symmetry of the arc itself: i->j and j->i ride the same distance.
	if m.Plan(0, msg(2, 0), nil) != m.Plan(0, msg(0, 2), nil) {
		t.Fatal("arc distance is direction-dependent")
	}
	// The short arc is used: 0 -> 3 is 0.40 around the short way, not 0.60.
	if d := m.Plan(0, msg(0, 3), nil); d != 4 {
		t.Fatalf("short-arc delay %d, want 4 (arc 0.40 at scale 8)", d)
	}
	if m.Random() {
		t.Fatal("RingLatency claims to draw randomness")
	}
}

func TestUniformRingDeterministic(t *testing.T) {
	a := UniformRing(100, 7)
	b := UniformRing(100, 7)
	c := UniformRing(100, 8)
	if len(a) != 100 {
		t.Fatalf("got %d positions", len(a))
	}
	distinct := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("UniformRing is not a pure function of (n, seed)")
		}
		if a[i] < 0 || a[i] >= 1 {
			t.Fatalf("position %v outside [0, 1)", a[i])
		}
		if a[i] != c[i] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("different seeds produced the identical embedding")
	}
}

func TestRingLatencySlowsSpread(t *testing.T) {
	// A full chatter run under ring latency must deliver everything it
	// sends (latency never drops), just later; and the per-pair asymmetry
	// must actually bite: with scale 8 over a 1/2-max arc some messages
	// take multiple rounds, so fewer arrive within the horizon than under
	// sync even though none are lost.
	const n, rounds = 400, 10
	run := func(net NetModel) (stats simnet.Stats, recv int64) {
		st := newChatter(n, 2)
		rt, err := New(Config{N: n, Seed: 3, Step: st.step, Shards: 2, Net: net})
		if err != nil {
			t.Fatal(err)
		}
		stats = rt.Run(rounds)
		for _, r := range st.recv {
			recv += int64(r)
		}
		return stats, recv
	}
	syncStats, syncRecv := run(nil)
	ringStats, ringRecv := run(RingLatency{Pos: UniformRing(n, 5), Scale: 8, Max: 6})
	if syncStats.Sent == 0 || ringStats.Sent == 0 {
		t.Fatal("no traffic")
	}
	if ringRecv >= syncRecv {
		t.Fatalf("ring latency did not defer deliveries: %d received vs %d under sync", ringRecv, syncRecv)
	}
	// Latency is not loss: the model never drops a message (the undelivered
	// remainder is still in flight in the delivery ring).
	if ringStats.Dropped != syncStats.Dropped {
		t.Fatalf("ring latency dropped messages: %d vs %d under sync", ringStats.Dropped, syncStats.Dropped)
	}
}
