// Package live is the sharded message-level runtime: it executes the same
// per-peer protocol step functions as the simnet engines, but scales to
// millions of peers by replacing goroutine-per-peer execution with a fixed
// set of shard workers and flat, reusable message buffers.
//
// # Architecture
//
// The runtime splits the peer id space into Shards contiguous ranges, one
// per worker; each shard also *owns* its range as a destination range. Each
// round proceeds in three phases:
//
//	deliver  the messages due this round are counting-sorted by destination
//	         into one flat buffer on the owner-range exchange kernel of
//	         internal/exch: each shard splits its contiguous chunk of the
//	         slot into per-owner (destination, index) chunks, exch.Prefix
//	         assigns base offsets with a tiny serial pass over owner totals,
//	         and each owner exch.Fill-sorts its own peer range (count array
//	         covering only that range, stable) — so peer i's inbox is the
//	         contiguous slice flat[off[i]:off[i+1]], and delivery scratch is
//	         O(n + messages) instead of one length-n count array per shard;
//	step     each shard worker walks its peer range in order, invoking the
//	         StepFunc with the peer's inbox and private stream; emitted
//	         messages are planned by the NetModel and recorded in the
//	         per-(shard, delay) chunks of a second, concat-form exchange;
//	route    per-(shard, delay) chunk lengths are known after the step
//	         phase, so exch.SetBase assigns each shard a disjoint range of
//	         every due delivery-ring slot and the shards exch.Flush their
//	         chunks in parallel (same shard-order concatenation as the old
//	         serial append pass); traffic counters are merged.
//
// RunPipelined removes one of the three barriers: because each owner's
// destination range is exactly its own peer range, owner o can step its
// peers the moment its Fill returns, without waiting for the other owners'
// sorts — deliver's fill and the step phase fuse into one fanout (Fill
// returns the owner's end offset precisely so the last peer's inbox can be
// bounded without reading the offset a neighbouring owner is still
// writing). Emission already overlaps stepping by construction, so a
// pipelined round runs record → fill+step → route flush.
//
// # Determinism
//
// A run is a pure function of (n, seed, step, net model) — the shard count
// and the pipelined flag are invisible. Three properties make that hold:
//
//   - Peer randomness: peer i draws from a stream seeded
//     rng.Derive(seed, peerDomain, i), stored as a flat xoshiro state array;
//     only the shard owning peer i ever advances state i.
//   - Network randomness: a NetModel that consumes randomness gets a stream
//     seeded rng.Derive(seed, netDomain, round, sender), re-derived at each
//     sender's first emission of the round; decisions depend on the message
//     sequence, never the worker.
//   - Message order: shards own contiguous ascending peer ranges and walk
//     them in order, so concatenating shard chunks in shard order yields
//     global sender order; the delivery sort is stable, so every inbox is
//     in canonical (send round, sender, emission index) order — the exact
//     order the goroutine-per-peer simnet.Live engine produces.
//
// The runtime is therefore bit-identical to a sequential run for any shard
// count, and — under the Sync model, with identical per-peer streams — to
// simnet.Live itself. The test suite pins both properties, and pins
// RunPipelined against Run.
package live

import (
	"fmt"
	"runtime"
	"time"
	"unsafe"

	"repro/internal/exch"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// Seed-derivation domains, keeping the runtime's stream families disjoint.
const (
	peerDomain  uint64 = 0x91 // per-peer protocol streams
	netDomain   uint64 = 0x92 // per-(round, sender) network-model streams
	churnDomain uint64 = 0x93 // EpochChurn's (epoch, peer) down-ness hash
	ringDomain  uint64 = 0x94 // UniformRing's embedding positions
)

// PeerSeed returns the seed of peer i's private stream in a runtime rooted
// at seed. Exposed so tests can replay a runtime's exact randomness on the
// legacy engines.
func PeerSeed(seed uint64, i int) uint64 {
	return rng.Derive(seed, peerDomain, uint64(i))
}

// StepFunc is one peer's behavior for one round: given its id, the round
// number, and the messages delivered to it, it emits the messages it wants
// to send (From is stamped by the runtime). The provided stream is the
// peer's private randomness. A StepFunc may keep per-peer protocol state
// indexed by node, but must not touch any shared state: peers of different
// shards run concurrently. The emit-callback shape (instead of returning a
// slice, as simnet.StepFunc does) lets the runtime route messages without a
// per-peer allocation; Adapt converts a simnet.StepFunc.
type StepFunc func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message))

// Adapt wraps a slice-returning simnet.StepFunc as a StepFunc, so protocol
// code written for the legacy engines runs on the sharded runtime unchanged.
func Adapt(step simnet.StepFunc) StepFunc {
	return func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
		for _, m := range step(node, round, inbox, s) {
			emit(m)
		}
	}
}

// Config parameterizes a runtime.
type Config struct {
	// N is the peer count.
	N int
	// Seed roots every stream of the run.
	Seed uint64
	// Step is the per-peer protocol.
	Step StepFunc
	// Shards is the worker count; any value produces bit-identical results.
	// 0 selects GOMAXPROCS.
	Shards int
	// Net decides message fates; nil is the paper's perfect-sync model.
	Net NetModel
	// Obs, when non-nil, receives per-(round, shard, phase) spans and
	// per-round gauges. Observers are read-only: attaching one never
	// changes any result (the determinism suites pin this).
	Obs *obs.Observer
}

// cursorSource adapts the flat per-peer xoshiro state array as an
// rng.Source: the owning shard points node at the peer being stepped, so
// one Stream per shard serves every peer of the shard without allocation.
type cursorSource struct {
	states []rng.Xoshiro256
	node   int
}

func (c *cursorSource) Uint64() uint64   { return c.states[c.node].Uint64() }
func (c *cursorSource) Seed(seed uint64) { c.states[c.node].Seed(seed) }

// shard is one worker's private state. Shards only ever touch their own
// fields plus disjoint regions of the runtime's flat arrays and their own
// rows/ranges of the two exchanges.
type shard struct {
	w         int
	src       cursorSource
	stream    *rng.Stream
	netGen    rng.Xoshiro256
	netStream *rng.Stream

	sender    int
	netSeeded bool
	emit      func(simnet.Message)

	sent    int64
	dropped int64
	clamped int64
	byKind  [256]int64
}

// Runtime executes a protocol over n peers with shard workers. Construct
// with New; a Runtime runs one round at a time (Run must not be called
// concurrently), parallelism happens inside the round.
type Runtime struct {
	n        int
	shards   int
	step     StepFunc
	net      NetModel
	netRand  bool
	maxDelay int
	seed     uint64
	round    int

	states []rng.Xoshiro256
	part   exch.Partition // peer/destination ranges, one per shard
	sh     []shard

	// inbox is the delivery exchange: per-(shard, owner) chunks of
	// (destination, slot index) records, Fill-sorted by each owner.
	inbox exch.Exchange[int32]
	// outbox is the route exchange: per-(shard, delay) concat chunks of
	// emitted messages, flushed into the ring with SetBase/Flush.
	outbox exch.Exchange[simnet.Message]

	// slots is the delivery ring: messages due at round r sit in
	// slots[r % (maxDelay+1)], in canonical (send round, sender) order.
	slots [][]simnet.Message
	// sorted/inOff are the delivered view: peer i's inbox this round is
	// sorted[inOff[i]:inOff[i+1]]. sortedIdx is the Fill output feeding the
	// gather (slot indices, 4 bytes each, instead of 40-byte messages in
	// the exchange chunks).
	sorted    []simnet.Message
	sortedIdx []int32
	inOff     []int32

	stats simnet.Stats

	// Instrumentation (nil when no observer is attached; the hot path then
	// pays a nil check and nothing else). arenas[w] is shard w's span sink,
	// merged into tr at the route barrier; the gauges sample the runtime's
	// counters once per round from the coordinator.
	tr                  *obs.Track
	arenas              []*obs.Arena
	gSent, gDropped     *obs.Gauge
	gClamped, gInFlight *obs.Gauge
	gScratch            *obs.Gauge
}

// New builds a runtime. Peer streams are seeded in parallel across the
// shard workers.
func New(cfg Config) (*Runtime, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("live: runtime needs n > 0, got %d", cfg.N)
	}
	if cfg.Step == nil {
		return nil, fmt.Errorf("live: runtime needs a step function")
	}
	net := cfg.Net
	if net == nil {
		net = Sync{}
	}
	if err := validateNet(net, cfg.N); err != nil {
		return nil, err
	}
	// Validate the configured value before applying the default, so a
	// negative Shards is rejected (with the value the caller wrote) instead
	// of sliding past the GOMAXPROCS substitution.
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("live: shards %d must be non-negative (0 selects GOMAXPROCS)", cfg.Shards)
	}
	shards := EffectiveShards(cfg.N, cfg.Shards)

	rt := &Runtime{
		n:        cfg.N,
		shards:   shards,
		step:     cfg.Step,
		net:      net,
		netRand:  net.Random(),
		maxDelay: net.MaxDelay(),
		seed:     cfg.Seed,
		states:   make([]rng.Xoshiro256, cfg.N),
		part:     exch.Partition{N: cfg.N, Parts: shards},
		sh:       make([]shard, shards),
		slots:    make([][]simnet.Message, net.MaxDelay()+1),
		inOff:    make([]int32, cfg.N+1),
	}
	rt.inbox.Reset(shards, rt.part)
	ring := rt.maxDelay + 1
	rt.outbox.Reset(shards, exch.Partition{N: ring, Parts: ring})
	for w := range rt.sh {
		sh := &rt.sh[w]
		sh.w = w
		sh.src.states = rt.states
		sh.stream = rng.NewWithSource(&sh.src)
		sh.netStream = rng.NewWithSource(&sh.netGen)
		sh.emit = rt.makeEmit(sh)
	}
	if cfg.Obs != nil {
		rt.tr = cfg.Obs.Track("live", shards)
		rt.arenas = make([]*obs.Arena, shards)
		for w := range rt.arenas {
			rt.arenas[w] = rt.tr.Arena(w)
		}
		rt.gSent = rt.tr.Gauge("sent")
		rt.gDropped = rt.tr.Gauge("dropped")
		rt.gClamped = rt.tr.Gauge("clamped")
		rt.gInFlight = rt.tr.Gauge("queue_depth")
		rt.gScratch = rt.tr.Gauge("scratch_bytes")
	}
	rt.fanOut(func(w int) {
		lo, hi := rt.part.Range(w)
		for i := lo; i < hi; i++ {
			rt.states[i].Seed(PeerSeed(cfg.Seed, i))
		}
	})
	return rt, nil
}

// EffectiveShards returns the worker count New runs with for a configured
// Shards value over n peers: 0 selects GOMAXPROCS, and the count is capped
// at n. Exposed so protocols that keep per-peer state in shard-owned
// contiguous blocks (one block per worker, see internal/gossip's topology
// state) can size their partition to match the runtime's exactly.
func EffectiveShards(n, shards int) int {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	return shards
}

// N returns the peer count.
func (rt *Runtime) N() int { return rt.n }

// Shards returns the effective worker count.
func (rt *Runtime) Shards() int { return rt.shards }

// Round returns the next round number Run will execute.
func (rt *Runtime) Round() int { return rt.round }

// Stats returns a copy of the traffic counters.
func (rt *Runtime) Stats() simnet.Stats { return rt.stats }

// makeEmit builds shard sh's emission callback: stamp the sender, let the
// net model plan the flight time, and record the message in the matching
// per-(shard, delay) chunk of the route exchange. Messages to out-of-range
// peers and messages the model drops are both counted as Dropped, matching
// the simnet engines.
func (rt *Runtime) makeEmit(sh *shard) func(simnet.Message) {
	return func(m simnet.Message) {
		m.From = sh.sender
		if m.To < 0 || m.To >= rt.n {
			sh.dropped++
			return
		}
		var s *rng.Stream
		if rt.netRand {
			if !sh.netSeeded {
				sh.netGen.Seed(rng.Derive(rt.seed, netDomain, uint64(rt.round), uint64(sh.sender)))
				sh.netSeeded = true
			}
			s = sh.netStream
		}
		d := rt.net.Plan(rt.round, m, s)
		if d < 1 {
			sh.dropped++
			return
		}
		if d > rt.maxDelay {
			// A Plan result beyond MaxDelay() means the model's two methods
			// disagree — a model bug, not a network event. The runtime cannot
			// schedule past its delivery ring, so it delivers at the horizon,
			// but counts the rewrite in Stats.Clamped instead of silently
			// reclassifying it as a valid delivery.
			d = rt.maxDelay
			sh.clamped++
		}
		sh.sent++
		sh.byKind[m.Kind]++
		rt.outbox.RecordTo(sh.w, d, m)
	}
}

// fanOut runs f(w) for every shard; w == 0 runs on the calling goroutine.
// Barriers before and after are the only synchronization in the runtime.
func (rt *Runtime) fanOut(f func(w int)) {
	par.Do(rt.shards, f)
}

// fanOutSpan is fanOut with each shard's work recorded as a phase span in
// the shard's private arena. With no observer it is exactly fanOut — the
// disabled path costs one nil check per phase.
func (rt *Runtime) fanOutSpan(p obs.Phase, f func(w int)) {
	if rt.arenas == nil {
		rt.fanOut(f)
		return
	}
	round := rt.round
	rt.fanOut(func(w int) {
		t0 := time.Now()
		f(w)
		rt.arenas[w].Record(round, p, t0)
	})
}

// roundSample feeds the per-round gauges and merges the shard arenas into
// the track; called by the coordinator at the end of route, where the
// shards are quiescent. No-op without an observer.
func (rt *Runtime) roundSample() {
	if rt.tr == nil {
		return
	}
	rt.gSent.Sample(rt.round, rt.stats.Sent)
	rt.gDropped.Sample(rt.round, rt.stats.Dropped)
	rt.gClamped.Sample(rt.round, rt.stats.Clamped)
	depth := 0
	for _, s := range rt.slots {
		depth += len(s)
	}
	rt.gInFlight.Sample(rt.round, int64(depth))
	rt.gScratch.Sample(rt.round, rt.scratchBytes())
	rt.tr.Barrier()
}

// scratchBytes estimates the runtime's reusable buffer footprint: the
// delivery ring, the delivered view and the two exchanges' chunk capacity.
func (rt *Runtime) scratchBytes() int64 {
	const msgBytes = int64(unsafe.Sizeof(simnet.Message{}))
	b := int64(cap(rt.sorted))*msgBytes + int64(cap(rt.sortedIdx))*4 + int64(cap(rt.inOff))*4
	for _, s := range rt.slots {
		b += int64(cap(s)) * msgBytes
	}
	return b
}

// Run executes the given number of rounds and returns the cumulative
// traffic statistics. It may be called repeatedly; in-flight messages carry
// over between calls.
func (rt *Runtime) Run(rounds int) simnet.Stats {
	for r := 0; r < rounds; r++ {
		rt.deliver()
		rt.stepAll()
		rt.route()
		rt.round++
		rt.stats.Rounds++
	}
	return rt.stats
}

// RunPipelined is Run with the deliver sort and the step phase fused: each
// owner steps its peers the moment its own range is sorted, instead of
// waiting at a global barrier for every owner's sort — one fanout fewer
// per round (see the package comment). Results are bit-for-bit identical
// to Run; only the schedule changes. Run and RunPipelined may be freely
// interleaved on one Runtime.
func (rt *Runtime) RunPipelined(rounds int) simnet.Stats {
	for r := 0; r < rounds; r++ {
		if !rt.deliverRecord() {
			// Empty round: nothing to sort, step from the zeroed offsets.
			rt.stepAll()
		} else {
			// The fused fill+step is recorded as a step span: the pipelined
			// schedule has no separate deliver phase to time.
			rt.fanOutSpan(obs.PhaseStep, func(o int) {
				end := rt.fillOwner(o)
				sh := &rt.sh[o]
				lo, hi := rt.part.Range(o)
				for i := lo; i < hi; i++ {
					stop := end
					if i+1 < hi {
						stop = rt.inOff[i+1]
					}
					sh.sender = i
					sh.netSeeded = false
					sh.src.node = i
					rt.step(i, rt.round, rt.sorted[rt.inOff[i]:stop], sh.stream, sh.emit)
				}
			})
			rt.deliverEpilogue()
		}
		rt.route()
		rt.round++
		rt.stats.Rounds++
	}
	return rt.stats
}

// Inbox returns the messages delivered to peer i in the round Run executed
// last, for post-run inspection. Valid until the next Run call.
func (rt *Runtime) Inbox(i int) []simnet.Message {
	return rt.sorted[rt.inOff[i]:rt.inOff[i+1]]
}

// deliverRecord runs the record half of the delivery sort: shard w splits
// its contiguous chunk of the due slot into per-owner (destination, index)
// chunks, and the serial Prefix assigns owner base offsets. It reports
// whether there is anything to sort; an empty slot zeroes the delivered
// view so inboxes read empty.
func (rt *Runtime) deliverRecord() bool {
	slot := rt.round % (rt.maxDelay + 1)
	buf := rt.slots[slot]
	if len(buf) == 0 {
		rt.sorted = rt.sorted[:0]
		for i := range rt.inOff {
			rt.inOff[i] = 0
		}
		return false
	}

	bufPart := exch.Partition{N: len(buf), Parts: rt.shards}
	rt.fanOutSpan(obs.PhaseDeliver, func(w int) {
		rt.inbox.ClearWorker(w)
		lo, hi := bufPart.Range(w)
		for k := lo; k < hi; k++ {
			rt.inbox.Record(w, int32(buf[k].To), int32(k))
		}
	})
	rt.inbox.Prefix()

	if cap(rt.sorted) < len(buf) {
		rt.sorted = make([]simnet.Message, len(buf))
		rt.sortedIdx = make([]int32, len(buf))
	}
	rt.sorted = rt.sorted[:len(buf)]
	rt.sortedIdx = rt.sortedIdx[:len(buf)]
	return true
}

// fillOwner sorts owner o's peer range: Fill places the slot indices of
// o's incoming messages in canonical order and writes the per-peer offsets,
// then the gather copies the messages themselves. Returns o's end offset.
// Within a bucket Fill's order is ascending slot position — the canonical
// (send round, sender, emission index) order, exactly as the pre-kernel
// per-shard-counts sort produced.
func (rt *Runtime) fillOwner(o int) int32 {
	buf := rt.slots[rt.round%(rt.maxDelay+1)]
	end := rt.inbox.Fill(o, rt.inOff, rt.sortedIdx)
	for j := rt.inbox.Base(o); j < end; j++ {
		rt.sorted[j] = buf[rt.sortedIdx[j]]
	}
	return end
}

// deliverEpilogue closes the offset table and recycles the drained slot.
func (rt *Runtime) deliverEpilogue() {
	slot := rt.round % (rt.maxDelay + 1)
	rt.inOff[rt.n] = int32(len(rt.slots[slot]))
	rt.slots[slot] = rt.slots[slot][:0]
}

// deliver counting-sorts the slot due this round by destination on the
// owner-range exchange: record per-owner chunks, serial prefix, per-owner
// Fill + gather. Delivery scratch is O(n + messages) — the owners' count
// arrays partition [0, n) instead of every shard holding a length-n array.
func (rt *Runtime) deliver() {
	if !rt.deliverRecord() {
		return
	}
	rt.fanOutSpan(obs.PhaseDeliver, func(o int) { rt.fillOwner(o) })
	rt.deliverEpilogue()
}

// stepAll advances every peer one round: shard w walks its peer range in
// ascending order, pointing the shared cursor stream at each peer.
func (rt *Runtime) stepAll() {
	rt.fanOutSpan(obs.PhaseStep, func(w int) {
		sh := &rt.sh[w]
		lo, hi := rt.part.Range(w)
		for i := lo; i < hi; i++ {
			sh.sender = i
			sh.netSeeded = false
			sh.src.node = i
			rt.step(i, rt.round, rt.sorted[rt.inOff[i]:rt.inOff[i+1]], sh.stream, sh.emit)
		}
	})
}

// route copies the shards' per-delay chunks into the delivery ring's
// future slots in parallel and merges the traffic counters. Per-(shard,
// delay) chunk lengths are known after the step phase, so exch.SetBase
// sizes each due slot once and assigns every shard a disjoint range of it;
// the shards then Flush concurrently, replacing the coordinator's old
// serial O(messages) append pass while preserving the exact shard-order
// concatenation (= global sender order). Slot (round + d) is never the
// slot delivered this round since 1 <= d <= maxDelay < ring size.
func (rt *Runtime) route() {
	ring := rt.maxDelay + 1
	work := false
	for d := 1; d <= rt.maxDelay; d++ {
		slot := (rt.round + d) % ring
		base := len(rt.slots[slot])
		acc := rt.outbox.SetBase(d, base)
		if acc == base {
			continue
		}
		work = true
		rt.slots[slot] = growMessages(rt.slots[slot], acc)
	}
	if work {
		rt.fanOutSpan(obs.PhaseRoute, func(w int) {
			for d := 1; d <= rt.maxDelay; d++ {
				slot := (rt.round + d) % ring
				rt.outbox.Flush(w, d, rt.slots[slot])
			}
		})
	}
	for w := range rt.sh {
		sh := &rt.sh[w]
		rt.stats.Sent += sh.sent
		rt.stats.Dropped += sh.dropped
		rt.stats.Clamped += sh.clamped
		sh.sent = 0
		sh.dropped = 0
		sh.clamped = 0
		for k, c := range sh.byKind {
			if c != 0 {
				rt.stats.ByKind[k] += c
				sh.byKind[k] = 0
			}
		}
	}
	rt.roundSample()
}

// growMessages returns s resliced to length size, preserving its contents
// and reallocating (with append-style headroom) only when needed.
func growMessages(s []simnet.Message, size int) []simnet.Message {
	if cap(s) >= size {
		return s[:size]
	}
	ns := make([]simnet.Message, size, max(size, 2*cap(s)))
	copy(ns, s)
	return ns
}
