// Package live is the sharded message-level runtime: it executes the same
// per-peer protocol step functions as the simnet engines, but scales to
// millions of peers by replacing goroutine-per-peer execution with a fixed
// set of shard workers and flat, reusable message buffers.
//
// # Architecture
//
// The runtime splits the peer id space into Shards contiguous ranges, one
// per worker. Each round proceeds in three phases:
//
//	deliver  the messages due this round are counting-sorted by destination
//	         into one flat buffer (the core engine's scatter idiom: parallel
//	         per-chunk counts, a two-level prefix sum over (chunk,
//	         destination-block) count blocks, then a parallel stable fill),
//	         so peer i's inbox is the contiguous slice flat[off[i]:off[i+1]];
//	step     each shard worker walks its peer range in order, invoking the
//	         StepFunc with the peer's inbox and private stream; emitted
//	         messages are planned by the NetModel and recorded in
//	         shard-local per-delay buffers;
//	route    per-delay buffers are appended to the delivery ring's future
//	         slots in shard order, and traffic counters are merged.
//
// # Determinism
//
// A run is a pure function of (n, seed, step, net model) — the shard count
// is invisible. Three properties make that hold:
//
//   - Peer randomness: peer i draws from a stream seeded
//     rng.Derive(seed, peerDomain, i), stored as a flat xoshiro state array;
//     only the shard owning peer i ever advances state i.
//   - Network randomness: a NetModel that consumes randomness gets a stream
//     seeded rng.Derive(seed, netDomain, round, sender), re-derived at each
//     sender's first emission of the round; decisions depend on the message
//     sequence, never the worker.
//   - Message order: shards own contiguous ascending peer ranges and walk
//     them in order, so concatenating shard buffers in shard order yields
//     global sender order; the delivery sort is stable, so every inbox is
//     in canonical (send round, sender, emission index) order — the exact
//     order the goroutine-per-peer simnet.Live engine produces.
//
// The runtime is therefore bit-identical to a sequential run for any shard
// count, and — under the Sync model, with identical per-peer streams — to
// simnet.Live itself. The test suite pins both properties.
package live

import (
	"fmt"
	"runtime"

	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// Seed-derivation domains, keeping the runtime's stream families disjoint.
const (
	peerDomain  uint64 = 0x91 // per-peer protocol streams
	netDomain   uint64 = 0x92 // per-(round, sender) network-model streams
	churnDomain uint64 = 0x93 // EpochChurn's (epoch, peer) down-ness hash
	ringDomain  uint64 = 0x94 // UniformRing's embedding positions
)

// PeerSeed returns the seed of peer i's private stream in a runtime rooted
// at seed. Exposed so tests can replay a runtime's exact randomness on the
// legacy engines.
func PeerSeed(seed uint64, i int) uint64 {
	return rng.Derive(seed, peerDomain, uint64(i))
}

// StepFunc is one peer's behavior for one round: given its id, the round
// number, and the messages delivered to it, it emits the messages it wants
// to send (From is stamped by the runtime). The provided stream is the
// peer's private randomness. A StepFunc may keep per-peer protocol state
// indexed by node, but must not touch any shared state: peers of different
// shards run concurrently. The emit-callback shape (instead of returning a
// slice, as simnet.StepFunc does) lets the runtime route messages without a
// per-peer allocation; Adapt converts a simnet.StepFunc.
type StepFunc func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message))

// Adapt wraps a slice-returning simnet.StepFunc as a StepFunc, so protocol
// code written for the legacy engines runs on the sharded runtime unchanged.
func Adapt(step simnet.StepFunc) StepFunc {
	return func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
		for _, m := range step(node, round, inbox, s) {
			emit(m)
		}
	}
}

// Config parameterizes a runtime.
type Config struct {
	// N is the peer count.
	N int
	// Seed roots every stream of the run.
	Seed uint64
	// Step is the per-peer protocol.
	Step StepFunc
	// Shards is the worker count; any value produces bit-identical results.
	// 0 selects GOMAXPROCS.
	Shards int
	// Net decides message fates; nil is the paper's perfect-sync model.
	Net NetModel
}

// cursorSource adapts the flat per-peer xoshiro state array as an
// rng.Source: the owning shard points node at the peer being stepped, so
// one Stream per shard serves every peer of the shard without allocation.
type cursorSource struct {
	states []rng.Xoshiro256
	node   int
}

func (c *cursorSource) Uint64() uint64   { return c.states[c.node].Uint64() }
func (c *cursorSource) Seed(seed uint64) { c.states[c.node].Seed(seed) }

// shard is one worker's private state. Shards only ever touch their own
// fields plus disjoint regions of the runtime's flat arrays.
type shard struct {
	src       cursorSource
	stream    *rng.Stream
	netGen    rng.Xoshiro256
	netStream *rng.Stream

	// byDelay[d] holds this round's emissions in flight for d rounds, in
	// emission order; index 0 is unused.
	byDelay [][]simnet.Message
	// counts is the per-destination scratch of the delivery sort.
	counts []int32
	// chunk prefix state of the delivery sort's two-level offset pass.
	blockTot int32

	sender    int
	netSeeded bool
	emit      func(simnet.Message)

	sent    int64
	dropped int64
	byKind  [256]int64
}

// Runtime executes a protocol over n peers with shard workers. Construct
// with New; a Runtime runs one round at a time (Run must not be called
// concurrently), parallelism happens inside the round.
type Runtime struct {
	n        int
	shards   int
	step     StepFunc
	net      NetModel
	netRand  bool
	maxDelay int
	seed     uint64
	round    int

	states []rng.Xoshiro256
	cut    []int
	sh     []shard

	// slots is the delivery ring: messages due at round r sit in
	// slots[r % (maxDelay+1)], in canonical (send round, sender) order.
	slots [][]simnet.Message
	// sorted/inOff are the delivered view: peer i's inbox this round is
	// sorted[inOff[i]:inOff[i+1]].
	sorted []simnet.Message
	inOff  []int32

	stats simnet.Stats
}

// New builds a runtime. Peer streams are seeded in parallel across the
// shard workers.
func New(cfg Config) (*Runtime, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("live: runtime needs n > 0, got %d", cfg.N)
	}
	if cfg.Step == nil {
		return nil, fmt.Errorf("live: runtime needs a step function")
	}
	net := cfg.Net
	if net == nil {
		net = Sync{}
	}
	if err := validateNet(net, cfg.N); err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards < 1 {
		return nil, fmt.Errorf("live: shards %d must be non-negative", cfg.Shards)
	}
	if shards > cfg.N {
		shards = cfg.N
	}

	rt := &Runtime{
		n:        cfg.N,
		shards:   shards,
		step:     cfg.Step,
		net:      net,
		netRand:  net.Random(),
		maxDelay: net.MaxDelay(),
		seed:     cfg.Seed,
		states:   make([]rng.Xoshiro256, cfg.N),
		cut:      make([]int, shards+1),
		sh:       make([]shard, shards),
		slots:    make([][]simnet.Message, net.MaxDelay()+1),
		inOff:    make([]int32, cfg.N+1),
	}
	for w := 0; w <= shards; w++ {
		rt.cut[w] = cfg.N * w / shards
	}
	for w := range rt.sh {
		sh := &rt.sh[w]
		sh.src.states = rt.states
		sh.stream = rng.NewWithSource(&sh.src)
		sh.netStream = rng.NewWithSource(&sh.netGen)
		sh.byDelay = make([][]simnet.Message, rt.maxDelay+1)
		sh.counts = make([]int32, cfg.N)
		sh.emit = rt.makeEmit(sh)
	}
	rt.fanOut(func(w int) {
		for i := rt.cut[w]; i < rt.cut[w+1]; i++ {
			rt.states[i].Seed(PeerSeed(cfg.Seed, i))
		}
	})
	return rt, nil
}

// N returns the peer count.
func (rt *Runtime) N() int { return rt.n }

// Shards returns the effective worker count.
func (rt *Runtime) Shards() int { return rt.shards }

// Round returns the next round number Run will execute.
func (rt *Runtime) Round() int { return rt.round }

// Stats returns a copy of the traffic counters.
func (rt *Runtime) Stats() simnet.Stats { return rt.stats }

// makeEmit builds shard sh's emission callback: stamp the sender, let the
// net model plan the flight time, and record the message in the matching
// per-delay buffer. Messages to out-of-range peers and messages the model
// drops are both counted as Dropped, matching the simnet engines.
func (rt *Runtime) makeEmit(sh *shard) func(simnet.Message) {
	return func(m simnet.Message) {
		m.From = sh.sender
		if m.To < 0 || m.To >= rt.n {
			sh.dropped++
			return
		}
		var s *rng.Stream
		if rt.netRand {
			if !sh.netSeeded {
				sh.netGen.Seed(rng.Derive(rt.seed, netDomain, uint64(rt.round), uint64(sh.sender)))
				sh.netSeeded = true
			}
			s = sh.netStream
		}
		d := rt.net.Plan(rt.round, m, s)
		if d < 1 {
			sh.dropped++
			return
		}
		if d > rt.maxDelay {
			d = rt.maxDelay
		}
		sh.sent++
		sh.byKind[m.Kind]++
		sh.byDelay[d] = append(sh.byDelay[d], m)
	}
}

// fanOut runs f(w) for every shard; w == 0 runs on the calling goroutine.
// Barriers before and after are the only synchronization in the runtime.
func (rt *Runtime) fanOut(f func(w int)) {
	par.Do(rt.shards, f)
}

// Run executes the given number of rounds and returns the cumulative
// traffic statistics. It may be called repeatedly; in-flight messages carry
// over between calls.
func (rt *Runtime) Run(rounds int) simnet.Stats {
	for r := 0; r < rounds; r++ {
		rt.deliver()
		rt.stepAll()
		rt.route()
		rt.round++
		rt.stats.Rounds++
	}
	return rt.stats
}

// Inbox returns the messages delivered to peer i in the round Run executed
// last, for post-run inspection. Valid until the next Run call.
func (rt *Runtime) Inbox(i int) []simnet.Message {
	return rt.sorted[rt.inOff[i]:rt.inOff[i+1]]
}

// deliver counting-sorts the slot due this round by destination: parallel
// per-chunk counts, a two-level prefix sum, and a parallel stable fill —
// the core engine's scatter idiom applied to message routing.
func (rt *Runtime) deliver() {
	slot := rt.round % (rt.maxDelay + 1)
	buf := rt.slots[slot]
	if len(buf) == 0 {
		rt.sorted = rt.sorted[:0]
		for i := range rt.inOff {
			rt.inOff[i] = 0
		}
		return
	}

	// Count: shard w counts destinations over its contiguous chunk of buf.
	chunk := func(w int) (int, int) {
		return len(buf) * w / rt.shards, len(buf) * (w + 1) / rt.shards
	}
	rt.fanOut(func(w int) {
		sh := &rt.sh[w]
		for i := range sh.counts {
			sh.counts[i] = 0
		}
		lo, hi := chunk(w)
		for _, m := range buf[lo:hi] {
			sh.counts[m.To]++
		}
	})

	// Offsets, level 1: per destination-block totals, in parallel. Block b
	// covers the same id range as shard b's peer cut, so the pass reuses
	// rt.cut as its block boundaries.
	rt.fanOut(func(b int) {
		var tot int32
		for v := rt.cut[b]; v < rt.cut[b+1]; v++ {
			for w := 0; w < rt.shards; w++ {
				tot += rt.sh[w].counts[v]
			}
		}
		rt.sh[b].blockTot = tot
	})

	// Offsets, level 2: a serial prefix over the per-block totals (tiny),
	// rewriting each shard's blockTot into its block's start offset, then
	// each block resolves its own (destination, chunk) cursors in parallel.
	// Bucket v is partitioned (chunk 0, chunk 1, ...), i.e. in canonical
	// order, because chunks cover buf in ascending order.
	var total int32
	for b := 0; b < rt.shards; b++ {
		rt.sh[b].blockTot, total = total, total+rt.sh[b].blockTot
	}
	rt.fanOut(func(b int) {
		acc := rt.sh[b].blockTot
		for v := rt.cut[b]; v < rt.cut[b+1]; v++ {
			rt.inOff[v] = acc
			for w := 0; w < rt.shards; w++ {
				c := rt.sh[w].counts[v]
				rt.sh[w].counts[v] = acc
				acc += c
			}
		}
	})
	rt.inOff[rt.n] = int32(len(buf))

	// Fill: each shard replays its chunk into its disjoint cursor ranges.
	if cap(rt.sorted) < len(buf) {
		rt.sorted = make([]simnet.Message, len(buf))
	}
	rt.sorted = rt.sorted[:len(buf)]
	rt.fanOut(func(w int) {
		sh := &rt.sh[w]
		lo, hi := chunk(w)
		for _, m := range buf[lo:hi] {
			rt.sorted[sh.counts[m.To]] = m
			sh.counts[m.To]++
		}
	})

	rt.slots[slot] = buf[:0]
}

// stepAll advances every peer one round: shard w walks its peer range in
// ascending order, pointing the shared cursor stream at each peer.
func (rt *Runtime) stepAll() {
	rt.fanOut(func(w int) {
		sh := &rt.sh[w]
		for i := rt.cut[w]; i < rt.cut[w+1]; i++ {
			sh.sender = i
			sh.netSeeded = false
			sh.src.node = i
			rt.step(i, rt.round, rt.sorted[rt.inOff[i]:rt.inOff[i+1]], sh.stream, sh.emit)
		}
	})
}

// route appends the shards' per-delay buffers to the delivery ring in shard
// order (= global sender order) and merges the traffic counters. Slot
// (round + d) is never the slot delivered this round since 1 <= d <=
// maxDelay < ring size.
func (rt *Runtime) route() {
	ring := rt.maxDelay + 1
	for d := 1; d <= rt.maxDelay; d++ {
		slot := (rt.round + d) % ring
		for w := range rt.sh {
			if len(rt.sh[w].byDelay[d]) > 0 {
				rt.slots[slot] = append(rt.slots[slot], rt.sh[w].byDelay[d]...)
				rt.sh[w].byDelay[d] = rt.sh[w].byDelay[d][:0]
			}
		}
	}
	for w := range rt.sh {
		sh := &rt.sh[w]
		rt.stats.Sent += sh.sent
		rt.stats.Dropped += sh.dropped
		sh.sent = 0
		sh.dropped = 0
		for k, c := range sh.byKind {
			if c != 0 {
				rt.stats.ByKind[k] += c
				sh.byKind[k] = 0
			}
		}
	}
}
