// Package live is the sharded message-level runtime: it executes the same
// per-peer protocol step functions as the simnet engines, but scales to
// millions of peers by replacing goroutine-per-peer execution with a fixed
// set of shard workers and flat, reusable message buffers.
//
// # Architecture
//
// The runtime splits the peer id space into Shards contiguous ranges, one
// per worker; each shard also *owns* its range as a destination range. Each
// round proceeds in three phases:
//
//	deliver  the messages due this round are counting-sorted by destination
//	         into one flat buffer with the core engine's radix-partitioned
//	         scatter: each shard splits its contiguous chunk of the slot by
//	         destination owner into per-owner index chunks, a tiny serial
//	         prefix over owner totals assigns base offsets, and each owner
//	         counting-sorts its own peer range (count array covering only
//	         that range) with a stable fill — so peer i's inbox is the
//	         contiguous slice flat[off[i]:off[i+1]], and delivery scratch is
//	         O(n + messages) instead of one length-n count array per shard;
//	step     each shard worker walks its peer range in order, invoking the
//	         StepFunc with the peer's inbox and private stream; emitted
//	         messages are planned by the NetModel and recorded in
//	         shard-local per-delay buffers;
//	route    per-(shard, delay) buffer lengths are known after the step
//	         phase, so a small prefix sum assigns each shard a disjoint
//	         range of every due delivery-ring slot and the shards copy
//	         their buffers in parallel (same shard-order concatenation as
//	         the old serial append pass); traffic counters are merged.
//
// # Determinism
//
// A run is a pure function of (n, seed, step, net model) — the shard count
// is invisible. Three properties make that hold:
//
//   - Peer randomness: peer i draws from a stream seeded
//     rng.Derive(seed, peerDomain, i), stored as a flat xoshiro state array;
//     only the shard owning peer i ever advances state i.
//   - Network randomness: a NetModel that consumes randomness gets a stream
//     seeded rng.Derive(seed, netDomain, round, sender), re-derived at each
//     sender's first emission of the round; decisions depend on the message
//     sequence, never the worker.
//   - Message order: shards own contiguous ascending peer ranges and walk
//     them in order, so concatenating shard buffers in shard order yields
//     global sender order; the delivery sort is stable, so every inbox is
//     in canonical (send round, sender, emission index) order — the exact
//     order the goroutine-per-peer simnet.Live engine produces.
//
// The runtime is therefore bit-identical to a sequential run for any shard
// count, and — under the Sync model, with identical per-peer streams — to
// simnet.Live itself. The test suite pins both properties.
package live

import (
	"fmt"
	"runtime"

	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/simnet"
)

// Seed-derivation domains, keeping the runtime's stream families disjoint.
const (
	peerDomain  uint64 = 0x91 // per-peer protocol streams
	netDomain   uint64 = 0x92 // per-(round, sender) network-model streams
	churnDomain uint64 = 0x93 // EpochChurn's (epoch, peer) down-ness hash
	ringDomain  uint64 = 0x94 // UniformRing's embedding positions
)

// PeerSeed returns the seed of peer i's private stream in a runtime rooted
// at seed. Exposed so tests can replay a runtime's exact randomness on the
// legacy engines.
func PeerSeed(seed uint64, i int) uint64 {
	return rng.Derive(seed, peerDomain, uint64(i))
}

// StepFunc is one peer's behavior for one round: given its id, the round
// number, and the messages delivered to it, it emits the messages it wants
// to send (From is stamped by the runtime). The provided stream is the
// peer's private randomness. A StepFunc may keep per-peer protocol state
// indexed by node, but must not touch any shared state: peers of different
// shards run concurrently. The emit-callback shape (instead of returning a
// slice, as simnet.StepFunc does) lets the runtime route messages without a
// per-peer allocation; Adapt converts a simnet.StepFunc.
type StepFunc func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message))

// Adapt wraps a slice-returning simnet.StepFunc as a StepFunc, so protocol
// code written for the legacy engines runs on the sharded runtime unchanged.
func Adapt(step simnet.StepFunc) StepFunc {
	return func(node, round int, inbox []simnet.Message, s *rng.Stream, emit func(simnet.Message)) {
		for _, m := range step(node, round, inbox, s) {
			emit(m)
		}
	}
}

// Config parameterizes a runtime.
type Config struct {
	// N is the peer count.
	N int
	// Seed roots every stream of the run.
	Seed uint64
	// Step is the per-peer protocol.
	Step StepFunc
	// Shards is the worker count; any value produces bit-identical results.
	// 0 selects GOMAXPROCS.
	Shards int
	// Net decides message fates; nil is the paper's perfect-sync model.
	Net NetModel
}

// cursorSource adapts the flat per-peer xoshiro state array as an
// rng.Source: the owning shard points node at the peer being stepped, so
// one Stream per shard serves every peer of the shard without allocation.
type cursorSource struct {
	states []rng.Xoshiro256
	node   int
}

func (c *cursorSource) Uint64() uint64   { return c.states[c.node].Uint64() }
func (c *cursorSource) Seed(seed uint64) { c.states[c.node].Seed(seed) }

// shard is one worker's private state. Shards only ever touch their own
// fields plus disjoint regions of the runtime's flat arrays.
type shard struct {
	src       cursorSource
	stream    *rng.Stream
	netGen    rng.Xoshiro256
	netStream *rng.Stream

	// byDelay[d] holds this round's emissions in flight for d rounds, in
	// emission order; index 0 is unused.
	byDelay [][]simnet.Message
	// idx[o] holds the indices (into the slot buffer being delivered) of
	// this shard's chunk messages destined for owner o's peer range — the
	// radix exchange of the delivery sort.
	idx [][]int32
	// counts is the owner-side scratch of the delivery sort, covering only
	// this shard's own peer range [cut[w], cut[w+1]).
	counts []int32
	// blockTot carries this owner's message total (then base offset)
	// through the delivery sort's serial prefix.
	blockTot int32
	// routeOff[d] is this shard's write offset into ring slot (round + d)
	// during the parallel route pass.
	routeOff []int

	sender    int
	netSeeded bool
	emit      func(simnet.Message)

	sent    int64
	dropped int64
	byKind  [256]int64
}

// Runtime executes a protocol over n peers with shard workers. Construct
// with New; a Runtime runs one round at a time (Run must not be called
// concurrently), parallelism happens inside the round.
type Runtime struct {
	n        int
	shards   int
	step     StepFunc
	net      NetModel
	netRand  bool
	maxDelay int
	seed     uint64
	round    int

	states []rng.Xoshiro256
	cut    []int
	sh     []shard

	// slots is the delivery ring: messages due at round r sit in
	// slots[r % (maxDelay+1)], in canonical (send round, sender) order.
	slots [][]simnet.Message
	// sorted/inOff are the delivered view: peer i's inbox this round is
	// sorted[inOff[i]:inOff[i+1]].
	sorted []simnet.Message
	inOff  []int32

	stats simnet.Stats
}

// New builds a runtime. Peer streams are seeded in parallel across the
// shard workers.
func New(cfg Config) (*Runtime, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("live: runtime needs n > 0, got %d", cfg.N)
	}
	if cfg.Step == nil {
		return nil, fmt.Errorf("live: runtime needs a step function")
	}
	net := cfg.Net
	if net == nil {
		net = Sync{}
	}
	if err := validateNet(net, cfg.N); err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards < 1 {
		return nil, fmt.Errorf("live: shards %d must be non-negative", cfg.Shards)
	}
	if shards > cfg.N {
		shards = cfg.N
	}

	rt := &Runtime{
		n:        cfg.N,
		shards:   shards,
		step:     cfg.Step,
		net:      net,
		netRand:  net.Random(),
		maxDelay: net.MaxDelay(),
		seed:     cfg.Seed,
		states:   make([]rng.Xoshiro256, cfg.N),
		cut:      make([]int, shards+1),
		sh:       make([]shard, shards),
		slots:    make([][]simnet.Message, net.MaxDelay()+1),
		inOff:    make([]int32, cfg.N+1),
	}
	for w := 0; w <= shards; w++ {
		rt.cut[w] = cfg.N * w / shards
	}
	for w := range rt.sh {
		sh := &rt.sh[w]
		sh.src.states = rt.states
		sh.stream = rng.NewWithSource(&sh.src)
		sh.netStream = rng.NewWithSource(&sh.netGen)
		sh.byDelay = make([][]simnet.Message, rt.maxDelay+1)
		sh.idx = make([][]int32, shards)
		sh.counts = make([]int32, rt.cut[w+1]-rt.cut[w])
		sh.routeOff = make([]int, rt.maxDelay+1)
		sh.emit = rt.makeEmit(sh)
	}
	rt.fanOut(func(w int) {
		for i := rt.cut[w]; i < rt.cut[w+1]; i++ {
			rt.states[i].Seed(PeerSeed(cfg.Seed, i))
		}
	})
	return rt, nil
}

// N returns the peer count.
func (rt *Runtime) N() int { return rt.n }

// Shards returns the effective worker count.
func (rt *Runtime) Shards() int { return rt.shards }

// Round returns the next round number Run will execute.
func (rt *Runtime) Round() int { return rt.round }

// Stats returns a copy of the traffic counters.
func (rt *Runtime) Stats() simnet.Stats { return rt.stats }

// makeEmit builds shard sh's emission callback: stamp the sender, let the
// net model plan the flight time, and record the message in the matching
// per-delay buffer. Messages to out-of-range peers and messages the model
// drops are both counted as Dropped, matching the simnet engines.
func (rt *Runtime) makeEmit(sh *shard) func(simnet.Message) {
	return func(m simnet.Message) {
		m.From = sh.sender
		if m.To < 0 || m.To >= rt.n {
			sh.dropped++
			return
		}
		var s *rng.Stream
		if rt.netRand {
			if !sh.netSeeded {
				sh.netGen.Seed(rng.Derive(rt.seed, netDomain, uint64(rt.round), uint64(sh.sender)))
				sh.netSeeded = true
			}
			s = sh.netStream
		}
		d := rt.net.Plan(rt.round, m, s)
		if d < 1 {
			sh.dropped++
			return
		}
		if d > rt.maxDelay {
			d = rt.maxDelay
		}
		sh.sent++
		sh.byKind[m.Kind]++
		sh.byDelay[d] = append(sh.byDelay[d], m)
	}
}

// fanOut runs f(w) for every shard; w == 0 runs on the calling goroutine.
// Barriers before and after are the only synchronization in the runtime.
func (rt *Runtime) fanOut(f func(w int)) {
	par.Do(rt.shards, f)
}

// Run executes the given number of rounds and returns the cumulative
// traffic statistics. It may be called repeatedly; in-flight messages carry
// over between calls.
func (rt *Runtime) Run(rounds int) simnet.Stats {
	for r := 0; r < rounds; r++ {
		rt.deliver()
		rt.stepAll()
		rt.route()
		rt.round++
		rt.stats.Rounds++
	}
	return rt.stats
}

// Inbox returns the messages delivered to peer i in the round Run executed
// last, for post-run inspection. Valid until the next Run call.
func (rt *Runtime) Inbox(i int) []simnet.Message {
	return rt.sorted[rt.inOff[i]:rt.inOff[i+1]]
}

// owner returns the shard whose peer range holds destination d (rt.cut is
// the uniform partition cut[w] = n·w/shards).
func (rt *Runtime) owner(d int) int { return ((d+1)*rt.shards - 1) / rt.n }

// deliver counting-sorts the slot due this round by destination with the
// core engine's radix-partitioned scatter: shards exchange per-owner index
// chunks, then each owner counting-sorts its own peer range. Delivery
// scratch is O(n + messages) — the owners' count arrays partition [0, n)
// instead of every shard holding a length-n array.
func (rt *Runtime) deliver() {
	slot := rt.round % (rt.maxDelay + 1)
	buf := rt.slots[slot]
	if len(buf) == 0 {
		rt.sorted = rt.sorted[:0]
		for i := range rt.inOff {
			rt.inOff[i] = 0
		}
		return
	}

	// Exchange: shard w splits its contiguous chunk of buf by destination
	// owner, recording message indices in chunk (= canonical) order.
	chunk := func(w int) (int, int) {
		return len(buf) * w / rt.shards, len(buf) * (w + 1) / rt.shards
	}
	rt.fanOut(func(w int) {
		sh := &rt.sh[w]
		for o := range sh.idx {
			sh.idx[o] = sh.idx[o][:0]
		}
		lo, hi := chunk(w)
		for k := lo; k < hi; k++ {
			o := rt.owner(buf[k].To)
			sh.idx[o] = append(sh.idx[o], int32(k))
		}
	})

	// Serial prefix over the owners' incoming totals (O(shards²), no
	// length-n scan), rewriting each owner's total into its base offset.
	var total int32
	for o := 0; o < rt.shards; o++ {
		var tot int32
		for w := 0; w < rt.shards; w++ {
			tot += int32(len(rt.sh[w].idx[o]))
		}
		rt.sh[o].blockTot, total = total, total+tot
	}

	if cap(rt.sorted) < len(buf) {
		rt.sorted = make([]simnet.Message, len(buf))
	}
	rt.sorted = rt.sorted[:len(buf)]

	// Sort: each owner counts its incoming messages per destination over
	// its own range, prefixes the counts into inOff and write cursors, and
	// replays the index chunks in shard order. Within a bucket that order
	// is ascending buf position — the canonical (send round, sender,
	// emission index) order, exactly as the pre-radix per-shard-counts sort
	// produced.
	rt.fanOut(func(o int) {
		sh := &rt.sh[o]
		lo := rt.cut[o]
		counts := sh.counts
		for i := range counts {
			counts[i] = 0
		}
		for w := 0; w < rt.shards; w++ {
			for _, k := range rt.sh[w].idx[o] {
				counts[buf[k].To-lo]++
			}
		}
		acc := sh.blockTot
		for v := lo; v < rt.cut[o+1]; v++ {
			rt.inOff[v] = acc
			c := counts[v-lo]
			counts[v-lo] = acc
			acc += c
		}
		for w := 0; w < rt.shards; w++ {
			for _, k := range rt.sh[w].idx[o] {
				m := buf[k]
				rt.sorted[counts[m.To-lo]] = m
				counts[m.To-lo]++
			}
		}
	})
	rt.inOff[rt.n] = int32(len(buf))

	rt.slots[slot] = buf[:0]
}

// stepAll advances every peer one round: shard w walks its peer range in
// ascending order, pointing the shared cursor stream at each peer.
func (rt *Runtime) stepAll() {
	rt.fanOut(func(w int) {
		sh := &rt.sh[w]
		for i := rt.cut[w]; i < rt.cut[w+1]; i++ {
			sh.sender = i
			sh.netSeeded = false
			sh.src.node = i
			rt.step(i, rt.round, rt.sorted[rt.inOff[i]:rt.inOff[i+1]], sh.stream, sh.emit)
		}
	})
}

// route copies the shards' per-delay buffers into the delivery ring's
// future slots in parallel and merges the traffic counters. Per-(shard,
// delay) buffer lengths are known after the step phase, so a serial prefix
// sum sizes each due slot once and assigns every shard a disjoint range of
// it; the shards then copy concurrently, replacing the coordinator's old
// serial O(messages) append pass while preserving the exact shard-order
// concatenation (= global sender order). Slot (round + d) is never the
// slot delivered this round since 1 <= d <= maxDelay < ring size.
func (rt *Runtime) route() {
	ring := rt.maxDelay + 1
	work := false
	for d := 1; d <= rt.maxDelay; d++ {
		slot := (rt.round + d) % ring
		base := len(rt.slots[slot])
		acc := base
		for w := range rt.sh {
			rt.sh[w].routeOff[d] = acc
			acc += len(rt.sh[w].byDelay[d])
		}
		if acc == base {
			continue
		}
		work = true
		rt.slots[slot] = growMessages(rt.slots[slot], acc)
	}
	if work {
		rt.fanOut(func(w int) {
			sh := &rt.sh[w]
			for d := 1; d <= rt.maxDelay; d++ {
				if len(sh.byDelay[d]) == 0 {
					continue
				}
				slot := (rt.round + d) % ring
				copy(rt.slots[slot][sh.routeOff[d]:], sh.byDelay[d])
				sh.byDelay[d] = sh.byDelay[d][:0]
			}
		})
	}
	for w := range rt.sh {
		sh := &rt.sh[w]
		rt.stats.Sent += sh.sent
		rt.stats.Dropped += sh.dropped
		sh.sent = 0
		sh.dropped = 0
		for k, c := range sh.byKind {
			if c != 0 {
				rt.stats.ByKind[k] += c
				sh.byKind[k] = 0
			}
		}
	}
}

// growMessages returns s resliced to length size, preserving its contents
// and reallocating (with append-style headroom) only when needed.
func growMessages(s []simnet.Message, size int) []simnet.Message {
	if cap(s) >= size {
		return s[:size]
	}
	ns := make([]simnet.Message, size, max(size, 2*cap(s)))
	copy(ns, s)
	return ns
}
