package sim

import "testing"

func TestRunEngineBenchShape(t *testing.T) {
	res, err := RunEngineBench(5000, 2, []int{2, 2, 4, 0}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 5000 || res.Rounds != 2 {
		t.Fatalf("echoed parameters wrong: %+v", res)
	}
	// Serial baseline first, duplicates and invalid counts dropped; then the
	// seeded/pipelined pair per worker count.
	workers := []int{1, 2, 4}
	type rowKey struct {
		mode    string
		workers int
	}
	var want []rowKey
	for _, w := range workers {
		want = append(want, rowKey{"parallel", w})
	}
	for _, w := range workers {
		want = append(want, rowKey{"seeded", w}, rowKey{"pipelined", w})
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d rows, want %d: %+v", len(res.Rows), len(want), res.Rows)
	}
	for i, row := range res.Rows {
		if row.Mode != want[i].mode || row.Workers != want[i].workers {
			t.Fatalf("row %d is %s/%d, want %s/%d", i, row.Mode, row.Workers, want[i].mode, want[i].workers)
		}
		if row.SecondsPerRnd <= 0 {
			t.Fatalf("row %d has non-positive timing: %+v", i, row)
		}
		// Parallel and pipelined rows carry a speedup versus their baseline;
		// seeded rows are themselves the pipelined baseline.
		if row.Mode != "seeded" && row.Speedup <= 0 {
			t.Fatalf("row %d missing speedup: %+v", i, row)
		}
		if row.Fraction < 0.40 || row.Fraction > 0.55 {
			t.Fatalf("row %d fraction %.4f outside the uniform band", i, row.Fraction)
		}
	}
	if len(res.Points) != len(want) {
		t.Fatalf("%d points, want %d", len(res.Points), len(want))
	}
	for i, p := range res.Points {
		wantProto := "engine-" + want[i].mode
		if want[i].mode == "parallel" {
			wantProto = "engine-round" // historical key for the legacy rows
		}
		if p.Protocol != wantProto {
			t.Fatalf("point %d has protocol %q, want %q", i, p.Protocol, wantProto)
		}
		if p.Workers != want[i].workers {
			t.Fatalf("point %d has workers %d, want %d", i, p.Workers, want[i].workers)
		}
	}
	if tbl := res.Table(); tbl.NumRows() != len(want) {
		t.Fatalf("table has %d rows", tbl.NumRows())
	}
}

func TestRunEngineBenchValidation(t *testing.T) {
	if _, err := RunEngineBench(0, 1, nil, 1); err == nil {
		t.Error("accepted n = 0")
	}
	if _, err := RunEngineBench(10, 0, nil, 1); err == nil {
		t.Error("accepted rounds = 0")
	}
}
