package sim

import "testing"

func TestRunEngineBenchShape(t *testing.T) {
	res, err := RunEngineBench(5000, 2, []int{2, 2, 4, 0}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 5000 || res.Rounds != 2 {
		t.Fatalf("echoed parameters wrong: %+v", res)
	}
	// Serial baseline first, duplicates and invalid counts dropped.
	want := []int{1, 2, 4}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d rows, want %d: %+v", len(res.Rows), len(want), res.Rows)
	}
	for i, row := range res.Rows {
		if row.Workers != want[i] {
			t.Fatalf("row %d has workers %d, want %d", i, row.Workers, want[i])
		}
		if row.SecondsPerRnd <= 0 || row.Speedup <= 0 {
			t.Fatalf("row %d has non-positive timing: %+v", i, row)
		}
		if row.Fraction < 0.40 || row.Fraction > 0.55 {
			t.Fatalf("row %d fraction %.4f outside the uniform band", i, row.Fraction)
		}
	}
	if tbl := res.Table(); tbl.NumRows() != len(want) {
		t.Fatalf("table has %d rows", tbl.NumRows())
	}
}

func TestRunEngineBenchValidation(t *testing.T) {
	if _, err := RunEngineBench(0, 1, nil, 1); err == nil {
		t.Error("accepted n = 0")
	}
	if _, err := RunEngineBench(10, 0, nil, 1); err == nil {
		t.Error("accepted rounds = 0")
	}
}
