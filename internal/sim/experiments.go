package sim

import (
	"fmt"
	"math"

	"repro/internal/bandwidth"
	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/overlay"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/storage"
)

// --- E3: fraction versus load (Lemmas 1 and 2) ---------------------------

// AlphaRow is one m/n value of experiment E3.
type AlphaRow struct {
	Load     int // requests of each type per node (m/n)
	Fraction float64
	Std      float64
}

// AlphaResult is the E3 outcome: E[X]/m as a function of m/n.
type AlphaResult struct{ Rows []AlphaRow }

// Table renders E3.
func (r AlphaResult) Table() *stats.Table {
	t := stats.NewTable("E3 — fraction of m arranged vs per-node load (uniform selection)",
		"m/n", "fraction", "std")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Load), fmt.Sprintf("%.4f", row.Fraction), fmt.Sprintf("%.4f", row.Std))
	}
	return t
}

// RunAlphaVsLoad measures the arranged fraction as bandwidth per node grows,
// validating the paper's remark that E[X]/m increases with m/n.
func RunAlphaVsLoad(scale Scale, seed uint64) (AlphaResult, error) {
	n, rounds := 1000, 300
	if scale == ScalePaper {
		rounds = 3000
	}
	root := rng.New(seed)
	var res AlphaResult
	for _, b := range []int{1, 2, 4, 8} {
		sel, err := core.NewUniformSelector(n)
		if err != nil {
			return AlphaResult{}, err
		}
		svc, err := core.NewService(bandwidth.Homogeneous(n, b), sel)
		if err != nil {
			return AlphaResult{}, err
		}
		s := root.Split()
		var acc stats.Accumulator
		for r := 0; r < rounds; r++ {
			acc.Add(svc.RunRound(s).Fraction(svc.M()))
		}
		res.Rows = append(res.Rows, AlphaRow{Load: b, Fraction: acc.Mean(), Std: acc.Std()})
	}
	return res, nil
}

// --- E4: selection-distribution ablation (the worst-case conjecture) -----

// DistRow is one distribution of experiment E4.
type DistRow struct {
	Name     string
	Fraction float64
	Std      float64
}

// DistResult is the E4 outcome.
type DistResult struct{ Rows []DistRow }

// Table renders E4.
func (r DistResult) Table() *stats.Table {
	t := stats.NewTable("E4 — arranged fraction by selection distribution (n = m = 1000)",
		"distribution", "fraction", "std")
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprintf("%.4f", row.Fraction), fmt.Sprintf("%.4f", row.Std))
	}
	return t
}

// RunDistributionAblation compares the arranged fraction across selection
// distributions, testing the paper's conjecture that uniform is the worst
// case: every skewed distribution should arrange at least as many dates.
func RunDistributionAblation(scale Scale, seed uint64) (DistResult, error) {
	n, rounds := 1000, 200
	if scale == ScalePaper {
		rounds = 2000
	}
	root := rng.New(seed)

	type namedSel struct {
		name string
		sel  core.Selector
	}
	var sels []namedSel

	uni, err := core.NewUniformSelector(n)
	if err != nil {
		return DistResult{}, err
	}
	sels = append(sels, namedSel{"uniform", uni})

	ring, err := overlay.NewRing(n, root.Split())
	if err != nil {
		return DistResult{}, err
	}
	rs, err := core.NewRingSelector(ring)
	if err != nil {
		return DistResult{}, err
	}
	sels = append(sels, namedSel{"dht-intervals", rs})

	for _, exp := range []float64{0.5, 1.0, 1.5} {
		w := make([]float64, n)
		for i := range w {
			w[i] = math.Pow(float64(i+1), -exp)
		}
		ws, err := core.NewWeightedSelector(w)
		if err != nil {
			return DistResult{}, err
		}
		sels = append(sels, namedSel{fmt.Sprintf("zipf-%.1f", exp), ws})
	}

	// Two-point mass: one hub attracts half of all requests.
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	w[0] = float64(n - 1)
	hub, err := core.NewWeightedSelector(w)
	if err != nil {
		return DistResult{}, err
	}
	sels = append(sels, namedSel{"hub-half", hub})

	profile := bandwidth.Homogeneous(n, 1)
	var res DistResult
	for _, ns := range sels {
		svc, err := core.NewService(profile, ns.sel)
		if err != nil {
			return DistResult{}, err
		}
		s := root.Split()
		var acc stats.Accumulator
		for r := 0; r < rounds; r++ {
			acc.Add(svc.RunRound(s).Fraction(n))
		}
		res.Rows = append(res.Rows, DistRow{Name: ns.name, Fraction: acc.Mean(), Std: acc.Std()})
	}
	return res, nil
}

// --- E5: the three phases of Theorem 4 -----------------------------------

// PhasesResult reports the informed-bandwidth growth structure.
type PhasesResult struct {
	N         int
	EndPhase1 float64 // mean round at which I_t reached max(m/n, log n)
	EndPhase2 float64 // mean round at which I_t reached m/2
	EndPhase3 float64 // mean completion round
	ItSample  []int   // one run's I_t trajectory, for inspection
}

// Table renders E5.
func (r PhasesResult) Table() *stats.Table {
	t := stats.NewTable(fmt.Sprintf("E5 — Theorem 4 phase structure (dating, n = %d)", r.N),
		"phase", "ends at round (mean)")
	t.AddRow("1: I_t reaches max(m/n, log n)", fmt.Sprintf("%.1f", r.EndPhase1))
	t.AddRow("2: I_t reaches m/2", fmt.Sprintf("%.1f", r.EndPhase2))
	t.AddRow("3: all nodes informed", fmt.Sprintf("%.1f", r.EndPhase3))
	return t
}

// RunPhases tracks I_t (total outgoing bandwidth of informed nodes) over
// dating-service spreading runs and locates the phase boundaries from the
// proof of Theorem 4.
func RunPhases(scale Scale, seed uint64) (PhasesResult, error) {
	n, reps := 4096, 10
	if scale == ScalePaper {
		reps = 100
	}
	root := rng.New(seed)
	var p1, p2, p3 stats.Accumulator
	var sample []int
	for rep := 0; rep < reps; rep++ {
		s := root.Split()
		r, err := gossip.Run(gossip.Config{Algorithm: gossip.Dating, N: n, Source: 0}, s)
		if err != nil {
			return PhasesResult{}, err
		}
		if !r.Completed {
			return PhasesResult{}, fmt.Errorf("sim: phases run incomplete")
		}
		e1, e2, e3 := gossip.PhaseBoundaries(r.ItHistory, n, n)
		p1.Add(float64(e1))
		p2.Add(float64(e2))
		p3.Add(float64(e3))
		if rep == 0 {
			sample = r.ItHistory
		}
	}
	return PhasesResult{
		N:         n,
		EndPhase1: p1.Mean(),
		EndPhase2: p2.Mean(),
		EndPhase3: p3.Mean(),
		ItSample:  sample,
	}, nil
}

// --- E6: hierarchical distribution (Theorem 10) --------------------------

// HierRow is one n-value of experiment E6.
type HierRow struct {
	N           int
	RichRounds  float64
	TotalRounds float64
}

// HierResult is the E6 outcome.
type HierResult struct{ Rows []HierRow }

// Table renders E6.
func (r HierResult) Table() *stats.Table {
	t := stats.NewTable("E6 — Theorem 10: rich nodes (bandwidth m/n) finish early",
		"n", "rich informed by", "all informed by")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.N), fmt.Sprintf("%.1f", row.RichRounds), fmt.Sprintf("%.1f", row.TotalRounds))
	}
	return t
}

// RunHierarchical runs the Theorem 10 experiment: a bimodal network where
// 10% of nodes have bandwidth 16, spreading from a rich source; rich nodes
// must be fully informed well before the weak tail.
func RunHierarchical(scale Scale, seed uint64) (HierResult, error) {
	ns := []int{512, 2048}
	reps := 8
	if scale == ScalePaper {
		ns = []int{512, 2048, 8192}
		reps = 100
	}
	root := rng.New(seed)
	var res HierResult
	for _, n := range ns {
		var rich, total stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			s := root.Split()
			hr, err := gossip.RunHierarchical(n, n/10, 16, s)
			if err != nil {
				return HierResult{}, err
			}
			if !hr.Completed {
				return HierResult{}, fmt.Errorf("sim: hierarchical run incomplete at n=%d", n)
			}
			rich.Add(float64(hr.RichRounds))
			total.Add(float64(hr.TotalRounds))
		}
		res.Rows = append(res.Rows, HierRow{N: n, RichRounds: rich.Mean(), TotalRounds: total.Mean()})
	}
	return res, nil
}

// --- E7: pipelining over the DHT (Section 4) -----------------------------

// PipelineRow is one k-value of experiment E7.
type PipelineRow struct {
	K         int // dating rounds
	Naive     int // time steps without pipelining: k * latency
	Pipelined int // time steps with pipelining: latency + k
}

// PipelineResult is the E7 outcome.
type PipelineResult struct {
	N            int
	ChordHops    float64 // measured average Chord lookup hops
	CDHops       float64 // measured average continuous-discrete hops
	LatencySteps int     // ceil(ChordHops), the per-lookup latency used
	Rows         []PipelineRow
}

// Table renders E7.
func (r PipelineResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E7 — pipelined dating over a DHT (n = %d, chord %.1f hops, cd %.1f hops)",
			r.N, r.ChordHops, r.CDHops),
		"k rounds", "naive steps", "pipelined steps")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.K), fmt.Sprint(row.Naive), fmt.Sprint(row.Pipelined))
	}
	return t
}

// RunPipelining measures DHT routing latency and contrasts k dating rounds
// with and without pipelining: Theta(k log n) versus Theta(log n + k),
// cross-validated against a simulated Pipeline.
func RunPipelining(scale Scale, seed uint64) (PipelineResult, error) {
	n, samples := 1024, 400
	if scale == ScalePaper {
		n, samples = 16384, 2000
	}
	root := rng.New(seed)
	ring, err := overlay.NewRing(n, root.Split())
	if err != nil {
		return PipelineResult{}, err
	}
	s := root.Split()
	chord := ring.AvgLookupHops(s, samples, ring.Lookup)
	cd := ring.AvgLookupHops(s, samples, ring.LookupCD)
	latency := int(math.Ceil(chord))
	res := PipelineResult{N: n, ChordHops: chord, CDHops: cd, LatencySteps: latency}
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		naive := core.TimeFor(k, latency, false)
		pipe := core.TimeFor(k, latency, true)
		// Validate the closed form against an actual pipeline simulation.
		pl, err := core.NewPipeline(latency)
		if err != nil {
			return PipelineResult{}, err
		}
		steps := 0
		for matured := 0; matured < k; steps++ {
			if _, ok := pl.Tick(nil); ok {
				matured++
			}
		}
		if steps != pipe {
			return PipelineResult{}, fmt.Errorf("sim: pipeline sim %d != closed form %d", steps, pipe)
		}
		res.Rows = append(res.Rows, PipelineRow{K: k, Naive: naive, Pipelined: pipe})
	}
	return res, nil
}

// --- E8: rumor mongering with network coding (Section 5) -----------------

// MongerRow is one block-count of experiment E8.
type MongerRow struct {
	Blocks     int
	Rounds     float64
	LowerBound int     // information-theoretic minimum (B at unit bandwidth)
	Efficiency float64 // innovative packets / packets sent
}

// MongerResult is the E8 outcome.
type MongerResult struct{ Rows []MongerRow }

// Table renders E8.
func (r MongerResult) Table() *stats.Table {
	t := stats.NewTable("E8 — multi-block broadcast via network coding over the dating service",
		"blocks", "rounds", "lower bound", "innovative fraction")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Blocks), fmt.Sprintf("%.1f", row.Rounds),
			fmt.Sprint(row.LowerBound), fmt.Sprintf("%.3f", row.Efficiency))
	}
	return t
}

// RunMongering broadcasts a B-block message via RLNC over the dating
// service and reports rounds against the B-round lower bound.
func RunMongering(scale Scale, seed uint64) (MongerResult, error) {
	n, reps := 100, 5
	if scale == ScalePaper {
		n, reps = 500, 30
	}
	root := rng.New(seed)
	var res MongerResult
	for _, blocks := range []int{8, 32} {
		var rounds stats.Accumulator
		var eff stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			s := root.Split()
			mr, err := coding.RunMonger(coding.MongerConfig{
				N: n, Blocks: blocks, BlockSize: 64, PayloadSeed: root.Uint64(),
			}, s)
			if err != nil {
				return MongerResult{}, err
			}
			if !mr.Completed {
				return MongerResult{}, fmt.Errorf("sim: mongering incomplete (B=%d)", blocks)
			}
			rounds.Add(float64(mr.Rounds))
			eff.Add(float64(mr.Innovative) / float64(mr.PacketsSent))
		}
		res.Rows = append(res.Rows, MongerRow{
			Blocks:     blocks,
			Rounds:     rounds.Mean(),
			LowerBound: blocks,
			Efficiency: eff.Mean(),
		})
	}
	return res, nil
}

// --- E9: spreading under churn (Section 1 dynamics) ----------------------

// ChurnRow is one crash-probability of experiment E9.
type ChurnRow struct {
	CrashProb float64
	Rounds    float64
	Crashed   float64
	Completed int
	Reps      int
}

// ChurnResult is the E9 outcome.
type ChurnResult struct{ Rows []ChurnRow }

// Table renders E9.
func (r ChurnResult) Table() *stats.Table {
	t := stats.NewTable("E9 — dating-service spreading under per-round crashes (n = 1000)",
		"crash prob", "rounds", "nodes crashed", "completed")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.2f", row.CrashProb), fmt.Sprintf("%.1f", row.Rounds),
			fmt.Sprintf("%.0f", row.Crashed), fmt.Sprintf("%d/%d", row.Completed, row.Reps))
	}
	return t
}

// RunChurn verifies that the spreading protocol tolerates node crashes —
// the robustness motivation the paper gives for keeping the protocol
// oblivious.
func RunChurn(scale Scale, seed uint64) (ChurnResult, error) {
	n, reps := 1000, 10
	if scale == ScalePaper {
		reps = 200
	}
	root := rng.New(seed)
	var res ChurnResult
	for _, p := range []float64{0, 0.01, 0.05} {
		var rounds, crashed stats.Accumulator
		completed := 0
		for rep := 0; rep < reps; rep++ {
			s := root.Split()
			r, err := gossip.Run(gossip.Config{Algorithm: gossip.Dating, N: n, Source: 0, CrashProb: p}, s)
			if err != nil {
				return ChurnResult{}, err
			}
			if r.Completed {
				completed++
			}
			rounds.Add(float64(r.Rounds))
			crashed.Add(float64(r.Crashed))
		}
		res.Rows = append(res.Rows, ChurnRow{
			CrashProb: p, Rounds: rounds.Mean(), Crashed: crashed.Mean(),
			Completed: completed, Reps: reps,
		})
	}
	return res, nil
}

// --- E10: replicated storage (Section 5) ----------------------------------

// StorageResult is the E10 outcome.
type StorageResult struct {
	N            int
	Rounds       float64
	MaxOccupancy float64
	MinOccupancy float64
	WastedFrac   float64
}

// Table renders E10.
func (r StorageResult) Table() *stats.Table {
	t := stats.NewTable(fmt.Sprintf("E10 — replicated storage via block exchanges (n = %d, 2 objects x 3 replicas, 12 slots)", r.N),
		"metric", "value")
	t.AddRow("rounds to full replication", fmt.Sprintf("%.1f", r.Rounds))
	t.AddRow("max occupancy", fmt.Sprintf("%.1f", r.MaxOccupancy))
	t.AddRow("min occupancy", fmt.Sprintf("%.1f", r.MinOccupancy))
	t.AddRow("wasted-date fraction", fmt.Sprintf("%.3f", r.WastedFrac))
	return t
}

// RunStorage runs E10 serially; see RunStoragePar.
func RunStorage(scale Scale, seed uint64) (StorageResult, error) {
	return RunStoragePar(scale, seed, 1)
}

// RunStoragePar replicates every node's objects over the dating service and
// reports convergence time and final load balance. Each repetition is one
// harness job seeded from (seed, repetition); inside a job, every round's
// Arrange draws spare tokens from the harness's shared worker budget (the
// Arranger is worker-count independent, so the numbers cannot move).
func RunStoragePar(scale Scale, seed uint64, workers int) (StorageResult, error) {
	n, reps := 100, 10
	if scale == ScalePaper {
		n, reps = 1000, 50
	}
	results := make([]storage.Result, reps)
	err := forEach(reps, workers, func(rep int, b *par.Budget) error {
		s := rng.New(rng.Derive(seed, domainStorage, uint64(rep)))
		r, err := storage.RunShared(storage.Config{
			N: n, ObjectsPerNode: 2, Replicas: 3, SlotsPerNode: 12, RoundCap: 2,
		}, s, b)
		if err != nil {
			return err
		}
		if !r.Completed {
			return fmt.Errorf("sim: storage run incomplete")
		}
		results[rep] = r
		return nil
	})
	if err != nil {
		return StorageResult{}, err
	}

	var rounds, maxOcc, minOcc, wasted stats.Accumulator
	for _, r := range results {
		rounds.Add(float64(r.Rounds))
		maxOcc.Add(float64(r.MaxOccupancy))
		minOcc.Add(float64(r.MinOccupancy))
		wasted.Add(float64(r.WastedDates) / float64(r.Transfers+r.WastedDates))
	}
	return StorageResult{
		N: n, Rounds: rounds.Mean(),
		MaxOccupancy: maxOcc.Mean(), MinOccupancy: minOcc.Mean(),
		WastedFrac: wasted.Mean(),
	}, nil
}
