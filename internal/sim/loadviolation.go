package sim

import (
	"fmt"

	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/stats"
)

// LoadRow is one algorithm of experiment E12: the worst per-round per-node
// loads observed while spreading one rumor. A unit-bandwidth node can
// legally send one and receive one message per round; anything above that
// is bandwidth the algorithm silently assumes, which is precisely the
// advantage the paper says makes PUSH/PULL comparisons unfair.
type LoadRow struct {
	Algorithm  gossip.Algorithm
	MaxInLoad  float64 // mean over reps of the worst per-round receive count
	MaxOutLoad float64 // mean over reps of the worst per-round serve count
	Rounds     float64
}

// LoadResult is the E12 outcome.
type LoadResult struct {
	N    int
	Rows []LoadRow
}

// Table renders E12.
func (r LoadResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E12 — worst per-round node loads while spreading (n = %d, unit bandwidth)", r.N),
		"algorithm", "max in-load", "max out-load", "rounds")
	for _, row := range r.Rows {
		t.AddRow(row.Algorithm.String(), fmt.Sprintf("%.1f", row.MaxInLoad),
			fmt.Sprintf("%.1f", row.MaxOutLoad), fmt.Sprintf("%.1f", row.Rounds))
	}
	return t
}

// RunLoadViolation measures the bandwidth honesty of every algorithm: the
// dating service must stay at 1/1; the unfair baselines overdrive nodes by
// Theta(log n / log log n) (balls-into-bins maxima).
func RunLoadViolation(scale Scale, seed uint64) (LoadResult, error) {
	n, reps := 2048, 10
	if scale == ScalePaper {
		n, reps = 16384, 100
	}
	root := rng.New(seed)
	res := LoadResult{N: n}
	for _, a := range gossip.Algorithms() {
		var inL, outL, rounds stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			s := root.Split()
			r, err := gossip.Run(gossip.Config{Algorithm: a, N: n, Source: 0}, s)
			if err != nil {
				return LoadResult{}, err
			}
			if !r.Completed {
				return LoadResult{}, fmt.Errorf("sim: %v incomplete in load experiment", a)
			}
			inL.Add(float64(r.MaxInLoad))
			outL.Add(float64(r.MaxOutLoad))
			rounds.Add(float64(r.Rounds))
		}
		res.Rows = append(res.Rows, LoadRow{
			Algorithm:  a,
			MaxInLoad:  inL.Mean(),
			MaxOutLoad: outL.Mean(),
			Rounds:     rounds.Mean(),
		})
	}
	return res, nil
}
