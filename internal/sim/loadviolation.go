package sim

import (
	"fmt"

	"repro/internal/gossip"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stats"
)

// LoadRow is one algorithm of experiment E12: the worst per-round per-node
// loads observed while spreading one rumor. A unit-bandwidth node can
// legally send one and receive one message per round; anything above that
// is bandwidth the algorithm silently assumes, which is precisely the
// advantage the paper says makes PUSH/PULL comparisons unfair.
type LoadRow struct {
	Algorithm  gossip.Algorithm
	MaxInLoad  float64 // mean over reps of the worst per-round receive count
	MaxOutLoad float64 // mean over reps of the worst per-round serve count
	Rounds     float64
}

// LoadResult is the E12 outcome.
type LoadResult struct {
	N    int
	Rows []LoadRow
}

// Table renders E12.
func (r LoadResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E12 — worst per-round node loads while spreading (n = %d, unit bandwidth)", r.N),
		"algorithm", "max in-load", "max out-load", "rounds")
	for _, row := range r.Rows {
		t.AddRow(row.Algorithm.String(), fmt.Sprintf("%.1f", row.MaxInLoad),
			fmt.Sprintf("%.1f", row.MaxOutLoad), fmt.Sprintf("%.1f", row.Rounds))
	}
	return t
}

// RunLoadViolation runs E12 serially; see RunLoadViolationPar.
func RunLoadViolation(scale Scale, seed uint64) (LoadResult, error) {
	return RunLoadViolationPar(scale, seed, 1)
}

// RunLoadViolationPar measures the bandwidth honesty of every algorithm:
// the dating service must stay at 1/1; the unfair baselines overdrive nodes
// by Theta(log n / log log n) (balls-into-bins maxima). Each repetition is
// one harness job seeded from (seed, algorithm index, repetition).
func RunLoadViolationPar(scale Scale, seed uint64, workers int) (LoadResult, error) {
	n, reps := 2048, 10
	if scale == ScalePaper {
		n, reps = 16384, 100
	}
	algos := gossip.Algorithms()
	type outcome struct{ in, out, rounds float64 }
	outs := make([]outcome, len(algos)*reps)
	err := forEach(len(outs), workers, func(j int, _ *par.Budget) error {
		ai, rep := j/reps, j%reps
		s := rng.New(rng.Derive(seed, domainLoads, uint64(ai), uint64(rep)))
		r, err := gossip.Run(gossip.Config{Algorithm: algos[ai], N: n, Source: 0}, s)
		if err != nil {
			return err
		}
		if !r.Completed {
			return fmt.Errorf("sim: %v incomplete in load experiment", algos[ai])
		}
		outs[j] = outcome{in: float64(r.MaxInLoad), out: float64(r.MaxOutLoad), rounds: float64(r.Rounds)}
		return nil
	})
	if err != nil {
		return LoadResult{}, err
	}

	res := LoadResult{N: n}
	for ai, a := range algos {
		var inL, outL, rounds stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			o := outs[ai*reps+rep]
			inL.Add(o.in)
			outL.Add(o.out)
			rounds.Add(o.rounds)
		}
		res.Rows = append(res.Rows, LoadRow{
			Algorithm:  a,
			MaxInLoad:  inL.Mean(),
			MaxOutLoad: outL.Mean(),
			Rounds:     rounds.Mean(),
		})
	}
	return res, nil
}
