package sim

// This file is the topology experiment and benchmark: rumor spreading
// constrained to generated graphs, with the spreader/stifler dynamics whose
// stifling rate alpha decides how much of the network the rumor reaches.
// Where the paper's protocols assume any-to-any rendezvous, these runs put
// the same machinery on scale-free, random and complete topologies and
// measure the final spread fraction — including the hub-vs-random source
// comparison that makes scale-free spreading's seed sensitivity visible.

import (
	"fmt"
	"runtime"
	"slices"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/run"
	"repro/internal/stats"
)

// domainTopologyJobs derives the per-job root seeds of the topology sweep
// (see the allocation map in internal/rng/domains.go).
const domainTopologyJobs uint64 = 0x81

// TopologySpreadRow is one (graph, alpha, start) cell of the sweep.
type TopologySpreadRow struct {
	Graph       string  `json:"graph"`
	N           int     `json:"n"`
	Alpha       float64 `json:"alpha"`
	Start       string  `json:"start"`
	Rounds      int     `json:"rounds"`
	FinalSpread float64 `json:"final_spread"`
	Completed   bool    `json:"completed"`
	Messages    int64   `json:"messages"`
}

// TopologySpreadResult is the topology experiment of the registry: final
// spread fraction versus stifling rate alpha on Barabási–Albert, Erdős–Rényi
// and complete graphs, with the BA rows run from both a random source and
// the highest-degree hub.
type TopologySpreadResult struct {
	Rows []TopologySpreadRow `json:"rows"`
}

// Table renders the sweep in the repository's table shape.
func (r TopologySpreadResult) Table() *stats.Table {
	t := stats.NewTable(
		"Graph-constrained spreading — final spread fraction vs stifling rate alpha",
		"graph", "n", "alpha", "start", "rounds", "final spread", "completed", "messages",
	)
	for _, row := range r.Rows {
		t.AddRow(
			row.Graph,
			fmt.Sprint(row.N),
			fmt.Sprintf("%.2f", row.Alpha),
			row.Start,
			fmt.Sprint(row.Rounds),
			fmt.Sprintf("%.4f", row.FinalSpread),
			fmt.Sprint(row.Completed),
			fmt.Sprint(row.Messages),
		)
	}
	return t
}

// topologyJob is one cell of the sweep; jobs share the read-only graphs and
// differ only in coordinates.
type topologyJob struct {
	name   string
	g      *graph.CSR
	alpha  float64
	start  string
	source int
}

// RunTopologySpread is the registry entry point for the topology experiment.
// Quick scale runs n=2000 generated graphs and an n=1000 complete graph
// (seconds); paper scale raises the generated graphs to n=20000 (the
// complete graph stays small — its CSR is O(n²)). Jobs fan across workers
// goroutines with per-job derived seeds, so the table is byte-identical for
// every worker count.
func RunTopologySpread(scale Scale, seed uint64, workers int) (TopologySpreadResult, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	nGen, nComplete := 2_000, 1_000
	if scale == ScalePaper {
		nGen, nComplete = 20_000, 2_000
	}
	ba, err := graph.BarabasiAlbert(nGen, 3, rng.Derive(seed, domainTopologyJobs, 1))
	if err != nil {
		return TopologySpreadResult{}, err
	}
	er, err := graph.ErdosRenyi(nGen, 6/float64(nGen-1), rng.Derive(seed, domainTopologyJobs, 2))
	if err != nil {
		return TopologySpreadResult{}, err
	}
	complete, err := graph.Complete(nComplete)
	if err != nil {
		return TopologySpreadResult{}, err
	}

	var jobs []topologyJob
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		jobs = append(jobs,
			topologyJob{"ba", ba, alpha, "random", 0},
			topologyJob{"ba", ba, alpha, "hub", ba.Hub()},
			topologyJob{"er", er, alpha, "random", 0},
			topologyJob{"complete", complete, alpha, "random", 0},
		)
	}

	rows := make([]TopologySpreadRow, len(jobs))
	err = forEach(len(jobs), workers, func(j int, _ *par.Budget) error {
		job := jobs[j]
		rep, err := run.Run(
			gossip.TopologyConfig{Graph: job.g, Source: job.source, Alpha: job.alpha},
			run.WithSeed(rng.Derive(seed, domainTopologyJobs, uint64(j), 3)),
		)
		if err != nil {
			return fmt.Errorf("sim: topology %s alpha=%.2f %s: %w", job.name, job.alpha, job.start, err)
		}
		det := rep.Detail.(gossip.TopologyResult)
		rows[j] = TopologySpreadRow{
			Graph:       job.name,
			N:           job.g.N(),
			Alpha:       job.alpha,
			Start:       job.start,
			Rounds:      rep.Rounds,
			FinalSpread: det.FinalSpread,
			Completed:   rep.Completed,
			Messages:    rep.Messages,
		}
		return nil
	})
	if err != nil {
		return TopologySpreadResult{}, err
	}
	return TopologySpreadResult{Rows: rows}, nil
}

// TopologyBenchRow reports one shard count of the topology benchmark.
type TopologyBenchRow struct {
	Shards      int     `json:"shards"`
	Rounds      int     `json:"rounds"`
	FinalSpread float64 `json:"final_spread"`
	SecPerRound float64 `json:"seconds_per_round"`
	MsgsPerSec  float64 `json:"messages_per_second"`
}

// TopologyBenchResult is the cmd/datebench topology mode: spreader/stifler
// spreading on a Barabási–Albert graph at shard counts {1, shards}. All
// transition randomness derives from per-peer streams consumed in canonical
// inbox order, so the trajectories of every shard count must be
// bit-identical; Identical reports that check. GraphDigest witnesses that
// every shard count also ran the identical topology.
type TopologyBenchResult struct {
	N           int    `json:"n"`
	GraphDigest string `json:"graph_digest"`
	Identical   bool   `json:"identical_across_shards"`
	// TrajectoryDigest is the FNV-1a digest of the reference trajectory: a
	// pure function of (n, seed), whatever the shard count.
	TrajectoryDigest string             `json:"trajectory_digest"`
	Rows             []TopologyBenchRow `json:"rows"`
	Points           []BenchPoint       `json:"points"`
}

// Table renders the benchmark in the repository's table shape.
func (r TopologyBenchResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Topology runtime — BA spreader/stifler spread, n=%d (identical trajectories: %v)", r.N, r.Identical),
		"shards", "rounds", "final spread", "s/round", "msg/s",
	)
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.Shards),
			fmt.Sprint(row.Rounds),
			fmt.Sprintf("%.4f", row.FinalSpread),
			fmt.Sprintf("%.4f", row.SecPerRound),
			fmt.Sprintf("%.3g", row.MsgsPerSec),
		)
	}
	return t
}

// RunTopologyBench profiles graph-constrained spreading at a single n: a
// BA(m=3) graph built once, spread with alpha=0.25 at 1 and shards workers
// on the sharded runtime. Every run goes through the unified runner; rows
// and bench points derive from its Report, with memory sampled around the
// whole run (graph construction excluded — the graph is shared). Trajectory
// disagreement is reported in Identical, not as an error, so the caller
// decides whether it gates.
func RunTopologyBench(n, shards int, seed uint64) (TopologyBenchResult, error) {
	if n <= 0 {
		return TopologyBenchResult{}, fmt.Errorf("sim: topology bench needs positive n, got %d", n)
	}
	g, err := graph.BarabasiAlbert(n, 3, seed)
	if err != nil {
		return TopologyBenchResult{}, err
	}
	cfg := gossip.TopologyConfig{Graph: g, Source: 0, Alpha: 0.25}
	shardCounts := []int{1}
	if shards > 1 {
		shardCounts = append(shardCounts, shards)
	}
	res := TopologyBenchResult{N: n, GraphDigest: g.Digest(), Identical: true}
	var ref []int
	for i, sc := range shardCounts {
		runtime.GC()
		var memBefore, memAfter runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		rep, err := run.Run(cfg, run.WithSeed(seed), run.WithWorkers(sc))
		runtime.ReadMemStats(&memAfter)
		if err != nil {
			return TopologyBenchResult{}, err
		}
		if !rep.Completed {
			return TopologyBenchResult{}, fmt.Errorf("sim: topology bench shards=%d did not terminate in %d rounds", sc, rep.Rounds)
		}
		if i == 0 {
			ref = rep.Trajectory
			res.TrajectoryDigest = TrajectoryDigest(ref)
		} else if !slices.Equal(rep.Trajectory, ref) {
			res.Identical = false
		}
		det := rep.Detail.(gossip.TopologyResult)
		p := PointFromReport(n, rep)
		p.SampleMem(&memBefore, &memAfter)
		res.Rows = append(res.Rows, TopologyBenchRow{
			Shards:      sc,
			Rounds:      rep.Rounds,
			FinalSpread: det.FinalSpread,
			SecPerRound: p.SecondsPerRound,
			MsgsPerSec:  p.MessagesPerSecond,
		})
		res.Points = append(res.Points, p)
	}
	return res, nil
}
