package sim

import (
	"fmt"
	"runtime"
	"slices"

	"repro/internal/bandwidth"
	"repro/internal/gossip"
	"repro/internal/live"
	"repro/internal/run"
	"repro/internal/stats"
)

// LiveRow reports one configuration of the live-runtime experiment.
type LiveRow struct {
	N            int     `json:"n"`
	Model        string  `json:"model"`
	Shards       int     `json:"shards"`
	DatingRounds int     `json:"dating_rounds"`
	Completed    bool    `json:"completed"`
	SecPerDating float64 `json:"seconds_per_dating_round"`
	MsgsPerSec   float64 `json:"messages_per_second"`
}

// LiveSweepResult is the live experiment of the registry: a scale sweep of
// full message-level spreading runs under the perfect-sync model, followed
// by a latency/loss/churn sensitivity table at a fixed n.
type LiveSweepResult struct {
	Rows []LiveRow `json:"rows"`
}

// Table renders the sweep in the repository's table shape.
func (r LiveSweepResult) Table() *stats.Table {
	t := stats.NewTable(
		"Live message runtime — full-spread scale sweep + network-model sensitivity (unit bandwidth)",
		"n", "model", "shards", "dating rounds", "completed", "s/dating round", "msg/s",
	)
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.N),
			row.Model,
			fmt.Sprint(row.Shards),
			fmt.Sprint(row.DatingRounds),
			fmt.Sprint(row.Completed),
			fmt.Sprintf("%.4f", row.SecPerDating),
			fmt.Sprintf("%.3g", row.MsgsPerSec),
		)
	}
	return t
}

// liveModel pairs a sensitivity-table row label with its network model.
type liveModel struct {
	name string
	net  live.NetModel
}

// liveModels is the sensitivity axis at peer count n: the paper-faithful
// synchronous network, then progressively more hostile conditions. Spread
// time should degrade gracefully, never collapse — the protocol is
// oblivious, so no message is load-bearing. The ring-latency row is the
// NetModel-asymmetry example: per-pair latency proportional to ring
// distance over a DHT-style embedding of the n peers, so a request's
// flight time depends on which rendezvous it happens to land on.
func liveModels(seed uint64, n int) []liveModel {
	return []liveModel{
		{"sync", nil},
		{"latency-2", live.FixedLatency{Rounds: 2}},
		{"latency-4", live.FixedLatency{Rounds: 4}},
		{"geom-p0.5", live.GeomLatency{P: 0.5, Cap: 8}},
		{"ring-latency", live.RingLatency{Pos: live.UniformRing(n, seed+2), Scale: 8, Max: 5}},
		{"loss-1%", live.Loss{P: 0.01}},
		{"loss-10%", live.Loss{P: 0.10}},
		{"churn-10%", live.EpochChurn{Seed: seed + 1, Epoch: 6, DownFrac: 0.10}},
	}
}

// RunLiveScaled is the registry entry point for the live-runtime
// experiment. Quick scale sweeps n up to 10^4 with a sensitivity table at
// n=2000 (seconds); paper scale sweeps n up to 10^6 with the sensitivity
// table at n=10^5 (minutes). The workers knob sets the runtime's shard
// count — the live runtime is bit-identical for every shard count, so
// workers only changes wall-clock time (the timing columns).
func RunLiveScaled(scale Scale, seed uint64, workers int) (LiveSweepResult, error) {
	ns := []int{1_000, 10_000}
	nSens := 2_000
	if scale == ScalePaper {
		ns = []int{10_000, 100_000, 1_000_000}
		nSens = 100_000
	}
	var res LiveSweepResult
	for _, n := range ns {
		row, err := runLiveRow(n, "sync", nil, workers, seed)
		if err != nil {
			return LiveSweepResult{}, err
		}
		res.Rows = append(res.Rows, row)
	}
	for _, m := range liveModels(seed, nSens) {
		row, err := runLiveRow(nSens, m.name, m.net, workers, seed)
		if err != nil {
			return LiveSweepResult{}, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runLiveRow executes one full message-level spreading run through the
// unified runner and derives the row from its Report.
func runLiveRow(n int, model string, net live.NetModel, shards int, seed uint64) (LiveRow, error) {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	rep, err := run.Run(gossip.LiveConfig{Profile: bandwidth.Homogeneous(n, 1)},
		run.WithSeed(seed), run.WithWorkers(shards), run.WithNet(net))
	if err != nil {
		return LiveRow{}, fmt.Errorf("sim: live n=%d model=%s: %w", n, model, err)
	}
	p := PointFromReport(n, rep)
	return LiveRow{
		N:            n,
		Model:        model,
		Shards:       shards,
		DatingRounds: rep.Rounds,
		Completed:    rep.Completed,
		SecPerDating: p.SecondsPerRound,
		MsgsPerSec:   p.MessagesPerSecond,
	}, nil
}

// LiveBenchRow reports one engine configuration of the live benchmark.
type LiveBenchRow struct {
	Engine             string  `json:"engine"`
	Shards             int     `json:"shards"`
	DatingRounds       int     `json:"dating_rounds"`
	SecPerDating       float64 `json:"seconds_per_dating_round"`
	MsgsPerSec         float64 `json:"messages_per_second"`
	SpeedupVsGoroutine float64 `json:"speedup_vs_goroutine,omitempty"`
}

// LiveBenchResult is the cmd/datebench live mode: the sharded runtime at
// shard counts {1, shards} — plus the legacy goroutine-per-peer engine
// when baseline is set — spreading one rumor to every peer under the
// perfect-sync model. All runs share per-peer stream derivation, so their
// informed-count trajectories must be bit-identical; Identical reports
// that check (a cheap cross-engine smoke test on every benchmark run).
// Points carries the generic Report-derived perf-trajectory records the
// BENCH_live.json file collects.
type LiveBenchResult struct {
	N         int  `json:"n"`
	Identical bool `json:"identical_across_engines"`
	// TrajectoryDigest is the FNV-1a digest of the reference trajectory
	// (see TrajectoryDigest): a pure function of (n, seed), whatever the
	// engine, shard count, pipelining or instrumentation.
	TrajectoryDigest string         `json:"trajectory_digest"`
	Rows             []LiveBenchRow `json:"rows"`
	Points           []BenchPoint   `json:"points"`
}

// Table renders the benchmark in the repository's table shape.
func (r LiveBenchResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Live engines — full spread, n=%d, perfect sync (identical trajectories: %v)", r.N, r.Identical),
		"engine", "shards", "dating rounds", "s/dating round", "msg/s", "speedup",
	)
	for _, row := range r.Rows {
		speedup := ""
		if row.SpeedupVsGoroutine > 0 {
			speedup = fmt.Sprintf("%.2fx", row.SpeedupVsGoroutine)
		}
		t.AddRow(
			row.Engine,
			fmt.Sprint(row.Shards),
			fmt.Sprint(row.DatingRounds),
			fmt.Sprintf("%.4f", row.SecPerDating),
			fmt.Sprintf("%.3g", row.MsgsPerSec),
			speedup,
		)
	}
	return t
}

// RunLiveBench profiles message-level spreading at a single n: the sharded
// runtime at 1 and shards workers, and optionally the legacy goroutine
// engine as the baseline the speedup column is relative to. Every run goes
// through the unified runner, and rows and bench points derive from its
// Report. It returns an error if any run fails; trajectory disagreement is
// reported in Identical, not as an error, so the caller decides whether it
// gates.
func RunLiveBench(n, shards int, baseline bool, seed uint64) (LiveBenchResult, error) {
	if n <= 0 {
		return LiveBenchResult{}, fmt.Errorf("sim: live bench needs positive n, got %d", n)
	}
	type runSpec struct {
		engine string
		shards int
		opts   []run.Option
	}
	specs := []runSpec{}
	shardCounts := []int{1}
	if shards > 1 {
		shardCounts = append(shardCounts, shards)
	}
	for _, sc := range shardCounts {
		specs = append(specs, runSpec{"sharded", sc,
			[]run.Option{run.WithSeed(seed), run.WithWorkers(sc), run.WithEngine(run.EngineSharded)}})
	}
	// The pipelined schedule fuses the delivery sort into the step phase;
	// its trajectory rides the same Identical check as every other engine,
	// so the benchmark doubles as the fused-loop golden.
	pipelinedShards := shardCounts[len(shardCounts)-1]
	specs = append(specs, runSpec{"sharded-pipelined", pipelinedShards,
		[]run.Option{run.WithSeed(seed), run.WithWorkers(pipelinedShards),
			run.WithEngine(run.EngineSharded), run.WithPipeline(4)}})
	if baseline {
		specs = append(specs, runSpec{"goroutine", 0,
			[]run.Option{run.WithSeed(seed), run.WithEngine(run.EngineGoroutine)}})
	}

	res := LiveBenchResult{N: n, Identical: true}
	var ref []int
	var goroutineSec float64
	for i, spec := range specs {
		// The memory sample brackets run.Run entirely (runtime construction
		// included); the GC keeps the heap comparable across engines.
		runtime.GC()
		var memBefore, memAfter runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		rep, err := run.Run(gossip.LiveConfig{Profile: bandwidth.Homogeneous(n, 1)}, spec.opts...)
		runtime.ReadMemStats(&memAfter)
		if err != nil {
			return LiveBenchResult{}, err
		}
		if !rep.Completed {
			return LiveBenchResult{}, fmt.Errorf("sim: live bench %s/%d incomplete after %d dating rounds",
				spec.engine, spec.shards, rep.Rounds)
		}
		if i == 0 {
			ref = rep.Trajectory
			res.TrajectoryDigest = TrajectoryDigest(ref)
		} else if !slices.Equal(rep.Trajectory, ref) {
			res.Identical = false
		}
		p := PointFromReport(n, rep)
		p.SampleMem(&memBefore, &memAfter)
		if spec.engine == "sharded-pipelined" {
			// Distinct protocol name so the perf gate tracks the fused loop
			// as its own trajectory instead of pairing it with the sharded
			// point at the same (n, workers) key.
			p.Protocol = "live-pipelined"
		}
		row := LiveBenchRow{
			Engine:       spec.engine,
			Shards:       spec.shards,
			DatingRounds: rep.Rounds,
			SecPerDating: p.SecondsPerRound,
			MsgsPerSec:   p.MessagesPerSecond,
		}
		if spec.engine == "goroutine" {
			goroutineSec = row.SecPerDating
		}
		res.Rows = append(res.Rows, row)
		res.Points = append(res.Points, p)
	}
	if goroutineSec > 0 {
		for i := range res.Rows {
			if res.Rows[i].SecPerDating > 0 {
				res.Rows[i].SpeedupVsGoroutine = goroutineSec / res.Rows[i].SecPerDating
			}
		}
	}
	return res, nil
}
