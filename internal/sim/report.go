package sim

// This file is the Report-consuming side of the unified runner: a generic
// BENCH_*.json point derived from any run.Report, and the "protocols"
// registry experiment that drives every protocol of the repository through
// run.Run — one entrypoint, one report shape, one table.

import (
	"fmt"
	"runtime"

	"repro/internal/bandwidth"
	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/run"
	"repro/internal/stats"
	"repro/internal/storage"
)

// BenchPoint is the generic perf-trajectory record the BENCH_*.json writers
// emit: every field is computed from a run.Report, so any protocol the
// unified runner can execute can be benchmarked without a bespoke writer.
//
// The two memory columns are sampled by the writers (SampleMem) around the
// whole configuration — scratch construction, warm-up, and timed rounds —
// rather than derived from the Report: PeakHeapSysMB is the runtime's heap
// high-water mark taken from the OS (the closest Go-visible proxy for peak
// RSS; monotonic over the process, so earlier configurations' peaks carry
// forward), and TotalAllocMB is the bytes the configuration allocated
// across all goroutines, scratch included. Together
// they make scratch-memory regressions — e.g. per-worker count arrays
// creeping back in — visible in the trajectory next to s/round. Zero means
// the writer did not sample memory.
type BenchPoint struct {
	Protocol          string  `json:"protocol"`
	N                 int     `json:"n"`
	Workers           int     `json:"workers"`
	Rounds            int     `json:"rounds"`
	Completed         bool    `json:"completed"`
	Seconds           float64 `json:"seconds"`
	SecondsPerRound   float64 `json:"seconds_per_round"`
	Messages          int64   `json:"messages"`
	MessagesPerSecond float64 `json:"messages_per_second"`
	Dropped           int64   `json:"dropped,omitempty"`
	Clamped           int64   `json:"clamped,omitempty"`
	PeakHeapSysMB     float64 `json:"peak_heap_sys_mb,omitempty"`
	TotalAllocMB      float64 `json:"total_alloc_mb,omitempty"`
}

// SampleMem fills the point's memory columns from two runtime.ReadMemStats
// samples taken before and after the timed section.
func (p *BenchPoint) SampleMem(before, after *runtime.MemStats) {
	const mb = 1 << 20
	p.PeakHeapSysMB = float64(after.HeapSys) / mb
	p.TotalAllocMB = float64(after.TotalAlloc-before.TotalAlloc) / mb
}

// PointFromReport derives the generic bench point of a run over n nodes.
func PointFromReport(n int, rep run.Report) BenchPoint {
	p := BenchPoint{
		Protocol:  rep.Protocol,
		N:         n,
		Workers:   rep.Workers,
		Rounds:    rep.Rounds,
		Completed: rep.Completed,
		Seconds:   rep.Wall.Seconds(),
		Messages:  rep.Messages,
		Dropped:   rep.Dropped,
		Clamped:   rep.Clamped,
	}
	if rep.Rounds > 0 {
		p.SecondsPerRound = p.Seconds / float64(rep.Rounds)
	}
	if p.Seconds > 0 {
		p.MessagesPerSecond = float64(rep.Messages) / p.Seconds
	}
	return p
}

// TrajectoryDigest folds a run's trajectory into an FNV-1a 64 hex digest.
// The trajectory is the deterministic heart of a report — a pure function of
// (spec, seed), independent of workers, engine, pipelining and observers —
// so the digest is a compact bit-identity witness: two runs agree on it iff
// they spread identically round for round. datebench -digest prints it, and
// the CI instrumentation-identity smoke compares instrumented against
// uninstrumented runs with it (the full -json output carries wall times,
// which never reproduce).
func TrajectoryDigest(traj []int) string {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range traj {
		x := uint64(int64(v))
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= prime
		}
	}
	return fmt.Sprintf("%016x", h)
}

// ProtocolsRow is one protocol's unified report in the registry table.
type ProtocolsRow struct {
	Protocol   string
	N          int
	Rounds     int
	Completed  bool
	Messages   int64
	MaxInLoad  int
	MaxOutLoad int
	Seconds    float64
}

// ProtocolsResult is the outcome of the unified-runner experiment: every
// protocol of the repository executed through run.Run with the same root
// seed and worker budget, reported in the one Report shape.
type ProtocolsResult struct {
	Workers int
	Rows    []ProtocolsRow
}

// Table renders the sweep; only the timing column varies run to run.
func (r ProtocolsResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Unified runner — every protocol via run.Run(spec, WithSeed, WithWorkers(%d))", r.Workers),
		"protocol", "n", "rounds", "completed", "messages", "max in/out load", "seconds")
	for _, row := range r.Rows {
		loads := "—"
		if row.MaxInLoad > 0 || row.MaxOutLoad > 0 {
			loads = fmt.Sprintf("%d/%d", row.MaxInLoad, row.MaxOutLoad)
		}
		t.AddRow(
			row.Protocol,
			fmt.Sprint(row.N),
			fmt.Sprint(row.Rounds),
			fmt.Sprint(row.Completed),
			fmt.Sprint(row.Messages),
			loads,
			fmt.Sprintf("%.3f", row.Seconds),
		)
	}
	return t
}

// RunProtocols is the registry entry point for the unified-runner sweep:
// one run.Run per protocol — rumor, multi-rumor, live, monger, storage,
// handshake — sharing a root seed and a worker budget. Everything but the
// timing column is deterministic, and the budget is a pure speed knob.
func RunProtocols(scale Scale, seed uint64, workers int) (ProtocolsResult, error) {
	n := 256
	if scale == ScalePaper {
		n = 4096
	}
	specs := []struct {
		n    int
		spec run.Spec
	}{
		{n, gossip.Config{Algorithm: gossip.Dating, N: n}},
		{n, gossip.MultiRumorConfig{N: n, Injections: []gossip.Injection{
			{Round: 1, Source: 0}, {Round: 3, Source: n / 3}, {Round: 5, Source: 2 * n / 3},
		}}},
		{n, gossip.LiveConfig{Profile: bandwidth.Homogeneous(n, 1)}},
		{n / 2, coding.MongerConfig{N: n / 2, Blocks: 8, BlockSize: 32, PayloadSeed: seed}},
		{n / 2, storage.Config{N: n / 2, ObjectsPerNode: 2, Replicas: 3, SlotsPerNode: 12, RoundCap: 2}},
		{n, core.HandshakeConfig{Profile: bandwidth.Homogeneous(n, 1), Rounds: 10}},
	}
	res := ProtocolsResult{Workers: workers}
	for _, sp := range specs {
		rep, err := run.Run(sp.spec, run.WithSeed(seed), run.WithWorkers(workers))
		if err != nil {
			return ProtocolsResult{}, fmt.Errorf("sim: protocols %s: %w", sp.spec.Protocol(), err)
		}
		if !rep.Completed {
			return ProtocolsResult{}, fmt.Errorf("sim: protocols %s incomplete after %d rounds", rep.Protocol, rep.Rounds)
		}
		res.Rows = append(res.Rows, ProtocolsRow{
			Protocol:   rep.Protocol,
			N:          sp.n,
			Rounds:     rep.Rounds,
			Completed:  rep.Completed,
			Messages:   rep.Messages,
			MaxInLoad:  rep.MaxInLoad,
			MaxOutLoad: rep.MaxOutLoad,
			Seconds:    rep.Wall.Seconds(),
		})
	}
	return res, nil
}
