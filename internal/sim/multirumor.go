package sim

import (
	"fmt"

	"repro/internal/gossip"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stats"
)

// MultiRumorRow is one rumor-count of experiment E11.
type MultiRumorRow struct {
	Rumors       int
	Rounds       float64 // rounds until every node knows every rumor
	PerRumorMean float64 // mean per-rumor completion round
}

// MultiRumorSimResult is the E11 outcome: spreading R rumors injected over
// time costs far less than R sequential broadcasts because rumors share the
// arranged dates.
type MultiRumorSimResult struct {
	N            int
	SingleRounds float64 // baseline: one rumor alone
	Rows         []MultiRumorRow
}

// Table renders E11.
func (r MultiRumorSimResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E11 — concurrent rumors over one dating service (n = %d; single rumor alone: %.1f rounds)",
			r.N, r.SingleRounds),
		"rumors", "all-done rounds", "per-rumor mean", "vs sequential")
	for _, row := range r.Rows {
		seq := r.SingleRounds * float64(row.Rumors)
		t.AddRow(fmt.Sprint(row.Rumors), fmt.Sprintf("%.1f", row.Rounds),
			fmt.Sprintf("%.1f", row.PerRumorMean), fmt.Sprintf("%.1fx faster", seq/row.Rounds))
	}
	return t
}

// RunMultiRumorExperiment runs E11 serially; see RunMultiRumorExperimentPar.
func RunMultiRumorExperiment(scale Scale, seed uint64) (MultiRumorSimResult, error) {
	return RunMultiRumorExperimentPar(scale, seed, 1)
}

// RunMultiRumorExperimentPar injects R rumors two rounds apart on distinct
// sources and measures completion, for R in {1, 2, 4, 8}. Each repetition
// is one harness job seeded from (seed, rumor-count index, repetition).
func RunMultiRumorExperimentPar(scale Scale, seed uint64, workers int) (MultiRumorSimResult, error) {
	n, reps := 512, 8
	if scale == ScalePaper {
		n, reps = 4096, 50
	}
	rumorCounts := []int{1, 2, 4, 8}
	type outcome struct{ rounds, perRumor float64 }
	outs := make([]outcome, len(rumorCounts)*reps)
	err := forEach(len(outs), workers, func(j int, _ *par.Budget) error {
		ri, rep := j/reps, j%reps
		rumors := rumorCounts[ri]
		injections := make([]gossip.Injection, rumors)
		for r := range injections {
			injections[r] = gossip.Injection{Round: 1 + 2*r, Source: (r * 37) % n}
		}
		s := rng.New(rng.Derive(seed, domainMultiRumor, uint64(ri), uint64(rep)))
		mr, err := gossip.RunMultiRumor(gossip.MultiRumorConfig{
			N:          n,
			Injections: injections,
			Forwarding: gossip.ForwardRandom,
		}, s)
		if err != nil {
			return err
		}
		if !mr.Completed {
			return fmt.Errorf("sim: multi-rumor run incomplete (R=%d)", rumors)
		}
		var sum float64
		for _, d := range mr.PerRumorDone {
			sum += float64(d)
		}
		outs[j] = outcome{rounds: float64(mr.Rounds), perRumor: sum / float64(rumors)}
		return nil
	})
	if err != nil {
		return MultiRumorSimResult{}, err
	}

	var res MultiRumorSimResult
	res.N = n
	for ri, rumors := range rumorCounts {
		var rounds, per stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			rounds.Add(outs[ri*reps+rep].rounds)
			per.Add(outs[ri*reps+rep].perRumor)
		}
		if rumors == 1 {
			res.SingleRounds = rounds.Mean()
		}
		res.Rows = append(res.Rows, MultiRumorRow{
			Rumors:       rumors,
			Rounds:       rounds.Mean(),
			PerRumorMean: per.Mean(),
		})
	}
	return res, nil
}
