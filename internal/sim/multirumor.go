package sim

import (
	"fmt"

	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/stats"
)

// MultiRumorRow is one rumor-count of experiment E11.
type MultiRumorRow struct {
	Rumors       int
	Rounds       float64 // rounds until every node knows every rumor
	PerRumorMean float64 // mean per-rumor completion round
}

// MultiRumorSimResult is the E11 outcome: spreading R rumors injected over
// time costs far less than R sequential broadcasts because rumors share the
// arranged dates.
type MultiRumorSimResult struct {
	N            int
	SingleRounds float64 // baseline: one rumor alone
	Rows         []MultiRumorRow
}

// Table renders E11.
func (r MultiRumorSimResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E11 — concurrent rumors over one dating service (n = %d; single rumor alone: %.1f rounds)",
			r.N, r.SingleRounds),
		"rumors", "all-done rounds", "per-rumor mean", "vs sequential")
	for _, row := range r.Rows {
		seq := r.SingleRounds * float64(row.Rumors)
		t.AddRow(fmt.Sprint(row.Rumors), fmt.Sprintf("%.1f", row.Rounds),
			fmt.Sprintf("%.1f", row.PerRumorMean), fmt.Sprintf("%.1fx faster", seq/row.Rounds))
	}
	return t
}

// RunMultiRumorExperiment injects R rumors two rounds apart on distinct
// sources and measures completion, for R in {1, 2, 4, 8}.
func RunMultiRumorExperiment(scale Scale, seed uint64) (MultiRumorSimResult, error) {
	n, reps := 512, 8
	if scale == ScalePaper {
		n, reps = 4096, 50
	}
	root := rng.New(seed)
	var res MultiRumorSimResult
	res.N = n
	for _, rumors := range []int{1, 2, 4, 8} {
		var rounds, per stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			injections := make([]gossip.Injection, rumors)
			for r := range injections {
				injections[r] = gossip.Injection{Round: 1 + 2*r, Source: (r * 37) % n}
			}
			s := root.Split()
			mr, err := gossip.RunMultiRumor(gossip.MultiRumorConfig{
				N:          n,
				Injections: injections,
				Forwarding: gossip.ForwardRandom,
			}, s)
			if err != nil {
				return MultiRumorSimResult{}, err
			}
			if !mr.Completed {
				return MultiRumorSimResult{}, fmt.Errorf("sim: multi-rumor run incomplete (R=%d)", rumors)
			}
			rounds.Add(float64(mr.Rounds))
			var sum float64
			for _, d := range mr.PerRumorDone {
				sum += float64(d)
			}
			per.Add(sum / float64(rumors))
		}
		if rumors == 1 {
			res.SingleRounds = rounds.Mean()
		}
		res.Rows = append(res.Rows, MultiRumorRow{
			Rumors:       rumors,
			Rounds:       rounds.Mean(),
			PerRumorMean: per.Mean(),
		})
	}
	return res, nil
}
