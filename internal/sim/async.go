package sim

// This file is the sync-vs-async experiment and benchmark: the same rumor,
// spread by round-synchronous protocols and by the clockless push&pull
// runtime, on homogeneous and heterogeneous profiles. Time units align by
// construction — a unit-rate peer fires once per expected synchronous
// round — so the two spread curves are directly comparable.

import (
	"fmt"
	"runtime"
	"slices"

	"repro/internal/bandwidth"
	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/run"
	"repro/internal/stats"
)

// asyncZipfDomain derives the stream generating the heterogeneous profile
// of the comparison (see the allocation map in internal/rng/domains.go).
const asyncZipfDomain uint64 = 0x71

// AsyncCompareRow is one (population, protocol) spread curve summary.
type AsyncCompareRow struct {
	N         int     `json:"n"`
	Profile   string  `json:"profile"`
	Mode      string  `json:"mode"`
	Steps     int     `json:"steps"` // rounds (sync) or calendar buckets (async)
	Time      float64 `json:"time"`  // clock time to completion; rounds == time for sync
	T50       float64 `json:"t50"`   // time to inform half the peers
	T90       float64 `json:"t90"`   // time to inform 90% of the peers
	Completed bool    `json:"completed"`
	Messages  int64   `json:"messages"`
}

// AsyncCompareResult is the async experiment of the registry: spread-curve
// milestones for round-synchronous push&pull versus the asynchronous
// clockless runtime, then the heterogeneous-rate regime — a Zipf bandwidth
// profile driving both the dating spreader's per-round fan-out and the
// async runtime's firing rates.
type AsyncCompareResult struct {
	Rows []AsyncCompareRow `json:"rows"`
}

// Table renders the comparison in the repository's table shape.
func (r AsyncCompareResult) Table() *stats.Table {
	t := stats.NewTable(
		"Sync vs async spreading — rounds vs exponential peer clocks (time unit = expected round)",
		"n", "profile", "mode", "steps", "time", "t50", "t90", "completed", "messages",
	)
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.N),
			row.Profile,
			row.Mode,
			fmt.Sprint(row.Steps),
			fmt.Sprintf("%.1f", row.Time),
			fmt.Sprintf("%.1f", row.T50),
			fmt.Sprintf("%.1f", row.T90),
			fmt.Sprint(row.Completed),
			fmt.Sprint(row.Messages),
		)
	}
	return t
}

// milestone returns the earliest time (in units of timePerStep) at which the
// trajectory reaches frac of n, or the full run time if it never does.
func milestone(traj []int, n int, frac, timePerStep float64) float64 {
	goal := int(frac * float64(n))
	for i, v := range traj {
		if v >= goal {
			return float64(i+1) * timePerStep
		}
	}
	return float64(len(traj)) * timePerStep
}

// compareRow runs one spec through the unified runner and summarizes its
// spread curve. timePerStep converts trajectory indices to clock time: 1
// for both the synchronous protocols (one round = one time unit) and the
// async runtime at the default bucket width.
func compareRow(n int, profile, mode string, spec run.Spec, workers int, seed uint64) (AsyncCompareRow, error) {
	rep, err := run.Run(spec, run.WithSeed(seed), run.WithWorkers(workers))
	if err != nil {
		return AsyncCompareRow{}, fmt.Errorf("sim: async compare %s/%s n=%d: %w", profile, mode, n, err)
	}
	const timePerStep = 1.0
	return AsyncCompareRow{
		N:         n,
		Profile:   profile,
		Mode:      mode,
		Steps:     rep.Rounds,
		Time:      float64(rep.Rounds) * timePerStep,
		T50:       milestone(rep.Trajectory, n, 0.5, timePerStep),
		T90:       milestone(rep.Trajectory, n, 0.9, timePerStep),
		Completed: rep.Completed,
		Messages:  rep.Messages,
	}, nil
}

// RunAsyncCompare is the registry entry point for the sync-vs-async
// experiment. Quick scale compares at n up to 10^4 with the heterogeneous
// regime at n=2000 (seconds); paper scale at n up to 10^5 with the
// heterogeneous regime at n=20000. The workers knob is a pure speed knob
// (the async runtime's shard count); every table is bit-identical for any
// value.
func RunAsyncCompare(scale Scale, seed uint64, workers int) (AsyncCompareResult, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	ns := []int{1_000, 10_000}
	nHet := 2_000
	if scale == ScalePaper {
		ns = []int{10_000, 100_000}
		nHet = 20_000
	}
	var res AsyncCompareResult
	for _, n := range ns {
		row, err := compareRow(n, "unit", "sync-push-pull",
			gossip.Config{Algorithm: gossip.PushPull, N: n}, workers, seed)
		if err != nil {
			return AsyncCompareResult{}, err
		}
		res.Rows = append(res.Rows, row)
		row, err = compareRow(n, "unit", "async",
			gossip.AsyncConfig{Profile: bandwidth.Homogeneous(n, 1)}, workers, seed)
		if err != nil {
			return AsyncCompareResult{}, err
		}
		res.Rows = append(res.Rows, row)
	}

	// Heterogeneous-rate regime: one Zipf profile drives both sides — the
	// dating spreader's per-round bandwidths and the async runtime's firing
	// rates — so the table shows how each execution model spends the same
	// heterogeneity budget.
	prof, err := bandwidth.Zipf(nHet, 1.2, 8, 2.0, rng.New(rng.Derive(seed, asyncZipfDomain)))
	if err != nil {
		return AsyncCompareResult{}, err
	}
	row, err := compareRow(nHet, "zipf", "sync-dating",
		gossip.Config{Algorithm: gossip.Dating, Profile: prof}, workers, seed)
	if err != nil {
		return AsyncCompareResult{}, err
	}
	res.Rows = append(res.Rows, row)
	row, err = compareRow(nHet, "zipf", "async",
		gossip.AsyncConfig{Profile: prof}, workers, seed)
	if err != nil {
		return AsyncCompareResult{}, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// AsyncBenchRow reports one shard count of the async benchmark.
type AsyncBenchRow struct {
	Shards       int     `json:"shards"`
	Buckets      int     `json:"buckets"`
	Time         float64 `json:"sim_time"`
	SecPerBucket float64 `json:"seconds_per_bucket"`
	MsgsPerSec   float64 `json:"messages_per_second"`
	Fired        int64   `json:"firings"`
}

// AsyncBenchResult is the cmd/datebench async mode: full asynchronous
// push&pull spreading at shard counts {1, shards}. All runs derive their
// randomness per (peer, firing-index), so their informed-count trajectories
// must be bit-identical; Identical reports that check, making every
// benchmark run a shard-determinism smoke test. Points carries the generic
// Report-derived perf-trajectory records BENCH_async.json collects.
type AsyncBenchResult struct {
	N         int  `json:"n"`
	Identical bool `json:"identical_across_shards"`
	// TrajectoryDigest is the FNV-1a digest of the reference trajectory
	// (see TrajectoryDigest): a pure function of (n, seed), whatever the
	// shard count or instrumentation.
	TrajectoryDigest string          `json:"trajectory_digest"`
	Rows             []AsyncBenchRow `json:"rows"`
	Points           []BenchPoint    `json:"points"`
}

// Table renders the benchmark in the repository's table shape.
func (r AsyncBenchResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Async clockless runtime — full spread, n=%d (identical trajectories: %v)", r.N, r.Identical),
		"shards", "buckets", "sim time", "s/bucket", "msg/s", "firings",
	)
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.Shards),
			fmt.Sprint(row.Buckets),
			fmt.Sprintf("%.1f", row.Time),
			fmt.Sprintf("%.4f", row.SecPerBucket),
			fmt.Sprintf("%.3g", row.MsgsPerSec),
			fmt.Sprint(row.Fired),
		)
	}
	return t
}

// RunAsyncBench profiles asynchronous spreading at a single n on the
// clockless runtime at 1 and shards workers. Every run goes through the
// unified runner; rows and bench points derive from its Report, with memory
// sampled around the whole run. Trajectory disagreement is reported in
// Identical, not as an error, so the caller decides whether it gates.
func RunAsyncBench(n, shards int, seed uint64) (AsyncBenchResult, error) {
	if n <= 0 {
		return AsyncBenchResult{}, fmt.Errorf("sim: async bench needs positive n, got %d", n)
	}
	shardCounts := []int{1}
	if shards > 1 {
		shardCounts = append(shardCounts, shards)
	}
	res := AsyncBenchResult{N: n, Identical: true}
	var ref []int
	for i, sc := range shardCounts {
		runtime.GC()
		var memBefore, memAfter runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		rep, err := run.Run(gossip.AsyncConfig{Profile: bandwidth.Homogeneous(n, 1)},
			run.WithSeed(seed), run.WithWorkers(sc))
		runtime.ReadMemStats(&memAfter)
		if err != nil {
			return AsyncBenchResult{}, err
		}
		if !rep.Completed {
			return AsyncBenchResult{}, fmt.Errorf("sim: async bench shards=%d incomplete after %d buckets", sc, rep.Rounds)
		}
		if i == 0 {
			ref = rep.Trajectory
			res.TrajectoryDigest = TrajectoryDigest(ref)
		} else if !slices.Equal(rep.Trajectory, ref) {
			res.Identical = false
		}
		detail := rep.Detail.(gossip.AsyncResult)
		p := PointFromReport(n, rep)
		p.SampleMem(&memBefore, &memAfter)
		res.Rows = append(res.Rows, AsyncBenchRow{
			Shards:       sc,
			Buckets:      rep.Rounds,
			Time:         detail.Time,
			SecPerBucket: p.SecondsPerRound,
			MsgsPerSec:   p.MessagesPerSecond,
			Fired:        detail.Fired,
		})
		res.Points = append(res.Points, p)
	}
	return res, nil
}
