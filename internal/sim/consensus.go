package sim

// This file is the consensus experiment and benchmark: K conflicting
// variants of one rumor seeded by geometry and merged per peer under a rule,
// measured as rounds to 90% agreement. The sweep crosses variant count,
// seeding geometry and merge rule on complete and Barabási–Albert graphs —
// the complete graph recovers the paper's any-to-any mixing (majority
// converges in O(log n) rounds there), while the sparse scale-free graph
// shows the ossification effect: lifetime majority tallies lock in local
// pluralities and agreement stalls below threshold, where the
// latest-timestamp rule still floods to full consensus.

import (
	"fmt"
	"runtime"
	"slices"

	"repro/internal/bandwidth"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/run"
	"repro/internal/stats"
)

// domainConsensusJobs derives the per-job root seeds, graph seeds and the
// weighted rows' Zipf profiles of the consensus sweep (see the allocation
// map in internal/rng/domains.go).
const domainConsensusJobs uint64 = 0x82

// ConsensusRow is one (graph, K, seeding, rule) cell of the sweep.
type ConsensusRow struct {
	Graph     string  `json:"graph"`
	N         int     `json:"n"`
	Variants  int     `json:"variants"`
	Seeding   string  `json:"seeding"`
	Rule      string  `json:"rule"`
	Rounds    int     `json:"rounds"`
	Completed bool    `json:"completed"`
	Winner    int     `json:"winner"`
	Agreement float64 `json:"agreement"`
	Messages  int64   `json:"messages"`
}

// ConsensusSweepResult is the consensus experiment of the registry: the
// convergence-time table (rounds to 90% agreement, capped rows marked
// incomplete with the agreement they did reach) over variant count {2,3,5}
// × seeding {random,hub,clustered} × the three merge rules, on complete and
// Barabási–Albert graphs.
type ConsensusSweepResult struct {
	Rows []ConsensusRow `json:"rows"`
}

// Table renders the sweep in the repository's table shape.
func (r ConsensusSweepResult) Table() *stats.Table {
	t := stats.NewTable(
		"Conflicting-rumor consensus — rounds to 90% agreement vs variants x seeding x merge rule",
		"graph", "n", "K", "seeding", "rule", "rounds", "completed", "winner", "agreement", "messages",
	)
	for _, row := range r.Rows {
		t.AddRow(
			row.Graph,
			fmt.Sprint(row.N),
			fmt.Sprint(row.Variants),
			row.Seeding,
			row.Rule,
			fmt.Sprint(row.Rounds),
			fmt.Sprint(row.Completed),
			fmt.Sprint(row.Winner),
			fmt.Sprintf("%.4f", row.Agreement),
			fmt.Sprint(row.Messages),
		)
	}
	return t
}

// consensusJob is one cell of the sweep; jobs share the read-only graphs
// and profiles and differ only in coordinates.
type consensusJob struct {
	name    string
	g       *graph.CSR
	profile bandwidth.Profile
	k       int
	seeding gossip.ConsensusSeeding
	rule    gossip.MergeRule
}

// RunConsensusSweep is the registry entry point for the consensus
// experiment. Quick scale runs an n=2000 BA graph and an n=1000 complete
// graph (seconds); paper scale raises them to 20000/2000. Runs are capped
// at 200 rounds (400 at paper scale) — on the sparse graph the majority and
// weighted rules are expected to hit the cap, and the row then reports the
// plurality lock-in level in its agreement column. Jobs fan across workers
// goroutines with per-job derived seeds, so the table is byte-identical for
// every worker count.
func RunConsensusSweep(scale Scale, seed uint64, workers int) (ConsensusSweepResult, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	nBA, nComplete, maxRounds := 2_000, 1_000, 200
	if scale == ScalePaper {
		nBA, nComplete, maxRounds = 20_000, 2_000, 400
	}
	ba, err := graph.BarabasiAlbert(nBA, 3, rng.Derive(seed, domainConsensusJobs, 1))
	if err != nil {
		return ConsensusSweepResult{}, err
	}
	complete, err := graph.Complete(nComplete)
	if err != nil {
		return ConsensusSweepResult{}, err
	}
	// One heterogeneous Zipf profile per graph size feeds every weighted
	// row of that graph; derived from the root seed, not from job order.
	baProfile, err := bandwidth.Zipf(nBA, 1.2, 8, 2.0, rng.New(rng.Derive(seed, domainConsensusJobs, 2)))
	if err != nil {
		return ConsensusSweepResult{}, err
	}
	completeProfile, err := bandwidth.Zipf(nComplete, 1.2, 8, 2.0, rng.New(rng.Derive(seed, domainConsensusJobs, 3)))
	if err != nil {
		return ConsensusSweepResult{}, err
	}

	var jobs []consensusJob
	for _, k := range []int{2, 3, 5} {
		for _, seeding := range []gossip.ConsensusSeeding{gossip.SeedDistinct, gossip.SeedHubLeaf, gossip.SeedClustered} {
			for _, rule := range []gossip.MergeRule{gossip.RuleMajority, gossip.RuleLatest, gossip.RuleWeighted} {
				jobs = append(jobs,
					consensusJob{"complete", complete, completeProfile, k, seeding, rule},
					consensusJob{"ba", ba, baProfile, k, seeding, rule},
				)
			}
		}
	}

	rows := make([]ConsensusRow, len(jobs))
	err = forEach(len(jobs), workers, func(j int, _ *par.Budget) error {
		job := jobs[j]
		cfg := gossip.ConsensusConfig{
			Variants:  job.k,
			Graph:     job.g,
			Seeding:   job.seeding,
			Rule:      job.rule,
			MaxRounds: maxRounds,
		}
		if job.rule == gossip.RuleWeighted {
			cfg.Profile = job.profile
		}
		rep, err := run.Run(cfg, run.WithSeed(rng.Derive(seed, domainConsensusJobs, uint64(j), 4)))
		if err != nil {
			return fmt.Errorf("sim: consensus %s K=%d %v %v: %w", job.name, job.k, job.seeding, job.rule, err)
		}
		det := rep.Detail.(gossip.ConsensusResult)
		rows[j] = ConsensusRow{
			Graph:     job.name,
			N:         job.g.N(),
			Variants:  job.k,
			Seeding:   job.seeding.String(),
			Rule:      job.rule.String(),
			Rounds:    rep.Rounds,
			Completed: rep.Completed,
			Winner:    det.Winner,
			Agreement: det.Agreement,
			Messages:  rep.Messages,
		}
		return nil
	})
	if err != nil {
		return ConsensusSweepResult{}, err
	}
	return ConsensusSweepResult{Rows: rows}, nil
}

// ConsensusBenchRow reports one shard count of the consensus benchmark.
type ConsensusBenchRow struct {
	Shards      int     `json:"shards"`
	Rounds      int     `json:"rounds"`
	Winner      int     `json:"winner"`
	Agreement   float64 `json:"agreement"`
	SecPerRound float64 `json:"seconds_per_round"`
	MsgsPerSec  float64 `json:"messages_per_second"`
}

// ConsensusBenchResult is the cmd/datebench consensus mode: K=3
// latest-timestamp consensus from distinct random seeds on a Barabási–
// Albert graph at shard counts {1, shards}. The latest rule floods to
// threshold on any connected graph, so the bench always completes. The
// identity check compares the full per-round variant-share history, not
// just the decided-peer trajectory; ShareDigest is its FNV-1a digest, a
// pure function of (n, seed) whatever the shard count.
type ConsensusBenchResult struct {
	N           int                 `json:"n"`
	GraphDigest string              `json:"graph_digest"`
	Identical   bool                `json:"identical_across_shards"`
	ShareDigest string              `json:"share_digest"`
	Rows        []ConsensusBenchRow `json:"rows"`
	Points      []BenchPoint        `json:"points"`
}

// Table renders the benchmark in the repository's table shape.
func (r ConsensusBenchResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Consensus runtime — BA latest-rule agreement, n=%d (identical share histories: %v)", r.N, r.Identical),
		"shards", "rounds", "winner", "agreement", "s/round", "msg/s",
	)
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.Shards),
			fmt.Sprint(row.Rounds),
			fmt.Sprint(row.Winner),
			fmt.Sprintf("%.4f", row.Agreement),
			fmt.Sprintf("%.4f", row.SecPerRound),
			fmt.Sprintf("%.3g", row.MsgsPerSec),
		)
	}
	return t
}

// flattenShares lays ShareHist out round-major as one []int for digesting
// and cross-shard comparison.
func flattenShares(hist [][]int) []int {
	if len(hist) == 0 {
		return nil
	}
	flat := make([]int, 0, len(hist)*len(hist[0]))
	for _, shares := range hist {
		flat = append(flat, shares...)
	}
	return flat
}

// RunConsensusBench profiles conflicting-rumor consensus at a single n: a
// BA(m=3) graph built once, K=3 variants merged under the latest rule at 1
// and shards workers on the sharded runtime. Every run goes through the
// unified runner; rows and bench points derive from its Report, with memory
// sampled around the whole run (graph construction excluded — the graph is
// shared). Share-history disagreement is reported in Identical, not as an
// error, so the caller decides whether it gates.
func RunConsensusBench(n, shards int, seed uint64) (ConsensusBenchResult, error) {
	if n <= 0 {
		return ConsensusBenchResult{}, fmt.Errorf("sim: consensus bench needs positive n, got %d", n)
	}
	g, err := graph.BarabasiAlbert(n, 3, seed)
	if err != nil {
		return ConsensusBenchResult{}, err
	}
	cfg := gossip.ConsensusConfig{Variants: 3, Graph: g, Seeding: gossip.SeedDistinct, Rule: gossip.RuleLatest}
	shardCounts := []int{1}
	if shards > 1 {
		shardCounts = append(shardCounts, shards)
	}
	res := ConsensusBenchResult{N: n, GraphDigest: g.Digest(), Identical: true}
	var ref []int
	for i, sc := range shardCounts {
		runtime.GC()
		var memBefore, memAfter runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		rep, err := run.Run(cfg, run.WithSeed(seed), run.WithWorkers(sc))
		runtime.ReadMemStats(&memAfter)
		if err != nil {
			return ConsensusBenchResult{}, err
		}
		if !rep.Completed {
			return ConsensusBenchResult{}, fmt.Errorf("sim: consensus bench shards=%d did not converge in %d rounds", sc, rep.Rounds)
		}
		det := rep.Detail.(gossip.ConsensusResult)
		flat := flattenShares(det.ShareHist)
		if i == 0 {
			ref = flat
			res.ShareDigest = TrajectoryDigest(ref)
		} else if !slices.Equal(flat, ref) {
			res.Identical = false
		}
		p := PointFromReport(n, rep)
		p.SampleMem(&memBefore, &memAfter)
		res.Rows = append(res.Rows, ConsensusBenchRow{
			Shards:      sc,
			Rounds:      rep.Rounds,
			Winner:      det.Winner,
			Agreement:   det.Agreement,
			SecPerRound: p.SecondsPerRound,
			MsgsPerSec:  p.MessagesPerSecond,
		})
		res.Points = append(res.Points, p)
	}
	return res, nil
}
