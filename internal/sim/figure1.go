package sim

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Figure1Row is one n-value of Figure 1: the fraction of the centralized
// optimum m = n that the dating service arranges per round, for the uniform
// selection distribution and for DHT-interval selection (worst and best
// overlay out of the generated population, as in the paper).
type Figure1Row struct {
	N           int
	UniformMean float64
	UniformStd  float64
	DHTWorst    float64 // lowest per-overlay average fraction
	DHTWorstStd float64 // stddev of the worst overlay's rounds
	DHTBest     float64 // highest per-overlay average fraction
}

// Figure1Result is the full reproduction of Figure 1.
type Figure1Result struct {
	Rows []Figure1Row
}

// Table renders the result in the paper's reporting shape.
func (r Figure1Result) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 1 — fraction of dates arranged by the dating service (m = n)",
		"n", "uniform", "dht-worst", "dht-best",
	)
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.N),
			fmt.Sprintf("%.4f ± %.4f", row.UniformMean, row.UniformStd),
			fmt.Sprintf("%.4f ± %.4f", row.DHTWorst, row.DHTWorstStd),
			fmt.Sprintf("%.4f", row.DHTBest),
		)
	}
	return t
}

// RunFigure1 reproduces Figure 1: n nodes generate n requests of each type
// (unit bandwidths); the uniform rows average over many rounds, and the DHT
// rows generate a population of overlays and report the worst and best
// per-overlay averages, the paper's methodology ("we took only one DHT out
// of 200 generated — the one that showed the worst average").
func RunFigure1(scale Scale, seed uint64) (Figure1Result, error) {
	ns, roundsFor, dhtCount := figure1Sizes(scale)
	root := rng.New(seed)
	var res Figure1Result
	for _, n := range ns {
		rounds := roundsFor(n)
		profile := bandwidth.Homogeneous(n, 1)

		// Uniform selection.
		uniSel, err := core.NewUniformSelector(n)
		if err != nil {
			return Figure1Result{}, err
		}
		svc, err := core.NewService(profile, uniSel)
		if err != nil {
			return Figure1Result{}, err
		}
		s := root.Split()
		var uni stats.Accumulator
		for r := 0; r < rounds; r++ {
			uni.Add(svc.RunRound(s).Fraction(n))
		}

		// DHT-interval selection over a population of overlays. Per-overlay
		// round budgets shrink so total work stays proportional.
		perDHT := rounds / dhtCount
		if perDHT < 20 {
			perDHT = 20
		}
		worst := stats.Accumulator{}
		var worstMean = 2.0
		var bestMean = -1.0
		for d := 0; d < dhtCount; d++ {
			ring, err := overlay.NewRing(n, root.Split())
			if err != nil {
				return Figure1Result{}, err
			}
			ringSel, err := core.NewRingSelector(ring)
			if err != nil {
				return Figure1Result{}, err
			}
			dsvc, err := core.NewService(profile, ringSel)
			if err != nil {
				return Figure1Result{}, err
			}
			ds := root.Split()
			var acc stats.Accumulator
			for r := 0; r < perDHT; r++ {
				acc.Add(dsvc.RunRound(ds).Fraction(n))
			}
			if acc.Mean() < worstMean {
				worstMean = acc.Mean()
				worst = acc
			}
			if acc.Mean() > bestMean {
				bestMean = acc.Mean()
			}
		}

		res.Rows = append(res.Rows, Figure1Row{
			N:           n,
			UniformMean: uni.Mean(),
			UniformStd:  uni.Std(),
			DHTWorst:    worstMean,
			DHTWorstStd: worst.Std(),
			DHTBest:     bestMean,
		})
	}
	return res, nil
}
