package sim

import (
	"fmt"
	"sort"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/overlay"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Figure1Row is one n-value of Figure 1: the fraction of the centralized
// optimum m = n that the dating service arranges per round, for the uniform
// selection distribution and for DHT-interval selection (worst and best
// overlay out of the generated population, as in the paper).
type Figure1Row struct {
	N           int
	UniformMean float64
	UniformStd  float64
	DHTWorst    float64 // lowest per-overlay average fraction
	DHTWorstStd float64 // stddev of the worst overlay's rounds
	DHTBest     float64 // highest per-overlay average fraction
}

// Figure1Result is the full reproduction of Figure 1.
type Figure1Result struct {
	Rows []Figure1Row
}

// Table renders the result in the paper's reporting shape.
func (r Figure1Result) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 1 — fraction of dates arranged by the dating service (m = n)",
		"n", "uniform", "dht-worst", "dht-best",
	)
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.N),
			fmt.Sprintf("%.4f ± %.4f", row.UniformMean, row.UniformStd),
			fmt.Sprintf("%.4f ± %.4f", row.DHTWorst, row.DHTWorstStd),
			fmt.Sprintf("%.4f", row.DHTBest),
		)
	}
	return t
}

// RunFigure1 reproduces Figure 1 serially; see RunFigure1Par.
func RunFigure1(scale Scale, seed uint64) (Figure1Result, error) {
	return RunFigure1Par(scale, seed, 1)
}

// RunFigure1Par reproduces Figure 1: n nodes generate n requests of each
// type (unit bandwidths); the uniform rows average over many rounds, and
// the DHT rows generate a population of overlays and report the worst and
// best per-overlay averages, the paper's methodology ("we took only one DHT
// out of 200 generated — the one that showed the worst average").
//
// Each (n, overlay) cell — and each uniform row — is one harness job with
// its own Service and a stream derived from (seed, n index, overlay index),
// fanned across workers goroutines. The result is byte-identical for every
// worker count.
func RunFigure1Par(scale Scale, seed uint64, workers int) (Figure1Result, error) {
	ns, roundsFor, dhtCount := figure1Sizes(scale)
	perN := dhtCount + 1 // slot 0 of each n is the uniform row, then one slot per overlay
	perDHTFor := func(n int) int {
		perDHT := roundsFor(n) / dhtCount
		if perDHT < 20 {
			perDHT = 20
		}
		return perDHT
	}

	// Job costs are wildly skewed (a uniform-row job runs ~dhtCount times
	// the rounds of one overlay job, and n spans four orders of magnitude),
	// so schedule the largest jobs first: workers steal in list order, and
	// a big job started last would otherwise bound the sweep's wall clock.
	// Scheduling only reorders the stealing — every job writes its own slot
	// and aggregation below reads slots in fixed order, so the table stays
	// byte-identical.
	type job struct{ ni, k, cost int }
	jobs := make([]job, 0, len(ns)*perN)
	for ni, n := range ns {
		jobs = append(jobs, job{ni, 0, roundsFor(n) * n})
		for k := 1; k < perN; k++ {
			jobs = append(jobs, job{ni, k, perDHTFor(n) * n})
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].cost > jobs[j].cost })

	accs := make([]stats.Accumulator, len(ns)*perN)
	err := forEach(len(jobs), workers, func(j int, _ *par.Budget) error {
		ni, k := jobs[j].ni, jobs[j].k
		slot := ni*perN + k
		n := ns[ni]
		rounds := roundsFor(n)
		profile := bandwidth.Homogeneous(n, 1)

		if k == 0 {
			// Uniform selection.
			uniSel, err := core.NewUniformSelector(n)
			if err != nil {
				return err
			}
			svc, err := core.NewService(profile, uniSel)
			if err != nil {
				return err
			}
			s := rng.New(rng.Derive(seed, domainFigure1Uniform, uint64(ni)))
			var uni stats.Accumulator
			for r := 0; r < rounds; r++ {
				uni.Add(svc.RunRound(s).Fraction(n))
			}
			accs[slot] = uni
			return nil
		}

		// DHT-interval selection, one overlay of the population. Per-overlay
		// round budgets shrink so total work stays proportional.
		perDHT := perDHTFor(n)
		d := uint64(k - 1)
		ring, err := overlay.NewRing(n, rng.New(rng.Derive(seed, domainFigure1Ring, uint64(ni), d)))
		if err != nil {
			return err
		}
		ringSel, err := core.NewRingSelector(ring)
		if err != nil {
			return err
		}
		dsvc, err := core.NewService(profile, ringSel)
		if err != nil {
			return err
		}
		ds := rng.New(rng.Derive(seed, domainFigure1Rounds, uint64(ni), d))
		var acc stats.Accumulator
		for r := 0; r < perDHT; r++ {
			acc.Add(dsvc.RunRound(ds).Fraction(n))
		}
		accs[slot] = acc
		return nil
	})
	if err != nil {
		return Figure1Result{}, err
	}

	// Aggregate in job order: the worst/best scan visits overlays in overlay
	// index order, exactly as the serial loop did.
	var res Figure1Result
	for ni, n := range ns {
		uni := accs[ni*perN]
		worst := stats.Accumulator{}
		var worstMean = 2.0
		var bestMean = -1.0
		for d := 0; d < dhtCount; d++ {
			acc := accs[ni*perN+1+d]
			if acc.Mean() < worstMean {
				worstMean = acc.Mean()
				worst = acc
			}
			if acc.Mean() > bestMean {
				bestMean = acc.Mean()
			}
		}
		res.Rows = append(res.Rows, Figure1Row{
			N:           n,
			UniformMean: uni.Mean(),
			UniformStd:  uni.Std(),
			DHTWorst:    worstMean,
			DHTWorstStd: worst.Std(),
			DHTBest:     bestMean,
		})
	}
	return res, nil
}
