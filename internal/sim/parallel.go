package sim

// Harness-level parallelism.
//
// The paper's headline experiments — the Figure 1 arranged-fraction sweep
// and the Figure 2 rounds-to-spread comparison — are embarrassingly
// parallel per repetition: every (overlay, repetition) cell is an
// independent simulation. The harness exploits exactly that grain. Each
// job owns a private Service/Arranger (one Service per goroutine; a
// Service reuses scratch and must never run concurrently) and a private
// stream seeded
//
//	rng.Derive(rootSeed, domainTag, coordinates...)
//
// where the coordinates are the job's position in the sweep (n index,
// overlay index, repetition index, ...). A job's numbers therefore depend
// only on its coordinates, never on the worker count or the goroutine
// schedule. Jobs write into caller-indexed result slots and all
// aggregation happens after the barrier, in job-index order, so the
// floating-point reduction order is fixed too: published tables are
// byte-identical for every worker count. The golden tests in
// harness_test.go pin that invariant down.
//
// The harness and the engines inside jobs share one par.Budget: each
// harness worker goroutine holds a token for its lifetime, and a job that
// wants inner parallelism (a churning-ring Arrange, a storage round) grabs
// the pool's spare tokens for the duration of that round instead of
// pinning its inner workers to 1. While all harness workers are busy there
// are no spares and jobs run serially inside, exactly as before; when the
// job queue drains below the worker count, exiting workers release their
// tokens and the still-running jobs' rounds soak up the leftover cores.
// Budget-fed engines are worker-count independent, so none of this can
// change a published number.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

// Seed-derivation domain tags, one per experiment surface, keeping job
// streams disjoint across experiments that share a root seed.
const (
	domainFigure1Uniform uint64 = 0x11
	domainFigure1Ring    uint64 = 0x12
	domainFigure1Rounds  uint64 = 0x13
	domainFigure2        uint64 = 0x21
	domainMultiRumor     uint64 = 0x31
	domainLoads          uint64 = 0x41
	domainDynamic        uint64 = 0x51
	domainStorage        uint64 = 0x61
)

// forEach runs jobs 0..jobs-1 across a worker budget of the given size,
// work-stealing from a shared counter. Each job must write only to its own
// result slot; the budget passed to it holds the pool's spare tokens for
// opportunistic inner parallelism (see the package comment). All jobs run
// even when one fails; the error reported is the one with the lowest job
// index, so failures are as deterministic as results.
func forEach(jobs, workers int, run func(job int, b *par.Budget) error) error {
	if workers < 1 {
		return fmt.Errorf("sim: harness needs workers >= 1, got %d", workers)
	}
	b, err := par.NewBudget(workers)
	if err != nil {
		return err
	}
	g := workers
	if g > jobs {
		g = jobs
	}
	if g <= 1 {
		// Same contract as the concurrent path: every job runs, the
		// lowest-index error wins. The budget still carries workers-1
		// spares, so a single expensive job can parallelize inside.
		var first error
		for j := 0; j < jobs; j++ {
			if err := run(j, b); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, jobs)
	var next atomic.Int64
	steal := func() {
		for {
			j := int(next.Add(1)) - 1
			if j >= jobs {
				return
			}
			errs[j] = run(j, b)
		}
	}
	var wg sync.WaitGroup
	// The calling goroutine is the budget's implicit worker; each extra
	// harness worker holds one token until it runs out of jobs, then frees
	// it for the inner engines of the jobs still running.
	for w := 1; w < g; w++ {
		if b.TryAcquire(1) == 0 {
			break // cannot happen: g <= workers; defensive only
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer b.Release(1)
			steal()
		}()
	}
	steal()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
