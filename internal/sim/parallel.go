package sim

// Harness-level parallelism.
//
// The paper's headline experiments — the Figure 1 arranged-fraction sweep
// and the Figure 2 rounds-to-spread comparison — are embarrassingly
// parallel per repetition: every (overlay, repetition) cell is an
// independent simulation. The harness exploits exactly that grain. Each
// job owns a private Service/Arranger (one Service per goroutine; a
// Service reuses scratch and must never run concurrently) and a private
// stream seeded
//
//	rng.Derive(rootSeed, domainTag, coordinates...)
//
// where the coordinates are the job's position in the sweep (n index,
// overlay index, repetition index, ...). A job's numbers therefore depend
// only on its coordinates, never on the worker count or the goroutine
// schedule. Jobs write into caller-indexed result slots and all
// aggregation happens after the barrier, in job-index order, so the
// floating-point reduction order is fixed too: published tables are
// byte-identical for every worker count. The golden tests in
// harness_test.go pin that invariant down.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Seed-derivation domain tags, one per experiment surface, keeping job
// streams disjoint across experiments that share a root seed.
const (
	domainFigure1Uniform uint64 = 0x11
	domainFigure1Ring    uint64 = 0x12
	domainFigure1Rounds  uint64 = 0x13
	domainFigure2        uint64 = 0x21
	domainMultiRumor     uint64 = 0x31
	domainLoads          uint64 = 0x41
	domainDynamic        uint64 = 0x51
	domainStorage        uint64 = 0x61
)

// forEach runs jobs 0..jobs-1 across at most workers goroutines, work-
// stealing from a shared counter. Each job must write only to its own
// result slot. All jobs run even when one fails; the error reported is the
// one with the lowest job index, so failures are as deterministic as
// results.
func forEach(jobs, workers int, run func(job int) error) error {
	if workers < 1 {
		return fmt.Errorf("sim: harness needs workers >= 1, got %d", workers)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		// Same contract as the concurrent path: every job runs, the
		// lowest-index error wins.
		var first error
		for j := 0; j < jobs; j++ {
			if err := run(j); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, jobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= jobs {
					return
				}
				errs[j] = run(j)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
