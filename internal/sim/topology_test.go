package sim

import (
	"strings"
	"testing"
)

// TestTopologySpreadParIdentity pins the harness determinism contract for
// the topology sweep: the rendered table is byte-identical for every -par
// value.
func TestTopologySpreadParIdentity(t *testing.T) {
	r1, err := RunTopologySpread(ScaleQuick, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunTopologySpread(ScaleQuick, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r4.Table().CSV(), r1.Table().CSV(); got != want {
		t.Errorf("-par changed the topology table:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestTopologySpreadShape pins the sweep's qualitative content: spread is
// full at alpha=0 on connected graphs, declines monotonically in alpha on
// the BA graph, and the hub-start rows exist for every alpha.
func TestTopologySpreadShape(t *testing.T) {
	res, err := RunTopologySpread(ScaleQuick, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("got %d rows, want 20", len(res.Rows))
	}
	var baRandom []float64
	hubRows := 0
	for _, row := range res.Rows {
		if row.FinalSpread <= 0 || row.FinalSpread > 1 {
			t.Errorf("row %+v: final spread out of (0,1]", row)
		}
		if row.Graph == "ba" && row.Start == "random" {
			baRandom = append(baRandom, row.FinalSpread)
		}
		if row.Start == "hub" {
			hubRows++
			if row.Graph != "ba" {
				t.Errorf("hub start on %q, want ba only", row.Graph)
			}
		}
		if row.Graph == "complete" && row.Alpha == 0 && row.FinalSpread != 1 {
			t.Errorf("complete graph at alpha=0 spread %v, want 1", row.FinalSpread)
		}
	}
	if hubRows != 5 {
		t.Errorf("got %d hub rows, want 5", hubRows)
	}
	for i := 1; i < len(baRandom); i++ {
		if baRandom[i] > baRandom[i-1] {
			t.Errorf("BA final spread not monotone in alpha: %v", baRandom)
		}
	}
}

// TestTopologyBench pins the datebench topology mode: shard counts agree on
// the trajectory, the graph digest witnesses the shared topology, and the
// generic bench points carry the memory columns.
func TestTopologyBench(t *testing.T) {
	res, err := RunTopologyBench(5_000, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("shard counts disagree on the topology trajectory")
	}
	if len(res.TrajectoryDigest) != 16 || len(res.GraphDigest) != 16 {
		t.Errorf("digests malformed: trajectory %q graph %q", res.TrajectoryDigest, res.GraphDigest)
	}
	if len(res.Rows) != 2 || len(res.Points) != 2 {
		t.Fatalf("got %d rows / %d points, want 2 / 2", len(res.Rows), len(res.Points))
	}
	for _, p := range res.Points {
		if p.Protocol != "topology" {
			t.Errorf("point protocol %q, want topology", p.Protocol)
		}
		if !p.Completed || p.Rounds == 0 {
			t.Errorf("degenerate point: %+v", p)
		}
		if p.TotalAllocMB <= 0 {
			t.Errorf("memory column not sampled: %+v", p)
		}
	}
	if !strings.Contains(res.Table().Render(), "identical trajectories: true") {
		t.Error("table title missing the identity witness")
	}
	if _, err := RunTopologyBench(0, 2, 42); err == nil {
		t.Error("n=0 should be rejected")
	}
}
