package sim

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/par"
)

// tableHash fingerprints a rendered table for the golden pins below.
func tableHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Golden fingerprints of the quick-scale figure tables at seed 42. They pin
// the published numbers down to the byte: any change to the seed-derivation
// scheme, the round engine, or the aggregation order fails loudly here
// instead of silently shifting results. Regenerate by running the test and
// copying the hashes it prints on failure.
const (
	goldenFigure1Quick = 0x72e269d28fe03812
	goldenFigure2Quick = 0xbf23414ba4c8aeb5
)

func TestFigure1WorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs figure 1 at three worker counts")
	}
	// Harness parallelism can never change published numbers: the rendered
	// table must be byte-identical for workers 1, 2 and 8. The invariant is
	// scale-independent — job seeds are derived from (seed, n, overlay)
	// with no reference to the worker count — so verifying it at quick
	// scale locks the mechanism for the paper scale too.
	base, err := RunFigure1Par(ScaleQuick, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	rendered := base.Table().Render()
	if h := tableHash(rendered); h != goldenFigure1Quick {
		t.Errorf("figure 1 golden drifted: got %#x, pinned %#x\n%s", h, uint64(goldenFigure1Quick), rendered)
	}
	for _, workers := range []int{2, 8} {
		res, err := RunFigure1Par(ScaleQuick, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("workers=%d: result differs from serial", workers)
		}
		if out := res.Table().Render(); out != rendered {
			t.Fatalf("workers=%d: rendered table differs from serial:\n%s\nvs\n%s", workers, out, rendered)
		}
	}
}

func TestFigure2WorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs figure 2 at three worker counts")
	}
	base, err := RunFigure2Par(ScaleQuick, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	rendered := base.Table().Render()
	if h := tableHash(rendered); h != goldenFigure2Quick {
		t.Errorf("figure 2 golden drifted: got %#x, pinned %#x\n%s", h, uint64(goldenFigure2Quick), rendered)
	}
	for _, workers := range []int{2, 8} {
		res, err := RunFigure2Par(ScaleQuick, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("workers=%d: result differs from serial", workers)
		}
		if out := res.Table().Render(); out != rendered {
			t.Fatalf("workers=%d: rendered table differs from serial", workers)
		}
	}
}

func TestSweepsWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four sweeps at two worker counts")
	}
	// The remaining repetition-parallel sweeps: serial and workers=4 must
	// agree exactly, through the registry's table rendering.
	for _, tc := range []struct {
		name string
		run  func(Scale, uint64, int) (string, error)
	}{
		{"multirumor", func(sc Scale, seed uint64, w int) (string, error) {
			r, err := RunMultiRumorExperimentPar(sc, seed, w)
			if err != nil {
				return "", err
			}
			return r.Table().Render(), nil
		}},
		{"loads", func(sc Scale, seed uint64, w int) (string, error) {
			r, err := RunLoadViolationPar(sc, seed, w)
			if err != nil {
				return "", err
			}
			return r.Table().Render(), nil
		}},
		{"dynamicdht", func(sc Scale, seed uint64, w int) (string, error) {
			r, err := RunDynamicDHTPar(sc, seed, w)
			if err != nil {
				return "", err
			}
			return r.Table().Render(), nil
		}},
		{"storage", func(sc Scale, seed uint64, w int) (string, error) {
			r, err := RunStoragePar(sc, seed, w)
			if err != nil {
				return "", err
			}
			return r.Table().Render(), nil
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := tc.run(ScaleQuick, 9, 1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := tc.run(ScaleQuick, 9, 4)
			if err != nil {
				t.Fatal(err)
			}
			if serial != par {
				t.Fatalf("workers=4 table differs from serial:\n%s\nvs\n%s", par, serial)
			}
		})
	}
}

func TestHarnessOverlappingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("stress-runs two concurrent harness sweeps")
	}
	// Two full harness sweeps running concurrently in one process, each
	// fanning jobs across its own worker pool: per-job Services must never
	// share state (the race detector enforces isolation; equality enforces
	// determinism under contention).
	const concurrent = 3
	results := make([]MultiRumorSimResult, concurrent)
	errs := make([]error, concurrent)
	var wg sync.WaitGroup
	for g := 0; g < concurrent; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = RunMultiRumorExperimentPar(ScaleQuick, 5, 4)
		}(g)
	}
	wg.Wait()
	for g := 0; g < concurrent; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if !reflect.DeepEqual(results[g], results[0]) {
			t.Fatalf("concurrent sweep %d diverged from sweep 0", g)
		}
	}
}

func TestForEach(t *testing.T) {
	// Completeness: every job index runs exactly once at any worker count.
	for _, workers := range []int{1, 3, 16} {
		const jobs = 100
		hits := make([]int, jobs)
		if err := forEach(jobs, workers, func(j int, _ *par.Budget) error {
			hits[j]++ // distinct slots: no lock needed
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for j, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, j, h)
			}
		}
	}
	// Determinism of failure: the reported error is the lowest-index one,
	// and later jobs still ran (no early abort reordering results).
	err := forEach(10, 4, func(j int, _ *par.Budget) error {
		if j == 7 || j == 3 {
			return fmt.Errorf("job %d failed", j)
		}
		return nil
	})
	if err == nil || err.Error() != "job 3 failed" {
		t.Fatalf("err = %v, want the lowest-index failure", err)
	}
	if err := forEach(5, 0, func(int, *par.Budget) error { return nil }); err == nil {
		t.Error("accepted workers = 0")
	}
	if err := forEach(0, 4, func(int, *par.Budget) error { return fmt.Errorf("ran") }); err != nil {
		t.Errorf("zero jobs: %v", err)
	}
}

func TestForEachBudgetNoOversubscription(t *testing.T) {
	// The harness workers and the inner engines of their jobs share one
	// budget: the total number of concurrently computing workers — one per
	// active job plus whatever extras its inner Use grabbed — must never
	// exceed the budget, and leftover tokens must actually reach jobs.
	const workers = 4
	var cur, peak atomic.Int64
	err := forEach(32, workers, func(j int, b *par.Budget) error {
		if b.Total() != workers {
			return fmt.Errorf("job budget sized %d, want %d", b.Total(), workers)
		}
		for i := 0; i < 8; i++ {
			b.Use(0, func(w int) {
				c := cur.Add(int64(w))
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				cur.Add(int64(-w))
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrent workers %d exceeds the harness budget of %d", p, workers)
	}

	// Fewer jobs than workers: the spare tokens must flow to the jobs'
	// inner engines. With 2 jobs on a budget of 4, two tokens are spare
	// from the start and TryAcquire hands them out whole, so at least one
	// inner round must see more than one worker.
	var sawParallel atomic.Bool
	err = forEach(2, workers, func(j int, b *par.Budget) error {
		b.Use(0, func(w int) {
			if w > 1 {
				sawParallel.Store(true)
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawParallel.Load() {
		t.Fatal("no job's inner round received leftover workers")
	}
}
