package sim

import (
	"strings"
	"testing"

	"repro/internal/gossip"
)

func TestScaleNames(t *testing.T) {
	for _, sc := range []Scale{ScaleQuick, ScalePaper} {
		parsed, err := ParseScale(sc.String())
		if err != nil || parsed != sc {
			t.Fatalf("round-trip of %v failed: %v %v", sc, parsed, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("accepted unknown scale")
	}
	if got := Scale(9).String(); got != "scale(9)" {
		t.Errorf("String = %q", got)
	}
}

// figure1Fast trims RunFigure1 to its two smallest sizes for unit tests.
func figure1Fast(t *testing.T) Figure1Result {
	t.Helper()
	res, err := RunFigure1(ScaleQuick, 42)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 1 takes a few seconds")
	}
	res := figure1Fast(t)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Uniform fraction ~0.47 at all sizes (slightly above at n=10).
		if row.UniformMean < 0.44 || row.UniformMean > 0.56 {
			t.Errorf("n=%d: uniform %.4f outside [0.44, 0.56]", row.N, row.UniformMean)
		}
		// DHT beats uniform, even for the worst generated overlay.
		if row.DHTWorst <= row.UniformMean {
			t.Errorf("n=%d: dht worst %.4f does not beat uniform %.4f", row.N, row.DHTWorst, row.UniformMean)
		}
		if row.DHTBest < row.DHTWorst {
			t.Errorf("n=%d: best %.4f below worst %.4f", row.N, row.DHTBest, row.DHTWorst)
		}
		// Paper: worst DHT >= 0.52.
		if row.DHTWorst < 0.50 {
			t.Errorf("n=%d: dht worst %.4f, paper reports >= 0.52", row.N, row.DHTWorst)
		}
	}
	// Paper: the best-DHT advantage shrinks with n (0.67 at n=10 down
	// toward 0.55).
	if res.Rows[0].DHTBest <= res.Rows[len(res.Rows)-1].DHTBest {
		t.Errorf("dht best should shrink with n: %.4f (n=%d) vs %.4f (n=%d)",
			res.Rows[0].DHTBest, res.Rows[0].N,
			res.Rows[len(res.Rows)-1].DHTBest, res.Rows[len(res.Rows)-1].N)
	}
	out := res.Table().Render()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "dht-worst") {
		t.Fatalf("table rendering broken:\n%s", out)
	}
}

func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 2 takes a few seconds")
	}
	res, err := RunFigure2(ScaleQuick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		pp := row.Cells[gossip.PushPull].Mean
		dat := row.Cells[gossip.Dating].Mean
		if pp <= 0 || dat <= 0 {
			t.Fatalf("n=%d: degenerate means", row.N)
		}
		// Push-pull is the fastest, dating the slowest.
		for _, a := range gossip.Algorithms() {
			m := row.Cells[a].Mean
			if m < pp-1e-9 {
				t.Errorf("n=%d: %v (%.2f) beat push-pull (%.2f)", row.N, a, m, pp)
			}
			if m > dat+1e-9 {
				t.Errorf("n=%d: %v (%.2f) slower than dating (%.2f)", row.N, a, m, dat)
			}
		}
	}
	// Rounds grow with n for every algorithm.
	for _, a := range gossip.Algorithms() {
		first := res.Rows[0].Cells[a].Mean
		last := res.Rows[len(res.Rows)-1].Cells[a].Mean
		if last <= first {
			t.Errorf("%v: rounds did not grow with n (%.2f -> %.2f)", a, first, last)
		}
	}
	out := res.Table().Render()
	if !strings.Contains(out, "push-pull") || !strings.Contains(out, "dating") {
		t.Fatalf("table rendering broken:\n%s", out)
	}
}

func TestAlphaVsLoadIncreasing(t *testing.T) {
	res, err := RunAlphaVsLoad(ScaleQuick, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := 0.0
	for _, row := range res.Rows {
		if row.Fraction <= prev {
			t.Fatalf("fraction not increasing with load: %+v", res.Rows)
		}
		prev = row.Fraction
	}
	if res.Rows[0].Fraction < 0.44 || res.Rows[0].Fraction > 0.52 {
		t.Errorf("base fraction %.4f not near 0.47", res.Rows[0].Fraction)
	}
	if !strings.Contains(res.Table().Render(), "m/n") {
		t.Error("table missing header")
	}
}

func TestDistributionAblationUniformWorst(t *testing.T) {
	res, err := RunDistributionAblation(ScaleQuick, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var uniform float64
	for _, row := range res.Rows {
		if row.Name == "uniform" {
			uniform = row.Fraction
		}
	}
	if uniform == 0 {
		t.Fatal("uniform row missing")
	}
	for _, row := range res.Rows {
		if row.Fraction < uniform-0.01 {
			t.Errorf("%s (%.4f) below uniform (%.4f): contradicts the worst-case conjecture",
				row.Name, row.Fraction, uniform)
		}
	}
}

func TestPhasesOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("phases experiment runs several spreads at n=4096")
	}
	res, err := RunPhases(ScaleQuick, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.EndPhase1 <= res.EndPhase2 && res.EndPhase2 <= res.EndPhase3) {
		t.Fatalf("phase boundaries out of order: %+v", res)
	}
	if res.EndPhase1 < 1 {
		t.Fatalf("phase 1 cannot end before round 1: %+v", res)
	}
	if len(res.ItSample) == 0 {
		t.Fatal("missing I_t sample")
	}
	if !strings.Contains(res.Table().Render(), "Theorem 4") {
		t.Error("table missing title")
	}
}

func TestHierarchicalGap(t *testing.T) {
	if testing.Short() {
		t.Skip("hierarchical experiment runs several spreads")
	}
	res, err := RunHierarchical(ScaleQuick, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.RichRounds >= row.TotalRounds {
			t.Errorf("n=%d: rich (%.1f) not earlier than total (%.1f)", row.N, row.RichRounds, row.TotalRounds)
		}
	}
}

func TestPipeliningCrossover(t *testing.T) {
	res, err := RunPipelining(ScaleQuick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencySteps < 2 {
		t.Fatalf("latency %d implausibly small for n=%d", res.LatencySteps, res.N)
	}
	for _, row := range res.Rows {
		if row.K == 1 {
			// A single round cannot benefit from pipelining.
			if row.Pipelined < row.Naive {
				continue
			}
		}
		if row.K > 1 && row.Pipelined >= row.Naive {
			t.Errorf("k=%d: pipelined %d not better than naive %d", row.K, row.Pipelined, row.Naive)
		}
	}
	// Asymptotically the pipelined cost is ~k while naive is ~k*latency.
	last := res.Rows[len(res.Rows)-1]
	if ratio := float64(last.Naive) / float64(last.Pipelined); ratio < float64(res.LatencySteps)/2 {
		t.Errorf("k=%d speedup %.1f too small for latency %d", last.K, ratio, res.LatencySteps)
	}
}

func TestMongeringNearLowerBound(t *testing.T) {
	if testing.Short() {
		t.Skip("mongering decodes many matrices")
	}
	res, err := RunMongering(ScaleQuick, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Rounds < float64(row.LowerBound) {
			t.Errorf("B=%d: %.1f rounds beats the information-theoretic bound", row.Blocks, row.Rounds)
		}
		if row.Rounds > 6*float64(row.LowerBound)+40 {
			t.Errorf("B=%d: %.1f rounds too far above bound", row.Blocks, row.Rounds)
		}
		if row.Efficiency <= 0 || row.Efficiency > 1 {
			t.Errorf("B=%d: innovative fraction %.3f out of (0,1]", row.Blocks, row.Efficiency)
		}
	}
}

func TestChurnRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("churn experiment runs several spreads")
	}
	res, err := RunChurn(ScaleQuick, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Completed != row.Reps {
			t.Errorf("p=%.2f: only %d/%d runs completed", row.CrashProb, row.Completed, row.Reps)
		}
		if row.CrashProb == 0 && row.Crashed != 0 {
			t.Errorf("p=0 crashed %.0f nodes", row.Crashed)
		}
		if row.CrashProb > 0 && row.Crashed == 0 {
			t.Errorf("p=%.2f crashed nobody", row.CrashProb)
		}
	}
}

func TestStorageBalanced(t *testing.T) {
	if testing.Short() {
		t.Skip("storage experiment replicates hundreds of blocks")
	}
	res, err := RunStorage(ScaleQuick, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
	if res.MaxOccupancy > 12 {
		t.Fatalf("occupancy %v exceeds slots", res.MaxOccupancy)
	}
	if res.WastedFrac < 0 || res.WastedFrac > 0.9 {
		t.Fatalf("wasted fraction %.3f implausible", res.WastedFrac)
	}
	if !strings.Contains(res.Table().Render(), "replication") {
		t.Error("table missing content")
	}
}
