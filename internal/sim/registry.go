package sim

import "repro/internal/stats"

// Experiment couples a runnable experiment with its name, so drivers (the
// hetsim CLI, tests) share one registry.
type Experiment struct {
	Name string
	// About is a one-line description shown in help output.
	About string
	Run   func(Scale, uint64) (*stats.Table, error)
}

func tabler[T interface{ Table() *stats.Table }](f func(Scale, uint64) (T, error)) func(Scale, uint64) (*stats.Table, error) {
	return func(sc Scale, seed uint64) (*stats.Table, error) {
		res, err := f(sc, seed)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	}
}

// Registry lists every experiment in DESIGN.md's per-experiment index, in
// presentation order, plus the round-engine throughput benchmark (not part
// of the paper's evaluation, but sharing the same driver interface).
func Registry() []Experiment {
	return []Experiment{
		{"figure1", "fraction of dates arranged (uniform vs DHT)", tabler(RunFigure1)},
		{"figure2", "rounds to spread a rumor, all algorithms", tabler(RunFigure2)},
		{"alpha", "E3: arranged fraction vs per-node load", tabler(RunAlphaVsLoad)},
		{"ablation", "E4: arranged fraction by selection distribution", tabler(RunDistributionAblation)},
		{"phases", "E5: Theorem 4 phase structure", tabler(RunPhases)},
		{"hierarchical", "E6: Theorem 10 rich-first delivery", tabler(RunHierarchical)},
		{"pipelining", "E7: pipelined dating over a DHT", tabler(RunPipelining)},
		{"mongering", "E8: network-coded multi-block broadcast", tabler(RunMongering)},
		{"churn", "E9: spreading under crashes", tabler(RunChurn)},
		{"storage", "E10: replicated storage block exchanges", tabler(RunStorage)},
		{"multirumor", "E11: concurrent rumors share the dates", tabler(RunMultiRumorExperiment)},
		{"loads", "E12: worst per-node loads (bandwidth honesty)", tabler(RunLoadViolation)},
		{"dynamicdht", "E13: spreading over a churning DHT", tabler(RunDynamicDHT)},
		{"engine", "round-engine throughput, serial vs parallel workers", tabler(RunEngineScaled)},
	}
}
