package sim

import "repro/internal/stats"

// Experiment couples a runnable experiment with its name, so drivers (the
// hetsim CLI, tests) share one registry.
type Experiment struct {
	Name string
	// About is a one-line description shown in help output.
	About string
	// Run regenerates the experiment at a scale and root seed, fanning
	// repetitions across workers goroutines where the experiment supports
	// harness parallelism (see parallel.go); results are byte-identical
	// for every worker count. Experiments without repetition parallelism
	// accept the knob and run serially. The two benchmarks are special:
	// engine sweeps its own internal worker counts (the knob is ignored),
	// live feeds the knob to its runtime as the shard count — either way
	// only their timing columns vary run to run.
	Run func(scale Scale, seed uint64, workers int) (*stats.Table, error)
}

// parTabler adapts a workers-aware experiment to the registry signature.
func parTabler[T interface{ Table() *stats.Table }](f func(Scale, uint64, int) (T, error)) func(Scale, uint64, int) (*stats.Table, error) {
	return func(sc Scale, seed uint64, workers int) (*stats.Table, error) {
		res, err := f(sc, seed, workers)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	}
}

// tabler adapts a serial experiment; the workers knob is accepted and
// ignored.
func tabler[T interface{ Table() *stats.Table }](f func(Scale, uint64) (T, error)) func(Scale, uint64, int) (*stats.Table, error) {
	return parTabler(func(sc Scale, seed uint64, _ int) (T, error) { return f(sc, seed) })
}

// Registry lists every experiment in DESIGN.md's per-experiment index, in
// presentation order, plus the round-engine throughput benchmark (not part
// of the paper's evaluation, but sharing the same driver interface).
func Registry() []Experiment {
	return []Experiment{
		{"figure1", "fraction of dates arranged (uniform vs DHT)", parTabler(RunFigure1Par)},
		{"figure2", "rounds to spread a rumor, all algorithms", parTabler(RunFigure2Par)},
		{"alpha", "E3: arranged fraction vs per-node load", tabler(RunAlphaVsLoad)},
		{"ablation", "E4: arranged fraction by selection distribution", tabler(RunDistributionAblation)},
		{"phases", "E5: Theorem 4 phase structure", tabler(RunPhases)},
		{"hierarchical", "E6: Theorem 10 rich-first delivery", tabler(RunHierarchical)},
		{"pipelining", "E7: pipelined dating over a DHT", tabler(RunPipelining)},
		{"mongering", "E8: network-coded multi-block broadcast", tabler(RunMongering)},
		{"churn", "E9: spreading under crashes", tabler(RunChurn)},
		{"storage", "E10: replicated storage block exchanges", parTabler(RunStoragePar)},
		{"multirumor", "E11: concurrent rumors share the dates", parTabler(RunMultiRumorExperimentPar)},
		{"loads", "E12: worst per-node loads (bandwidth honesty)", parTabler(RunLoadViolationPar)},
		{"dynamicdht", "E13: spreading over a churning DHT", parTabler(RunDynamicDHTPar)},
		{"engine", "round-engine throughput, serial vs parallel workers", tabler(RunEngineScaled)},
		{"live", "sharded message runtime: scale sweep + latency/loss sensitivity", parTabler(RunLiveScaled)},
		{"async", "sync-vs-async spread curves on exponential peer clocks", parTabler(RunAsyncCompare)},
		{"topology", "graph-constrained spreader/stifler spreading: final size vs alpha", parTabler(RunTopologySpread)},
		{"consensus", "conflicting-rumor consensus: rounds to 90% agreement vs K x seeding x merge rule", parTabler(RunConsensusSweep)},
		{"protocols", "every protocol via the unified run.Run entrypoint", parTabler(RunProtocols)},
	}
}
