package sim

import (
	"strings"
	"testing"
)

func TestMultiRumorExperimentSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rumor experiment runs many spreads")
	}
	res, err := RunMultiRumorExperiment(ScaleQuick, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.SingleRounds <= 0 {
		t.Fatal("missing single-rumor baseline")
	}
	for _, row := range res.Rows {
		if row.Rounds <= 0 || row.PerRumorMean <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		// Key sharing effect: R rumors cost far less than R sequential
		// broadcasts (they ride the same dates).
		seq := res.SingleRounds * float64(row.Rumors)
		if row.Rumors > 1 && row.Rounds >= seq {
			t.Errorf("R=%d: %.1f rounds not better than %f sequential", row.Rumors, row.Rounds, seq)
		}
		// But more rumors cannot be faster than one.
		if row.Rounds < res.SingleRounds-3 {
			t.Errorf("R=%d: %.1f rounds beats the single-rumor baseline %.1f implausibly",
				row.Rumors, row.Rounds, res.SingleRounds)
		}
	}
	// Rounds increase with the number of rumors.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Rounds < res.Rows[i-1].Rounds {
			t.Errorf("rounds not monotone in rumor count: %+v", res.Rows)
		}
	}
	if !strings.Contains(res.Table().Render(), "faster") {
		t.Error("table missing speedup column")
	}
}
