// Package sim is the experiment harness: each Run* function regenerates one
// figure or experiment from DESIGN.md's per-experiment index, returning both
// structured results (for tests and benchmarks to assert on) and a rendered
// table in the same shape as the paper's plots.
//
// Every experiment takes an explicit Scale. ScalePaper matches the paper's
// parameters (10^4 repetitions, n up to 10^5) and is meant for the CLIs;
// ScaleQuick shrinks repetitions and the largest n so the full suite runs in
// seconds while preserving every qualitative conclusion.
package sim

import "fmt"

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleQuick is reduced sizing for tests and `go test -bench`.
	ScaleQuick Scale = iota
	// ScalePaper is the sizing reported in the paper.
	ScalePaper
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// ParseScale maps a name to a Scale.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "quick":
		return ScaleQuick, nil
	case "paper":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("sim: unknown scale %q (want quick or paper)", name)
}

// figure1Sizes returns the n values and per-n round counts for Figure 1.
func figure1Sizes(s Scale) (ns []int, rounds func(n int) int, dhtCount int) {
	switch s {
	case ScalePaper:
		return []int{10, 100, 1000, 10000, 100000}, func(n int) int {
			if n >= 10000 {
				return 1000
			}
			return 10000
		}, 200
	default:
		return []int{10, 100, 1000, 10000}, func(n int) int {
			if n >= 10000 {
				return 40
			}
			return 300
		}, 12
	}
}

// figure2Sizes returns the n values and repetition counts for Figure 2.
func figure2Sizes(s Scale) (ns []int, reps func(n int) int) {
	switch s {
	case ScalePaper:
		return []int{10, 100, 1000, 10000, 100000}, func(n int) int {
			if n >= 10000 {
				return 1000
			}
			return 10000
		}
	default:
		return []int{10, 100, 1000, 10000}, func(n int) int {
			switch {
			case n >= 10000:
				return 8
			case n >= 1000:
				return 30
			default:
				return 100
			}
		}
	}
}
