package sim

import (
	"fmt"

	"repro/internal/gossip"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Figure2Cell is one (n, algorithm) aggregate of Figure 2.
type Figure2Cell struct {
	Mean float64
	Std  float64
}

// Figure2Row is one n-value of Figure 2: rounds to spread a single rumor
// for each algorithm.
type Figure2Row struct {
	N     int
	Cells map[gossip.Algorithm]Figure2Cell
}

// Figure2Result is the full reproduction of Figure 2.
type Figure2Result struct {
	Rows []Figure2Row
}

// Table renders the result with algorithms in the paper's display order.
func (r Figure2Result) Table() *stats.Table {
	headers := []string{"n"}
	for _, a := range gossip.Algorithms() {
		headers = append(headers, a.String())
	}
	t := stats.NewTable("Figure 2 — rounds to spread a single rumor (mean ± std)", headers...)
	for _, row := range r.Rows {
		cells := []string{fmt.Sprint(row.N)}
		for _, a := range gossip.Algorithms() {
			c := row.Cells[a]
			cells = append(cells, fmt.Sprintf("%.2f ± %.2f", c.Mean, c.Std))
		}
		t.AddRow(cells...)
	}
	return t
}

// RunFigure2 reproduces Figure 2: for each network size, run every
// algorithm repeatedly from a fresh source and report mean and standard
// deviation of the number of rounds until all nodes are informed.
func RunFigure2(scale Scale, seed uint64) (Figure2Result, error) {
	ns, repsFor := figure2Sizes(scale)
	root := rng.New(seed)
	var res Figure2Result
	for _, n := range ns {
		reps := repsFor(n)
		row := Figure2Row{N: n, Cells: map[gossip.Algorithm]Figure2Cell{}}
		for _, a := range gossip.Algorithms() {
			s := root.Split()
			var acc stats.Accumulator
			for rep := 0; rep < reps; rep++ {
				r, err := gossip.Run(gossip.Config{Algorithm: a, N: n, Source: 0}, s)
				if err != nil {
					return Figure2Result{}, err
				}
				if !r.Completed {
					return Figure2Result{}, fmt.Errorf("sim: %v at n=%d did not complete", a, n)
				}
				acc.Add(float64(r.Rounds))
			}
			row.Cells[a] = Figure2Cell{Mean: acc.Mean(), Std: acc.Std()}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
