package sim

import (
	"fmt"
	"sort"

	"repro/internal/gossip"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Figure2Cell is one (n, algorithm) aggregate of Figure 2.
type Figure2Cell struct {
	Mean float64
	Std  float64
}

// Figure2Row is one n-value of Figure 2: rounds to spread a single rumor
// for each algorithm.
type Figure2Row struct {
	N     int
	Cells map[gossip.Algorithm]Figure2Cell
}

// Figure2Result is the full reproduction of Figure 2.
type Figure2Result struct {
	Rows []Figure2Row
}

// Table renders the result with algorithms in the paper's display order.
func (r Figure2Result) Table() *stats.Table {
	headers := []string{"n"}
	for _, a := range gossip.Algorithms() {
		headers = append(headers, a.String())
	}
	t := stats.NewTable("Figure 2 — rounds to spread a single rumor (mean ± std)", headers...)
	for _, row := range r.Rows {
		cells := []string{fmt.Sprint(row.N)}
		for _, a := range gossip.Algorithms() {
			c := row.Cells[a]
			cells = append(cells, fmt.Sprintf("%.2f ± %.2f", c.Mean, c.Std))
		}
		t.AddRow(cells...)
	}
	return t
}

// RunFigure2 reproduces Figure 2 serially; see RunFigure2Par.
func RunFigure2(scale Scale, seed uint64) (Figure2Result, error) {
	return RunFigure2Par(scale, seed, 1)
}

// RunFigure2Par reproduces Figure 2: for each network size, run every
// algorithm repeatedly from a fresh source and report mean and standard
// deviation of the number of rounds until all nodes are informed.
//
// Every single repetition is one harness job — one spreading run with its
// own Service, seeded from (seed, n index, algorithm index, repetition
// index) — so the sweep saturates workers goroutines even for a single
// (n, algorithm) cell. The result is byte-identical for every worker count.
func RunFigure2Par(scale Scale, seed uint64, workers int) (Figure2Result, error) {
	ns, repsFor := figure2Sizes(scale)
	algos := gossip.Algorithms()
	type coord struct{ ni, ai, rep, slot int }
	var coords []coord
	slot := 0
	for ni := range ns {
		reps := repsFor(ns[ni])
		for ai := range algos {
			for rep := 0; rep < reps; rep++ {
				coords = append(coords, coord{ni, ai, rep, slot})
				slot++
			}
		}
	}
	// Largest networks first: a job's cost is dominated by n (four orders
	// of magnitude across the sweep), and workers steal in list order —
	// an expensive job started last would bound the wall clock. Each job
	// writes its precomputed slot and aggregation reads slots in fixed
	// order, so the table is unaffected by the schedule.
	sort.SliceStable(coords, func(i, j int) bool { return ns[coords[i].ni] > ns[coords[j].ni] })
	rounds := make([]float64, len(coords))
	err := forEach(len(coords), workers, func(j int, _ *par.Budget) error {
		c := coords[j]
		n := ns[c.ni]
		s := rng.New(rng.Derive(seed, domainFigure2, uint64(c.ni), uint64(c.ai), uint64(c.rep)))
		r, err := gossip.Run(gossip.Config{Algorithm: algos[c.ai], N: n, Source: 0}, s)
		if err != nil {
			return err
		}
		if !r.Completed {
			return fmt.Errorf("sim: %v at n=%d did not complete", algos[c.ai], n)
		}
		rounds[c.slot] = float64(r.Rounds)
		return nil
	})
	if err != nil {
		return Figure2Result{}, err
	}

	// Aggregate in coordinate order; coords list cells contiguously.
	var res Figure2Result
	idx := 0
	for _, n := range ns {
		reps := repsFor(n)
		row := Figure2Row{N: n, Cells: map[gossip.Algorithm]Figure2Cell{}}
		for _, a := range algos {
			var acc stats.Accumulator
			for rep := 0; rep < reps; rep++ {
				acc.Add(rounds[idx])
				idx++
			}
			row.Cells[a] = Figure2Cell{Mean: acc.Mean(), Std: acc.Std()}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
