package sim

import (
	"strings"
	"testing"
)

// TestConsensusSweepParIdentity pins the harness determinism contract for
// the consensus sweep: the rendered table is byte-identical for every -par
// value.
func TestConsensusSweepParIdentity(t *testing.T) {
	r1, err := RunConsensusSweep(ScaleQuick, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunConsensusSweep(ScaleQuick, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r4.Table().CSV(), r1.Table().CSV(); got != want {
		t.Errorf("-par changed the consensus table:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestConsensusSweepShape pins the sweep's qualitative content: the full
// {2,3,5} x {random,hub,clustered} x {majority,latest,weighted} cross on
// both graphs, every latest row converging (the flood argument), every
// complete-graph majority row converging (well-mixed tallies track the
// global lead), and the winner of a converged latest row being the
// last-stamped variant K.
func TestConsensusSweepShape(t *testing.T) {
	res, err := RunConsensusSweep(ScaleQuick, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 54 {
		t.Fatalf("got %d rows, want 54", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Agreement <= 0 || row.Agreement > 1 {
			t.Errorf("row %+v: agreement out of (0,1]", row)
		}
		if row.Rule == "latest" {
			if !row.Completed {
				t.Errorf("latest row did not converge: %+v", row)
			}
			if row.Winner != row.Variants {
				t.Errorf("latest row winner %d, want the last-stamped variant %d: %+v", row.Winner, row.Variants, row)
			}
		}
		if row.Graph == "complete" && row.Rule == "majority" && !row.Completed {
			t.Errorf("complete-graph majority row did not converge: %+v", row)
		}
	}
}

// TestConsensusBench pins the datebench consensus mode: shard counts agree
// on the full variant-share history, the graph digest witnesses the shared
// topology, and the generic bench points carry the memory columns.
func TestConsensusBench(t *testing.T) {
	res, err := RunConsensusBench(5_000, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("shard counts disagree on the consensus share history")
	}
	if len(res.ShareDigest) != 16 || len(res.GraphDigest) != 16 {
		t.Errorf("digests malformed: shares %q graph %q", res.ShareDigest, res.GraphDigest)
	}
	if len(res.Rows) != 2 || len(res.Points) != 2 {
		t.Fatalf("got %d rows / %d points, want 2 / 2", len(res.Rows), len(res.Points))
	}
	for _, p := range res.Points {
		if p.Protocol != "consensus" {
			t.Errorf("point protocol %q, want consensus", p.Protocol)
		}
		if !p.Completed || p.Rounds == 0 {
			t.Errorf("degenerate point: %+v", p)
		}
		if p.TotalAllocMB <= 0 {
			t.Errorf("memory column not sampled: %+v", p)
		}
	}
	for _, row := range res.Rows {
		if row.Winner != 3 {
			t.Errorf("latest-rule bench winner %d, want 3", row.Winner)
		}
	}
	if !strings.Contains(res.Table().Render(), "identical share histories: true") {
		t.Error("table title missing the identity witness")
	}
	if _, err := RunConsensusBench(0, 2, 42); err == nil {
		t.Error("n=0 should be rejected")
	}
}
