package sim

import (
	"strings"
	"testing"
)

func TestAsyncCompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sync-vs-async comparison end to end")
	}
	res, err := RunAsyncCompare(ScaleQuick, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two unit-profile sizes x two modes, plus the heterogeneous pair.
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Completed {
			t.Fatalf("row %+v incomplete", row)
		}
		if row.T50 > row.T90 || row.T90 > row.Time {
			t.Fatalf("milestones out of order in %+v", row)
		}
		if row.Messages <= 0 || row.Steps <= 0 {
			t.Fatalf("row %+v has empty metrics", row)
		}
	}
	rendered := res.Table().Render()
	for _, want := range []string{"sync-push-pull", "async", "zipf", "sync-dating"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("table missing %q:\n%s", want, rendered)
		}
	}
}

func TestAsyncCompareWorkersByteIdentical(t *testing.T) {
	// The workers knob is the async runtime's shard count — a pure speed
	// knob; the rendered table must be byte-identical across values.
	if testing.Short() {
		t.Skip("runs the comparison twice")
	}
	a, err := RunAsyncCompare(ScaleQuick, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAsyncCompare(ScaleQuick, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table().Render() != b.Table().Render() {
		t.Fatal("workers knob changed the comparison table")
	}
}

func TestRunAsyncBench(t *testing.T) {
	res, err := RunAsyncBench(1500, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("shard counts disagreed on the async spreading trajectory")
	}
	if len(res.Rows) != 2 || len(res.Points) != 2 {
		t.Fatalf("got %d rows, %d points, want 2 each (shards 1 and 2)", len(res.Rows), len(res.Points))
	}
	for i, row := range res.Rows {
		if row.Buckets <= 0 || row.Fired <= 0 || row.Time <= 0 {
			t.Fatalf("row %+v has empty metrics", row)
		}
		p := res.Points[i]
		if p.Protocol != "async" || !p.Completed || p.Rounds != row.Buckets {
			t.Fatalf("point %+v does not mirror row %+v", p, row)
		}
		// The memory columns the BENCH_async.json gate report reads.
		if p.PeakHeapSysMB <= 0 {
			t.Fatalf("point %+v has no memory sample", p)
		}
	}
	if res.Rows[0].Shards != 1 || res.Rows[1].Shards != 2 {
		t.Fatalf("shard counts %d, %d, want 1, 2", res.Rows[0].Shards, res.Rows[1].Shards)
	}
	if _, err := RunAsyncBench(0, 1, 1); err == nil {
		t.Error("accepted n = 0")
	}
}
