package sim

import (
	"fmt"
	"runtime"
	"slices"
	"time"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/run"
	"repro/internal/stats"
)

// EngineRow reports one configuration of the round-engine benchmark.
type EngineRow struct {
	// Mode is the execution schedule: "parallel" (per-worker streams, the
	// legacy timing baseline), "seeded" (worker-count-independent rounds,
	// one at a time) or "pipelined" (RunRoundsSeeded: round r+1's scatter
	// overlapping round r's matching).
	Mode           string  `json:"mode"`
	Workers        int     `json:"workers"`
	SecondsPerRnd  float64 `json:"seconds_per_round"`
	RequestsPerSec float64 `json:"requests_per_second"` // scattered offers+demands per wall second
	Fraction       float64 `json:"fraction"`            // arranged dates / m, averaged over rounds
	// Speedup compares against the mode's natural baseline: serial seconds
	// for parallel rows, the same-worker seeded row for pipelined rows.
	Speedup float64 `json:"speedup_vs_serial"`
}

// EngineResult is the full round-engine benchmark: one serial baseline row
// (workers = 1) followed by the requested parallel worker counts. Points
// carries the generic Report-derived perf-trajectory records the
// BENCH_engine.json file collects (protocol "engine-round"; Messages is
// the number of requests scattered).
type EngineResult struct {
	N      int          `json:"n"`
	Rounds int          `json:"rounds"`
	Rows   []EngineRow  `json:"rows"`
	Points []BenchPoint `json:"points"`
}

// Table renders the benchmark in the repository's table shape.
func (r EngineResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Round engine — n=%d, %d rounds per point (uniform selection, unit bandwidth)", r.N, r.Rounds),
		"mode", "workers", "s/round", "req/s", "fraction", "speedup",
	)
	for _, row := range r.Rows {
		speedup := "" // seeded rows are the pipelined baseline: no speedup of their own
		if row.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", row.Speedup)
		}
		t.AddRow(
			row.Mode,
			fmt.Sprint(row.Workers),
			fmt.Sprintf("%.4f", row.SecondsPerRnd),
			fmt.Sprintf("%.3g", row.RequestsPerSec),
			fmt.Sprintf("%.4f", row.Fraction),
			speedup,
		)
	}
	return t
}

// RunEngineScaled is the registry entry point for the engine benchmark:
// quick scale profiles n = 100k (3 rounds per point, 2/4 workers), paper
// scale the million-node profile (5 rounds per point, 2/4/8 workers).
func RunEngineScaled(scale Scale, seed uint64) (EngineResult, error) {
	if scale == ScalePaper {
		return RunEngineBench(1_000_000, 5, []int{2, 4, 8}, seed)
	}
	return RunEngineBench(100_000, 3, []int{2, 4}, seed)
}

// RunEngineBench profiles the dating-service round engine at a single
// large n: it times the serial path, then the parallel path at each
// requested worker count, on a homogeneous unit-bandwidth profile under
// uniform selection (the Figure 1 hot path). Every configuration validates
// its first round against ValidateCapacities so a performance run doubles
// as a safety check. The million-node profile of the ISSUE is
// RunEngineBench(1_000_000, rounds, []int{2, 4, ...}, seed).
func RunEngineBench(n, rounds int, workerCounts []int, seed uint64) (EngineResult, error) {
	if n <= 0 || rounds <= 0 {
		return EngineResult{}, fmt.Errorf("sim: engine bench needs positive n and rounds (got n=%d rounds=%d)", n, rounds)
	}
	res := EngineResult{N: n, Rounds: rounds}

	counts := append([]int{1}, workerCounts...)
	serialSec := 0.0
	seen := map[int]bool{}
	for _, workers := range counts {
		if workers < 1 || seen[workers] {
			continue
		}
		seen[workers] = true

		// Memory sampling brackets the whole configuration — Service
		// construction, warm-up, and timed rounds — so TotalAllocMB captures
		// the round scratch itself (the O(n + requests) claim), not just the
		// steady-state result slices. The GC keeps the heap comparable
		// across the worker-count iterations.
		runtime.GC()
		var memBefore, memAfter runtime.MemStats
		runtime.ReadMemStats(&memBefore)

		sel, err := core.NewUniformSelector(n)
		if err != nil {
			return EngineResult{}, err
		}
		svc, err := core.NewService(bandwidth.Homogeneous(n, 1), sel)
		if err != nil {
			return EngineResult{}, err
		}
		streams := rng.NewStreams(seed, workers)

		// Warm-up round: touches every scratch buffer so allocation cost
		// does not pollute the timing, and validates the safety property.
		first, err := svc.RunRoundParallel(streams, workers)
		if err != nil {
			return EngineResult{}, err
		}
		if err := core.ValidateCapacities(first, svc.Profile()); err != nil {
			return EngineResult{}, fmt.Errorf("sim: engine bench workers=%d: %w", workers, err)
		}

		dates := 0
		start := time.Now()
		for r := 0; r < rounds; r++ {
			out, err := svc.RunRoundParallel(streams, workers)
			if err != nil {
				return EngineResult{}, err
			}
			dates += len(out.Dates)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&memAfter)
		sec := elapsed.Seconds() / float64(rounds)

		row := EngineRow{
			Mode:           "parallel",
			Workers:        workers,
			SecondsPerRnd:  sec,
			RequestsPerSec: float64(2*n) / sec,
			Fraction:       float64(dates) / float64(rounds) / float64(n),
		}
		if workers == 1 {
			serialSec = sec
		}
		if serialSec > 0 && sec > 0 {
			row.Speedup = serialSec / sec
		}
		res.Rows = append(res.Rows, row)
		// The bench point rides the unified Report shape: the engine is not
		// a protocol, but its timed rounds fit the same record every other
		// BENCH writer emits. The memory columns ride alongside so the
		// O(n + requests) scratch claim stays visible in the trajectory.
		p := PointFromReport(n, run.Report{
			Protocol:  "engine-round",
			Rounds:    rounds,
			Completed: true,
			Messages:  int64(2*n) * int64(rounds),
			Wall:      elapsed,
			Seed:      seed,
			Workers:   workers,
		})
		p.SampleMem(&memBefore, &memAfter)
		res.Points = append(res.Points, p)
	}

	// Pipelined section: the seeded engine one round at a time versus the
	// same rounds batched through RunRoundsSeeded, per worker count. The two
	// schedules must produce bit-identical dates — the benchmark doubles as
	// the golden check — and the pipelined row's speedup column is its
	// s/round gain over the same-worker seeded row, the delta the perf gate
	// watches.
	seedStream := rng.New(seed)
	roundSeeds := make([]uint64, rounds)
	for r := range roundSeeds {
		roundSeeds[r] = seedStream.Uint64()
	}
	seenPipelined := map[int]bool{}
	for _, workers := range counts {
		if workers < 1 || seenPipelined[workers] {
			continue
		}
		seenPipelined[workers] = true
		var seqDates [][]core.Date
		var seededSec float64
		for _, mode := range []string{"seeded", "pipelined"} {
			runtime.GC()
			var memBefore, memAfter runtime.MemStats
			runtime.ReadMemStats(&memBefore)

			sel, err := core.NewUniformSelector(n)
			if err != nil {
				return EngineResult{}, err
			}
			svc, err := core.NewService(bandwidth.Homogeneous(n, 1), sel)
			if err != nil {
				return EngineResult{}, err
			}
			// Warm-up: touch every scratch buffer (including the back pair
			// in pipelined mode) and validate the safety property.
			if mode == "seeded" {
				first, err := svc.RunRoundSeeded(seed, workers)
				if err != nil {
					return EngineResult{}, err
				}
				if err := core.ValidateCapacities(first, svc.Profile()); err != nil {
					return EngineResult{}, fmt.Errorf("sim: engine bench seeded workers=%d: %w", workers, err)
				}
			} else {
				if _, err := svc.RunRoundsSeeded(roundSeeds[:1], workers); err != nil {
					return EngineResult{}, err
				}
			}

			dates := 0
			var batch []core.RoundResult
			start := time.Now()
			if mode == "seeded" {
				for _, rs := range roundSeeds {
					out, err := svc.RunRoundSeeded(rs, workers)
					if err != nil {
						return EngineResult{}, err
					}
					dates += len(out.Dates)
					seqDates = append(seqDates, out.Dates)
				}
			} else {
				batch, err = svc.RunRoundsSeeded(roundSeeds, workers)
				if err != nil {
					return EngineResult{}, err
				}
				for _, out := range batch {
					dates += len(out.Dates)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&memAfter)

			if mode == "pipelined" {
				for r := range batch {
					if !slices.Equal(batch[r].Dates, seqDates[r]) {
						return EngineResult{}, fmt.Errorf(
							"sim: engine bench workers=%d: pipelined round %d diverged from sequential", workers, r)
					}
				}
			}

			sec := elapsed.Seconds() / float64(rounds)
			row := EngineRow{
				Mode:           mode,
				Workers:        workers,
				SecondsPerRnd:  sec,
				RequestsPerSec: float64(2*n) / sec,
				Fraction:       float64(dates) / float64(rounds) / float64(n),
			}
			if mode == "seeded" {
				seededSec = sec
			} else if seededSec > 0 && sec > 0 {
				row.Speedup = seededSec / sec
			}
			res.Rows = append(res.Rows, row)
			p := PointFromReport(n, run.Report{
				Protocol:  "engine-" + mode,
				Rounds:    rounds,
				Completed: true,
				Messages:  int64(2*n) * int64(rounds),
				Wall:      elapsed,
				Seed:      seed,
				Workers:   workers,
			})
			p.SampleMem(&memBefore, &memAfter)
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}
