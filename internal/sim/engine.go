package sim

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/run"
	"repro/internal/stats"
)

// EngineRow reports one worker count of the round-engine benchmark.
type EngineRow struct {
	Workers        int     `json:"workers"`
	SecondsPerRnd  float64 `json:"seconds_per_round"`
	RequestsPerSec float64 `json:"requests_per_second"` // scattered offers+demands per wall second
	Fraction       float64 `json:"fraction"`            // arranged dates / m, averaged over rounds
	Speedup        float64 `json:"speedup_vs_serial"`   // serial seconds / this row's seconds
}

// EngineResult is the full round-engine benchmark: one serial baseline row
// (workers = 1) followed by the requested parallel worker counts. Points
// carries the generic Report-derived perf-trajectory records the
// BENCH_engine.json file collects (protocol "engine-round"; Messages is
// the number of requests scattered).
type EngineResult struct {
	N      int          `json:"n"`
	Rounds int          `json:"rounds"`
	Rows   []EngineRow  `json:"rows"`
	Points []BenchPoint `json:"points"`
}

// Table renders the benchmark in the repository's table shape.
func (r EngineResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Round engine — n=%d, %d rounds per point (uniform selection, unit bandwidth)", r.N, r.Rounds),
		"workers", "s/round", "req/s", "fraction", "speedup",
	)
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprint(row.Workers),
			fmt.Sprintf("%.4f", row.SecondsPerRnd),
			fmt.Sprintf("%.3g", row.RequestsPerSec),
			fmt.Sprintf("%.4f", row.Fraction),
			fmt.Sprintf("%.2fx", row.Speedup),
		)
	}
	return t
}

// RunEngineScaled is the registry entry point for the engine benchmark:
// quick scale profiles n = 100k (3 rounds per point, 2/4 workers), paper
// scale the million-node profile (5 rounds per point, 2/4/8 workers).
func RunEngineScaled(scale Scale, seed uint64) (EngineResult, error) {
	if scale == ScalePaper {
		return RunEngineBench(1_000_000, 5, []int{2, 4, 8}, seed)
	}
	return RunEngineBench(100_000, 3, []int{2, 4}, seed)
}

// RunEngineBench profiles the dating-service round engine at a single
// large n: it times the serial path, then the parallel path at each
// requested worker count, on a homogeneous unit-bandwidth profile under
// uniform selection (the Figure 1 hot path). Every configuration validates
// its first round against ValidateCapacities so a performance run doubles
// as a safety check. The million-node profile of the ISSUE is
// RunEngineBench(1_000_000, rounds, []int{2, 4, ...}, seed).
func RunEngineBench(n, rounds int, workerCounts []int, seed uint64) (EngineResult, error) {
	if n <= 0 || rounds <= 0 {
		return EngineResult{}, fmt.Errorf("sim: engine bench needs positive n and rounds (got n=%d rounds=%d)", n, rounds)
	}
	res := EngineResult{N: n, Rounds: rounds}

	counts := append([]int{1}, workerCounts...)
	serialSec := 0.0
	seen := map[int]bool{}
	for _, workers := range counts {
		if workers < 1 || seen[workers] {
			continue
		}
		seen[workers] = true

		// Memory sampling brackets the whole configuration — Service
		// construction, warm-up, and timed rounds — so TotalAllocMB captures
		// the round scratch itself (the O(n + requests) claim), not just the
		// steady-state result slices. The GC keeps the heap comparable
		// across the worker-count iterations.
		runtime.GC()
		var memBefore, memAfter runtime.MemStats
		runtime.ReadMemStats(&memBefore)

		sel, err := core.NewUniformSelector(n)
		if err != nil {
			return EngineResult{}, err
		}
		svc, err := core.NewService(bandwidth.Homogeneous(n, 1), sel)
		if err != nil {
			return EngineResult{}, err
		}
		streams := rng.NewStreams(seed, workers)

		// Warm-up round: touches every scratch buffer so allocation cost
		// does not pollute the timing, and validates the safety property.
		first, err := svc.RunRoundParallel(streams, workers)
		if err != nil {
			return EngineResult{}, err
		}
		if err := core.ValidateCapacities(first, svc.Profile()); err != nil {
			return EngineResult{}, fmt.Errorf("sim: engine bench workers=%d: %w", workers, err)
		}

		dates := 0
		start := time.Now()
		for r := 0; r < rounds; r++ {
			out, err := svc.RunRoundParallel(streams, workers)
			if err != nil {
				return EngineResult{}, err
			}
			dates += len(out.Dates)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&memAfter)
		sec := elapsed.Seconds() / float64(rounds)

		row := EngineRow{
			Workers:        workers,
			SecondsPerRnd:  sec,
			RequestsPerSec: float64(2*n) / sec,
			Fraction:       float64(dates) / float64(rounds) / float64(n),
		}
		if workers == 1 {
			serialSec = sec
		}
		if serialSec > 0 && sec > 0 {
			row.Speedup = serialSec / sec
		}
		res.Rows = append(res.Rows, row)
		// The bench point rides the unified Report shape: the engine is not
		// a protocol, but its timed rounds fit the same record every other
		// BENCH writer emits. The memory columns ride alongside so the
		// O(n + requests) scratch claim stays visible in the trajectory.
		p := PointFromReport(n, run.Report{
			Protocol:  "engine-round",
			Rounds:    rounds,
			Completed: true,
			Messages:  int64(2*n) * int64(rounds),
			Wall:      elapsed,
			Seed:      seed,
			Workers:   workers,
		})
		p.SampleMem(&memBefore, &memAfter)
		res.Points = append(res.Points, p)
	}
	return res, nil
}
