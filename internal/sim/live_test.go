package sim

import (
	"strings"
	"testing"
)

func TestRunLiveScaledQuick(t *testing.T) {
	res, err := RunLiveScaled(ScaleQuick, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two scale rows plus one sensitivity row per model.
	wantRows := 2 + len(liveModels(42, 2000))
	if len(res.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(res.Rows), wantRows)
	}
	var syncRounds, loss10Rounds int
	for _, row := range res.Rows {
		if !row.Completed {
			t.Fatalf("row %+v incomplete", row)
		}
		if row.DatingRounds <= 0 || row.MsgsPerSec <= 0 {
			t.Fatalf("row %+v has empty metrics", row)
		}
		if row.N == 2000 && row.Model == "sync" {
			syncRounds = row.DatingRounds
		}
		if row.Model == "loss-10%" {
			loss10Rounds = row.DatingRounds
		}
	}
	if loss10Rounds < syncRounds {
		t.Fatalf("10%% loss spread faster than sync (%d vs %d dating rounds)", loss10Rounds, syncRounds)
	}
	rendered := res.Table().Render()
	if !strings.Contains(rendered, "latency-4") || !strings.Contains(rendered, "churn-10%") {
		t.Fatalf("table missing sensitivity rows:\n%s", rendered)
	}
}

func TestRunLiveBench(t *testing.T) {
	res, err := RunLiveBench(1500, 2, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("engines disagreed on the spreading trajectory")
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (sharded x2 + pipelined + goroutine)", len(res.Rows))
	}
	var sawPipelined bool
	for i, row := range res.Rows {
		if row.SecPerDating <= 0 || row.MsgsPerSec <= 0 {
			t.Fatalf("row %+v has empty metrics", row)
		}
		if row.Engine == "sharded-pipelined" {
			sawPipelined = true
			if res.Points[i].Protocol != "live-pipelined" {
				t.Fatalf("pipelined point has protocol %q", res.Points[i].Protocol)
			}
		}
	}
	if !sawPipelined {
		t.Fatal("no sharded-pipelined row")
	}
	if _, err := RunLiveBench(0, 1, false, 1); err == nil {
		t.Error("accepted n = 0")
	}
}
