package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/overlay"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/stats"
)

// DynamicRow is one churn rate of experiment E13.
type DynamicRow struct {
	ReplaceProb float64 // per-node per-round replacement probability
	RoundsTo95  float64 // mean rounds until 95% of nodes are informed
	SteadyState float64 // mean informed fraction over the final quarter
	Replaced    float64 // mean nodes replaced during the run
}

// DynamicResult is the E13 outcome: rumor spreading over a DHT whose
// membership churns every round. Replaced nodes rejoin elsewhere on the
// ring *uninformed*, so under sustained churn the network reaches a steady
// state rather than 100% coverage: fresh uninformed peers appear at rate
// p*n per round and are re-informed at rate ~alpha per round, giving an
// equilibrium coverage of about 1 - p/alpha (alpha ~ 0.5 for the DHT
// distribution). The experiment verifies the rumor both spreads fast and
// persists at that equilibrium.
type DynamicResult struct {
	N      int
	Rounds int // rounds simulated per run
	Rows   []DynamicRow
}

// Table renders E13.
func (r DynamicResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E13 — spreading over a churning DHT (n = %d, %d rounds; replaced nodes forget the rumor)", r.N, r.Rounds),
		"replace prob", "rounds to 95%", "steady-state coverage", "nodes replaced")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.3f", row.ReplaceProb), fmt.Sprintf("%.1f", row.RoundsTo95),
			fmt.Sprintf("%.3f", row.SteadyState), fmt.Sprintf("%.0f", row.Replaced))
	}
	return t
}

// RunDynamicDHT runs E13 serially; see RunDynamicDHTPar.
func RunDynamicDHT(scale Scale, seed uint64) (DynamicResult, error) {
	return RunDynamicDHTPar(scale, seed, 1)
}

// RunDynamicDHTPar spreads one rumor while, at the start of every round,
// each non-source node is replaced with probability p: its ring position is
// resampled and it forgets the rumor (a new peer reusing the id). Each
// repetition is one harness job seeded from (seed, churn-rate index,
// repetition); inside a job, every Arrange draws spare tokens from the
// harness's shared worker budget, so once the sweep's tail leaves cores
// idle the remaining repetitions parallelize their rounds — the Arranger
// is worker-count independent, so the numbers cannot move.
func RunDynamicDHTPar(scale Scale, seed uint64, workers int) (DynamicResult, error) {
	n, reps, rounds := 512, 8, 120
	if scale == ScalePaper {
		n, reps, rounds = 4096, 50, 200
	}
	probs := []float64{0, 0.005, 0.02}
	outs := make([]churnOutcome, len(probs)*reps)
	err := forEach(len(outs), workers, func(j int, b *par.Budget) error {
		pi, rep := j/reps, j%reps
		s := rng.New(rng.Derive(seed, domainDynamic, uint64(pi), uint64(rep)))
		out, err := spreadOverChurningRing(n, probs[pi], rounds, b, s)
		if err != nil {
			return err
		}
		if out.roundsTo95 == 0 {
			return fmt.Errorf("sim: coverage never reached 95%% at p=%v", probs[pi])
		}
		outs[j] = out
		return nil
	})
	if err != nil {
		return DynamicResult{}, err
	}

	res := DynamicResult{N: n, Rounds: rounds}
	for pi, p := range probs {
		var to95, steady, replaced stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			out := outs[pi*reps+rep]
			to95.Add(float64(out.roundsTo95))
			steady.Add(out.steadyCoverage)
			replaced.Add(float64(out.replaced))
		}
		res.Rows = append(res.Rows, DynamicRow{
			ReplaceProb: p, RoundsTo95: to95.Mean(),
			SteadyState: steady.Mean(), Replaced: replaced.Mean(),
		})
	}
	return res, nil
}

// churnOutcome summarizes one churning-ring run.
type churnOutcome struct {
	roundsTo95     int
	steadyCoverage float64
	replaced       int
}

// spreadOverChurningRing runs one spreading instance for a fixed number of
// rounds under sustained churn. Each dating round's Arrange draws workers
// from the shared budget (nil = serial); since the Arranger is worker-count
// independent and each round's seed is a single draw from s, the outcome
// depends only on s.
func spreadOverChurningRing(n int, replaceProb float64, rounds int, b *par.Budget, s *rng.Stream) (churnOutcome, error) {
	var out churnOutcome
	ring, err := overlay.NewDynamicRing(n, s)
	if err != nil {
		return out, err
	}
	sel, err := core.NewDynamicRingSelector(ring)
	if err != nil {
		return out, err
	}
	arr, err := core.NewArranger(sel)
	if err != nil {
		return out, err
	}
	informed := make([]bool, n)
	informed[0] = true

	supply := make([]int, n)
	demand := make([]int, n)
	for i := range supply {
		supply[i] = 1
		demand[i] = 1
	}

	tailStart := rounds - rounds/4
	var tail stats.Accumulator
	for round := 1; round <= rounds; round++ {
		if replaceProb > 0 {
			for id := 1; id < n; id++ {
				if s.Bernoulli(replaceProb) {
					if err := ring.Replace(id, s); err != nil {
						return out, err
					}
					informed[id] = false
					out.replaced++
				}
			}
		}
		dates, err := arr.ArrangeShared(supply, demand, s.Uint64(), b)
		if err != nil {
			return out, err
		}
		next := make([]bool, n)
		copy(next, informed)
		for _, d := range dates {
			if informed[d.Sender] {
				next[d.Receiver] = true
			}
		}
		informed = next

		count := 0
		for _, b := range informed {
			if b {
				count++
			}
		}
		coverage := float64(count) / float64(n)
		if out.roundsTo95 == 0 && coverage >= 0.95 {
			out.roundsTo95 = round
		}
		if round > tailStart {
			tail.Add(coverage)
		}
	}
	out.steadyCoverage = tail.Mean()
	return out, nil
}
