package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/stats"
)

// DynamicRow is one churn rate of experiment E13.
type DynamicRow struct {
	ReplaceProb float64 // per-node per-round replacement probability
	RoundsTo95  float64 // mean rounds until 95% of nodes are informed
	SteadyState float64 // mean informed fraction over the final quarter
	Replaced    float64 // mean nodes replaced during the run
}

// DynamicResult is the E13 outcome: rumor spreading over a DHT whose
// membership churns every round. Replaced nodes rejoin elsewhere on the
// ring *uninformed*, so under sustained churn the network reaches a steady
// state rather than 100% coverage: fresh uninformed peers appear at rate
// p*n per round and are re-informed at rate ~alpha per round, giving an
// equilibrium coverage of about 1 - p/alpha (alpha ~ 0.5 for the DHT
// distribution). The experiment verifies the rumor both spreads fast and
// persists at that equilibrium.
type DynamicResult struct {
	N      int
	Rounds int // rounds simulated per run
	Rows   []DynamicRow
}

// Table renders E13.
func (r DynamicResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("E13 — spreading over a churning DHT (n = %d, %d rounds; replaced nodes forget the rumor)", r.N, r.Rounds),
		"replace prob", "rounds to 95%", "steady-state coverage", "nodes replaced")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.3f", row.ReplaceProb), fmt.Sprintf("%.1f", row.RoundsTo95),
			fmt.Sprintf("%.3f", row.SteadyState), fmt.Sprintf("%.0f", row.Replaced))
	}
	return t
}

// RunDynamicDHT spreads one rumor while, at the start of every round, each
// non-source node is replaced with probability p: its ring position is
// resampled and it forgets the rumor (a new peer reusing the id).
func RunDynamicDHT(scale Scale, seed uint64) (DynamicResult, error) {
	n, reps, rounds := 512, 8, 120
	if scale == ScalePaper {
		n, reps, rounds = 4096, 50, 200
	}
	root := rng.New(seed)
	res := DynamicResult{N: n, Rounds: rounds}
	for _, p := range []float64{0, 0.005, 0.02} {
		var to95, steady, replaced stats.Accumulator
		for rep := 0; rep < reps; rep++ {
			s := root.Split()
			out, err := spreadOverChurningRing(n, p, rounds, s)
			if err != nil {
				return DynamicResult{}, err
			}
			if out.roundsTo95 == 0 {
				return DynamicResult{}, fmt.Errorf("sim: coverage never reached 95%% at p=%v", p)
			}
			to95.Add(float64(out.roundsTo95))
			steady.Add(out.steadyCoverage)
			replaced.Add(float64(out.replaced))
		}
		res.Rows = append(res.Rows, DynamicRow{
			ReplaceProb: p, RoundsTo95: to95.Mean(),
			SteadyState: steady.Mean(), Replaced: replaced.Mean(),
		})
	}
	return res, nil
}

// churnOutcome summarizes one churning-ring run.
type churnOutcome struct {
	roundsTo95     int
	steadyCoverage float64
	replaced       int
}

// spreadOverChurningRing runs one spreading instance for a fixed number of
// rounds under sustained churn.
func spreadOverChurningRing(n int, replaceProb float64, rounds int, s *rng.Stream) (churnOutcome, error) {
	var out churnOutcome
	ring, err := overlay.NewDynamicRing(n, s)
	if err != nil {
		return out, err
	}
	sel, err := core.NewDynamicRingSelector(ring)
	if err != nil {
		return out, err
	}
	informed := make([]bool, n)
	informed[0] = true

	supply := make([]int, n)
	demand := make([]int, n)
	for i := range supply {
		supply[i] = 1
		demand[i] = 1
	}

	tailStart := rounds - rounds/4
	var tail stats.Accumulator
	for round := 1; round <= rounds; round++ {
		if replaceProb > 0 {
			for id := 1; id < n; id++ {
				if s.Bernoulli(replaceProb) {
					if err := ring.Replace(id, s); err != nil {
						return out, err
					}
					informed[id] = false
					out.replaced++
				}
			}
		}
		dates, err := core.ArrangeDates(supply, demand, sel, s)
		if err != nil {
			return out, err
		}
		next := make([]bool, n)
		copy(next, informed)
		for _, d := range dates {
			if informed[d.Sender] {
				next[d.Receiver] = true
			}
		}
		informed = next

		count := 0
		for _, b := range informed {
			if b {
				count++
			}
		}
		coverage := float64(count) / float64(n)
		if out.roundsTo95 == 0 && coverage >= 0.95 {
			out.roundsTo95 = round
		}
		if round > tailStart {
			tail.Add(coverage)
		}
	}
	out.steadyCoverage = tail.Mean()
	return out, nil
}
