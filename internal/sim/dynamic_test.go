package sim

import (
	"strings"
	"testing"
)

func TestDynamicDHTSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic DHT experiment runs many spreads")
	}
	res, err := RunDynamicDHT(ScaleQuick, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RoundsTo95 <= 0 {
			t.Errorf("p=%.3f: never reached 95%% coverage", row.ReplaceProb)
		}
		if row.ReplaceProb == 0 && row.Replaced != 0 {
			t.Errorf("p=0 replaced %.0f nodes", row.Replaced)
		}
		if row.ReplaceProb > 0 && row.Replaced == 0 {
			t.Errorf("p=%.3f replaced nobody", row.ReplaceProb)
		}
	}
	// No churn: full coverage at steady state. Sustained churn: the
	// equilibrium coverage ~1 - p/alpha stays high but below 1.
	if res.Rows[0].SteadyState < 0.999 {
		t.Errorf("p=0 steady-state coverage %.3f, want 1.0", res.Rows[0].SteadyState)
	}
	if res.Rows[2].SteadyState < 0.90 {
		t.Errorf("p=0.02 steady-state coverage %.3f collapsed", res.Rows[2].SteadyState)
	}
	if res.Rows[2].SteadyState >= res.Rows[0].SteadyState {
		t.Errorf("churned coverage %.4f not below churn-free %.4f",
			res.Rows[2].SteadyState, res.Rows[0].SteadyState)
	}
	if !strings.Contains(res.Table().Render(), "churning DHT") {
		t.Error("table missing title")
	}
}

func TestLoadViolationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("load experiment runs every algorithm")
	}
	res, err := RunLoadViolation(ScaleQuick, 14)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]LoadRow{}
	for _, row := range res.Rows {
		byName[row.Algorithm.String()] = row
	}
	// The dating service is the only algorithm honoring unit bandwidth.
	d := byName["dating"]
	if d.MaxInLoad > 1 || d.MaxOutLoad > 1 {
		t.Errorf("dating loads %+v exceed unit bandwidth", d)
	}
	// Push overdrives receivers; pull overdrives servers (balls-into-bins
	// maxima around log n / log log n ~ 4-6 at n=2048).
	if byName["push"].MaxInLoad < 2 {
		t.Errorf("push max in-load %.1f implausibly low", byName["push"].MaxInLoad)
	}
	if byName["pull"].MaxOutLoad < 2 {
		t.Errorf("pull max out-load %.1f implausibly low", byName["pull"].MaxOutLoad)
	}
	// Fair pull keeps its out-load at 1 by definition.
	if byName["fair-pull"].MaxOutLoad > 1 {
		t.Errorf("fair pull served %.1f requests in a round", byName["fair-pull"].MaxOutLoad)
	}
	if !strings.Contains(res.Table().Render(), "max in-load") {
		t.Error("table missing header")
	}
}
