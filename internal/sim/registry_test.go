package sim

import "testing"

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 19 {
		t.Fatalf("registry has %d experiments, DESIGN.md lists 13 plus the engine and live benchmarks, the sync-vs-async comparison, the unified-runner sweep, the topology sweep and the consensus sweep", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.Name == "" || e.About == "" || e.Run == nil {
			t.Fatalf("incomplete registry entry %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"figure1", "figure2", "phases", "dynamicdht", "live", "async", "topology", "consensus"} {
		if !seen[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
}

func TestRegistryRunnersProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two registry experiments end to end")
	}
	// Spot-check two cheap experiments through the registry interface.
	for _, name := range []string{"alpha", "pipelining"} {
		for _, e := range Registry() {
			if e.Name != name {
				continue
			}
			tbl, err := e.Run(ScaleQuick, 42, 2)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if tbl.NumRows() == 0 {
				t.Fatalf("%s: empty table", name)
			}
		}
	}
}
