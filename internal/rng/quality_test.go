package rng

import (
	"math"
	"testing"
)

// Statistical quality tests beyond basic uniformity: serial correlation,
// pairwise bucket independence, bit balance, and cross-generator agreement
// of distributional moments. All use fixed seeds, so they are deterministic.

func TestSerialCorrelationLow(t *testing.T) {
	for name, src := range map[string]Source{
		"xoshiro": NewXoshiro256(101),
		"pcg":     NewPCG32(101),
	} {
		s := NewWithSource(src)
		const n = 200000
		xs := make([]float64, n)
		var mean float64
		for i := range xs {
			xs[i] = s.Float64()
			mean += xs[i]
		}
		mean /= n
		var num, den float64
		for i := 0; i < n-1; i++ {
			num += (xs[i] - mean) * (xs[i+1] - mean)
		}
		for i := 0; i < n; i++ {
			den += (xs[i] - mean) * (xs[i] - mean)
		}
		if r := num / den; math.Abs(r) > 0.01 {
			t.Errorf("%s: lag-1 autocorrelation %.4f", name, r)
		}
	}
}

func TestPairBucketIndependence(t *testing.T) {
	// Consecutive draws binned into a 4x4 contingency table should show no
	// dependence: every cell near n/16.
	s := New(202)
	const n = 160000
	var cells [4][4]int
	for i := 0; i < n; i++ {
		a := s.Intn(4)
		b := s.Intn(4)
		cells[a][b]++
	}
	want := float64(n) / 16
	for i := range cells {
		for j := range cells[i] {
			if math.Abs(float64(cells[i][j])-want) > 0.05*want {
				t.Errorf("cell (%d,%d) = %d, want %.0f ± 5%%", i, j, cells[i][j], want)
			}
		}
	}
}

func TestBitBalance(t *testing.T) {
	// Every output bit position should be set about half the time.
	s := New(303)
	const n = 100000
	var counts [64]int
	for i := 0; i < n; i++ {
		v := s.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/2) > 0.02*n {
			t.Errorf("bit %d set %d of %d times", b, c, n)
		}
	}
}

func TestGeneratorFamiliesAgreeOnMoments(t *testing.T) {
	// Experiment conclusions must not depend on the generator family: both
	// sources should produce Binomial samples with matching moments.
	moments := func(src Source) (mean, variance float64) {
		s := NewWithSource(src)
		const reps = 40000
		var sum, sumSq float64
		for i := 0; i < reps; i++ {
			v := float64(s.Binomial(50, 0.3))
			sum += v
			sumSq += v * v
		}
		mean = sum / reps
		return mean, sumSq/reps - mean*mean
	}
	mx, vx := moments(NewXoshiro256(404))
	mp, vp := moments(NewPCG32(404))
	if math.Abs(mx-mp) > 0.15 {
		t.Errorf("means disagree: xoshiro %.3f vs pcg %.3f", mx, mp)
	}
	if math.Abs(vx-vp) > 0.6 {
		t.Errorf("variances disagree: xoshiro %.3f vs pcg %.3f", vx, vp)
	}
}

func TestUint64nLargeBoundsUnbiased(t *testing.T) {
	// Lemire rejection must stay unbiased for bounds just below a power of
	// two, the worst case for naive modulo.
	s := New(505)
	n := uint64(1<<16 - 1)
	const draws = 300000
	lowHalf := 0
	for i := 0; i < draws; i++ {
		if s.Uint64n(n) < n/2 {
			lowHalf++
		}
	}
	frac := float64(lowHalf) / draws
	if math.Abs(frac-0.5) > 0.005 {
		t.Fatalf("low-half fraction %.4f", frac)
	}
}

func TestStreamsPairwiseDistinct(t *testing.T) {
	// Any two of many derived streams should diverge immediately.
	streams := NewStreams(606, 32)
	firsts := map[uint64]int{}
	for i, s := range streams {
		v := s.Uint64()
		if prev, dup := firsts[v]; dup {
			t.Fatalf("streams %d and %d share first output", prev, i)
		}
		firsts[v] = i
	}
}

func TestBinomialLargeNPPath(t *testing.T) {
	// Exercise the O(n) summation branch (n*p >= 32) explicitly.
	s := New(707)
	const n, p, reps = 200, 0.5, 20000
	var sum float64
	for i := 0; i < reps; i++ {
		sum += float64(s.Binomial(n, p))
	}
	if mean := sum / reps; math.Abs(mean-100) > 1.5 {
		t.Fatalf("Binomial(200, .5) mean %.2f", mean)
	}
}

func TestPoissonDecompositionPath(t *testing.T) {
	// lambda > 30 triggers the halving decomposition; verify moments there.
	s := New(808)
	const lambda, reps = 250.0, 20000
	var sum, sumSq float64
	for i := 0; i < reps; i++ {
		v := float64(s.Poisson(lambda))
		sum += v
		sumSq += v * v
	}
	mean := sum / reps
	variance := sumSq/reps - mean*mean
	if math.Abs(mean-lambda) > 0.02*lambda {
		t.Fatalf("Poisson(250) mean %.2f", mean)
	}
	if math.Abs(variance-lambda) > 0.08*lambda {
		t.Fatalf("Poisson(250) variance %.2f", variance)
	}
}
