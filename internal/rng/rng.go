// Package rng provides deterministic, seedable pseudo-random number
// generation for the simulator.
//
// Every stochastic process in the repository — request destinations,
// rendezvous matchings, bandwidth profiles, DHT positions, coding
// coefficients — draws from a Stream so that experiments are exactly
// reproducible from a single root seed. Streams for different nodes are
// derived with SplitMix64 so they are statistically independent and may be
// used concurrently without locking (one stream per goroutine).
package rng

import "math/bits"

// splitMix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 passes BigCrush and is the recommended seeder for xoshiro.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive deterministically mixes a root seed with a sequence of indices —
// experiment coordinates such as (overlay, repetition) or a node id — into a
// new seed, by chaining the SplitMix64 finalizer over the indices in order.
//
// The construction absorbs one index per step (state = previous output XOR
// index, then one SplitMix64 step), so the result depends on the order of
// the indices and adjacent coordinates yield statistically independent
// seeds. It is the repository's single scheme for carving independent
// random streams out of one root seed: the parallel experiment harness
// seeds repetition (overlay, rep) jobs with Derive(seed, overlay, rep),
// and the Arranger derives per-node scatter and per-rendezvous match
// streams the same way, which is what makes its output independent of the
// worker count.
func Derive(seed uint64, idx ...uint64) uint64 {
	state := seed
	out := splitMix64(&state)
	for _, v := range idx {
		state = out ^ v
		out = splitMix64(&state)
	}
	return out
}

// Source is a deterministic stream of 64-bit values. Implementations are not
// safe for concurrent use; derive one Source per goroutine.
type Source interface {
	Uint64() uint64
	// Seed resets the source to a state derived from the given seed.
	Seed(seed uint64)
}

// Xoshiro256 implements the xoshiro256** generator by Blackman and Vigna.
// It has a 2^256-1 period and excellent statistical quality, and is the
// default generator for simulations in this repository.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator seeded from seed via SplitMix64.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	x := new(Xoshiro256)
	x.Seed(seed)
	return x
}

// Seed resets the generator state, expanding seed with SplitMix64.
func (x *Xoshiro256) Seed(seed uint64) {
	sm := seed
	for i := range x.s {
		x.s[i] = splitMix64(&sm)
	}
	// An all-zero state is invalid; SplitMix64 cannot produce four zero
	// outputs in a row, but guard anyway for arbitrary direct state edits.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next value of the stream.
func (x *Xoshiro256) Uint64() uint64 {
	s := &x.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Jump advances the generator by 2^128 steps, equivalent to that many calls
// to Uint64. It can be used to derive non-overlapping sequences from a single
// seed; NewStreams uses independent SplitMix64 seeds instead, but Jump is
// provided for callers who need the classical jump-ahead construction.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// PCG32 implements the PCG-XSH-RR 64/32 generator by O'Neill. It is smaller
// and slightly faster than xoshiro for 32-bit draws; it is provided as an
// alternative Source, mainly to let tests verify that experiment conclusions
// do not depend on the generator family.
type PCG32 struct {
	state uint64
	inc   uint64
}

// NewPCG32 returns a PCG32 seeded with the given seed and a fixed odd
// increment derived from the seed.
func NewPCG32(seed uint64) *PCG32 {
	p := new(PCG32)
	p.Seed(seed)
	return p
}

// Seed resets the generator to a state derived from seed.
func (p *PCG32) Seed(seed uint64) {
	sm := seed
	p.state = splitMix64(&sm)
	p.inc = splitMix64(&sm) | 1
	p.next32()
}

func (p *PCG32) next32() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint64 returns the next 64-bit value, composed of two 32-bit PCG outputs.
func (p *PCG32) Uint64() uint64 {
	hi := uint64(p.next32())
	lo := uint64(p.next32())
	return hi<<32 | lo
}
