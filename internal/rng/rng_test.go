package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestXoshiroDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d differs: %d vs %d", i, av, bv)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestXoshiroZeroSeedValid(t *testing.T) {
	s := New(0)
	var orAll uint64
	for i := 0; i < 64; i++ {
		orAll |= s.Uint64()
	}
	if orAll == 0 {
		t.Fatal("zero seed produced an all-zero stream")
	}
}

func TestPCG32Determinism(t *testing.T) {
	a := NewWithSource(NewPCG32(7))
	b := NewWithSource(NewPCG32(7))
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("PCG streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedResets(t *testing.T) {
	for name, src := range map[string]Source{"xoshiro": NewXoshiro256(9), "pcg": NewPCG32(9)} {
		first := make([]uint64, 16)
		for i := range first {
			first[i] = src.Uint64()
		}
		src.Seed(9)
		for i := range first {
			if got := src.Uint64(); got != first[i] {
				t.Fatalf("%s: re-seeded stream diverged at %d", name, i)
			}
		}
	}
}

func TestJumpChangesSequence(t *testing.T) {
	a := NewXoshiro256(5)
	b := NewXoshiro256(5)
	b.Jump()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("jumped stream overlapped original in %d of 100 draws", same)
	}
}

func TestNewStreamsIndependentAndDeterministic(t *testing.T) {
	a := NewStreams(3, 8)
	b := NewStreams(3, 8)
	for i := range a {
		for d := 0; d < 32; d++ {
			if a[i].Uint64() != b[i].Uint64() {
				t.Fatalf("stream %d not reproducible at draw %d", i, d)
			}
		}
	}
	// Distinct streams should not be identical.
	c := NewStreams(3, 2)
	if c[0].Uint64() == c[1].Uint64() && c[0].Uint64() == c[1].Uint64() {
		t.Fatal("derived streams appear identical")
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(11)
	for _, n := range []uint64{1, 2, 3, 7, 10, 1 << 20, (1 << 40) + 13} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Uint64n(0)")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-style check: 10 buckets, 100k draws, each bucket should be
	// within 5% of expectation. This is a loose statistical test with a
	// fixed seed so it is fully deterministic.
	s := New(1234)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want %.0f +/- 5%%", b, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	s := New(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("IntRange(-3,3) hit %d of 7 values in 1000 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(77)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	s := New(78)
	for i := 0; i < 100000; i++ {
		f := s.Float64Open()
		if f <= 0 || f > 1 {
			t.Fatalf("Float64Open out of (0,1]: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(79)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %.4f, want 0.5 +/- 0.005", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(6)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %.4f", rate)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(8)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %.4f, want 1 +/- 0.02", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(9)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(10)
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		s.src.Seed(seed)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPermUniform(t *testing.T) {
	// All 6 permutations of 3 elements should appear with ~equal frequency.
	s := New(13)
	counts := map[[3]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		p := s.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	want := float64(draws) / 6
	for p, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Errorf("perm %v: count %d, want %.0f +/- 6%%", p, c, want)
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(14)
	orig := []int{5, 5, 1, 2, 9, 9, 9}
	work := append([]int(nil), orig...)
	s.ShuffleInts(work)
	count := map[int]int{}
	for _, v := range work {
		count[v]++
	}
	if count[5] != 2 || count[1] != 1 || count[2] != 1 || count[9] != 3 {
		t.Fatalf("shuffle changed multiset: %v", work)
	}
}

func TestPermInto(t *testing.T) {
	s := New(15)
	dst := make([]int, 10)
	s.PermInto(dst)
	seen := make([]bool, 10)
	for _, v := range dst {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("PermInto produced invalid permutation %v", dst)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d times", same)
	}
}
