package rng

import "testing"

func TestDeriveDeterministic(t *testing.T) {
	if Derive(42, 1, 2) != Derive(42, 1, 2) {
		t.Fatal("Derive is not a pure function")
	}
	if Derive(42) != Derive(42) {
		t.Fatal("Derive with no indices is not a pure function")
	}
}

func TestDeriveSeparatesCoordinates(t *testing.T) {
	// Distinct coordinates — including transposed ones — must yield distinct
	// seeds: the harness relies on Derive(seed, overlay, rep) giving every
	// job its own stream.
	seen := map[uint64][2]uint64{}
	for a := uint64(0); a < 64; a++ {
		for b := uint64(0); b < 64; b++ {
			v := Derive(7, a, b)
			if prev, dup := seen[v]; dup {
				t.Fatalf("Derive(7, %d, %d) == Derive(7, %d, %d)", a, b, prev[0], prev[1])
			}
			seen[v] = [2]uint64{a, b}
		}
	}
	if Derive(7, 1, 2) == Derive(7, 2, 1) {
		t.Fatal("Derive ignores index order")
	}
	if Derive(7, 1) == Derive(8, 1) {
		t.Fatal("Derive ignores the root seed")
	}
}

func TestDeriveSeedsPassRoughUniformity(t *testing.T) {
	// Streams seeded from adjacent Derive outputs should look independent: a
	// crude bucket test over the first draw of each derived stream.
	const streams, buckets = 4096, 16
	var counts [buckets]int
	for i := 0; i < streams; i++ {
		s := New(Derive(99, uint64(i)))
		counts[s.Intn(buckets)]++
	}
	want := streams / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d has %d of %d draws (expected ~%d)", b, c, streams, want)
		}
	}
}
