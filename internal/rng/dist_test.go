package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAliasRejectsBadWeights(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{-1, 2},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, w := range cases {
		if _, err := NewAlias(w); err == nil {
			t.Errorf("NewAlias(%v) accepted invalid weights", w)
		}
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := MustAlias(weights)
	s := New(100)
	const draws = 400000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(s)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want) > 0.03*want {
			t.Errorf("outcome %d: count %d, want %.0f +/- 3%%", i, counts[i], want)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a := MustAlias([]float64{3.5})
	s := New(1)
	for i := 0; i < 100; i++ {
		if a.Sample(s) != 0 {
			t.Fatal("single-outcome alias returned nonzero index")
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := MustAlias([]float64{0, 1, 0, 2})
	s := New(2)
	for i := 0; i < 100000; i++ {
		v := a.Sample(s)
		if v == 0 || v == 2 {
			t.Fatalf("sampled zero-weight outcome %d", v)
		}
	}
}

func TestAliasProbabilitiesSaneProperty(t *testing.T) {
	// Property: for random positive weight vectors, empirical frequencies
	// track normalized weights within a loose tolerance.
	err := quick.Check(func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true // skip degenerate sizes
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			weights[i] = float64(r%16) + 1 // 1..16, all positive
			sum += weights[i]
		}
		a := MustAlias(weights)
		s := New(seed)
		const draws = 30000
		counts := make([]int, len(weights))
		for i := 0; i < draws; i++ {
			counts[a.Sample(s)]++
		}
		for i := range weights {
			want := weights[i] / sum
			got := float64(counts[i]) / draws
			if math.Abs(got-want) > 0.05*want+0.01 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0, 1) accepted")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("NewZipf(10, 0) accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("NewZipf(10, -1) accepted")
	}
}

func TestZipfRanksDecreasing(t *testing.T) {
	z, err := NewZipf(50, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	s := New(3)
	counts := make([]int, 51)
	for i := 0; i < 300000; i++ {
		r := z.Sample(s)
		if r < 1 || r > 50 {
			t.Fatalf("Zipf rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 1 should dominate rank 10 by roughly 10^1.2 ~ 15.8x.
	ratio := float64(counts[1]) / float64(counts[10])
	if ratio < 10 || ratio > 25 {
		t.Fatalf("Zipf rank1/rank10 ratio %.1f, want ~15.8", ratio)
	}
}

func TestBinomialEdges(t *testing.T) {
	s := New(4)
	if got := s.Binomial(10, 0); got != 0 {
		t.Fatalf("Binomial(10, 0) = %d", got)
	}
	if got := s.Binomial(10, 1); got != 10 {
		t.Fatalf("Binomial(10, 1) = %d", got)
	}
	if got := s.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	s := New(5)
	cases := []struct {
		n int
		p float64
	}{
		{20, 0.25}, {100, 0.05}, {1000, 0.7}, {4, 0.5},
	}
	for _, c := range cases {
		const reps = 20000
		var sum, sumSq float64
		for i := 0; i < reps; i++ {
			v := float64(s.Binomial(c.n, c.p))
			if v < 0 || v > float64(c.n) {
				t.Fatalf("Binomial(%d,%v) out of range: %v", c.n, c.p, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / reps
		wantMean := float64(c.n) * c.p
		variance := sumSq/reps - mean*mean
		wantVar := wantMean * (1 - c.p)
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.1 {
			t.Errorf("Binomial(%d,%v) mean %.3f, want %.3f", c.n, c.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.2 {
			t.Errorf("Binomial(%d,%v) var %.3f, want %.3f", c.n, c.p, variance, wantVar)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	s := New(6)
	for _, lambda := range []float64{0.25, 1, 4, 25, 100} {
		const reps = 20000
		var sum, sumSq float64
		for i := 0; i < reps; i++ {
			v := float64(s.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / reps
		variance := sumSq/reps - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean %.3f", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.1 {
			t.Errorf("Poisson(%v) variance %.3f", lambda, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	s := New(7)
	if got := s.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := s.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d", got)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(8)
	const p, reps = 0.2, 100000
	var sum float64
	for i := 0; i < reps; i++ {
		v := s.Geometric(p)
		if v < 0 {
			t.Fatalf("negative geometric %d", v)
		}
		sum += float64(v)
	}
	want := (1 - p) / p // mean of failures-before-success
	if mean := sum / reps; math.Abs(mean-want) > 0.05*want {
		t.Fatalf("Geometric(%v) mean %.3f, want %.3f", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	s := New(9)
	for i := 0; i < 50; i++ {
		if s.Geometric(1) != 0 {
			t.Fatal("Geometric(1) != 0")
		}
	}
}

func TestHypergeometricExact(t *testing.T) {
	s := New(10)
	// Degenerate cases have deterministic answers.
	if got := s.Hypergeometric(10, 10, 4); got != 4 {
		t.Fatalf("all-success population: got %d", got)
	}
	if got := s.Hypergeometric(10, 0, 4); got != 0 {
		t.Fatalf("no-success population: got %d", got)
	}
	if got := s.Hypergeometric(5, 3, 5); got != 3 {
		t.Fatalf("full sample: got %d, want 3", got)
	}
}

func TestHypergeometricMean(t *testing.T) {
	s := New(11)
	const n, succ, k, reps = 50, 20, 10, 50000
	var sum float64
	for i := 0; i < reps; i++ {
		v := s.Hypergeometric(n, succ, k)
		if v < 0 || v > k || v > succ {
			t.Fatalf("hypergeometric out of range: %d", v)
		}
		sum += float64(v)
	}
	want := float64(k) * float64(succ) / float64(n)
	if mean := sum / reps; math.Abs(mean-want) > 0.03*want {
		t.Fatalf("hypergeometric mean %.3f, want %.3f", mean, want)
	}
}

func TestHypergeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid parameters")
		}
	}()
	New(1).Hypergeometric(5, 6, 2)
}
