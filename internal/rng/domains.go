package rng

// Domain allocation registry.
//
// Every package that derives stream families from a root seed does so with
// Derive(seed, domain, coords...); the domain tag keeps the families of
// different subsystems disjoint even when they share a root seed. Tags are
// allocated once, here, so a new subsystem can pick a fresh range without
// grepping the tree. This list is the source of truth; the annotated table
// — owner package and coordinate meaning for every tag — lives in
// docs/DETERMINISM.md and MUST be updated together with this list:
//
//	0x01–0x02   core.Arranger / seeded Service rounds (per-node scatter,
//	            per-rendezvous match)
//	0x11–0x61   sim harness repetition jobs (figure1: 0x11–0x13, figure2:
//	            0x21, multirumor: 0x31, loads: 0x41, dynamic: 0x51,
//	            storage: 0x61)
//	0x71        sim async experiment inputs (heterogeneous Zipf profiles)
//	0x81        sim topology experiment jobs
//	0x82        sim consensus experiment jobs
//	0x91–0x94   live runtime (peer streams, net streams, churn hash, ring
//	            embedding)
//	0xA1–0xA9   run protocol seeds (rumor, multi, live, monger, storage,
//	            handshake, async, topology, consensus)
//	0xB1        async runtime firing streams (DomainAsyncFire)
//	0xC1        graph generators (DomainGraph)
//	0xD1        gossip consensus seed-placement geometry
//
// Most tags stay unexported inside their owning package (they are an
// implementation detail of that package's determinism story); the constants
// below are the ones shared across packages.
const (
	// DomainAsyncFire seeds the stream of one firing event: peer i's k-th
	// firing draws its inter-firing gap and its protocol randomness from a
	// stream seeded Derive(runtimeSeed, DomainAsyncFire, i, k). Deriving per
	// (peer, firing-index) — rather than per peer — is what makes the async
	// runtime bit-identical for every shard count: no shard ever needs
	// another shard's generator position to reproduce an event.
	DomainAsyncFire uint64 = 0xB1

	// DomainGraph seeds the topology generators of internal/graph: a
	// generator derives its stream Derive(seed, DomainGraph, tag, params...)
	// where tag identifies the generator family, so a graph is a pure
	// function of (seed, parameters) — bit-identical wherever it is built,
	// at every worker count (the generator goldens pin this).
	DomainGraph uint64 = 0xC1
)
