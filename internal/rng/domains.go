package rng

// Domain allocation registry.
//
// Every package that derives stream families from a root seed does so with
// Derive(seed, domain, coords...); the domain tag keeps the families of
// different subsystems disjoint even when they share a root seed. Tags are
// allocated once, here, so a new subsystem can pick a fresh range without
// grepping the tree:
//
//	0x01        core.Arranger (per-node scatter / per-rendezvous match)
//	0x11–0x61   sim harness repetition jobs (figure1, figure2, multirumor,
//	            loads, dynamic, storage)
//	0x71–0x72   sim async experiment inputs (heterogeneous profiles,
//	            embeddings)
//	0x91–0x94   live runtime (peer streams, net streams, churn hash, ring
//	            embedding)
//	0x81        sim topology experiment jobs
//	0xA1–0xA8   run protocol seeds (rumor, multi, live, monger, storage,
//	            handshake, async, topology)
//	0xB1        async runtime firing streams (DomainAsyncFire)
//	0xC1        graph generators (DomainGraph)
//
// Most tags stay unexported inside their owning package (they are an
// implementation detail of that package's determinism story); the constants
// below are the ones shared across packages.
const (
	// DomainAsyncFire seeds the stream of one firing event: peer i's k-th
	// firing draws its inter-firing gap and its protocol randomness from a
	// stream seeded Derive(runtimeSeed, DomainAsyncFire, i, k). Deriving per
	// (peer, firing-index) — rather than per peer — is what makes the async
	// runtime bit-identical for every shard count: no shard ever needs
	// another shard's generator position to reproduce an event.
	DomainAsyncFire uint64 = 0xB1

	// DomainGraph seeds the topology generators of internal/graph: a
	// generator derives its stream Derive(seed, DomainGraph, tag, params...)
	// where tag identifies the generator family, so a graph is a pure
	// function of (seed, parameters) — bit-identical wherever it is built,
	// at every worker count (the generator goldens pin this).
	DomainGraph uint64 = 0xC1
)
