package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleKDistinct(t *testing.T) {
	s := New(1)
	err := quick.Check(func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		s.src.Seed(seed)
		got := s.SampleK(n, k)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleKUniformOverSubsets(t *testing.T) {
	// Each element of [0,5) should appear in a 2-subset with probability
	// k/n = 2/5.
	s := New(2)
	const draws = 100000
	counts := make([]int, 5)
	for i := 0; i < draws; i++ {
		for _, v := range s.SampleK(5, 2) {
			counts[v]++
		}
	}
	want := 2.0 / 5 * draws
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.03*want {
			t.Errorf("element %d appeared %d times, want %.0f +/- 3%%", i, c, want)
		}
	}
}

func TestSampleKEdges(t *testing.T) {
	s := New(3)
	if got := s.SampleK(5, 0); len(got) != 0 {
		t.Fatalf("SampleK(5,0) returned %v", got)
	}
	got := s.SampleK(4, 4)
	if len(got) != 4 {
		t.Fatalf("SampleK(4,4) returned %d items", len(got))
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(1).SampleK(3, 4)
}

func TestReservoirKeepsAllWhenUnderfull(t *testing.T) {
	r := NewReservoir(New(4), 5)
	r.Offer(10)
	r.Offer(20)
	got := r.Sample()
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("underfull reservoir = %v", got)
	}
	if r.Seen() != 2 {
		t.Fatalf("Seen = %d", r.Seen())
	}
}

func TestReservoirUniform(t *testing.T) {
	// Size-1 reservoir over 4 items: each item kept with probability 1/4.
	s := New(5)
	counts := make([]int, 4)
	const draws = 100000
	r := NewReservoir(s, 1)
	for i := 0; i < draws; i++ {
		r.Reset()
		for item := 0; item < 4; item++ {
			r.Offer(item)
		}
		counts[r.Sample()[0]]++
	}
	want := float64(draws) / 4
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.04*want {
			t.Errorf("item %d kept %d times, want %.0f +/- 4%%", i, c, want)
		}
	}
}

func TestReservoirPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k <= 0")
		}
	}()
	NewReservoir(New(1), 0)
}

func TestRandomMatchingIsBijection(t *testing.T) {
	s := New(6)
	for q := 0; q <= 20; q++ {
		m := s.RandomMatching(q)
		if len(m) != q {
			t.Fatalf("matching size %d, want %d", len(m), q)
		}
		seen := make([]bool, q)
		for _, v := range m {
			if v < 0 || v >= q || seen[v] {
				t.Fatalf("invalid matching %v", m)
			}
			seen[v] = true
		}
	}
}

func TestRandomMatchingUniform(t *testing.T) {
	// For q=3 there are 6 matchings; all should be roughly equally likely,
	// which is the condition Lemma 3 of the paper relies on.
	s := New(7)
	counts := map[[3]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		m := s.RandomMatching(3)
		counts[[3]int{m[0], m[1], m[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d matchings, want 6", len(counts))
	}
	want := float64(draws) / 6
	for m, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Errorf("matching %v count %d, want %.0f +/- 6%%", m, c, want)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	s := New(8)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight outcome drawn %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.15 {
		t.Fatalf("weight ratio %.2f, want 3 +/- 0.15", ratio)
	}
}

func TestWeightedChoicePanicsOnZeroSum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero weight sum")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}
