package rng

// SampleK returns k distinct indices drawn uniformly without replacement
// from [0, n), in random order. It uses a partial Fisher–Yates shuffle,
// O(n) space but only O(k) random draws. Requires 0 <= k <= n.
//
// The dating service uses this to choose which q = min(s, r) requests of
// each kind a rendezvous node keeps (Algorithm 1, step "choose uniformly at
// random q requests of each type").
func (s *Stream) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK with k out of range")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k:k]
}

// Reservoir maintains a uniform sample of fixed size over a stream of items
// seen one at a time (Vitter's algorithm R). It is used by protocols that
// must pick fairly among requests arriving incrementally — for instance, the
// "fair PULL" baseline where a node satisfies exactly one of the requests it
// received this round.
type Reservoir struct {
	k    int
	seen int
	keep []int
	s    *Stream
}

// NewReservoir returns a reservoir keeping a uniform sample of size k.
func NewReservoir(s *Stream, k int) *Reservoir {
	if k <= 0 {
		panic("rng: NewReservoir with k <= 0")
	}
	return &Reservoir{k: k, s: s, keep: make([]int, 0, k)}
}

// Offer presents one item to the reservoir.
func (r *Reservoir) Offer(item int) {
	r.seen++
	if len(r.keep) < r.k {
		r.keep = append(r.keep, item)
		return
	}
	j := r.s.Intn(r.seen)
	if j < r.k {
		r.keep[j] = item
	}
}

// Sample returns the current sample. The returned slice aliases internal
// state and must not be modified; it holds min(k, items offered) elements.
func (r *Reservoir) Sample() []int { return r.keep }

// Seen reports how many items have been offered.
func (r *Reservoir) Seen() int { return r.seen }

// Reset clears the reservoir for reuse, keeping its capacity.
func (r *Reservoir) Reset() {
	r.seen = 0
	r.keep = r.keep[:0]
}

// RandomMatching fills match with a uniform random perfect matching between
// two equal-size sets {0..q-1}: match[i] = j pairs left element i with right
// element j. This is the rendezvous node's final step in Algorithm 1
// ("produce a random perfect matching of the chosen requests").
//
// A uniform random bijection is exactly a uniform random permutation.
func (s *Stream) RandomMatching(q int) []int {
	return s.Perm(q)
}

// WeightedChoice draws an index proportionally to the given non-negative
// weights by linear scan. It is O(n) per draw; use Alias for repeated
// sampling from the same weights.
func (s *Stream) WeightedChoice(weights []float64) int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		panic("rng: WeightedChoice with non-positive weight sum")
	}
	x := s.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
