package rng

import (
	"fmt"
	"math"
)

// Alias is a Walker/Vose alias table for O(1) sampling from an arbitrary
// discrete distribution over [0, n). It is the workhorse behind every
// non-uniform node-selection distribution in the dating service (DHT interval
// weights, Zipf popularity, two-point masses).
//
// The table is immutable after construction and safe for concurrent sampling
// as long as each goroutine uses its own Stream.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from non-negative weights. The weights need
// not sum to one; they are normalized internally. At least one weight must be
// positive.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: alias table needs at least one weight")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: alias weight %d is invalid (%v)", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("rng: alias weights sum to zero")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Vose's algorithm: partition scaled weights into small (<1) and large
	// (>=1) work lists, then pair each small entry with a large donor.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[l] = scaled[l]
		a.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Remaining entries have probability 1 up to floating-point error.
	for _, g := range large {
		a.prob[g] = 1
		a.alias[g] = g
	}
	for _, l := range small {
		a.prob[l] = 1
		a.alias[l] = l
	}
	return a, nil
}

// MustAlias is NewAlias but panics on invalid weights. It is intended for
// statically known weight vectors in tests and examples.
func MustAlias(weights []float64) *Alias {
	a, err := NewAlias(weights)
	if err != nil {
		panic(err)
	}
	return a
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one outcome in [0, N()) with the configured probabilities.
func (a *Alias) Sample(s *Stream) int {
	i := s.Intn(len(a.prob))
	if s.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Zipf samples from a Zipf distribution over ranks {1, ..., n} with exponent
// exponent > 0: P(k) proportional to 1/k^exponent. Construction is O(n) via an
// alias table, sampling is O(1).
type Zipf struct {
	table *Alias
}

// NewZipf builds a Zipf sampler over n ranks with the given exponent.
func NewZipf(n int, exponent float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rng: Zipf needs n > 0, got %d", n)
	}
	if exponent <= 0 || math.IsNaN(exponent) {
		return nil, fmt.Errorf("rng: Zipf needs exponent > 0, got %v", exponent)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -exponent)
	}
	t, err := NewAlias(w)
	if err != nil {
		return nil, err
	}
	return &Zipf{table: t}, nil
}

// Sample returns a rank in {1, ..., n}.
func (z *Zipf) Sample(s *Stream) int { return z.table.Sample(s) + 1 }

// Binomial samples from Binomial(n, p). For the modest n used per call in
// the simulator an inversion/summation hybrid is fast enough: inversion by
// geometric skips when n*p is small, otherwise a normal approximation with
// an exact correction loop is avoided in favor of simple BTRS-free summation
// over blocks. The implementation is exact (no approximation error).
func (s *Stream) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial with n < 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Symmetry: keep p <= 1/2 for the skip method's efficiency.
	if p > 0.5 {
		return n - s.Binomial(n, 1-p)
	}
	if float64(n)*p < 32 {
		// First-waiting-time (geometric skip) method: expected work O(np).
		lnq := math.Log1p(-p)
		count := -1
		trials := 0
		for {
			skip := int(math.Floor(math.Log(s.Float64Open()) / lnq))
			trials += skip + 1
			if trials > n {
				return count + 1
			}
			count++
		}
	}
	// For large np, draw by direct Bernoulli summation in word-sized blocks.
	// This is O(n) but only reached for large n*p where callers are rare.
	count := 0
	for i := 0; i < n; i++ {
		if s.Float64() < p {
			count++
		}
	}
	return count
}

// Poisson samples from Poisson(lambda) using Knuth's product method for
// small lambda and decomposition for large lambda (splitting lambda in
// halves keeps the product method's underflow at bay while remaining exact).
func (s *Stream) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Poisson(a+b) = Poisson(a) + Poisson(b) for independent draws.
		half := lambda / 2
		return s.Poisson(half) + s.Poisson(lambda-half)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64Open()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}).
func (s *Stream) Geometric(p float64) int {
	if p <= 0 {
		panic("rng: Geometric with p <= 0")
	}
	if p >= 1 {
		return 0
	}
	return int(math.Floor(math.Log(s.Float64Open()) / math.Log1p(-p)))
}

// Hypergeometric samples the number of "successes" in a sample of size k
// drawn without replacement from a population of size n containing succ
// successes. The dating service's per-node date counts follow this law
// conditionally on the total number of dates (paper, after Lemma 3), so the
// sampler is used by tests validating that structure. Implementation is exact
// sequential sampling, O(k).
func (s *Stream) Hypergeometric(n, succ, k int) int {
	if k < 0 || succ < 0 || n < 0 || succ > n || k > n {
		panic(fmt.Sprintf("rng: invalid Hypergeometric(n=%d, succ=%d, k=%d)", n, succ, k))
	}
	got := 0
	for i := 0; i < k; i++ {
		// Probability the next draw is a success given the remaining pool.
		if s.Float64()*float64(n-i) < float64(succ-got) {
			got++
		}
	}
	return got
}
