package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width binned counter over [Lo, Hi). Values below Lo
// land in an underflow bin, values at or above Hi in an overflow bin.
type Histogram struct {
	Lo, Hi    float64
	bins      []int
	underflow int
	overflow  int
	total     int
}

// NewHistogram creates a histogram with the given number of equal-width bins
// over [lo, hi). bins must be positive and lo < hi.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs bins > 0, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram needs lo < hi, got [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.bins) { // guard the hi-adjacent float edge
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Count returns the number of observations in bin i.
func (h *Histogram) Count(i int) int { return h.bins[i] }

// Bins returns the number of regular bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Total returns the number of observations including under/overflow.
func (h *Histogram) Total() int { return h.total }

// Underflow returns the count of observations below Lo.
func (h *Histogram) Underflow() int { return h.underflow }

// Overflow returns the count of observations at or above Hi.
func (h *Histogram) Overflow() int { return h.overflow }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.bins))
	return h.Lo + (float64(i)+0.5)*width
}

// Render draws a simple ASCII bar chart, one line per bin, scaled so the
// fullest bin spans width characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	peak := 1
	for _, c := range h.bins {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.bins {
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(peak)*float64(width))))
		fmt.Fprintf(&b, "%10.3f | %-*s %d\n", h.BinCenter(i), width, bar, c)
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "%10s | %d\n", "<lo", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "%10s | %d\n", ">=hi", h.overflow)
	}
	return b.String()
}

// Bootstrap computes a percentile bootstrap confidence interval for the mean
// of xs at the given confidence level (e.g. 0.95), using resamples
// iterations driven by the provided uniform-int source. The source rand must
// return a uniform value in [0, n) when called with n.
func Bootstrap(xs []float64, confidence float64, resamples int, randIntn func(int) int) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: bootstrap of empty sample")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: bootstrap confidence must be in (0,1), got %v", confidence)
	}
	if resamples < 10 {
		return 0, 0, fmt.Errorf("stats: bootstrap needs >= 10 resamples, got %d", resamples)
	}
	means := make([]float64, resamples)
	for r := range means {
		var sum float64
		for range xs {
			sum += xs[randIntn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha), nil
}
