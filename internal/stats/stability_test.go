package stats

import (
	"math"
	"testing"
)

// Numeric-stability tests: Welford must survive the catastrophic
// cancellation that kills the naive sum-of-squares formula, because the
// experiment harness accumulates hundreds of thousands of near-identical
// fractions.

func TestWelfordStableUnderLargeOffset(t *testing.T) {
	// Data with mean 1e9 and tiny variance: the naive formula loses all
	// precision; Welford must not.
	var a Accumulator
	const offset = 1e9
	vals := []float64{offset + 0.1, offset + 0.2, offset + 0.3, offset + 0.4}
	for _, v := range vals {
		a.Add(v)
	}
	if math.Abs(a.Mean()-offset-0.25) > 1e-6 {
		t.Fatalf("mean = %v", a.Mean())
	}
	// Sample variance of {.1,.2,.3,.4} is 1/60 ≈ 0.016667.
	if math.Abs(a.Var()-1.0/60) > 1e-6 {
		t.Fatalf("variance %v under offset, want %v", a.Var(), 1.0/60)
	}
}

func TestWelfordManySmallIncrements(t *testing.T) {
	// 10^6 alternating observations: mean exactly 0.5, variance 0.25.
	var a Accumulator
	for i := 0; i < 1000000; i++ {
		a.Add(float64(i % 2))
	}
	if math.Abs(a.Mean()-0.5) > 1e-12 {
		t.Fatalf("mean drifted: %v", a.Mean())
	}
	if math.Abs(a.Var()-0.25) > 1e-6 {
		t.Fatalf("variance drifted: %v", a.Var())
	}
}

func TestMergeStableUnderOffset(t *testing.T) {
	var a, b, whole Accumulator
	const offset = 1e12
	for i := 0; i < 100; i++ {
		v := offset + float64(i)
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if math.Abs(a.Mean()-whole.Mean()) > 1e-3 {
		t.Fatalf("merged mean %v vs whole %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Var()-whole.Var())/whole.Var() > 1e-9 {
		t.Fatalf("merged var %v vs whole %v", a.Var(), whole.Var())
	}
}

func TestQuantileAgainstExhaustive(t *testing.T) {
	// Linear-interpolation quantiles cross-checked against a brute-force
	// re-implementation on random data.
	sorted := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	for q := 0.0; q <= 1.0; q += 0.05 {
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		want := sorted[lo]*(1-frac) + sorted[hi]*frac
		if got := Quantile(sorted, q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("q=%.2f: got %v want %v", q, got, want)
		}
	}
}

func TestFitLineSingularityGuards(t *testing.T) {
	// Nearly-constant x must not blow up to absurd slopes silently: with
	// exactly constant x we error; with a tiny but nonzero spread the math
	// stays finite.
	fit, err := FitLine([]float64{1, 1 + 1e-12}, []float64{0, 1})
	if err != nil {
		t.Fatalf("tiny-spread fit rejected: %v", err)
	}
	if math.IsNaN(fit.Slope) || math.IsInf(fit.Slope, 0) {
		t.Fatalf("non-finite slope %v", fit.Slope)
	}
	if math.IsNaN(fit.R2) {
		t.Fatalf("NaN R2")
	}
}

func TestSummaryQuantilesOrdered(t *testing.T) {
	xs := []float64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	s := Summarize(xs)
	if !(s.Min <= s.P10 && s.P10 <= s.Median && s.Median <= s.P90 && s.P90 <= s.Max) {
		t.Fatalf("quantiles out of order: %+v", s)
	}
}

func TestHistogramSingleBin(t *testing.T) {
	h, err := NewHistogram(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.5)
	h.Add(0.999999)
	if h.Count(0) != 2 {
		t.Fatalf("single bin holds %d", h.Count(0))
	}
	if h.Bins() != 1 {
		t.Fatalf("bins = %d", h.Bins())
	}
}

func TestHistogramEdgeJustBelowHi(t *testing.T) {
	// Float arithmetic can push (x-lo)/(hi-lo)*bins to exactly bins; the
	// guard must clamp into the last bin rather than panic.
	h, _ := NewHistogram(0, 0.3, 3)
	h.Add(math.Nextafter(0.3, 0)) // largest float < 0.3
	if h.Count(2) != 1 {
		t.Fatalf("edge value landed in %v", []int{h.Count(0), h.Count(1), h.Count(2)})
	}
	if h.Overflow() != 0 {
		t.Fatal("edge value counted as overflow")
	}
}
