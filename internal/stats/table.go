package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned results table, the output format of every
// figure-reproduction harness in this repository. It renders either as
// aligned plain text (for terminals and bench logs) or as CSV.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of already-formatted cells. Rows shorter than the
// header are padded with empty cells; longer rows are an error at render
// time, so they are truncated here to keep rendering total.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf formats each value with %v and appends the row.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns a copy of row i.
func (t *Table) Row(i int) []string {
	return append([]string(nil), t.rows[i]...)
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV form (quoting cells containing
// commas, quotes, or newlines).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// MeanStd formats an accumulator as "mean ± std" with the given number of
// decimal places, the display convention of the paper's figures.
func MeanStd(a *Accumulator, decimals int) string {
	return fmt.Sprintf("%.*f ± %.*f", decimals, a.Mean(), decimals, a.Std())
}
