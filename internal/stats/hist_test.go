package stats

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("accepted zero bins")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("accepted lo == hi")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("accepted lo > hi")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Underflow() != 1 {
		t.Fatalf("underflow = %d", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	if h.Count(0) != 2 { // 0 and 1.9
		t.Fatalf("bin 0 = %d", h.Count(0))
	}
	if h.Count(1) != 1 { // 2
		t.Fatalf("bin 1 = %d", h.Count(1))
	}
	if h.Count(2) != 1 { // 5
		t.Fatalf("bin 2 = %d", h.Count(2))
	}
	if h.Count(4) != 1 { // 9.99
		t.Fatalf("bin 4 = %d", h.Count(4))
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if c := h.BinCenter(0); c != 1 {
		t.Fatalf("center 0 = %v", c)
	}
	if c := h.BinCenter(4); c != 9 {
		t.Fatalf("center 4 = %v", c)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(0.6)
	h.Add(1.5)
	h.Add(-1)
	h.Add(5)
	out := h.Render(10)
	if !strings.Contains(out, "##########") {
		t.Fatalf("expected a full bar in:\n%s", out)
	}
	if !strings.Contains(out, "<lo") || !strings.Contains(out, ">=hi") {
		t.Fatalf("expected under/overflow lines in:\n%s", out)
	}
}

func TestBootstrapCoversTrueMean(t *testing.T) {
	s := rng.New(42)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = s.NormFloat64() + 10
	}
	lo, hi, err := Bootstrap(xs, 0.95, 500, s.Intn)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("95%% CI [%v, %v] misses true mean 10", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Fatalf("CI suspiciously wide: [%v, %v]", lo, hi)
	}
}

func TestBootstrapValidation(t *testing.T) {
	s := rng.New(1)
	if _, _, err := Bootstrap(nil, 0.95, 100, s.Intn); err == nil {
		t.Error("accepted empty sample")
	}
	if _, _, err := Bootstrap([]float64{1}, 1.5, 100, s.Intn); err == nil {
		t.Error("accepted bad confidence")
	}
	if _, _, err := Bootstrap([]float64{1}, 0.9, 5, s.Intn); err == nil {
		t.Error("accepted too few resamples")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "n", "value")
	tb.AddRow("10", "0.47")
	tb.AddRowf(100, 0.4812)
	out := tb.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "0.4812") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if row := tb.Row(0); row[0] != "10" || row[1] != "0.47" {
		t.Fatalf("Row(0) = %v", row)
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")            // short row padded
	tb.AddRow("x", "y", "extra") // long row truncated
	if row := tb.Row(0); row[1] != "" {
		t.Fatalf("short row not padded: %v", row)
	}
	if row := tb.Row(1); len(row) != 2 {
		t.Fatalf("long row not truncated: %v", row)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow(`plain`, `has,comma`)
	tb.AddRow(`has"quote`, "has\nnewline")
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) {
		t.Fatalf("comma not quoted:\n%s", csv)
	}
	if !strings.Contains(csv, `"has""quote"`) {
		t.Fatalf("quote not escaped:\n%s", csv)
	}
}

func TestMeanStdFormat(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(2)
	a.Add(3)
	if got := MeanStd(&a, 2); got != "2.00 ± 1.00" {
		t.Fatalf("MeanStd = %q", got)
	}
}
