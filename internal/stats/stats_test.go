package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEq(a.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", a.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance is
	// 32/7.
	if !almostEq(a.Var(), 32.0/7, 1e-12) {
		t.Fatalf("var = %v", a.Var())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.Std() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Var() != 0 {
		t.Fatalf("single-observation variance = %v", a.Var())
	}
	if a.Mean() != 3.5 || a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatal("single observation stats wrong")
	}
}

func TestAccumulatorMatchesNaive(t *testing.T) {
	err := quick.Check(func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, r := range raw {
			a.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, r := range raw {
			d := float64(r) - mean
			ss += d * d
		}
		wantVar := 0.0
		if len(raw) > 1 {
			wantVar = ss / float64(len(raw)-1)
		}
		return almostEq(a.Mean(), mean, 1e-9) && almostEq(a.Var(), wantVar, 1e-7)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	err := quick.Check(func(xs, ys []int8) bool {
		var all, a, b Accumulator
		for _, x := range xs {
			all.Add(float64(x))
			a.Add(float64(x))
		}
		for _, y := range ys {
			all.Add(float64(y))
			b.Add(float64(y))
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return almostEq(a.Mean(), all.Mean(), 1e-9) && almostEq(a.Var(), all.Var(), 1e-6)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merge with empty changed state")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatal("merge into empty failed")
	}
}

func TestAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(4, 3)
	for i := 0; i < 3; i++ {
		b.Add(4)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Fatal("AddN differs from repeated Add")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{9, 1, 5, 3, 7})
	if s.N != 5 || s.Min != 1 || s.Max != 9 || s.Median != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEq(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {-0.5, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestFitLineExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 3, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLineNoise(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5}
	y := []float64{1.1, 2.9, 5.2, 6.8, 9.1, 10.9} // approx y = 1 + 2x
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 0.1 {
		t.Fatalf("slope %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); err == nil {
		t.Error("accepted single point")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := FitLine([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Error("accepted constant x")
	}
}

func TestFitLineConstantY(t *testing.T) {
	fit, err := FitLine([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Fatalf("constant y fit = %+v", fit)
	}
}

func TestFitLogN(t *testing.T) {
	ns := []int{2, 4, 8, 16}
	y := []float64{3, 6, 9, 12} // 3 * log2(n)
	fit, err := FitLogN(ns, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 3, 1e-9) || !almostEq(fit.Intercept, 0, 1e-9) {
		t.Fatalf("fit = %+v", fit)
	}
	if _, err := FitLogN([]int{0, 2}, []float64{1, 2}); err == nil {
		t.Error("accepted non-positive n")
	}
}
