// Package stats provides the statistical machinery used to reproduce the
// paper's evaluation: numerically stable accumulators for means and standard
// deviations (Figures 1 and 2 report avg ± stddev over 10^3–10^4 repetitions),
// summaries with quantiles, histograms, least-squares fits for validating the
// O(log n) scaling claims, bootstrap confidence intervals, and plain-text /
// CSV table rendering for the benchmark harness output.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running mean and variance with Welford's algorithm.
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN folds an observation occurring weight times. weight must be positive.
func (a *Accumulator) AddN(x float64, weight int) {
	for i := 0; i < weight; i++ {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 with no observations.
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (n-1 denominator), or 0 when
// fewer than two observations have been added.
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// Merge combines another accumulator into this one (Chan et al. parallel
// variance merge), so per-goroutine accumulators can be reduced.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	delta := b.mean - a.mean
	total := a.n + b.n
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(total)
	a.mean += delta * float64(b.n) / float64(total)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = total
}

// String renders "mean ± std" with three significant decimals.
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.3f ± %.3f", a.Mean(), a.Std())
}

// Summary captures the distribution of a finished sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P10    float64
	P90    float64
}

// Summarize computes a Summary over the given observations. It copies and
// sorts the data; the input is left unmodified.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Mean = acc.Mean()
	s.Std = acc.Std()
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P10 = Quantile(sorted, 0.10)
	s.P90 = Quantile(sorted, 0.90)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted data using linear
// interpolation between closest ranks. The input must be sorted ascending
// and non-empty.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty data")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit is the least-squares line y = Intercept + Slope*x together with
// the coefficient of determination R2. Fitting rounds-to-spread against
// log(n) and checking R2 ~ 1 is how the harness validates the paper's
// O(log n) round-complexity claims.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine computes the ordinary least squares fit of y on x. The slices must
// have equal length >= 2 and x must not be constant.
func FitLine(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: FitLine length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLine needs at least 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLine with constant x")
	}
	slope := sxy / sxx
	fit := LinearFit{
		Slope:     slope,
		Intercept: my - slope*mx,
	}
	if syy == 0 {
		fit.R2 = 1 // y constant and perfectly predicted by a flat line
	} else {
		fit.R2 = sxy * sxy / (sxx * syy)
	}
	return fit, nil
}

// FitLogN fits y against log2(n) for positive n values; convenience wrapper
// for scaling checks of the form rounds = a + b*log2(n).
func FitLogN(ns []int, y []float64) (LinearFit, error) {
	x := make([]float64, len(ns))
	for i, n := range ns {
		if n <= 0 {
			return LinearFit{}, fmt.Errorf("stats: FitLogN with non-positive n %d", n)
		}
		x[i] = math.Log2(float64(n))
	}
	return FitLine(x, y)
}
