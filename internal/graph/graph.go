// Package graph is the topology subsystem: compressed-sparse-row adjacency
// storage plus the deterministic generators and neighbor samplers the
// graph-constrained spreading protocols run on.
//
// Every protocol of the repository used to assume any-to-any rendezvous —
// the dating service addresses a partner drawn over all n peers. On a
// structured population contact is constrained to graph neighbors, which
// changes spreading dynamics qualitatively (Moreno, Nekovee & Pacheco,
// "Dynamics of Rumor Spreading in Complex Networks"). This package supplies
// the structure: a CSR holds the adjacency of n peers as two flat []int32
// arrays — the same flat-array style as the round engine — so a peer's
// neighborhood is one contiguous slice, a million-node power-law graph is a
// few dozen megabytes, and sampling a contact is one bounded draw over a
// row slice.
//
// # Determinism
//
// Generators are pure functions of their parameters and a root seed: each
// derives its stream with rng.Derive(seed, rng.DomainGraph, tag, params...)
// and draws in one fixed order, so a graph is bit-identical wherever it is
// built — worker counts, shard counts and call sites are invisible. The
// generator golden tests pin CSR digests (Digest) at two sizes each.
package graph

import (
	"fmt"
)

// CSR is an undirected graph in compressed-sparse-row form: the neighbors
// of node i are Adj[Off[i]:Off[i+1]], sorted ascending. Both directions of
// every edge are stored, so len(Adj) is twice the edge count. The zero
// value is the empty graph; construct with a generator or FromEdges.
type CSR struct {
	Off []int32 // len n+1, ascending; Off[0] == 0
	Adj []int32 // concatenated neighbor rows
}

// N returns the node count.
func (g *CSR) N() int {
	if g == nil || len(g.Off) == 0 {
		return 0
	}
	return len(g.Off) - 1
}

// Edges returns the undirected edge count.
func (g *CSR) Edges() int {
	if g == nil {
		return 0
	}
	return len(g.Adj) / 2
}

// Degree returns node i's neighbor count.
func (g *CSR) Degree(i int) int { return int(g.Off[i+1] - g.Off[i]) }

// Neighbors returns node i's neighbor row. The slice aliases the CSR and
// must not be modified.
func (g *CSR) Neighbors(i int) []int32 { return g.Adj[g.Off[i]:g.Off[i+1]] }

// Hub returns the lowest-id node of maximum degree — the canonical
// hub-start seed of the spreading experiments — or -1 for an empty graph.
func (g *CSR) Hub() int {
	hub, best := -1, -1
	for i := 0; i < g.N(); i++ {
		if d := g.Degree(i); d > best {
			hub, best = i, d
		}
	}
	return hub
}

// Validate checks structural invariants: monotone offsets covering Adj,
// neighbor ids in range, rows sorted with no self-loops or duplicates, and
// symmetric adjacency (j in row i iff i in row j). Generators always emit
// valid graphs; Validate guards hand-built ones.
func (g *CSR) Validate() error {
	n := g.N()
	if n == 0 {
		if g != nil && len(g.Adj) != 0 {
			return fmt.Errorf("graph: empty offsets with %d adjacency entries", len(g.Adj))
		}
		return nil
	}
	if g.Off[0] != 0 || int(g.Off[n]) != len(g.Adj) {
		return fmt.Errorf("graph: offsets span [%d,%d], adjacency has %d entries", g.Off[0], g.Off[n], len(g.Adj))
	}
	deg := make(map[[2]int32]bool, len(g.Adj))
	for i := 0; i < n; i++ {
		if g.Off[i] > g.Off[i+1] {
			return fmt.Errorf("graph: offsets decrease at node %d", i)
		}
		row := g.Neighbors(i)
		for k, j := range row {
			if j < 0 || int(j) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", i, j)
			}
			if int(j) == i {
				return fmt.Errorf("graph: node %d has a self-loop", i)
			}
			if k > 0 && row[k-1] >= j {
				return fmt.Errorf("graph: node %d row unsorted or duplicated at %d", i, j)
			}
			deg[[2]int32{int32(i), j}] = true
		}
	}
	for e := range deg {
		if !deg[[2]int32{e[1], e[0]}] {
			return fmt.Errorf("graph: edge %d-%d present in one direction only", e[0], e[1])
		}
	}
	return nil
}

// Digest folds the CSR — node count, offsets and adjacency — into an
// FNV-1a 64 hex string. Two graphs agree on it iff they are identical, so
// the generator goldens and the cross-shard identity checks compare graphs
// by one line.
func (g *CSR) Digest() string {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= prime
		}
	}
	mix(uint64(g.N()))
	for _, v := range g.Off {
		mix(uint64(uint32(v)))
	}
	for _, v := range g.Adj {
		mix(uint64(uint32(v)))
	}
	return fmt.Sprintf("%016x", h)
}

// FromEdges builds a CSR from an undirected edge list: each (a, b) pair
// becomes both a→b and b→a, rows come out sorted, and — with dedupe —
// duplicate edges and self-loops are discarded (the configuration model
// produces both). The build is a counting sort over the edge list, so it
// is O(n + edges) and allocation-exact.
func FromEdges(n int, edges [][2]int32, dedupe bool) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	deg := make([]int32, n+1)
	for _, e := range edges {
		if e[0] < 0 || int(e[0]) >= n || e[1] < 0 || int(e[1]) >= n {
			return nil, fmt.Errorf("graph: edge %d-%d out of range [0,%d)", e[0], e[1], n)
		}
		if e[0] == e[1] {
			if dedupe {
				continue
			}
			return nil, fmt.Errorf("graph: self-loop at node %d", e[0])
		}
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	g := &CSR{Off: deg, Adj: make([]int32, deg[n])}
	cursor := make([]int32, n)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		a, b := e[0], e[1]
		g.Adj[g.Off[a]+cursor[a]] = b
		cursor[a]++
		g.Adj[g.Off[b]+cursor[b]] = a
		cursor[b]++
	}
	sortRows(g)
	if dedupe {
		dedupeRows(g)
	} else {
		for i := 0; i < n; i++ {
			row := g.Neighbors(i)
			for k := 1; k < len(row); k++ {
				if row[k-1] == row[k] {
					return nil, fmt.Errorf("graph: duplicate edge %d-%d", i, row[k])
				}
			}
		}
	}
	return g, nil
}

// sortRows insertion-sorts each neighbor row in place. Rows are short for
// every generator (mean degree a small constant; even BA hubs are O(√n)),
// so insertion sort beats a comparison sort's overhead and allocates
// nothing.
func sortRows(g *CSR) {
	for i := 0; i < g.N(); i++ {
		row := g.Adj[g.Off[i]:g.Off[i+1]]
		for k := 1; k < len(row); k++ {
			v := row[k]
			j := k - 1
			for j >= 0 && row[j] > v {
				row[j+1] = row[j]
				j--
			}
			row[j+1] = v
		}
	}
}

// dedupeRows removes duplicate neighbors from the (sorted) rows, compacting
// Adj and rewriting Off in one pass.
func dedupeRows(g *CSR) {
	n := g.N()
	w := int32(0)
	newOff := make([]int32, n+1)
	for i := 0; i < n; i++ {
		newOff[i] = w
		row := g.Neighbors(i)
		for k, v := range row {
			if k > 0 && row[k-1] == v {
				continue
			}
			g.Adj[w] = v
			w++
		}
	}
	newOff[n] = w
	g.Off = newOff
	g.Adj = g.Adj[:w:w]
}
