package graph

// Neighbor samplers: the Pick counterpart of core.Selector, restricted to a
// CSR row. Where the any-to-any protocols draw a partner over all n peers,
// a graph-constrained peer draws over its neighbor slice — uniformly, or
// proportional to a per-node weight vector (a bandwidth profile, making
// high-capacity neighbors proportionally more likely contacts).

import (
	"fmt"

	"repro/internal/rng"
)

// Sampler picks a contact among a node's neighbors. Implementations are
// immutable after construction and safe for concurrent Pick calls with
// per-caller streams, matching the core.Selector contract.
type Sampler interface {
	// Pick returns a neighbor of node i drawn from the sampler's
	// distribution over i's row, or -1 when i has no neighbors.
	Pick(i int, s *rng.Stream) int
	// N returns the node count of the underlying graph.
	N() int
}

// UniformNeighbors samples neighbors uniformly — the classic contact model
// of the rumor-spreading-on-networks literature.
type UniformNeighbors struct{ g *CSR }

// NewUniformNeighbors returns the uniform sampler over g's rows.
func NewUniformNeighbors(g *CSR) (UniformNeighbors, error) {
	if g.N() == 0 {
		return UniformNeighbors{}, fmt.Errorf("graph: sampler needs a non-empty graph")
	}
	return UniformNeighbors{g: g}, nil
}

// Pick implements Sampler.
func (u UniformNeighbors) Pick(i int, s *rng.Stream) int {
	row := u.g.Neighbors(i)
	if len(row) == 0 {
		return -1
	}
	return int(row[s.Intn(len(row))])
}

// N implements Sampler.
func (u UniformNeighbors) N() int { return u.g.N() }

// WeightedNeighbors samples neighbor j of node i with probability
// proportional to weight[j] — the graph-constrained analogue of the
// profile-weighted selection distributions: one global per-node weight
// vector, renormalized over each row. Row cumulative sums are precomputed,
// so Pick is one uniform draw plus a binary search over the row.
type WeightedNeighbors struct {
	g *CSR
	// cum[Off[i]:Off[i+1]] holds the running weight totals of row i;
	// cum[Off[i+1]-1] is the row total.
	cum []float64
}

// NewWeightedNeighbors builds the weighted sampler. weight must have one
// non-negative entry per node; rows whose weights sum to zero fall back to
// uniform over the row (every neighbor weightless, none preferable).
func NewWeightedNeighbors(g *CSR, weight []float64) (*WeightedNeighbors, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("graph: sampler needs a non-empty graph")
	}
	if len(weight) != n {
		return nil, fmt.Errorf("graph: weight vector has %d entries, graph has %d nodes", len(weight), n)
	}
	for i, w := range weight {
		if w < 0 {
			return nil, fmt.Errorf("graph: negative weight %v at node %d", w, i)
		}
	}
	cum := make([]float64, len(g.Adj))
	for i := 0; i < n; i++ {
		acc := 0.0
		for k := g.Off[i]; k < g.Off[i+1]; k++ {
			acc += weight[g.Adj[k]]
			cum[k] = acc
		}
	}
	return &WeightedNeighbors{g: g, cum: cum}, nil
}

// Pick implements Sampler.
func (w *WeightedNeighbors) Pick(i int, s *rng.Stream) int {
	lo, hi := int(w.g.Off[i]), int(w.g.Off[i+1])
	if lo == hi {
		return -1
	}
	total := w.cum[hi-1]
	if total <= 0 {
		return int(w.g.Adj[lo+s.Intn(hi-lo)])
	}
	x := s.Float64() * total
	// Binary search for the first cumulative weight exceeding x.
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if w.cum[mid-1] > x {
			hi = mid
		} else {
			lo = mid
		}
	}
	return int(w.g.Adj[lo])
}

// N implements Sampler.
func (w *WeightedNeighbors) N() int { return w.g.N() }
