package graph

import (
	"testing"

	"repro/internal/rng"
)

// TestGraphGeneratorGoldens pins the FNV digest of every generator at two
// sizes. Generators are pure functions of (seed, parameters) — the
// repository's determinism story for topology — so any digest drift here
// means spreading results on generated graphs silently changed too.
func TestGraphGeneratorGoldens(t *testing.T) {
	cases := []struct {
		name string
		gen  func() (*CSR, error)
		want string
	}{
		{"ring-64-2", func() (*CSR, error) { return RingLattice(64, 2) }, ""},
		{"ring-1000-3", func() (*CSR, error) { return RingLattice(1000, 3) }, ""},
		{"complete-16", func() (*CSR, error) { return Complete(16) }, ""},
		{"complete-128", func() (*CSR, error) { return Complete(128) }, ""},
		{"er-100-0.1", func() (*CSR, error) { return ErdosRenyi(100, 0.1, 42) }, ""},
		{"er-2000-0.004", func() (*CSR, error) { return ErdosRenyi(2000, 0.004, 42) }, ""},
		{"ba-100-2", func() (*CSR, error) { return BarabasiAlbert(100, 2, 42) }, ""},
		{"ba-2000-3", func() (*CSR, error) { return BarabasiAlbert(2000, 3, 42) }, ""},
		{"pl-100-2.5", func() (*CSR, error) { return PowerLaw(100, 2.5, 2, 20, 42) }, ""},
		{"pl-2000-2.5", func() (*CSR, error) { return PowerLaw(2000, 2.5, 2, 80, 42) }, ""},
	}
	golden := map[string]string{
		"ring-64-2":     "3070bf4de3f691ca",
		"ring-1000-3":   "33758527354ab7f1",
		"complete-16":   "519e2510e9ea6275",
		"complete-128":  "b88ba0e1877620e5",
		"er-100-0.1":    "f2297298501115c8",
		"er-2000-0.004": "f2ef4d9a747f08e2",
		"ba-100-2":      "70f55a668a9a2089",
		"ba-2000-3":     "23ecc8bba5d25efe",
		"pl-100-2.5":    "e746a6ca450a44b5",
		"pl-2000-2.5":   "a910d9d78811dba3",
	}
	for _, c := range cases {
		g, err := c.gen()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid CSR: %v", c.name, err)
		}
		got := g.Digest()
		if want := golden[c.name]; got != want {
			t.Errorf("%s: digest %s, want %s", c.name, got, want)
		}
		// Re-generating must reproduce the graph bit for bit.
		g2, err := c.gen()
		if err != nil {
			t.Fatalf("%s: regenerate: %v", c.name, err)
		}
		if g2.Digest() != got {
			t.Errorf("%s: regeneration drifted: %s vs %s", c.name, g2.Digest(), got)
		}
	}
}

func TestGraphSeedsDisjoint(t *testing.T) {
	a, err := BarabasiAlbert(500, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BarabasiAlbert(500, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == b.Digest() {
		t.Fatal("different seeds produced identical BA graphs")
	}
}

func TestGraphShapes(t *testing.T) {
	g, err := RingLattice(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if g.Degree(i) != 4 {
			t.Fatalf("ring node %d degree %d, want 4", i, g.Degree(i))
		}
	}
	c, err := Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Edges() != 21 {
		t.Fatalf("K7 has %d edges, want 21", c.Edges())
	}
	ba, err := BarabasiAlbert(300, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ba.Edges(), 3*(300-3); got != want {
		t.Fatalf("BA(300,3) has %d edges, want %d", got, want)
	}
	if hub := ba.Hub(); ba.Degree(hub) < 10 {
		t.Fatalf("BA hub degree %d suspiciously small", ba.Degree(hub))
	}
	pl, err := PowerLaw(400, 2.5, 2, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pl.N(); i++ {
		if pl.Degree(i) > 30 {
			t.Fatalf("power-law node %d degree %d exceeds cap", i, pl.Degree(i))
		}
	}
}

func TestGraphGeneratorErrors(t *testing.T) {
	if _, err := RingLattice(4, 2); err == nil {
		t.Error("RingLattice(4,2) should reject 2k >= n")
	}
	if _, err := ErdosRenyi(10, 1.5, 0); err == nil {
		t.Error("ErdosRenyi should reject p > 1")
	}
	if _, err := BarabasiAlbert(5, 5, 0); err == nil {
		t.Error("BarabasiAlbert should reject m >= n")
	}
	if _, err := PowerLaw(10, 2.0, 2, 10, 0); err == nil {
		t.Error("PowerLaw should reject maxDeg >= n")
	}
	if _, err := FromEdges(3, [][2]int32{{0, 3}}, false); err == nil {
		t.Error("FromEdges should reject out-of-range endpoints")
	}
	if _, err := FromEdges(3, [][2]int32{{1, 1}}, false); err == nil {
		t.Error("FromEdges should reject self-loops without dedupe")
	}
	if _, err := FromEdges(3, [][2]int32{{0, 1}, {1, 0}}, false); err == nil {
		t.Error("FromEdges should reject duplicate edges without dedupe")
	}
}

func TestFromEdgesDedupe(t *testing.T) {
	g, err := FromEdges(4, [][2]int32{{0, 1}, {1, 0}, {2, 2}, {1, 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 2 {
		t.Fatalf("deduped graph has %d edges, want 2", g.Edges())
	}
}

func TestUniformNeighborsPick(t *testing.T) {
	g, err := RingLattice(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewUniformNeighbors(g)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	seen := map[int]int{}
	for i := 0; i < 2000; i++ {
		nb := sp.Pick(0, s)
		if nb != 1 && nb != 11 {
			t.Fatalf("node 0 picked non-neighbor %d", nb)
		}
		seen[nb]++
	}
	if seen[1] == 0 || seen[11] == 0 {
		t.Fatalf("uniform sampler never picked one neighbor: %v", seen)
	}
}

func TestWeightedNeighborsPick(t *testing.T) {
	// Star: node 0 adjacent to 1..4; weight node 3 overwhelmingly.
	g, err := FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, false)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, 1, 1, 1000, 1}
	sp, err := NewWeightedNeighbors(g, w)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(11)
	hits := 0
	for i := 0; i < 1000; i++ {
		nb := sp.Pick(0, s)
		if nb < 1 || nb > 4 {
			t.Fatalf("node 0 picked non-neighbor %d", nb)
		}
		if nb == 3 {
			hits++
		}
	}
	if hits < 900 {
		t.Fatalf("weighted sampler picked heavy neighbor only %d/1000 times", hits)
	}
	// Leaf row: node 3's only neighbor is 0.
	if nb := sp.Pick(3, s); nb != 0 {
		t.Fatalf("leaf pick %d, want 0", nb)
	}
	// Zero-weight rows fall back to uniform.
	z, err := NewWeightedNeighbors(g, make([]float64, 5))
	if err != nil {
		t.Fatal(err)
	}
	if nb := z.Pick(3, s); nb != 0 {
		t.Fatalf("zero-weight pick %d, want 0", nb)
	}
	if _, err := NewWeightedNeighbors(g, []float64{1, -1, 1, 1, 1}); err == nil {
		t.Error("negative weights should be rejected")
	}
	if _, err := NewWeightedNeighbors(g, []float64{1}); err == nil {
		t.Error("length mismatch should be rejected")
	}
}

// TestSamplerIsolatedNode pins the -1 contract for degree-zero rows.
func TestSamplerIsolatedNode(t *testing.T) {
	g, err := FromEdges(3, [][2]int32{{0, 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniformNeighbors(g)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(1)
	if nb := u.Pick(2, s); nb != -1 {
		t.Fatalf("isolated uniform pick %d, want -1", nb)
	}
	w, err := NewWeightedNeighbors(g, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if nb := w.Pick(2, s); nb != -1 {
		t.Fatalf("isolated weighted pick %d, want -1", nb)
	}
}
