package graph

// Deterministic graph generators. Each derives its stream with
// rng.Derive(seed, rng.DomainGraph, tag, params...) and draws in one fixed
// order, so the same parameters and seed reproduce the same CSR bit for bit
// anywhere — generation never depends on worker or shard counts. The golden
// tests pin each generator's Digest at two sizes.

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Generator sub-tags under rng.DomainGraph, one per family, so the stream
// families of different generators stay disjoint even at equal parameters.
const (
	tagErdosRenyi uint64 = 1
	tagBarabasi   uint64 = 2
	tagPowerLaw   uint64 = 3
)

// Complete returns the complete graph on n nodes: every pair adjacent. It
// is the any-to-any rendezvous assumption expressed as a topology — the
// bridge between the graph-constrained protocols and the paper's original
// setting — and is O(n²) storage, so keep n modest.
func Complete(n int) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: complete graph needs n > 0, got %d", n)
	}
	g := &CSR{Off: make([]int32, n+1), Adj: make([]int32, n*(n-1))}
	w := int32(0)
	for i := 0; i < n; i++ {
		g.Off[i] = w
		for j := 0; j < n; j++ {
			if j != i {
				g.Adj[w] = int32(j)
				w++
			}
		}
	}
	g.Off[n] = w
	return g, nil
}

// RingLattice returns the ring lattice on n nodes where each node is
// adjacent to its k nearest neighbors on each side (degree 2k) — the
// regular, high-clustering baseline of the small-world literature. It is
// fully determined by (n, k); no randomness is drawn. Requires 2k < n so
// the 2k neighbors of a node are distinct.
func RingLattice(n, k int) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: ring lattice needs n > 0, got %d", n)
	}
	if k < 1 || 2*k >= n {
		return nil, fmt.Errorf("graph: ring lattice needs 1 <= k and 2k < n, got k=%d n=%d", k, n)
	}
	g := &CSR{Off: make([]int32, n+1), Adj: make([]int32, 2*k*n)}
	w := int32(0)
	for i := 0; i < n; i++ {
		g.Off[i] = w
		for d := -k; d <= k; d++ {
			if d == 0 {
				continue
			}
			g.Adj[w] = int32(((i+d)%n + n) % n)
			w++
		}
	}
	g.Off[n] = w
	sortRows(g)
	return g, nil
}

// ErdosRenyi returns a G(n, p) random graph: each of the n(n-1)/2 pairs is
// an edge independently with probability p. Pair enumeration uses the
// Batagelj–Brandes geometric skip, so generation is O(n + edges) — sparse
// million-node graphs in milliseconds — and draws one geometric variate per
// edge, in one fixed order.
func ErdosRenyi(n int, p float64, seed uint64) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: Erdős–Rényi needs n > 0, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: Erdős–Rényi needs p in [0,1], got %v", p)
	}
	if p == 1 {
		return Complete(n)
	}
	var edges [][2]int32
	if p > 0 {
		s := rng.New(rng.Derive(seed, rng.DomainGraph, tagErdosRenyi, uint64(n), math.Float64bits(p)))
		logq := math.Log1p(-p)
		// Walk the strictly-lower-triangular pair sequence (v, w), w < v,
		// jumping ahead geometrically: after each edge, skip a number of
		// pairs distributed like the gap between successes of a Bernoulli(p)
		// sequence.
		v, w := 1, -1
		for v < n {
			skip := int(math.Log1p(-s.Float64()) / logq) // Geometric(p) >= 0
			w += 1 + skip
			for w >= v && v < n {
				w -= v
				v++
			}
			if v < n {
				edges = append(edges, [2]int32{int32(v), int32(w)})
			}
		}
	}
	return FromEdges(n, edges, false)
}

// BarabasiAlbert returns a preferential-attachment scale-free graph: nodes
// arrive one at a time and attach m edges to existing nodes chosen with
// probability proportional to current degree (the repeated-endpoints
// method), yielding the power-law degree distribution of social and P2P
// overlay measurements. The first m nodes are the initial core: node m
// attaches to all of them uniformly, seeding the degree counts. Requires
// 1 <= m < n.
func BarabasiAlbert(n, m int, seed uint64) (*CSR, error) {
	if m < 1 || m >= n {
		return nil, fmt.Errorf("graph: Barabási–Albert needs 1 <= m < n, got m=%d n=%d", m, n)
	}
	s := rng.New(rng.Derive(seed, rng.DomainGraph, tagBarabasi, uint64(n), uint64(m)))
	edges := make([][2]int32, 0, m*(n-m))
	// repeated holds every edge endpoint once; sampling it uniformly is
	// sampling nodes proportional to degree.
	repeated := make([]int32, 0, 2*m*(n-m))
	targets := make([]int32, m)
	for i := range targets {
		targets[i] = int32(i)
	}
	for t := m; t < n; t++ {
		for _, w := range targets {
			edges = append(edges, [2]int32{int32(t), w})
			repeated = append(repeated, int32(t), w)
		}
		if t == n-1 {
			break
		}
		// Draw the next m distinct targets by rejection; duplicates re-draw,
		// which preserves the degree-proportional marginal over distinct
		// sets and keeps the draw order fixed.
		targets = targets[:0]
		for len(targets) < m {
			c := repeated[s.Intn(len(repeated))]
			dup := false
			for _, x := range targets {
				if x == c {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, c)
			}
		}
	}
	return FromEdges(n, edges, false)
}

// PowerLaw returns a configuration-model graph with a truncated power-law
// degree sequence: node degrees are drawn iid from P(d) ∝ d^-exponent on
// [minDeg, maxDeg], stubs are shuffled and paired, and self-loops plus
// duplicate edges are discarded (the standard erased configuration model,
// so realized degrees can fall slightly below the drawn sequence). Unlike
// BarabasiAlbert the degree exponent is a free parameter, matching the
// scale-free-network spreading literature's γ knob.
func PowerLaw(n int, exponent float64, minDeg, maxDeg int, seed uint64) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: power law needs n > 0, got %d", n)
	}
	if minDeg < 1 || maxDeg < minDeg || maxDeg >= n {
		return nil, fmt.Errorf("graph: power law needs 1 <= minDeg <= maxDeg < n, got [%d,%d] n=%d", minDeg, maxDeg, n)
	}
	if exponent <= 0 {
		return nil, fmt.Errorf("graph: power law needs exponent > 0, got %v", exponent)
	}
	s := rng.New(rng.Derive(seed, rng.DomainGraph, tagPowerLaw, uint64(n),
		math.Float64bits(exponent), uint64(minDeg), uint64(maxDeg)))
	// Inverse-CDF table over the truncated support: cheap (maxDeg entries)
	// and exact, so degree draws are one uniform plus a scan.
	weights := make([]float64, maxDeg-minDeg+1)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(minDeg+i), -exponent)
		total += weights[i]
	}
	stubs := make([]int32, 0, n*minDeg)
	for i := 0; i < n; i++ {
		x := s.Float64() * total
		d := maxDeg
		for k, w := range weights {
			x -= w
			if x < 0 {
				d = minDeg + k
				break
			}
		}
		for j := 0; j < d; j++ {
			stubs = append(stubs, int32(i))
		}
	}
	if len(stubs)%2 == 1 {
		// An odd stub count cannot pair; drop the last stub (one unit of
		// degree from the last node), the conventional fix.
		stubs = stubs[:len(stubs)-1]
	}
	for i := len(stubs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	edges := make([][2]int32, 0, len(stubs)/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		edges = append(edges, [2]int32{stubs[i], stubs[i+1]})
	}
	return FromEdges(n, edges, true)
}
