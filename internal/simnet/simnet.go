// Package simnet is the execution substrate for the protocols in this
// repository. It provides two engines over the same message model:
//
//   - Network, a deterministic round-synchronous engine matching the paper's
//     model ("communication is organized in rounds"): messages sent during
//     round t are delivered at the start of round t+1, nodes may crash, and
//     all traffic is counted so experiments can report protocol overhead.
//
//   - Live, a concurrent engine with one goroutine per peer and channel
//     mailboxes, demonstrating that the same protocol step functions run
//     unchanged on genuinely parallel peers. Results are bit-identical to
//     the sequential engine because each peer owns a private random stream
//     and the coordinator routes messages in peer order.
//
// For million-peer runs — or for latency, loss and churn network models —
// use the sharded runtime in internal/live instead: it executes the same
// step functions over the same Message/Stats types with a fixed worker
// pool, flat reusable buffers, and a pluggable NetModel, and is
// bit-identical across shard counts.
//
// Payloads are two int64 words (enough for "the address of your date" plus a
// tag — the paper stresses that control messages are tiny, about one IP
// address each).
package simnet

import (
	"fmt"

	"repro/internal/rng"
)

// Message is a unit protocol message.
type Message struct {
	From, To int
	Kind     uint8
	A, B     int64
}

// Stats aggregates traffic counters for an engine run.
type Stats struct {
	Sent    int64 // messages accepted for delivery
	Dropped int64 // messages to dead or invalid destinations
	Rounds  int64 // Deliver calls
	// Clamped counts messages whose planned delay exceeded the engine's
	// schedulable horizon and was clamped to it: a NetModel.Plan result
	// beyond MaxDelay() on the sharded runtime, or a float boundary-noise
	// clamp on the async calendar. The messages are still delivered (at the
	// horizon), but a nonzero count flags a model whose Plan and MaxDelay
	// disagree. Round-synchronous engines never clamp.
	Clamped int64
	ByKind  [256]int64 // sent messages per Kind
}

// Network is the deterministic round-synchronous engine. The zero value is
// unusable; construct with NewNetwork.
type Network struct {
	n      int
	inbox  [][]Message
	outbox [][]Message
	alive  []bool
	nAlive int
	stats  Stats
}

// NewNetwork creates an engine with n live nodes and empty mailboxes.
func NewNetwork(n int) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simnet: network needs n > 0, got %d", n)
	}
	nw := &Network{
		n:      n,
		inbox:  make([][]Message, n),
		outbox: make([][]Message, n),
		alive:  make([]bool, n),
		nAlive: n,
	}
	for i := range nw.alive {
		nw.alive[i] = true
	}
	return nw, nil
}

// N returns the number of nodes (live and dead).
func (nw *Network) N() int { return nw.n }

// Send queues a message for delivery at the next round boundary. Messages
// from dead senders or to dead/out-of-range destinations are counted as
// dropped and discarded; the paper's model lets crashed nodes vanish
// silently.
func (nw *Network) Send(m Message) {
	if m.To < 0 || m.To >= nw.n || m.From < 0 || m.From >= nw.n ||
		!nw.alive[m.To] || !nw.alive[m.From] {
		nw.stats.Dropped++
		return
	}
	nw.stats.Sent++
	nw.stats.ByKind[m.Kind]++
	nw.outbox[m.To] = append(nw.outbox[m.To], m)
}

// Deliver advances the round boundary: queued messages become the new
// inboxes and the previous inboxes are discarded.
func (nw *Network) Deliver() {
	nw.stats.Rounds++
	nw.inbox, nw.outbox = nw.outbox, nw.inbox
	for i := range nw.outbox {
		nw.outbox[i] = nw.outbox[i][:0]
	}
}

// Inbox returns the messages delivered to node i this round. The slice is
// valid until the next Deliver call and must not be retained.
func (nw *Network) Inbox(i int) []Message { return nw.inbox[i] }

// Alive reports whether node i is up.
func (nw *Network) Alive(i int) bool { return nw.alive[i] }

// AliveCount returns the number of live nodes.
func (nw *Network) AliveCount() int { return nw.nAlive }

// Kill crashes node i: it stops sending and receiving. Killing a dead node
// is a no-op.
func (nw *Network) Kill(i int) {
	if nw.alive[i] {
		nw.alive[i] = false
		nw.nAlive--
	}
}

// Revive brings node i back up with an empty inbox (its state is the
// protocol's concern). Reviving a live node is a no-op.
func (nw *Network) Revive(i int) {
	if !nw.alive[i] {
		nw.alive[i] = true
		nw.nAlive++
		nw.inbox[i] = nw.inbox[i][:0]
	}
}

// Crash kills each currently-live node independently with probability p,
// except nodes listed in protect; it returns the number of nodes killed.
// This is the churn model of experiment E9.
func (nw *Network) Crash(s *rng.Stream, p float64, protect ...int) int {
	prot := map[int]bool{}
	for _, i := range protect {
		prot[i] = true
	}
	killed := 0
	for i := 0; i < nw.n; i++ {
		if nw.alive[i] && !prot[i] && s.Bernoulli(p) {
			nw.Kill(i)
			killed++
		}
	}
	return killed
}

// Stats returns a copy of the traffic counters.
func (nw *Network) Stats() Stats { return nw.stats }
