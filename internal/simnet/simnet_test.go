package simnet

import (
	"testing"

	"repro/internal/rng"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(0); err == nil {
		t.Error("accepted n = 0")
	}
	if _, err := NewNetwork(-3); err == nil {
		t.Error("accepted negative n")
	}
}

func TestSendDeliverRoundTrip(t *testing.T) {
	nw, err := NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	nw.Send(Message{From: 0, To: 2, Kind: 7, A: 42})
	nw.Send(Message{From: 1, To: 2, Kind: 7, A: 43})
	if got := len(nw.Inbox(2)); got != 0 {
		t.Fatalf("message delivered before round boundary: %d", got)
	}
	nw.Deliver()
	in := nw.Inbox(2)
	if len(in) != 2 {
		t.Fatalf("inbox size %d, want 2", len(in))
	}
	if in[0].A != 42 || in[1].A != 43 {
		t.Fatalf("payloads %v", in)
	}
	nw.Deliver()
	if len(nw.Inbox(2)) != 0 {
		t.Fatal("inbox not cleared after next round")
	}
	st := nw.Stats()
	if st.Sent != 2 || st.Rounds != 2 || st.ByKind[7] != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendValidatesEndpoints(t *testing.T) {
	nw, _ := NewNetwork(2)
	nw.Send(Message{From: 0, To: 5})
	nw.Send(Message{From: -1, To: 1})
	if st := nw.Stats(); st.Sent != 0 || st.Dropped != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKillAndRevive(t *testing.T) {
	nw, _ := NewNetwork(3)
	nw.Kill(1)
	if nw.Alive(1) || nw.AliveCount() != 2 {
		t.Fatal("kill did not take effect")
	}
	nw.Kill(1) // idempotent
	if nw.AliveCount() != 2 {
		t.Fatal("double kill changed count")
	}
	nw.Send(Message{From: 0, To: 1}) // to dead node
	nw.Send(Message{From: 1, To: 0}) // from dead node
	if st := nw.Stats(); st.Sent != 0 || st.Dropped != 2 {
		t.Fatalf("dead traffic not dropped: %+v", st)
	}
	nw.Revive(1)
	if !nw.Alive(1) || nw.AliveCount() != 3 {
		t.Fatal("revive did not take effect")
	}
	nw.Revive(1) // idempotent
	if nw.AliveCount() != 3 {
		t.Fatal("double revive changed count")
	}
}

func TestReviveClearsInbox(t *testing.T) {
	nw, _ := NewNetwork(2)
	nw.Send(Message{From: 0, To: 1})
	nw.Deliver()
	nw.Kill(1)
	nw.Revive(1)
	if len(nw.Inbox(1)) != 0 {
		t.Fatal("revived node kept stale inbox")
	}
}

func TestCrash(t *testing.T) {
	nw, _ := NewNetwork(1000)
	s := rng.New(42)
	killed := nw.Crash(s, 0.1, 0)
	if killed < 50 || killed > 150 {
		t.Fatalf("killed %d of 1000 at p=0.1", killed)
	}
	if !nw.Alive(0) {
		t.Fatal("protected node crashed")
	}
	if nw.AliveCount() != 1000-killed {
		t.Fatalf("alive count %d after killing %d", nw.AliveCount(), killed)
	}
	// p = 0 kills nobody; p = 1 kills everyone unprotected.
	if extra := nw.Crash(s, 0); extra != 0 {
		t.Fatalf("p=0 killed %d", extra)
	}
	nw2, _ := NewNetwork(10)
	nw2.Crash(s, 1, 3)
	if nw2.AliveCount() != 1 || !nw2.Alive(3) {
		t.Fatal("p=1 with protection failed")
	}
}

// pingStep: every node sends its id to node (id+1) mod n each round and
// counts received pings in A of the next message.
func pingStep(n int) StepFunc {
	return func(node, round int, inbox []Message, s *rng.Stream) []Message {
		return []Message{{To: (node + 1) % n, Kind: 1, A: int64(len(inbox))}}
	}
}

func TestLiveValidation(t *testing.T) {
	if _, err := NewLive(0, 1, pingStep(1)); err == nil {
		t.Error("accepted n = 0")
	}
	if _, err := NewLive(4, 1, nil); err == nil {
		t.Error("accepted nil step")
	}
}

func TestLiveRunDeliversEachRound(t *testing.T) {
	const n = 8
	l, err := NewLive(n, 99, pingStep(n))
	if err != nil {
		t.Fatal(err)
	}
	st := l.Run(5)
	if st.Rounds != 5 {
		t.Fatalf("rounds = %d", st.Rounds)
	}
	if st.Sent != 5*n {
		t.Fatalf("sent = %d, want %d", st.Sent, 5*n)
	}
	// After round 1 every node receives exactly one ping each round, so the
	// final mailboxes hold one message each with A == 1.
	for i := 0; i < n; i++ {
		in := l.Inbox(i)
		if len(in) != 1 {
			t.Fatalf("node %d inbox %v", i, in)
		}
		if in[0].A != 1 {
			t.Fatalf("node %d saw A=%d", i, in[0].A)
		}
		if in[0].From != (i-1+n)%n {
			t.Fatalf("node %d got ping from %d", i, in[0].From)
		}
	}
}

func TestLiveMatchesSequential(t *testing.T) {
	// A randomized step: each node sends to a random destination carrying a
	// random payload. With per-peer private streams, concurrent and
	// sequential execution must be identical message-for-message.
	step := func(node, round int, inbox []Message, s *rng.Stream) []Message {
		var out []Message
		k := 1 + s.Intn(3)
		for j := 0; j < k; j++ {
			out = append(out, Message{To: s.Intn(32), Kind: 2, A: int64(s.Uint64() % 1000)})
		}
		return out
	}
	a, _ := NewLive(32, 7, step)
	b, _ := NewLive(32, 7, step)
	sa := a.Run(6)
	sb := b.RunSequential(6)
	if sa.Sent != sb.Sent || sa.Dropped != sb.Dropped {
		t.Fatalf("traffic differs: live %+v vs seq %+v", sa.Sent, sb.Sent)
	}
	for i := 0; i < 32; i++ {
		ia, ib := a.Inbox(i), b.Inbox(i)
		if len(ia) != len(ib) {
			t.Fatalf("node %d inbox sizes differ: %d vs %d", i, len(ia), len(ib))
		}
		for j := range ia {
			if ia[j] != ib[j] {
				t.Fatalf("node %d message %d differs: %+v vs %+v", i, j, ia[j], ib[j])
			}
		}
	}
}

func TestLiveDropsInvalidDestination(t *testing.T) {
	step := func(node, round int, inbox []Message, s *rng.Stream) []Message {
		return []Message{{To: -1}, {To: 1000}}
	}
	l, _ := NewLive(4, 1, step)
	st := l.Run(2)
	if st.Sent != 0 || st.Dropped != 16 {
		t.Fatalf("stats = sent %d dropped %d", st.Sent, st.Dropped)
	}
}

func TestLiveSetsFromField(t *testing.T) {
	step := func(node, round int, inbox []Message, s *rng.Stream) []Message {
		// Deliberately wrong From; the engine must overwrite it.
		return []Message{{From: 99, To: 0}}
	}
	l, _ := NewLive(3, 1, step)
	l.Run(1)
	for _, m := range l.Inbox(0) {
		if m.From == 99 {
			t.Fatal("engine did not stamp the true sender")
		}
	}
}

func TestLiveMultipleRunCalls(t *testing.T) {
	const n = 4
	l, _ := NewLive(n, 5, pingStep(n))
	l.Run(2)
	st := l.Run(3)
	if st.Rounds != 5 || st.Sent != 5*n {
		t.Fatalf("cumulative stats = %+v", st)
	}
}
