package simnet

import (
	"fmt"
	"sync"

	"repro/internal/rng"
)

// StepFunc is one peer's behavior for one round: given its id, the round
// number, and the messages delivered to it, it returns the messages it wants
// to send. The provided stream is the peer's private randomness; StepFunc
// must not touch any shared state (peers run concurrently in the Live
// engine).
type StepFunc func(node, round int, inbox []Message, s *rng.Stream) []Message

// Live runs a protocol with one goroutine per peer. Per-round barriers are
// realized with WaitGroups; the coordinator routes messages between rounds
// in peer order so that a Live run and a sequential run with the same seed
// produce identical traffic.
//
// Live demonstrates that the protocols run on genuinely concurrent peers,
// but one goroutine (and one mailbox slice) per peer per round does not
// scale past ~10^5 peers. The sharded runtime in internal/live executes the
// same step functions with a fixed worker pool and flat message buffers —
// use it for large n or for non-synchronous network models.
type Live struct {
	n       int
	step    StepFunc
	streams []*rng.Stream
	inbox   [][]Message
	stats   Stats
}

// NewLive creates a live engine for n peers with per-peer streams derived
// from seed.
func NewLive(n int, seed uint64, step StepFunc) (*Live, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simnet: live engine needs n > 0, got %d", n)
	}
	if step == nil {
		return nil, fmt.Errorf("simnet: live engine needs a step function")
	}
	return NewLiveWithStreams(rng.NewStreams(seed, n), step)
}

// NewLiveWithStreams creates a live engine over caller-provided per-peer
// streams (one per peer). It exists so other runtimes — in particular the
// sharded engine in internal/live — can be replayed on this engine with
// identical randomness, making cross-engine runs exactly comparable.
func NewLiveWithStreams(streams []*rng.Stream, step StepFunc) (*Live, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("simnet: live engine needs streams")
	}
	for i, s := range streams {
		if s == nil {
			return nil, fmt.Errorf("simnet: peer %d has a nil stream", i)
		}
	}
	if step == nil {
		return nil, fmt.Errorf("simnet: live engine needs a step function")
	}
	return &Live{
		n:       len(streams),
		step:    step,
		streams: streams,
		inbox:   make([][]Message, len(streams)),
	}, nil
}

// Run executes the given number of rounds concurrently and returns the
// traffic statistics. It may be called repeatedly; mailbox state carries
// over between calls.
func (l *Live) Run(rounds int) Stats {
	outs := make([][]Message, l.n)
	for r := 0; r < rounds; r++ {
		round := int(l.stats.Rounds)
		var wg sync.WaitGroup
		wg.Add(l.n)
		for i := 0; i < l.n; i++ {
			go func(i int) {
				defer wg.Done()
				outs[i] = l.step(i, round, l.inbox[i], l.streams[i])
			}(i)
		}
		wg.Wait()
		// Route in peer order for determinism.
		next := make([][]Message, l.n)
		for i := 0; i < l.n; i++ {
			for _, m := range outs[i] {
				m.From = i
				if m.To < 0 || m.To >= l.n {
					l.stats.Dropped++
					continue
				}
				l.stats.Sent++
				l.stats.ByKind[m.Kind]++
				next[m.To] = append(next[m.To], m)
			}
			outs[i] = nil
		}
		l.inbox = next
		l.stats.Rounds++
	}
	return l.stats
}

// RunSequential executes the same protocol single-threaded. It exists so
// tests can assert that concurrent and sequential execution are
// observationally identical.
func (l *Live) RunSequential(rounds int) Stats {
	for r := 0; r < rounds; r++ {
		round := int(l.stats.Rounds)
		next := make([][]Message, l.n)
		for i := 0; i < l.n; i++ {
			for _, m := range l.step(i, round, l.inbox[i], l.streams[i]) {
				m.From = i
				if m.To < 0 || m.To >= l.n {
					l.stats.Dropped++
					continue
				}
				l.stats.Sent++
				l.stats.ByKind[m.Kind]++
				next[m.To] = append(next[m.To], m)
			}
		}
		l.inbox = next
		l.stats.Rounds++
	}
	return l.stats
}

// Inbox exposes the current mailbox of a peer, for post-run inspection.
func (l *Live) Inbox(i int) []Message { return l.inbox[i] }
