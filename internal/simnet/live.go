package simnet

import (
	"fmt"
	"sync"

	"repro/internal/rng"
)

// StepFunc is one peer's behavior for one round: given its id, the round
// number, and the messages delivered to it, it returns the messages it wants
// to send. The provided stream is the peer's private randomness; StepFunc
// must not touch any shared state (peers run concurrently in the Live
// engine).
type StepFunc func(node, round int, inbox []Message, s *rng.Stream) []Message

// Live runs a protocol with one goroutine per peer. Per-round barriers are
// realized with WaitGroups; the coordinator routes messages between rounds
// in peer order so that a Live run and a sequential run with the same seed
// produce identical traffic.
type Live struct {
	n       int
	step    StepFunc
	streams []*rng.Stream
	inbox   [][]Message
	stats   Stats
}

// NewLive creates a live engine for n peers with per-peer streams derived
// from seed.
func NewLive(n int, seed uint64, step StepFunc) (*Live, error) {
	if n <= 0 {
		return nil, fmt.Errorf("simnet: live engine needs n > 0, got %d", n)
	}
	if step == nil {
		return nil, fmt.Errorf("simnet: live engine needs a step function")
	}
	return &Live{
		n:       n,
		step:    step,
		streams: rng.NewStreams(seed, n),
		inbox:   make([][]Message, n),
	}, nil
}

// Run executes the given number of rounds concurrently and returns the
// traffic statistics. It may be called repeatedly; mailbox state carries
// over between calls.
func (l *Live) Run(rounds int) Stats {
	outs := make([][]Message, l.n)
	for r := 0; r < rounds; r++ {
		round := int(l.stats.Rounds)
		var wg sync.WaitGroup
		wg.Add(l.n)
		for i := 0; i < l.n; i++ {
			go func(i int) {
				defer wg.Done()
				outs[i] = l.step(i, round, l.inbox[i], l.streams[i])
			}(i)
		}
		wg.Wait()
		// Route in peer order for determinism.
		next := make([][]Message, l.n)
		for i := 0; i < l.n; i++ {
			for _, m := range outs[i] {
				m.From = i
				if m.To < 0 || m.To >= l.n {
					l.stats.Dropped++
					continue
				}
				l.stats.Sent++
				l.stats.ByKind[m.Kind]++
				next[m.To] = append(next[m.To], m)
			}
			outs[i] = nil
		}
		l.inbox = next
		l.stats.Rounds++
	}
	return l.stats
}

// RunSequential executes the same protocol single-threaded. It exists so
// tests can assert that concurrent and sequential execution are
// observationally identical.
func (l *Live) RunSequential(rounds int) Stats {
	for r := 0; r < rounds; r++ {
		round := int(l.stats.Rounds)
		next := make([][]Message, l.n)
		for i := 0; i < l.n; i++ {
			for _, m := range l.step(i, round, l.inbox[i], l.streams[i]) {
				m.From = i
				if m.To < 0 || m.To >= l.n {
					l.stats.Dropped++
					continue
				}
				l.stats.Sent++
				l.stats.ByKind[m.Kind]++
				next[m.To] = append(next[m.To], m)
			}
		}
		l.inbox = next
		l.stats.Rounds++
	}
	return l.stats
}

// Inbox exposes the current mailbox of a peer, for post-run inspection.
func (l *Live) Inbox(i int) []Message { return l.inbox[i] }
