package overlay

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(0, rng.New(1)); err == nil {
		t.Error("accepted n = 0")
	}
	if _, err := RingFromPositions(nil); err == nil {
		t.Error("accepted empty positions")
	}
	if _, err := RingFromPositions([]uint64{5, 5}); err == nil {
		t.Error("accepted duplicate positions")
	}
}

func TestRingSortedAndSized(t *testing.T) {
	r, err := NewRing(100, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 100 {
		t.Fatalf("N = %d", r.N())
	}
	for i := 1; i < r.N(); i++ {
		if r.Position(i) <= r.Position(i-1) {
			t.Fatal("positions not strictly sorted")
		}
	}
}

func TestSuccessorPredecessorInverse(t *testing.T) {
	r, _ := NewRing(17, rng.New(7))
	for rank := 0; rank < r.N(); rank++ {
		if r.Predecessor(r.Successor(rank)) != rank {
			t.Fatalf("pred(succ(%d)) != %d", rank, rank)
		}
		if r.Successor(r.Predecessor(rank)) != rank {
			t.Fatalf("succ(pred(%d)) != %d", rank, rank)
		}
	}
}

func TestOwnerMatchesLinearScan(t *testing.T) {
	positions := []uint64{100, 500, 1000, ^uint64(0) - 10}
	r, err := RingFromPositions(positions)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0},   // before first node
		{100, 0}, // exactly on a node
		{101, 1}, // just after
		{500, 1},
		{750, 2},
		{1000, 2},
		{1001, 3},
		{^uint64(0) - 10, 3},
		{^uint64(0), 0}, // wraps to first node
	}
	for _, c := range cases {
		if got := r.Owner(c.x); got != c.want {
			t.Errorf("Owner(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestIntervalWeightsSumToOne(t *testing.T) {
	for _, n := range []int{1, 2, 10, 1000} {
		r, err := NewRing(n, rng.New(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		w := r.IntervalWeights()
		var sum float64
		for _, v := range w {
			if v < 0 {
				t.Fatalf("negative weight %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("n=%d: weights sum to %v", n, sum)
		}
	}
}

func TestIntervalWeightsMatchPickOwner(t *testing.T) {
	r, _ := NewRing(8, rng.New(3))
	w := r.IntervalWeights()
	s := rng.New(4)
	const draws = 200000
	counts := make([]int, 8)
	for i := 0; i < draws; i++ {
		counts[r.PickOwner(s)]++
	}
	for rank, want := range w {
		got := float64(counts[rank]) / draws
		if math.Abs(got-want) > 0.05*want+0.002 {
			t.Errorf("rank %d: empirical %v, weight %v", rank, got, want)
		}
	}
}

func TestIntervalSpread(t *testing.T) {
	// With n uniform points the max arc is Theta(log n / n) and the min arc
	// Theta(1/n^2); check loose versions of both bounds.
	const n = 10000
	r, _ := NewRing(n, rng.New(99))
	maxW, minW := r.MaxInterval(), r.MinInterval()
	logn := math.Log(float64(n))
	if maxW < logn/float64(n)/4 || maxW > 4*logn/float64(n) {
		t.Errorf("max interval %v, want about log n/n = %v", maxW, logn/float64(n))
	}
	if minW > 10/float64(n)/float64(n)*float64(n) { // min << 1/n
		t.Errorf("min interval %v not far below 1/n", minW)
	}
	if minW <= 0 {
		t.Errorf("min interval must be positive, got %v", minW)
	}
}

func TestLookupFindsOwner(t *testing.T) {
	r, _ := NewRing(256, rng.New(5))
	s := rng.New(6)
	for i := 0; i < 2000; i++ {
		from := s.Intn(r.N())
		x := s.Uint64()
		owner, hops := r.Lookup(from, x)
		if owner != r.Owner(x) {
			t.Fatalf("Lookup(%d, %d) = %d, want %d", from, x, owner, r.Owner(x))
		}
		if hops < 0 || hops > r.N() {
			t.Fatalf("absurd hop count %d", hops)
		}
	}
}

func TestLookupCDFindsOwner(t *testing.T) {
	r, _ := NewRing(256, rng.New(8))
	s := rng.New(9)
	for i := 0; i < 2000; i++ {
		from := s.Intn(r.N())
		x := s.Uint64()
		owner, hops := r.LookupCD(from, x)
		if owner != r.Owner(x) {
			t.Fatalf("LookupCD(%d, %d) = %d, want %d", from, x, owner, r.Owner(x))
		}
		if hops < 0 || hops > 3*64 {
			t.Fatalf("absurd CD hop count %d", hops)
		}
	}
}

func TestLookupSelfOwned(t *testing.T) {
	r, _ := NewRing(64, rng.New(10))
	// Looking up a point exactly at a node's own position terminates with
	// that node as owner.
	for rank := 0; rank < r.N(); rank++ {
		owner, _ := r.Lookup(rank, r.Position(rank))
		if owner != rank {
			t.Fatalf("Lookup(self position): owner %d, want %d", owner, rank)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	s := rng.New(11)
	var hops []float64
	ns := []int{64, 256, 1024, 4096}
	for _, n := range ns {
		r, err := NewRing(n, s.Split())
		if err != nil {
			t.Fatal(err)
		}
		avg := r.AvgLookupHops(s, 500, r.Lookup)
		hops = append(hops, avg)
		// Chord resolves in about (1/2) log2 n hops on average; allow a wide
		// band around that.
		log2n := math.Log2(float64(n))
		if avg > 2*log2n {
			t.Errorf("n=%d: avg hops %.2f exceeds 2*log2(n)=%.2f", n, avg, 2*log2n)
		}
		if avg < 0.2*log2n {
			t.Errorf("n=%d: avg hops %.2f suspiciously low", n, avg)
		}
	}
	// Hops must grow with n, and sublinearly.
	for i := 1; i < len(hops); i++ {
		if hops[i] <= hops[i-1] {
			t.Errorf("avg hops not increasing: %v", hops)
		}
	}
	if hops[len(hops)-1] > hops[0]*8 {
		t.Errorf("hop growth looks superlogarithmic: %v", hops)
	}
}

func TestLookupCDHopsLogarithmic(t *testing.T) {
	s := rng.New(12)
	for _, n := range []int{64, 1024} {
		r, err := NewRing(n, s.Split())
		if err != nil {
			t.Fatal(err)
		}
		avg := r.AvgLookupHops(s, 500, r.LookupCD)
		log2n := math.Log2(float64(n))
		// The CD walk takes about log2(n)+2 emulated steps plus a short
		// correction; allow [0.5, 3] x log2 n.
		if avg > 3*log2n || avg < 0.5*log2n {
			t.Errorf("n=%d: CD avg hops %.2f outside [0.5,3]*log2n (%.2f)", n, avg, log2n)
		}
	}
}

func TestFingersExcludeSelfAndAreValid(t *testing.T) {
	r, _ := NewRing(128, rng.New(13))
	for rank := 0; rank < r.N(); rank++ {
		f := r.Fingers(rank)
		if len(f) == 0 {
			t.Fatalf("rank %d has no fingers", rank)
		}
		if len(f) > 64 {
			t.Fatalf("rank %d has %d fingers", rank, len(f))
		}
		for _, g := range f {
			if g == rank {
				t.Fatalf("rank %d lists itself as a finger", rank)
			}
			if g < 0 || g >= r.N() {
				t.Fatalf("rank %d has invalid finger %d", rank, g)
			}
		}
	}
}

func TestFingerCountLogarithmic(t *testing.T) {
	r, _ := NewRing(1024, rng.New(14))
	total := 0
	for rank := 0; rank < r.N(); rank++ {
		total += len(r.Fingers(rank))
	}
	avg := float64(total) / float64(r.N())
	if avg < 5 || avg > 30 {
		t.Fatalf("avg finger count %.1f, want ~log2(1024)=10 within [5,30]", avg)
	}
}

func TestWithNode(t *testing.T) {
	r, _ := RingFromPositions([]uint64{100, 200, 300})
	r2, err := r.WithNode(250)
	if err != nil {
		t.Fatal(err)
	}
	if r2.N() != 4 {
		t.Fatalf("N = %d", r2.N())
	}
	if r.N() != 3 {
		t.Fatal("WithNode mutated the receiver")
	}
	if r2.Owner(225) != 2 { // 250 is now rank 2
		t.Fatalf("Owner(225) = %d", r2.Owner(225))
	}
	if _, err := r.WithNode(200); err == nil {
		t.Error("accepted duplicate join position")
	}
}

func TestWithoutRank(t *testing.T) {
	r, _ := RingFromPositions([]uint64{100, 200, 300})
	r2, err := r.WithoutRank(1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.N() != 2 {
		t.Fatalf("N = %d", r2.N())
	}
	// 200's arc is absorbed by its successor (300, now rank 1).
	if r2.Owner(150) != 1 {
		t.Fatalf("Owner(150) = %d, want 1", r2.Owner(150))
	}
	if _, err := r.WithoutRank(5); err == nil {
		t.Error("accepted out-of-range rank")
	}
	single, _ := RingFromPositions([]uint64{7})
	if _, err := single.WithoutRank(0); err == nil {
		t.Error("removed the last node")
	}
}

func TestOwnerPropertyAgainstSort(t *testing.T) {
	// Property: Owner(x) is the first sorted position >= x, wrapping.
	err := quick.Check(func(seed uint64, xs []uint64, probe uint64) bool {
		if len(xs) == 0 {
			return true
		}
		// Dedupe.
		set := map[uint64]bool{}
		var uniq []uint64
		for _, x := range xs {
			if !set[x] {
				set[x] = true
				uniq = append(uniq, x)
			}
		}
		r, err := RingFromPositions(uniq)
		if err != nil {
			return false
		}
		sorted := append([]uint64(nil), uniq...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		want := 0
		found := false
		for i, p := range sorted {
			if p >= probe {
				want = i
				found = true
				break
			}
		}
		if !found {
			want = 0
		}
		return r.Owner(probe) == want
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLookupPropertyAllPairs(t *testing.T) {
	// Exhaustive check on a small ring: every (from, target bucket) pair
	// resolves to the true owner under both routing schemes.
	r, _ := NewRing(23, rng.New(15))
	for from := 0; from < r.N(); from++ {
		for k := 0; k < 64; k += 3 {
			x := uint64(1) << uint(k)
			want := r.Owner(x)
			if got, _ := r.Lookup(from, x); got != want {
				t.Fatalf("Lookup(%d, 2^%d) = %d, want %d", from, k, got, want)
			}
			if got, _ := r.LookupCD(from, x); got != want {
				t.Fatalf("LookupCD(%d, 2^%d) = %d, want %d", from, k, got, want)
			}
		}
	}
}
