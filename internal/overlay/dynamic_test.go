package overlay

import (
	"testing"

	"repro/internal/rng"
)

func TestNewDynamicRingValidation(t *testing.T) {
	if _, err := NewDynamicRing(0, rng.New(1)); err == nil {
		t.Error("accepted n = 0")
	}
}

func TestDynamicRingInitialState(t *testing.T) {
	d, err := NewDynamicRing(10, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 10 || d.AliveCount() != 10 {
		t.Fatalf("N=%d alive=%d", d.N(), d.AliveCount())
	}
	for id := 0; id < 10; id++ {
		if !d.Present(id) {
			t.Fatalf("id %d not present initially", id)
		}
	}
	if d.Present(-1) || d.Present(10) {
		t.Fatal("out-of-range ids reported present")
	}
}

func TestDynamicRingLeaveRejoin(t *testing.T) {
	s := rng.New(3)
	d, _ := NewDynamicRing(5, s)
	if err := d.Leave(2); err != nil {
		t.Fatal(err)
	}
	if d.Present(2) || d.AliveCount() != 4 {
		t.Fatal("leave did not take effect")
	}
	if err := d.Leave(2); err == nil {
		t.Fatal("double leave accepted")
	}
	if err := d.Rejoin(2, s); err != nil {
		t.Fatal(err)
	}
	if !d.Present(2) || d.AliveCount() != 5 {
		t.Fatal("rejoin did not take effect")
	}
	if err := d.Rejoin(2, s); err == nil {
		t.Fatal("double rejoin accepted")
	}
	if err := d.Rejoin(99, s); err == nil {
		t.Fatal("out-of-range rejoin accepted")
	}
}

func TestDynamicRingCannotEmpty(t *testing.T) {
	s := rng.New(4)
	d, _ := NewDynamicRing(2, s)
	if err := d.Leave(0); err != nil {
		t.Fatal(err)
	}
	if err := d.Leave(1); err == nil {
		t.Fatal("removed the last node")
	}
}

func TestDynamicRingPickOnlyPresent(t *testing.T) {
	s := rng.New(5)
	d, _ := NewDynamicRing(8, s)
	for _, id := range []int{1, 3, 5} {
		if err := d.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	gone := map[int]bool{1: true, 3: true, 5: true}
	for i := 0; i < 5000; i++ {
		id, err := d.PickOwnerID(s)
		if err != nil {
			t.Fatal(err)
		}
		if gone[id] {
			t.Fatalf("picked departed id %d", id)
		}
		if id < 0 || id >= 8 {
			t.Fatalf("picked invalid id %d", id)
		}
	}
}

func TestDynamicRingReplaceMovesPosition(t *testing.T) {
	s := rng.New(6)
	d, _ := NewDynamicRing(4, s)
	ringBefore, idsBefore, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var posBefore uint64
	for rank, id := range idsBefore {
		if id == 1 {
			posBefore = ringBefore.Position(rank)
		}
	}
	if err := d.Replace(1, s); err != nil {
		t.Fatal(err)
	}
	ringAfter, idsAfter, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d.AliveCount() != 4 {
		t.Fatal("replace changed membership count")
	}
	var posAfter uint64
	found := false
	for rank, id := range idsAfter {
		if id == 1 {
			posAfter = ringAfter.Position(rank)
			found = true
		}
	}
	if !found {
		t.Fatal("replaced id missing from ring")
	}
	if posAfter == posBefore {
		t.Fatal("replace kept the old position (2^-64 probability)")
	}
}

func TestDynamicRingSnapshotConsistent(t *testing.T) {
	s := rng.New(7)
	d, _ := NewDynamicRing(100, s)
	for i := 0; i < 30; i++ {
		id := s.Intn(100)
		if d.Present(id) && d.AliveCount() > 1 {
			if err := d.Leave(id); err != nil {
				t.Fatal(err)
			}
		} else if !d.Present(id) {
			if err := d.Rejoin(id, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	ring, ids, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ring.N() != d.AliveCount() || len(ids) != d.AliveCount() {
		t.Fatalf("snapshot size %d/%d vs alive %d", ring.N(), len(ids), d.AliveCount())
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if !d.Present(id) || seen[id] {
			t.Fatalf("snapshot lists bad id %d", id)
		}
		seen[id] = true
	}
	// Interval weights of the snapshot still sum to 1.
	var sum float64
	for _, w := range ring.IntervalWeights() {
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum to %v after churn", sum)
	}
}

func TestDynamicRingDistributionTracksArcs(t *testing.T) {
	// After churn, pick frequencies must match the *current* arc weights.
	s := rng.New(8)
	d, _ := NewDynamicRing(6, s)
	for i := 0; i < 4; i++ {
		id := 1 + s.Intn(5)
		if d.Present(id) {
			_ = d.Replace(id, s)
		}
	}
	ring, ids, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w := ring.IntervalWeights()
	counts := map[int]int{}
	const draws = 150000
	for i := 0; i < draws; i++ {
		id, err := d.PickOwnerID(s)
		if err != nil {
			t.Fatal(err)
		}
		counts[id]++
	}
	for rank, id := range ids {
		got := float64(counts[id]) / draws
		if got < w[rank]*0.9-0.01 || got > w[rank]*1.1+0.01 {
			t.Errorf("id %d: frequency %.4f vs arc %.4f", id, got, w[rank])
		}
	}
}
