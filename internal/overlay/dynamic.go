package overlay

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// DynamicRing maintains a DHT whose membership churns: stable node ids map
// to ring positions, nodes may leave, and ids may rejoin at fresh random
// positions (modeling a departed peer replaced by a new one). The induced
// selection distribution changes with every membership event — which the
// dating service tolerates by design, since it only requires a common
// distribution within each round, not across rounds.
type DynamicRing struct {
	pos     []uint64 // by node id; valid only while present
	present []bool
	nAlive  int

	// Lazily rebuilt view over the present nodes.
	ring  *Ring
	ids   []int // rank -> node id
	dirty bool
}

// NewDynamicRing places n nodes (ids 0..n-1) at random positions.
func NewDynamicRing(n int, s *rng.Stream) (*DynamicRing, error) {
	if n <= 0 {
		return nil, fmt.Errorf("overlay: dynamic ring needs n > 0, got %d", n)
	}
	d := &DynamicRing{
		pos:     make([]uint64, n),
		present: make([]bool, n),
		nAlive:  n,
		dirty:   true,
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		d.present[i] = true
		for {
			p := s.Uint64()
			if !seen[p] {
				seen[p] = true
				d.pos[i] = p
				break
			}
		}
	}
	return d, nil
}

// N returns the id space size (present or not).
func (d *DynamicRing) N() int { return len(d.pos) }

// AliveCount returns how many ids are currently present.
func (d *DynamicRing) AliveCount() int { return d.nAlive }

// Present reports whether id is currently on the ring.
func (d *DynamicRing) Present(id int) bool {
	return id >= 0 && id < len(d.pos) && d.present[id]
}

// Leave removes id from the ring; its arc is absorbed by its successor.
// The last present node cannot leave.
func (d *DynamicRing) Leave(id int) error {
	if id < 0 || id >= len(d.pos) || !d.present[id] {
		return fmt.Errorf("overlay: id %d not present", id)
	}
	if d.nAlive == 1 {
		return fmt.Errorf("overlay: cannot remove the last node")
	}
	d.present[id] = false
	d.nAlive--
	d.dirty = true
	return nil
}

// Rejoin places id back on the ring at a fresh random position, as a brand
// new peer would join.
func (d *DynamicRing) Rejoin(id int, s *rng.Stream) error {
	if id < 0 || id >= len(d.pos) {
		return fmt.Errorf("overlay: id %d out of range", id)
	}
	if d.present[id] {
		return fmt.Errorf("overlay: id %d already present", id)
	}
	for {
		p := s.Uint64()
		collision := false
		for j, q := range d.pos {
			if d.present[j] && q == p {
				collision = true
				break
			}
		}
		if !collision {
			d.pos[id] = p
			break
		}
	}
	d.present[id] = true
	d.nAlive++
	d.dirty = true
	return nil
}

// Replace atomically swaps id's position for a fresh one (leave + rejoin),
// modeling a peer that departs and is replaced by a new arrival.
func (d *DynamicRing) Replace(id int, s *rng.Stream) error {
	if err := d.Leave(id); err != nil {
		return err
	}
	return d.Rejoin(id, s)
}

// rebuild refreshes the sorted view. Finger tables are rebuilt too, so
// routing queries against Snapshot stay valid.
func (d *DynamicRing) rebuild() error {
	if !d.dirty {
		return nil
	}
	type pair struct {
		pos uint64
		id  int
	}
	pairs := make([]pair, 0, d.nAlive)
	for id, ok := range d.present {
		if ok {
			pairs = append(pairs, pair{d.pos[id], id})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].pos < pairs[j].pos })
	positions := make([]uint64, len(pairs))
	d.ids = make([]int, len(pairs))
	for i, p := range pairs {
		positions[i] = p.pos
		d.ids[i] = p.id
	}
	ring, err := RingFromPositions(positions)
	if err != nil {
		return err
	}
	d.ring = ring
	d.dirty = false
	return nil
}

// PickOwnerID samples the current selection distribution and returns the
// *node id* (not rank) responsible for a uniform random point.
func (d *DynamicRing) PickOwnerID(s *rng.Stream) (int, error) {
	if err := d.rebuild(); err != nil {
		return 0, err
	}
	return d.ids[d.ring.Owner(s.Uint64())], nil
}

// Snapshot returns the current static ring view and the rank-to-id mapping.
// The returned values are invalidated by the next membership change.
func (d *DynamicRing) Snapshot() (*Ring, []int, error) {
	if err := d.rebuild(); err != nil {
		return nil, nil, err
	}
	return d.ring, d.ids, nil
}
