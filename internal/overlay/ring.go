// Package overlay implements the DHT substrate proposed in Section 4 of the
// paper as the practical foundation of the dating service.
//
// Nodes are placed uniformly at random on a ring; each node is responsible
// for the arc between its predecessor and itself. Sending a dating request
// "to the node responsible for a uniform value x" therefore selects nodes
// with probability equal to their arc length — a distribution that is far
// from uniform (arc lengths range from O(1/n^2) to Omega(log n / n)) but
// identical for every requester, which is all the dating service needs.
//
// Two routing schemes are provided: Chord-style finger routing [SMK+01] and
// the Naor–Wieder continuous–discrete distance-halving scheme [NW03b]. Both
// resolve lookups in O(log n) hops; the hop counts feed the pipelining cost
// model of Section 4 (k dating rounds cost Theta(log n + k) time steps when
// requests are pipelined).
//
// The ring uses 64-bit fixed-point positions: the unit interval (0,1] is
// mapped to the full uint64 range, so arithmetic wraps naturally.
package overlay

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Ring is a DHT ring with n nodes at fixed random positions. Node identity
// is the rank in position-sorted order (rank r is the r-th node clockwise).
// The owner of a point x is the first node at or after x (Chord convention:
// successor(x)); its arc is (predecessor position, own position].
type Ring struct {
	pos     []uint64 // sorted node positions
	fingers [][]int  // fingers[r] = ranks of r's routing neighbors (dedup)
}

// NewRing places n nodes uniformly at random on the ring. Position
// collisions (probability ~n^2/2^64) are resolved by resampling.
func NewRing(n int, s *rng.Stream) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("overlay: ring needs n > 0, got %d", n)
	}
	pos := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for i := range pos {
		for {
			p := s.Uint64()
			if !seen[p] {
				seen[p] = true
				pos[i] = p
				break
			}
		}
	}
	return RingFromPositions(pos)
}

// RingFromPositions builds a ring from explicit positions, which must be
// non-empty and pairwise distinct. The slice is copied.
func RingFromPositions(positions []uint64) (*Ring, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("overlay: ring needs at least one position")
	}
	pos := append([]uint64(nil), positions...)
	sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
	for i := 1; i < len(pos); i++ {
		if pos[i] == pos[i-1] {
			return nil, fmt.Errorf("overlay: duplicate position %d", pos[i])
		}
	}
	r := &Ring{pos: pos}
	r.buildFingers()
	return r, nil
}

// N returns the number of nodes.
func (r *Ring) N() int { return len(r.pos) }

// Position returns the ring position of the node with the given rank.
func (r *Ring) Position(rank int) uint64 { return r.pos[rank] }

// Successor returns the rank of the node clockwise-after rank.
func (r *Ring) Successor(rank int) int { return (rank + 1) % len(r.pos) }

// Predecessor returns the rank of the node clockwise-before rank.
func (r *Ring) Predecessor(rank int) int { return (rank - 1 + len(r.pos)) % len(r.pos) }

// Owner returns the rank of the node responsible for point x: the first
// node at or after x, wrapping past the top of the ring.
func (r *Ring) Owner(x uint64) int {
	i := sort.Search(len(r.pos), func(i int) bool { return r.pos[i] >= x })
	if i == len(r.pos) {
		return 0
	}
	return i
}

// PickOwner samples the DHT selection distribution: the owner of a point
// drawn uniformly at random. This is exactly how a node addresses a dating
// request in the DHT-based service.
func (r *Ring) PickOwner(s *rng.Stream) int { return r.Owner(s.Uint64()) }

// IntervalWeights returns each node's arc length as a fraction of the ring,
// indexed by rank. The weights sum to 1 (up to float rounding) and define
// the selection distribution induced by the DHT.
func (r *Ring) IntervalWeights() []float64 {
	n := len(r.pos)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		prev := r.pos[(i-1+n)%n]
		w[i] = float64(r.pos[i]-prev) / (1 << 63) / 2
	}
	if n == 1 {
		w[0] = 1
	}
	return w
}

// MaxInterval returns the largest arc weight; MinInterval the smallest.
// For uniform random positions these are Theta(log n / n) and Theta(1/n^2)
// respectively, the spread quoted in the paper.
func (r *Ring) MaxInterval() float64 {
	w := r.IntervalWeights()
	m := w[0]
	for _, v := range w {
		if v > m {
			m = v
		}
	}
	return m
}

// MinInterval returns the smallest arc weight.
func (r *Ring) MinInterval() float64 {
	w := r.IntervalWeights()
	m := w[0]
	for _, v := range w {
		if v < m {
			m = v
		}
	}
	return m
}

// buildFingers constructs Chord finger tables: node r links to
// successor(pos_r + 2^k) for k = 0..63, with duplicates removed.
func (r *Ring) buildFingers() {
	n := len(r.pos)
	r.fingers = make([][]int, n)
	for rank := 0; rank < n; rank++ {
		var f []int
		last := -1
		for k := 0; k < 64; k++ {
			target := r.pos[rank] + 1<<uint(k) // wraps mod 2^64
			owner := r.Owner(target)
			if owner != last && owner != rank {
				f = append(f, owner)
				last = owner
			}
		}
		r.fingers[rank] = f
	}
}

// Fingers returns the routing neighbors of the given rank. The slice must
// not be modified.
func (r *Ring) Fingers(rank int) []int { return r.fingers[rank] }

// dist returns the clockwise distance from a to b on the ring.
func dist(a, b uint64) uint64 { return b - a } // uint64 wraparound does the mod

// Lookup routes from the node with rank `from` to the owner of x using
// Chord greedy finger routing, returning the owner's rank and the number of
// hops (edges traversed). A lookup resolved locally costs zero hops.
func (r *Ring) Lookup(from int, x uint64) (owner, hops int) {
	cur := from
	n := len(r.pos)
	if n == 1 {
		return 0, 0
	}
	for {
		succ := r.Successor(cur)
		// x in (pos[cur], pos[succ]] means succ owns x.
		if cur != succ && dist(r.pos[cur], x) != 0 && dist(r.pos[cur], x) <= dist(r.pos[cur], r.pos[succ]) {
			return succ, hops + 1
		}
		if r.pos[cur] == x {
			return cur, hops
		}
		// Closest preceding finger: the finger whose position is nearest to
		// x while remaining strictly inside (pos[cur], x).
		best := -1
		var bestDist uint64
		target := dist(r.pos[cur], x)
		for _, f := range r.fingers[cur] {
			d := dist(r.pos[cur], r.pos[f])
			if d > 0 && d < target && d > bestDist {
				best = f
				bestDist = d
			}
		}
		if best == -1 {
			// No finger strictly precedes x: fall through to successor.
			best = succ
		}
		cur = best
		hops++
	}
}

// LookupCD routes using the Naor–Wieder continuous–discrete distance-
// halving scheme. The continuous walk z' = z/2 + b/2 applies the target's
// top-L bits from the L-th most significant up to the most significant, so
// that after L = ceil(log2 n) + 2 steps the walk sits within 2^-L of the
// target; each continuous point is emulated by the node owning it, and a
// final short neighbor walk closes the residual gap. Returns the owner of x
// and the hop count.
func (r *Ring) LookupCD(from int, x uint64) (owner, hops int) {
	n := len(r.pos)
	if n == 1 {
		return 0, 0
	}
	// L = ceil(log2 n) + 2 extra bits so the final gap (about 2^-L) is well
	// below the mean arc length 1/n.
	l := 2
	for v := 1; v < n; v <<= 1 {
		l++
	}
	if l > 64 {
		l = 64
	}
	z := r.pos[from]
	cur := from
	// Step s applies bit index 63-l+s of x (s = 1..l): the (l-s+1)-th most
	// significant bit, so the MSB is applied last and z converges to x's
	// l-bit prefix.
	for s := 1; s <= l; s++ {
		bit := (x >> uint(63-l+s)) & 1
		z = z>>1 | bit<<63
		next := r.Owner(z)
		if next != cur {
			cur = next
			hops++
		}
	}
	// The walk lands within a couple of arcs of the owner; close the gap
	// via neighbor pointers in whichever ring direction is shorter.
	want := r.Owner(x)
	forward := (want - cur + n) % n
	backward := (cur - want + n) % n
	if forward <= backward {
		hops += forward
	} else {
		hops += backward
	}
	return want, hops
}

// AvgLookupHops estimates the mean hop count of the given lookup function
// over `samples` random (source, target) pairs.
func (r *Ring) AvgLookupHops(s *rng.Stream, samples int, lookup func(from int, x uint64) (int, int)) float64 {
	if samples <= 0 {
		return 0
	}
	total := 0
	for i := 0; i < samples; i++ {
		from := s.Intn(len(r.pos))
		_, h := lookup(from, s.Uint64())
		total += h
	}
	return float64(total) / float64(samples)
}
