package overlay

import (
	"testing"

	"repro/internal/rng"
)

// Adversarial ring layouts: routing must stay correct (if not fast) when
// positions are clustered, colinear, or degenerate — configurations a real
// deployment can hit when identifiers are assigned poorly.

func clusteredRing(t *testing.T, n int, span uint64) *Ring {
	t.Helper()
	// All nodes packed into [base, base+span).
	base := uint64(1) << 62
	pos := make([]uint64, n)
	for i := range pos {
		pos[i] = base + uint64(i)*(span/uint64(n))
	}
	r, err := RingFromPositions(pos)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLookupOnClusteredRing(t *testing.T) {
	// 64 nodes squeezed into a 2^-40 fraction of the ring: almost every
	// target lands in the giant empty arc owned by the first node.
	r := clusteredRing(t, 64, 1<<24)
	s := rng.New(1)
	for i := 0; i < 500; i++ {
		from := s.Intn(r.N())
		x := s.Uint64()
		owner, hops := r.Lookup(from, x)
		if owner != r.Owner(x) {
			t.Fatalf("clustered Lookup wrong: %d vs %d", owner, r.Owner(x))
		}
		if hops > r.N() {
			t.Fatalf("clustered Lookup took %d hops", hops)
		}
	}
}

func TestLookupCDOnClusteredRing(t *testing.T) {
	r := clusteredRing(t, 64, 1<<24)
	s := rng.New(2)
	for i := 0; i < 500; i++ {
		from := s.Intn(r.N())
		x := s.Uint64()
		owner, hops := r.LookupCD(from, x)
		if owner != r.Owner(x) {
			t.Fatalf("clustered LookupCD wrong: %d vs %d", owner, r.Owner(x))
		}
		// The CD final correction walks node-distance; on a clustered ring
		// it must pick the short direction, keeping hops bounded by the
		// walk length plus half the ring.
		if hops > 64+r.N()/2+2 {
			t.Fatalf("clustered LookupCD took %d hops", hops)
		}
	}
}

func TestClusteredIntervalWeights(t *testing.T) {
	// One node owns essentially the whole circle.
	r := clusteredRing(t, 16, 1<<20)
	w := r.IntervalWeights()
	var maxW float64
	for _, v := range w {
		if v > maxW {
			maxW = v
		}
	}
	if maxW < 0.999 {
		t.Fatalf("expected a dominant arc, max weight %v", maxW)
	}
	// The dominant owner is rank 0 (first node after the huge gap).
	if w[0] != maxW {
		t.Fatalf("dominant arc at wrong rank: %v", w[:3])
	}
}

func TestTwoNodeRingRouting(t *testing.T) {
	r, err := RingFromPositions([]uint64{1 << 20, 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(3)
	for i := 0; i < 200; i++ {
		x := s.Uint64()
		want := r.Owner(x)
		for from := 0; from < 2; from++ {
			if got, _ := r.Lookup(from, x); got != want {
				t.Fatalf("2-node Lookup(%d) wrong", from)
			}
			if got, _ := r.LookupCD(from, x); got != want {
				t.Fatalf("2-node LookupCD(%d) wrong", from)
			}
		}
	}
}

func TestSingleNodeRing(t *testing.T) {
	r, err := RingFromPositions([]uint64{42})
	if err != nil {
		t.Fatal(err)
	}
	if owner, hops := r.Lookup(0, 7); owner != 0 || hops != 0 {
		t.Fatalf("single-node Lookup = (%d, %d)", owner, hops)
	}
	if owner, hops := r.LookupCD(0, 7); owner != 0 || hops != 0 {
		t.Fatalf("single-node LookupCD = (%d, %d)", owner, hops)
	}
	w := r.IntervalWeights()
	if len(w) != 1 || w[0] != 1 {
		t.Fatalf("single-node weights %v", w)
	}
}

func TestExtremePositionsRouting(t *testing.T) {
	// Nodes at 0, 1, and the top of the ring: wraparound arithmetic edges.
	r, err := RingFromPositions([]uint64{0, 1, ^uint64(0)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {^uint64(0), 2}, {^uint64(0) - 1, 2},
	}
	s := rng.New(4)
	for _, c := range cases {
		if got := r.Owner(c.x); got != c.want {
			t.Fatalf("Owner(%d) = %d, want %d", c.x, got, c.want)
		}
		from := s.Intn(3)
		if got, _ := r.Lookup(from, c.x); got != c.want {
			t.Fatalf("Lookup(%d, %d) = %d, want %d", from, c.x, got, c.want)
		}
		if got, _ := r.LookupCD(from, c.x); got != c.want {
			t.Fatalf("LookupCD(%d, %d) = %d, want %d", from, c.x, got, c.want)
		}
	}
}

func TestJoinShiftsOwnership(t *testing.T) {
	// After a join, exactly the new node's arc changes owner.
	s := rng.New(5)
	r, err := NewRing(32, s)
	if err != nil {
		t.Fatal(err)
	}
	// Insert halfway into rank 10's arc.
	pred := r.Position(9)
	target := r.Position(10)
	mid := pred + (target-pred)/2
	r2, err := r.WithNode(mid)
	if err != nil {
		t.Fatal(err)
	}
	// Points below mid now belong to the new node; points above keep their
	// old (shifted-rank) owner.
	if r2.Owner(mid-1) != 10 { // new node sits at rank 10
		t.Fatalf("pre-mid point owned by %d", r2.Owner(mid-1))
	}
	if r2.Owner(mid+1) != 11 { // old rank-10 node shifted to 11
		t.Fatalf("post-mid point owned by %d", r2.Owner(mid+1))
	}
}
