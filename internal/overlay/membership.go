package overlay

import "fmt"

// WithNode returns a new ring containing all current nodes plus one at
// position p. The receiver is unmodified; finger tables of the new ring are
// rebuilt. This models a node join — in a live DHT only O(log n) state
// changes, but for simulation purposes a rebuild is equivalent.
func (r *Ring) WithNode(p uint64) (*Ring, error) {
	for _, q := range r.pos {
		if q == p {
			return nil, fmt.Errorf("overlay: position %d already occupied", p)
		}
	}
	pos := make([]uint64, 0, len(r.pos)+1)
	pos = append(pos, r.pos...)
	pos = append(pos, p)
	return RingFromPositions(pos)
}

// WithoutRank returns a new ring with the node at the given rank removed
// (a node leave). The departing node's arc is absorbed by its successor,
// exactly as in Chord.
func (r *Ring) WithoutRank(rank int) (*Ring, error) {
	if rank < 0 || rank >= len(r.pos) {
		return nil, fmt.Errorf("overlay: rank %d out of range [0,%d)", rank, len(r.pos))
	}
	if len(r.pos) == 1 {
		return nil, fmt.Errorf("overlay: cannot remove the last node")
	}
	pos := make([]uint64, 0, len(r.pos)-1)
	pos = append(pos, r.pos[:rank]...)
	pos = append(pos, r.pos[rank+1:]...)
	return RingFromPositions(pos)
}
