package coding

import (
	"fmt"

	"repro/internal/rng"
)

// Packet is one coded transmission: Payload = sum_i Coeffs[i] * block_i.
type Packet struct {
	Coeffs  []byte
	Payload []byte
}

// Clone deep-copies a packet.
func (p Packet) Clone() Packet {
	return Packet{
		Coeffs:  append([]byte(nil), p.Coeffs...),
		Payload: append([]byte(nil), p.Payload...),
	}
}

// Decoder accumulates coded packets for a B-block message and maintains
// them in reduced row echelon form, so decoding is incremental: each
// innovative packet raises the rank by one, and at rank B the stored
// payloads are exactly the source blocks.
type Decoder struct {
	blocks    int
	blockSize int
	rows      []Packet // RREF rows ordered by pivot column
	pivots    []int    // pivots[r] = pivot column of rows[r]
}

// NewDecoder creates a decoder for a message of `blocks` blocks of
// `blockSize` bytes each.
func NewDecoder(blocks, blockSize int) (*Decoder, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("coding: decoder needs blocks > 0, got %d", blocks)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("coding: decoder needs blockSize > 0, got %d", blockSize)
	}
	return &Decoder{blocks: blocks, blockSize: blockSize}, nil
}

// Rank returns the dimension of the received span.
func (d *Decoder) Rank() int { return len(d.rows) }

// Decoded reports whether the full message can be reconstructed.
func (d *Decoder) Decoded() bool { return len(d.rows) == d.blocks }

// AddPacket folds one packet into the decoder. It returns true when the
// packet was innovative (increased the rank). The packet is consumed: its
// backing arrays may be modified.
func (d *Decoder) AddPacket(p Packet) (bool, error) {
	if len(p.Coeffs) != d.blocks {
		return false, fmt.Errorf("coding: packet has %d coefficients, want %d", len(p.Coeffs), d.blocks)
	}
	if len(p.Payload) != d.blockSize {
		return false, fmt.Errorf("coding: packet payload %d bytes, want %d", len(p.Payload), d.blockSize)
	}
	// Reduce the incoming packet by existing pivots.
	for r, piv := range d.pivots {
		if c := p.Coeffs[piv]; c != 0 {
			mulSlice(p.Coeffs, d.rows[r].Coeffs, c)
			mulSlice(p.Payload, d.rows[r].Payload, c)
		}
	}
	// Find its leading coefficient.
	lead := -1
	for i, c := range p.Coeffs {
		if c != 0 {
			lead = i
			break
		}
	}
	if lead == -1 {
		return false, nil // linearly dependent: not innovative
	}
	// Normalize so the pivot is 1.
	inv := Inv(p.Coeffs[lead])
	scaleSlice(p.Coeffs, inv)
	scaleSlice(p.Payload, inv)
	// Eliminate the new pivot from existing rows (keep full RREF).
	for r := range d.rows {
		if c := d.rows[r].Coeffs[lead]; c != 0 {
			mulSlice(d.rows[r].Coeffs, p.Coeffs, c)
			mulSlice(d.rows[r].Payload, p.Payload, c)
		}
	}
	// Insert in pivot order.
	at := len(d.pivots)
	for i, piv := range d.pivots {
		if lead < piv {
			at = i
			break
		}
	}
	d.rows = append(d.rows, Packet{})
	copy(d.rows[at+1:], d.rows[at:])
	d.rows[at] = p
	d.pivots = append(d.pivots, 0)
	copy(d.pivots[at+1:], d.pivots[at:])
	d.pivots[at] = lead
	return true, nil
}

// Block returns decoded block i; it requires Decoded() == true. The
// returned slice aliases decoder state and must not be modified.
func (d *Decoder) Block(i int) ([]byte, error) {
	if !d.Decoded() {
		return nil, fmt.Errorf("coding: rank %d of %d, cannot decode yet", len(d.rows), d.blocks)
	}
	if i < 0 || i >= d.blocks {
		return nil, fmt.Errorf("coding: block %d out of range [0,%d)", i, d.blocks)
	}
	// In full RREF with rank == blocks, row r has pivot column r.
	return d.rows[i].Payload, nil
}

// Emit produces a fresh uniformly random recombination of everything this
// decoder has received, or ok == false when the span is empty. This is what
// a node transmits on an arranged date.
func (d *Decoder) Emit(s *rng.Stream) (Packet, bool) {
	if len(d.rows) == 0 {
		return Packet{}, false
	}
	out := Packet{
		Coeffs:  make([]byte, d.blocks),
		Payload: make([]byte, d.blockSize),
	}
	allZero := true
	coefs := make([]byte, len(d.rows))
	for i := range coefs {
		coefs[i] = byte(s.Intn(256))
		if coefs[i] != 0 {
			allZero = false
		}
	}
	if allZero {
		// A zero combination carries nothing; flip one coefficient so the
		// transmission is never wasted.
		coefs[s.Intn(len(coefs))] = byte(1 + s.Intn(255))
	}
	for r := range d.rows {
		mulSlice(out.Coeffs, d.rows[r].Coeffs, coefs[r])
		mulSlice(out.Payload, d.rows[r].Payload, coefs[r])
	}
	return out, true
}

// Source builds the decoder state of the original source node: rank B with
// the identity coefficient matrix over the given blocks. Blocks must all
// have the same positive length; they are copied.
func Source(blocks [][]byte) (*Decoder, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("coding: source needs at least one block")
	}
	size := len(blocks[0])
	if size == 0 {
		return nil, fmt.Errorf("coding: blocks must be non-empty")
	}
	d, err := NewDecoder(len(blocks), size)
	if err != nil {
		return nil, err
	}
	for i, b := range blocks {
		if len(b) != size {
			return nil, fmt.Errorf("coding: block %d has %d bytes, want %d", i, len(b), size)
		}
		coeffs := make([]byte, len(blocks))
		coeffs[i] = 1
		if _, err := d.AddPacket(Packet{Coeffs: coeffs, Payload: append([]byte(nil), b...)}); err != nil {
			return nil, err
		}
	}
	return d, nil
}
