package coding

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/bandwidth"
	"repro/internal/rng"
)

// Order-invariance and robustness properties of the incremental decoder.

func TestDecodeOrderInvariance(t *testing.T) {
	// Feeding the same packet multiset in any order yields the same decoded
	// message (Gaussian elimination is order-invariant in its result).
	s := rng.New(1)
	const blocks, size = 6, 16
	data := randomBlocks(s, blocks, size)
	src, _ := Source(data)

	// Collect more packets than needed.
	var packets []Packet
	for i := 0; i < blocks+4; i++ {
		pkt, _ := src.Emit(s)
		packets = append(packets, pkt)
	}

	decodeIn := func(order []int) *Decoder {
		d, _ := NewDecoder(blocks, size)
		for _, idx := range order {
			if _, err := d.AddPacket(packets[idx].Clone()); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}

	forward := make([]int, len(packets))
	backward := make([]int, len(packets))
	for i := range forward {
		forward[i] = i
		backward[i] = len(packets) - 1 - i
	}
	shuffled := s.Perm(len(packets))

	for _, order := range [][]int{forward, backward, shuffled} {
		d := decodeIn(order)
		if !d.Decoded() {
			t.Fatalf("order %v did not decode", order)
		}
		for b := range data {
			got, err := d.Block(b)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data[b]) {
				t.Fatalf("order %v: block %d corrupted", order, b)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Packet{Coeffs: []byte{1, 2}, Payload: []byte{3, 4}}
	c := p.Clone()
	c.Coeffs[0] = 9
	c.Payload[0] = 9
	if p.Coeffs[0] != 1 || p.Payload[0] != 3 {
		t.Fatal("Clone shares storage")
	}
}

func TestDecoderRREFInvariantProperty(t *testing.T) {
	// Property: after any sequence of packet insertions, the decoder's rank
	// equals the number of stored rows, rank never exceeds blocks, and
	// every accepted innovative packet raises rank by exactly one.
	err := quick.Check(func(seed uint64, nPackets uint8) bool {
		s := rng.New(seed)
		const blocks, size = 5, 8
		data := randomBlocks(s, blocks, size)
		src, err := Source(data)
		if err != nil {
			return false
		}
		d, err := NewDecoder(blocks, size)
		if err != nil {
			return false
		}
		prev := 0
		for i := 0; i < int(nPackets%24); i++ {
			pkt, ok := src.Emit(s)
			if !ok {
				return false
			}
			innovative, err := d.AddPacket(pkt)
			if err != nil {
				return false
			}
			if innovative && d.Rank() != prev+1 {
				return false
			}
			if !innovative && d.Rank() != prev {
				return false
			}
			prev = d.Rank()
			if d.Rank() > blocks {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartialRankEmitStillUseful(t *testing.T) {
	// A relay with partial rank emits packets that are innovative to an
	// empty decoder with overwhelming probability.
	s := rng.New(2)
	const blocks, size = 8, 8
	data := randomBlocks(s, blocks, size)
	src, _ := Source(data)
	relay, _ := NewDecoder(blocks, size)
	for i := 0; i < 3; i++ { // rank 3 relay (whp)
		pkt, _ := src.Emit(s)
		if _, err := relay.AddPacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if relay.Rank() == 0 {
		t.Fatal("relay rank 0 after 3 packets")
	}
	sink, _ := NewDecoder(blocks, size)
	innovativeCount := 0
	for i := 0; i < relay.Rank(); i++ {
		pkt, ok := relay.Emit(s)
		if !ok {
			t.Fatal("relay cannot emit")
		}
		innovative, err := sink.AddPacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if innovative {
			innovativeCount++
		}
	}
	// Over GF(256), rank(relay) emissions are full-rank whp; tolerate one
	// dependence.
	if innovativeCount < relay.Rank()-1 {
		t.Fatalf("only %d of %d relay emissions innovative", innovativeCount, relay.Rank())
	}
	if sink.Rank() > relay.Rank() {
		t.Fatal("sink rank exceeds relay span")
	}
}

func TestMongerWithHeterogeneousProfile(t *testing.T) {
	// Rich nodes move more packets per round; mongering must still verify
	// end-to-end.
	s := rng.New(3)
	prof := heterogeneousProfile(30)
	res, err := RunMonger(MongerConfig{
		N: 30, Blocks: 6, BlockSize: 16, Profile: prof, PayloadSeed: 4,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("heterogeneous mongering incomplete after %d rounds", res.Rounds)
	}
}

func TestMongerProfileMismatch(t *testing.T) {
	s := rng.New(4)
	prof := heterogeneousProfile(10)
	if _, err := RunMonger(MongerConfig{N: 20, Blocks: 2, BlockSize: 4, Profile: prof}, s); err == nil {
		t.Fatal("accepted profile/N mismatch")
	}
}

// heterogeneousProfile builds a small two-class profile for mongering tests.
func heterogeneousProfile(n int) bandwidth.Profile {
	in := make([]int, n)
	out := make([]int, n)
	for i := range in {
		b := 1
		if i%5 == 0 {
			b = 3
		}
		in[i] = b
		out[i] = b
	}
	return bandwidth.Profile{In: in, Out: out}
}
