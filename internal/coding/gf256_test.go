package coding

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatal("Add is not xor")
	}
	if Add(7, 7) != 0 {
		t.Fatal("x + x must be 0 in characteristic 2")
	}
}

func TestMulBasics(t *testing.T) {
	cases := []struct{ a, b, want byte }{
		{0, 5, 0},
		{5, 0, 0},
		{1, 123, 123},
		{123, 1, 123},
		{2, 2, 4},
		{0x80, 2, 0x1d}, // overflow reduces by the primitive polynomial
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulMatchesSchoolbook(t *testing.T) {
	// Carry-less multiply then reduce by the polynomial: reference
	// implementation to validate the log/exp tables exhaustively.
	ref := func(a, b byte) byte {
		var acc uint16
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				acc ^= uint16(a) << i
			}
		}
		for i := 15; i >= 8; i-- {
			if acc&(1<<i) != 0 {
				acc ^= gfPoly << (i - 8)
			}
		}
		return byte(acc)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if Mul(byte(a), byte(b)) != ref(byte(a), byte(b)) {
				t.Fatalf("Mul(%d, %d) disagrees with schoolbook", a, b)
			}
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	// Associativity, commutativity, distributivity via testing/quick.
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(a, Mul(b, c)) == Mul(Mul(a, b), c)
	}, nil); err != nil {
		t.Errorf("associativity: %v", err)
	}
	if err := quick.Check(func(a, b byte) bool {
		return Mul(a, b) == Mul(b, a)
	}, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, nil); err != nil {
		t.Errorf("distributivity: %v", err)
	}
}

func TestInverses(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("%d * Inv(%d) = %d", a, a, Mul(byte(a), inv))
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDiv(t *testing.T) {
	if err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}, nil); err != nil {
		t.Fatal(err)
	}
	if Div(0, 5) != 0 {
		t.Fatal("0 / x != 0")
	}
}

func TestDivZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(3, 0)
}

func TestMulSlice(t *testing.T) {
	dst := []byte{1, 2, 3}
	src := []byte{4, 5, 6}
	want := make([]byte, 3)
	for i := range want {
		want[i] = Add(dst[i], Mul(7, src[i]))
	}
	mulSlice(dst, src, 7)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("mulSlice[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	// c = 0 is a no-op; c = 1 is xor.
	dst2 := []byte{9, 9}
	mulSlice(dst2, []byte{1, 2}, 0)
	if dst2[0] != 9 || dst2[1] != 9 {
		t.Fatal("mulSlice with c=0 modified dst")
	}
	mulSlice(dst2, []byte{1, 2}, 1)
	if dst2[0] != 8 || dst2[1] != 11 {
		t.Fatalf("mulSlice with c=1: %v", dst2)
	}
}

func TestScaleSlice(t *testing.T) {
	dst := []byte{3, 0, 250}
	want := []byte{Mul(3, 5), 0, Mul(250, 5)}
	scaleSlice(dst, 5)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("scaleSlice[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	scaleSlice(dst, 1) // identity
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatal("scaleSlice with c=1 changed values")
		}
	}
	scaleSlice(dst, 0)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("scaleSlice with c=0 did not zero")
		}
	}
}
