// Package coding implements the Section 5 extension of the paper: rumor
// mongering — broadcasting a large message split into blocks — using
// randomized linear network coding [HeS+03, DMC06] over the dating service.
//
// The field is GF(2^8) with the standard primitive polynomial
// x^8+x^4+x^3+x^2+1 (0x11D). Nodes store the coded packets they have
// received, recode (send fresh random combinations of their span) on every
// arranged date, and decode by incremental Gaussian elimination. Network
// coding solves the paper's "most challenging problem": ensuring that every
// part of the message is useful to its receiver without any coordination.
package coding

// gfPoly is the primitive polynomial for GF(2^8).
const gfPoly = 0x11d

var (
	gfExp [510]byte // gfExp[i] = g^i, doubled so Mul can skip a mod
	gfLog [256]byte // gfLog[x] = discrete log of x, undefined for 0
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfExp[i+255] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
}

// Add returns a + b in GF(2^8) (also subtraction: the field has
// characteristic 2).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// Inv returns the multiplicative inverse of a. It panics on a == 0, which
// has no inverse; callers must guard.
func Inv(a byte) byte {
	if a == 0 {
		panic("coding: inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// Div returns a / b. It panics on b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("coding: division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// mulSlice computes dst[i] ^= c * src[i] for all i: the row operation of
// Gaussian elimination and the inner loop of recoding.
func mulSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range dst {
			dst[i] ^= src[i]
		}
		return
	}
	logC := int(gfLog[c])
	for i := range dst {
		if s := src[i]; s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// scaleSlice computes dst[i] = c * dst[i] for all i.
func scaleSlice(dst []byte, c byte) {
	if c == 1 {
		return
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	logC := int(gfLog[c])
	for i := range dst {
		if d := dst[i]; d != 0 {
			dst[i] = gfExp[logC+int(gfLog[d])]
		}
	}
}
